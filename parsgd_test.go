package parsgd

import (
	"math"
	"testing"
)

// TestFacadeEndToEnd exercises the full public API surface the way the
// README shows it: dataset -> model -> engine -> convergence.
func TestFacadeEndToEnd(t *testing.T) {
	spec, err := LookupDataset("w8a")
	if err != nil {
		t.Fatal(err)
	}
	ds := GenerateDataset(spec.Scaled(800.0 / float64(spec.N)))
	if err := ds.Validate(); err != nil {
		t.Fatal(err)
	}
	st := DatasetStatsOf(ds)
	if st.Features != 300 {
		t.Fatalf("w8a features = %d", st.Features)
	}

	m := NewLR(ds.D())
	init := m.InitParams(1)
	opt := EstimateOptLoss(m, ds, 20)
	e := NewHogwildEngine(m, ds, 0.5, 4)
	w := append([]float64(nil), init...)
	res := RunToConvergence(e, m, ds, w, DriverOpts{OptLoss: opt, MaxEpochs: 150})
	if res.EpochsTo[0.10] < 0 {
		t.Fatalf("no convergence to 10%%: final %v opt %v", res.FinalLoss, opt)
	}
}

func TestFacadeAllEightConfigurations(t *testing.T) {
	// One epoch of every point in the paper's configuration cube must
	// run and reduce (or at least not corrupt) the model.
	spec, err := LookupDataset("w8a")
	if err != nil {
		t.Fatal(err)
	}
	ds := GenerateDataset(spec.Scaled(600.0 / float64(spec.N)))
	m := NewLR(ds.D())
	mlpDS, err := GroupFeatures(ds, spec.MLPInputs)
	if err != nil {
		t.Fatal(err)
	}
	mlp := NewMLP(spec.MLPLayers())

	engines := map[string]Engine{
		"sync/cpu-seq":  NewSyncEngine(NewCPUBackend(1), m, ds, 1),
		"sync/cpu-par":  NewSyncEngine(NewCPUBackend(56), m, ds, 1),
		"sync/gpu":      NewSyncEngine(NewGPUBackend(), m, ds, 1),
		"async/cpu-seq": NewHogwildEngine(m, ds, 0.5, 1),
		"async/cpu-par": NewHogwildEngine(m, ds, 0.5, 56),
		"async/gpu":     NewGPUHogwildEngine(m, ds, 0.5),
		"hogbatch/seq":  NewHogbatchEngine(mlp, mlpDS, 0.5, HogbatchSeq),
		"hogbatch/par":  NewHogbatchEngine(mlp, mlpDS, 0.5, HogbatchParCPU),
		"hogbatch/gpu":  NewHogbatchEngine(mlp, mlpDS, 0.5, HogbatchGPU),
	}
	for name, e := range engines {
		var w []float64
		var mm Model
		if name[:3] == "hog" {
			w = mlp.InitParams(1)
			mm = mlp
		} else {
			w = m.InitParams(1)
			mm = m
		}
		sec := e.RunEpoch(w)
		if sec <= 0 {
			t.Errorf("%s: non-positive modeled time", name)
		}
		var dsUse *Dataset
		if name[:3] == "hog" {
			dsUse = mlpDS
		} else {
			dsUse = ds
		}
		loss := MeanLoss(mm, w, dsUse)
		if math.IsNaN(loss) || math.IsInf(loss, 0) {
			t.Errorf("%s: loss corrupted: %v", name, loss)
		}
	}
}

func TestFacadeHardwareSpecs(t *testing.T) {
	if PaperCPU().TotalThreads() != 56 {
		t.Fatal("paper CPU threads")
	}
	if PaperGPU().MPs*PaperGPU().CoresPerMP != 2496 {
		t.Fatal("paper GPU cores")
	}
	if K80().Spec.WarpSize != 32 {
		t.Fatal("warp size")
	}
	if len(DatasetNames()) != 5 {
		t.Fatal("dataset registry size")
	}
}

func TestFacadeTuneStep(t *testing.T) {
	spec, _ := LookupDataset("covtype")
	ds := GenerateDataset(spec.Scaled(500.0 / float64(spec.N)))
	m := NewSVM(ds.D())
	init := m.InitParams(1)
	step := TuneStep(func(s float64) Engine {
		return NewHogwildEngine(m, ds, s, 1)
	}, m, ds, init, 4)
	if step <= 0 {
		t.Fatalf("tuned step %v", step)
	}
}
