// Package hw describes the computing architectures the study models: a
// dual-socket NUMA multi-core CPU and a many-core SIMT GPU. The constructors
// PaperCPU and PaperGPU reproduce the hardware specification table (Fig. 5)
// of the paper: a 2x Intel Xeon E5-2660 v4 machine and one card of an NVIDIA
// Tesla K80.
//
// All sizes are in bytes, all clock rates in Hz, all bandwidths in bytes per
// second. The specs feed the analytic cost models in internal/numa and
// internal/gpusim; they are plain data and carry no behaviour beyond derived
// quantities (total cores, peak FLOPS, ...).
package hw

// CacheSpec describes one level of a cache hierarchy.
type CacheSpec struct {
	Size      int64   // capacity in bytes
	LineSize  int64   // cache line size in bytes
	LatencyNS float64 // load-to-use latency in nanoseconds
	// BandwidthBPS is the sustainable read bandwidth of this level, per
	// core for private caches and per socket for shared ones.
	BandwidthBPS float64
	Shared       bool // true if shared by all cores of a socket (e.g. L3)
}

// CPUSpec describes a NUMA multi-core CPU machine.
type CPUSpec struct {
	Name           string
	Sockets        int     // NUMA nodes
	CoresPerSocket int     // physical cores per socket
	ThreadsPerCore int     // hardware threads per core (SMT)
	ClockHz        float64 // nominal core clock
	// FlopsPerCycle is the peak double-precision FLOPs one core retires
	// per cycle (vector width x FMA).
	FlopsPerCycle float64
	L1D, L2, L3   CacheSpec
	// DRAMBandwidthBPS is the per-socket memory bandwidth to the locally
	// attached DRAM region.
	DRAMBandwidthBPS float64
	DRAMLatencyNS    float64
	// InterconnectBPS is the bandwidth of the socket-to-socket link (QPI);
	// remote DRAM and coherence traffic cross it.
	InterconnectBPS     float64
	InterconnectLatency float64 // extra latency for remote access, ns
	DRAMBytes           int64   // total installed memory
}

// TotalCores returns the number of physical cores in the machine.
func (c *CPUSpec) TotalCores() int { return c.Sockets * c.CoresPerSocket }

// TotalThreads returns the number of hardware threads in the machine.
func (c *CPUSpec) TotalThreads() int { return c.TotalCores() * c.ThreadsPerCore }

// PeakFlops returns the machine-wide peak FLOP/s.
func (c *CPUSpec) PeakFlops() float64 {
	return float64(c.TotalCores()) * c.ClockHz * c.FlopsPerCycle
}

// CoreFlops returns the peak FLOP/s of a single core.
func (c *CPUSpec) CoreFlops() float64 { return c.ClockHz * c.FlopsPerCycle }

// AggregateCache returns the total capacity in bytes of the given private
// cache level summed over n cores, or of the shared level summed over the
// sockets hosting those cores.
func (c *CPUSpec) AggregateCache(level CacheSpec, threads int) int64 {
	if threads < 1 {
		threads = 1
	}
	cores := (threads + c.ThreadsPerCore - 1) / c.ThreadsPerCore
	if cores > c.TotalCores() {
		cores = c.TotalCores()
	}
	if level.Shared {
		sockets := (cores + c.CoresPerSocket - 1) / c.CoresPerSocket
		return level.Size * int64(sockets)
	}
	return level.Size * int64(cores)
}

// GPUSpec describes a SIMT GPU device.
type GPUSpec struct {
	Name            string
	MPs             int     // streaming multiprocessors
	CoresPerMP      int     // CUDA cores per MP
	WarpSize        int     // SIMT width (threads per warp)
	MaxThreadsPerMP int     // resident thread limit per MP
	MaxBlocksPerMP  int     // resident block limit per MP
	ClockHz         float64 // core clock
	// FlopsPerCoreCycle is FLOPs per CUDA core per cycle (FMA = 2).
	FlopsPerCoreCycle float64
	SharedMemPerMP    int64 // shared memory per MP, bytes
	L1PerMP           int64 // L1 cache per MP, bytes
	L2                int64 // device-wide L2, bytes
	GlobalMemBytes    int64 // device RAM
	// GlobalBandwidthBPS is the global-memory bandwidth.
	GlobalBandwidthBPS float64
	GlobalLatencyNS    float64 // uncached global load latency
	// TransactionBytes is the size of one global-memory transaction
	// segment; a fully coalesced 32-lane float64 warp load needs
	// 32*8/TransactionBytes transactions, while a fully scattered one
	// pays TransactionBytes per element touched.
	TransactionBytes int64
	// KernelLaunchNS is the fixed host-side cost of launching one kernel.
	KernelLaunchNS float64
}

// PeakFlops returns the device-wide peak FLOP/s.
func (g *GPUSpec) PeakFlops() float64 {
	return float64(g.MPs*g.CoresPerMP) * g.ClockHz * g.FlopsPerCoreCycle
}

// MaxResidentWarps returns the number of warps that can be simultaneously
// resident on the whole device; it bounds the effective concurrency of an
// asynchronous (Hogwild-style) GPU kernel.
func (g *GPUSpec) MaxResidentWarps() int {
	return g.MPs * g.MaxThreadsPerMP / g.WarpSize
}

// PaperCPU returns the study's NUMA machine: two 14-core 28-thread Intel Xeon
// E5-2660 v4 sockets (56 hardware threads), 256 GB DRAM, 35 MB shared L3 per
// socket, as listed in the paper's Fig. 5.
func PaperCPU() *CPUSpec {
	return &CPUSpec{
		Name:           "2x Intel Xeon E5-2660 v4",
		Sockets:        2,
		CoresPerSocket: 14,
		ThreadsPerCore: 2,
		ClockHz:        2.0e9,
		// AVX2: 4 doubles x 2 (FMA) x 2 ports = 16 DP FLOPs/cycle peak;
		// we use a sustained 8 to reflect non-FMA-dominated kernels.
		FlopsPerCycle: 8,
		L1D: CacheSpec{
			Size: 32 << 10, LineSize: 64, LatencyNS: 1.5,
			BandwidthBPS: 150e9,
		},
		L2: CacheSpec{
			Size: 256 << 10, LineSize: 64, LatencyNS: 4,
			BandwidthBPS: 80e9,
		},
		L3: CacheSpec{
			Size: 35 << 20, LineSize: 64, LatencyNS: 18,
			BandwidthBPS: 250e9, Shared: true,
		},
		DRAMBandwidthBPS:    68e9, // 4-channel DDR4-2133 per socket
		DRAMLatencyNS:       90,
		InterconnectBPS:     38e9, // 2x QPI 9.6 GT/s
		InterconnectLatency: 130,
		DRAMBytes:           256 << 30,
	}
}

// PaperGPU returns one card of the study's NVIDIA Tesla K80 (GK210): 13 MPs x
// 192 cores = 2496 cores, 32-wide warps, 12 GB global memory, 1.5 MB L2, as
// listed in the paper's Fig. 5.
func PaperGPU() *GPUSpec {
	return &GPUSpec{
		Name:               "NVIDIA Tesla K80 (one GK210)",
		MPs:                13,
		CoresPerMP:         192,
		WarpSize:           32,
		MaxThreadsPerMP:    2048,
		MaxBlocksPerMP:     16,
		ClockHz:            0.875e9, // boost clock
		FlopsPerCoreCycle:  2,       // FMA; K80 DP ratio folded into cores
		SharedMemPerMP:     48 << 10,
		L1PerMP:            48 << 10,
		L2:                 3 << 19, // 1.5 MB
		GlobalMemBytes:     12 << 30,
		GlobalBandwidthBPS: 240e9,
		GlobalLatencyNS:    400,
		// Kepler services cached global loads at 128-byte line
		// granularity; scattered gathers therefore move 16x the useful
		// data — the sparse-kernel penalty the paper observes.
		TransactionBytes: 128,
		KernelLaunchNS:   8000,
	}
}
