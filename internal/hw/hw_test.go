package hw

import "testing"

func TestPaperCPUMatchesFig5(t *testing.T) {
	c := PaperCPU()
	if c.Sockets != 2 || c.CoresPerSocket != 14 || c.ThreadsPerCore != 2 {
		t.Fatalf("topology %d/%d/%d", c.Sockets, c.CoresPerSocket, c.ThreadsPerCore)
	}
	if c.TotalThreads() != 56 {
		t.Fatalf("threads = %d", c.TotalThreads())
	}
	if c.L1D.Size != 32<<10 || c.L2.Size != 256<<10 || c.L3.Size != 35<<20 {
		t.Fatalf("caches %d/%d/%d", c.L1D.Size, c.L2.Size, c.L3.Size)
	}
	if !c.L3.Shared || c.L1D.Shared || c.L2.Shared {
		t.Fatal("cache sharing flags wrong")
	}
	if c.DRAMBytes != 256<<30 {
		t.Fatalf("DRAM = %d", c.DRAMBytes)
	}
	if c.PeakFlops() <= 0 || c.CoreFlops() <= 0 {
		t.Fatal("non-positive peak flops")
	}
	if c.PeakFlops() != c.CoreFlops()*28 {
		t.Fatal("machine peak != 28 x core peak")
	}
}

func TestPaperGPUMatchesFig5(t *testing.T) {
	g := PaperGPU()
	if g.MPs != 13 || g.CoresPerMP != 192 {
		t.Fatalf("MPs/cores %d/%d", g.MPs, g.CoresPerMP)
	}
	if g.MPs*g.CoresPerMP != 2496 {
		t.Fatalf("total cores %d, want 2496", g.MPs*g.CoresPerMP)
	}
	if g.WarpSize != 32 {
		t.Fatalf("warp = %d", g.WarpSize)
	}
	if g.GlobalMemBytes != 12<<30 {
		t.Fatalf("global mem = %d, want 12GB", g.GlobalMemBytes)
	}
	if g.L2 != 3<<19 {
		t.Fatalf("L2 = %d, want 1.5MB", g.L2)
	}
	if g.SharedMemPerMP != 48<<10 || g.L1PerMP != 48<<10 {
		t.Fatal("shared/L1 sizes wrong")
	}
}

func TestAggregateCacheEdges(t *testing.T) {
	c := PaperCPU()
	if got := c.AggregateCache(c.L1D, 0); got != c.L1D.Size {
		t.Fatalf("0 threads aggregate = %d", got)
	}
	// More threads than the machine has clamps at full capacity.
	if got := c.AggregateCache(c.L1D, 1000); got != c.L1D.Size*28 {
		t.Fatalf("oversubscribed aggregate = %d", got)
	}
	if got := c.AggregateCache(c.L3, 1); got != c.L3.Size {
		t.Fatalf("single-thread L3 = %d", got)
	}
}

func TestMaxResidentWarps(t *testing.T) {
	g := PaperGPU()
	want := 13 * 2048 / 32
	if got := g.MaxResidentWarps(); got != want {
		t.Fatalf("resident warps = %d, want %d", got, want)
	}
}
