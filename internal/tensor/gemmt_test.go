package tensor

import (
	"math/rand"
	"testing"
)

// transpose returns a copy of m transposed.
func transpose(m *Matrix) *Matrix {
	t := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			t.Set(j, i, m.At(i, j))
		}
	}
	return t
}

func TestGemmNTMatchesGemmOfTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 30; trial++ {
		m, k, n := 1+rng.Intn(7), 1+rng.Intn(7), 1+rng.Intn(7)
		a := randMatrix(rng, m, k)
		b := randMatrix(rng, n, k)
		c := randMatrix(rng, m, n)
		alpha, beta := rng.NormFloat64(), rng.NormFloat64()

		got := c.Clone()
		GemmNT(alpha, a, b, beta, got)
		want := c.Clone()
		Gemm(alpha, a, transpose(b), beta, want)
		for i := range got.Data {
			if !almostEq(got.Data[i], want.Data[i], 1e-9) {
				t.Fatalf("trial %d: GemmNT[%d] = %v, want %v", trial, i, got.Data[i], want.Data[i])
			}
		}
	}
}

func TestGemmTNMatchesGemmOfTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 30; trial++ {
		m, k, n := 1+rng.Intn(7), 1+rng.Intn(7), 1+rng.Intn(7)
		a := randMatrix(rng, k, m)
		b := randMatrix(rng, k, n)
		c := randMatrix(rng, m, n)
		alpha, beta := rng.NormFloat64(), rng.NormFloat64()

		got := c.Clone()
		GemmTN(alpha, a, b, beta, got)
		want := c.Clone()
		Gemm(alpha, transpose(a), b, beta, want)
		for i := range got.Data {
			if !almostEq(got.Data[i], want.Data[i], 1e-9) {
				t.Fatalf("trial %d: GemmTN[%d] = %v, want %v", trial, i, got.Data[i], want.Data[i])
			}
		}
	}
}

func TestGemmNTShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on shape mismatch")
		}
	}()
	GemmNT(1, NewMatrix(2, 3), NewMatrix(2, 4), 0, NewMatrix(2, 2))
}

func TestGemmTNShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on shape mismatch")
		}
	}()
	GemmTN(1, NewMatrix(2, 3), NewMatrix(3, 4), 0, NewMatrix(3, 4))
}

func TestGemmRowPartitionedVariants(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	a := randMatrix(rng, 9, 5)
	bNT := randMatrix(rng, 7, 5)
	whole := NewMatrix(9, 7)
	GemmNT(1, a, bNT, 0, whole)
	parts := NewMatrix(9, 7)
	for lo := 0; lo < 9; lo += 2 {
		hi := lo + 2
		if hi > 9 {
			hi = 9
		}
		GemmNTRows(1, a, bNT, 0, parts, lo, hi)
	}
	for i := range whole.Data {
		if !almostEq(whole.Data[i], parts.Data[i], 1e-12) {
			t.Fatal("GemmNTRows partition mismatch")
		}
	}

	bTN := randMatrix(rng, 9, 4)
	wholeTN := NewMatrix(5, 4)
	GemmTN(1, a, bTN, 0, wholeTN)
	partsTN := NewMatrix(5, 4)
	for lo := 0; lo < 5; lo += 2 {
		hi := lo + 2
		if hi > 5 {
			hi = 5
		}
		GemmTNRows(1, a, bTN, 0, partsTN, lo, hi)
	}
	for i := range wholeTN.Data {
		if !almostEq(wholeTN.Data[i], partsTN.Data[i], 1e-12) {
			t.Fatal("GemmTNRows partition mismatch")
		}
	}
}
