package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

const eps = 1e-9

func almostEq(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	d := math.Abs(a - b)
	if d <= tol {
		return true
	}
	return d <= tol*math.Max(math.Abs(a), math.Abs(b))
}

func TestDot(t *testing.T) {
	if got := Dot([]float64{1, 2, 3}, []float64{4, 5, 6}); got != 32 {
		t.Fatalf("Dot = %v, want 32", got)
	}
	if got := Dot(nil, nil); got != 0 {
		t.Fatalf("Dot(nil,nil) = %v, want 0", got)
	}
}

func TestDotMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Dot with mismatched lengths did not panic")
		}
	}()
	Dot([]float64{1}, []float64{1, 2})
}

func TestAxpyScal(t *testing.T) {
	y := []float64{1, 1, 1}
	Axpy(2, []float64{1, 2, 3}, y)
	want := []float64{3, 5, 7}
	for i := range y {
		if y[i] != want[i] {
			t.Fatalf("Axpy: y = %v, want %v", y, want)
		}
	}
	Scal(0.5, y)
	want = []float64{1.5, 2.5, 3.5}
	for i := range y {
		if y[i] != want[i] {
			t.Fatalf("Scal: y = %v, want %v", y, want)
		}
	}
}

func TestElementwiseOps(t *testing.T) {
	x := []float64{1, 2, 3}
	y := []float64{4, 5, 6}
	dst := make([]float64, 3)
	AddTo(dst, x, y)
	if dst[0] != 5 || dst[2] != 9 {
		t.Fatalf("AddTo = %v", dst)
	}
	SubTo(dst, y, x)
	if dst[0] != 3 || dst[2] != 3 {
		t.Fatalf("SubTo = %v", dst)
	}
	MulTo(dst, x, y)
	if dst[1] != 10 {
		t.Fatalf("MulTo = %v", dst)
	}
}

func TestNormSumMaxArgMax(t *testing.T) {
	x := []float64{3, -4}
	if got := Norm2(x); !almostEq(got, 5, eps) {
		t.Fatalf("Norm2 = %v, want 5", got)
	}
	if got := Sum(x); got != -1 {
		t.Fatalf("Sum = %v, want -1", got)
	}
	if got := Max(x); got != 3 {
		t.Fatalf("Max = %v, want 3", got)
	}
	if got := ArgMax(x); got != 0 {
		t.Fatalf("ArgMax = %v, want 0", got)
	}
	if got := ArgMax(nil); got != -1 {
		t.Fatalf("ArgMax(nil) = %v, want -1", got)
	}
}

func TestMatrixAccessors(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	if m.At(1, 0) != 3 {
		t.Fatalf("At(1,0) = %v", m.At(1, 0))
	}
	m.Set(0, 1, 9)
	if m.At(0, 1) != 9 {
		t.Fatalf("Set/At = %v", m.At(0, 1))
	}
	c := m.Clone()
	c.Set(0, 0, -1)
	if m.At(0, 0) == -1 {
		t.Fatal("Clone aliases original")
	}
	m.Fill(7)
	if m.At(1, 1) != 7 {
		t.Fatal("Fill failed")
	}
	m.Zero()
	if m.At(1, 1) != 0 {
		t.Fatal("Zero failed")
	}
}

func TestFromRowsRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ragged FromRows did not panic")
		}
	}()
	FromRows([][]float64{{1, 2}, {3}})
}

func TestGemvAgainstManual(t *testing.T) {
	a := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	x := []float64{1, 0, -1}
	y := []float64{10, 20}
	Gemv(2, a, x, 1, y) // y = 2*A*x + y = 2*[-2,-2] + [10,20]
	if y[0] != 6 || y[1] != 16 {
		t.Fatalf("Gemv = %v, want [6 16]", y)
	}
}

func TestGemvTAgainstManual(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	x := []float64{1, 1, 1}
	y := make([]float64, 2)
	GemvT(1, a, x, 0, y)
	if y[0] != 9 || y[1] != 12 {
		t.Fatalf("GemvT = %v, want [9 12]", y)
	}
}

// naiveGemm is the reference implementation for property testing.
func naiveGemm(alpha float64, a, b *Matrix, beta float64, c *Matrix) *Matrix {
	out := c.Clone()
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < b.Cols; j++ {
			var s float64
			for k := 0; k < a.Cols; k++ {
				s += a.At(i, k) * b.At(k, j)
			}
			out.Set(i, j, alpha*s+beta*c.At(i, j))
		}
	}
	return out
}

func randMatrix(rng *rand.Rand, rows, cols int) *Matrix {
	m := NewMatrix(rows, cols)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

func TestGemmPropertyMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		m, k, n := 1+rng.Intn(8), 1+rng.Intn(8), 1+rng.Intn(8)
		a := randMatrix(rng, m, k)
		b := randMatrix(rng, k, n)
		c := randMatrix(rng, m, n)
		alpha, beta := rng.NormFloat64(), rng.NormFloat64()
		want := naiveGemm(alpha, a, b, beta, c)
		got := c.Clone()
		Gemm(alpha, a, b, beta, got)
		for i := range got.Data {
			if !almostEq(got.Data[i], want.Data[i], 1e-9) {
				t.Fatalf("trial %d: Gemm[%d] = %v, want %v", trial, i, got.Data[i], want.Data[i])
			}
		}
	}
}

func TestGemmRowsPartitionEqualsWhole(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := randMatrix(rng, 13, 7)
	b := randMatrix(rng, 7, 9)
	whole := NewMatrix(13, 9)
	Gemm(1, a, b, 0, whole)
	parts := NewMatrix(13, 9)
	for lo := 0; lo < 13; lo += 4 {
		hi := lo + 4
		if hi > 13 {
			hi = 13
		}
		GemmRows(1, a, b, 0, parts, lo, hi)
	}
	for i := range whole.Data {
		if !almostEq(whole.Data[i], parts.Data[i], 1e-12) {
			t.Fatal("partitioned GemmRows disagrees with Gemm")
		}
	}
}

func TestOuter(t *testing.T) {
	a := NewMatrix(2, 3)
	Outer(2, []float64{1, 2}, []float64{1, 0, -1}, a)
	if a.At(0, 0) != 2 || a.At(1, 2) != -4 {
		t.Fatalf("Outer = %+v", a.Data)
	}
}

func TestSoftmaxProperties(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		x := make([]float64, len(raw))
		for i, v := range raw {
			x[i] = math.Mod(v, 50) // keep exponents sane
			if math.IsNaN(x[i]) {
				x[i] = 0
			}
		}
		dst := make([]float64, len(x))
		Softmax(dst, x)
		var sum float64
		for _, p := range dst {
			if p < 0 || p > 1 || math.IsNaN(p) {
				return false
			}
			sum += p
		}
		return almostEq(sum, 1, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSoftmaxShiftInvariance(t *testing.T) {
	x := []float64{1, 2, 3}
	a := make([]float64, 3)
	bx := []float64{101, 102, 103}
	b := make([]float64, 3)
	Softmax(a, x)
	Softmax(b, bx)
	for i := range a {
		if !almostEq(a[i], b[i], 1e-12) {
			t.Fatalf("softmax not shift invariant: %v vs %v", a, b)
		}
	}
}

func TestSigmoidStability(t *testing.T) {
	if got := Sigmoid(1000); got != 1 {
		t.Fatalf("Sigmoid(1000) = %v", got)
	}
	if got := Sigmoid(-1000); got != 0 {
		t.Fatalf("Sigmoid(-1000) = %v", got)
	}
	if got := Sigmoid(0); got != 0.5 {
		t.Fatalf("Sigmoid(0) = %v", got)
	}
	// 1 - sigmoid(v) == sigmoid(-v)
	for _, v := range []float64{-3, -0.5, 0.1, 2, 30} {
		if !almostEq(1-Sigmoid(v), Sigmoid(-v), 1e-12) {
			t.Fatalf("sigmoid symmetry broken at %v", v)
		}
	}
}

func TestLog1pExpStability(t *testing.T) {
	if got := Log1pExp(1000); got != 1000 {
		t.Fatalf("Log1pExp(1000) = %v", got)
	}
	if got := Log1pExp(-1000); got != 0 {
		t.Fatalf("Log1pExp(-1000) = %v", got)
	}
	if !almostEq(Log1pExp(0), math.Log(2), 1e-12) {
		t.Fatalf("Log1pExp(0) = %v", Log1pExp(0))
	}
}

func TestAllFinite(t *testing.T) {
	if !AllFinite([]float64{1, 2, 3}) {
		t.Fatal("finite slice reported non-finite")
	}
	if AllFinite([]float64{1, math.NaN()}) {
		t.Fatal("NaN not detected")
	}
	if AllFinite([]float64{math.Inf(1)}) {
		t.Fatal("Inf not detected")
	}
}

func TestGemvTLinearity(t *testing.T) {
	// Property: GemvT(a, x1+x2) == GemvT(a, x1) + GemvT(a, x2).
	rng := rand.New(rand.NewSource(3))
	a := randMatrix(rng, 6, 4)
	x1 := make([]float64, 6)
	x2 := make([]float64, 6)
	for i := range x1 {
		x1[i], x2[i] = rng.NormFloat64(), rng.NormFloat64()
	}
	sum := make([]float64, 6)
	AddTo(sum, x1, x2)
	y1 := make([]float64, 4)
	y2 := make([]float64, 4)
	ySum := make([]float64, 4)
	GemvT(1, a, x1, 0, y1)
	GemvT(1, a, x2, 0, y2)
	GemvT(1, a, sum, 0, ySum)
	for j := range ySum {
		if !almostEq(ySum[j], y1[j]+y2[j], 1e-9) {
			t.Fatal("GemvT not linear")
		}
	}
}
