// Package tensor provides dense vector and matrix primitives used by every
// layer of the study: the linear-algebra backends (internal/linalg), the
// model gradients (internal/model), and the SGD engines (internal/core).
//
// Matrices are row-major float64. The package deliberately stays small and
// allocation-conscious: every mutating operation writes into a caller-owned
// destination so the hot SGD loops can reuse buffers.
package tensor

import (
	"fmt"
	"math"
)

// Vector is a dense float64 vector.
type Vector = []float64

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols
}

// NewMatrix allocates a zeroed rows x cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: negative dimensions %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromRows builds a matrix from a slice of equal-length rows.
func FromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 {
		return NewMatrix(0, 0)
	}
	m := NewMatrix(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.Cols {
			panic(fmt.Sprintf("tensor: ragged row %d: len %d want %d", i, len(r), m.Cols))
		}
		copy(m.Row(i), r)
	}
	return m
}

// Row returns a mutable view of row i.
func (m *Matrix) Row(i int) []float64 {
	return m.Data[i*m.Cols : (i+1)*m.Cols]
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// Fill sets every element of m to v.
func (m *Matrix) Fill(v float64) {
	for i := range m.Data {
		m.Data[i] = v
	}
}

// Zero clears m in place.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// Dot returns the inner product of x and y. Panics if lengths differ.
func Dot(x, y []float64) float64 {
	if len(x) != len(y) {
		panic(fmt.Sprintf("tensor: Dot length mismatch %d vs %d", len(x), len(y)))
	}
	var s float64
	for i, v := range x {
		s += v * y[i]
	}
	return s
}

// Axpy computes y += a*x in place.
func Axpy(a float64, x, y []float64) {
	if len(x) != len(y) {
		panic(fmt.Sprintf("tensor: Axpy length mismatch %d vs %d", len(x), len(y)))
	}
	for i, v := range x {
		y[i] += a * v
	}
}

// Scal scales x by a in place.
func Scal(a float64, x []float64) {
	for i := range x {
		x[i] *= a
	}
}

// Copy copies src into dst. Panics if lengths differ.
func Copy(dst, src []float64) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("tensor: Copy length mismatch %d vs %d", len(dst), len(src)))
	}
	copy(dst, src)
}

// AddTo computes dst = x + y element-wise.
func AddTo(dst, x, y []float64) {
	for i := range dst {
		dst[i] = x[i] + y[i]
	}
}

// SubTo computes dst = x - y element-wise.
func SubTo(dst, x, y []float64) {
	for i := range dst {
		dst[i] = x[i] - y[i]
	}
}

// MulTo computes dst = x .* y element-wise (Hadamard product).
func MulTo(dst, x, y []float64) {
	for i := range dst {
		dst[i] = x[i] * y[i]
	}
}

// Norm2 returns the Euclidean norm of x.
func Norm2(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v * v
	}
	return math.Sqrt(s)
}

// Sum returns the sum of the elements of x.
func Sum(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v
	}
	return s
}

// Max returns the maximum element of x; -Inf for empty x.
func Max(x []float64) float64 {
	m := math.Inf(-1)
	for _, v := range x {
		if v > m {
			m = v
		}
	}
	return m
}

// ArgMax returns the index of the maximum element; -1 for empty x.
func ArgMax(x []float64) int {
	idx, m := -1, math.Inf(-1)
	for i, v := range x {
		if v > m {
			m, idx = v, i
		}
	}
	return idx
}

// Gemv computes y = alpha*A*x + beta*y for a row-major A (Rows x Cols),
// len(x) == Cols, len(y) == Rows.
func Gemv(alpha float64, a *Matrix, x []float64, beta float64, y []float64) {
	if len(x) != a.Cols || len(y) != a.Rows {
		panic(fmt.Sprintf("tensor: Gemv shape mismatch A=%dx%d x=%d y=%d",
			a.Rows, a.Cols, len(x), len(y)))
	}
	for i := 0; i < a.Rows; i++ {
		row := a.Row(i)
		var s float64
		for j, v := range row {
			s += v * x[j]
		}
		y[i] = alpha*s + beta*y[i]
	}
}

// GemvT computes y = alpha*A^T*x + beta*y, len(x) == Rows, len(y) == Cols.
func GemvT(alpha float64, a *Matrix, x []float64, beta float64, y []float64) {
	if len(x) != a.Rows || len(y) != a.Cols {
		panic(fmt.Sprintf("tensor: GemvT shape mismatch A=%dx%d x=%d y=%d",
			a.Rows, a.Cols, len(x), len(y)))
	}
	if beta != 1 {
		for j := range y {
			y[j] *= beta
		}
	}
	for i := 0; i < a.Rows; i++ {
		row := a.Row(i)
		ax := alpha * x[i]
		if ax == 0 {
			continue
		}
		for j, v := range row {
			y[j] += ax * v
		}
	}
}

// Gemm computes C = alpha*A*B + beta*C with A (m x k), B (k x n), C (m x n).
func Gemm(alpha float64, a, b *Matrix, beta float64, c *Matrix) {
	if a.Cols != b.Rows || c.Rows != a.Rows || c.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: Gemm shape mismatch A=%dx%d B=%dx%d C=%dx%d",
			a.Rows, a.Cols, b.Rows, b.Cols, c.Rows, c.Cols))
	}
	GemmRows(alpha, a, b, beta, c, 0, a.Rows)
}

// GemmRows computes rows [lo, hi) of C = alpha*A*B + beta*C. It is the
// row-partitioned kernel the parallel CPU backend dispatches to worker
// goroutines; Gemm is GemmRows over the full row range.
func GemmRows(alpha float64, a, b *Matrix, beta float64, c *Matrix, lo, hi int) {
	for i := lo; i < hi; i++ {
		crow := c.Row(i)
		if beta == 0 {
			for j := range crow {
				crow[j] = 0
			}
		} else if beta != 1 {
			for j := range crow {
				crow[j] *= beta
			}
		}
		arow := a.Row(i)
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Row(k)
			s := alpha * av
			for j, bv := range brow {
				crow[j] += s * bv
			}
		}
	}
}

// GemmNT computes C = alpha*A*B^T + beta*C with A (m x k), B (n x k),
// C (m x n).
func GemmNT(alpha float64, a, b *Matrix, beta float64, c *Matrix) {
	if a.Cols != b.Cols || c.Rows != a.Rows || c.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: GemmNT shape mismatch A=%dx%d B=%dx%d C=%dx%d",
			a.Rows, a.Cols, b.Rows, b.Cols, c.Rows, c.Cols))
	}
	GemmNTRows(alpha, a, b, beta, c, 0, a.Rows)
}

// GemmNTRows computes rows [lo, hi) of C = alpha*A*B^T + beta*C.
func GemmNTRows(alpha float64, a, b *Matrix, beta float64, c *Matrix, lo, hi int) {
	for i := lo; i < hi; i++ {
		arow := a.Row(i)
		crow := c.Row(i)
		for j := 0; j < b.Rows; j++ {
			s := alpha * Dot(arow, b.Row(j))
			if beta == 0 {
				crow[j] = s
			} else {
				crow[j] = s + beta*crow[j]
			}
		}
	}
}

// GemmTN computes C = alpha*A^T*B + beta*C with A (k x m), B (k x n),
// C (m x n).
func GemmTN(alpha float64, a, b *Matrix, beta float64, c *Matrix) {
	if a.Rows != b.Rows || c.Rows != a.Cols || c.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: GemmTN shape mismatch A=%dx%d B=%dx%d C=%dx%d",
			a.Rows, a.Cols, b.Rows, b.Cols, c.Rows, c.Cols))
	}
	GemmTNRows(alpha, a, b, beta, c, 0, a.Cols)
}

// GemmTNRows computes rows [lo, hi) of C = alpha*A^T*B + beta*C (a row of C
// corresponds to a column of A).
func GemmTNRows(alpha float64, a, b *Matrix, beta float64, c *Matrix, lo, hi int) {
	for i := lo; i < hi; i++ {
		crow := c.Row(i)
		if beta == 0 {
			for j := range crow {
				crow[j] = 0
			}
		} else if beta != 1 {
			for j := range crow {
				crow[j] *= beta
			}
		}
		for k := 0; k < a.Rows; k++ {
			av := alpha * a.At(k, i)
			if av == 0 {
				continue
			}
			brow := b.Row(k)
			for j, bv := range brow {
				crow[j] += av * bv
			}
		}
	}
}

// Outer computes A += alpha * x * y^T for A (len(x) x len(y)).
func Outer(alpha float64, x, y []float64, a *Matrix) {
	if a.Rows != len(x) || a.Cols != len(y) {
		panic(fmt.Sprintf("tensor: Outer shape mismatch A=%dx%d x=%d y=%d",
			a.Rows, a.Cols, len(x), len(y)))
	}
	for i, xv := range x {
		if xv == 0 {
			continue
		}
		row := a.Row(i)
		s := alpha * xv
		for j, yv := range y {
			row[j] += s * yv
		}
	}
}

// Softmax writes softmax(x) into dst using the max-shift for numerical
// stability. dst and x may alias.
func Softmax(dst, x []float64) {
	if len(dst) != len(x) {
		panic("tensor: Softmax length mismatch")
	}
	m := Max(x)
	var z float64
	for i, v := range x {
		e := math.Exp(v - m)
		dst[i] = e
		z += e
	}
	inv := 1 / z
	for i := range dst {
		dst[i] *= inv
	}
}

// Sigmoid returns the logistic function 1/(1+exp(-v)) computed stably for
// large |v|.
func Sigmoid(v float64) float64 {
	if v >= 0 {
		return 1 / (1 + math.Exp(-v))
	}
	e := math.Exp(v)
	return e / (1 + e)
}

// SigmoidTo applies Sigmoid element-wise: dst[i] = Sigmoid(x[i]).
func SigmoidTo(dst, x []float64) {
	for i, v := range x {
		dst[i] = Sigmoid(v)
	}
}

// Log1pExp returns log(1+exp(v)) computed stably (softplus).
func Log1pExp(v float64) float64 {
	if v > 0 {
		return v + math.Log1p(math.Exp(-v))
	}
	return math.Log1p(math.Exp(v))
}

// AllFinite reports whether every element of x is finite.
func AllFinite(x []float64) bool {
	for _, v := range x {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}
