package data

import (
	"fmt"
	"sort"
)

// Spec describes one dataset of the study with the shape statistics of the
// paper's Table I plus the MLP architecture used for it.
type Spec struct {
	Name string
	N    int // number of examples at full scale
	D    int // number of features

	// Per-example nnz distribution targets (Table I "#nnz/exp").
	MinNNZ int
	MaxNNZ int
	AvgNNZ float64

	// MLPInputs is the input-layer width after the paper's
	// feature-grouping transform (54/300/50/50/300).
	MLPInputs int
	// MLPHidden are the hidden layer widths (always 10, 5 in the paper).
	MLPHidden []int
	// MLPOutputs is the output layer width (always 2 in the paper).
	MLPOutputs int

	// NoiseRate is the label-noise level of the planted model: the
	// standard deviation of Gaussian noise added to the planted margin
	// before taking the sign. It controls the attainable optimal loss.
	NoiseRate float64

	// Seed makes generation deterministic per dataset.
	Seed int64

	// ZipfS is the skew of the feature-popularity distribution used to
	// draw column indices for sparse rows (>1); 0 means uniform.
	ZipfS float64
}

// Dense reports whether the dataset is complete (every feature present in
// every example), i.e. covtype-like.
func (s Spec) Dense() bool { return s.MinNNZ == s.D && s.MaxNNZ == s.D }

// MLPLayers returns the full architecture as a widths slice, e.g.
// [54 10 5 2], matching Table I's "MLP architecture" column.
func (s Spec) MLPLayers() []int {
	l := append([]int{s.MLPInputs}, s.MLPHidden...)
	return append(l, s.MLPOutputs)
}

// ArchString renders the architecture like the paper: "54-10-5-2".
func (s Spec) ArchString() string {
	out := ""
	for i, w := range s.MLPLayers() {
		if i > 0 {
			out += "-"
		}
		out += fmt.Sprintf("%d", w)
	}
	return out
}

// registry holds the five study datasets keyed by name, with the Table I
// statistics as generation targets.
var registry = map[string]Spec{
	"covtype": {
		Name: "covtype", N: 581012, D: 54,
		MinNNZ: 54, MaxNNZ: 54, AvgNNZ: 54,
		MLPInputs: 54, MLPHidden: []int{10, 5}, MLPOutputs: 2,
		NoiseRate: 0.8, Seed: 4101,
	},
	"w8a": {
		Name: "w8a", N: 64700, D: 300,
		MinNNZ: 0, MaxNNZ: 114, AvgNNZ: 12,
		MLPInputs: 300, MLPHidden: []int{10, 5}, MLPOutputs: 2,
		NoiseRate: 0.5, Seed: 4102, ZipfS: 1.3,
	},
	"real-sim": {
		Name: "real-sim", N: 72309, D: 20958,
		MinNNZ: 1, MaxNNZ: 3484, AvgNNZ: 51,
		MLPInputs: 50, MLPHidden: []int{10, 5}, MLPOutputs: 2,
		NoiseRate: 0.3, Seed: 4103, ZipfS: 1.2,
	},
	"rcv1": {
		Name: "rcv1", N: 677399, D: 47236,
		MinNNZ: 4, MaxNNZ: 1224, AvgNNZ: 73,
		MLPInputs: 50, MLPHidden: []int{10, 5}, MLPOutputs: 2,
		NoiseRate: 0.3, Seed: 4104, ZipfS: 1.15,
	},
	"news": {
		Name: "news", N: 19996, D: 1355191,
		MinNNZ: 1, MaxNNZ: 16423, AvgNNZ: 455,
		MLPInputs: 300, MLPHidden: []int{10, 5}, MLPOutputs: 2,
		NoiseRate: 0.3, Seed: 4105, ZipfS: 1.1,
	},
}

// Names returns the registry dataset names in the paper's Table I order.
func Names() []string {
	return []string{"covtype", "w8a", "real-sim", "rcv1", "news"}
}

// Lookup returns the Spec for a registered dataset name.
func Lookup(name string) (Spec, error) {
	s, ok := registry[name]
	if !ok {
		known := make([]string, 0, len(registry))
		for k := range registry {
			known = append(known, k)
		}
		sort.Strings(known)
		return Spec{}, fmt.Errorf("data: unknown dataset %q (have %v)", name, known)
	}
	return s, nil
}

// Scaled returns a copy of the spec with the example count scaled by factor
// (dimensionality and sparsity targets are preserved — the paper's findings
// depend on d and density, while N only stretches epochs). The result keeps
// at least 64 examples.
func (s Spec) Scaled(factor float64) Spec {
	if factor <= 0 || factor > 1 {
		factor = 1
	}
	n := int(float64(s.N) * factor)
	if n < 64 {
		n = 64
	}
	out := s
	out.N = n
	return out
}
