// Package data provides the training datasets of the study. The paper uses
// five real LIBSVM datasets (covtype, w8a, real-sim, rcv1, news20 — Table I);
// those exact files are not redistributable here, so the package generates
// deterministic synthetic equivalents matched to Table I's shape statistics
// (N, d, per-example nnz min/avg/max, density) with labels planted from a
// hidden ground-truth model. A LIBSVM reader/writer is included so the real
// files can be dropped in unchanged.
//
// The package also implements the paper's MLP preprocessing: consecutive
// features are grouped by averaging to match the MLP input-layer width
// (50 or 300), which raises the density exactly as Table I reports.
package data

import (
	"fmt"

	"repro/internal/sparse"
	"repro/internal/tensor"
)

// Dataset is a labelled training set. Features are stored as CSR; dense
// datasets (covtype) are simply CSR at 100% density and can be materialised
// with DenseX. Labels are ±1.
type Dataset struct {
	Name string
	X    *sparse.CSR
	Y    []float64 // len == X.NumRows, values in {-1, +1}

	dense *tensor.Matrix // lazily materialised dense view
}

// N returns the number of training examples.
func (d *Dataset) N() int { return d.X.NumRows }

// D returns the number of features.
func (d *Dataset) D() int { return d.X.NumCols }

// DenseX returns (and caches) the dense feature matrix. It panics if the
// dense representation would exceed maxElems elements (0 = no limit),
// mirroring the paper's Table I where rcv1 and news cannot be densified.
func (d *Dataset) DenseX(maxElems int64) *tensor.Matrix {
	if d.dense == nil {
		d.dense = d.X.ToDense(maxElems)
	}
	return d.dense
}

// CanDensify reports whether the dense representation fits under maxBytes.
func (d *Dataset) CanDensify(maxBytes int64) bool {
	return d.X.DenseBytes() <= maxBytes
}

// Validate checks the dataset invariants: a structurally valid CSR and ±1
// labels of matching length.
func (d *Dataset) Validate() error {
	if err := d.X.Validate(); err != nil {
		return fmt.Errorf("dataset %s: %w", d.Name, err)
	}
	if len(d.Y) != d.X.NumRows {
		return fmt.Errorf("dataset %s: %d labels for %d examples", d.Name, len(d.Y), d.X.NumRows)
	}
	for i, y := range d.Y {
		if y != 1 && y != -1 {
			return fmt.Errorf("dataset %s: label[%d] = %v, want +-1", d.Name, i, y)
		}
	}
	return nil
}

// Stats summarises a dataset the way the paper's Table I does.
type Stats struct {
	Name        string
	Examples    int
	Features    int
	MinNNZ      int
	MaxNNZ      int
	AvgNNZ      float64
	DensityPct  float64 // avg/#features as a percentage
	SparseBytes int64
	DenseBytes  int64
}

// ComputeStats derives Table I-style statistics for d.
func ComputeStats(d *Dataset) Stats {
	min, max, avg := d.X.RowStats()
	return Stats{
		Name:        d.Name,
		Examples:    d.N(),
		Features:    d.D(),
		MinNNZ:      min,
		MaxNNZ:      max,
		AvgNNZ:      avg,
		DensityPct:  100 * avg / float64(d.D()),
		SparseBytes: d.X.SparseBytes(),
		DenseBytes:  d.X.DenseBytes(),
	}
}

// String renders the stats as one Table I row.
func (s Stats) String() string {
	return fmt.Sprintf("%-9s N=%-7d d=%-8d nnz=%d..%d (avg %.1f) density=%.2f%% sparse=%s dense=%s",
		s.Name, s.Examples, s.Features, s.MinNNZ, s.MaxNNZ, s.AvgNNZ, s.DensityPct,
		FormatBytes(s.SparseBytes), FormatBytes(s.DenseBytes))
}

// FormatBytes renders a byte count with a binary-prefix unit.
func FormatBytes(b int64) string {
	const (
		kb = 1 << 10
		mb = 1 << 20
		gb = 1 << 30
	)
	switch {
	case b >= gb:
		return fmt.Sprintf("%.1fGB", float64(b)/gb)
	case b >= mb:
		return fmt.Sprintf("%.1fMB", float64(b)/mb)
	case b >= kb:
		return fmt.Sprintf("%.1fKB", float64(b)/kb)
	}
	return fmt.Sprintf("%dB", b)
}
