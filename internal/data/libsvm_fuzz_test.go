package data

import (
	"bytes"
	"math"
	"testing"
)

// FuzzReadLIBSVM drives the LIBSVM parser with arbitrary text. The property
// is two-sided: any input the parser rejects must produce an error (never a
// panic), and any input it accepts must validate and survive a
// write-reparse round trip bit-for-bit.
func FuzzReadLIBSVM(f *testing.F) {
	// Seeds: the happy path (including a real generated dataset), plus the
	// malformed shapes the parser has explicit errors for. The generated
	// seed is kept tiny: minimizing mutants of a multi-kilobyte seed can eat
	// the whole fuzz budget on a small CI box.
	var gen bytes.Buffer
	spec, err := Lookup("w8a")
	if err != nil {
		f.Fatal(err)
	}
	if err := WriteLIBSVM(&gen, Generate(spec.Scaled(8/float64(spec.N)))); err != nil {
		f.Fatal(err)
	}
	f.Add(gen.Bytes())
	f.Add([]byte("+1 1:0.5 3:1\n-1 2:0.25\n"))
	f.Add([]byte("# comment\n\n+1 7:1e-3\n"))
	f.Add([]byte("notalabel 1:1\n"))
	f.Add([]byte("+1 3:1 2:1\n"))        // non-increasing indices
	f.Add([]byte("+1 0:1\n"))            // 1-based floor
	f.Add([]byte("+1 2147483648:1\n"))   // int32 overflow guard
	f.Add([]byte("+1 1:\n"))             // missing value
	f.Add([]byte("+1 nocolon\n"))        // malformed pair
	f.Add([]byte("0 1:nan 2:inf\n"))     // non-finite values
	f.Add([]byte("-0.0 1:-0\n+1 1:1\n")) // signed zeros

	f.Fuzz(func(t *testing.T, in []byte) {
		ds, err := ReadLIBSVM(bytes.NewReader(in), "fuzz", 0)
		if err != nil {
			return
		}
		if err := ds.Validate(); err != nil {
			t.Fatalf("parser accepted an invalid dataset: %v", err)
		}
		var buf bytes.Buffer
		if err := WriteLIBSVM(&buf, ds); err != nil {
			t.Fatalf("writing a parsed dataset: %v", err)
		}
		ds2, err := ReadLIBSVM(bytes.NewReader(buf.Bytes()), "fuzz", ds.D())
		if err != nil {
			t.Fatalf("reparsing our own output: %v\n%s", err, buf.String())
		}
		if ds2.N() != ds.N() || ds2.X.NNZ() != ds.X.NNZ() {
			t.Fatalf("round trip changed shape: %dx%d nnz %d -> %dx%d nnz %d",
				ds.N(), ds.D(), ds.X.NNZ(), ds2.N(), ds2.D(), ds2.X.NNZ())
		}
		for i := 0; i < ds.N(); i++ {
			if ds.Y[i] != ds2.Y[i] {
				t.Fatalf("label %d changed: %v -> %v", i, ds.Y[i], ds2.Y[i])
			}
			c1, v1 := ds.X.Row(i)
			c2, v2 := ds2.X.Row(i)
			if len(c1) != len(c2) {
				t.Fatalf("row %d nnz changed: %d -> %d", i, len(c1), len(c2))
			}
			for k := range c1 {
				// Bitwise comparison so NaN payloads and signed zeros count
				// as equal only when %g really round-tripped them.
				if c1[k] != c2[k] || math.Float64bits(v1[k]) != math.Float64bits(v2[k]) {
					t.Fatalf("row %d entry %d changed: %d:%x -> %d:%x",
						i, k, c1[k], math.Float64bits(v1[k]), c2[k], math.Float64bits(v2[k]))
				}
			}
		}
	})
}
