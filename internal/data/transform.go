package data

import (
	"fmt"

	"repro/internal/sparse"
)

// GroupFeatures applies the paper's MLP preprocessing: the d original
// features are partitioned into `inputs` groups of consecutive features and
// each group is replaced by the average of its values (zeros included in the
// divisor). A group is stored iff at least one member feature is non-zero,
// so the transformed density rises exactly the way Table I's "MLP sparsity"
// column describes (e.g. real-sim 0.25% -> ~43%).
func GroupFeatures(d *Dataset, inputs int) (*Dataset, error) {
	if inputs <= 0 {
		return nil, fmt.Errorf("data: GroupFeatures inputs=%d", inputs)
	}
	src := d.X
	if inputs >= src.NumCols {
		// Nothing to group (covtype, w8a keep their native width).
		return d, nil
	}
	groupSize := (src.NumCols + inputs - 1) / inputs
	rowPtr := make([]int64, src.NumRows+1)
	var colIdx []int32
	var values []float64
	acc := make([]float64, inputs)
	touched := make([]int32, 0, inputs)
	for i := 0; i < src.NumRows; i++ {
		cols, vals := src.Row(i)
		touched = touched[:0]
		for k, c := range cols {
			g := int32(int(c) / groupSize)
			if acc[g] == 0 {
				touched = append(touched, g)
			}
			acc[g] += vals[k]
		}
		sortInt32(touched)
		for _, g := range touched {
			colIdx = append(colIdx, g)
			values = append(values, acc[g]/float64(groupSize))
			acc[g] = 0
		}
		rowPtr[i+1] = int64(len(values))
	}
	out := &sparse.CSR{
		NumRows: src.NumRows, NumCols: inputs,
		RowPtr: rowPtr, ColIdx: colIdx, Values: values,
	}
	return &Dataset{Name: d.Name + "-mlp", X: out, Y: d.Y}, nil
}

// ForMLP returns the dataset transformed to the spec's MLP input width.
func ForMLP(d *Dataset, spec Spec) (*Dataset, error) {
	return GroupFeatures(d, spec.MLPInputs)
}
