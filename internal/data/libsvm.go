package data

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"repro/internal/sparse"
)

// ReadLIBSVM parses the LIBSVM sparse text format:
//
//	<label> <index>:<value> <index>:<value> ...
//
// Indices are 1-based in the file and converted to 0-based columns. Labels
// are normalised to ±1 (0 and negative labels map to -1, everything else to
// +1, matching common binary-classification usage of these datasets). If
// numFeatures is 0 the width is inferred from the largest index seen.
func ReadLIBSVM(r io.Reader, name string, numFeatures int) (*Dataset, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	var (
		rowPtr = []int64{0}
		colIdx []int32
		values []float64
		labels []float64
		maxCol int32 = -1
		lineNo int
	)
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		label, err := strconv.ParseFloat(fields[0], 64)
		if err != nil {
			return nil, fmt.Errorf("libsvm %s:%d: bad label %q: %w", name, lineNo, fields[0], err)
		}
		if label > 0 {
			labels = append(labels, 1)
		} else {
			labels = append(labels, -1)
		}
		prev := int32(-1)
		for _, f := range fields[1:] {
			colon := strings.IndexByte(f, ':')
			if colon < 0 {
				return nil, fmt.Errorf("libsvm %s:%d: malformed pair %q", name, lineNo, f)
			}
			idx, err := strconv.Atoi(f[:colon])
			// The upper bound guards the int32 column conversion: an index
			// past MaxInt32 would otherwise wrap and silently land in the
			// wrong (possibly in-range) column.
			if err != nil || idx < 1 || idx > math.MaxInt32 {
				return nil, fmt.Errorf("libsvm %s:%d: bad index %q", name, lineNo, f[:colon])
			}
			val, err := strconv.ParseFloat(f[colon+1:], 64)
			if err != nil {
				return nil, fmt.Errorf("libsvm %s:%d: bad value %q: %w", name, lineNo, f[colon+1:], err)
			}
			c := int32(idx - 1)
			if c <= prev {
				return nil, fmt.Errorf("libsvm %s:%d: indices not increasing at %d", name, lineNo, idx)
			}
			prev = c
			if c > maxCol {
				maxCol = c
			}
			colIdx = append(colIdx, c)
			values = append(values, val)
		}
		rowPtr = append(rowPtr, int64(len(values)))
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("libsvm %s: %w", name, err)
	}
	width := numFeatures
	if width == 0 {
		width = int(maxCol) + 1
	} else if int(maxCol) >= width {
		return nil, fmt.Errorf("libsvm %s: index %d exceeds declared width %d", name, maxCol+1, width)
	}
	d := &Dataset{
		Name: name,
		X: &sparse.CSR{
			NumRows: len(labels), NumCols: width,
			RowPtr: rowPtr, ColIdx: colIdx, Values: values,
		},
		Y: labels,
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return d, nil
}

// WriteLIBSVM serialises the dataset in LIBSVM format (1-based indices).
func WriteLIBSVM(w io.Writer, d *Dataset) error {
	bw := bufio.NewWriter(w)
	for i := 0; i < d.N(); i++ {
		if _, err := fmt.Fprintf(bw, "%+g", d.Y[i]); err != nil {
			return err
		}
		cols, vals := d.X.Row(i)
		for k, c := range cols {
			if _, err := fmt.Fprintf(bw, " %d:%g", c+1, vals[k]); err != nil {
				return err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}
