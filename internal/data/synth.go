package data

import (
	"math"
	"math/rand"

	"repro/internal/sparse"
)

// Generate builds a deterministic synthetic dataset matching the spec's
// Table I shape statistics. Labels come from a planted ground-truth model:
// y_i = sign(x_i . w* + noise), so LR and SVM have a real signal to recover
// and the loss curves behave like those of the natural datasets.
//
// Dense specs (covtype) produce rows with every feature present, values in
// [0, 1]. Sparse specs draw the per-row nnz count from a heavy-tailed
// distribution matched to (min, avg, max), draw column indices from a Zipf
// law (text-like feature popularity, which also concentrates Hogwild update
// conflicts on hot features as in real data), and L2-normalise each row as
// the LIBSVM versions of real-sim/rcv1/news are.
func Generate(spec Spec) *Dataset {
	rng := rand.New(rand.NewSource(spec.Seed))
	truth := plantedModel(rng, spec.D)
	if spec.Dense() {
		return generateDense(spec, rng, truth)
	}
	return generateSparse(spec, rng, truth)
}

// plantedModel draws the hidden ground-truth weight vector. Weights decay
// with the feature index so that the popular (low-index, Zipf-favoured)
// features carry most of the signal — as in natural text corpora.
func plantedModel(rng *rand.Rand, d int) []float64 {
	w := make([]float64, d)
	for j := range w {
		scale := 1.0 / math.Sqrt(1+float64(j)/64)
		w[j] = rng.NormFloat64() * scale
	}
	return w
}

// generateDense builds a covtype-like complete dataset: the real covtype has
// 10 quantitative columns plus two one-hot groups (4 wilderness areas, 40
// soil types); its LIBSVM distribution stores all 54 entries per example
// (Table I: nnz 54, density 100%). Reproducing that structure matters — a
// matrix of 54 independent uniform columns would be far worse conditioned
// than the real data and batch gradient descent would crawl.
func generateDense(spec Spec, rng *rand.Rand, truth []float64) *Dataset {
	continuous := spec.D
	var groups []int
	if spec.D == 54 {
		continuous, groups = 10, []int{4, 40}
	}
	m := &sparse.CSR{NumRows: spec.N, NumCols: spec.D}
	m.RowPtr = make([]int64, spec.N+1)
	m.ColIdx = make([]int32, spec.N*spec.D)
	m.Values = make([]float64, spec.N*spec.D)
	y := make([]float64, spec.N)
	for i := 0; i < spec.N; i++ {
		lo := i * spec.D
		m.RowPtr[i+1] = int64(lo + spec.D)
		row := m.Values[lo : lo+spec.D]
		for j := 0; j < spec.D; j++ {
			m.ColIdx[lo+j] = int32(j)
		}
		var margin float64
		for j := 0; j < continuous; j++ {
			v := rng.Float64() // scaled to [0,1], covtype-style
			row[j] = v
			margin += (v - 0.5) * truth[j] // centred signal
		}
		off := continuous
		for _, g := range groups {
			hot := rng.Intn(g)
			row[off+hot] = 1 // structural zeros elsewhere keep density 100%
			margin += truth[off+hot]
			off += g
		}
		y[i] = signLabel(margin + spec.NoiseRate*rng.NormFloat64())
	}
	return &Dataset{Name: spec.Name, X: m, Y: y}
}

func generateSparse(spec Spec, rng *rand.Rand, truth []float64) *Dataset {
	// Per-row nnz model: nnz = min + floor((max-min) * u^k) with
	// E[u^k] = 1/(k+1) chosen so the mean hits AvgNNZ. This yields the
	// heavy right tail (few very long documents) seen in Table I.
	k := 1.0
	if spec.AvgNNZ > float64(spec.MinNNZ) {
		k = float64(spec.MaxNNZ-spec.MinNNZ)/(spec.AvgNNZ-float64(spec.MinNNZ)) - 1
	}
	if k < 0 {
		k = 0
	}
	s := spec.ZipfS
	if s <= 1 {
		s = 1.1
	}
	zipf := rand.NewZipf(rng, s, 8, uint64(spec.D-1))

	rowPtr := make([]int64, spec.N+1)
	var colIdx []int32
	var values []float64
	seen := make(map[int32]struct{}, spec.MaxNNZ)
	cols := make([]int32, 0, spec.MaxNNZ)
	df := make([]int32, spec.D) // per-feature document frequency

	// Pass 1: structure and raw term frequencies.
	for i := 0; i < spec.N; i++ {
		span := float64(spec.MaxNNZ - spec.MinNNZ)
		nnz := spec.MinNNZ + int(span*math.Pow(rng.Float64(), k))
		if nnz > spec.MaxNNZ {
			nnz = spec.MaxNNZ
		}
		clear(seen)
		cols = cols[:0]
		for len(cols) < nnz {
			c := int32(zipf.Uint64())
			if _, dup := seen[c]; dup {
				// Collision on a hot feature: fall back to a
				// uniform draw so long rows terminate.
				c = int32(rng.Intn(spec.D))
				if _, dup2 := seen[c]; dup2 {
					continue
				}
			}
			seen[c] = struct{}{}
			cols = append(cols, c)
			df[c]++
		}
		sortInt32(cols)
		for _, c := range cols {
			colIdx = append(colIdx, c)
			values = append(values, math.Abs(rng.NormFloat64())) // raw tf
		}
		rowPtr[i+1] = int64(len(values))
	}

	// Pass 2: tf-idf weighting (the LIBSVM real-sim/rcv1/news releases
	// are tf-idf + unit-normalised). Down-weighting the Zipf-hot features
	// is what keeps real text problems well conditioned, so the synthetic
	// equivalents must do it too.
	idf := make([]float64, spec.D)
	for c := range idf {
		idf[c] = math.Log(float64(spec.N+1) / float64(df[c]+1))
	}
	y := make([]float64, spec.N)
	for i := 0; i < spec.N; i++ {
		lo, hi := rowPtr[i], rowPtr[i+1]
		var norm float64
		for j := lo; j < hi; j++ {
			values[j] *= idf[colIdx[j]]
			norm += values[j] * values[j]
		}
		var margin float64
		if norm > 0 {
			inv := 1 / math.Sqrt(norm)
			for j := lo; j < hi; j++ {
				values[j] *= inv
				margin += values[j] * truth[colIdx[j]]
			}
		}
		y[i] = signLabel(margin + spec.NoiseRate*rng.NormFloat64())
	}
	m := &sparse.CSR{
		NumRows: spec.N, NumCols: spec.D,
		RowPtr: rowPtr, ColIdx: colIdx, Values: values,
	}
	return &Dataset{Name: spec.Name, X: m, Y: y}
}

func signLabel(v float64) float64 {
	if v >= 0 {
		return 1
	}
	return -1
}

// sortInt32 is an insertion/shell sort adequate for per-row column lists.
func sortInt32(a []int32) {
	for gap := len(a) / 2; gap > 0; gap /= 2 {
		for i := gap; i < len(a); i++ {
			v := a[i]
			j := i
			for ; j >= gap && a[j-gap] > v; j -= gap {
				a[j] = a[j-gap]
			}
			a[j] = v
		}
	}
}
