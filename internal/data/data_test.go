package data

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/sparse"
)

func TestRegistryMatchesTableI(t *testing.T) {
	// Full-scale registry targets must equal the paper's Table I.
	want := map[string]struct {
		n, d, minNNZ, maxNNZ int
		avg                  float64
		mlpIn                int
		arch                 string
	}{
		"covtype":  {581012, 54, 54, 54, 54, 54, "54-10-5-2"},
		"w8a":      {64700, 300, 0, 114, 12, 300, "300-10-5-2"},
		"real-sim": {72309, 20958, 1, 3484, 51, 50, "50-10-5-2"},
		"rcv1":     {677399, 47236, 4, 1224, 73, 50, "50-10-5-2"},
		"news":     {19996, 1355191, 1, 16423, 455, 300, "300-10-5-2"},
	}
	for _, name := range Names() {
		spec, err := Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		w := want[name]
		if spec.N != w.n || spec.D != w.d {
			t.Errorf("%s: N,d = %d,%d want %d,%d", name, spec.N, spec.D, w.n, w.d)
		}
		if spec.MinNNZ != w.minNNZ || spec.MaxNNZ != w.maxNNZ || spec.AvgNNZ != w.avg {
			t.Errorf("%s: nnz %d..%d avg %v, want %d..%d avg %v",
				name, spec.MinNNZ, spec.MaxNNZ, spec.AvgNNZ, w.minNNZ, w.maxNNZ, w.avg)
		}
		if spec.ArchString() != w.arch {
			t.Errorf("%s: arch %s want %s", name, spec.ArchString(), w.arch)
		}
	}
}

func TestLookupUnknown(t *testing.T) {
	if _, err := Lookup("nope"); err == nil {
		t.Fatal("unknown dataset did not error")
	}
}

func TestScaled(t *testing.T) {
	spec, _ := Lookup("covtype")
	s := spec.Scaled(0.01)
	if s.N != 5810 {
		t.Fatalf("scaled N = %d", s.N)
	}
	if s.D != spec.D {
		t.Fatal("scaling changed dimensionality")
	}
	if got := spec.Scaled(1e-9).N; got != 64 {
		t.Fatalf("floor N = %d, want 64", got)
	}
	if got := spec.Scaled(-1).N; got != spec.N {
		t.Fatalf("invalid factor should keep N, got %d", got)
	}
}

func TestGenerateDense(t *testing.T) {
	spec, _ := Lookup("covtype")
	ds := Generate(spec.Scaled(0.002))
	if err := ds.Validate(); err != nil {
		t.Fatal(err)
	}
	st := ComputeStats(ds)
	if st.MinNNZ != 54 || st.MaxNNZ != 54 {
		t.Fatalf("covtype not dense: nnz %d..%d", st.MinNNZ, st.MaxNNZ)
	}
	if st.DensityPct != 100 {
		t.Fatalf("covtype density = %v", st.DensityPct)
	}
	// Class balance should be rough, not degenerate.
	var pos int
	for _, y := range ds.Y {
		if y > 0 {
			pos++
		}
	}
	frac := float64(pos) / float64(ds.N())
	if frac < 0.15 || frac > 0.85 {
		t.Fatalf("degenerate label balance: %.2f positive", frac)
	}
}

func TestGenerateSparseMatchesTargets(t *testing.T) {
	for _, name := range []string{"w8a", "real-sim", "rcv1", "news"} {
		spec, _ := Lookup(name)
		scaled := spec.Scaled(2000.0 / float64(spec.N))
		ds := Generate(scaled)
		if err := ds.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		st := ComputeStats(ds)
		if st.MinNNZ < spec.MinNNZ {
			t.Errorf("%s: min nnz %d below target %d", name, st.MinNNZ, spec.MinNNZ)
		}
		if st.MaxNNZ > spec.MaxNNZ {
			t.Errorf("%s: max nnz %d above target %d", name, st.MaxNNZ, spec.MaxNNZ)
		}
		// Mean within 35% of the Table I average (sampling noise at
		// this reduced scale).
		if st.AvgNNZ < 0.65*spec.AvgNNZ || st.AvgNNZ > 1.35*spec.AvgNNZ {
			t.Errorf("%s: avg nnz %.1f, target %.1f", name, st.AvgNNZ, spec.AvgNNZ)
		}
	}
}

func TestGenerateDenseCovtypeStructure(t *testing.T) {
	// The real covtype is 10 quantitative features + one-hot wilderness
	// (4) + one-hot soil (40); the synthetic equivalent must reproduce
	// that layout while keeping all 54 entries structurally present.
	spec, _ := Lookup("covtype")
	ds := Generate(spec.Scaled(0.002))
	for i := 0; i < ds.N(); i++ {
		cols, vals := ds.X.Row(i)
		if len(cols) != 54 {
			t.Fatalf("row %d nnz %d", i, len(cols))
		}
		for j := 0; j < 10; j++ {
			if vals[j] < 0 || vals[j] > 1 {
				t.Fatalf("continuous feature out of [0,1]: %v", vals[j])
			}
		}
		for _, g := range [][2]int{{10, 14}, {14, 54}} {
			ones := 0
			for j := g[0]; j < g[1]; j++ {
				switch vals[j] {
				case 1:
					ones++
				case 0:
				default:
					t.Fatalf("one-hot group value %v", vals[j])
				}
			}
			if ones != 1 {
				t.Fatalf("row %d group %v has %d hot entries", i, g, ones)
			}
		}
	}
}

func TestGenerateSparseTFIDFDownweightsHotFeatures(t *testing.T) {
	// tf-idf must make hot (low-index, Zipf-favoured) features carry
	// smaller values on average than rare ones.
	// The comparison must be within rows: across rows the unit
	// normalisation couples value magnitude to row length.
	spec, _ := Lookup("rcv1")
	ds := Generate(spec.Scaled(3000.0 / float64(spec.N)))
	var hotLower, total int
	for i := 0; i < ds.N(); i++ {
		cols, vals := ds.X.Row(i)
		if len(cols) < 40 {
			continue
		}
		var hotSum, hotN, coldSum, coldN float64
		for k, c := range cols {
			if c < 20 {
				hotSum += vals[k]
				hotN++
			} else if c > 500 {
				coldSum += vals[k]
				coldN++
			}
		}
		if hotN == 0 || coldN == 0 {
			continue
		}
		total++
		if hotSum/hotN < coldSum/coldN {
			hotLower++
		}
	}
	if total < 20 {
		t.Skipf("only %d comparable rows", total)
	}
	if frac := float64(hotLower) / float64(total); frac < 0.75 {
		t.Fatalf("hot features lighter than cold in only %.0f%% of rows", frac*100)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	spec, _ := Lookup("w8a")
	spec = spec.Scaled(0.01)
	a := Generate(spec)
	b := Generate(spec)
	if a.N() != b.N() || a.X.NNZ() != b.X.NNZ() {
		t.Fatal("generation not deterministic in shape")
	}
	for i, v := range a.X.Values {
		if b.X.Values[i] != v {
			t.Fatal("generation not deterministic in values")
		}
	}
	for i, y := range a.Y {
		if b.Y[i] != y {
			t.Fatal("generation not deterministic in labels")
		}
	}
}

func TestSparseRowsUnitNorm(t *testing.T) {
	spec, _ := Lookup("real-sim")
	ds := Generate(spec.Scaled(0.005))
	for i := 0; i < ds.N(); i++ {
		_, vals := ds.X.Row(i)
		var n float64
		for _, v := range vals {
			n += v * v
		}
		if len(vals) > 0 && math.Abs(n-1) > 1e-9 {
			t.Fatalf("row %d norm^2 = %v", i, n)
		}
	}
}

func TestGroupFeatures(t *testing.T) {
	spec, _ := Lookup("real-sim")
	ds := Generate(spec.Scaled(0.01))
	mlp, err := ForMLP(ds, spec)
	if err != nil {
		t.Fatal(err)
	}
	if mlp.D() != spec.MLPInputs {
		t.Fatalf("grouped width = %d, want %d", mlp.D(), spec.MLPInputs)
	}
	if err := mlp.Validate(); err != nil {
		t.Fatal(err)
	}
	// Density must increase substantially after grouping (Table I:
	// real-sim 0.25% -> 42.64%).
	before := ComputeStats(ds).DensityPct
	after := ComputeStats(mlp).DensityPct
	if after < 10*before {
		t.Fatalf("grouping density %v%% -> %v%%, expected a large increase", before, after)
	}
	if after > 100 {
		t.Fatalf("density over 100%%: %v", after)
	}
}

func TestGroupFeaturesIdentityForNarrow(t *testing.T) {
	spec, _ := Lookup("covtype")
	ds := Generate(spec.Scaled(0.001))
	out, err := GroupFeatures(ds, 54)
	if err != nil {
		t.Fatal(err)
	}
	if out != ds {
		t.Fatal("covtype should be returned unchanged (54 inputs = native width)")
	}
	if _, err := GroupFeatures(ds, 0); err == nil {
		t.Fatal("inputs=0 did not error")
	}
}

func TestGroupFeaturesAverages(t *testing.T) {
	// Hand-built: 6 features -> 2 groups of 3.
	ds := &Dataset{Name: "t", Y: []float64{1}}
	ds.X = mustCSR(t, 1, 6, map[[2]int]float64{{0, 0}: 3, {0, 2}: 3, {0, 4}: 6})
	out, err := GroupFeatures(ds, 2)
	if err != nil {
		t.Fatal(err)
	}
	cols, vals := out.X.Row(0)
	if len(cols) != 2 || cols[0] != 0 || cols[1] != 1 {
		t.Fatalf("cols = %v", cols)
	}
	if vals[0] != 2 || vals[1] != 2 {
		t.Fatalf("vals = %v (want group averages 2, 2)", vals)
	}
}

func TestLIBSVMRoundTrip(t *testing.T) {
	spec, _ := Lookup("w8a")
	ds := Generate(spec.Scaled(0.005))
	var buf bytes.Buffer
	if err := WriteLIBSVM(&buf, ds); err != nil {
		t.Fatal(err)
	}
	back, err := ReadLIBSVM(&buf, "w8a", spec.D)
	if err != nil {
		t.Fatal(err)
	}
	if back.N() != ds.N() || back.X.NNZ() != ds.X.NNZ() {
		t.Fatalf("round trip shape: %dx%d nnz %d vs %dx%d nnz %d",
			back.N(), back.D(), back.X.NNZ(), ds.N(), ds.D(), ds.X.NNZ())
	}
	for i := range back.Y {
		if back.Y[i] != ds.Y[i] {
			t.Fatalf("label %d mismatch", i)
		}
	}
	for k, v := range back.X.Values {
		if math.Abs(v-ds.X.Values[k]) > 1e-12 {
			t.Fatalf("value %d mismatch: %v vs %v", k, v, ds.X.Values[k])
		}
	}
}

func TestLIBSVMParsesLabels(t *testing.T) {
	in := "+1 1:0.5 3:1\n-1 2:2\n0 1:1\n"
	ds, err := ReadLIBSVM(strings.NewReader(in), "t", 0)
	if err != nil {
		t.Fatal(err)
	}
	if ds.N() != 3 || ds.D() != 3 {
		t.Fatalf("shape %dx%d", ds.N(), ds.D())
	}
	if ds.Y[0] != 1 || ds.Y[1] != -1 || ds.Y[2] != -1 {
		t.Fatalf("labels = %v", ds.Y)
	}
}

func TestLIBSVMErrors(t *testing.T) {
	cases := []string{
		"x 1:1\n",     // bad label
		"1 0:1\n",     // index < 1
		"1 a:1\n",     // bad index
		"1 1:z\n",     // bad value
		"1 2:1 1:1\n", // decreasing indices
		"1 11\n",      // missing colon
	}
	for _, in := range cases {
		if _, err := ReadLIBSVM(strings.NewReader(in), "t", 0); err == nil {
			t.Errorf("input %q did not error", in)
		}
	}
	if _, err := ReadLIBSVM(strings.NewReader("1 5:1\n"), "t", 3); err == nil {
		t.Error("index beyond declared width did not error")
	}
}

func TestDatasetValidateCatchesBadLabels(t *testing.T) {
	ds := &Dataset{Name: "t", Y: []float64{0.5}}
	ds.X = mustCSR(t, 1, 2, map[[2]int]float64{{0, 0}: 1})
	if err := ds.Validate(); err == nil {
		t.Fatal("label 0.5 not rejected")
	}
	ds.Y = []float64{1, -1}
	if err := ds.Validate(); err == nil {
		t.Fatal("label length mismatch not rejected")
	}
}

func TestDenseXCaching(t *testing.T) {
	spec, _ := Lookup("covtype")
	ds := Generate(spec.Scaled(0.0005))
	a := ds.DenseX(0)
	b := ds.DenseX(0)
	if a != b {
		t.Fatal("DenseX not cached")
	}
	if !ds.CanDensify(ds.X.DenseBytes()) {
		t.Fatal("CanDensify false at exact size")
	}
	if ds.CanDensify(ds.X.DenseBytes() - 1) {
		t.Fatal("CanDensify true below size")
	}
}

func TestFormatBytes(t *testing.T) {
	cases := map[int64]string{
		100:           "100B",
		4 << 10:       "4.0KB",
		155 << 20:     "155.0MB",
		(3 << 30) / 2: "1.5GB",
	}
	for in, want := range cases {
		if got := FormatBytes(in); got != want {
			t.Errorf("FormatBytes(%d) = %s, want %s", in, got, want)
		}
	}
}

func TestStatsString(t *testing.T) {
	spec, _ := Lookup("w8a")
	ds := Generate(spec.Scaled(0.01))
	s := ComputeStats(ds).String()
	if !strings.Contains(s, "w8a") || !strings.Contains(s, "density") {
		t.Fatalf("stats string %q", s)
	}
}

// mustCSR builds a small CSR from a coordinate map.
func mustCSR(t *testing.T, rows, cols int, entries map[[2]int]float64) *sparse.CSR {
	t.Helper()
	b := sparse.NewBuilder(rows, cols)
	for k, v := range entries {
		b.Add(k[0], k[1], v)
	}
	m := b.Build()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	return m
}
