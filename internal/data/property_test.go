package data

import (
	"testing"
	"testing/quick"
)

// Property tests over the generator and transforms (testing/quick), per the
// DESIGN testing strategy.

func TestPropertyScaledAlwaysValid(t *testing.T) {
	spec, _ := Lookup("rcv1")
	f := func(raw uint32) bool {
		factor := float64(raw%2_000_000) / 1_000_000 // [0, 2)
		s := spec.Scaled(factor)
		if s.N < 64 || s.N > spec.N {
			return false
		}
		return s.D == spec.D && s.AvgNNZ == spec.AvgNNZ
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyGeneratedDatasetsAlwaysValid(t *testing.T) {
	// Any registry dataset at any small scale generates a structurally
	// valid dataset whose nnz stay within the spec bounds.
	names := Names()
	f := func(pick uint8, nRaw uint16) bool {
		spec, err := Lookup(names[int(pick)%len(names)])
		if err != nil {
			return false
		}
		n := 64 + int(nRaw)%700
		ds := Generate(spec.Scaled(float64(n) / float64(spec.N)))
		if ds.Validate() != nil {
			return false
		}
		min, max, _ := ds.X.RowStats()
		return min >= spec.MinNNZ && max <= spec.MaxNNZ
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyGroupingNeverWidens(t *testing.T) {
	spec, _ := Lookup("real-sim")
	ds := Generate(spec.Scaled(600.0 / float64(spec.N)))
	f := func(raw uint16) bool {
		inputs := 1 + int(raw)%3000
		out, err := GroupFeatures(ds, inputs)
		if err != nil {
			return false
		}
		if out.D() > ds.D() {
			return false
		}
		if out.Validate() != nil {
			return false
		}
		// Grouping can only merge entries: per-row nnz never grows.
		for i := 0; i < out.N(); i++ {
			if out.X.RowNNZ(i) > ds.X.RowNNZ(i) {
				return false
			}
		}
		st := ComputeStats(out)
		return st.DensityPct <= 100+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyLabelsAreSigns(t *testing.T) {
	f := func(seedRaw uint16) bool {
		spec, _ := Lookup("w8a")
		s := spec.Scaled(0.005)
		s.Seed = int64(seedRaw)
		ds := Generate(s)
		for _, y := range ds.Y {
			if y != 1 && y != -1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}
