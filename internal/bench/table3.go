package bench

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/metrics"
)

// Table3Row mirrors one row of the paper's Table III: asynchronous SGD to
// the headline tolerance. Unlike the synchronous case, every device has its
// own statistical efficiency, so each is driven to convergence separately.
// Device order is [gpu, cpu-seq, cpu-par].
type Table3Row struct {
	Task    string
	Dataset string
	TTC     [3]float64
	TPI     [3]float64
	Epochs  [3]int // -1 = ∞ (did not reach the tolerance in the budget)
	// SpeedupSeqPar = TPI(cpu-seq)/TPI(cpu-par); SpeedupGPUPar =
	// TPI(gpu)/TPI(cpu-par) — the paper's two speedup columns (values
	// below 1 in the latter mean the GPU iterates faster).
	SpeedupSeqPar float64
	SpeedupGPUPar float64
	Step          float64
}

// Table3 reproduces the paper's Table III: Hogwild for LR/SVM (sequential,
// 56-thread CPU, simulated-GPU warps) and Hogbatch (batch 512) for MLP.
func (h *Harness) Table3() []Table3Row {
	var rows []Table3Row
	for _, task := range h.opts.Tasks {
		for _, dsName := range h.opts.Datasets {
			rows = append(rows, h.table3Row(task, dsName))
		}
	}
	if h.opts.Out != nil {
		h.printTable3(rows)
	}
	return rows
}

func (h *Harness) table3Row(task, dsName string) Table3Row {
	t := h.task(dsName, task)
	init := t.m.InitParams(1)
	row := Table3Row{Task: task, Dataset: dsName, Step: t.asyncStep}
	for di, dev := range table2Devices {
		step := t.asyncStep
		if dev == "gpu" && t.asyncStepGPU > 0 {
			step = t.asyncStepGPU
		}
		epochs := make([]int, h.opts.Repeats)
		ttcs := make([]float64, h.opts.Repeats)
		tpis := make([]float64, h.opts.Repeats)
		for rep := 0; rep < h.opts.Repeats; rep++ {
			e := h.asyncEngine(dsName, task, step, dev)
			if s, ok := e.(interface{ SetShuffleSeed(int64) }); ok {
				s.SetShuffleSeed(99 + int64(rep))
			}
			w := append([]float64(nil), init...)
			res := core.RunToConvergence(e, t.m, t.ds, w, core.DriverOpts{
				OptLoss:       t.opt,
				InitLoss:      t.initLoss,
				MaxEpochs:     h.opts.MaxEpochs,
				Tolerances:    []float64{h.opts.Tol},
				PlateauEpochs: 120,
				Rec:           h.recorder(e.Name(), dsName),
			})
			epochs[rep] = res.EpochsTo[h.opts.Tol]
			ttcs[rep] = res.SecondsTo[h.opts.Tol]
			tpis[rep] = res.SecPerEpoch
		}
		epSum := metrics.MeanEpochs(epochs)
		ttcSum := metrics.Summarize(ttcs)
		row.TPI[di] = metrics.Summarize(tpis).Mean
		if epSum.N == 0 {
			row.Epochs[di] = -1
			row.TTC[di] = inf()
		} else {
			row.Epochs[di] = int(epSum.Mean + 0.5)
			row.TTC[di] = ttcSum.Mean
		}
		h.logf("# table3 %s/%s %s: epochs=%s tpi=%s (%d reps)\n",
			task, dsName, dev, fmtEpochs(row.Epochs[di]), fmtMS(row.TPI[di]), h.opts.Repeats)
	}
	row.SpeedupSeqPar = row.TPI[1] / row.TPI[2]
	row.SpeedupGPUPar = row.TPI[0] / row.TPI[2]
	return row
}

func (h *Harness) printTable3(rows []Table3Row) {
	out := h.opts.Out
	fmt.Fprintf(out, "Table III: asynchronous SGD to %.0f%% convergence error\n", h.opts.Tol*100)
	fmt.Fprintf(out, "%-4s %-9s | %10s %10s %10s | %10s %10s %10s | %6s %6s %6s | %8s %8s\n",
		"task", "dataset",
		"ttc-gpu", "ttc-seq", "ttc-par",
		"tpi-gpu", "tpi-seq", "tpi-par",
		"ep-gpu", "ep-seq", "ep-par",
		"seq/par", "gpu/par")
	for _, r := range rows {
		fmt.Fprintf(out, "%-4s %-9s | %10s %10s %10s | %10s %10s %10s | %6s %6s %6s | %8s %8s\n",
			r.Task, r.Dataset,
			fmtMS(r.TTC[0]), fmtMS(r.TTC[1]), fmtMS(r.TTC[2]),
			fmtMS(r.TPI[0]), fmtMS(r.TPI[1]), fmtMS(r.TPI[2]),
			fmtEpochs(r.Epochs[0]), fmtEpochs(r.Epochs[1]), fmtEpochs(r.Epochs[2]),
			fmtRatio(r.SpeedupSeqPar), fmtRatio(r.SpeedupGPUPar))
	}
	fmt.Fprintln(out)
}
