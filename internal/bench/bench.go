// Package bench is the experiment harness: one runner per table and figure
// of the paper's evaluation (Section IV), producing the same rows/series at
// a configurable dataset scale. Statistical efficiency (epochs) is measured
// by actually running the engines; hardware efficiency (time per iteration)
// is the modeled device time priced at the full dataset size via the
// engines' cost scaling; time to convergence is their product, exactly the
// three performance axes of the paper's Fig. 2.
package bench

import (
	"fmt"
	"io"
	"math"
	"sync"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/model"
	"repro/internal/obs"
)

// Options configures a harness run.
type Options struct {
	// MaxN caps the examples generated per dataset (default 4000). The
	// modeled times are always priced at the paper's full dataset sizes.
	MaxN int
	// Datasets restricts the run (default: all five, Table I order).
	Datasets []string
	// Tasks restricts the run (default lr, svm, mlp).
	Tasks []string
	// MaxEpochs bounds every asynchronous convergence drive (default
	// 300); a configuration that does not reach the threshold is
	// reported ∞, like Table III.
	MaxEpochs int
	// SyncMaxEpochs bounds synchronous drives, which need far more
	// (cheap) epochs: batch gradient descent converges linearly (default
	// 6000).
	SyncMaxEpochs int
	// Tol is the headline convergence tolerance (default 0.01 — the
	// tables' "1% of optimal loss").
	Tol float64
	// ProbeEpochs is the step-tuning probe length (default 6).
	ProbeEpochs int
	// OptEpochs is the optimal-loss estimation budget (default 40).
	OptEpochs int
	// Verbose echoes progress to Out.
	Verbose bool
	// Out receives the formatted tables (nil = discard formatting).
	Out io.Writer
	// CurveDir, when set, receives one CSV per Fig. 7 panel
	// (fig7_<task>_<dataset>.csv with epoch, seconds, loss per engine).
	CurveDir string
	// Repeats re-runs every asynchronous convergence drive this many
	// times with different shuffles and reports the means — the paper's
	// ">= 10 repetitions" methodology (default 1 to keep runs cheap).
	Repeats int
	// TracePath, when set, streams one JSONL obs.Event per (engine,
	// dataset, epoch) of every instrumented drive to that file; inspect it
	// with cmd/sgdtrace. Close the harness to flush it.
	TracePath string
	// Quiet suppresses the progress log even when Verbose is set (the
	// tables themselves still print to Out).
	Quiet bool
}

func (o Options) withDefaults() Options {
	if o.MaxN <= 0 {
		o.MaxN = 4000
	}
	if len(o.Datasets) == 0 {
		o.Datasets = data.Names()
	}
	if len(o.Tasks) == 0 {
		o.Tasks = []string{"lr", "svm", "mlp"}
	}
	if o.MaxEpochs <= 0 {
		o.MaxEpochs = 300
	}
	if o.SyncMaxEpochs <= 0 {
		o.SyncMaxEpochs = 6000
	}
	if o.Tol <= 0 {
		o.Tol = 0.01
	}
	if o.ProbeEpochs <= 0 {
		o.ProbeEpochs = 6
	}
	if o.OptEpochs <= 0 {
		o.OptEpochs = 40
	}
	if o.Repeats <= 0 {
		o.Repeats = 1
	}
	return o
}

// Harness caches datasets, optimal losses and tuned steps across the
// experiments of one run.
type Harness struct {
	opts  Options
	log   *obs.Logger
	trace *obs.TraceWriter
	agg   *obs.Aggregator

	mu    sync.Mutex
	preps map[string]*dsPrep
	tasks map[string]*taskPrep
}

// New builds a harness. It panics if Options.TracePath cannot be created,
// like the dataset registry does for config errors.
func New(opts Options) *Harness {
	h := &Harness{
		opts:  opts.withDefaults(),
		agg:   obs.NewAggregator(),
		preps: make(map[string]*dsPrep),
		tasks: make(map[string]*taskPrep),
	}
	if h.opts.Verbose && !h.opts.Quiet && h.opts.Out != nil {
		h.log = obs.NewLogger(h.opts.Out, obs.LevelInfo)
	}
	if h.opts.TracePath != "" {
		tw, err := obs.CreateTrace(h.opts.TracePath)
		if err != nil {
			panic(fmt.Errorf("bench: cannot create trace: %w", err))
		}
		h.trace = tw
	}
	return h
}

// Options returns the effective (defaulted) options.
func (h *Harness) Options() Options { return h.opts }

// Aggregator exposes the in-memory observability totals accumulated by every
// instrumented drive of this harness (Prometheus snapshot, run summaries,
// expvar export).
func (h *Harness) Aggregator() *obs.Aggregator { return h.agg }

// Close flushes the JSONL trace, if one was requested. The harness remains
// usable, but further events are dropped by the closed writer.
func (h *Harness) Close() error {
	if h.trace != nil {
		return h.trace.Close()
	}
	return nil
}

// recorder builds the observability sink for one (engine, dataset) run:
// always the in-memory aggregator, teed into the JSONL trace when one was
// requested. Callers pass it to core.DriverOpts.Rec or drive it directly.
func (h *Harness) recorder(engine, dataset string) obs.Recorder {
	if h.trace == nil {
		return h.agg.Run(engine, dataset)
	}
	return obs.Tee(h.agg.Run(engine, dataset), h.trace.Run(engine, dataset))
}

// tpi prices one epoch of e on a fresh copy of init under the run's recorder
// (the hardware-efficiency axis; loss evaluation excluded, as in the paper).
func (h *Harness) tpi(e core.Engine, init []float64, dataset string) float64 {
	rec := h.recorder(e.Name(), dataset)
	core.Instrument(e, rec)
	w := append([]float64(nil), init...)
	sec := e.RunEpoch(w)
	rec.EndEpoch(sec)
	return sec
}

// dsPrep is one generated dataset with its cost-scaling factor.
type dsPrep struct {
	spec   data.Spec
	ds     *data.Dataset // native representation (LR/SVM)
	mlpDS  *data.Dataset // feature-grouped (MLP)
	factor float64       // fullN / generatedN
}

// taskPrep is one (dataset, task) pair: its model, reference optimum and
// tuned steps.
type taskPrep struct {
	m        model.BatchModel
	ds       *data.Dataset
	opt      float64
	initLoss float64
	syncStep float64
	// asyncStep is tuned on the sequential CPU configuration;
	// asyncStepGPU separately on the simulated-GPU kernel, whose massive
	// update losses favour different step sizes (the paper tunes every
	// configuration independently).
	asyncStep    float64
	asyncStepGPU float64
}

func (h *Harness) logf(format string, args ...any) {
	h.log.Infof(format, args...)
}

// prep generates (once) the scaled dataset for name.
func (h *Harness) prep(name string) *dsPrep {
	h.mu.Lock()
	defer h.mu.Unlock()
	if p, ok := h.preps[name]; ok {
		return p
	}
	spec, err := data.Lookup(name)
	if err != nil {
		panic(err)
	}
	scaled := spec.Scaled(float64(h.opts.MaxN) / float64(spec.N))
	ds := data.Generate(scaled)
	mlpDS, err := data.ForMLP(ds, scaled)
	if err != nil {
		panic(err)
	}
	p := &dsPrep{
		spec:   spec,
		ds:     ds,
		mlpDS:  mlpDS,
		factor: float64(spec.N) / float64(ds.N()),
	}
	h.preps[name] = p
	return p
}

// task prepares (once) the model, optimum and tuned steps for a
// (dataset, task) pair.
func (h *Harness) task(dsName, taskName string) *taskPrep {
	key := dsName + "/" + taskName
	h.mu.Lock()
	if t, ok := h.tasks[key]; ok {
		h.mu.Unlock()
		return t
	}
	h.mu.Unlock()

	p := h.prep(dsName)
	var m model.BatchModel
	ds := p.ds
	switch taskName {
	case "lr":
		m = model.NewLR(ds.D())
	case "svm":
		m = model.NewSVM(ds.D())
	case "mlp":
		ds = p.mlpDS
		m = model.NewMLPFor(p.spec)
	default:
		panic("bench: unknown task " + taskName)
	}
	h.logf("# preparing %s/%s: estimating optimum and tuning steps\n", dsName, taskName)
	t := &taskPrep{m: m, ds: ds}
	init := m.InitParams(1)
	t.initLoss = model.MeanLoss(m, init, ds)
	t.opt = core.EstimateOptLoss(m, ds, h.opts.OptEpochs)

	// Tune the synchronous step with the engine family it will drive
	// (full-batch for LR/SVM, the chunked pipeline for MLP) and the
	// asynchronous step with sequential incremental/mini-batch SGD; the
	// paper tunes each configuration on the same grid. Synchronous
	// probes run longer: batch GD needs more epochs before an unstable
	// (oscillating) step betrays itself.
	t.syncStep = core.TuneStep(func(s float64) core.Engine {
		return h.syncEngine(dsName, taskName, s, "cpu-par")
	}, m, ds, init, 10*h.opts.ProbeEpochs)
	t.asyncStep = core.TuneStep(func(s float64) core.Engine {
		return h.asyncEngine(dsName, taskName, s, "cpu-seq")
	}, m, ds, init, h.opts.ProbeEpochs)
	t.asyncStepGPU = core.TuneStep(func(s float64) core.Engine {
		return h.asyncEngine(dsName, taskName, s, "gpu")
	}, m, ds, init, h.opts.ProbeEpochs)

	h.mu.Lock()
	h.tasks[key] = t
	h.mu.Unlock()
	h.logf("# %s/%s: init %.4f opt %.4f syncStep %g asyncStep %g asyncStepGPU %g\n",
		dsName, taskName, t.initLoss, t.opt, t.syncStep, t.asyncStep, t.asyncStepGPU)
	return t
}

// fmtMS renders seconds as the paper's msec columns.
func fmtMS(sec float64) string {
	if math.IsInf(sec, 1) || math.IsNaN(sec) {
		return "inf"
	}
	switch {
	case sec >= 100:
		return fmt.Sprintf("%.0fs", sec)
	case sec >= 1:
		return fmt.Sprintf("%.2fs", sec)
	default:
		return fmt.Sprintf("%.2fms", sec*1e3)
	}
}

// fmtEpochs renders an epoch count, ∞ for unreached.
func fmtEpochs(e int) string {
	if e < 0 {
		return "inf"
	}
	return fmt.Sprintf("%d", e)
}

// fmtRatio renders a speedup.
func fmtRatio(r float64) string {
	if math.IsInf(r, 0) || math.IsNaN(r) {
		return "-"
	}
	return fmt.Sprintf("%.2f", r)
}
