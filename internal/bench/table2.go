package bench

import (
	"fmt"
	"math"

	"repro/internal/core"
)

// Table2Row mirrors one row of the paper's Table II: synchronous SGD to the
// headline convergence tolerance on gpu / cpu-seq / cpu-par. Device order in
// the arrays is [gpu, cpu-seq, cpu-par], matching the paper's columns.
type Table2Row struct {
	Task    string
	Dataset string
	// TTC is time-to-convergence in modeled seconds per device.
	TTC [3]float64
	// TPI is time-per-iteration in modeled seconds per device.
	TPI [3]float64
	// Epochs to the tolerance — identical for all devices by synchronous
	// construction; -1 when the tolerance was not reached in the budget.
	Epochs int
	// SpeedupSeqPar = TPI(cpu-seq)/TPI(cpu-par) — the paper's
	// "cpu-seq/cpu-par" column.
	SpeedupSeqPar float64
	// SpeedupParGPU = TPI(cpu-par)/TPI(gpu) — the paper's "cpu-par/gpu"
	// column.
	SpeedupParGPU float64
	// Step is the tuned step size used.
	Step float64
}

var table2Devices = [3]string{"gpu", "cpu-seq", "cpu-par"}

// Table2 reproduces the paper's Table II: for every task x dataset it drives
// the synchronous configuration to the tolerance once (statistical
// efficiency is device-independent for synchronous updates), prices one
// epoch on each device, and reports time-to-convergence, time-per-iteration,
// epochs, and the two speedup columns.
func (h *Harness) Table2() []Table2Row {
	var rows []Table2Row
	for _, task := range h.opts.Tasks {
		for _, dsName := range h.opts.Datasets {
			rows = append(rows, h.table2Row(task, dsName))
		}
	}
	if h.opts.Out != nil {
		h.printTable2(rows)
	}
	return rows
}

func (h *Harness) table2Row(task, dsName string) Table2Row {
	t := h.task(dsName, task)
	init := t.m.InitParams(1)
	row := Table2Row{Task: task, Dataset: dsName, Step: t.syncStep}

	// Hardware efficiency: one priced epoch per device.
	for di, dev := range table2Devices {
		row.TPI[di] = h.tpi(h.syncEngine(dsName, task, t.syncStep, dev), init, dsName)
	}
	// Statistical efficiency: one functional convergence drive (identical
	// across devices by synchronous construction).
	drive := h.syncEngine(dsName, task, t.syncStep, "cpu-par")
	w := append([]float64(nil), init...)
	res := core.RunToConvergence(drive, t.m, t.ds, w, core.DriverOpts{
		OptLoss:       t.opt,
		InitLoss:      t.initLoss,
		MaxEpochs:     h.opts.SyncMaxEpochs,
		Tolerances:    []float64{h.opts.Tol},
		LossEvery:     5,
		PlateauEpochs: 400,
		Rec:           h.recorder(drive.Name(), dsName),
	})
	row.Epochs = res.EpochsTo[h.opts.Tol]
	for di := range row.TTC {
		if row.Epochs < 0 {
			row.TTC[di] = inf()
		} else {
			row.TTC[di] = float64(row.Epochs) * row.TPI[di]
		}
	}
	row.SpeedupSeqPar = row.TPI[1] / row.TPI[2]
	row.SpeedupParGPU = row.TPI[2] / row.TPI[0]
	h.logf("# table2 %s/%s: epochs=%d tpi=[gpu %s, seq %s, par %s]\n",
		task, dsName, row.Epochs, fmtMS(row.TPI[0]), fmtMS(row.TPI[1]), fmtMS(row.TPI[2]))
	return row
}

func (h *Harness) printTable2(rows []Table2Row) {
	out := h.opts.Out
	fmt.Fprintf(out, "Table II: synchronous SGD to %.0f%% convergence error\n", h.opts.Tol*100)
	fmt.Fprintf(out, "%-4s %-9s | %10s %10s %10s | %10s %10s %10s | %6s | %9s %9s\n",
		"task", "dataset",
		"ttc-gpu", "ttc-seq", "ttc-par",
		"tpi-gpu", "tpi-seq", "tpi-par",
		"epochs", "seq/par", "par/gpu")
	for _, r := range rows {
		fmt.Fprintf(out, "%-4s %-9s | %10s %10s %10s | %10s %10s %10s | %6s | %9s %9s\n",
			r.Task, r.Dataset,
			fmtMS(r.TTC[0]), fmtMS(r.TTC[1]), fmtMS(r.TTC[2]),
			fmtMS(r.TPI[0]), fmtMS(r.TPI[1]), fmtMS(r.TPI[2]),
			fmtEpochs(r.Epochs), fmtRatio(r.SpeedupSeqPar), fmtRatio(r.SpeedupParGPU))
	}
	fmt.Fprintln(out)
}

func inf() float64 { return math.Inf(1) }
