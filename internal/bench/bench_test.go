package bench

import (
	"bytes"
	"math"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/obs"
)

// tinyOpts keeps harness tests fast: two datasets, small N, short budgets.
func tinyOpts() Options {
	return Options{
		MaxN:          600,
		Datasets:      []string{"covtype", "w8a"},
		Tasks:         []string{"lr"},
		MaxEpochs:     60,
		SyncMaxEpochs: 400,
		ProbeEpochs:   3,
		OptEpochs:     15,
	}
}

func TestTable1ReportsAllDatasets(t *testing.T) {
	var buf bytes.Buffer
	opts := tinyOpts()
	opts.Datasets = nil // all five
	opts.Out = &buf
	h := New(opts)
	rows := h.Table1()
	if len(rows) != 5 {
		t.Fatalf("%d rows, want 5", len(rows))
	}
	for _, r := range rows {
		if r.Native.Examples == 0 || r.Native.Features == 0 {
			t.Fatalf("empty stats for %s", r.Native.Name)
		}
		if r.MLP.Features > r.Native.Features {
			t.Fatalf("%s: grouping increased width", r.Native.Name)
		}
	}
	out := buf.String()
	for _, name := range []string{"covtype", "w8a", "real-sim", "rcv1", "news"} {
		if !strings.Contains(out, name) {
			t.Fatalf("output missing %s:\n%s", name, out)
		}
	}
}

func TestTable2ShapeInvariants(t *testing.T) {
	h := New(tinyOpts())
	rows := h.Table2()
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		// Paper Table II ordering: gpu <= cpu-par < cpu-seq per iteration.
		if !(r.TPI[0] < r.TPI[2] && r.TPI[2] < r.TPI[1]) {
			t.Errorf("%s/%s: tpi ordering gpu=%v seq=%v par=%v",
				r.Task, r.Dataset, r.TPI[0], r.TPI[1], r.TPI[2])
		}
		if r.SpeedupParGPU <= 1 {
			t.Errorf("%s/%s: GPU not faster than parallel CPU (%.2f)", r.Task, r.Dataset, r.SpeedupParGPU)
		}
		if r.SpeedupSeqPar <= 1 {
			t.Errorf("%s/%s: parallel not faster than sequential (%.2f)", r.Task, r.Dataset, r.SpeedupSeqPar)
		}
		if r.Epochs == 0 {
			t.Errorf("%s/%s: zero epochs", r.Task, r.Dataset)
		}
	}
}

func TestTable3ShapeInvariants(t *testing.T) {
	h := New(tinyOpts())
	rows := h.Table3()
	for _, r := range rows {
		for di, tpi := range r.TPI {
			if tpi <= 0 {
				t.Errorf("%s/%s device %d: non-positive tpi", r.Task, r.Dataset, di)
			}
		}
		// Time-to-convergence must be consistent with epochs.
		for di := range r.TTC {
			if r.Epochs[di] < 0 && !math.IsInf(r.TTC[di], 1) {
				t.Errorf("%s/%s device %d: unreached but finite ttc", r.Task, r.Dataset, di)
			}
		}
	}
	// covtype (dense): parallel CPU must iterate slower than sequential.
	for _, r := range rows {
		if r.Dataset == "covtype" && r.SpeedupSeqPar >= 1 {
			t.Errorf("dense async: seq/par speedup %.2f, want < 1", r.SpeedupSeqPar)
		}
	}
}

func TestFig6SpeedupGrowsWithArchitecture(t *testing.T) {
	opts := tinyOpts()
	opts.MaxN = 256
	h := New(opts)
	points := h.Fig6()
	if len(points) != len(Fig6Architectures) {
		t.Fatalf("%d points", len(points))
	}
	first, last := points[0], points[len(points)-1]
	if last.SpeedupSeqPar <= first.SpeedupSeqPar {
		t.Errorf("seq/par speedup did not grow with the net: %.2f -> %.2f",
			first.SpeedupSeqPar, last.SpeedupSeqPar)
	}
	for _, p := range points {
		if p.SpeedupSeqPar <= 0 || p.SpeedupParGPU <= 0 {
			t.Errorf("%s: non-positive speedups %+v", p.Arch, p)
		}
	}
}

func TestFig8RowsPopulated(t *testing.T) {
	h := New(tinyOpts())
	rows := h.Fig8()
	if len(rows) != 2 { // lr x {covtype, w8a}
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.OursSync <= 0 || r.OursAsync <= 0 || r.Framework <= 0 {
			t.Errorf("%s/%s: non-positive speedups %+v", r.Task, r.Dataset, r)
		}
		if r.FrameworkName != "bidmach" {
			t.Errorf("framework = %s", r.FrameworkName)
		}
	}
}

func TestFig9TFSpeedupBelowOurs(t *testing.T) {
	opts := tinyOpts()
	opts.Tasks = []string{"mlp"}
	opts.Datasets = []string{"w8a"}
	h := New(opts)
	rows := h.Fig9()
	if len(rows) != 1 {
		t.Fatalf("%d rows", len(rows))
	}
	r := rows[0]
	if r.Framework >= r.OursSync {
		t.Errorf("TF speedup %.2f >= ours %.2f (paper Fig. 9 shows ours superior)",
			r.Framework, r.OursSync)
	}
}

func TestTolSweepMonotone(t *testing.T) {
	opts := tinyOpts()
	opts.Datasets = []string{"w8a"}
	h := New(opts)
	rows := h.TolSweep()
	if len(rows) != 1 {
		t.Fatalf("%d rows", len(rows))
	}
	r := rows[0]
	// Tighter tolerances can never be reached sooner than looser ones.
	order := []float64{0.10, 0.05, 0.02, 0.01}
	for _, m := range []map[float64]float64{r.Sync, r.Async} {
		for i := 1; i < len(order); i++ {
			if m[order[i]] < m[order[i-1]] {
				t.Fatalf("time to %v%% (%v) before time to %v%% (%v)",
					order[i]*100, m[order[i]], order[i-1]*100, m[order[i-1]])
			}
		}
	}
}

func TestHarnessRecordsTrace(t *testing.T) {
	opts := tinyOpts()
	opts.Datasets = []string{"w8a"}
	opts.TracePath = filepath.Join(t.TempDir(), "run.jsonl")
	h := New(opts)
	h.Table2()
	h.Table3()
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}

	events, err := obs.ReadTraceFile(opts.TracePath)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("trace is empty")
	}
	// Replay through the same aggregation path sgdtrace uses and check the
	// acceptance invariants: phase decompositions reconcile with the
	// modeled epoch time (within the issue's 5% budget), Hogwild runs
	// carry worker-update counters, synchronous runs carry barrier time.
	agg := obs.NewAggregator()
	for _, ev := range events {
		agg.AddEvent(ev)
	}
	var sawAsync, sawSyncBarrier bool
	for _, r := range agg.Runs() {
		sum, sec := r.EnginePhaseSum(), r.Seconds
		if sec > 0 && math.Abs(sum-sec) > 0.05*sec {
			t.Errorf("%s/%s: phase sum %v vs modeled %v (>5%% apart)", r.Engine, r.Dataset, sum, sec)
		}
		if strings.HasPrefix(r.Engine, "async/cpu") {
			sawAsync = true
			if r.Counter(obs.CounterWorkerUpdates) <= 0 {
				t.Errorf("%s/%s: no worker updates recorded", r.Engine, r.Dataset)
			}
		}
		if strings.HasPrefix(r.Engine, "sync/") && r.Phase(obs.PhaseBarrier) > 0 {
			sawSyncBarrier = true
		}
	}
	if !sawAsync {
		t.Error("no async CPU runs in trace")
	}
	if !sawSyncBarrier {
		t.Error("no sync run recorded barrier time")
	}
	// The in-memory aggregator must agree with the trace replay.
	if live := h.Aggregator().Runs(); len(live) != len(agg.Runs()) {
		t.Errorf("live aggregator has %d runs, trace replay %d", len(live), len(agg.Runs()))
	}
}

func TestHarnessQuietSuppressesProgress(t *testing.T) {
	run := func(quiet bool) string {
		var buf bytes.Buffer
		opts := tinyOpts()
		opts.Datasets = []string{"w8a"}
		opts.Verbose = true
		opts.Quiet = quiet
		opts.Out = &buf
		New(opts).Table2()
		return buf.String()
	}
	if out := run(false); !strings.Contains(out, "# preparing") {
		t.Fatalf("verbose run missing progress lines:\n%s", out)
	}
	out := run(true)
	if strings.Contains(out, "# preparing") {
		t.Fatal("Quiet did not suppress progress lines")
	}
	if !strings.Contains(out, "Table II") {
		t.Fatal("Quiet must not suppress the result tables")
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.MaxN != 4000 || o.MaxEpochs != 300 || o.SyncMaxEpochs != 6000 {
		t.Fatalf("defaults %+v", o)
	}
	if len(o.Datasets) != 5 || len(o.Tasks) != 3 {
		t.Fatalf("default sets %+v", o)
	}
	if o.Tol != 0.01 {
		t.Fatalf("tol %v", o.Tol)
	}
}

func TestFormatHelpers(t *testing.T) {
	if fmtMS(0.0012) != "1.20ms" {
		t.Fatalf("fmtMS small = %s", fmtMS(0.0012))
	}
	if fmtMS(2.5) != "2.50s" {
		t.Fatalf("fmtMS mid = %s", fmtMS(2.5))
	}
	if fmtMS(250) != "250s" {
		t.Fatalf("fmtMS large = %s", fmtMS(250))
	}
	if fmtMS(math.Inf(1)) != "inf" {
		t.Fatal("fmtMS inf")
	}
	if fmtEpochs(-1) != "inf" || fmtEpochs(12) != "12" {
		t.Fatal("fmtEpochs")
	}
	if fmtRatio(math.NaN()) != "-" {
		t.Fatal("fmtRatio NaN")
	}
}
