package bench

import (
	"fmt"

	"repro/internal/data"
)

// Table1Row is one dataset's statistics in the layout of the paper's
// Table I, for both the native representation and the MLP-transformed one.
type Table1Row struct {
	Native     data.Stats
	MLP        data.Stats
	MLPArch    string
	FullN      int // full-scale example count from the registry
	GeneratedN int // examples actually generated at this run's scale
}

// Table1 generates every dataset at the run's scale and reports its shape
// statistics (Table I of the paper). Density percentages are
// scale-invariant, so they are directly comparable to the published table.
func (h *Harness) Table1() []Table1Row {
	var rows []Table1Row
	for _, name := range h.opts.Datasets {
		p := h.prep(name)
		rows = append(rows, Table1Row{
			Native:     data.ComputeStats(p.ds),
			MLP:        data.ComputeStats(p.mlpDS),
			MLPArch:    p.spec.ArchString(),
			FullN:      p.spec.N,
			GeneratedN: p.ds.N(),
		})
	}
	if h.opts.Out != nil {
		fmt.Fprintf(h.opts.Out, "Table I: experimental datasets (generated at %d-example scale)\n", h.opts.MaxN)
		fmt.Fprintf(h.opts.Out, "%-9s %9s %9s %16s %9s %12s %9s %s\n",
			"dataset", "#examples", "#features", "nnz/exp", "sparsity", "mlp-sparsity", "mlp-arch", "size(s/d)")
		for _, r := range rows {
			fmt.Fprintf(h.opts.Out, "%-9s %9d %9d %5d..%-5d(%4.0f) %8.2f%% %11.2f%% %9s %s / %s\n",
				r.Native.Name, r.FullN, r.Native.Features,
				r.Native.MinNNZ, r.Native.MaxNNZ, r.Native.AvgNNZ,
				r.Native.DensityPct, r.MLP.DensityPct, r.MLPArch,
				data.FormatBytes(int64(float64(r.Native.SparseBytes)*float64(r.FullN)/float64(r.GeneratedN))),
				data.FormatBytes(int64(float64(r.Native.DenseBytes)*float64(r.FullN)/float64(r.GeneratedN))))
		}
		fmt.Fprintln(h.opts.Out)
	}
	return rows
}
