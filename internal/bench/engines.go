package bench

import (
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/linalg"
	"repro/internal/model"
)

func newLRFor(p *dsPrep) model.BatchModel  { return model.NewLR(p.ds.D()) }
func newSVMFor(p *dsPrep) model.BatchModel { return model.NewSVM(p.ds.D()) }
func newMLPFor(p *dsPrep) model.BatchModel { return model.NewMLPFor(p.spec) }

func newCPUBackend(threads int, workScale float64) *linalg.CPUBackend {
	b := linalg.NewCPU(threads)
	b.WorkScale = workScale
	return b
}

func newGPUBackend(workScale float64) *linalg.GPUBackend {
	b := linalg.NewK80()
	b.WorkScale = workScale
	return b
}

// syncEngine builds the synchronous configuration named by device
// ("cpu-seq", "cpu-par", "gpu") for a (dataset, task) pair, with modeled
// costs priced at the full dataset size.
// Per-epoch primitive-management overheads of the paper's ViennaCL
// deployment, calibrated from the near-constant components of Table II (see
// core.SyncEngine.EpochOverhead).
const (
	seqEpochOverhead = 1.8
	parEpochOverhead = 6e-3
	gpuEpochOverhead = 4.2e-3
)

func (h *Harness) syncEngine(dsName, taskName string, step float64, device string) *core.SyncEngine {
	p := h.prep(dsName)
	t := h.taskModel(dsName, taskName)
	m := t.m
	// Correct for the scaled sample's under-represented nnz heavy tail
	// so the priced kernel traffic matches the full dataset.
	workScale := p.factor
	if taskName != "mlp" {
		workScale *= p.spec.AvgNNZ / measuredAvgNNZ(t.ds)
	}
	var b linalg.Backend
	var overhead float64
	switch device {
	case "cpu-seq":
		c := linalg.NewCPU(1)
		if taskName != "mlp" {
			c.WorkScale = workScale
		}
		b, overhead = c, seqEpochOverhead
	case "cpu-par":
		c := linalg.NewCPU(56)
		if taskName != "mlp" {
			c.WorkScale = workScale
		}
		b, overhead = c, parEpochOverhead
	case "gpu":
		g := linalg.NewK80()
		if taskName != "mlp" {
			g.WorkScale = workScale
		}
		b, overhead = g, gpuEpochOverhead
		if mlp, ok := m.(*model.MLP); ok {
			// The GPU pipeline batches more rows per kernel to
			// amortise launches; the computed gradient is identical.
			clone := model.NewMLP(mlp.Widths)
			clone.Chunk = 512
			m = clone
		}
	default:
		panic("bench: unknown device " + device)
	}
	e := core.NewSync(b, m, t.ds, step)
	e.EpochOverhead = overhead
	if taskName == "mlp" {
		// The chunked MLP pipeline's kernel count scales with the
		// dataset: scale the epoch total instead of each kernel.
		e.CostScale = p.factor
	}
	return e
}

// asyncEngine builds the asynchronous configuration named by device for a
// (dataset, task) pair: Hogwild for LR/SVM, Hogbatch for MLP.
func (h *Harness) asyncEngine(dsName, taskName string, step float64, device string) core.Engine {
	p := h.prep(dsName)
	t := h.taskModel(dsName, taskName)
	if taskName == "mlp" {
		var mode core.HogbatchMode
		switch device {
		case "cpu-seq":
			mode = core.HogbatchSeq
		case "cpu-par":
			mode = core.HogbatchParCPU
		case "gpu":
			mode = core.HogbatchGPU
		default:
			panic("bench: unknown device " + device)
		}
		e := core.NewHogbatch(t.m, t.ds, step, mode)
		e.CostScale = p.factor
		return e
	}
	// Full-scale statistics from the registry: the scaled sample's byte
	// count times the scale factor under-represents the nnz heavy tail.
	full := &core.FullScaleStats{
		Updates:    int64(p.spec.N),
		AvgSupport: p.spec.AvgNNZ,
		DataBytes:  int64(float64(p.spec.N)*p.spec.AvgNNZ*12) + int64(p.spec.N+1)*8,
	}
	switch device {
	case "cpu-seq":
		e := core.NewHogwild(t.m, t.ds, step, 1)
		e.CostScale = p.factor
		e.Full = full
		return e
	case "cpu-par":
		e := core.NewHogwild(t.m, t.ds, step, 56)
		e.CostScale = p.factor
		e.Full = full
		return e
	case "gpu":
		e := core.NewGPUHogwild(t.m, t.ds, step)
		e.CostScale = p.factor * p.spec.AvgNNZ / measuredAvgNNZ(t.ds)
		return e
	default:
		panic("bench: unknown device " + device)
	}
}

// measuredAvgNNZ returns the generated dataset's mean row nnz (>= 1).
func measuredAvgNNZ(ds *data.Dataset) float64 {
	_, _, avg := ds.X.RowStats()
	if avg < 1 {
		return 1
	}
	return avg
}

// taskModel returns the model/dataset pair without triggering the expensive
// tuning path (used during tuning itself).
func (h *Harness) taskModel(dsName, taskName string) *taskPrep {
	key := dsName + "/" + taskName
	h.mu.Lock()
	if t, ok := h.tasks[key]; ok {
		h.mu.Unlock()
		return t
	}
	h.mu.Unlock()
	// Build a minimal prep (model + data only); the full task() fills in
	// optimum and steps.
	p := h.prep(dsName)
	t := &taskPrep{}
	switch taskName {
	case "lr":
		t.ds = p.ds
		t.m = newLRFor(p)
	case "svm":
		t.ds = p.ds
		t.m = newSVMFor(p)
	case "mlp":
		t.ds = p.mlpDS
		t.m = newMLPFor(p)
	default:
		panic("bench: unknown task " + taskName)
	}
	return t
}

// tpi measures the modeled time of one epoch of e on a fresh copy of init
// (the hardware-efficiency axis; loss evaluation excluded, as in the paper).
func tpi(e core.Engine, init []float64) float64 {
	w := append([]float64(nil), init...)
	return e.RunEpoch(w)
}
