package bench

import (
	"encoding/csv"
	"fmt"
	"os"
	"path/filepath"
	"strconv"

	"repro/internal/core"
	"repro/internal/metrics"
)

// writeCurveCSV persists one Fig. 7 panel as
// <dir>/fig7_<task>_<dataset>.csv with columns engine, epoch, seconds, loss.
func writeCurveCSV(dir string, c Fig7Curve) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(dir, fmt.Sprintf("fig7_%s_%s.csv", c.Task, c.Dataset))
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := csv.NewWriter(f)
	if err := w.Write([]string{"engine", "epoch", "seconds", "loss"}); err != nil {
		f.Close()
		return err
	}
	emit := func(engine string, pts []core.LossPoint) error {
		for _, p := range metrics.Downsample(pts, 200) {
			rec := []string{
				engine,
				strconv.Itoa(p.Epoch),
				strconv.FormatFloat(p.Seconds, 'g', -1, 64),
				strconv.FormatFloat(p.Loss, 'g', -1, 64),
			}
			if err := w.Write(rec); err != nil {
				return err
			}
		}
		return nil
	}
	if err := emit("sync-gpu", c.SyncGPU); err != nil {
		f.Close()
		return err
	}
	if err := emit("async-cpu", c.AsyncCPU); err != nil {
		f.Close()
		return err
	}
	w.Flush()
	if err := w.Error(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
