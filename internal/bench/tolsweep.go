package bench

import (
	"fmt"

	"repro/internal/core"
)

// TolSweepRow reports the time to every convergence threshold of the paper's
// methodology (10%, 5%, 2%, 1%) for the two headline configurations.
type TolSweepRow struct {
	Task    string
	Dataset string
	// Sync and Async map each tolerance to modeled seconds (+Inf if the
	// threshold was not reached); the tolerances are core.Tolerances.
	Sync  map[float64]float64
	Async map[float64]float64
	// CrossoverTol is the loosest tolerance at which the winner differs
	// from the winner at 1% — non-zero rows demonstrate the paper's
	// point that early and late convergence can favour different
	// configurations (BGD starts slow, SGD finishes slow).
	CrossoverTol float64
}

// TolSweep measures time-to-convergence at all four thresholds for
// synchronous GPU and asynchronous parallel CPU (the Fig. 7 pairing).
func (h *Harness) TolSweep() []TolSweepRow {
	var rows []TolSweepRow
	for _, task := range h.opts.Tasks {
		for _, dsName := range h.opts.Datasets {
			t := h.task(dsName, task)
			init := t.m.InitParams(1)
			drive := func(e core.Engine, maxEpochs, lossEvery int) map[float64]float64 {
				w := append([]float64(nil), init...)
				res := core.RunToConvergence(e, t.m, t.ds, w, core.DriverOpts{
					OptLoss:       t.opt,
					InitLoss:      t.initLoss,
					MaxEpochs:     maxEpochs,
					LossEvery:     lossEvery,
					PlateauEpochs: 400,
					Rec:           h.recorder(e.Name(), dsName),
				})
				return res.SecondsTo
			}
			row := TolSweepRow{
				Task: task, Dataset: dsName,
				Sync:  drive(h.syncEngine(dsName, task, t.syncStep, "gpu"), h.opts.SyncMaxEpochs, 5),
				Async: drive(h.asyncEngine(dsName, task, t.asyncStep, "cpu-par"), h.opts.MaxEpochs, 1),
			}
			winner := func(tol float64) int {
				s, a := row.Sync[tol], row.Async[tol]
				switch {
				case s < a:
					return 1
				case a < s:
					return -1
				}
				return 0
			}
			final := winner(0.01)
			for _, tol := range []float64{0.10, 0.05, 0.02} {
				if w := winner(tol); w != 0 && final != 0 && w != final {
					row.CrossoverTol = tol
					break
				}
			}
			rows = append(rows, row)
		}
	}
	if h.opts.Out != nil {
		out := h.opts.Out
		fmt.Fprintln(out, "Tolerance sweep: time to 10/5/2/1% (sync/gpu vs async/cpu-par)")
		fmt.Fprintf(out, "%-4s %-9s %-9s | %10s %10s %10s %10s | %s\n",
			"task", "dataset", "engine", "10%", "5%", "2%", "1%", "crossover")
		for _, r := range rows {
			cross := "-"
			if r.CrossoverTol > 0 {
				cross = fmt.Sprintf("at %.0f%%", r.CrossoverTol*100)
			}
			fmt.Fprintf(out, "%-4s %-9s %-9s | %10s %10s %10s %10s | %s\n",
				r.Task, r.Dataset, "sync/gpu",
				fmtMS(r.Sync[0.10]), fmtMS(r.Sync[0.05]), fmtMS(r.Sync[0.02]), fmtMS(r.Sync[0.01]), cross)
			fmt.Fprintf(out, "%-4s %-9s %-9s | %10s %10s %10s %10s |\n",
				"", "", "async/cpu",
				fmtMS(r.Async[0.10]), fmtMS(r.Async[0.05]), fmtMS(r.Async[0.02]), fmtMS(r.Async[0.01]))
		}
		fmt.Fprintln(out)
	}
	return rows
}
