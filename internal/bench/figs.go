package bench

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/frameworks"
	"repro/internal/model"
)

// Fig6Point is one architecture of the paper's Fig. 6: parallel-CPU speedup
// over sequential CPU and GPU speedup over parallel CPU for synchronous MLP
// on real-sim, as the net grows past ViennaCL's matmul-parallelisation
// threshold.
type Fig6Point struct {
	Arch          string
	Params        int
	SpeedupSeqPar float64 // TPI(cpu-seq) / TPI(cpu-par)
	SpeedupParGPU float64 // TPI(cpu-par) / TPI(gpu)
}

// Fig6Architectures are the sweep points: the paper's real-sim architecture
// first, then progressively larger fully-connected nets.
var Fig6Architectures = [][]int{
	{50, 10, 5, 2},
	{100, 20, 10, 2},
	{200, 50, 20, 2},
	{500, 200, 50, 2},
	{1000, 500, 100, 2},
	{2000, 1000, 200, 2},
}

// Fig6 reproduces the paper's Fig. 6: time-per-iteration speedups on
// real-sim for growing MLP architectures. Only hardware efficiency matters,
// so each configuration runs a single priced epoch.
func (h *Harness) Fig6() []Fig6Point {
	spec, err := data.Lookup("real-sim")
	if err != nil {
		panic(err)
	}
	// A small slice is enough to exercise the kernels; costs are priced
	// at the full dataset via CostScale.
	n := 512
	if n > h.opts.MaxN {
		n = h.opts.MaxN
	}
	scaled := spec.Scaled(float64(n) / float64(spec.N))
	base := data.Generate(scaled)
	factor := float64(spec.N) / float64(base.N())

	var points []Fig6Point
	for _, widths := range Fig6Architectures {
		grouped, err := data.GroupFeatures(base, widths[0])
		if err != nil {
			panic(err)
		}
		m := model.NewMLP(widths)
		init := m.InitParams(1)
		var times [3]float64
		for di, dev := range table2Devices {
			var b core.Engine
			switch dev {
			case "cpu-seq":
				e := core.NewSync(newCPUBackend(1, 1), m, grouped, 0.1)
				e.CostScale = factor
				b = e
			case "cpu-par":
				e := core.NewSync(newCPUBackend(56, 1), m, grouped, 0.1)
				e.CostScale = factor
				b = e
			default:
				e := core.NewSync(newGPUBackend(1), m, grouped, 0.1)
				e.CostScale = factor
				b = e
			}
			times[di] = tpi(b, init)
		}
		arch := ""
		params := 0
		for i, wd := range widths {
			if i > 0 {
				arch += "-"
				params += widths[i-1]*wd + wd
			}
			arch += fmt.Sprintf("%d", wd)
		}
		points = append(points, Fig6Point{
			Arch:          arch,
			Params:        params,
			SpeedupSeqPar: times[1] / times[2],
			SpeedupParGPU: times[2] / times[0],
		})
		h.logf("# fig6 %s: seq/par %.2f par/gpu %.2f\n",
			arch, times[1]/times[2], times[2]/times[0])
	}
	if h.opts.Out != nil {
		fmt.Fprintln(h.opts.Out, "Fig 6: sync MLP speedup on real-sim vs architecture")
		fmt.Fprintf(h.opts.Out, "%-20s %10s %12s %12s\n", "architecture", "params", "seq/par", "par/gpu")
		for _, p := range points {
			fmt.Fprintf(h.opts.Out, "%-20s %10d %12s %12s\n",
				p.Arch, p.Params, fmtRatio(p.SpeedupSeqPar), fmtRatio(p.SpeedupParGPU))
		}
		fmt.Fprintln(h.opts.Out)
	}
	return points
}

// Fig7Curve is one panel of the paper's Fig. 7: loss versus modeled time for
// the two headline configurations — synchronous GPU and asynchronous
// parallel CPU — from the same initial model.
type Fig7Curve struct {
	Task     string
	Dataset  string
	SyncGPU  []core.LossPoint
	AsyncCPU []core.LossPoint
	// Winner is the configuration that reached the headline tolerance
	// first ("sync/gpu", "async/cpu", or "tie/none").
	Winner string
}

// Fig7 reproduces the paper's Fig. 7 comparison: neither strategy dominates;
// the winner flips with the task and dataset.
func (h *Harness) Fig7() []Fig7Curve {
	var curves []Fig7Curve
	for _, task := range h.opts.Tasks {
		for _, dsName := range h.opts.Datasets {
			t := h.task(dsName, task)
			init := t.m.InitParams(1)
			syncOpts := core.DriverOpts{
				OptLoss:       t.opt,
				InitLoss:      t.initLoss,
				MaxEpochs:     h.opts.SyncMaxEpochs,
				Tolerances:    []float64{h.opts.Tol},
				LossEvery:     5,
				PlateauEpochs: 400,
			}
			asyncOpts := syncOpts
			asyncOpts.MaxEpochs = h.opts.MaxEpochs
			asyncOpts.LossEvery = 1
			asyncOpts.PlateauEpochs = 120
			ws := append([]float64(nil), init...)
			sres := core.RunToConvergence(h.syncEngine(dsName, task, t.syncStep, "gpu"), t.m, t.ds, ws, syncOpts)
			wa := append([]float64(nil), init...)
			ares := core.RunToConvergence(h.asyncEngine(dsName, task, t.asyncStep, "cpu-par"), t.m, t.ds, wa, asyncOpts)
			winner := "tie/none"
			st, at := sres.SecondsTo[h.opts.Tol], ares.SecondsTo[h.opts.Tol]
			switch {
			case st < at:
				winner = "sync/gpu"
			case at < st:
				winner = "async/cpu"
			}
			c := Fig7Curve{
				Task: task, Dataset: dsName,
				SyncGPU: sres.Curve, AsyncCPU: ares.Curve,
				Winner: winner,
			}
			curves = append(curves, c)
			h.logf("# fig7 %s/%s: sync/gpu %s vs async/cpu %s -> %s\n",
				task, dsName, fmtMS(st), fmtMS(at), winner)
			if h.opts.CurveDir != "" {
				if err := writeCurveCSV(h.opts.CurveDir, c); err != nil {
					h.logf("# fig7 csv: %v\n", err)
				}
			}
		}
	}
	if h.opts.Out != nil {
		fmt.Fprintln(h.opts.Out, "Fig 7: time to convergence, sync GPU vs async CPU (winner per panel)")
		fmt.Fprintf(h.opts.Out, "%-4s %-9s %12s %12s %10s\n", "task", "dataset", "sync/gpu", "async/cpu", "winner")
		for _, c := range curves {
			fmt.Fprintf(h.opts.Out, "%-4s %-9s %12s %12s %10s\n",
				c.Task, c.Dataset, fmtMS(lastTime(c.SyncGPU)), fmtMS(lastTime(c.AsyncCPU)), c.Winner)
		}
		fmt.Fprintln(h.opts.Out)
	}
	return curves
}

func lastTime(c []core.LossPoint) float64 {
	if len(c) == 0 {
		return 0
	}
	return c[len(c)-1].Seconds
}

// Fig8Row is one dataset of the paper's Fig. 8 (LR/SVM) or Fig. 9 (MLP):
// hardware-efficiency speedup of GPU over parallel CPU for our synchronous
// implementation, our asynchronous implementation, and the framework
// comparator (BIDMach for LR/SVM, TensorFlow for MLP).
type Fig8Row struct {
	Task          string
	Dataset       string
	OursSync      float64 // TPI(cpu-par)/TPI(gpu), sync engines
	OursAsync     float64 // TPI(cpu-par)/TPI(gpu), async engines
	Framework     float64 // same ratio inside the comparator
	FrameworkName string
}

// Fig8 reproduces the paper's Fig. 8 for LR and SVM against BIDMachLike.
func (h *Harness) Fig8() []Fig8Row {
	var rows []Fig8Row
	for _, task := range []string{"lr", "svm"} {
		if !contains(h.opts.Tasks, task) {
			continue
		}
		for _, dsName := range h.opts.Datasets {
			rows = append(rows, h.speedupRow(task, dsName, "bidmach"))
		}
	}
	h.printFig8(rows, "Fig 8: GPU-over-parallel-CPU speedup in hardware efficiency (LR/SVM)")
	return rows
}

// Fig9 reproduces the paper's Fig. 9 for MLP against TensorFlowLike.
func (h *Harness) Fig9() []Fig8Row {
	var rows []Fig8Row
	if contains(h.opts.Tasks, "mlp") {
		for _, dsName := range h.opts.Datasets {
			rows = append(rows, h.speedupRow("mlp", dsName, "tensorflow"))
		}
	}
	h.printFig8(rows, "Fig 9: GPU-over-parallel-CPU speedup in hardware efficiency (MLP)")
	return rows
}

func (h *Harness) speedupRow(task, dsName, fw string) Fig8Row {
	p := h.prep(dsName)
	t := h.task(dsName, task)
	init := t.m.InitParams(1)
	row := Fig8Row{Task: task, Dataset: dsName, FrameworkName: fw}

	sgpu := h.tpi(h.syncEngine(dsName, task, t.syncStep, "gpu"), init, dsName)
	spar := h.tpi(h.syncEngine(dsName, task, t.syncStep, "cpu-par"), init, dsName)
	row.OursSync = spar / sgpu

	agpu := h.tpi(h.asyncEngine(dsName, task, t.asyncStep, "gpu"), init, dsName)
	apar := h.tpi(h.asyncEngine(dsName, task, t.asyncStep, "cpu-par"), init, dsName)
	row.OursAsync = apar / agpu

	var fgpu, fpar float64
	if fw == "tensorflow" {
		fgpu = tpi(frameworks.NewTensorFlowLike(frameworks.GPU, t.m, t.ds, t.syncStep, p.factor), init)
		fpar = tpi(frameworks.NewTensorFlowLike(frameworks.CPU, t.m, t.ds, t.syncStep, p.factor), init)
	} else {
		fgpu = tpi(frameworks.NewBIDMachLike(frameworks.GPU, t.m, t.ds, t.syncStep, p.factor), init)
		fpar = tpi(frameworks.NewBIDMachLike(frameworks.CPU, t.m, t.ds, t.syncStep, p.factor), init)
	}
	row.Framework = fpar / fgpu
	h.logf("# fig8/9 %s/%s: ours-sync %.2f ours-async %.2f %s %.2f\n",
		task, dsName, row.OursSync, row.OursAsync, fw, row.Framework)
	return row
}

func (h *Harness) printFig8(rows []Fig8Row, title string) {
	if h.opts.Out == nil || len(rows) == 0 {
		return
	}
	fmt.Fprintln(h.opts.Out, title)
	fmt.Fprintf(h.opts.Out, "%-4s %-9s %10s %10s %12s\n", "task", "dataset", "ours-sync", "ours-async", "framework")
	for _, r := range rows {
		fmt.Fprintf(h.opts.Out, "%-4s %-9s %10s %10s %12s\n",
			r.Task, r.Dataset, fmtRatio(r.OursSync), fmtRatio(r.OursAsync), fmtRatio(r.Framework))
	}
	fmt.Fprintln(h.opts.Out)
}

func contains(list []string, s string) bool {
	for _, v := range list {
		if v == s {
			return true
		}
	}
	return false
}
