package ps

import (
	"math"
	"testing"

	"repro/internal/model"
)

// TestShardingStripeAlignment checks that every interior shard boundary
// lands on a cache-line stripe and the shards tile the dimension exactly.
func TestShardingStripeAlignment(t *testing.T) {
	for _, tc := range []struct{ dim, shards int }{
		{55, 4},  // covtype LR: 6.875 stripes, remainder in the last shard
		{64, 4},  // exact stripes, even split
		{64, 3},  // exact stripes, uneven split
		{300, 7}, // w8a LR
		{8, 1},
		{1, 1},
	} {
		sh, err := NewSharding(tc.dim, tc.shards)
		if err != nil {
			t.Fatalf("NewSharding(%d,%d): %v", tc.dim, tc.shards, err)
		}
		if got := sh.Dim(); got != tc.dim {
			t.Fatalf("Dim() = %d, want %d", got, tc.dim)
		}
		prev := 0
		for k := 0; k < sh.NumShards(); k++ {
			lo, hi := sh.Range(k)
			if lo != prev {
				t.Fatalf("dim=%d shards=%d: shard %d starts at %d, want %d (gap/overlap)", tc.dim, tc.shards, k, lo, prev)
			}
			if hi <= lo {
				t.Fatalf("dim=%d shards=%d: shard %d is empty [%d,%d)", tc.dim, tc.shards, k, lo, hi)
			}
			if k < sh.NumShards()-1 && hi%model.StripeWeights != 0 {
				t.Fatalf("dim=%d shards=%d: interior boundary %d not stripe-aligned", tc.dim, tc.shards, hi)
			}
			if got := sh.Width(k); got != hi-lo {
				t.Fatalf("Width(%d) = %d, want %d", k, got, hi-lo)
			}
			prev = hi
		}
		if prev != tc.dim {
			t.Fatalf("dim=%d shards=%d: shards cover [0,%d), want [0,%d)", tc.dim, tc.shards, prev, tc.dim)
		}
		for i := 0; i < tc.dim; i++ {
			k := sh.ShardOf(i)
			lo, hi := sh.Range(k)
			if i < lo || i >= hi {
				t.Fatalf("dim=%d shards=%d: ShardOf(%d) = %d owning [%d,%d)", tc.dim, tc.shards, i, k, lo, hi)
			}
		}
	}
}

// TestShardingClampsToStripes checks the shard count never exceeds the
// stripe count (no empty shards): 10 components are 2 stripes, so asking
// for 16 shards yields 2.
func TestShardingClampsToStripes(t *testing.T) {
	sh, err := NewSharding(10, 16)
	if err != nil {
		t.Fatal(err)
	}
	if got := sh.NumShards(); got != 2 {
		t.Fatalf("NumShards() = %d, want 2 (stripe clamp)", got)
	}
	if lo, hi := sh.Range(1); lo != 8 || hi != 10 {
		t.Fatalf("Range(1) = [%d,%d), want [8,10) remainder shard", lo, hi)
	}
}

// TestShardingRejectsBadInputs checks the error paths.
func TestShardingRejectsBadInputs(t *testing.T) {
	if _, err := NewSharding(0, 4); err == nil {
		t.Fatal("NewSharding(0,4) accepted a zero dimension")
	}
	if _, err := NewSharding(8, 0); err == nil {
		t.Fatal("NewSharding(8,0) accepted a zero shard count")
	}
}

// TestServerAsyncApplyAndStaleness checks apply-on-arrival semantics: each
// push lands immediately, advances the version, and reports staleness as
// versions advanced since the push's basis.
func TestServerAsyncApplyAndStaleness(t *testing.T) {
	sh, _ := NewSharding(8, 1)
	srv := NewServer(ModeAsync, sh, 0.5, 2)
	grad := []float64{2, 0, 0, 0, 0, 0, 0, 0}
	rep, err := srv.Push(PushRequest{Shard: 0, Worker: 0, Seq: 1, Basis: 0, Count: 2, Grad: grad})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Applied || rep.Staleness != 0 || rep.Version != 1 {
		t.Fatalf("first push reply = %+v, want applied fresh at version 1", rep)
	}
	pull, _ := srv.Pull(0)
	// w -= 0.5 * 2/2 = -0.5 on component 0.
	if got := pull.Params[0]; math.Abs(got-(-0.5)) > 1e-15 {
		t.Fatalf("component 0 = %g after first push, want -0.5", got)
	}
	// Worker 1 pushes against basis 0: one update landed in between.
	rep, err = srv.Push(PushRequest{Shard: 0, Worker: 1, Seq: 1, Basis: 0, Count: 1, Grad: grad})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Staleness != 1 {
		t.Fatalf("stale push reported staleness %d, want 1", rep.Staleness)
	}
	st := srv.StatsSnapshot()
	if st.Pushes != 2 || st.StalePushes != 1 || st.StalenessSum != 1 {
		t.Fatalf("stats = %+v, want 2 pushes / 1 stale / sum 1", st)
	}
}

// TestServerSyncReceivedFractionScaling checks the barrier aggregation
// rule: the round divides by the intended example count, so a missing
// worker shrinks the step instead of inflating its peers, and the missing
// contributions come back as shortfall.
func TestServerSyncReceivedFractionScaling(t *testing.T) {
	sh, _ := NewSharding(8, 1)
	full := NewServer(ModeSync, sh, 1.0, 2)
	short := NewServer(ModeSync, sh, 1.0, 2)
	grad := []float64{4, 0, 0, 0, 0, 0, 0, 0}
	push := func(s *Server, worker int) {
		t.Helper()
		if _, err := s.Push(PushRequest{Shard: 0, Worker: worker, Seq: 1, Basis: 0, Count: 2, Grad: grad}); err != nil {
			t.Fatal(err)
		}
	}
	push(full, 0)
	push(full, 1)
	push(short, 0) // worker 1's contribution lost

	missing, err := full.CloseRound(4)
	if err != nil {
		t.Fatal(err)
	}
	if missing != 0 {
		t.Fatalf("full round reported %d missing contributions", missing)
	}
	missing, err = short.CloseRound(4)
	if err != nil {
		t.Fatal(err)
	}
	if missing != 2 {
		t.Fatalf("short round reported %d missing contributions, want 2", missing)
	}
	var fw, sw [8]float64
	full.Snapshot(fw[:])
	short.Snapshot(sw[:])
	// Full round: w -= 1.0 * (4+4)/4 = -2; short round: w -= 1.0 * 4/4 = -1
	// (half the contributions, half the step — not the same step on fewer
	// examples).
	if math.Abs(fw[0]-(-2)) > 1e-15 || math.Abs(sw[0]-(-1)) > 1e-15 {
		t.Fatalf("full/short component 0 = %g / %g, want -2 / -1", fw[0], sw[0])
	}
}

// TestServerDuplicatePushIdempotent checks the sequence-number dedupe: a
// retransmitted push is discarded without touching the model, in both
// modes, and the duplicate is tallied.
func TestServerDuplicatePushIdempotent(t *testing.T) {
	for _, mode := range []Mode{ModeAsync, ModeSync} {
		sh, _ := NewSharding(8, 1)
		srv := NewServer(mode, sh, 0.5, 1)
		grad := []float64{2, 0, 0, 0, 0, 0, 0, 0}
		req := PushRequest{Shard: 0, Worker: 0, Seq: 7, Basis: 0, Count: 1, Grad: grad}
		if _, err := srv.Push(req); err != nil {
			t.Fatal(err)
		}
		rep, err := srv.Push(req) // identical retransmission
		if err != nil {
			t.Fatal(err)
		}
		if rep.Applied || !rep.Duplicate {
			t.Fatalf("mode %s: duplicate push reply = %+v, want discarded", mode, rep)
		}
		st := srv.StatsSnapshot()
		if st.Pushes != 1 || st.Duplicates != 1 {
			t.Fatalf("mode %s: stats = %+v, want 1 push / 1 duplicate", mode, st)
		}
		if mode == ModeSync {
			if _, err := srv.CloseRound(1); err != nil {
				t.Fatal(err)
			}
		}
		var w [8]float64
		srv.Snapshot(w[:])
		if math.Abs(w[0]-(-1)) > 1e-15 { // exactly one application of 0.5*2/1
			t.Fatalf("mode %s: component 0 = %g, want -1 (applied once)", mode, w[0])
		}
	}
}

// TestServerRejectsMalformedTraffic checks the validation paths workers
// and the HTTP layer rely on.
func TestServerRejectsMalformedTraffic(t *testing.T) {
	sh, _ := NewSharding(16, 2)
	srv := NewServer(ModeAsync, sh, 0.1, 1)
	if _, err := srv.Pull(2); err == nil {
		t.Fatal("pull of shard 2 of 2 accepted")
	}
	if _, err := srv.Push(PushRequest{Shard: 0, Worker: 1, Seq: 1, Count: 1, Grad: make([]float64, 8)}); err == nil {
		t.Fatal("push from unknown worker accepted")
	}
	if _, err := srv.Push(PushRequest{Shard: 0, Worker: 0, Seq: 1, Count: 1, Grad: make([]float64, 3)}); err == nil {
		t.Fatal("push with wrong gradient width accepted")
	}
	if _, err := srv.Push(PushRequest{Shard: 0, Worker: 0, Seq: 1, Count: 0, Grad: make([]float64, 8)}); err == nil {
		t.Fatal("push summing zero examples accepted")
	}
	if _, err := srv.CloseRound(1); err == nil {
		t.Fatal("CloseRound accepted on an async server")
	}
}
