package ps

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"time"
)

// HTTPServer is the HTTP/JSON transport over a Server, built on the same
// net/http plumbing as internal/serve so the ps tier answers real sockets:
//
//	GET  /pull?shard=K   PullReply for shard K
//	POST /push           PushRequest body -> PushReply
//	GET  /stats          Stats snapshot
//
// Malformed shard/worker/gradient inputs surface as HTTP 400 with a JSON
// error body. Admin operations (Load, Snapshot, CloseRound, Drain) stay on
// the *Server — they belong to whoever owns the training loop, not to the
// workers on the wire.
type HTTPServer struct {
	srv     *Server
	httpSrv *http.Server
	ln      net.Listener
}

// NewHTTPServer wraps a parameter server with the HTTP transport.
func NewHTTPServer(srv *Server) *HTTPServer { return &HTTPServer{srv: srv} }

// Handler returns the route mux (exported so tests and in-process callers
// can drive the transport without a socket).
func (h *HTTPServer) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/pull", h.handlePull)
	mux.HandleFunc("/push", h.handlePush)
	mux.HandleFunc("/stats", h.handleStats)
	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

func (h *HTTPServer) handlePull(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	shard, err := strconv.Atoi(r.URL.Query().Get("shard"))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("ps: bad shard query: %v", err))
		return
	}
	rep, err := h.srv.Pull(shard)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, rep)
}

func (h *HTTPServer) handlePush(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req PushRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 8<<20))
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("ps: bad push body: %v", err))
		return
	}
	rep, err := h.srv.Push(req)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, rep)
}

func (h *HTTPServer) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, h.srv.StatsSnapshot())
}

// Start listens on addr (":0" picks a free port) and serves in the
// background, returning the bound address.
func (h *HTTPServer) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	h.ln = ln
	h.httpSrv = &http.Server{Handler: h.Handler(), ReadHeaderTimeout: 10 * time.Second}
	go h.httpSrv.Serve(ln) //nolint:errcheck // Shutdown's ErrServerClosed
	return ln.Addr().String(), nil
}

// Shutdown gracefully stops the HTTP listener.
func (h *HTTPServer) Shutdown(ctx context.Context) error {
	if h.httpSrv == nil {
		return nil
	}
	return h.httpSrv.Shutdown(ctx)
}

// HTTPTransport is the worker-side client of HTTPServer: a Transport that
// speaks the JSON wire format against a base URL. One instance per worker
// (the Transport contract); instances may share the http.Client.
type HTTPTransport struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:7070".
	BaseURL string
	// Client defaults to http.DefaultClient.
	Client *http.Client
}

func (t *HTTPTransport) client() *http.Client {
	if t.Client != nil {
		return t.Client
	}
	return http.DefaultClient
}

// decode reads a JSON success body or surfaces the server's error payload.
func decode(resp *http.Response, v any) error {
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e struct {
			Error string `json:"error"`
		}
		if json.NewDecoder(resp.Body).Decode(&e) == nil && e.Error != "" {
			return fmt.Errorf("ps: server: %s", e.Error)
		}
		return fmt.Errorf("ps: server returned %s", resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

// Pull implements Transport.
func (t *HTTPTransport) Pull(shard int) (PullReply, error) {
	resp, err := t.client().Get(fmt.Sprintf("%s/pull?shard=%d", t.BaseURL, shard))
	if err != nil {
		return PullReply{}, err
	}
	var rep PullReply
	if err := decode(resp, &rep); err != nil {
		return PullReply{}, err
	}
	return rep, nil
}

// Push implements Transport.
func (t *HTTPTransport) Push(req PushRequest) (PushReply, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return PushReply{}, err
	}
	resp, err := t.client().Post(t.BaseURL+"/push", "application/json", bytes.NewReader(body))
	if err != nil {
		return PushReply{}, err
	}
	var rep PushReply
	if err := decode(resp, &rep); err != nil {
		return PushReply{}, err
	}
	return rep, nil
}
