package ps

import (
	"math"
	"net/http/httptest"
	"testing"

	"repro/internal/chaos"
	"repro/internal/data"
	"repro/internal/model"
	"repro/internal/obs"
)

// psDataset generates the gate-scale covtype sample the engine tests train
// on (dense LR, 55 params → 4 stripe-aligned shards).
func psDataset(t *testing.T, n int) *data.Dataset {
	t.Helper()
	spec, err := data.Lookup("covtype")
	if err != nil {
		t.Fatal(err)
	}
	spec = spec.Scaled(float64(n) / float64(spec.N))
	return data.Generate(spec)
}

func newTestEngine(t *testing.T, mode Mode, ds *data.Dataset, step float64) (*Engine, model.Model) {
	t.Helper()
	m := model.NewLR(ds.D())
	e := NewEngine(mode, m, ds, step, 4, 4)
	e.SetShuffleSeed(1)
	return e, m
}

// meanLoss is the driver-side loss the convergence assertions use.
func meanLoss(m model.Model, w []float64, ds *data.Dataset) float64 {
	return model.MeanLoss(m, w, ds)
}

// runEpochs drives an engine and returns final weights and summed modeled
// seconds.
func runEpochs(e *Engine, m model.Model, epochs int) ([]float64, float64) {
	w := m.InitParams(1)
	var sec float64
	for i := 0; i < epochs; i++ {
		sec += e.RunEpoch(w)
	}
	return w, sec
}

// TestEngineSyncDeterministic: the barriered path is single-threaded in
// worker order, so identical seeds replay bitwise — the property its golden
// gate stands on.
func TestEngineSyncDeterministic(t *testing.T) {
	ds := psDataset(t, 200)
	e1, m1 := newTestEngine(t, ModeSync, ds, 0.5)
	e2, _ := newTestEngine(t, ModeSync, ds, 0.5)
	w1, sec1 := runEpochs(e1, m1, 3)
	w2, sec2 := runEpochs(e2, m1, 3)
	if sec1 != sec2 {
		t.Fatalf("modeled seconds differ: %g vs %g", sec1, sec2)
	}
	for j := range w1 {
		if w1[j] != w2[j] {
			t.Fatalf("weights diverge at %d: %x vs %x", j, math.Float64bits(w1[j]), math.Float64bits(w2[j]))
		}
	}
}

// TestEngineConverges: both modes must actually train — the loss after a
// few epochs through the sharded tier drops well below the initial loss.
func TestEngineConverges(t *testing.T) {
	ds := psDataset(t, 200)
	for _, mode := range []Mode{ModeSync, ModeAsync} {
		e, m := newTestEngine(t, mode, ds, 0.3)
		w := m.InitParams(1)
		init := meanLoss(m, w, ds)
		for i := 0; i < 6; i++ {
			e.RunEpoch(w)
		}
		final := meanLoss(m, w, ds)
		if !(final < init*0.9) {
			t.Fatalf("ps-%s: loss %g -> %g after 6 epochs, no convergence", mode, init, final)
		}
		if st := e.Server().StatsSnapshot(); st.Versions[0] == 0 {
			t.Fatalf("ps-%s: shard 0 never updated", mode)
		}
	}
}

// TestEngineAsyncChaosReplayBitwise: under the sequential chaos scheduler
// the async tier replays bitwise for a fixed seed — claims, faults and
// apply order are all deterministic — and a different chaos seed changes
// the trajectory.
func TestEngineAsyncChaosReplayBitwise(t *testing.T) {
	ds := psDataset(t, 200)
	run := func(seed int64) []float64 {
		e, m := newTestEngine(t, ModeAsync, ds, 0.3)
		c := chaos.New(chaos.Plan{
			Name: "test", Stragglers: 1, StragglerFactor: 10,
			DropFrac: 0.05, DupFrac: 0.05, PartitionFrac: 0.1,
		}, seed)
		c.Sequential = true
		e.SetChaos(c)
		w, _ := runEpochs(e, m, 3)
		return w
	}
	a, b := run(7), run(7)
	for j := range a {
		if a[j] != b[j] {
			t.Fatalf("weights diverge at %d: %x vs %x (replay not bitwise)", j, math.Float64bits(a[j]), math.Float64bits(b[j]))
		}
	}
	other := run(8)
	same := true
	for j := range a {
		if a[j] != other[j] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different chaos seeds produced identical weights")
	}
}

// countRec captures counters and phases for assertions.
type countRec struct {
	counts map[obs.Counter]int64
	phases map[obs.Phase]float64
	epochs int
	sec    float64
}

func newCountRec() *countRec {
	return &countRec{counts: map[obs.Counter]int64{}, phases: map[obs.Phase]float64{}}
}
func (r *countRec) Phase(p obs.Phase, s float64) { r.phases[p] += s }
func (r *countRec) Add(c obs.Counter, d int64)   { r.counts[c] += d }
func (r *countRec) Observe(obs.Metric, float64)  {}
func (r *countRec) EndEpoch(s float64)           { r.epochs++; r.sec += s }

// TestEngineSyncPartitionShortfall: a partition during the sync barrier
// loses whole worker contributions; the server's received-fraction rule
// absorbs them and they surface as chaos shortfall + partition counters.
func TestEngineSyncPartitionShortfall(t *testing.T) {
	ds := psDataset(t, 200)
	e, m := newTestEngine(t, ModeSync, ds, 0.5)
	c := chaos.New(chaos.Plan{Name: "part", PartitionFrac: 0.5}, 3)
	e.SetChaos(c)
	rec := newCountRec()
	e.SetRecorder(rec)
	w := m.InitParams(1)
	init := meanLoss(m, w, ds)
	for i := 0; i < 4; i++ {
		e.RunEpoch(w)
	}
	if rec.counts[obs.CounterChaosPartitioned] == 0 {
		t.Fatal("no partitioned rounds counted under PartitionFrac=0.5")
	}
	if rec.counts[obs.CounterChaosShortfall] == 0 {
		t.Fatal("partitioned sync rounds produced no shortfall")
	}
	if final := meanLoss(m, w, ds); !(final < init) {
		t.Fatalf("loss %g -> %g: sync tier did not survive the partition", init, final)
	}
}

// TestEngineAsyncStalenessSurfaced: apply-on-arrival with interleaved
// workers must produce nonzero staleness counters through obs — the
// paper's async statistical cost made visible. The sequential scheduler
// (no fault plan) guarantees the interleaving regardless of host cores;
// on a single-core host the free-running goroutine path can serialise.
func TestEngineAsyncStalenessSurfaced(t *testing.T) {
	ds := psDataset(t, 200)
	e, m := newTestEngine(t, ModeAsync, ds, 0.3)
	c := chaos.New(chaos.Plan{}, 1)
	c.Sequential = true
	e.SetChaos(c)
	rec := newCountRec()
	e.SetRecorder(rec)
	w := m.InitParams(1)
	for i := 0; i < 4; i++ {
		e.RunEpoch(w)
	}
	if rec.counts[obs.CounterPSPushes] == 0 || rec.counts[obs.CounterPSPulls] == 0 {
		t.Fatalf("ps counters empty: %+v", rec.counts)
	}
	// 4 workers racing 4 shards: some pushes must land on a version newer
	// than their basis.
	if rec.counts[obs.CounterPSStalenessSum] == 0 {
		t.Fatal("async tier reported zero total staleness across 4 epochs")
	}
}

// TestEngineStormContrast is the paper's point at cluster scale: under the
// storm plan (1 straggler at 10x + drops) the barriered tier's epoch
// stretches by an order of magnitude while apply-on-arrival barely moves.
func TestEngineStormContrast(t *testing.T) {
	ds := psDataset(t, 400)
	storm, err := chaos.Lookup("storm")
	if err != nil {
		t.Fatal(err)
	}
	stretch := func(mode Mode) float64 {
		healthy, m := newTestEngine(t, mode, ds, 0.3)
		healthy.Batch = 4 // enough claims that dynamic balancing can show
		_, hs := runEpochs(healthy, m, 2)
		faulted, _ := newTestEngine(t, mode, ds, 0.3)
		faulted.Batch = 4
		c := chaos.New(storm, 5)
		c.Sequential = true
		faulted.SetChaos(c)
		_, fs := runEpochs(faulted, m, 2)
		return fs / hs
	}
	sync, async := stretch(ModeSync), stretch(ModeAsync)
	if sync < 2*async {
		t.Fatalf("storm stretch: sync %.2fx vs async %.2fx — barrier not paying for the straggler", sync, async)
	}
	if async > 4 {
		t.Fatalf("async stretch %.2fx under storm, want near 1 (dynamic claiming)", async)
	}
}

// TestEngineOverHTTP runs a full training epoch with every worker dialing
// the server through the real HTTP transport.
func TestEngineOverHTTP(t *testing.T) {
	ds := psDataset(t, 120)
	m := model.NewLR(ds.D())
	e := NewEngine(ModeAsync, m, ds, 0.3, 2, 2)
	e.SetShuffleSeed(1)
	hs := NewHTTPServer(e.Server())
	ts := httptest.NewServer(hs.Handler())
	defer ts.Close()
	e.Dial = func(int) Transport {
		return &HTTPTransport{BaseURL: ts.URL, Client: ts.Client()}
	}
	w := m.InitParams(1)
	init := meanLoss(m, w, ds)
	for i := 0; i < 3; i++ {
		e.RunEpoch(w)
	}
	if final := meanLoss(m, w, ds); !(final < init*0.95) {
		t.Fatalf("loss %g -> %g over HTTP transport, no progress", init, final)
	}
	if st := e.Server().StatsSnapshot(); st.Versions[0] == 0 {
		t.Fatal("no pushes landed on the server over HTTP")
	}
}

// TestEnginePhaseSumConsistency: gradient+update+barrier must sum exactly
// to the returned modeled seconds (the sgdtrace consistency contract).
func TestEnginePhaseSumConsistency(t *testing.T) {
	ds := psDataset(t, 200)
	for _, mode := range []Mode{ModeSync, ModeAsync} {
		e, m := newTestEngine(t, mode, ds, 0.3)
		rec := newCountRec()
		e.SetRecorder(rec)
		w := m.InitParams(1)
		sec := e.RunEpoch(w)
		sum := rec.phases[obs.PhaseGradient] + rec.phases[obs.PhaseUpdate] + rec.phases[obs.PhaseBarrier]
		if math.Abs(sum-sec) > 1e-12*math.Max(1, sec) {
			t.Fatalf("ps-%s: phases sum to %g, epoch reported %g", mode, sum, sec)
		}
	}
}
