package ps

import (
	"fmt"
	"sync"

	"repro/internal/model"
	"repro/internal/obs"
)

// Mode selects the server's aggregation discipline.
type Mode string

const (
	// ModeSync accumulates a round's pushes and applies one averaged update
	// at CloseRound — the BSP barrier lifted across the transport.
	ModeSync Mode = "sync"
	// ModeAsync applies each push the moment it arrives — Hogwild's
	// apply-on-arrival discipline across the transport.
	ModeAsync Mode = "async"
)

// Server owns the sharded model vector. All shards live in one 64-byte
// aligned backing vector (model.AlignedVec) with stripe-aligned shard
// boundaries, so shard k's parameter block is params[lo:hi] and no two
// shards share a cache line. Each shard carries its own mutex, version
// counter, per-worker dedupe horizon and (in sync mode) a gradient
// accumulator; Pull and Push are safe for concurrent use from any number of
// transports.
type Server struct {
	mode    Mode
	sh      Sharding
	step    float64
	workers int
	params  []float64 // one AlignedVec backing every shard
	shards  []shardState
}

// shardState is one shard's mutable state. Tallies accumulate under the
// shard mutex and are folded into obs counters by Drain once per epoch, the
// same drain-per-epoch discipline the in-process engines follow.
type shardState struct {
	mu      sync.Mutex
	version int64
	lastSeq []int64   // highest Seq applied per worker (dedupe horizon)
	acc     []float64 // sync-mode round accumulator
	accN    int       // examples accumulated this round

	pulls, pushes, dups   int64
	stalePushes, staleSum int64
}

// NewServer builds a server over an initially-zero model vector.
func NewServer(mode Mode, sh Sharding, step float64, workers int) *Server {
	if workers < 1 {
		workers = 1
	}
	s := &Server{
		mode:    mode,
		sh:      sh,
		step:    step,
		workers: workers,
		params:  model.AlignedVec(sh.Dim()),
		shards:  make([]shardState, sh.NumShards()),
	}
	for k := range s.shards {
		st := &s.shards[k]
		st.lastSeq = make([]int64, workers)
		for w := range st.lastSeq {
			st.lastSeq[w] = -1
		}
		if mode == ModeSync {
			st.acc = make([]float64, sh.Width(k))
		}
	}
	return s
}

// Mode returns the aggregation discipline.
func (s *Server) Mode() Mode { return s.mode }

// Sharding returns the shard layout.
func (s *Server) Sharding() Sharding { return s.sh }

// Load replaces the full model vector (all shards), e.g. at epoch start.
func (s *Server) Load(w []float64) error {
	if len(w) != s.sh.Dim() {
		return fmt.Errorf("ps: load of %d components into %d-dim server", len(w), s.sh.Dim())
	}
	for k := range s.shards {
		lo, hi := s.sh.Range(k)
		st := &s.shards[k]
		st.mu.Lock()
		copy(s.params[lo:hi], w[lo:hi])
		st.mu.Unlock()
	}
	return nil
}

// Snapshot copies the full model vector out (all shards).
func (s *Server) Snapshot(w []float64) error {
	if len(w) != s.sh.Dim() {
		return fmt.Errorf("ps: snapshot of %d-dim server into %d components", s.sh.Dim(), len(w))
	}
	for k := range s.shards {
		lo, hi := s.sh.Range(k)
		st := &s.shards[k]
		st.mu.Lock()
		copy(w[lo:hi], s.params[lo:hi])
		st.mu.Unlock()
	}
	return nil
}

// Version returns shard k's current version.
func (s *Server) Version(k int) int64 {
	st := &s.shards[k]
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.version
}

// Pull serves shard k's parameter block and version.
func (s *Server) Pull(shard int) (PullReply, error) {
	if shard < 0 || shard >= s.sh.NumShards() {
		return PullReply{}, fmt.Errorf("ps: pull of shard %d outside [0,%d)", shard, s.sh.NumShards())
	}
	lo, hi := s.sh.Range(shard)
	out := make([]float64, hi-lo)
	st := &s.shards[shard]
	st.mu.Lock()
	copy(out, s.params[lo:hi])
	v := st.version
	st.pulls++
	st.mu.Unlock()
	return PullReply{Shard: shard, Version: v, Params: out}, nil
}

// Push lands one gradient contribution. Duplicates (a Seq at or below the
// worker's dedupe horizon) are discarded idempotently. In async mode the
// update applies immediately: params -= step * grad/count, version++;
// staleness (version at arrival minus Basis) is tallied. In sync mode the
// gradient joins the round accumulator and applies at CloseRound.
func (s *Server) Push(req PushRequest) (PushReply, error) {
	if req.Shard < 0 || req.Shard >= s.sh.NumShards() {
		return PushReply{}, fmt.Errorf("ps: push to shard %d outside [0,%d)", req.Shard, s.sh.NumShards())
	}
	if req.Worker < 0 || req.Worker >= s.workers {
		return PushReply{}, fmt.Errorf("ps: push from worker %d outside [0,%d)", req.Worker, s.workers)
	}
	lo, hi := s.sh.Range(req.Shard)
	if len(req.Grad) != hi-lo {
		return PushReply{}, fmt.Errorf("ps: push of %d components to %d-wide shard %d", len(req.Grad), hi-lo, req.Shard)
	}
	if req.Count < 1 {
		return PushReply{}, fmt.Errorf("ps: push summing %d examples", req.Count)
	}
	st := &s.shards[req.Shard]
	st.mu.Lock()
	defer st.mu.Unlock()
	if req.Seq <= st.lastSeq[req.Worker] {
		st.dups++
		return PushReply{Duplicate: true, Version: st.version}, nil
	}
	st.lastSeq[req.Worker] = req.Seq
	stale := st.version - req.Basis
	if stale < 0 {
		stale = 0
	}
	switch s.mode {
	case ModeAsync:
		scale := s.step / float64(req.Count)
		for j, g := range req.Grad {
			s.params[lo+j] -= scale * g
		}
		st.version++
	default: // ModeSync: defer to CloseRound
		for j, g := range req.Grad {
			st.acc[j] += g
		}
		st.accN += req.Count
	}
	st.pushes++
	if stale > 0 {
		st.stalePushes++
	}
	st.staleSum += stale
	return PushReply{Applied: true, Staleness: stale, Version: st.version}, nil
}

// CloseRound ends one synchronous round: each shard applies the averaged
// accumulated gradient, params -= step * acc/roundN, where roundN is the
// number of examples the full round *should* have contributed. Dividing by
// the intended rather than the received count is the received-fraction
// scaling rule of the in-process sync barrier (DESIGN §11): missing
// contributions shrink the step instead of inflating their peers. The
// return value is the total example shortfall summed over shards,
// Σ_k (roundN - received_k), for the caller's chaos accounting.
func (s *Server) CloseRound(roundN int) (missing int64, err error) {
	if s.mode != ModeSync {
		return 0, fmt.Errorf("ps: CloseRound on %s-mode server", s.mode)
	}
	if roundN < 1 {
		return 0, fmt.Errorf("ps: CloseRound over %d examples", roundN)
	}
	scale := s.step / float64(roundN)
	for k := range s.shards {
		lo := s.sh.bounds[k]
		st := &s.shards[k]
		st.mu.Lock()
		if st.accN > 0 {
			for j, g := range st.acc {
				s.params[lo+j] -= scale * g
				st.acc[j] = 0
			}
		}
		if st.accN < roundN {
			missing += int64(roundN - st.accN)
		}
		st.accN = 0
		st.version++
		st.mu.Unlock()
	}
	return missing, nil
}

// Stats is a point-in-time snapshot of the server's tallies, summed over
// shards. Pushes counts applied contributions only; Duplicates counts
// sequence numbers discarded by the dedupe horizon.
type Stats struct {
	Mode         Mode    `json:"mode"`
	Shards       int     `json:"shards"`
	Pulls        int64   `json:"pulls"`
	Pushes       int64   `json:"pushes"`
	Duplicates   int64   `json:"duplicates"`
	StalePushes  int64   `json:"stale_pushes"`
	StalenessSum int64   `json:"staleness_sum"`
	Versions     []int64 `json:"versions"`
}

// StatsSnapshot sums the per-shard tallies without resetting them.
func (s *Server) StatsSnapshot() Stats {
	out := Stats{Mode: s.mode, Shards: s.sh.NumShards(), Versions: make([]int64, s.sh.NumShards())}
	for k := range s.shards {
		st := &s.shards[k]
		st.mu.Lock()
		out.Pulls += st.pulls
		out.Pushes += st.pushes
		out.Duplicates += st.dups
		out.StalePushes += st.stalePushes
		out.StalenessSum += st.staleSum
		out.Versions[k] = st.version
		st.mu.Unlock()
	}
	return out
}

// Drain folds the epoch's tallies into the recorder's ps counters and
// resets them; the engine calls it once per epoch next to the chaos drain.
func (s *Server) Drain(rec obs.Recorder) {
	rec = obs.Or(rec)
	var pulls, pushes, stale, staleSum int64
	for k := range s.shards {
		st := &s.shards[k]
		st.mu.Lock()
		pulls += st.pulls
		pushes += st.pushes
		stale += st.stalePushes
		staleSum += st.staleSum
		st.pulls, st.pushes, st.dups, st.stalePushes, st.staleSum = 0, 0, 0, 0, 0
		st.mu.Unlock()
	}
	if pulls > 0 {
		rec.Add(obs.CounterPSPulls, pulls)
	}
	if pushes > 0 {
		rec.Add(obs.CounterPSPushes, pushes)
	}
	if stale > 0 {
		rec.Add(obs.CounterPSStalePushes, stale)
	}
	if staleSum > 0 {
		rec.Add(obs.CounterPSStalenessSum, staleSum)
	}
}
