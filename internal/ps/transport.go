package ps

import (
	"errors"
	"sync"

	"repro/internal/chaos"
)

// Transport is what a worker holds: the two-verb pull/push contract of the
// parameter-server tier. Implementations are synchronous RPC — a call
// returns once the server has handled (or the fault layer has lost) the
// message. A Transport is used by a single worker goroutine; the server
// side is safe for any number of concurrent transports.
type Transport interface {
	// Pull fetches shard's parameter block and version.
	Pull(shard int) (PullReply, error)
	// Push delivers one gradient contribution.
	Push(req PushRequest) (PushReply, error)
}

// ErrPartitioned is returned by a FaultTransport whose link is down for the
// current round: the pull never reached the server, so the worker must fall
// back to its cached parameters (its pushes are silently lost instead).
var ErrPartitioned = errors.New("ps: link partitioned")

// ErrClosed is returned by a ChanTransport whose dispatcher has stopped.
var ErrClosed = errors.New("ps: transport closed")

// chanCall is one queued RPC: the request, and the channel the dispatcher
// answers on.
type chanCall struct {
	pull  int // shard, when push is nil
	push  *PushRequest
	reply chan chanReply
}

type chanReply struct {
	pull PullReply
	push PushReply
	err  error
}

// ChanTransport carries pull/push over in-process channels: every call
// enqueues onto one buffered request channel drained by a single dispatcher
// goroutine, so messages from concurrent workers serialise through a real
// queue — the in-process stand-in for a server's accept loop — rather than
// calling into the server directly. Start/Stop bound the dispatcher's
// lifetime; the engine brackets each epoch with them so no goroutine
// outlives a run.
type ChanTransport struct {
	srv  *Server
	mu   sync.Mutex
	reqs chan chanCall
	done chan struct{}
}

// NewChanTransport builds a (stopped) channel transport for srv.
func NewChanTransport(srv *Server) *ChanTransport {
	return &ChanTransport{srv: srv}
}

// Start launches the dispatcher goroutine. Idempotent.
func (t *ChanTransport) Start() {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.reqs != nil {
		return
	}
	reqs := make(chan chanCall, 64)
	done := make(chan struct{})
	t.reqs, t.done = reqs, done
	go func() {
		defer close(done)
		for c := range reqs {
			var rep chanReply
			if c.push != nil {
				rep.push, rep.err = t.srv.Push(*c.push)
			} else {
				rep.pull, rep.err = t.srv.Pull(c.pull)
			}
			c.reply <- rep
		}
	}()
}

// Stop drains and stops the dispatcher, waiting for it to exit. Calls made
// after Stop fail with ErrClosed. Idempotent.
func (t *ChanTransport) Stop() {
	t.mu.Lock()
	reqs, done := t.reqs, t.done
	t.reqs, t.done = nil, nil
	t.mu.Unlock()
	if reqs != nil {
		close(reqs)
		<-done
	}
}

func (t *ChanTransport) call(c chanCall) (chanReply, error) {
	t.mu.Lock()
	reqs := t.reqs
	t.mu.Unlock()
	if reqs == nil {
		return chanReply{}, ErrClosed
	}
	c.reply = make(chan chanReply, 1)
	reqs <- c
	return <-c.reply, nil
}

// Pull implements Transport.
func (t *ChanTransport) Pull(shard int) (PullReply, error) {
	rep, err := t.call(chanCall{pull: shard})
	if err != nil {
		return PullReply{}, err
	}
	return rep.pull, rep.err
}

// Push implements Transport.
func (t *ChanTransport) Push(req PushRequest) (PushReply, error) {
	rep, err := t.call(chanCall{push: &req})
	if err != nil {
		return PushReply{}, err
	}
	return rep.push, rep.err
}

// FaultTransport threads a chaos plan through a base transport. One
// instance per worker, owning that worker's deterministic chaos.Stream:
//
//   - BeginRound draws whether the worker's link is partitioned for the
//     whole upcoming pull-compute-push round; while down, Pull returns
//     ErrPartitioned (the worker computes against its cache) and Push is
//     lost in flight.
//   - Each delivered Push draws a fate: FateDrop loses the message after
//     the worker sent it (no error — the worker cannot tell), FateDup
//     delivers it twice, exercising the server's sequence-number dedupe.
//
// Latency stretch (the straggler factor) is a scheduling concern, not a
// message concern, so it is charged by the engine through chaos.Worker.Step
// rather than here.
type FaultTransport struct {
	Base   Transport
	Stream *chaos.Stream

	down bool
}

// NewFaultTransport wraps base with worker k's fault stream from in.
func NewFaultTransport(base Transport, in *chaos.Injector, k int) *FaultTransport {
	return &FaultTransport{Base: base, Stream: in.Worker(k)}
}

// BeginRound draws the link state for the next pull-compute-push round and
// reports whether the worker is partitioned.
func (t *FaultTransport) BeginRound() bool {
	t.down = t.Stream.Partitioned()
	return t.down
}

// Pull implements Transport; a partitioned link returns ErrPartitioned.
func (t *FaultTransport) Pull(shard int) (PullReply, error) {
	if t.down {
		return PullReply{}, ErrPartitioned
	}
	return t.Base.Pull(shard)
}

// Push implements Transport. Lost pushes (partition or drop fate) return an
// empty, non-applied reply with no error: from the worker's seat the
// message simply vanished.
func (t *FaultTransport) Push(req PushRequest) (PushReply, error) {
	if t.down {
		return PushReply{}, nil
	}
	switch t.Stream.Fate() {
	case chaos.FateDrop:
		return PushReply{}, nil
	case chaos.FateDup:
		rep, err := t.Base.Push(req)
		if err != nil {
			return rep, err
		}
		t.Base.Push(req) // retransmission; the server dedupes by Seq
		return rep, nil
	}
	return t.Base.Push(req)
}
