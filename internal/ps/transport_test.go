package ps

import (
	"errors"
	"math"
	"net/http/httptest"
	"sync"
	"testing"

	"repro/internal/chaos"
)

func oneShardServer(t *testing.T, mode Mode) *Server {
	t.Helper()
	sh, err := NewSharding(8, 1)
	if err != nil {
		t.Fatal(err)
	}
	return NewServer(mode, sh, 0.5, 4)
}

// TestChanTransportRoundTrip drives pull/push through the dispatcher
// goroutine, including concurrent pushers, and checks the closed path.
func TestChanTransportRoundTrip(t *testing.T) {
	srv := oneShardServer(t, ModeAsync)
	ct := NewChanTransport(srv)
	ct.Start()
	defer ct.Stop()

	rep, err := ct.Pull(0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Shard != 0 || len(rep.Params) != 8 {
		t.Fatalf("pull reply = %+v", rep)
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			grad := []float64{1, 0, 0, 0, 0, 0, 0, 0}
			for s := int64(1); s <= 8; s++ {
				if _, err := ct.Push(PushRequest{Shard: 0, Worker: w, Seq: s, Count: 1, Grad: grad}); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if st := srv.StatsSnapshot(); st.Pushes != 32 {
		t.Fatalf("server saw %d pushes, want 32", st.Pushes)
	}
	// Server-side errors travel back through the channel.
	if _, err := ct.Pull(5); err == nil {
		t.Fatal("pull of unknown shard returned no error")
	}
	ct.Stop()
	if _, err := ct.Pull(0); !errors.Is(err, ErrClosed) {
		t.Fatalf("pull after Stop returned %v, want ErrClosed", err)
	}
}

// TestFaultTransportPartition checks the whole-round partition window:
// pulls fail with ErrPartitioned and pushes vanish without an error.
func TestFaultTransportPartition(t *testing.T) {
	srv := oneShardServer(t, ModeAsync)
	in := chaos.NewInjector(chaos.Plan{PartitionFrac: 1}, 1)
	ft := NewFaultTransport(directTransport{srv}, in, 0)
	if !ft.BeginRound() {
		t.Fatal("PartitionFrac=1 round not partitioned")
	}
	if _, err := ft.Pull(0); !errors.Is(err, ErrPartitioned) {
		t.Fatalf("partitioned pull returned %v, want ErrPartitioned", err)
	}
	rep, err := ft.Push(PushRequest{Shard: 0, Worker: 0, Seq: 1, Count: 1, Grad: make([]float64, 8)})
	if err != nil {
		t.Fatalf("partitioned push returned error %v (lost pushes are silent)", err)
	}
	if rep.Applied {
		t.Fatal("partitioned push reported applied")
	}
	if st := srv.StatsSnapshot(); st.Pulls != 0 || st.Pushes != 0 {
		t.Fatalf("partitioned traffic reached the server: %+v", st)
	}
}

// TestFaultTransportDuplicate checks the dup fate delivers the push twice
// and the server's dedupe keeps the model at exactly one application.
func TestFaultTransportDuplicate(t *testing.T) {
	srv := oneShardServer(t, ModeAsync)
	in := chaos.NewInjector(chaos.Plan{DupFrac: 1}, 1)
	ft := NewFaultTransport(directTransport{srv}, in, 0)
	ft.BeginRound()
	grad := []float64{2, 0, 0, 0, 0, 0, 0, 0}
	rep, err := ft.Push(PushRequest{Shard: 0, Worker: 0, Seq: 1, Basis: 0, Count: 1, Grad: grad})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Applied {
		t.Fatalf("duplicated push's first delivery reply = %+v, want applied", rep)
	}
	st := srv.StatsSnapshot()
	if st.Pushes != 1 || st.Duplicates != 1 {
		t.Fatalf("stats = %+v, want 1 applied / 1 deduplicated", st)
	}
	pull, _ := srv.Pull(0)
	if math.Abs(pull.Params[0]-(-1)) > 1e-15 {
		t.Fatalf("component 0 = %g, want -1 (dup applied once)", pull.Params[0])
	}
}

// TestFaultTransportDrop checks the drop fate loses the push silently.
func TestFaultTransportDrop(t *testing.T) {
	srv := oneShardServer(t, ModeAsync)
	in := chaos.NewInjector(chaos.Plan{DropFrac: 1}, 1)
	ft := NewFaultTransport(directTransport{srv}, in, 0)
	ft.BeginRound()
	rep, err := ft.Push(PushRequest{Shard: 0, Worker: 0, Seq: 1, Count: 1, Grad: make([]float64, 8)})
	if err != nil || rep.Applied {
		t.Fatalf("dropped push reply = %+v err = %v, want silent loss", rep, err)
	}
	if st := srv.StatsSnapshot(); st.Pushes != 0 {
		t.Fatalf("dropped push reached the server: %+v", st)
	}
}

// directTransport calls the server without a queue — the minimal Transport
// for wrapping tests.
type directTransport struct{ srv *Server }

func (d directTransport) Pull(shard int) (PullReply, error)     { return d.srv.Pull(shard) }
func (d directTransport) Push(r PushRequest) (PushReply, error) { return d.srv.Push(r) }

// TestHTTPTransport exercises the JSON wire format end to end: pull, push,
// stats, and the 400 error mapping.
func TestHTTPTransport(t *testing.T) {
	srv := oneShardServer(t, ModeAsync)
	hs := NewHTTPServer(srv)
	ts := httptest.NewServer(hs.Handler())
	defer ts.Close()
	tr := &HTTPTransport{BaseURL: ts.URL, Client: ts.Client()}

	rep, err := tr.Pull(0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Version != 0 || len(rep.Params) != 8 {
		t.Fatalf("pull reply = %+v", rep)
	}
	grad := []float64{2, 0, 0, 0, 0, 0, 0, 0}
	prep, err := tr.Push(PushRequest{Shard: 0, Worker: 1, Seq: 1, Basis: 0, Count: 1, Grad: grad})
	if err != nil {
		t.Fatal(err)
	}
	if !prep.Applied || prep.Version != 1 {
		t.Fatalf("push reply = %+v, want applied at version 1", prep)
	}
	rep, err = tr.Pull(0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rep.Params[0]-(-1)) > 1e-15 {
		t.Fatalf("component 0 over HTTP = %g, want -1", rep.Params[0])
	}
	// Server-side validation surfaces as an error with the server's message.
	if _, err := tr.Pull(9); err == nil {
		t.Fatal("pull of unknown shard over HTTP returned no error")
	}
	if _, err := tr.Push(PushRequest{Shard: 0, Worker: 99, Seq: 2, Count: 1, Grad: grad}); err == nil {
		t.Fatal("push from unknown worker over HTTP returned no error")
	}
}
