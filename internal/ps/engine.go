package ps

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"

	"repro/internal/chaos"
	"repro/internal/data"
	"repro/internal/model"
	"repro/internal/obs"
)

// Default tuning of the modeled cluster. Time is counted in abstract work
// units — one example gradient costs one unit, one pull or push round trip
// costs RTT units — and converted to modeled seconds by SecPerUnit, the
// same virtual-time style as the chaos scheduler. DefaultRTT = 50 makes a
// 16-example batch against 4 shards spend ~96% of its time on the wire,
// which is the regime where the sync/async transport contrast matters.
const (
	DefaultBatch      = 16
	DefaultRTT        = 50.0
	DefaultSecPerUnit = 1e-6
)

// Engine drives the parameter-server tier as one more core.Engine
// configuration: Workers workers repeatedly pull every shard, compute the
// summed gradient of a small batch against their pulled (possibly stale,
// possibly cached) view, and push per-shard contributions back through
// their Transport.
//
//   - ModeSync advances in barriered rounds of Workers*Batch examples: the
//     server accumulates the round's pushes and applies one averaged update
//     at CloseRound. The round costs the slowest worker's pull+compute+push
//     time; Chaos.Deadline caps that wait at Deadline times the healthy
//     round, excluding late workers' contributions (received-fraction
//     scaling, counted as shortfall) — BSP with the PR-4 deadline rule,
//     across a transport.
//   - ModeAsync claims batches dynamically off a shared counter and the
//     server applies each push on arrival, tallying staleness; a straggler
//     simply claims fewer batches, so the epoch stretches by the plan's
//     async slowdown rather than the straggler's full factor.
//
// The sync path runs single-threaded in worker order (deterministic: it
// holds a golden); the async path races real goroutines, or the chaos
// controller's scheduler when one is attached (envelope-gated).
type Engine struct {
	Mode  Mode
	Model model.Model
	Data  *data.Dataset
	Step  float64
	// Workers is the modeled cluster's worker count.
	Workers int
	// Shards is the requested shard count (clamped to the stripe count).
	Shards int
	// Batch is the examples per pull-compute-push cycle (DefaultBatch).
	Batch int
	// RTT is the modeled units one pull or push round trip costs
	// (DefaultRTT); a gradient costs 1 unit per example.
	RTT float64
	// SecPerUnit converts work units to modeled seconds (DefaultSecPerUnit).
	SecPerUnit float64
	// Rec receives phase timings and the ps/chaos counters.
	Rec obs.Recorder
	// Chaos, when enabled, threads the fault plan through every worker's
	// transport (partitions, drops, dups) and paces stragglers.
	Chaos *chaos.Controller
	// Dial, when set, supplies worker k's transport (e.g. an HTTPTransport
	// against a remote Handler) and the caller owns transport lifetime.
	// Nil uses an engine-managed ChanTransport whose dispatcher runs only
	// while an epoch does.
	Dial func(worker int) Transport

	sh  Sharding
	srv *Server
	ct  *ChanTransport
	rng *rand.Rand

	perm     []int
	ws       []*workerState
	builtFor *chaos.Controller
	built    bool
}

// workerState is one worker's private half of the protocol: its transport,
// its cached view of the full model, the shard versions that view reflects,
// and its gradient/scratch buffers. Only worker k's goroutine touches it.
type workerState struct {
	k     int
	t     Transport
	ft    *FaultTransport // non-nil when chaos is threaded through t
	cache []float64
	basis []int64
	grad  []float64
	scr   model.Scratch
	seq   int64 // monotonic push sequence, persists across epochs
}

// NewEngine builds a parameter-server engine with default batch/RTT tuning.
func NewEngine(mode Mode, m model.Model, ds *data.Dataset, step float64, workers, shards int) *Engine {
	if workers < 1 {
		workers = 1
	}
	if shards < 1 {
		shards = 1
	}
	sh, err := NewSharding(m.NumParams(), shards)
	if err != nil {
		panic(err) // NumParams > 0 and shards > 0: unreachable
	}
	return &Engine{
		Mode:    mode,
		Model:   m,
		Data:    ds,
		Step:    step,
		Workers: workers,
		Shards:  shards,
		sh:      sh,
		rng:     rand.New(rand.NewSource(99)),
	}
}

// Name implements core.Engine, e.g. "ps-sync/cluster(s4w4)".
func (e *Engine) Name() string {
	return fmt.Sprintf("ps-%s/cluster(s%dw%d)", e.Mode, e.sh.NumShards(), e.Workers)
}

// SetRecorder implements core.Instrumented.
func (e *Engine) SetRecorder(r obs.Recorder) { e.Rec = r }

// SetChaos implements core.ChaosHost.
func (e *Engine) SetChaos(c *chaos.Controller) { e.Chaos = c }

// SetShuffleSeed implements core.Seeded.
func (e *Engine) SetShuffleSeed(seed int64) {
	e.rng = rand.New(rand.NewSource(seed))
}

// Server exposes the engine's parameter server so callers can front it
// with an HTTPServer (set Dial before the first epoch to route the workers
// through it), read stats, or drive it directly in tests.
func (e *Engine) Server() *Server { e.prepareCore(); return e.srv }

// prepareCore builds the server and permutation once; worker transports are
// built separately (prepare) so Dial may be set after Server().
func (e *Engine) prepareCore() {
	if e.built {
		return
	}
	if e.Batch < 1 {
		e.Batch = DefaultBatch
	}
	if e.RTT <= 0 {
		e.RTT = DefaultRTT
	}
	if e.SecPerUnit <= 0 {
		e.SecPerUnit = DefaultSecPerUnit
	}
	e.perm = make([]int, e.Data.N())
	for i := range e.perm {
		e.perm[i] = i
	}
	e.srv = NewServer(e.Mode, e.sh, e.Step, e.Workers)
	e.built = true
}

// prepare builds the worker states, rebuilding the transports when the
// chaos controller changes.
func (e *Engine) prepare() {
	e.prepareCore()
	if e.ws == nil || e.builtFor != e.Chaos {
		if e.Dial == nil && e.ct == nil {
			e.ct = NewChanTransport(e.srv)
		}
		e.ws = make([]*workerState, e.Workers)
		dim := e.sh.Dim()
		for k := range e.ws {
			ws := &workerState{
				k:     k,
				cache: make([]float64, dim),
				basis: make([]int64, e.sh.NumShards()),
				grad:  make([]float64, dim),
				scr:   e.Model.NewScratch(),
			}
			if e.Dial != nil {
				ws.t = e.Dial(k)
			} else {
				ws.t = e.ct
			}
			if e.Chaos.Enabled() {
				ws.ft = NewFaultTransport(ws.t, e.Chaos.Injector(), k)
				ws.t = ws.ft
			}
			e.ws[k] = ws
		}
		e.builtFor = e.Chaos
	}
}

// initWorkers resets every worker's cached view to the epoch's starting
// vector (sequence numbers persist — dedupe horizons span epochs).
func (e *Engine) initWorkers(w []float64) {
	for _, ws := range e.ws {
		copy(ws.cache, w)
		for s := range ws.basis {
			ws.basis[s] = e.srv.Version(s)
		}
	}
}

// RunEpoch implements core.Engine: one pass over a fresh shuffle of the
// data through the parameter-server tier, returning modeled seconds.
func (e *Engine) RunEpoch(w []float64) float64 {
	e.prepare()
	e.rng.Shuffle(len(e.perm), func(i, j int) { e.perm[i], e.perm[j] = e.perm[j], e.perm[i] })
	if err := e.srv.Load(w); err != nil {
		panic(err)
	}
	e.initWorkers(w)
	if e.ct != nil {
		e.ct.Start()
	}
	var sec float64
	if e.Mode == ModeSync {
		sec = e.runSync()
	} else {
		sec = e.runAsync()
	}
	if e.ct != nil {
		e.ct.Stop()
	}
	if err := e.srv.Snapshot(w); err != nil {
		panic(err)
	}
	e.srv.Drain(e.Rec)
	if e.Chaos.Enabled() {
		for _, ws := range e.ws {
			if ws.ft != nil {
				ws.ft.Stream.Flush()
			}
		}
		e.Chaos.Drain(e.Rec)
	}
	return sec
}

// pullAll refreshes the worker's cached view of every shard. A failed pull
// (partition, or a transport fault) keeps the cached block and its old
// basis — the worker computes against stale parameters rather than
// stopping, which is exactly the staleness the server's counters measure.
func (e *Engine) pullAll(ws *workerState) {
	for s := 0; s < e.sh.NumShards(); s++ {
		rep, err := ws.t.Pull(s)
		if err != nil {
			continue
		}
		lo, _ := e.sh.Range(s)
		copy(ws.cache[lo:lo+len(rep.Params)], rep.Params)
		ws.basis[s] = rep.Version
	}
}

// gradRange computes the summed (unnormalised) gradient of perm[lo:hi]
// against the worker's cached view.
func (e *Engine) gradRange(ws *workerState, lo, hi int) {
	for j := range ws.grad {
		ws.grad[j] = 0
	}
	for _, i := range e.perm[lo:hi] {
		e.Model.AccumGrad(ws.cache, e.Data, i, 1, ws.grad, ws.scr)
	}
}

// pushAll sends the worker's per-shard gradient contributions. A transport
// error means the push was lost in flight; the tier is built to degrade
// gracefully under exactly that, so the worker moves on.
func (e *Engine) pushAll(ws *workerState, count int) {
	for s := 0; s < e.sh.NumShards(); s++ {
		lo, hi := e.sh.Range(s)
		ws.seq++
		req := PushRequest{
			Shard:  s,
			Worker: ws.k,
			Seq:    ws.seq,
			Basis:  ws.basis[s],
			Count:  count,
			Grad:   ws.grad[lo:hi],
		}
		ws.t.Push(req) //nolint:errcheck // a failed push is a lost push
	}
}

// processClaim runs one pull-compute-push cycle over batch t of the
// shuffled permutation.
func (e *Engine) processClaim(ws *workerState, t int) {
	lo := t * e.Batch
	hi := lo + e.Batch
	if hi > len(e.perm) {
		hi = len(e.perm)
	}
	if ws.ft != nil {
		ws.ft.BeginRound()
	}
	e.pullAll(ws)
	e.gradRange(ws, lo, hi)
	e.pushAll(ws, hi-lo)
}

// runSync executes barriered rounds of Workers*Batch examples. Workers run
// sequentially in worker order (the path is deterministic and holds a
// golden); the modeled round time is the slowest worker's stretched
// pull+compute+push, capped at Chaos.Deadline times the healthy round when
// a deadline is set — a late worker's pushes are excluded and surface as
// shortfall through CloseRound.
func (e *Engine) runSync() float64 {
	n := len(e.perm)
	rtUnits := 2 * float64(e.sh.NumShards()) * e.RTT
	healthyRound := rtUnits + float64(e.Batch)
	capU := math.Inf(1)
	if e.Chaos.Enabled() && e.Chaos.Deadline >= 1 {
		capU = e.Chaos.Deadline * healthyRound
	}
	roundSize := e.Workers * e.Batch
	var totalU, gradU, updU float64
	var rounds, missingTotal int64
	for off := 0; off < n; off += roundSize {
		roundN := n - off
		if roundN > roundSize {
			roundN = roundSize
		}
		var roundMax float64
		maxB := 0
		for k := 0; k < e.Workers; k++ {
			lo := off + k*e.Batch
			if lo >= off+roundN {
				break
			}
			hi := lo + e.Batch
			if hi > off+roundN {
				hi = off + roundN
			}
			b := hi - lo
			if b > maxB {
				maxB = b
			}
			ws := e.ws[k]
			stretch := 1.0
			if ws.ft != nil {
				ws.ft.BeginRound()
				stretch = ws.ft.Stream.Cost()
			}
			cost := stretch * (rtUnits + float64(b))
			if cost > roundMax {
				roundMax = cost
			}
			e.pullAll(ws)
			e.gradRange(ws, lo, hi)
			if cost <= capU {
				e.pushAll(ws, b)
			}
		}
		if roundMax > capU {
			roundMax = capU
		}
		missing, err := e.srv.CloseRound(roundN)
		if err != nil {
			panic(err)
		}
		missingTotal += missing
		totalU += roundMax
		gradU += float64(maxB)
		updU += rtUnits
		rounds++
	}
	if missingTotal > 0 && e.Chaos.Enabled() {
		// Shortfall is counted in per-shard example contributions; divide
		// by the shard count to report whole missing examples, matching the
		// in-process sync engine's unit.
		e.Chaos.Injector().CountShortfall(missingTotal / int64(e.sh.NumShards()))
	}
	rec := obs.Or(e.Rec)
	rec.Phase(obs.PhaseGradient, gradU*e.SecPerUnit)
	rec.Phase(obs.PhaseUpdate, updU*e.SecPerUnit)
	rec.Phase(obs.PhaseBarrier, (totalU-gradU-updU)*e.SecPerUnit)
	rec.Add(obs.CounterBatches, rounds)
	rec.Add(obs.CounterWorkerUpdates, rounds)
	return totalU * e.SecPerUnit
}

// runAsync executes ceil(N/Batch) pull-compute-push claims dynamically off
// a shared counter: real goroutines when healthy, the chaos controller's
// regime (virtual-time scheduler in sequential mode) when one is attached.
// The modeled epoch is the balanced ideal — every claim's units spread over
// Workers — stretched by the controller's observed slowdown.
func (e *Engine) runAsync() float64 {
	n := len(e.perm)
	tasks := (n + e.Batch - 1) / e.Batch
	rtUnits := 2 * float64(e.sh.NumShards()) * e.RTT
	idealU := (float64(n) + float64(tasks)*rtUnits) / float64(e.Workers)
	var next atomic.Int64
	slow := 1.0
	if e.Chaos.Enabled() {
		// Each claim is two scheduling steps — pull, then compute+push — so
		// the virtual-time scheduler interleaves other workers' applies into
		// the pull-to-push window. That window is where gradient staleness
		// lives; a single atomic turn per claim would model it away.
		e.Chaos.Run(nil, e.Workers, func(k int, cw *chaos.Worker) {
			ws := e.ws[k]
			for {
				t := int(next.Add(1)) - 1
				if t >= tasks {
					return
				}
				lo := t * e.Batch
				hi := lo + e.Batch
				if hi > n {
					hi = n
				}
				if ws.ft != nil {
					ws.ft.BeginRound()
				}
				e.pullAll(ws)
				cw.Step()
				e.gradRange(ws, lo, hi)
				e.pushAll(ws, hi-lo)
				cw.Step()
			}
		})
		slow = e.Chaos.Slowdown()
	} else {
		var wg sync.WaitGroup
		for k := 0; k < e.Workers; k++ {
			wg.Add(1)
			go func(ws *workerState) {
				defer wg.Done()
				for {
					t := int(next.Add(1)) - 1
					if t >= tasks {
						return
					}
					e.processClaim(ws, t)
				}
			}(e.ws[k])
		}
		wg.Wait()
	}
	extraU := (slow - 1) * idealU
	rec := obs.Or(e.Rec)
	rec.Phase(obs.PhaseGradient, float64(n)/float64(e.Workers)*e.SecPerUnit)
	rec.Phase(obs.PhaseUpdate, float64(tasks)*rtUnits/float64(e.Workers)*e.SecPerUnit)
	if extraU > 0 {
		rec.Phase(obs.PhaseBarrier, extraU*e.SecPerUnit)
	}
	rec.Add(obs.CounterBatches, int64(tasks))
	rec.Add(obs.CounterWorkerUpdates, int64(tasks))
	return (idealU + extraU) * e.SecPerUnit
}
