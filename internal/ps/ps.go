// Package ps is the sharded parameter-server tier: the paper's central
// sync/async contrast lifted out of one process and stretched across a
// lossy transport. The model vector is split across S shards along the
// 64-byte cache-line stripes of the striped-Hogwild layout (model.AlignedVec,
// DESIGN §14), N workers pull shard parameters and push gradient
// contributions through a pluggable Transport, and the server aggregates
// under one of two disciplines:
//
//   - Synchronous (ModeSync): workers advance in barriered rounds; the
//     server accumulates each round's pushes per shard and applies one
//     averaged update when the round closes. Missing contributions — a
//     worker that missed the barrier deadline, a push dropped or lost to a
//     partition — shrink the effective step by the received fraction, the
//     same graceful-degradation rule as the in-process sync barrier
//     (DESIGN §11), and are counted as shortfall.
//
//   - Asynchronous (ModeAsync): the server applies every push the moment it
//     arrives. Each push carries the shard version its gradient was
//     computed against; version-at-apply minus that basis is the push's
//     staleness, surfaced through the internal/obs ps counters — the
//     distributed tier's generalisation of Hogwild's stale reads.
//
// Transports: ChanTransport carries pull/push over in-process channels (one
// dispatcher goroutine per server, a real queue rather than a function
// call), HTTPTransport speaks JSON over HTTP against Handler (the same
// net/http plumbing as internal/serve, so cmd/sgdload-scale traffic
// applies), and FaultTransport threads an internal/chaos plan through any
// base transport: straggler latency stretch, whole-round link partitions,
// dropped and duplicated pushes. Duplicates are deduplicated server-side by
// per-worker sequence number, so a retransmitted push is idempotent.
//
// Engine drives the tier as one more core.Engine configuration (ps-sync /
// ps-async in the regress matrix); cmd/sgdps emits the degradation report
// showing the barrier paying for a fault that apply-on-arrival absorbs.
package ps

import (
	"fmt"

	"repro/internal/model"
)

// Sharding splits a dim-component model vector across shards along 64-byte
// cache-line stripes: every interior shard boundary is a multiple of
// model.StripeWeights (8 float64 = one cache line), so a shard's parameter
// block never shares a cache line with its neighbour and the server can back
// all shards with one model.AlignedVec. Stripes are dealt as evenly as
// possible (first stripes%shards shards get one extra); when the dimension
// is not a multiple of the stripe width, the final shard absorbs the
// remainder components.
type Sharding struct {
	dim    int
	bounds []int // len = NumShards()+1; bounds[k] is shard k's first component
}

// NewSharding builds the shard layout. The shard count is clamped to the
// stripe count so no shard is empty: asking for 16 shards over a 55-dim
// model (7 stripes) yields 7 shards.
func NewSharding(dim, shards int) (Sharding, error) {
	if dim <= 0 {
		return Sharding{}, fmt.Errorf("ps: model dimension %d must be positive", dim)
	}
	if shards <= 0 {
		return Sharding{}, fmt.Errorf("ps: shard count %d must be positive", shards)
	}
	stripes := (dim + model.StripeWeights - 1) / model.StripeWeights
	if shards > stripes {
		shards = stripes
	}
	bounds := make([]int, shards+1)
	base, extra := stripes/shards, stripes%shards
	stripe := 0
	for k := 0; k < shards; k++ {
		stripe += base
		if k < extra {
			stripe++
		}
		hi := stripe * model.StripeWeights
		if hi > dim {
			hi = dim // the last stripe is short when dim % StripeWeights != 0
		}
		bounds[k+1] = hi
	}
	return Sharding{dim: dim, bounds: bounds}, nil
}

// Dim returns the model dimension the layout covers.
func (s Sharding) Dim() int { return s.dim }

// NumShards returns the shard count (after clamping).
func (s Sharding) NumShards() int { return len(s.bounds) - 1 }

// Range returns shard k's component range [lo, hi).
func (s Sharding) Range(k int) (lo, hi int) { return s.bounds[k], s.bounds[k+1] }

// Width returns the number of components shard k owns.
func (s Sharding) Width(k int) int { return s.bounds[k+1] - s.bounds[k] }

// ShardOf returns the shard owning component i.
func (s Sharding) ShardOf(i int) int {
	if i < 0 || i >= s.dim {
		panic(fmt.Sprintf("ps: component %d outside model dimension %d", i, s.dim))
	}
	// Shards differ by at most one stripe, so a stripe-indexed guess lands
	// on or next to the owner; step to the exact one.
	k := (i / model.StripeWeights) * s.NumShards() / ((s.dim + model.StripeWeights - 1) / model.StripeWeights)
	for s.bounds[k] > i {
		k--
	}
	for s.bounds[k+1] <= i {
		k++
	}
	return k
}

// PullReply is one shard's parameter block plus the version the block
// reflects. Version is the count of updates applied to the shard; a worker
// echoes it back as PushRequest.Basis so the server can measure staleness.
type PullReply struct {
	Shard   int       `json:"shard"`
	Version int64     `json:"version"`
	Params  []float64 `json:"params"`
}

// PushRequest is one worker's gradient contribution for one shard: the sum
// of per-example gradients over Count examples, restricted to the shard's
// component range.
type PushRequest struct {
	Shard  int `json:"shard"`
	Worker int `json:"worker"`
	// Seq is the worker's monotonic push sequence number; the server
	// discards a push whose Seq it has already seen from this worker on
	// this shard, making retransmitted (duplicated) pushes idempotent.
	Seq int64 `json:"seq"`
	// Basis is the shard version the gradient was computed against (from
	// the matching PullReply, or the worker's cache when partitioned).
	Basis int64 `json:"basis"`
	// Count is how many example gradients Grad sums.
	Count int       `json:"count"`
	Grad  []float64 `json:"grad"`
}

// PushReply reports what the server did with a push.
type PushReply struct {
	// Applied is false when the push was a duplicate (async and sync) —
	// lost pushes never reach the server at all.
	Applied bool `json:"applied"`
	// Duplicate marks a sequence number already seen (idempotent discard).
	Duplicate bool `json:"duplicate"`
	// Staleness is version-at-arrival minus Basis: how many updates landed
	// on the shard between the worker's pull and this push.
	Staleness int64 `json:"staleness"`
	// Version is the shard version after the push was handled.
	Version int64 `json:"version"`
}
