package linalg

import (
	"runtime"
	"testing"
)

// benchSetup builds a heavy-tailed matrix and a parallel backend with real
// dispatch for the sparse-kernel benchmarks.
func benchSetup(b *testing.B) (*CPUBackend, *CPUBackend) {
	prev := runtime.GOMAXPROCS(4)
	b.Cleanup(func() { runtime.GOMAXPROCS(prev) })
	return NewCPU(8), NewCPU(1)
}

func BenchmarkSpMVBalanced(b *testing.B) {
	par, _ := benchSetup(b)
	a := allocCSR(b, 20000, 4000, 1)
	x := make([]float64, a.NumCols)
	for i := range x {
		x[i] = float64(i%5) - 2
	}
	y := make([]float64, a.NumRows)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		par.SpMV(a, x, y)
	}
}

func BenchmarkSpMVSeq(b *testing.B) {
	_, seq := benchSetup(b)
	a := allocCSR(b, 20000, 4000, 1)
	x := make([]float64, a.NumCols)
	for i := range x {
		x[i] = float64(i%5) - 2
	}
	y := make([]float64, a.NumRows)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		seq.SpMV(a, x, y)
	}
}

func BenchmarkSpMVTBalanced(b *testing.B) {
	par, _ := benchSetup(b)
	a := allocCSR(b, 20000, 4000, 2)
	x := make([]float64, a.NumRows)
	for i := range x {
		x[i] = float64(i%7) - 3
	}
	y := make([]float64, a.NumCols)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		par.SpMVT(a, x, y)
	}
}

func BenchmarkSpMVTSeq(b *testing.B) {
	_, seq := benchSetup(b)
	a := allocCSR(b, 20000, 4000, 2)
	x := make([]float64, a.NumRows)
	for i := range x {
		x[i] = float64(i%7) - 3
	}
	y := make([]float64, a.NumCols)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		seq.SpMVT(a, x, y)
	}
}
