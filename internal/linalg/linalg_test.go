package linalg

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/sparse"
	"repro/internal/tensor"
)

func randVec(rng *rand.Rand, n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}

func randMat(rng *rand.Rand, r, c int) *tensor.Matrix {
	m := tensor.NewMatrix(r, c)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

func randCSR(rng *rand.Rand, r, c int, density float64) *sparse.CSR {
	b := sparse.NewBuilder(r, c)
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			if rng.Float64() < density {
				b.Add(i, j, rng.NormFloat64())
			}
		}
	}
	return b.Build()
}

// backends under test: the functional results must agree across all of them.
func testBackends() []Backend {
	return []Backend{NewCPU(1), NewCPU(56), NewK80()}
}

func TestBackendsAgreeOnEveryOp(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := randMat(rng, 17, 9)
	bm := randMat(rng, 9, 11)
	nt := randMat(rng, 13, 9) // for A * NT^T
	sp := randCSR(rng, 17, 9, 0.4)
	x9 := randVec(rng, 9)
	x17 := randVec(rng, 17)

	type result struct {
		gemv, gemvT, spmv, spmvT, axpy, mapd []float64
		gemm, gemmNT, gemmTN                 *tensor.Matrix
	}
	run := func(b Backend) result {
		var r result
		r.gemv = make([]float64, 17)
		b.Gemv(1.5, a, x9, 0, r.gemv)
		r.gemvT = make([]float64, 9)
		b.GemvT(0.5, a, x17, 0, r.gemvT)
		r.gemm = tensor.NewMatrix(17, 11)
		b.Gemm(1, a, bm, 0, r.gemm)
		r.gemmNT = tensor.NewMatrix(17, 13)
		b.GemmNT(1, a, nt, 0, r.gemmNT)
		r.gemmTN = tensor.NewMatrix(11, 11)
		b.GemmTN(1, bm, bm, 0, r.gemmTN) // bm^T * bm
		r.spmv = make([]float64, 17)
		b.SpMV(sp, x9, r.spmv)
		r.spmvT = make([]float64, 9)
		b.SpMVT(sp, x17, r.spmvT)
		r.axpy = append([]float64(nil), x9...)
		b.Axpy(2, x9, r.axpy)
		r.mapd = make([]float64, 9)
		b.Map(r.mapd, x9, nil, func(s, _ float64) float64 { return s * s })
		return r
	}
	base := run(testBackends()[0])
	for _, b := range testBackends()[1:] {
		got := run(b)
		pairs := []struct {
			name string
			a, b []float64
		}{
			{"gemv", base.gemv, got.gemv},
			{"gemvT", base.gemvT, got.gemvT},
			{"gemm", base.gemm.Data, got.gemm.Data},
			{"gemmNT", base.gemmNT.Data, got.gemmNT.Data},
			{"gemmTN", base.gemmTN.Data, got.gemmTN.Data},
			{"spmv", base.spmv, got.spmv},
			{"spmvT", base.spmvT, got.spmvT},
			{"axpy", base.axpy, got.axpy},
			{"map", base.mapd, got.mapd},
		}
		for _, p := range pairs {
			for i := range p.a {
				if math.Abs(p.a[i]-p.b[i]) > 1e-9*math.Max(1, math.Abs(p.a[i])) {
					t.Fatalf("%s: %s[%d] = %v vs %v", b.Name(), p.name, i, p.b[i], p.a[i])
				}
			}
		}
	}
}

func TestGemmReferencesMatch(t *testing.T) {
	// GemmNT(A, B) == Gemm(A, B^T) and GemmTN(A, B) == Gemm(A^T, B).
	rng := rand.New(rand.NewSource(2))
	a := randMat(rng, 7, 5)
	b := randMat(rng, 6, 5)
	cpu := NewCPU(1)

	nt := tensor.NewMatrix(7, 6)
	cpu.GemmNT(1, a, b, 0, nt)
	bT := tensor.NewMatrix(5, 6)
	for i := 0; i < 6; i++ {
		for j := 0; j < 5; j++ {
			bT.Set(j, i, b.At(i, j))
		}
	}
	want := tensor.NewMatrix(7, 6)
	cpu.Gemm(1, a, bT, 0, want)
	for i := range want.Data {
		if math.Abs(nt.Data[i]-want.Data[i]) > 1e-12 {
			t.Fatalf("GemmNT mismatch at %d", i)
		}
	}

	c := randMat(rng, 5, 4)
	tn := tensor.NewMatrix(7, 4)
	aT := tensor.NewMatrix(5, 7)
	for i := 0; i < 7; i++ {
		for j := 0; j < 5; j++ {
			aT.Set(j, i, a.At(i, j))
		}
	}
	cpu.GemmTN(1, aT, c, 0, tn)
	want2 := tensor.NewMatrix(7, 4)
	cpu.Gemm(1, a, c, 0, want2)
	for i := range want2.Data {
		if math.Abs(tn.Data[i]-want2.Data[i]) > 1e-12 {
			t.Fatalf("GemmTN mismatch at %d", i)
		}
	}
}

func TestMeterAccumulates(t *testing.T) {
	m := NewMeter()
	m.Charge("op", 1.5)
	m.Charge("op", 0.5)
	m.Charge("other", 1)
	if got := m.Seconds(); got != 3 {
		t.Fatalf("Seconds = %v", got)
	}
	rep := m.Report()
	if !strings.Contains(rep, "op") || !strings.Contains(rep, "other") {
		t.Fatalf("report %q", rep)
	}
	m.Reset()
	if m.Seconds() != 0 {
		t.Fatal("Reset did not clear")
	}
}

func TestCPUBackendChargesTime(t *testing.T) {
	b := NewCPU(56)
	rng := rand.New(rand.NewSource(3))
	sp := randCSR(rng, 50, 20, 0.3)
	x := randVec(rng, 20)
	y := make([]float64, 50)
	b.SpMV(sp, x, y)
	if b.Meter().Seconds() <= 0 {
		t.Fatal("no time charged")
	}
}

func TestWorkScaleScalesCPUTime(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	sp := randCSR(rng, 200, 5000, 0.02)
	x := randVec(rng, 5000)
	y := make([]float64, 200)
	base := NewCPU(56)
	base.SpMV(sp, x, y)
	scaledB := NewCPU(56)
	scaledB.WorkScale = 100
	scaledB.SpMV(sp, x, y)
	ratio := scaledB.Meter().Seconds() / base.Meter().Seconds()
	if ratio < 10 {
		t.Fatalf("WorkScale=100 only scaled time by %.1f", ratio)
	}
}

func TestWorkScaleScalesGPUTime(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	sp := randCSR(rng, 500, 2000, 0.05)
	x := randVec(rng, 2000)
	y := make([]float64, 500)
	base := NewK80()
	base.SpMV(sp, x, y)
	scaled := NewK80()
	scaled.WorkScale = 1000
	scaled.SpMV(sp, x, y)
	if scaled.Meter().Seconds() <= base.Meter().Seconds() {
		t.Fatal("GPU WorkScale had no effect")
	}
}

func TestGemmThresholdSequentialBelow(t *testing.T) {
	// A product with a small result must be priced at one thread; a large
	// one at 56. The modeled time ratio reveals the decision.
	small := NewCPU(56)
	a := tensor.NewMatrix(64, 64)
	b := tensor.NewMatrix(64, 64)
	c := tensor.NewMatrix(64, 64) // 4096 < 5000: sequential
	small.Gemm(1, a, b, 0, c)
	tSmall := small.Meter().Seconds()

	big := NewCPU(56)
	a2 := tensor.NewMatrix(128, 64)
	c2 := tensor.NewMatrix(128, 64) // 8192 >= 5000: parallel
	b2 := tensor.NewMatrix(64, 64)
	big.Gemm(1, a2, b2, 0, c2)
	tBig := big.Meter().Seconds()

	// The big product has 2x the flops but >10x the threads: it must be
	// cheaper per flop. Compare normalised times.
	if tBig/2 >= tSmall {
		t.Fatalf("5000-threshold not applied: small %v, big/2 %v", tSmall, tBig/2)
	}
}

func TestCPUNameAndThreads(t *testing.T) {
	if got := NewCPU(1).Name(); got != "cpu-seq" {
		t.Fatalf("Name = %s", got)
	}
	if got := NewCPU(56).Name(); got != "cpu-par(56)" {
		t.Fatalf("Name = %s", got)
	}
	if got := NewCPU(0).Threads(); got != 1 {
		t.Fatalf("Threads floor = %d", got)
	}
	if got := NewK80().Name(); got != "gpu" {
		t.Fatalf("gpu Name = %s", got)
	}
}

func TestSpMVTCacheReuses(t *testing.T) {
	// The GPU SpMV cost is structure-dependent and cached per matrix:
	// two calls must charge the same amount each.
	rng := rand.New(rand.NewSource(6))
	sp := randCSR(rng, 100, 50, 0.2)
	x := randVec(rng, 50)
	y := make([]float64, 100)
	b := NewK80()
	b.SpMV(sp, x, y)
	first := b.Meter().Seconds()
	b.SpMV(sp, x, y)
	second := b.Meter().Seconds() - first
	if math.Abs(first-second) > 1e-15 {
		t.Fatalf("cached cost differs: %v vs %v", first, second)
	}
}

func TestParallelForCoversRange(t *testing.T) {
	seen := make([]int32, 1000)
	parallelFor(8, 1000, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			seen[i]++
		}
	})
	for i, v := range seen {
		if v != 1 {
			t.Fatalf("index %d visited %d times", i, v)
		}
	}
	// Degenerate cases must not panic.
	parallelFor(4, 0, func(lo, hi int) { t.Fatal("called for n=0") })
	parallelFor(0, 3, func(lo, hi int) {})
}

func TestRowsMapAppliesPerRow(t *testing.T) {
	for _, b := range testBackends() {
		m := tensor.NewMatrix(10, 4)
		b.RowsMap(m, func(i int, row []float64) {
			for j := range row {
				row[j] = float64(i)
			}
		})
		for i := 0; i < 10; i++ {
			if m.At(i, 0) != float64(i) {
				t.Fatalf("%s: RowsMap row %d = %v", b.Name(), i, m.At(i, 0))
			}
		}
	}
}

func TestScalAndMapWithAux(t *testing.T) {
	for _, b := range testBackends() {
		x := []float64{1, 2, 3}
		b.Scal(2, x)
		if x[2] != 6 {
			t.Fatalf("%s: Scal = %v", b.Name(), x)
		}
		dst := make([]float64, 3)
		b.Map(dst, x, []float64{1, 1, 1}, func(s, a float64) float64 { return s + a })
		if dst[0] != 3 || dst[2] != 7 {
			t.Fatalf("%s: Map aux = %v", b.Name(), dst)
		}
	}
}
