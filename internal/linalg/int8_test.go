package linalg

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/model"
	"repro/internal/pool"
	"repro/internal/sparse"
)

// int8TestCase builds a random sparse matrix and weight vector.
func int8TestCase(rows, cols, nnz int, seed int64) (*sparse.CSR, []float64) {
	rng := rand.New(rand.NewSource(seed))
	b := sparse.NewBuilder(rows, cols)
	for i := 0; i < rows; i++ {
		width := 1 + rng.Intn(nnz)
		for k, j := 0, rng.Intn(cols); k < width && j < cols; k, j = k+1, j+1+rng.Intn(3) {
			b.Add(i, j, rng.NormFloat64())
		}
	}
	w := make([]float64, cols)
	for i := range w {
		w[i] = rng.NormFloat64() * 0.2
	}
	return b.Build(), w
}

func TestInt8SpMVMatchesSerial(t *testing.T) {
	a, w := int8TestCase(500, 700, 12, 21)
	qw := model.Quantize(w)
	want := make([]float64, a.NumRows)
	for i := range want {
		want[i] = qw.RowDot(a, i)
	}
	for _, workers := range []int{1, 2, 4, 7} {
		k := NewInt8Kernel(workers)
		got := make([]float64, a.NumRows)
		k.SpMV(a, qw, got)
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("workers=%d row %d: %g != serial %g", workers, i, got[i], want[i])
			}
		}
	}
}

func TestInt8SpMVFloatMatchesDotUnrolled(t *testing.T) {
	a, w := int8TestCase(300, 400, 10, 22)
	want := make([]float64, a.NumRows)
	for i := range want {
		cols, vals := a.Row(i)
		want[i] = DotUnrolled(cols, vals, w)
	}
	k := NewInt8Kernel(4)
	got := make([]float64, a.NumRows)
	k.SpMVFloat(a, w, got)
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("row %d: %g != %g", i, got[i], want[i])
		}
	}
}

// TestInt8SpMVWithinBound: the parallel quantised scores stay inside the
// analytic error envelope of the float64 scores.
func TestInt8SpMVWithinBound(t *testing.T) {
	a, w := int8TestCase(400, 600, 15, 23)
	qw := model.Quantize(w)
	k := NewInt8Kernel(4)
	yq := make([]float64, a.NumRows)
	yf := make([]float64, a.NumRows)
	k.SpMV(a, qw, yq)
	k.SpMVFloat(a, w, yf)
	for i := range yq {
		d := math.Abs(yq[i] - yf[i])
		if b := qw.RowErrorBound(a, i); d > b*(1+1e-9)+1e-12 {
			t.Errorf("row %d: delta %g exceeds bound %g", i, d, b)
		}
	}
}

func TestDotUnrolledMatchesSimpleDot(t *testing.T) {
	a, w := int8TestCase(100, 200, 8, 24)
	for i := 0; i < a.NumRows; i++ {
		cols, vals := a.Row(i)
		got := DotUnrolled(cols, vals, w)
		var want float64
		for k, c := range cols {
			want += vals[k] * w[c]
		}
		if math.Abs(got-want) > 1e-12*(1+math.Abs(want)) {
			t.Errorf("row %d: unrolled %g vs simple %g", i, got, want)
		}
	}
}

func TestInt8KernelPrivatePool(t *testing.T) {
	p := pool.New(2)
	defer p.Close()
	a, w := int8TestCase(200, 300, 10, 25)
	qw := model.Quantize(w)
	k := NewInt8Kernel(2)
	k.SetPool(p)
	got := make([]float64, a.NumRows)
	k.SpMV(a, qw, got)
	for i := range got {
		if want := qw.RowDot(a, i); got[i] != want {
			t.Fatalf("row %d: %g != %g on private pool", i, got[i], want)
		}
	}
	k.SetPool(nil) // restores the default pool without panicking
	k.SpMV(a, qw, got)
}

// TestInt8SpMVAllocFree pins the steady-state serving path: after the first
// call sizes the partition buffer, SpMV and SpMVFloat allocate nothing.
func TestInt8SpMVAllocFree(t *testing.T) {
	a, w := int8TestCase(600, 800, 12, 26)
	qw := model.Quantize(w)
	k := NewInt8Kernel(4)
	y := make([]float64, a.NumRows)
	k.SpMV(a, qw, y)
	k.SpMVFloat(a, w, y)
	if allocs := testing.AllocsPerRun(20, func() { k.SpMV(a, qw, y) }); allocs != 0 {
		t.Errorf("quantised SpMV allocates %v per op", allocs)
	}
	if allocs := testing.AllocsPerRun(20, func() { k.SpMVFloat(a, w, y) }); allocs != 0 {
		t.Errorf("float SpMV allocates %v per op", allocs)
	}
}
