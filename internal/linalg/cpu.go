package linalg

import (
	"fmt"

	"repro/internal/model"
	"repro/internal/numa"
	"repro/internal/pool"
	"repro/internal/sparse"
	"repro/internal/tensor"
)

// elemGrain is the minimum per-worker span of an element-wise kernel.
// Dispatching a chunk to the pool costs on the order of a microsecond; at
// ~1ns/element a chunk below a few thousand elements cannot profit, so
// mini-batch-sized vectors run inline and only model-dimension vectors
// (hundreds of thousands of columns) actually fan out.
const elemGrain = 4096

// CPUBackend executes operations on the host with pooled-worker parallelism
// and prices them against the paper's NUMA machine via the internal/numa
// model. Threads is the modeled hardware-thread count: 1 reproduces the
// paper's "cpu-seq" configuration, 56 the "cpu-par" one. Host execution is
// additionally capped by the pool size; modeled time never depends on how
// many host cores actually ran the kernel.
//
// A backend is a single-caller object (each concurrent engine worker owns
// its own), which is what lets it keep pre-bound task values and reusable
// partition/partial buffers without locks.
type CPUBackend struct {
	threads int
	cost    *numa.Model
	meter   *Meter
	pool    *pool.Pool

	// WorkScale multiplies the data-dependent work (bytes, flops, and the
	// cache-fit working set) of every operation before pricing. The
	// harness sets it to fullN/scaledN so epochs measured on a scaled
	// dataset are priced at the paper's full dataset size.
	WorkScale float64

	batch model.BatchScratch

	// Pre-bound task values: the hot kernels refill these fields instead of
	// allocating a closure per call (a closure sent through the pool's
	// channel escapes to the heap; a refilled struct does not).
	spmv   spmvTask
	spmvtA spmvtAccTask
	spmvtR spmvtReduceTask
	axpy   axpyTask
	scal   scalTask
	emap   mapTask

	parts    []sparse.Range // nnz-balanced row partition, reused per call
	partials [][]float64    // per-part SpMVT reduction buffers, reused
}

// NewCPU returns a CPU backend modeling the given hardware-thread count on
// the paper's dual-socket Xeon, dispatching host work on the shared pool.
func NewCPU(threads int) *CPUBackend {
	if threads < 1 {
		threads = 1
	}
	return &CPUBackend{
		threads:   threads,
		cost:      numa.PaperMachine(),
		meter:     NewMeter(),
		pool:      pool.Default(),
		WorkScale: 1,
	}
}

// NewCPUWithModel returns a CPU backend priced against a custom NUMA model
// (used by tests and ablations).
func NewCPUWithModel(threads int, m *numa.Model) *CPUBackend {
	b := NewCPU(threads)
	b.cost = m
	return b
}

// SetPool redirects host dispatch to a private pool (tests exercising
// contention or sizing; nil restores the shared default).
func (b *CPUBackend) SetPool(p *pool.Pool) {
	if p == nil {
		p = pool.Default()
	}
	b.pool = p
}

// Name implements Backend.
func (b *CPUBackend) Name() string {
	if b.threads == 1 {
		return "cpu-seq"
	}
	return fmt.Sprintf("cpu-par(%d)", b.threads)
}

// Threads returns the modeled hardware-thread count.
func (b *CPUBackend) Threads() int { return b.threads }

// Meter implements Backend.
func (b *CPUBackend) Meter() *Meter { return b.meter }

// BatchScratch implements model.BatchScratchProvider: the batch formulations
// keep their margin/coefficient/label buffers and SelectRows arena here,
// making the steady-state mini-batch path allocation-free. The simulated-GPU
// backend deliberately has no such method — its kernel-cost cache is keyed
// by *sparse.CSR identity, which an in-place arena would poison.
func (b *CPUBackend) BatchScratch() *model.BatchScratch { return &b.batch }

// charge prices one operation at the paper machine's scale, applying the
// WorkScale so cache-fit decisions and traffic reflect the full-size
// dataset.
func (b *CPUBackend) charge(op string, workingSet, bytes int64, flops float64, threads int) {
	s := b.WorkScale
	if s <= 0 {
		s = 1
	}
	b.meter.Charge(op, b.cost.StreamTime(
		int64(float64(workingSet)*s), int64(float64(bytes)*s), flops*s, threads))
}

// Gemv implements model.Ops.
func (b *CPUBackend) Gemv(alpha float64, a *tensor.Matrix, x []float64, beta float64, y []float64) {
	b.pool.RunFunc(b.threads, a.Rows, func(lo, hi int) {
		sub := &tensor.Matrix{Rows: hi - lo, Cols: a.Cols, Data: a.Data[lo*a.Cols : hi*a.Cols]}
		tensor.Gemv(alpha, sub, x, beta, y[lo:hi])
	})
	n := int64(a.Rows) * int64(a.Cols)
	b.charge("gemv", n*8, n*8+int64(len(x)+len(y))*8, 2*float64(n), b.threads)
}

// GemvT implements model.Ops.
func (b *CPUBackend) GemvT(alpha float64, a *tensor.Matrix, x []float64, beta float64, y []float64) {
	// Column-partitioned to keep writes disjoint across workers.
	b.pool.RunFunc(b.threads, a.Cols, func(lo, hi int) {
		for j := lo; j < hi; j++ {
			var s float64
			for i := 0; i < a.Rows; i++ {
				s += a.At(i, j) * x[i]
			}
			y[j] = alpha*s + beta*y[j]
		}
	})
	n := int64(a.Rows) * int64(a.Cols)
	b.charge("gemvT", n*8, n*8+int64(len(x)+len(y))*8, 2*float64(n), b.threads)
}

// gemmThreads applies ViennaCL's scheduling rule: products with small result
// matrices run on one thread (paper Section IV-B).
func (b *CPUBackend) gemmThreads(resultElems int) int {
	if resultElems < ParallelGemmThreshold {
		return 1
	}
	return b.threads
}

// chargeGemm prices a product with flops = 2*m*k*n and operand traffic.
func (b *CPUBackend) chargeGemm(op string, m, k, n, threads int) {
	bytes := int64(m*k+k*n+m*n) * 8
	flops := 2 * float64(m) * float64(k) * float64(n)
	b.charge(op, bytes, bytes, flops, threads)
}

// Gemm implements model.Ops.
func (b *CPUBackend) Gemm(alpha float64, a, bm *tensor.Matrix, beta float64, c *tensor.Matrix) {
	threads := b.gemmThreads(c.Rows * c.Cols)
	b.pool.RunFunc(threads, c.Rows, func(lo, hi int) {
		tensor.GemmRows(alpha, a, bm, beta, c, lo, hi)
	})
	b.chargeGemm("gemm", a.Rows, a.Cols, bm.Cols, threads)
}

// GemmNT implements model.Ops.
func (b *CPUBackend) GemmNT(alpha float64, a, bm *tensor.Matrix, beta float64, c *tensor.Matrix) {
	threads := b.gemmThreads(c.Rows * c.Cols)
	b.pool.RunFunc(threads, c.Rows, func(lo, hi int) {
		tensor.GemmNTRows(alpha, a, bm, beta, c, lo, hi)
	})
	b.chargeGemm("gemmNT", a.Rows, a.Cols, bm.Rows, threads)
}

// GemmTN implements model.Ops.
func (b *CPUBackend) GemmTN(alpha float64, a, bm *tensor.Matrix, beta float64, c *tensor.Matrix) {
	threads := b.gemmThreads(c.Rows * c.Cols)
	b.pool.RunFunc(threads, c.Rows, func(lo, hi int) {
		tensor.GemmTNRows(alpha, a, bm, beta, c, lo, hi)
	})
	b.chargeGemm("gemmTN", a.Cols, a.Rows, bm.Cols, threads)
}

// spmvCost prices a sparse matrix-vector product: the CSR arrays stream
// (12 bytes per stored entry plus the full NumRows+1 row-pointer array),
// while the dense-vector gather touches one element per entry — at full
// 64-byte cache-line granularity when the gathered vector does not fit the
// executing threads' aggregate L2 (each random access then misses and pulls
// a whole line; the irregular-access penalty of sparse CPU kernels, paper
// Section IV-B).
func (b *CPUBackend) spmvCost(op string, a *sparse.CSR, scatter bool) {
	nnz := int64(a.NNZ())
	stream := nnz*12 + int64(a.NumRows+1)*8
	perAccess := int64(8)
	if b.cost.FitLevel(int64(a.NumCols)*8, b.threads) > numa.InL2 {
		perAccess = 64
	}
	gather := nnz * perAccess
	if scatter {
		gather *= 2 // read + write of the output vector entries
	}
	ws := stream + int64(a.NumCols)*8
	b.charge(op, ws, stream+gather, 2*float64(nnz), b.threads)
}

// spmvParts computes the nnz-balanced row partition for a kernel over a.
// The part count min(threads, rows) depends only on the matrix and the
// modeled thread count — never on the host — so the partial layout (and
// with it every reduction order) is identical on any machine.
func (b *CPUBackend) spmvParts(a *sparse.CSR) []sparse.Range {
	p := b.threads
	if p > a.NumRows {
		p = a.NumRows
	}
	b.parts = a.PartitionNNZInto(p, b.parts[:0])
	return b.parts
}

// spmvTask computes y rows over the nnz-balanced parts [lo, hi).
type spmvTask struct {
	a     *sparse.CSR
	x, y  []float64
	parts []sparse.Range
}

func (t *spmvTask) Run(lo, hi int) {
	for _, r := range t.parts[lo:hi] {
		for i := r.Lo; i < r.Hi; i++ {
			t.y[i] = t.a.RowDot(i, t.x)
		}
	}
}

// SpMV implements model.Ops. Rows are split by nnz, not by count: on a
// heavy-tailed dataset even row-count chunks leave most workers idle behind
// the one that drew the wide rows.
func (b *CPUBackend) SpMV(a *sparse.CSR, x, y []float64) {
	if b.threads <= 1 || a.NumRows <= 1 {
		for i := 0; i < a.NumRows; i++ {
			y[i] = a.RowDot(i, x)
		}
	} else {
		parts := b.spmvParts(a)
		b.spmv = spmvTask{a: a, x: x, y: y, parts: parts}
		b.pool.Run(len(parts), len(parts), &b.spmv)
	}
	b.spmvCost("spmv", a, false)
}

// spmvtAccTask accumulates rows of part k into the k-th private partial,
// zeroing it first; parts are disjoint, so no synchronisation is needed.
type spmvtAccTask struct {
	a        *sparse.CSR
	x        []float64
	parts    []sparse.Range
	partials [][]float64
}

func (t *spmvtAccTask) Run(lo, hi int) {
	for k := lo; k < hi; k++ {
		out := t.partials[k]
		for i := range out {
			out[i] = 0
		}
		r := t.parts[k]
		for i := r.Lo; i < r.Hi; i++ {
			if t.x[i] != 0 {
				t.a.RowAxpy(i, t.x[i], out)
			}
		}
	}
}

// spmvtReduceTask reduces the partials into y over the column range
// [lo, hi): columns in parallel, parts in ascending order per column. The
// per-column addition order equals the old sequential Axpy sweep, so the
// result is bitwise identical while the model-dimension reduction (1.35M
// columns on news20) no longer serialises.
type spmvtReduceTask struct {
	y        []float64
	partials [][]float64
}

func (t *spmvtReduceTask) Run(lo, hi int) {
	y := t.y
	copy(y[lo:hi], t.partials[0][lo:hi])
	for _, p := range t.partials[1:] {
		for j := lo; j < hi; j++ {
			y[j] += p[j]
		}
	}
}

// SpMVT implements model.Ops: workers accumulate into private per-part
// partial outputs (parts balanced by nnz) which are then reduced
// column-parallel in part order, keeping the result deterministic while
// both phases run concurrently.
func (b *CPUBackend) SpMVT(a *sparse.CSR, x, y []float64) {
	if b.threads <= 1 || a.NumRows <= 1 {
		a.MulVecT(x, y)
		b.spmvCost("spmvT", a, true)
		return
	}
	parts := b.spmvParts(a)
	if len(parts) == 1 {
		a.MulVecT(x, y)
		b.spmvCost("spmvT", a, true)
		return
	}
	b.ensurePartials(len(parts), len(y))
	b.spmvtA = spmvtAccTask{a: a, x: x, parts: parts, partials: b.partials}
	b.pool.Run(len(parts), len(parts), &b.spmvtA)
	b.spmvtR = spmvtReduceTask{y: y, partials: b.partials}
	b.pool.RunGrain(b.threads, len(y), elemGrain, &b.spmvtR)
	b.spmvCost("spmvT", a, true)
}

// ensurePartials sizes the reusable per-part reduction buffers to p buffers
// of n elements, reusing capacity (buffers are zeroed by the accumulate
// task, not here).
func (b *CPUBackend) ensurePartials(p, n int) {
	if cap(b.partials) < p {
		np := make([][]float64, p)
		copy(np, b.partials[:len(b.partials)])
		b.partials = np
	}
	b.partials = b.partials[:p]
	for k := range b.partials {
		if cap(b.partials[k]) < n {
			b.partials[k] = make([]float64, n)
		} else {
			b.partials[k] = b.partials[k][:n]
		}
	}
}

type axpyTask struct {
	alpha float64
	x, y  []float64
}

func (t *axpyTask) Run(lo, hi int) { tensor.Axpy(t.alpha, t.x[lo:hi], t.y[lo:hi]) }

// Axpy implements model.Ops.
func (b *CPUBackend) Axpy(alpha float64, x, y []float64) {
	b.axpy = axpyTask{alpha: alpha, x: x, y: y}
	b.pool.RunGrain(b.threads, len(y), elemGrain, &b.axpy)
	n := int64(len(y))
	b.charge("axpy", n*16, n*24, 2*float64(n), b.threads)
}

type scalTask struct {
	alpha float64
	x     []float64
}

func (t *scalTask) Run(lo, hi int) { tensor.Scal(t.alpha, t.x[lo:hi]) }

// Scal implements model.Ops.
func (b *CPUBackend) Scal(alpha float64, x []float64) {
	b.scal = scalTask{alpha: alpha, x: x}
	b.pool.RunGrain(b.threads, len(x), elemGrain, &b.scal)
	n := int64(len(x))
	b.charge("scal", n*8, n*16, float64(n), b.threads)
}

type mapTask struct {
	dst, src, aux []float64
	f             func(s, a float64) float64
}

func (t *mapTask) Run(lo, hi int) {
	if t.aux == nil {
		for i := lo; i < hi; i++ {
			t.dst[i] = t.f(t.src[i], 0)
		}
	} else {
		for i := lo; i < hi; i++ {
			t.dst[i] = t.f(t.src[i], t.aux[i])
		}
	}
}

// Map implements model.Ops.
func (b *CPUBackend) Map(dst, src, aux []float64, f func(s, a float64) float64) {
	b.emap = mapTask{dst: dst, src: src, aux: aux, f: f}
	b.pool.RunGrain(b.threads, len(dst), elemGrain, &b.emap)
	n := int64(len(dst))
	// Element-wise kernels with transcendentals: ~8 flops/element.
	b.charge("map", n*24, n*24, 8*float64(n), b.threads)
}

// RowsMap implements model.Ops.
func (b *CPUBackend) RowsMap(m *tensor.Matrix, f func(i int, row []float64)) {
	b.pool.RunFunc(b.threads, m.Rows, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			f(i, m.Row(i))
		}
	})
	n := int64(m.Rows) * int64(m.Cols)
	b.charge("rowsmap", n*8, n*16, 8*float64(n), b.threads)
}

var (
	_ Backend                    = (*CPUBackend)(nil)
	_ model.BatchScratchProvider = (*CPUBackend)(nil)
)
