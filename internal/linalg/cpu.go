package linalg

import (
	"fmt"
	"sync"

	"repro/internal/numa"
	"repro/internal/sparse"
	"repro/internal/tensor"
)

// CPUBackend executes operations on the host with goroutine parallelism and
// prices them against the paper's NUMA machine via the internal/numa model.
// Threads is the modeled hardware-thread count: 1 reproduces the paper's
// "cpu-seq" configuration, 56 the "cpu-par" one.
type CPUBackend struct {
	threads int
	cost    *numa.Model
	meter   *Meter

	// WorkScale multiplies the data-dependent work (bytes, flops, and the
	// cache-fit working set) of every operation before pricing. The
	// harness sets it to fullN/scaledN so epochs measured on a scaled
	// dataset are priced at the paper's full dataset size.
	WorkScale float64

	partials sync.Pool // per-worker reduction buffers for SpMVT
}

// NewCPU returns a CPU backend modeling the given hardware-thread count on
// the paper's dual-socket Xeon.
func NewCPU(threads int) *CPUBackend {
	if threads < 1 {
		threads = 1
	}
	return &CPUBackend{
		threads:   threads,
		cost:      numa.PaperMachine(),
		meter:     NewMeter(),
		WorkScale: 1,
	}
}

// NewCPUWithModel returns a CPU backend priced against a custom NUMA model
// (used by tests and ablations).
func NewCPUWithModel(threads int, m *numa.Model) *CPUBackend {
	b := NewCPU(threads)
	b.cost = m
	return b
}

// Name implements Backend.
func (b *CPUBackend) Name() string {
	if b.threads == 1 {
		return "cpu-seq"
	}
	return fmt.Sprintf("cpu-par(%d)", b.threads)
}

// Threads returns the modeled hardware-thread count.
func (b *CPUBackend) Threads() int { return b.threads }

// Meter implements Backend.
func (b *CPUBackend) Meter() *Meter { return b.meter }

// charge prices one operation at the paper machine's scale, applying the
// WorkScale so cache-fit decisions and traffic reflect the full-size
// dataset.
func (b *CPUBackend) charge(op string, workingSet, bytes int64, flops float64, threads int) {
	s := b.WorkScale
	if s <= 0 {
		s = 1
	}
	b.meter.Charge(op, b.cost.StreamTime(
		int64(float64(workingSet)*s), int64(float64(bytes)*s), flops*s, threads))
}

// Gemv implements model.Ops.
func (b *CPUBackend) Gemv(alpha float64, a *tensor.Matrix, x []float64, beta float64, y []float64) {
	parallelFor(b.threads, a.Rows, func(lo, hi int) {
		sub := &tensor.Matrix{Rows: hi - lo, Cols: a.Cols, Data: a.Data[lo*a.Cols : hi*a.Cols]}
		tensor.Gemv(alpha, sub, x, beta, y[lo:hi])
	})
	n := int64(a.Rows) * int64(a.Cols)
	b.charge("gemv", n*8, n*8+int64(len(x)+len(y))*8, 2*float64(n), b.threads)
}

// GemvT implements model.Ops.
func (b *CPUBackend) GemvT(alpha float64, a *tensor.Matrix, x []float64, beta float64, y []float64) {
	// Column-partitioned to keep writes disjoint across workers.
	parallelFor(b.threads, a.Cols, func(lo, hi int) {
		for j := lo; j < hi; j++ {
			var s float64
			for i := 0; i < a.Rows; i++ {
				s += a.At(i, j) * x[i]
			}
			y[j] = alpha*s + beta*y[j]
		}
	})
	n := int64(a.Rows) * int64(a.Cols)
	b.charge("gemvT", n*8, n*8+int64(len(x)+len(y))*8, 2*float64(n), b.threads)
}

// gemmThreads applies ViennaCL's scheduling rule: products with small result
// matrices run on one thread (paper Section IV-B).
func (b *CPUBackend) gemmThreads(resultElems int) int {
	if resultElems < ParallelGemmThreshold {
		return 1
	}
	return b.threads
}

// chargeGemm prices a product with flops = 2*m*k*n and operand traffic.
func (b *CPUBackend) chargeGemm(op string, m, k, n, threads int) {
	bytes := int64(m*k+k*n+m*n) * 8
	flops := 2 * float64(m) * float64(k) * float64(n)
	b.charge(op, bytes, bytes, flops, threads)
}

// Gemm implements model.Ops.
func (b *CPUBackend) Gemm(alpha float64, a, bm *tensor.Matrix, beta float64, c *tensor.Matrix) {
	threads := b.gemmThreads(c.Rows * c.Cols)
	parallelFor(threads, c.Rows, func(lo, hi int) {
		tensor.GemmRows(alpha, a, bm, beta, c, lo, hi)
	})
	b.chargeGemm("gemm", a.Rows, a.Cols, bm.Cols, threads)
}

// GemmNT implements model.Ops.
func (b *CPUBackend) GemmNT(alpha float64, a, bm *tensor.Matrix, beta float64, c *tensor.Matrix) {
	threads := b.gemmThreads(c.Rows * c.Cols)
	parallelFor(threads, c.Rows, func(lo, hi int) {
		tensor.GemmNTRows(alpha, a, bm, beta, c, lo, hi)
	})
	b.chargeGemm("gemmNT", a.Rows, a.Cols, bm.Rows, threads)
}

// GemmTN implements model.Ops.
func (b *CPUBackend) GemmTN(alpha float64, a, bm *tensor.Matrix, beta float64, c *tensor.Matrix) {
	threads := b.gemmThreads(c.Rows * c.Cols)
	parallelFor(threads, c.Rows, func(lo, hi int) {
		tensor.GemmTNRows(alpha, a, bm, beta, c, lo, hi)
	})
	b.chargeGemm("gemmTN", a.Cols, a.Rows, bm.Cols, threads)
}

// spmvCost prices a sparse matrix-vector product: the CSR arrays stream
// (12 bytes per stored entry), while the dense-vector gather touches one
// element per entry — at full 64-byte cache-line granularity when the
// gathered vector does not fit the executing threads' aggregate L2 (each
// random access then misses and pulls a whole line; the irregular-access
// penalty of sparse CPU kernels, paper Section IV-B).
func (b *CPUBackend) spmvCost(op string, a *sparse.CSR, scatter bool) {
	nnz := int64(a.NNZ())
	stream := nnz*12 + int64(a.NumRows)*8
	perAccess := int64(8)
	if b.cost.FitLevel(int64(a.NumCols)*8, b.threads) > numa.InL2 {
		perAccess = 64
	}
	gather := nnz * perAccess
	if scatter {
		gather *= 2 // read + write of the output vector entries
	}
	ws := stream + int64(a.NumCols)*8
	b.charge(op, ws, stream+gather, 2*float64(nnz), b.threads)
}

// SpMV implements model.Ops.
func (b *CPUBackend) SpMV(a *sparse.CSR, x, y []float64) {
	parallelFor(b.threads, a.NumRows, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			y[i] = a.RowDot(i, x)
		}
	})
	b.spmvCost("spmv", a, false)
}

// SpMVT implements model.Ops: workers accumulate into private partial
// outputs which are then reduced in worker order, keeping the result
// deterministic while rows are processed concurrently.
func (b *CPUBackend) SpMVT(a *sparse.CSR, x, y []float64) {
	for j := range y {
		y[j] = 0
	}
	workers := b.threads
	if workers > a.NumRows {
		workers = a.NumRows
	}
	if workers <= 1 {
		a.MulVecT(x, y)
	} else {
		parts := make([][]float64, workers)
		chunk := (a.NumRows + workers - 1) / workers
		var wg sync.WaitGroup
		for wkr := 0; wkr < workers; wkr++ {
			lo := wkr * chunk
			if lo >= a.NumRows {
				parts[wkr] = nil
				continue
			}
			hi := lo + chunk
			if hi > a.NumRows {
				hi = a.NumRows
			}
			buf := b.getPartial(len(y))
			parts[wkr] = buf
			wg.Add(1)
			go func(lo, hi int, out []float64) {
				defer wg.Done()
				for i := lo; i < hi; i++ {
					if x[i] != 0 {
						a.RowAxpy(i, x[i], out)
					}
				}
			}(lo, hi, buf)
		}
		wg.Wait()
		for _, p := range parts {
			if p == nil {
				continue
			}
			tensor.Axpy(1, p, y)
			b.putPartial(p)
		}
	}
	b.spmvCost("spmvT", a, true)
}

func (b *CPUBackend) getPartial(n int) []float64 {
	if v := b.partials.Get(); v != nil {
		buf := v.([]float64)
		if cap(buf) >= n {
			buf = buf[:n]
			for i := range buf {
				buf[i] = 0
			}
			return buf
		}
	}
	return make([]float64, n)
}

func (b *CPUBackend) putPartial(p []float64) { b.partials.Put(p) } //nolint:staticcheck

// Axpy implements model.Ops.
func (b *CPUBackend) Axpy(alpha float64, x, y []float64) {
	parallelFor(b.threads, len(y), func(lo, hi int) {
		tensor.Axpy(alpha, x[lo:hi], y[lo:hi])
	})
	n := int64(len(y))
	b.charge("axpy", n*16, n*24, 2*float64(n), b.threads)
}

// Scal implements model.Ops.
func (b *CPUBackend) Scal(alpha float64, x []float64) {
	parallelFor(b.threads, len(x), func(lo, hi int) {
		tensor.Scal(alpha, x[lo:hi])
	})
	n := int64(len(x))
	b.charge("scal", n*8, n*16, float64(n), b.threads)
}

// Map implements model.Ops.
func (b *CPUBackend) Map(dst, src, aux []float64, f func(s, a float64) float64) {
	parallelFor(b.threads, len(dst), func(lo, hi int) {
		if aux == nil {
			for i := lo; i < hi; i++ {
				dst[i] = f(src[i], 0)
			}
		} else {
			for i := lo; i < hi; i++ {
				dst[i] = f(src[i], aux[i])
			}
		}
	})
	n := int64(len(dst))
	// Element-wise kernels with transcendentals: ~8 flops/element.
	b.charge("map", n*24, n*24, 8*float64(n), b.threads)
}

// RowsMap implements model.Ops.
func (b *CPUBackend) RowsMap(m *tensor.Matrix, f func(i int, row []float64)) {
	parallelFor(b.threads, m.Rows, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			f(i, m.Row(i))
		}
	})
	n := int64(m.Rows) * int64(m.Cols)
	b.charge("rowsmap", n*8, n*16, 8*float64(n), b.threads)
}

var _ Backend = (*CPUBackend)(nil)
