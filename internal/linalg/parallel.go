package linalg

import (
	"runtime"
	"sync"
)

// parallelFor splits [0, n) into contiguous ranges and runs fn on up to
// `workers` goroutines. With workers <= 1 (or a trivial n) it runs inline.
// Ranges are disjoint, so fn may write to per-index state without
// synchronisation; the call returns only when all ranges are done.
func parallelFor(workers, n int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	maxProcs := runtime.GOMAXPROCS(0)
	if workers > maxProcs {
		// More goroutines than cores adds no real concurrency on the
		// host running the study code; modeled time is priced
		// separately against the paper machine's thread count.
		workers = maxProcs
	}
	if workers <= 1 {
		fn(0, n)
		return
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}
