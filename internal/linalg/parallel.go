package linalg

import "repro/internal/pool"

// parallelFor splits [0, n) into contiguous ranges and runs fn on up to
// `workers` workers of the shared persistent pool (which is sized to
// GOMAXPROCS, so oversubscribing the host is impossible). With workers <= 1
// or a trivial n it runs inline. Ranges are disjoint, so fn may write to
// per-index state without synchronisation; the call returns only when all
// ranges are done.
//
// The CPU backend's hot kernels no longer come through here — they dispatch
// pre-bound tasks on the backend's own pool handle to stay allocation-free —
// but the helper remains the convenient entry point for closure call sites.
func parallelFor(workers, n int, fn func(lo, hi int)) {
	pool.Default().RunFunc(workers, n, fn)
}
