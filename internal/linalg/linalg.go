// Package linalg is the study's stand-in for the ViennaCL linear-algebra
// library: one device-independent API (the model.Ops contract) with two
// backends — a multi-thread CPU backend and a simulated-GPU backend — so the
// synchronous SGD code is written once and runs on either device, exactly
// the property the paper exploits (Section III-A).
//
// Every operation executes functionally (bitwise identical results across
// backends) and accrues *modeled* device time to the backend's Meter: the
// CPU backend prices operations with the internal/numa cost model at the
// paper's 56-thread Xeon scale, the GPU backend with the internal/gpusim
// K80 cost model. Hardware efficiency in the reproduced tables is read off
// these meters.
//
// The CPU backend reproduces ViennaCL's observed scheduling quirk: a matrix
// product is parallelised only when its result exceeds ParallelGemmThreshold
// elements — the root cause of the paper's "sync MLP speeds up only ~2x on
// 56 threads" finding (Section IV-B, Fig. 6).
package linalg

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/model"
)

// Meter accumulates modeled device time per operation kind.
type Meter struct {
	mu      sync.Mutex
	seconds float64
	byOp    map[string]opTotals
}

type opTotals struct {
	Seconds float64
	Calls   int64
}

// NewMeter returns an empty meter.
func NewMeter() *Meter { return &Meter{byOp: make(map[string]opTotals)} }

// Charge adds modeled seconds under the given operation name.
func (m *Meter) Charge(op string, seconds float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.seconds += seconds
	t := m.byOp[op]
	t.Seconds += seconds
	t.Calls++
	m.byOp[op] = t
}

// Seconds returns the total modeled time accrued.
func (m *Meter) Seconds() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.seconds
}

// Reset clears the meter.
func (m *Meter) Reset() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.seconds = 0
	clear(m.byOp)
}

// Report renders per-operation totals, most expensive first.
func (m *Meter) Report() string {
	m.mu.Lock()
	defer m.mu.Unlock()
	type row struct {
		op string
		t  opTotals
	}
	rows := make([]row, 0, len(m.byOp))
	for op, t := range m.byOp {
		rows = append(rows, row{op, t})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].t.Seconds > rows[j].t.Seconds })
	out := ""
	for _, r := range rows {
		out += fmt.Sprintf("%-12s %10d calls %12.6fs\n", r.op, r.t.Calls, r.t.Seconds)
	}
	return out
}

// Backend is a metered linear-algebra device.
type Backend interface {
	model.Ops
	// Name identifies the backend configuration (e.g. "cpu-par", "gpu").
	Name() string
	// Meter returns the modeled-time accumulator.
	Meter() *Meter
}

// ParallelGemmThreshold is ViennaCL's observed result-size threshold below
// which a matrix product is executed sequentially (paper Section IV-B: "a
// minimum size that is larger than 5000").
const ParallelGemmThreshold = 5000
