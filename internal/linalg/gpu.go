package linalg

import (
	"sync"

	"repro/internal/gpusim"
	"repro/internal/sparse"
	"repro/internal/tensor"
)

// GPUBackend executes operations functionally on the host (bitwise the same
// results as the CPU backend) and prices them with the internal/gpusim cost
// model of the paper's Tesla K80. Data- and model-transfer time is excluded,
// matching the paper's methodology ("we measure only the kernel execution
// time").
type GPUBackend struct {
	dev   *gpusim.Device
	meter *Meter

	// WorkScale multiplies the data-dependent work of every kernel before
	// pricing (launch overhead stays fixed); the harness sets it to
	// fullN/scaledN. See CPUBackend.WorkScale.
	WorkScale float64

	mu         sync.Mutex
	spmvCache  map[*sparse.CSR]gpusim.Cost // structure-dependent kernel costs
	spmvTCache map[*sparse.CSR]gpusim.Cost
}

// NewGPU returns a backend priced against the given simulated device.
func NewGPU(dev *gpusim.Device) *GPUBackend {
	return &GPUBackend{
		dev:        dev,
		meter:      NewMeter(),
		WorkScale:  1,
		spmvCache:  make(map[*sparse.CSR]gpusim.Cost),
		spmvTCache: make(map[*sparse.CSR]gpusim.Cost),
	}
}

// NewK80 returns a backend for the paper's GPU.
func NewK80() *GPUBackend { return NewGPU(gpusim.K80()) }

// Name implements Backend.
func (b *GPUBackend) Name() string { return "gpu" }

// Meter implements Backend.
func (b *GPUBackend) Meter() *Meter { return b.meter }

// Device exposes the simulated device (the asynchronous engine launches its
// kernels on it directly).
func (b *GPUBackend) Device() *gpusim.Device { return b.dev }

// charge prices a kernel, applying WorkScale to its data-dependent work.
func (b *GPUBackend) charge(op string, c gpusim.Cost) {
	if b.WorkScale > 0 && b.WorkScale != 1 {
		c = b.dev.Rescale(c, b.WorkScale)
	}
	b.meter.Charge(op, c.Seconds)
}

// Gemv implements model.Ops.
func (b *GPUBackend) Gemv(alpha float64, a *tensor.Matrix, x []float64, beta float64, y []float64) {
	tensor.Gemv(alpha, a, x, beta, y)
	b.charge("gemv", b.dev.CostGemv(a.Rows, a.Cols))
}

// GemvT implements model.Ops.
func (b *GPUBackend) GemvT(alpha float64, a *tensor.Matrix, x []float64, beta float64, y []float64) {
	tensor.GemvT(alpha, a, x, beta, y)
	b.charge("gemvT", b.dev.CostGemv(a.Rows, a.Cols))
}

// Gemm implements model.Ops.
func (b *GPUBackend) Gemm(alpha float64, a, bm *tensor.Matrix, beta float64, c *tensor.Matrix) {
	tensor.Gemm(alpha, a, bm, beta, c)
	b.charge("gemm", b.dev.CostGemm(a.Rows, a.Cols, bm.Cols))
}

// GemmNT implements model.Ops.
func (b *GPUBackend) GemmNT(alpha float64, a, bm *tensor.Matrix, beta float64, c *tensor.Matrix) {
	tensor.GemmNT(alpha, a, bm, beta, c)
	b.charge("gemmNT", b.dev.CostGemm(a.Rows, a.Cols, bm.Rows))
}

// GemmTN implements model.Ops.
func (b *GPUBackend) GemmTN(alpha float64, a, bm *tensor.Matrix, beta float64, c *tensor.Matrix) {
	tensor.GemmTN(alpha, a, bm, beta, c)
	b.charge("gemmTN", b.dev.CostGemm(a.Cols, a.Rows, bm.Cols))
}

// SpMV implements model.Ops. The structure-dependent kernel cost (coalescing
// analysis over the CSR) is computed once per matrix and cached.
func (b *GPUBackend) SpMV(a *sparse.CSR, x, y []float64) {
	a.MulVec(x, y)
	b.charge("spmv", b.cachedCost(b.spmvCache, a, b.dev.CostSpMV))
}

// SpMVT implements model.Ops.
func (b *GPUBackend) SpMVT(a *sparse.CSR, x, y []float64) {
	a.MulVecT(x, y)
	b.charge("spmvT", b.cachedCost(b.spmvTCache, a, b.dev.CostSpMVT))
}

func (b *GPUBackend) cachedCost(cache map[*sparse.CSR]gpusim.Cost, a *sparse.CSR, f func(*sparse.CSR) gpusim.Cost) gpusim.Cost {
	b.mu.Lock()
	c, ok := cache[a]
	b.mu.Unlock()
	if ok {
		return c
	}
	c = f(a)
	b.mu.Lock()
	cache[a] = c
	b.mu.Unlock()
	return c
}

// Axpy implements model.Ops.
func (b *GPUBackend) Axpy(alpha float64, x, y []float64) {
	tensor.Axpy(alpha, x, y)
	b.charge("axpy", b.dev.CostElementwise(len(y), 2, 1, 2))
}

// Scal implements model.Ops.
func (b *GPUBackend) Scal(alpha float64, x []float64) {
	tensor.Scal(alpha, x)
	b.charge("scal", b.dev.CostElementwise(len(x), 1, 1, 1))
}

// Map implements model.Ops.
func (b *GPUBackend) Map(dst, src, aux []float64, f func(s, a float64) float64) {
	if aux == nil {
		for i := range dst {
			dst[i] = f(src[i], 0)
		}
	} else {
		for i := range dst {
			dst[i] = f(src[i], aux[i])
		}
	}
	b.charge("map", b.dev.CostElementwise(len(dst), 2, 1, 8))
}

// RowsMap implements model.Ops.
func (b *GPUBackend) RowsMap(m *tensor.Matrix, f func(i int, row []float64)) {
	for i := 0; i < m.Rows; i++ {
		f(i, m.Row(i))
	}
	b.charge("rowsmap", b.dev.CostElementwise(m.Rows*m.Cols, 2, 1, 8))
}

var _ Backend = (*GPUBackend)(nil)
