package linalg

import (
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/data"
	"repro/internal/model"
	"repro/internal/pool"
	"repro/internal/sparse"
)

// allocCSR builds a heavy-tailed CSR for the allocation proofs.
func allocCSR(tb testing.TB, rows, cols int, seed int64) *sparse.CSR {
	tb.Helper()
	rng := rand.New(rand.NewSource(seed))
	b := sparse.NewBuilder(rows, cols)
	for i := 0; i < rows; i++ {
		width := 1 + rng.Intn(5)
		if rng.Float64() < 0.02 {
			width = cols / 4
		}
		for k, j := 0, rng.Intn(cols); k < width && j < cols; k, j = k+1, j+1+rng.Intn(4) {
			b.Add(i, j, rng.NormFloat64())
		}
	}
	return b.Build()
}

// allocDataset wraps a heavy-tailed CSR with ±1 labels.
func allocDataset(tb testing.TB, rows, cols int, seed int64) *data.Dataset {
	tb.Helper()
	x := allocCSR(tb, rows, cols, seed)
	y := make([]float64, rows)
	rng := rand.New(rand.NewSource(seed + 1))
	for i := range y {
		y[i] = 1
		if rng.Intn(2) == 0 {
			y[i] = -1
		}
	}
	return &data.Dataset{Name: "alloc", X: x, Y: y}
}

// dispatchBackend returns a parallel CPU backend whose pool really
// dispatches (a private 4-worker pool, with GOMAXPROCS raised so the
// workers can run); the cleanup restores both.
func dispatchBackend(tb testing.TB, threads int) *CPUBackend {
	tb.Helper()
	prev := runtime.GOMAXPROCS(4)
	p := pool.New(4)
	b := NewCPU(threads)
	b.SetPool(p)
	tb.Cleanup(func() {
		runtime.GOMAXPROCS(prev)
		p.Close()
	})
	return b
}

// TestSpMVTZeroAllocSteadyState proves the pooled SpMVT — partition,
// per-part accumulation, column-parallel reduction — allocates nothing once
// its partition and partial buffers are warm.
func TestSpMVTZeroAllocSteadyState(t *testing.T) {
	b := dispatchBackend(t, 8)
	a := allocCSR(t, 600, 400, 5)
	x := make([]float64, a.NumRows)
	for i := range x {
		x[i] = float64(i%7) - 3
	}
	y := make([]float64, a.NumCols)
	for i := 0; i < 4; i++ { // warm the partition, partial, and done-group pools
		b.SpMVT(a, x, y)
	}
	allocs := testing.AllocsPerRun(50, func() { b.SpMVT(a, x, y) })
	if allocs != 0 {
		t.Fatalf("SpMVT allocates %v times per call in steady state, want 0", allocs)
	}
}

// TestSpMVZeroAllocSteadyState proves the nnz-partitioned SpMV is likewise
// allocation-free when warm.
func TestSpMVZeroAllocSteadyState(t *testing.T) {
	b := dispatchBackend(t, 8)
	a := allocCSR(t, 600, 400, 6)
	x := make([]float64, a.NumCols)
	for i := range x {
		x[i] = float64(i%5) - 2
	}
	y := make([]float64, a.NumRows)
	for i := 0; i < 4; i++ {
		b.SpMV(a, x, y)
	}
	allocs := testing.AllocsPerRun(50, func() { b.SpMV(a, x, y) })
	if allocs != 0 {
		t.Fatalf("SpMV allocates %v times per call in steady state, want 0", allocs)
	}
}

// TestBatchGradZeroAllocSteadyState proves the whole LR and SVM mini-batch
// gradient — SelectRows arena, margin/coefficient/label buffers, SpMV, Map,
// SpMVT, Scal — is allocation-free against the CPU backend once warm.
func TestBatchGradZeroAllocSteadyState(t *testing.T) {
	ds := allocDataset(t, 800, 300, 9)
	rows := make([]int, 64)
	for i := range rows {
		rows[i] = (i * 11) % ds.N()
	}
	for _, m := range []model.BatchModel{model.NewLR(ds.D()), model.NewSVM(ds.D())} {
		t.Run(m.Name(), func(t *testing.T) {
			b := dispatchBackend(t, 8)
			w := m.InitParams(1)
			g := make([]float64, m.NumParams())
			for i := 0; i < 4; i++ {
				m.BatchGrad(b, w, ds, rows, g)
			}
			allocs := testing.AllocsPerRun(50, func() { m.BatchGrad(b, w, ds, rows, g) })
			if allocs != 0 {
				t.Fatalf("%s BatchGrad allocates %v times per call in steady state, want 0",
					m.Name(), allocs)
			}
		})
	}
}
