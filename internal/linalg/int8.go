package linalg

import (
	"repro/internal/model"
	"repro/internal/pool"
	"repro/internal/sparse"
)

// Int8Kernel is the quantised scoring kernel of the serving tier: a sparse
// matrix-vector product against int8 weights with per-stripe float scales
// (model.QuantizedWeights), dispatched on the worker pool with the same
// nnz-balanced row partitioning as the float64 backend. Unlike CPUBackend
// it is not a priced model.Ops device — it measures nothing and models
// nothing; it exists to score batches as fast as the host allows.
//
// It also carries SpMVFloat, an identically-structured (same dispatch, same
// two-way-unrolled inner loop) float64 kernel, so the bench gate's
// quantised-vs-float comparison isolates the int8 memory-locality win from
// any difference in loop shape or parallelism.
//
// A kernel is a single-caller object (the serve dispatcher owns one); it
// keeps pre-bound task values and a reusable partition buffer, so the
// steady-state path is allocation-free.
type Int8Kernel struct {
	workers int
	pool    *pool.Pool

	qtask int8SpMVTask
	ftask f64SpMVTask
	parts []sparse.Range
}

// NewInt8Kernel returns a kernel fanning out over at most workers pool
// workers (values < 1 mean the pool size).
func NewInt8Kernel(workers int) *Int8Kernel {
	p := pool.Default()
	if workers < 1 {
		workers = p.Size()
	}
	return &Int8Kernel{workers: workers, pool: p}
}

// SetPool redirects dispatch to a private pool (nil restores the default).
func (k *Int8Kernel) SetPool(p *pool.Pool) {
	if p == nil {
		p = pool.Default()
	}
	k.pool = p
}

// partsFor computes the nnz-balanced row partition for a kernel over a,
// reusing the kernel's buffer.
func (k *Int8Kernel) partsFor(a *sparse.CSR) []sparse.Range {
	p := k.workers
	if p > a.NumRows {
		p = a.NumRows
	}
	k.parts = a.PartitionNNZInto(p, k.parts[:0])
	return k.parts
}

// SpMV computes y[i] = row_i(a) · dequant(qw) for every row, in parallel
// over nnz-balanced parts. len(y) must be a.NumRows; qw must cover
// a.NumCols components.
func (k *Int8Kernel) SpMV(a *sparse.CSR, qw *model.QuantizedWeights, y []float64) {
	if k.workers <= 1 || a.NumRows <= 1 {
		for i := 0; i < a.NumRows; i++ {
			y[i] = qw.RowDot(a, i)
		}
		return
	}
	parts := k.partsFor(a)
	k.qtask = int8SpMVTask{a: a, qw: qw, y: y, parts: parts}
	k.pool.Run(len(parts), len(parts), &k.qtask)
}

// SpMVFloat computes y[i] = row_i(a) · w with the same dispatch and loop
// shape as SpMV — the fair float64 comparator for the quantisation bench.
func (k *Int8Kernel) SpMVFloat(a *sparse.CSR, w, y []float64) {
	if k.workers <= 1 || a.NumRows <= 1 {
		for i := 0; i < a.NumRows; i++ {
			cols, vals := a.Row(i)
			y[i] = DotUnrolled(cols, vals, w)
		}
		return
	}
	parts := k.partsFor(a)
	k.ftask = f64SpMVTask{a: a, w: w, y: y, parts: parts}
	k.pool.Run(len(parts), len(parts), &k.ftask)
}

// int8SpMVTask scores the rows of parts [lo, hi) against the quantised
// weights.
type int8SpMVTask struct {
	a     *sparse.CSR
	qw    *model.QuantizedWeights
	y     []float64
	parts []sparse.Range
}

func (t *int8SpMVTask) Run(lo, hi int) {
	for _, r := range t.parts[lo:hi] {
		for i := r.Lo; i < r.Hi; i++ {
			t.y[i] = t.qw.RowDot(t.a, i)
		}
	}
}

// f64SpMVTask scores the rows of parts [lo, hi) against float64 weights
// with the unrolled dot.
type f64SpMVTask struct {
	a     *sparse.CSR
	w, y  []float64
	parts []sparse.Range
}

func (t *f64SpMVTask) Run(lo, hi int) {
	for _, r := range t.parts[lo:hi] {
		for i := r.Lo; i < r.Hi; i++ {
			cols, vals := t.a.Row(i)
			t.y[i] = DotUnrolled(cols, vals, t.w)
		}
	}
}

// DotUnrolled is the two-way-unrolled sparse·dense dot with independent
// accumulators — the float64 twin of model.QuantizedWeights.RowDot. It is
// NOT numerically identical to sparse.CSR.RowDot (different summation
// order), which is why the training path does not use it; serving and
// benchmarks, which tolerate reassociation, do.
func DotUnrolled(cols []int32, vals []float64, w []float64) float64 {
	var s0, s1 float64
	k := 0
	for ; k+2 <= len(cols); k += 2 {
		s0 += vals[k] * w[cols[k]]
		s1 += vals[k+1] * w[cols[k+1]]
	}
	if k < len(cols) {
		s0 += vals[k] * w[cols[k]]
	}
	return s0 + s1
}
