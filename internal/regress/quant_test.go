package regress

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/model"
)

// trainedLR trains a small LR the way the serving tier would receive one.
func trainedLR(t *testing.T, name string, n int) (*model.LR, []float64, *data.Dataset) {
	t.Helper()
	spec, err := data.Lookup(name)
	if err != nil {
		t.Fatal(err)
	}
	ds := data.Generate(spec.Scaled(float64(n) / float64(spec.N)))
	m := model.NewLR(ds.D())
	e := core.NewHogwild(m, ds, 0.3, 1)
	e.SetShuffleSeed(7)
	w := m.InitParams(1)
	for ep := 0; ep < 5; ep++ {
		e.RunEpoch(w)
	}
	return m, w, ds
}

// TestQuantGatePassesOnTrainedModel: the committed thresholds hold for a
// freshly trained LR — the int8 path loses neither pointwise accuracy beyond
// the analytic envelope nor ranking quality.
func TestQuantGatePassesOnTrainedModel(t *testing.T) {
	m, w, ds := trainedLR(t, "w8a", 400)
	chk := QuantGate(m, w, ds, DefaultQuantThresholds())
	if !chk.Pass {
		t.Fatalf("quant gate failed on a trained model: %+v", chk)
	}
	if chk.BoundViolations != 0 {
		t.Errorf("%d analytic bound violations", chk.BoundViolations)
	}
	if chk.MaxAbsDelta <= 0 || chk.MaxAbsDelta > chk.DeltaLimit {
		t.Errorf("max delta %g outside (0, %g]", chk.MaxAbsDelta, chk.DeltaLimit)
	}
	if chk.AUCFloat <= 0.5 {
		t.Errorf("trained model AUC %g not informative; gate proves nothing", chk.AUCFloat)
	}
	if chk.AUCDelta > chk.AUCLimit {
		t.Errorf("AUC delta %g > %g", chk.AUCDelta, chk.AUCLimit)
	}
	if chk.Model != "lr" || chk.N != ds.N() {
		t.Errorf("report identity wrong: %+v", chk)
	}
}

// TestQuantGateFailsOnImpossibleThresholds: the same healthy model must fail
// when the caller demands better-than-quantisation accuracy — the gate
// actually compares, it does not rubber-stamp.
func TestQuantGateFailsOnImpossibleThresholds(t *testing.T) {
	m, w, ds := trainedLR(t, "w8a", 300)
	chk := QuantGate(m, w, ds, QuantThresholds{MaxAbsDelta: 1e-18})
	if chk.Pass {
		t.Fatalf("impossible delta threshold passed: %+v", chk)
	}
	if !strings.Contains(chk.Detail, "max score delta") {
		t.Errorf("detail %q does not name the failing check", chk.Detail)
	}
}

// TestQuantGateSingleClassFails: a dataset with one class has no defined AUC;
// the gate must fail loudly instead of passing on a NaN comparison.
func TestQuantGateSingleClassFails(t *testing.T) {
	m, w, ds := trainedLR(t, "w8a", 100)
	onesY := make([]float64, ds.N())
	for i := range onesY {
		onesY[i] = 1
	}
	mono := &data.Dataset{Name: "mono", X: ds.X, Y: onesY}
	chk := QuantGate(m, w, mono, DefaultQuantThresholds())
	if chk.Pass {
		t.Fatalf("single-class dataset passed the AUC gate: %+v", chk)
	}
	if !strings.Contains(chk.Detail, "AUC undefined") {
		t.Errorf("detail %q does not flag the undefined AUC", chk.Detail)
	}
}

// The new kernel-campaign bench rules must actually bite on doctored
// reports: a collapsed quantised speedup, an analytic bound violation, a
// striped overhead blowup, and a hot-path allocation each fail their check.
func TestBenchCompareQuantAndStripedRules(t *testing.T) {
	doctor := func(field, repl string) []byte {
		return []byte(strings.Replace(string(healthy(false)), field, repl, 1))
	}
	cases := []struct {
		name, field, repl, metric string
	}{
		{"speedup collapse", `"speedup": 1.52`, `"speedup": 1.05`, "quant_score.speedup"},
		{"bound violation", `"bound_violations": 0`, `"bound_violations": 3`, "quant_score.bound_violations"},
		{"striped blowup", `"ns_op_ratio": 1.22`, `"ns_op_ratio": 2.8`, "striped_hogwild.ns_op_ratio"},
		{"coalescing lost", `"coalesced_frac": 0.38`, `"coalesced_frac": 0.01`, "striped_hogwild.coalesced_frac"},
		{"quant spmv allocates", `"quant_spmv": 0`, `"quant_spmv": 2`, "steady_state_allocs_per_op.quant_spmv"},
		{"striped epoch allocates", `"striped_epoch": 0`, `"striped_epoch": 1`, "steady_state_allocs_per_op.striped_epoch"},
	}
	for _, tc := range cases {
		rep, err := CompareBench(healthy(false), doctor(tc.field, tc.repl), nil)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Pass {
			t.Errorf("%s: doctored report passed", tc.name)
			continue
		}
		found := false
		for _, c := range rep.Checks {
			if c.Metric == tc.metric && c.Status == StatusFail {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: no failing %s check in %+v", tc.name, tc.metric, rep.Checks)
		}
	}
}
