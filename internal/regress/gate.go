package regress

import (
	"encoding/json"
	"fmt"
	"math"
	"os"

	"repro/internal/metrics"
)

// Status is the outcome of one gate check.
type Status string

const (
	StatusPass    Status = "pass"
	StatusFail    Status = "fail"
	StatusMissing Status = "missing" // no committed golden for the config
	StatusError   Status = "error"   // the config could not be executed
)

// Result is one config's gate outcome in the machine-readable report.
type Result struct {
	Key         string  `json:"key"`
	Fingerprint string  `json:"fingerprint"`
	Kind        Kind    `json:"kind,omitempty"`
	Status      Status  `json:"status"`
	Detail      string  `json:"detail,omitempty"`
	FailIndex   int     `json:"fail_index,omitempty"`
	MaxRelErr   float64 `json:"max_rel_err,omitempty"`
	FinalLoss   float64 `json:"final_loss,omitempty"`
	SecPerEpoch float64 `json:"sec_per_epoch,omitempty"`
}

// Report is the full gate outcome, written as JSON for CI artifacts.
type Report struct {
	GoldenDir string   `json:"golden_dir"`
	Results   []Result `json:"results"`
	Pass      bool     `json:"pass"`
}

// Compare executes the config and checks it against its golden.
func Compare(c Config, g Golden) Result {
	res := Result{Key: g.Key, Fingerprint: c.Fingerprint().String(), Kind: g.Kind}
	runs, err := RunSeeds(c)
	if err != nil {
		res.Status = StatusError
		res.Detail = err.Error()
		return res
	}
	switch g.Kind {
	case KindGolden:
		return compareGolden(res, runs[0], g)
	case KindEnvelope:
		return compareEnvelope(res, runs, g)
	default:
		res.Status = StatusError
		res.Detail = fmt.Sprintf("unknown golden kind %q", g.Kind)
		return res
	}
}

func compareGolden(res Result, run RunOutcome, g Golden) Result {
	relTol, absTol := orDefault(g.RelTol, DefaultRelTol), orDefault(g.AbsTol, DefaultAbsTol)
	res.FinalLoss = run.Losses[len(run.Losses)-1]
	res.SecPerEpoch = run.SecPerEpoch
	d := metrics.CompareCurves(run.Losses, g.Losses, relTol, absTol)
	res.MaxRelErr = d.MaxRelErr
	if !d.OK {
		res.Status = StatusFail
		res.FailIndex = d.Index
		if d.LenGot != d.LenWant {
			res.Detail = fmt.Sprintf("curve length %d != golden %d", d.LenGot, d.LenWant)
		} else {
			res.Detail = fmt.Sprintf("loss diverges from golden at epoch %d (max rel err %.3g > tol %.3g)",
				d.Index, d.MaxRelErr, relTol)
		}
		return res
	}
	secTol := orDefault(g.SecRelTol, DefaultSecRelTol)
	if g.SecPerEpoch > 0 && math.Abs(run.SecPerEpoch-g.SecPerEpoch) > secTol*g.SecPerEpoch {
		res.Status = StatusFail
		res.Detail = fmt.Sprintf("modeled sec/epoch %.6g differs from golden %.6g beyond rel tol %.1g (cost-model change: regenerate goldens if intended)",
			run.SecPerEpoch, g.SecPerEpoch, secTol)
		return res
	}
	res.Status = StatusPass
	return res
}

func compareEnvelope(res Result, runs []RunOutcome, g Golden) Result {
	curves := make([][]float64, len(runs))
	for i, r := range runs {
		curves[i] = r.Losses
	}
	_, med, _ := metrics.Envelope(curves, 0.10, 0.90)
	res.FinalLoss = med[len(med)-1]
	res.SecPerEpoch = runs[0].SecPerEpoch
	bandSlack := orDefault(g.BandSlack, DefaultBandSlack)
	relSlack := orDefault(g.RelSlack, DefaultRelSlack)
	d := metrics.WithinEnvelope(med, g.P10, g.P90, g.P50, bandSlack, relSlack)
	res.MaxRelErr = d.WorstExcess
	if !d.OK {
		res.Status = StatusFail
		res.FailIndex = d.Index
		res.Detail = fmt.Sprintf("median loss leaves the recorded p10-p90 band at epoch %d (excess %.3g of median)",
			d.Index, d.WorstExcess)
		return res
	}
	finalTol := orDefault(g.FinalRelTol, DefaultFinalRelTol)
	final := med[len(med)-1]
	if math.Abs(final-g.FinalMedian) > finalTol*math.Max(math.Abs(g.FinalMedian), 1e-12) {
		res.Status = StatusFail
		res.FailIndex = len(med) - 1
		res.Detail = fmt.Sprintf("final median loss %.6g outside rel tol %.2g of recorded %.6g",
			final, finalTol, g.FinalMedian)
		return res
	}
	res.Status = StatusPass
	return res
}

// Gate runs every config against the goldens in dir and aggregates the
// report. A missing golden is a failure (the matrix must stay fully
// covered); an execution error fails too.
func Gate(dir string, configs []Config) Report {
	rep := Report{GoldenDir: dir, Pass: true}
	for _, c := range configs {
		key := c.Fingerprint().Key()
		g, err := Load(dir, key)
		if err != nil {
			st := StatusError
			if os.IsNotExist(err) {
				st = StatusMissing
				err = fmt.Errorf("no committed golden: run sgdgate compare -update")
			}
			rep.Results = append(rep.Results, Result{
				Key: key, Fingerprint: c.Fingerprint().String(), Status: st, Detail: err.Error(),
			})
			rep.Pass = false
			continue
		}
		res := Compare(c, g)
		if res.Status != StatusPass {
			rep.Pass = false
		}
		rep.Results = append(rep.Results, res)
	}
	return rep
}

// Update re-records every config's golden into dir.
func Update(dir string, configs []Config) error {
	for _, c := range configs {
		g, err := Record(c)
		if err != nil {
			return fmt.Errorf("regress: record %s: %w", c.Fingerprint().Key(), err)
		}
		if err := Save(dir, g); err != nil {
			return err
		}
	}
	return nil
}

// WriteReport marshals the report to path ("" skips writing).
func WriteReport(path string, rep any) error {
	if path == "" {
		return nil
	}
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}

// orDefault substitutes def for an unset (zero) tolerance.
func orDefault(v, def float64) float64 {
	if v == 0 {
		return def
	}
	return v
}
