package regress

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
)

// The performance gate diffs a fresh cmd/epochbench report against the
// committed BENCH_baseline.json. It is noise-aware by construction:
//
//   - allocation counts are deterministic, so the allocations PR 2 drove to
//     zero are gated exactly;
//   - dimensionless invariants (pool-vs-spawn speedup, partition skew) are
//     machine-independent and gated against absolute thresholds;
//   - wall-clock ns/op metrics are compared as new/baseline ratios with
//     generous per-metric thresholds, and only when the two reports are
//     comparable (same GOOS/GOARCH and the same -short size class) —
//     otherwise those checks are reported as skipped instead of producing
//     cross-machine noise failures.

// BenchRuleKind selects how a metric is checked.
type BenchRuleKind string

const (
	// RuleExact requires the fresh value to equal Value exactly
	// (allocation counts pinned at zero).
	RuleExact BenchRuleKind = "exact"
	// RuleMax requires the fresh value <= Value.
	RuleMax BenchRuleKind = "max"
	// RuleMin requires the fresh value >= Value.
	RuleMin BenchRuleKind = "min"
	// RuleRatio requires fresh/baseline <= Value; applied only when the
	// reports are comparable.
	RuleRatio BenchRuleKind = "ratio"
)

// BenchRule gates one metric of the epochbench report, addressed by its
// dotted JSON path. FullSizeOnly marks thresholds that only hold at the
// full problem size: scale-dependent effects (the int8 kernel's win is the
// float path falling out of cache, which a -short run's small dimension
// never provokes) are skipped on -short reports instead of failing them.
type BenchRule struct {
	Metric       string        `json:"metric"`
	Kind         BenchRuleKind `json:"kind"`
	Value        float64       `json:"value"`
	FullSizeOnly bool          `json:"full_size_only,omitempty"`
}

// DefaultBenchRules is the committed threshold table for BENCH_epoch.json.
func DefaultBenchRules() []BenchRule {
	return []BenchRule{
		// Allocation counts PR 2 pinned: exactly zero, on any machine.
		{Metric: "small_kernel_epoch.pool_allocs_op", Kind: RuleExact, Value: 0},
		{Metric: "steady_state_allocs_per_op.lr_batchgrad", Kind: RuleExact, Value: 0},
		{Metric: "steady_state_allocs_per_op.svm_batchgrad", Kind: RuleExact, Value: 0},
		{Metric: "steady_state_allocs_per_op.spmvt", Kind: RuleExact, Value: 0},
		// Dimensionless invariants of the epoch-path engineering.
		{Metric: "small_kernel_epoch.speedup", Kind: RuleMin, Value: 1.5},
		{Metric: "spmv.skew_balanced", Kind: RuleMax, Value: 1.15},
		{Metric: "spmvt.skew_balanced", Kind: RuleMax, Value: 1.15},
		// The int8 quantised scoring kernel (PR 7). The committed baseline
		// records ≥1.5× over the equally-unrolled float64 kernel at equal
		// batch size; the gate floor is 1.3 to absorb machine-to-machine
		// cache-hierarchy variance without ever letting the win evaporate.
		// The win is a cache-residency effect, so the floor binds only at
		// full size: a -short run's small model keeps the float weights in
		// cache too and measures ~1.1x. bound_violations is exact and
		// machine-independent: no row's quantised score may leave its
		// analytic error envelope at any size.
		{Metric: "quant_score.speedup", Kind: RuleMin, Value: 1.3, FullSizeOnly: true},
		{Metric: "quant_score.bound_violations", Kind: RuleExact, Value: 0},
		{Metric: "steady_state_allocs_per_op.quant_spmv", Kind: RuleExact, Value: 0},
		// Striped Hogwild (PR 7): the coalesced fraction is a function of
		// the dataset's hot columns and the window size only — measured
		// identically on any host. The wall-time ratio is bounded rather
		// than pinned at 1: on a host without real core-level contention
		// the buffering is pure overhead (measured ~1.2x single-core), and
		// the gate asserts that overhead stays bounded while the issued-
		// store reduction — the contention win — stays deterministic.
		{Metric: "striped_hogwild.coalesced_frac", Kind: RuleMin, Value: 0.05},
		{Metric: "striped_hogwild.ns_op_ratio", Kind: RuleMax, Value: 1.4},
		{Metric: "steady_state_allocs_per_op.striped_epoch", Kind: RuleExact, Value: 0},
		// Local-SGD H-sweep (PR 9): at fixed K the sync engine's modeled
		// epoch time must fall strictly as H grows — growing H removes
		// reduction rounds from the critical path, and losing that trend
		// means the cost accounting broke. Modeled time is an exact function
		// of the cost model, so the flag is machine-independent and gated
		// exactly at every size class.
		{Metric: "localsgd_hsweep.wall_monotonic_dec", Kind: RuleExact, Value: 1},
		// Heterogeneous split sweep (PR 10): at the sweep's strongest GPU
		// skew the adaptive estimator must move >= 20% of the batch stream
		// within 5 epochs and the adapted split must beat a static 50/50.
		// The sweep runs at a fixed gate scale in every size class and all
		// quantities are modeled, so both flags are machine-independent and
		// gated exactly like the H-sweep's monotonicity flag.
		{Metric: "hetero_split.shift_within_5", Kind: RuleExact, Value: 1},
		{Metric: "hetero_split.adaptive_beats_static", Kind: RuleExact, Value: 1},
		// Wall-clock regressions, ratio vs baseline on comparable runs.
		{Metric: "small_kernel_epoch.pool_ns_op", Kind: RuleRatio, Value: 2.0},
		{Metric: "spmv.balanced_ns_op", Kind: RuleRatio, Value: 2.0},
		{Metric: "spmvt.balanced_ns_op", Kind: RuleRatio, Value: 2.0},
		{Metric: "quant_score.quant_ns_op", Kind: RuleRatio, Value: 2.0},
		{Metric: "builder_build_ns_op", Kind: RuleRatio, Value: 2.0},
	}
}

// BenchCheck is one rule's outcome.
type BenchCheck struct {
	Metric   string        `json:"metric"`
	Kind     BenchRuleKind `json:"kind"`
	Limit    float64       `json:"limit"`
	Baseline float64       `json:"baseline,omitempty"`
	New      float64       `json:"new"`
	Ratio    float64       `json:"ratio,omitempty"`
	Status   Status        `json:"status"`
	Detail   string        `json:"detail,omitempty"`
}

// BenchReport is the perf gate's machine-readable outcome.
type BenchReport struct {
	BaselinePath string       `json:"baseline_path"`
	NewPath      string       `json:"new_path"`
	Comparable   bool         `json:"comparable"`
	Skipped      string       `json:"skipped_reason,omitempty"`
	Checks       []BenchCheck `json:"checks"`
	Pass         bool         `json:"pass"`
}

// benchSkipped marks skipped ratio checks; it is not a failure status.
const benchSkipped Status = "skip"

// CompareBench gates the fresh report against the baseline under the rules
// (nil = DefaultBenchRules). Both arguments are raw BENCH_epoch.json bytes.
func CompareBench(baseline, fresh []byte, rules []BenchRule) (BenchReport, error) {
	if rules == nil {
		rules = DefaultBenchRules()
	}
	var base, cur map[string]any
	if err := json.Unmarshal(baseline, &base); err != nil {
		return BenchReport{}, fmt.Errorf("regress: baseline report: %w", err)
	}
	if err := json.Unmarshal(fresh, &cur); err != nil {
		return BenchReport{}, fmt.Errorf("regress: fresh report: %w", err)
	}
	rep := BenchReport{Pass: true}
	rep.Comparable, rep.Skipped = comparableReports(base, cur)
	for _, r := range rules {
		c := BenchCheck{Metric: r.Metric, Kind: r.Kind, Limit: r.Value}
		nv, ok := lookupNumber(cur, r.Metric)
		if !ok {
			c.Status = StatusFail
			c.Detail = "metric missing from fresh report (schema drift?)"
			rep.Pass = false
			rep.Checks = append(rep.Checks, c)
			continue
		}
		c.New = nv
		if r.FullSizeOnly && fmt.Sprint(cur["short"]) == "true" {
			c.Status = benchSkipped
			c.Detail = "scale-dependent threshold, skipped on -short runs"
			rep.Checks = append(rep.Checks, c)
			continue
		}
		switch r.Kind {
		case RuleExact:
			if nv == r.Value {
				c.Status = StatusPass
			} else {
				c.Status = StatusFail
				c.Detail = fmt.Sprintf("got %v, pinned at exactly %v", nv, r.Value)
			}
		case RuleMax:
			if nv <= r.Value {
				c.Status = StatusPass
			} else {
				c.Status = StatusFail
				c.Detail = fmt.Sprintf("got %v > max %v", nv, r.Value)
			}
		case RuleMin:
			if nv >= r.Value {
				c.Status = StatusPass
			} else {
				c.Status = StatusFail
				c.Detail = fmt.Sprintf("got %v < min %v", nv, r.Value)
			}
		case RuleRatio:
			bv, ok := lookupNumber(base, r.Metric)
			if !ok {
				c.Status = StatusFail
				c.Detail = "metric missing from baseline report"
				break
			}
			c.Baseline = bv
			if !rep.Comparable {
				c.Status = benchSkipped
				c.Detail = "reports not comparable: " + rep.Skipped
				break
			}
			if bv <= 0 {
				c.Status = benchSkipped
				c.Detail = "baseline value is zero"
				break
			}
			c.Ratio = nv / bv
			if c.Ratio <= r.Value {
				c.Status = StatusPass
			} else {
				c.Status = StatusFail
				c.Detail = fmt.Sprintf("%.0f -> %.0f ns/op is %.2fx baseline (threshold %.2fx)",
					bv, nv, c.Ratio, r.Value)
			}
		default:
			c.Status = StatusFail
			c.Detail = fmt.Sprintf("unknown rule kind %q", r.Kind)
		}
		if c.Status == StatusFail {
			rep.Pass = false
		}
		rep.Checks = append(rep.Checks, c)
	}
	return rep, nil
}

// CompareBenchFiles is CompareBench over files, recording the paths in the
// report.
func CompareBenchFiles(baselinePath, freshPath string, rules []BenchRule) (BenchReport, error) {
	base, err := os.ReadFile(baselinePath)
	if err != nil {
		return BenchReport{}, err
	}
	cur, err := os.ReadFile(freshPath)
	if err != nil {
		return BenchReport{}, err
	}
	rep, err := CompareBench(base, cur, rules)
	rep.BaselinePath, rep.NewPath = baselinePath, freshPath
	return rep, err
}

// comparableReports decides whether wall-clock ratios between the two
// reports are meaningful: same OS/architecture and the same -short size
// class (a -short run measures different problem sizes, so its ns/op are a
// different quantity, not a noisy version of the same one).
func comparableReports(base, cur map[string]any) (bool, string) {
	var reasons []string
	for _, k := range []string{"goos", "goarch", "short"} {
		if fmt.Sprint(base[k]) != fmt.Sprint(cur[k]) {
			reasons = append(reasons, fmt.Sprintf("%s %v != %v", k, base[k], cur[k]))
		}
	}
	if len(reasons) > 0 {
		return false, strings.Join(reasons, "; ")
	}
	return true, ""
}

// lookupNumber resolves a dotted path to a float64 in decoded JSON.
func lookupNumber(m map[string]any, path string) (float64, bool) {
	cur := any(m)
	for _, part := range strings.Split(path, ".") {
		obj, ok := cur.(map[string]any)
		if !ok {
			return 0, false
		}
		cur, ok = obj[part]
		if !ok {
			return 0, false
		}
	}
	v, ok := cur.(float64)
	return v, ok
}
