// Package regress is the golden-run regression harness: it re-executes the
// paper's engine matrix at a small, seeded scale and gates the resulting
// convergence curves against committed references, so a PR that silently
// degrades statistical behaviour (or quietly changes an update rule) fails
// CI instead of surviving on hand-checked claims.
//
// Two gate disciplines, matching the determinism structure of the engines:
//
//   - Deterministic configurations (the synchronous engines on every
//     backend, and every asynchronous path that replays exactly under a
//     fixed seed — see internal/core's determinism tests) are recorded as a
//     single golden loss curve and compared point-by-point within a tight
//     relative tolerance.
//   - Asynchronous configurations are gated on quantile envelopes: N seeded
//     runs are summarised by per-epoch p10/p50/p90 curves, and a fresh
//     median curve must stay inside the recorded band (plus a configured
//     slack) with the final loss within a relative tolerance. This is the
//     same tolerance-band treatment the source paper applies to its
//     convergence figures, and it remains valid on hosts with enough cores
//     for the Hogwild races to be genuinely nondeterministic.
//
// The harness also contains the noise-aware performance gate that diffs a
// fresh cmd/epochbench report against the committed baseline (see bench.go).
package regress

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/linalg"
	"repro/internal/model"
	"repro/internal/ps"
)

// Config describes one gated engine configuration. The zero values of the
// tuning knobs are invalid; build configs with DefaultMatrix or fill every
// field.
type Config struct {
	// Strategy is "sync" or "async" for the in-process engines,
	// "ps-sync" / "ps-async" for the sharded parameter-server tier,
	// "local-sync" / "local-async" for the Local-SGD replica family, or
	// "hetero-sync" / "hetero-async" for the heterogeneous CPU+GPU
	// co-training engines.
	Strategy string `json:"strategy"`
	// Device is "cpu-seq", "cpu-par" or "gpu"; the ps strategies run on
	// "cluster" (N workers pulling/pushing against a sharded server), the
	// local strategies on "cpu-par" (Threads = replica count), and the
	// hetero strategies on "cpu+gpu" (Threads = CPU replica count, the GPU
	// side sized by occupancy).
	Device string `json:"device"`
	// Task is the model: "lr" or "svm" (the dense/sparse axis comes from
	// the dataset).
	Task string `json:"task"`
	// Dataset is a registry name (data.Lookup); N is the generated scale.
	Dataset string `json:"dataset"`
	N       int    `json:"n"`
	// Threads is the modeled CPU thread count for the parallel devices and
	// the worker count for the cluster device.
	Threads int `json:"threads"`
	// Shards is the parameter-server shard count (cluster device only).
	Shards int `json:"shards,omitempty"`
	// H is the Local-SGD averaging granularity (local strategies only):
	// local steps per barrier round for local-sync, the timer's virtual-
	// time aggregation interval for local-async.
	H int `json:"h,omitempty"`
	// Step is the SGD step size.
	Step float64 `json:"step"`
	// Epochs is how many engine epochs the gate runs (the recorded curve
	// has Epochs+1 points, including the epoch-0 initial loss).
	Epochs int `json:"epochs"`
	// Seeds is the number of seeded repetitions an envelope summarises
	// (ignored for deterministic configs, which run seed BaseSeed only).
	Seeds int `json:"seeds"`
	// BaseSeed seeds the first repetition; repetition k uses BaseSeed+k.
	BaseSeed int64 `json:"base_seed"`
}

// Deterministic reports whether the config is gated on an exact golden
// curve rather than a quantile envelope. Synchronous engines compute
// identical updates on every backend (the ViennaCL property, asserted
// bitwise by the core tests), the barriered ps tier drives its workers in a
// fixed order, and barriered Local SGD advances only private replica state
// between its averaging rounds; every asynchronous engine is gated
// statistically, because with enough host cores its races are real
// (local-async replays exactly per seed but draws a fresh schedule per
// seed, so its multi-seed envelope is the meaningful gate). Synchronous
// heterogeneous co-training is deterministic despite overlapping its two
// backends — they write disjoint private vectors and merge in a fixed fold
// order. Note the explicit equality — strings.HasSuffix would also match
// "async"/"ps-async"/"local-async"/"hetero-async".
func (c Config) Deterministic() bool {
	return c.Strategy == "sync" || c.Strategy == "ps-sync" ||
		c.Strategy == "local-sync" || c.Strategy == "hetero-sync"
}

// Fingerprint returns the golden-file key for this config.
func (c Config) Fingerprint() core.Fingerprint {
	return core.Fingerprint{
		Engine:  c.Strategy + "/" + c.deviceName(),
		Model:   c.Task,
		Dataset: c.Dataset,
		N:       c.N,
		Threads: c.Threads,
		Seed:    c.BaseSeed,
	}
}

// deviceName renders the device axis the way Engine.Name does, so the
// fingerprint matches what an attached recorder would report.
func (c Config) deviceName() string {
	switch {
	case c.Strategy == "local-sync" || c.Strategy == "local-async":
		// The Local-SGD engines render replica count and averaging
		// granularity (see LocalSGDEngine.Name), both of which change the
		// gated curve.
		return fmt.Sprintf("cpu-par(%d)h%d", c.Threads, c.H)
	case c.Strategy == "hetero-sync" || c.Strategy == "hetero-async":
		// The heterogeneous engines render the CPU replica count (see
		// HeteroEngine.Name); the GPU side is implied by the device.
		return fmt.Sprintf("cpu+gpu(%d)", c.Threads)
	case c.Device == "cpu-par":
		return fmt.Sprintf("cpu-par(%d)", c.Threads)
	case c.Device == "cluster":
		return fmt.Sprintf("cluster(s%dw%d)", c.Shards, c.Threads)
	default:
		return c.Device
	}
}

// Build constructs the engine, model and dataset of the config. The
// returned engine is fresh (no shared state with previous builds) and
// unseeded: the runner seeds it per repetition.
func (c Config) Build() (core.Engine, model.Model, *data.Dataset, error) {
	spec, err := data.Lookup(c.Dataset)
	if err != nil {
		return nil, nil, nil, err
	}
	if c.N <= 0 || c.Epochs <= 0 || c.Step <= 0 {
		return nil, nil, nil, fmt.Errorf("regress: config %s: N, Epochs and Step must be positive", c.Fingerprint().Key())
	}
	spec = spec.Scaled(float64(c.N) / float64(spec.N))
	ds := data.Generate(spec)
	var m model.BatchModel
	switch c.Task {
	case "lr":
		m = model.NewLR(ds.D())
	case "svm":
		m = model.NewSVM(ds.D())
	default:
		return nil, nil, nil, fmt.Errorf("regress: unknown task %q", c.Task)
	}
	switch c.Strategy {
	case "sync":
		var b linalg.Backend
		switch c.Device {
		case "cpu-seq":
			b = linalg.NewCPU(1)
		case "cpu-par":
			b = linalg.NewCPU(c.Threads)
		case "gpu":
			b = linalg.NewK80()
		default:
			return nil, nil, nil, fmt.Errorf("regress: unknown device %q", c.Device)
		}
		return core.NewSync(b, m, ds, c.Step), m, ds, nil
	case "async":
		switch c.Device {
		case "cpu-seq":
			return core.NewHogwild(m, ds, c.Step, 1), m, ds, nil
		case "cpu-par":
			return core.NewHogwild(m, ds, c.Step, c.Threads), m, ds, nil
		case "gpu":
			return core.NewGPUHogwild(m, ds, c.Step), m, ds, nil
		default:
			return nil, nil, nil, fmt.Errorf("regress: unknown device %q", c.Device)
		}
	case "ps-sync", "ps-async":
		if c.Device != "cluster" {
			return nil, nil, nil, fmt.Errorf("regress: strategy %q requires the cluster device, got %q", c.Strategy, c.Device)
		}
		mode := ps.ModeSync
		if c.Strategy == "ps-async" {
			mode = ps.ModeAsync
		}
		return ps.NewEngine(mode, m, ds, c.Step, c.Threads, c.Shards), m, ds, nil
	case "local-sync", "local-async":
		if c.Device != "cpu-par" {
			return nil, nil, nil, fmt.Errorf("regress: strategy %q requires the cpu-par device, got %q", c.Strategy, c.Device)
		}
		if c.H <= 0 {
			return nil, nil, nil, fmt.Errorf("regress: strategy %q requires H > 0", c.Strategy)
		}
		if c.Strategy == "local-sync" {
			return core.NewLocalSGD(m, ds, c.Step, c.Threads, c.H), m, ds, nil
		}
		return core.NewAsyncLocalSGD(m, ds, c.Step, c.Threads, c.H), m, ds, nil
	case "hetero-sync", "hetero-async":
		if c.Device != "cpu+gpu" {
			return nil, nil, nil, fmt.Errorf("regress: strategy %q requires the cpu+gpu device, got %q", c.Strategy, c.Device)
		}
		if c.Strategy == "hetero-sync" {
			return core.NewHetero(m, ds, c.Step, c.Threads), m, ds, nil
		}
		return core.NewHeteroAsync(m, ds, c.Step, c.Threads), m, ds, nil
	default:
		return nil, nil, nil, fmt.Errorf("regress: unknown strategy %q", c.Strategy)
	}
}

// DefaultMatrix is the paper's 8-way cube at gate scale: {sync, async} ×
// {multi-core CPU, GPU} × {dense, sparse}, all on LR (the task every
// configuration of the study shares). covtype is the dense representative,
// w8a the sparse one; scales are small enough that the whole matrix runs in
// seconds yet large enough that an update-rule perturbation moves the
// curves far outside the gate tolerances.
func DefaultMatrix() []Config {
	var out []Config
	for _, strategy := range []string{"sync", "async"} {
		for _, device := range []string{"cpu-par", "gpu"} {
			for _, dataset := range []string{"covtype", "w8a"} {
				c := Config{
					Strategy: strategy,
					Device:   device,
					Task:     "lr",
					Dataset:  dataset,
					N:        400,
					Threads:  56,
					Epochs:   12,
					Seeds:    5,
					BaseSeed: 1,
				}
				if device == "gpu" {
					c.Threads = 0
				}
				if strategy == "sync" {
					// Full-batch gradient descent: a larger step keeps the
					// 12-epoch curve informative.
					c.Step = 2.0
					c.Seeds = 1
				} else if dataset == "covtype" {
					// Incremental SGD on dense rows (every update touches
					// every component) needs a smaller step to stay in the
					// stable regime; an unstable run would record an
					// envelope too wide to gate anything.
					c.Step = 0.05
				} else {
					c.Step = 0.5
				}
				out = append(out, c)
			}
		}
	}
	return out
}

// PSMatrix is the parameter-server tier at gate scale: the same BSP/Hogwild
// contrast the in-process matrix gates, lifted across a transport — 4
// workers pulling shard parameters and pushing gradients against a 4-shard
// server. covtype keeps the cluster runs dense (every push touches a full
// shard block), which is where shard-level aggregation differences show
// first.
func PSMatrix() []Config {
	var out []Config
	for _, strategy := range []string{"ps-sync", "ps-async"} {
		c := Config{
			Strategy: strategy,
			Device:   "cluster",
			Task:     "lr",
			Dataset:  "covtype",
			N:        400,
			Threads:  4, // cluster workers
			Shards:   4,
			Epochs:   12,
			Seeds:    5,
			BaseSeed: 1,
		}
		if strategy == "ps-sync" {
			// Mini-batch rounds (workers x batch examples per barrier) sit
			// between full-batch GD and per-example SGD; the step follows.
			c.Step = 0.5
			c.Seeds = 1
		} else {
			c.Step = 0.3
		}
		out = append(out, c)
	}
	return out
}

// LocalMatrix is the Local-SGD family at gate scale: 8 replicas averaging
// every H=4 local steps, the communication-efficient middle ground between
// the per-epoch-barriered sync engines and free-running Hogwild. w8a keeps
// the replica steps sparse (the regime where private-copy averaging differs
// most visibly from shared-vector racing). local-sync is deterministic
// (private state between barriers) and gated on an exact golden; local-async
// replays per seed but reschedules across seeds, so it carries an envelope.
func LocalMatrix() []Config {
	var out []Config
	for _, strategy := range []string{"local-sync", "local-async"} {
		c := Config{
			Strategy: strategy,
			Device:   "cpu-par",
			Task:     "lr",
			Dataset:  "w8a",
			N:        400,
			Threads:  8, // replicas
			H:        4,
			Step:     0.5,
			Epochs:   12,
			Seeds:    5,
			BaseSeed: 1,
		}
		if strategy == "local-sync" {
			c.Seeds = 1
		}
		out = append(out, c)
	}
	return out
}

// HeteroMatrix is the heterogeneous CPU+GPU co-training family at gate
// scale: 8 CPU replicas co-training with the simulated K80, splitting each
// epoch's shuffled batches by the adaptive throughput ratio. w8a keeps the
// steps sparse, matching the Local-SGD tier whose merge discipline the sync
// engine shares. hetero-sync overlaps the backends but merges in a fixed
// fold order, so it is deterministic and gated on an exact golden;
// hetero-async blends apply-on-arrival on the virtual-time sequencer —
// replayable per seed, rescheduled across seeds — and carries an envelope.
func HeteroMatrix() []Config {
	var out []Config
	for _, strategy := range []string{"hetero-sync", "hetero-async"} {
		c := Config{
			Strategy: strategy,
			Device:   "cpu+gpu",
			Task:     "lr",
			Dataset:  "w8a",
			N:        400,
			Threads:  8, // CPU replicas
			Step:     0.5,
			Epochs:   12,
			Seeds:    5,
			BaseSeed: 1,
		}
		if strategy == "hetero-sync" {
			c.Seeds = 1
		}
		out = append(out, c)
	}
	return out
}

// FullMatrix is every gated configuration: the paper's in-process cube, the
// parameter-server tier, the Local-SGD family, and the heterogeneous
// CPU+GPU family.
func FullMatrix() []Config {
	out := append(DefaultMatrix(), PSMatrix()...)
	out = append(out, LocalMatrix()...)
	return append(out, HeteroMatrix()...)
}
