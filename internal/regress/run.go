package regress

import (
	"repro/internal/core"
	"repro/internal/model"
)

// RunOutcome is one seeded execution of a config: the per-epoch loss curve
// (index 0 is the initial loss before any update) and the mean modeled
// seconds per epoch.
type RunOutcome struct {
	Seed        int64     `json:"seed"`
	Losses      []float64 `json:"losses"`
	SecPerEpoch float64   `json:"sec_per_epoch"`
}

// RunSeed executes the config once under the given seed: the model is
// initialised from the seed and the engine's shuffle stream (when it has
// one) is reseeded with it, so deterministic paths replay exactly and
// stochastic paths draw a fresh, reproducible permutation stream.
func RunSeed(c Config, seed int64) (RunOutcome, error) {
	e, m, ds, err := c.Build()
	if err != nil {
		return RunOutcome{}, err
	}
	core.Seed(e, seed)
	w := m.InitParams(seed)
	out := RunOutcome{Seed: seed, Losses: make([]float64, 0, c.Epochs+1)}
	out.Losses = append(out.Losses, model.MeanLoss(m, w, ds))
	var elapsed float64
	for ep := 0; ep < c.Epochs; ep++ {
		elapsed += e.RunEpoch(w)
		out.Losses = append(out.Losses, model.MeanLoss(m, w, ds))
	}
	out.SecPerEpoch = elapsed / float64(c.Epochs)
	return out, nil
}

// RunSeeds executes the config under c.Seeds consecutive seeds starting at
// c.BaseSeed (deterministic configs run only the base seed).
func RunSeeds(c Config) ([]RunOutcome, error) {
	seeds := c.Seeds
	if c.Deterministic() || seeds < 1 {
		seeds = 1
	}
	out := make([]RunOutcome, 0, seeds)
	for k := 0; k < seeds; k++ {
		r, err := RunSeed(c, c.BaseSeed+int64(k))
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}
