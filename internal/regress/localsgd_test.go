package regress

import (
	"strings"
	"testing"

	"repro/internal/chaos"
)

// The Local-SGD tier must honour the gate disciplines: the synchronous
// engine replays exactly (golden), the timer-driven one replays per seed
// but reschedules across seeds (envelope).
func TestLocalMatrixDisciplines(t *testing.T) {
	for _, c := range LocalMatrix() {
		if (c.Strategy == "local-sync") != c.Deterministic() {
			t.Fatalf("%s: Deterministic() = %v", c.Strategy, c.Deterministic())
		}
	}
	c := LocalMatrix()[0] // local-sync: must replay exactly
	c.Epochs = 3
	a, err := RunSeed(c, 5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunSeed(c, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Losses {
		if a.Losses[i] != b.Losses[i] {
			t.Fatalf("local-sync replay differs at epoch %d: %v vs %v", i, a.Losses[i], b.Losses[i])
		}
	}
	if a.SecPerEpoch != b.SecPerEpoch {
		t.Fatalf("local-sync replay modeled time differs: %v vs %v", a.SecPerEpoch, b.SecPerEpoch)
	}
}

// Satellite chaos-absorption test, sync half: under the storm plan the
// synchronous engine's time-to-threshold degradation must fall strictly as
// H grows — more local steps per barrier means fewer straggler-stretched
// reductions on the critical path. Measured slowdowns at N=400/K=8 are
// roughly 9.0 (H=4), 7.5 (H=16), 4.5 (H=64).
func TestStormLocalSyncDegradationFallsWithH(t *testing.T) {
	plan, err := chaos.Lookup("storm")
	if err != nil {
		t.Fatal(err)
	}
	prev := -1.0
	for _, h := range []int{4, 16, 64} {
		c := LocalMatrix()[0]
		c.H = h
		rep, err := RunChaos(c, plan, ChaosOpts{Sequential: true})
		if err != nil {
			t.Fatal(err)
		}
		nom := nominalRun(rep)
		if !nom.Reached {
			t.Fatalf("local-sync H=%d under storm never reached threshold", h)
		}
		t.Logf("local-sync H=%d: slowdown %.3f", h, nom.Slowdown)
		if prev > 0 && nom.Slowdown >= prev {
			t.Errorf("local-sync H=%d slowdown %.3f >= H-previous %.3f; want strictly decreasing", h, nom.Slowdown, prev)
		}
		prev = nom.Slowdown
	}
}

// Satellite chaos-absorption test, async half: at equal worker count and
// intensity, local-async must absorb the storm at least as well as Hogwild —
// its straggler delays only that replica's contribution to the next timer
// firing, never a barrier. Measured: local-async ≈ 1.0 vs Hogwild(8) ≈ 1.2.
func TestStormLocalAsyncAbsorbsLikeHogwild(t *testing.T) {
	plan, err := chaos.Lookup("storm")
	if err != nil {
		t.Fatal(err)
	}
	la := LocalMatrix()[1]
	laRep, err := RunChaos(la, plan, ChaosOpts{Sequential: true})
	if err != nil {
		t.Fatal(err)
	}
	laNom := nominalRun(laRep)
	if !laNom.Reached {
		t.Fatal("local-async under storm never reached threshold")
	}
	// Hogwild at the same K=8, not the matrix's full-width config: equal
	// intensity means an equal share of workers straggled.
	hw := la
	hw.Strategy = "async"
	hw.H = 0
	hwRep, err := RunChaos(hw, plan, ChaosOpts{Sequential: true})
	if err != nil {
		t.Fatal(err)
	}
	hwNom := nominalRun(hwRep)
	if !hwNom.Reached {
		t.Fatal("hogwild(8) under storm never reached threshold")
	}
	t.Logf("local-async slowdown %.3f, hogwild(8) slowdown %.3f", laNom.Slowdown, hwNom.Slowdown)
	// Small slack so an epoch-granular tie doesn't flake the gate; the
	// measured gap is 1.0 vs 1.2.
	if laNom.Slowdown > hwNom.Slowdown*1.05 {
		t.Errorf("local-async degraded more than hogwild at equal intensity: %.3f > %.3f",
			laNom.Slowdown, hwNom.Slowdown)
	}
	if laNom.Slowdown >= 2 {
		t.Errorf("local-async slowdown %.3f; want < 2 (absorption, not amplification)", laNom.Slowdown)
	}
}

// The Degradation ladder must classify the new tier correctly: local-sync
// feeds MinSyncSlowdown, local-async feeds MaxAsyncSlowdown, and the paper's
// contrast (sync degrades far more) must hold within the Local-SGD family
// itself.
func TestStormDegradationClassifiesLocalTier(t *testing.T) {
	plan, err := chaos.Lookup("storm")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Degradation(LocalMatrix(), plan, ChaosOpts{Sequential: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Configs) != 2 {
		t.Fatalf("degradation over LocalMatrix has %d configs, want 2", len(rep.Configs))
	}
	if !rep.AsyncAllReached {
		t.Error("local-async did not reach threshold under the nominal storm")
	}
	if rep.MinSyncSlowdown <= rep.MaxAsyncSlowdown {
		t.Errorf("sync/async contrast inverted within the local tier: min sync %.3f <= max async %.3f",
			rep.MinSyncSlowdown, rep.MaxAsyncSlowdown)
	}
}

// Satellite filter test: the axis tokens "local-sync"/"local-async" must
// select exactly the new tier, and the validation errors must name the
// valid values so a typo is self-diagnosing.
func TestMatrixFilterLocalStrategies(t *testing.T) {
	got, err := (MatrixFilter{Strategies: "local-sync,local-async"}).Apply(FullMatrix())
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("local strategy filter kept %d configs, want 2", len(got))
	}
	for _, c := range got {
		if !strings.HasPrefix(c.Strategy, "local-") {
			t.Fatalf("filter leaked a non-local config: %+v", c)
		}
	}
	got, err = (MatrixFilter{Only: "local-async"}).Apply(FullMatrix())
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Strategy != "local-async" {
		t.Fatalf("-only local-async selected %+v", got)
	}

	for _, tc := range []struct {
		name   string
		filter MatrixFilter
		want   []string // substrings the error must contain
	}{
		{
			"strategy typo lists valid strategies",
			MatrixFilter{Strategies: "local-snyc"},
			[]string{`"local-snyc"`, "local-async", "local-sync", "ps-sync", "async, "},
		},
		{
			"device typo lists valid devices",
			MatrixFilter{Devices: "cpu-para"},
			[]string{`"cpu-para"`, "cpu-par", "cluster", "gpu"},
		},
		{
			"only miss lists fingerprint keys",
			MatrixFilter{Only: "local-h9"},
			[]string{`"local-h9"`, "local-sync-cpu-par-8-h4", "local-async-cpu-par-8-h4"},
		},
		{
			"impossible combination lists all axes",
			MatrixFilter{Strategies: "local-sync", Devices: "gpu"},
			[]string{"selected no configurations", "local-sync", "gpu", "w8a"},
		},
	} {
		t.Run(tc.name, func(t *testing.T) {
			_, err := tc.filter.Apply(FullMatrix())
			if err == nil {
				t.Fatal("invalid filter produced no error")
			}
			for _, want := range tc.want {
				if !strings.Contains(err.Error(), want) {
					t.Errorf("error %q does not mention %q", err, want)
				}
			}
		})
	}
}
