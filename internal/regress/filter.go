package regress

import (
	"fmt"
	"sort"
	"strings"
)

// MatrixFilter trims a config set along the strategy/device/dataset axes
// and applies scale overrides — the shared flag plumbing of cmd/sgdchaos
// and cmd/sgdps. Each axis filter is a comma-separated allow-list; empty
// keeps every value.
type MatrixFilter struct {
	Strategies string
	Devices    string
	Datasets   string
	// Only keeps configs whose fingerprint key contains the substring
	// (empty keeps all) — the quick way to pick one config off the matrix.
	Only string
	// N, Epochs and Threads override the matrix defaults when positive.
	// Threads only applies to configs that model a thread/worker axis.
	N, Epochs, Threads int
}

// Apply filters the configs. A filter token that matches nothing in the
// input set is an error, not a silent no-op: a typo like -strategies=snyc
// must fail the invocation rather than quietly gate an empty matrix.
// Selecting zero configs with individually-valid tokens (an impossible
// combination) is an error for the same reason.
func (f MatrixFilter) Apply(configs []Config) ([]Config, error) {
	axes := []struct {
		name, filter string
		get          func(Config) string
	}{
		{"strategy", f.Strategies, func(c Config) string { return c.Strategy }},
		{"device", f.Devices, func(c Config) string { return c.Device }},
		{"dataset", f.Datasets, func(c Config) string { return c.Dataset }},
	}
	allow := make([]map[string]bool, len(axes))
	for i, ax := range axes {
		if ax.filter == "" {
			continue
		}
		allow[i] = map[string]bool{}
		for _, tok := range strings.Split(ax.filter, ",") {
			tok = strings.TrimSpace(tok)
			if tok == "" {
				continue
			}
			found := false
			for _, c := range configs {
				if ax.get(c) == tok {
					found = true
					break
				}
			}
			if !found {
				return nil, fmt.Errorf("regress: %s filter token %q matches no configuration in the matrix (valid: %s)",
					ax.name, tok, distinctValues(configs, ax.get))
			}
			allow[i][tok] = true
		}
	}
	var out []Config
	for _, c := range configs {
		keep := f.Only == "" || strings.Contains(c.Fingerprint().Key(), f.Only)
		for i, ax := range axes {
			if allow[i] != nil && !allow[i][ax.get(c)] {
				keep = false
			}
		}
		if !keep {
			continue
		}
		if f.N > 0 {
			c.N = f.N
		}
		if f.Epochs > 0 {
			c.Epochs = f.Epochs
		}
		if f.Threads > 0 && c.Threads > 0 {
			c.Threads = f.Threads
		}
		out = append(out, c)
	}
	if len(out) == 0 {
		if f.Only != "" {
			return nil, fmt.Errorf("regress: -only %q matches no configuration in the matrix (keys: %s)",
				f.Only, distinctValues(configs, func(c Config) string { return c.Fingerprint().Key() }))
		}
		return nil, fmt.Errorf("regress: the filters selected no configurations (strategies: %s; devices: %s; datasets: %s)",
			distinctValues(configs, func(c Config) string { return c.Strategy }),
			distinctValues(configs, func(c Config) string { return c.Device }),
			distinctValues(configs, func(c Config) string { return c.Dataset }))
	}
	return out, nil
}

// distinctValues renders the sorted distinct values of one config axis —
// the "did you mean" half of the filter errors, so a typo like
// -strategies=snyc or -only=local-snc shows what the matrix actually
// contains instead of leaving the caller to read the source.
func distinctValues(configs []Config, get func(Config) string) string {
	seen := map[string]bool{}
	var vals []string
	for _, c := range configs {
		if v := get(c); !seen[v] {
			seen[v] = true
			vals = append(vals, v)
		}
	}
	sort.Strings(vals)
	return strings.Join(vals, ", ")
}
