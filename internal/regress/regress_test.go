package regress

import (
	"os"
	"testing"
)

const goldenDir = "testdata/golden"

// All 14 gated configurations — the paper's 8-way cube, the two
// parameter-server tiers, the two Local-SGD configs, and the two
// heterogeneous CPU+GPU configs — must have a committed golden of the right
// discipline: exact curves for the deterministic synchronous engines,
// quantile envelopes for the asynchronous ones.
func TestMatrixFullyCovered(t *testing.T) {
	configs := FullMatrix()
	if len(configs) != 14 {
		t.Fatalf("full matrix has %d configs, want the paper's 8 plus 2 ps tiers plus 2 local-sgd plus 2 hetero", len(configs))
	}
	for _, c := range configs {
		key := c.Fingerprint().Key()
		g, err := Load(goldenDir, key)
		if err != nil {
			t.Errorf("%s: no committed golden: %v", key, err)
			continue
		}
		want := KindEnvelope
		if c.Deterministic() {
			want = KindGolden
		}
		if g.Kind != want {
			t.Errorf("%s: golden kind %q, want %q", key, g.Kind, want)
		}
		if g.Kind == KindEnvelope && (len(g.P10) != c.Epochs+1 || len(g.P90) != c.Epochs+1) {
			t.Errorf("%s: envelope length %d/%d, want %d", key, len(g.P10), len(g.P90), c.Epochs+1)
		}
		if g.Kind == KindGolden && len(g.Losses) != c.Epochs+1 {
			t.Errorf("%s: golden curve length %d, want %d", key, len(g.Losses), c.Epochs+1)
		}
	}
}

// The gate must pass on an untouched tree: every engine still reproduces
// its committed golden or envelope.
func TestGatePassesOnUntouchedTree(t *testing.T) {
	rep := Gate(goldenDir, FullMatrix())
	for _, r := range rep.Results {
		if r.Status != StatusPass {
			t.Errorf("%s: %s (%s)", r.Key, r.Status, r.Detail)
		}
	}
	if !rep.Pass {
		t.Fatal("gate failed on an untouched tree")
	}
}

// Deliberately perturbing an engine's update rule (here: a mis-scaled step,
// the canonical silent-regression shape) must fail the gate — for a
// deterministic golden and for an asynchronous envelope alike.
func TestGateFailsOnPerturbedUpdateRule(t *testing.T) {
	var det, env *Config
	for i, c := range DefaultMatrix() {
		if c.Deterministic() && det == nil {
			det = &DefaultMatrix()[i]
		}
		if !c.Deterministic() && env == nil {
			env = &DefaultMatrix()[i]
		}
	}
	for _, tc := range []struct {
		name   string
		cfg    Config
		factor float64
	}{
		{"deterministic", *det, 1.0001}, // even a 0.01% step change must trip the tight gate
		{"envelope", *env, 4.0},         // an async perturbation must escape the quantile band
	} {
		t.Run(tc.name, func(t *testing.T) {
			g, err := Load(goldenDir, tc.cfg.Fingerprint().Key())
			if err != nil {
				t.Fatal(err)
			}
			perturbed := tc.cfg
			perturbed.Step *= tc.factor
			res := Compare(perturbed, g)
			if res.Status != StatusFail {
				t.Fatalf("perturbed %s config passed the gate: %+v", tc.name, res)
			}
		})
	}
}

// A missing golden must fail the aggregate gate, not silently shrink
// coverage.
func TestGateFailsOnMissingGolden(t *testing.T) {
	c := DefaultMatrix()[0]
	c.N = 128 // a scale with no committed golden
	rep := Gate(goldenDir, []Config{c})
	if rep.Pass || rep.Results[0].Status != StatusMissing {
		t.Fatalf("missing golden: %+v", rep.Results[0])
	}
}

func TestGoldenRoundTrip(t *testing.T) {
	dir := t.TempDir()
	g := Golden{Key: "k", Kind: KindGolden, Losses: []float64{1, 0.5}, RelTol: 1e-9}
	if err := Save(dir, g); err != nil {
		t.Fatal(err)
	}
	got, err := Load(dir, "k")
	if err != nil {
		t.Fatal(err)
	}
	if got.Kind != KindGolden || len(got.Losses) != 2 || got.RelTol != 1e-9 {
		t.Fatalf("round trip mangled golden: %+v", got)
	}
	if _, err := Load(dir, "absent"); !os.IsNotExist(err) {
		t.Fatalf("loading absent golden: err = %v, want IsNotExist", err)
	}
}

// A filter token that matches nothing must be an error — a typo like
// "snyc" must not silently gate an empty (or wrongly shrunken) matrix.
func TestMatrixFilterRejectsUnmatchedTokens(t *testing.T) {
	m := FullMatrix()
	if _, err := (MatrixFilter{Strategies: "sync,snyc"}).Apply(m); err == nil {
		t.Fatal("strategy token \"snyc\" matched no config but produced no error")
	}
	if _, err := (MatrixFilter{Only: "no-such-key"}).Apply(m); err == nil {
		t.Fatal("-only matching no fingerprint key produced no error")
	}
	if _, err := (MatrixFilter{Strategies: "ps-sync", Devices: "gpu"}).Apply(m); err == nil {
		t.Fatal("impossible strategy x device combination produced no error")
	}
}

func TestMatrixFilterSelectsAndOverrides(t *testing.T) {
	got, err := (MatrixFilter{Strategies: "ps-sync,ps-async", N: 100, Epochs: 3, Threads: 2}).Apply(FullMatrix())
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("ps filter kept %d configs, want 2", len(got))
	}
	for _, c := range got {
		if c.Device != "cluster" || c.N != 100 || c.Epochs != 3 || c.Threads != 2 {
			t.Fatalf("override not applied: %+v", c)
		}
	}
	got, err = (MatrixFilter{Only: "ps-sync-cluster"}).Apply(FullMatrix())
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Strategy != "ps-sync" {
		t.Fatalf("-only substring selected %+v, want the single ps-sync config", got)
	}
}

// The ps tier engines must honour the regress seeding and determinism
// contracts the gate disciplines assume.
func TestPSMatrixDisciplines(t *testing.T) {
	for _, c := range PSMatrix() {
		if (c.Strategy == "ps-sync") != c.Deterministic() {
			t.Fatalf("%s: Deterministic() = %v", c.Strategy, c.Deterministic())
		}
	}
	c := PSMatrix()[0] // ps-sync: must replay exactly
	c.Epochs = 3
	a, err := RunSeed(c, 5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunSeed(c, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Losses {
		if a.Losses[i] != b.Losses[i] {
			t.Fatalf("ps-sync replay differs at epoch %d: %v vs %v", i, a.Losses[i], b.Losses[i])
		}
	}
}

func TestRunSeedDeterministicReplay(t *testing.T) {
	c := DefaultMatrix()[0]
	a, err := RunSeed(c, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunSeed(c, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Losses {
		if a.Losses[i] != b.Losses[i] {
			t.Fatalf("seeded replay differs at epoch %d: %v vs %v", i, a.Losses[i], b.Losses[i])
		}
	}
	if a.SecPerEpoch != b.SecPerEpoch {
		t.Fatalf("seeded replay modeled time differs: %v vs %v", a.SecPerEpoch, b.SecPerEpoch)
	}
}
