package regress

import (
	"fmt"

	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/model"
)

// This file is the degradation half of the harness: where the golden gates
// check that *healthy* runs converge, the chaos runner re-executes the same
// engine matrix under a named fault plan (internal/chaos) and reports how
// each configuration's time-to-threshold degrades. The report is the
// paper's sync-fragile/async-robust contrast as data: a straggler that
// multiplies every synchronous epoch barely stretches the dynamically
// claimed asynchronous ones.

// ChaosOpts parameterises a degradation run.
type ChaosOpts struct {
	// Seed drives the model init, the shuffle streams, the injector
	// streams and (in sequential mode) the interleaving (0 = the config's
	// BaseSeed).
	Seed int64 `json:"seed"`
	// Sequential runs the faulted epochs on the virtual-time scheduler,
	// making them exactly replayable (and host-independent).
	Sequential bool `json:"sequential"`
	// Deadline, when positive, arms the synchronous engines' barrier
	// deadline (see chaos.Controller.Deadline); 0 is classic BSP.
	Deadline float64 `json:"deadline,omitempty"`
	// SSPBound, when positive, bounds the Hogwild workers' progress skew
	// (the stale-synchronous-parallel graceful-degradation variant).
	SSPBound int `json:"ssp_bound,omitempty"`
	// Intensities scales the plan per faulted run (default {1}); 0 is the
	// healthy plan, 2 twice the nominal fault pressure.
	Intensities []float64 `json:"intensities,omitempty"`
	// Tol is the gap tolerance defining each config's loss threshold:
	// a run "reaches threshold" when it closes (1-Tol) of the loss gap
	// the healthy run closed (default 0.1).
	Tol float64 `json:"tol,omitempty"`
}

// ChaosRun is one faulted execution of one config. Sentinels keep the
// report JSON-clean: EpochToThreshold is -1 and SecsToThreshold/Slowdown
// are -1 when the threshold was never reached.
type ChaosRun struct {
	Intensity float64    `json:"intensity"`
	Plan      chaos.Plan `json:"plan"`
	FinalLoss float64    `json:"final_loss"`
	// SecPerEpoch is the mean modeled seconds per faulted epoch.
	SecPerEpoch float64 `json:"sec_per_epoch"`
	// Reached reports whether the loss threshold was met within the
	// config's epoch budget.
	Reached          bool    `json:"reached"`
	EpochToThreshold int     `json:"epoch_to_threshold"`
	SecsToThreshold  float64 `json:"secs_to_threshold"`
	// Slowdown is the time-to-threshold ratio against the healthy run —
	// the degradation number the report exists for.
	Slowdown float64 `json:"slowdown"`
}

// ChaosConfigReport is one config's healthy baseline plus its faulted runs.
type ChaosConfigReport struct {
	Config   string `json:"config"`
	Strategy string `json:"strategy"`
	Device   string `json:"device"`
	Dataset  string `json:"dataset"`
	// InitLoss/HealthyFinalLoss bracket the gap the threshold is cut from.
	InitLoss         float64 `json:"init_loss"`
	HealthyFinalLoss float64 `json:"healthy_final_loss"`
	Threshold        float64 `json:"threshold"`
	// HealthySecs is the healthy run's modeled time to its own threshold.
	HealthyEpochs int        `json:"healthy_epochs"`
	HealthySecs   float64    `json:"healthy_secs"`
	Faulted       []ChaosRun `json:"faulted"`
}

// DegradationReport is the full matrix × plan outcome cmd/sgdchaos emits.
type DegradationReport struct {
	Plan    chaos.Plan          `json:"plan"`
	Opts    ChaosOpts           `json:"opts"`
	Configs []ChaosConfigReport `json:"configs"`
	// MinSyncSlowdown is the mildest time-to-threshold degradation among
	// the synchronous configs at nominal intensity (-1 when no sync config
	// reached threshold at all — infinite degradation), MaxAsyncSlowdown
	// the worst among the asynchronous ones. MinSyncSlowdown >>
	// MaxAsyncSlowdown is the paper's contrast.
	MinSyncSlowdown  float64 `json:"min_sync_slowdown"`
	MaxAsyncSlowdown float64 `json:"max_async_slowdown"`
	// AsyncAllReached reports whether every async config still met its
	// threshold under the nominal plan.
	AsyncAllReached bool `json:"async_all_reached"`
}

// runUnder executes one seeded run of the config, optionally under a chaos
// controller, returning the loss curve (index 0 = initial loss) and the
// cumulative modeled seconds after each epoch.
func runUnder(c Config, ctrl *chaos.Controller, seed int64) (losses, cum []float64, err error) {
	e, m, ds, err := c.Build()
	if err != nil {
		return nil, nil, err
	}
	core.Seed(e, seed)
	if ctrl != nil {
		if !core.InjectChaos(e, ctrl) {
			return nil, nil, fmt.Errorf("regress: engine %s does not accept a chaos controller", e.Name())
		}
	}
	w := m.InitParams(seed)
	losses = append(losses, model.MeanLoss(m, w, ds))
	var elapsed float64
	for ep := 0; ep < c.Epochs; ep++ {
		elapsed += e.RunEpoch(w)
		cum = append(cum, elapsed)
		losses = append(losses, model.MeanLoss(m, w, ds))
	}
	return losses, cum, nil
}

// timeTo finds the first epoch whose loss is at or below thr; (-1, -1) when
// never reached.
func timeTo(thr float64, losses, cum []float64) (epoch int, secs float64) {
	for ep := 1; ep < len(losses); ep++ {
		if losses[ep] <= thr {
			return ep, cum[ep-1]
		}
	}
	return -1, -1
}

// RunChaos runs one config's healthy baseline and its faulted repetitions
// under the plan at every requested intensity.
func RunChaos(c Config, plan chaos.Plan, opts ChaosOpts) (ChaosConfigReport, error) {
	tol := opts.Tol
	if tol <= 0 {
		tol = 0.1
	}
	seed := opts.Seed
	if seed == 0 {
		seed = c.BaseSeed
	}
	intensities := opts.Intensities
	if len(intensities) == 0 {
		intensities = []float64{1}
	}
	healthyLoss, healthyCum, err := runUnder(c, nil, seed)
	if err != nil {
		return ChaosConfigReport{}, err
	}
	init := healthyLoss[0]
	final := healthyLoss[len(healthyLoss)-1]
	// The threshold is cut from the healthy run itself: close (1-tol) of
	// the gap it closed. The healthy run reaches it by its last epoch by
	// construction, so every degradation ratio is well-defined.
	thr := core.GapThreshold(init, final, tol)
	hep, hsec := timeTo(thr, healthyLoss, healthyCum)
	rep := ChaosConfigReport{
		Config:           c.Fingerprint().Key(),
		Strategy:         c.Strategy,
		Device:           c.Device,
		Dataset:          c.Dataset,
		InitLoss:         init,
		HealthyFinalLoss: final,
		Threshold:        thr,
		HealthyEpochs:    hep,
		HealthySecs:      hsec,
	}
	if hep < 0 {
		return rep, fmt.Errorf("regress: healthy run of %s did not reach its own threshold", rep.Config)
	}
	for _, intensity := range intensities {
		ctrl := chaos.New(plan.Scale(intensity), seed)
		ctrl.Sequential = opts.Sequential
		ctrl.Deadline = opts.Deadline
		ctrl.SSPBound = opts.SSPBound
		ctrl.Workers = c.Threads
		losses, cum, err := runUnder(c, ctrl, seed)
		if err != nil {
			return rep, err
		}
		ep, sec := timeTo(thr, losses, cum)
		run := ChaosRun{
			Intensity:        intensity,
			Plan:             ctrl.Plan,
			FinalLoss:        losses[len(losses)-1],
			SecPerEpoch:      cum[len(cum)-1] / float64(c.Epochs),
			Reached:          ep >= 0,
			EpochToThreshold: ep,
			SecsToThreshold:  sec,
			Slowdown:         -1,
		}
		if ep >= 0 && hsec > 0 {
			run.Slowdown = sec / hsec
		}
		rep.Faulted = append(rep.Faulted, run)
	}
	return rep, nil
}

// nominalRun picks the config's faulted run closest to intensity 1.
func nominalRun(rep ChaosConfigReport) *ChaosRun {
	var best *ChaosRun
	for i := range rep.Faulted {
		r := &rep.Faulted[i]
		if best == nil || abs(r.Intensity-1) < abs(best.Intensity-1) {
			best = r
		}
	}
	return best
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// isSyncStrategy classifies a strategy for the contrast summary. Explicit
// equality, not a suffix test: strings.HasSuffix("async", "sync") is true.
func isSyncStrategy(s string) bool {
	return s == "sync" || s == "ps-sync" || s == "local-sync" || s == "hetero-sync"
}

// Degradation runs the whole config set under the plan and summarises the
// sync/async contrast at nominal intensity.
func Degradation(configs []Config, plan chaos.Plan, opts ChaosOpts) (DegradationReport, error) {
	rep := DegradationReport{Plan: plan, Opts: opts, MinSyncSlowdown: -1, AsyncAllReached: true}
	for _, c := range configs {
		cr, err := RunChaos(c, plan, opts)
		if err != nil {
			return rep, err
		}
		rep.Configs = append(rep.Configs, cr)
		nom := nominalRun(cr)
		if nom == nil {
			continue
		}
		if isSyncStrategy(c.Strategy) {
			// An unreached sync run is infinite degradation: it can never
			// be the mildest, so only reached runs enter the min.
			if nom.Reached && (rep.MinSyncSlowdown < 0 || nom.Slowdown < rep.MinSyncSlowdown) {
				rep.MinSyncSlowdown = nom.Slowdown
			}
		} else {
			if !nom.Reached {
				rep.AsyncAllReached = false
			} else if nom.Slowdown > rep.MaxAsyncSlowdown {
				rep.MaxAsyncSlowdown = nom.Slowdown
			}
		}
	}
	return rep, nil
}
