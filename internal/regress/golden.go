package regress

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/metrics"
)

// Kind distinguishes the two golden disciplines.
type Kind string

const (
	// KindGolden is an exact (tight-tolerance) recorded curve for a
	// deterministic configuration.
	KindGolden Kind = "golden"
	// KindEnvelope is a quantile band over seeded repetitions for an
	// asynchronous configuration.
	KindEnvelope Kind = "envelope"
)

// Default gate tolerances. Deterministic replays are bitwise on a fixed
// host; the tight relative tolerance only absorbs libm differences across
// Go releases and architectures, while any real change to an update rule
// moves losses by many orders of magnitude more within an epoch or two.
const (
	DefaultRelTol    = 1e-9
	DefaultAbsTol    = 1e-12
	DefaultSecRelTol = 1e-6
	// Envelope gates: the recorded p10–p90 band is widened by
	// DefaultBandSlack of its own width plus DefaultRelSlack of the median
	// on each side, and the final median loss must be within
	// DefaultFinalRelTol of the recorded one.
	DefaultBandSlack   = 0.5
	DefaultRelSlack    = 0.02
	DefaultFinalRelTol = 0.05
)

// Golden is one committed reference, stored as
// testdata/golden/<fingerprint-key>.json.
type Golden struct {
	Key    string `json:"key"`
	Kind   Kind   `json:"kind"`
	Config Config `json:"config"`

	// Deterministic golden: the recorded curve and modeled epoch time with
	// their gate tolerances.
	Losses      []float64 `json:"losses,omitempty"`
	SecPerEpoch float64   `json:"sec_per_epoch,omitempty"`
	RelTol      float64   `json:"rel_tol,omitempty"`
	AbsTol      float64   `json:"abs_tol,omitempty"`
	SecRelTol   float64   `json:"sec_rel_tol,omitempty"`

	// Envelope golden: per-epoch quantile curves over Config.Seeds seeded
	// runs, with the band-expansion slacks and the final-loss tolerance.
	P10         []float64 `json:"p10,omitempty"`
	P50         []float64 `json:"p50,omitempty"`
	P90         []float64 `json:"p90,omitempty"`
	BandSlack   float64   `json:"band_slack,omitempty"`
	RelSlack    float64   `json:"rel_slack,omitempty"`
	FinalMedian float64   `json:"final_median,omitempty"`
	FinalRelTol float64   `json:"final_rel_tol,omitempty"`
}

// Record executes the config and produces its golden: a single recorded
// curve for deterministic configs, a quantile envelope over seeded
// repetitions otherwise.
func Record(c Config) (Golden, error) {
	runs, err := RunSeeds(c)
	if err != nil {
		return Golden{}, err
	}
	g := Golden{Key: c.Fingerprint().Key(), Config: c}
	if c.Deterministic() {
		g.Kind = KindGolden
		g.Losses = runs[0].Losses
		g.SecPerEpoch = runs[0].SecPerEpoch
		g.RelTol, g.AbsTol, g.SecRelTol = DefaultRelTol, DefaultAbsTol, DefaultSecRelTol
		return g, nil
	}
	g.Kind = KindEnvelope
	curves := make([][]float64, len(runs))
	for i, r := range runs {
		curves[i] = r.Losses
	}
	g.P10, g.P50, g.P90 = metrics.Envelope(curves, 0.10, 0.90)
	g.FinalMedian = g.P50[len(g.P50)-1]
	g.BandSlack, g.RelSlack, g.FinalRelTol = DefaultBandSlack, DefaultRelSlack, DefaultFinalRelTol
	return g, nil
}

// Path returns the golden file path for key under dir.
func Path(dir, key string) string { return filepath.Join(dir, key+".json") }

// Save writes the golden under dir, creating the directory if needed.
func Save(dir string, g Golden) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	buf, err := json.MarshalIndent(g, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	return os.WriteFile(Path(dir, g.Key), buf, 0o644)
}

// Load reads the golden for key from dir.
func Load(dir, key string) (Golden, error) {
	buf, err := os.ReadFile(Path(dir, key))
	if err != nil {
		return Golden{}, err
	}
	var g Golden
	if err := json.Unmarshal(buf, &g); err != nil {
		return Golden{}, fmt.Errorf("regress: %s: %w", Path(dir, key), err)
	}
	if g.Key != key {
		return Golden{}, fmt.Errorf("regress: %s: key %q does not match filename", Path(dir, key), g.Key)
	}
	return g, nil
}
