package regress

import (
	"bytes"
	"fmt"
	"testing"
)

// benchJSON renders a minimal epochbench-shaped report.
func benchJSON(short bool, poolAllocs int, speedup, skew float64, poolNs int) []byte {
	return fmt.Appendf(nil, `{
		"goos": "linux", "goarch": "amd64", "short": %v,
		"small_kernel_epoch": {"pool_ns_op": %d, "spawn_ns_op": 400000,
			"speedup": %g, "pool_allocs_op": %d, "spawn_allocs_op": 2560},
		"spmv": {"balanced_ns_op": 1300000, "even_ns_op": 1260000, "skew_balanced": %g, "skew_even": 1.07},
		"spmvt": {"balanced_ns_op": 1280000, "even_ns_op": 1160000, "skew_balanced": %g, "skew_even": 1.07},
		"quant_score": {"float_ns_op": 1200000, "quant_ns_op": 790000, "speedup": 1.52,
			"max_abs_delta": 0.03, "bound_violations": 0},
		"striped_hogwild": {"unstriped_ns_op": 500000, "striped_ns_op": 610000, "ns_op_ratio": 1.22,
			"coalesced_frac": 0.38, "cas_retry_ratio": 0},
		"steady_state_allocs_per_op": {"lr_batchgrad": 0, "svm_batchgrad": 0, "spmvt": 0,
			"quant_spmv": 0, "striped_epoch": 0},
		"builder_build_ns_op": 9000000,
		"localsgd_hsweep": {"replicas": 8, "wall_monotonic_dec": 1},
		"hetero_split": {"cpu_workers": 8, "shift_within_5": 1, "adaptive_beats_static": 1}
	}`, short, poolNs, speedup, poolAllocs, skew, skew)
}

func healthy(short bool) []byte { return benchJSON(short, 0, 6.2, 1.01, 67000) }

func TestBenchComparePasses(t *testing.T) {
	rep, err := CompareBench(healthy(false), healthy(false), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Pass || !rep.Comparable {
		t.Fatalf("healthy report failed: %+v", rep)
	}
}

func TestBenchCompareAllocRegressionFails(t *testing.T) {
	// One allocation per op where PR 2 pinned zero must fail exactly.
	rep, err := CompareBench(healthy(false), benchJSON(false, 1, 6.2, 1.01, 67000), nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Pass {
		t.Fatalf("alloc regression passed: %+v", rep)
	}
	found := false
	for _, c := range rep.Checks {
		if c.Metric == "small_kernel_epoch.pool_allocs_op" && c.Status == StatusFail {
			found = true
		}
	}
	if !found {
		t.Fatalf("no failing alloc check in %+v", rep.Checks)
	}
}

func TestBenchCompareTimeRegression(t *testing.T) {
	// 1.9x slower pool dispatch is inside the 2x noise threshold...
	rep, err := CompareBench(healthy(false), benchJSON(false, 0, 6.2, 1.01, 127000), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Pass {
		t.Fatalf("1.9x should pass the noise-aware threshold: %+v", rep)
	}
	// ...but 3x is a real regression.
	rep, err = CompareBench(healthy(false), benchJSON(false, 0, 6.2, 1.01, 201000), nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Pass {
		t.Fatalf("3x pool_ns_op regression passed: %+v", rep)
	}
}

func TestBenchCompareIncomparableSkipsRatios(t *testing.T) {
	// A -short CI run against the committed full-size baseline measures
	// different problem sizes: wall-clock ratios are skipped, while exact
	// and dimensionless gates still apply.
	rep, err := CompareBench(healthy(false), benchJSON(true, 0, 6.2, 1.01, 9000000), nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Comparable {
		t.Fatal("short vs full should be incomparable")
	}
	if !rep.Pass {
		t.Fatalf("skipped ratios must not fail the gate: %+v", rep)
	}
	for _, c := range rep.Checks {
		if c.Kind == RuleRatio && c.Status != benchSkipped {
			t.Fatalf("ratio check not skipped: %+v", c)
		}
	}
	// Dimensionless invariants still gate incomparable runs.
	rep, err = CompareBench(healthy(false), benchJSON(true, 0, 1.1, 1.01, 9000000), nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Pass {
		t.Fatalf("speedup collapse must fail even on incomparable runs: %+v", rep)
	}
}

func TestBenchCompareShortRunSkipsScaleDependentFloors(t *testing.T) {
	// The int8 speedup floor is a cache-residency effect that a -short
	// run's small dimension cannot provoke: on a short fresh report the
	// quant_score.speedup floor is skipped, not failed — while the same
	// collapsed value on a full-size run is a hard failure.
	collapsed := func(short bool) []byte {
		return bytes.Replace(benchJSON(short, 0, 6.2, 1.01, 67000),
			[]byte(`"speedup": 1.52`), []byte(`"speedup": 1.12`), 1)
	}
	rep, err := CompareBench(healthy(false), collapsed(true), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Pass {
		t.Fatalf("short run failed a scale-dependent floor: %+v", rep)
	}
	for _, c := range rep.Checks {
		if c.Metric == "quant_score.speedup" && c.Status != benchSkipped {
			t.Fatalf("quant speedup floor not skipped on short run: %+v", c)
		}
	}
	rep, err = CompareBench(healthy(false), collapsed(false), nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Pass {
		t.Fatalf("full-size quant speedup collapse passed: %+v", rep)
	}
}

func TestBenchCompareMissingMetricFails(t *testing.T) {
	rep, err := CompareBench(healthy(false), []byte(`{"goos":"linux","goarch":"amd64","short":false}`), nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Pass {
		t.Fatalf("schema drift passed: %+v", rep)
	}
}

func TestBenchCompareRejectsMalformedJSON(t *testing.T) {
	if _, err := CompareBench([]byte("{"), healthy(false), nil); err == nil {
		t.Fatal("malformed baseline accepted")
	}
	if _, err := CompareBench(healthy(false), []byte("nope"), nil); err == nil {
		t.Fatal("malformed fresh report accepted")
	}
}

func TestLookupNumber(t *testing.T) {
	m := map[string]any{"a": map[string]any{"b": 2.5}, "s": "x"}
	if v, ok := lookupNumber(m, "a.b"); !ok || v != 2.5 {
		t.Fatalf("a.b = %v, %v", v, ok)
	}
	for _, path := range []string{"a.c", "a.b.c", "s.x", "z"} {
		if _, ok := lookupNumber(m, path); ok {
			t.Fatalf("path %q unexpectedly resolved", path)
		}
	}
}
