package regress

import (
	"strings"
	"testing"

	"repro/internal/chaos"
)

// The heterogeneous tier must honour the gate disciplines: the barriered
// engine replays exactly despite overlapping its two backends (golden), the
// apply-on-arrival one replays per seed but reschedules across seeds
// (envelope).
func TestHeteroMatrixDisciplines(t *testing.T) {
	for _, c := range HeteroMatrix() {
		if (c.Strategy == "hetero-sync") != c.Deterministic() {
			t.Fatalf("%s: Deterministic() = %v", c.Strategy, c.Deterministic())
		}
	}
	c := HeteroMatrix()[0] // hetero-sync: must replay exactly
	c.Epochs = 3
	a, err := RunSeed(c, 5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunSeed(c, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Losses {
		if a.Losses[i] != b.Losses[i] {
			t.Fatalf("hetero-sync replay differs at epoch %d: %v vs %v", i, a.Losses[i], b.Losses[i])
		}
	}
	if a.SecPerEpoch != b.SecPerEpoch {
		t.Fatalf("hetero-sync replay modeled time differs: %v vs %v", a.SecPerEpoch, b.SecPerEpoch)
	}
}

// Satellite chaos test, async half: under the storm plan the apply-on-arrival
// engine must still reach its threshold with bounded degradation — the GPU's
// stretched batches simply lose claims to the CPU stream. Measured slowdown
// at gate scale is ~1.9.
func TestStormHeteroAsyncAbsorbs(t *testing.T) {
	plan, err := chaos.Lookup("storm")
	if err != nil {
		t.Fatal(err)
	}
	c := HeteroMatrix()[1]
	rep, err := RunChaos(c, plan, ChaosOpts{Sequential: true})
	if err != nil {
		t.Fatal(err)
	}
	nom := nominalRun(rep)
	if !nom.Reached {
		t.Fatal("hetero-async under storm never reached threshold")
	}
	t.Logf("hetero-async slowdown %.3f", nom.Slowdown)
	if nom.Slowdown >= 2.5 {
		t.Errorf("hetero-async slowdown %.3f; want < 2.5 (absorption, not amplification)", nom.Slowdown)
	}
}

// The Degradation ladder must classify the new tier correctly and the
// paper's contrast must hold within the family: the async engine absorbs the
// storm, while the barriered engine degrades more — at gate scale its
// straggler-forced shift to near-all-CPU also costs statistical efficiency
// (one-shot averaging of 8 replica trajectories), so it either misses the
// threshold inside the epoch budget (infinite degradation, Slowdown
// sentinel -1) or reaches it strictly slower than the async engine.
func TestStormDegradationClassifiesHeteroTier(t *testing.T) {
	plan, err := chaos.Lookup("storm")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Degradation(HeteroMatrix(), plan, ChaosOpts{Sequential: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Configs) != 2 {
		t.Fatalf("degradation over HeteroMatrix has %d configs, want 2", len(rep.Configs))
	}
	if !rep.AsyncAllReached {
		t.Error("hetero-async did not reach threshold under the nominal storm")
	}
	var syncRun *ChaosRun
	for i := range rep.Configs {
		if isSyncStrategy(rep.Configs[i].Strategy) {
			syncRun = nominalRun(rep.Configs[i])
		}
	}
	if syncRun == nil {
		t.Fatal("no sync config in the hetero degradation report")
	}
	if syncRun.Reached && syncRun.Slowdown <= rep.MaxAsyncSlowdown {
		t.Errorf("sync/async contrast inverted within the hetero tier: sync %.3f <= max async %.3f",
			syncRun.Slowdown, rep.MaxAsyncSlowdown)
	}
}

// Satellite filter test: the axis tokens "hetero-sync"/"hetero-async" and
// the "cpu+gpu" device must select exactly the new tier, and a typo must
// list the now-14-config axis values.
func TestMatrixFilterHeteroStrategies(t *testing.T) {
	got, err := (MatrixFilter{Strategies: "hetero-sync,hetero-async"}).Apply(FullMatrix())
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("hetero strategy filter kept %d configs, want 2", len(got))
	}
	for _, c := range got {
		if !strings.HasPrefix(c.Strategy, "hetero-") {
			t.Fatalf("filter leaked a non-hetero config: %+v", c)
		}
	}
	got, err = (MatrixFilter{Devices: "cpu+gpu"}).Apply(FullMatrix())
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("cpu+gpu device filter kept %d configs, want 2", len(got))
	}
	got, err = (MatrixFilter{Only: "hetero-async"}).Apply(FullMatrix())
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Strategy != "hetero-async" {
		t.Fatalf("-only hetero-async selected %+v", got)
	}

	_, err = (MatrixFilter{Strategies: "hetero-snyc"}).Apply(FullMatrix())
	if err == nil {
		t.Fatal("strategy typo produced no error")
	}
	for _, want := range []string{`"hetero-snyc"`, "hetero-async", "hetero-sync", "local-sync"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not mention %q", err, want)
		}
	}
	_, err = (MatrixFilter{Devices: "cpu-gpu"}).Apply(FullMatrix())
	if err == nil {
		t.Fatal("device typo produced no error")
	}
	if !strings.Contains(err.Error(), "cpu+gpu") {
		t.Errorf("device error %q does not list cpu+gpu", err)
	}
}
