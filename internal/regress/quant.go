package regress

import (
	"fmt"
	"math"

	"repro/internal/data"
	"repro/internal/metrics"
	"repro/internal/model"
)

// Quantisation accuracy gate (DESIGN §14): before the serving tier is
// allowed to score through the int8 path, the quantised scores of a trained
// model must stay within a bounded delta of the float64 scores — both
// pointwise (max absolute score delta, additionally checked against the
// analytic per-row error bound scale/2·Σ|x|) and in ranking quality (ROC
// AUC delta). CI runs this over freshly trained models in
// internal/regress's tests; cmd/sgdload embeds the same deltas in its
// quantised-vs-float serving report.

// QuantThresholds bounds the acceptable float→int8 scoring degradation.
type QuantThresholds struct {
	// MaxAbsDelta caps the per-example |quant − float| score delta. When
	// <= 0 the gate derives the cap from theory: the largest analytic
	// per-row error bound of the evaluated dataset.
	MaxAbsDelta float64
	// MaxAUCDelta caps |AUC(float) − AUC(quant)|; <= 0 means the 0.005
	// default (half a point of AUC).
	MaxAUCDelta float64
}

// DefaultQuantThresholds is the committed gate: deltas within the analytic
// envelope, AUC within half a point.
func DefaultQuantThresholds() QuantThresholds {
	return QuantThresholds{MaxAbsDelta: 0, MaxAUCDelta: 0.005}
}

// QuantCheck is the gate's machine-readable outcome.
type QuantCheck struct {
	Model           string  `json:"model"`
	Dataset         string  `json:"dataset"`
	N               int     `json:"n"`
	MaxAbsDelta     float64 `json:"max_abs_delta"`
	MeanAbsDelta    float64 `json:"mean_abs_delta"`
	DeltaLimit      float64 `json:"delta_limit"`
	BoundViolations int     `json:"bound_violations"`
	AUCFloat        float64 `json:"auc_float"`
	AUCQuant        float64 `json:"auc_quant"`
	AUCDelta        float64 `json:"auc_delta"`
	AUCLimit        float64 `json:"auc_limit"`
	Pass            bool    `json:"pass"`
	Detail          string  `json:"detail,omitempty"`
}

// QuantGate scores every example of ds under w through both paths and
// checks the thresholds. The model must support quantised scoring (the
// linear models); w is quantised here exactly as the serving store does it.
func QuantGate(m model.QuantScorer, w []float64, ds *data.Dataset, th QuantThresholds) QuantCheck {
	if th.MaxAUCDelta <= 0 {
		th.MaxAUCDelta = 0.005
	}
	qw := model.Quantize(w)
	n := ds.N()
	chk := QuantCheck{Model: m.Name(), Dataset: ds.Name, N: n, AUCLimit: th.MaxAUCDelta}
	scr := m.NewScratch()
	fs := make([]float64, n)
	qs := make([]float64, n)
	var sumDelta, maxBound float64
	for i := 0; i < n; i++ {
		fs[i] = m.Score(w, ds, i, scr)
		qs[i] = m.QuantScore(qw, ds, i)
		d := math.Abs(qs[i] - fs[i])
		sumDelta += d
		if d > chk.MaxAbsDelta {
			chk.MaxAbsDelta = d
		}
		bound := qw.RowErrorBound(ds.X, i)
		if bound > maxBound {
			maxBound = bound
		}
		// A hair of slack over the analytic bound: the two kernels
		// reassociate their sums differently, so the comparison itself
		// carries rounding noise of order 1e-12 on unit-scale data.
		if d > bound*(1+1e-9)+1e-12 {
			chk.BoundViolations++
		}
	}
	if n > 0 {
		chk.MeanAbsDelta = sumDelta / float64(n)
	}
	chk.DeltaLimit = th.MaxAbsDelta
	if chk.DeltaLimit <= 0 {
		chk.DeltaLimit = maxBound
	}
	chk.AUCFloat = metrics.ROCAUC(fs, ds.Y)
	chk.AUCQuant = metrics.ROCAUC(qs, ds.Y)
	chk.AUCDelta = math.Abs(chk.AUCFloat - chk.AUCQuant)

	chk.Pass = true
	switch {
	case chk.BoundViolations > 0:
		chk.Pass = false
		chk.Detail = fmt.Sprintf("%d rows exceed the analytic quantisation error bound", chk.BoundViolations)
	case chk.MaxAbsDelta > chk.DeltaLimit:
		chk.Pass = false
		chk.Detail = fmt.Sprintf("max score delta %.3g > limit %.3g", chk.MaxAbsDelta, chk.DeltaLimit)
	case math.IsNaN(chk.AUCDelta):
		chk.Pass = false
		chk.Detail = "AUC undefined (single-class dataset?)"
	case chk.AUCDelta > th.MaxAUCDelta:
		chk.Pass = false
		chk.Detail = fmt.Sprintf("AUC delta %.4g > limit %.4g", chk.AUCDelta, th.MaxAUCDelta)
	}
	return chk
}
