package regress

import (
	"encoding/json"
	"testing"

	"repro/internal/chaos"
)

// chaosMatrix is a trimmed matrix for the degradation tests: one sync and
// one async config per device on the sparse dataset, small enough to run in
// seconds under the sequential scheduler.
func chaosMatrix() []Config {
	var out []Config
	for _, strategy := range []string{"sync", "async"} {
		for _, device := range []string{"cpu-par", "gpu"} {
			c := Config{
				Strategy: strategy, Device: device, Task: "lr",
				Dataset: "w8a", N: 300, Threads: 16,
				Epochs: 10, Seeds: 1, BaseSeed: 1,
			}
			if device == "gpu" {
				c.Threads = 0
			}
			if strategy == "sync" {
				c.Step = 2.0
			} else {
				c.Step = 0.5
			}
			out = append(out, c)
		}
	}
	return out
}

// TestDegradationContrast is the PR's acceptance criterion: under the storm
// plan (a 10x straggler on one worker plus 1% dropped updates) every async
// engine still reaches its loss threshold with a small time stretch, while
// the undeadlined synchronous engines' time-to-threshold degrades by at
// least 5x.
func TestDegradationContrast(t *testing.T) {
	plan, err := chaos.Lookup("storm")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Degradation(chaosMatrix(), plan, ChaosOpts{Seed: 1, Sequential: true})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.AsyncAllReached {
		for _, cr := range rep.Configs {
			if cr.Strategy == "async" {
				t.Logf("async %s: faulted=%+v", cr.Config, cr.Faulted)
			}
		}
		t.Fatal("an async engine failed to reach its loss threshold under storm")
	}
	if rep.MinSyncSlowdown >= 0 && rep.MinSyncSlowdown < 5 {
		t.Errorf("mildest sync degradation %.2fx, want >= 5x (or unreached)", rep.MinSyncSlowdown)
	}
	if rep.MaxAsyncSlowdown > 3 {
		t.Errorf("worst async degradation %.2fx, want small (< 3x)", rep.MaxAsyncSlowdown)
	}
	// The report must be JSON-encodable (no Inf/NaN sentinels).
	if _, err := json.Marshal(rep); err != nil {
		t.Fatalf("report does not marshal: %v", err)
	}
}

// TestDegradationDeadlineMitigates: arming the sync barrier deadline caps
// the degradation below the undeadlined factor.
func TestDegradationDeadlineMitigates(t *testing.T) {
	plan, err := chaos.Lookup("straggler")
	if err != nil {
		t.Fatal(err)
	}
	cfg := chaosMatrix()[0] // sync/cpu-par
	if cfg.Strategy != "sync" {
		t.Fatal("matrix order changed")
	}
	bsp, err := RunChaos(cfg, plan, ChaosOpts{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	dl, err := RunChaos(cfg, plan, ChaosOpts{Seed: 1, Deadline: 2})
	if err != nil {
		t.Fatal(err)
	}
	b, d := nominalRun(bsp), nominalRun(dl)
	if !b.Reached || b.Slowdown < 9 {
		t.Fatalf("undeadlined sync run: %+v, want ~10x slowdown", b)
	}
	if !d.Reached {
		t.Fatalf("deadlined sync run never reached threshold: %+v", d)
	}
	if d.Slowdown >= b.Slowdown/2 {
		t.Errorf("deadline did not mitigate: %.2fx vs %.2fx undeadlined", d.Slowdown, b.Slowdown)
	}
}

// TestRunChaosSequentialReplay: the same (config, plan, seed) under the
// sequential scheduler reproduces the faulted loss curve exactly.
func TestRunChaosSequentialReplay(t *testing.T) {
	cfg := chaosMatrix()[2] // async/cpu-par
	if cfg.Strategy != "async" {
		t.Fatal("matrix order changed")
	}
	plan, _ := chaos.Lookup("storm")
	opts := ChaosOpts{Seed: 5, Sequential: true}
	a, err := RunChaos(cfg, plan, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunChaos(cfg, plan, opts)
	if err != nil {
		t.Fatal(err)
	}
	if a.Faulted[0].FinalLoss != b.Faulted[0].FinalLoss {
		t.Fatalf("sequential chaos runs differ: %v vs %v",
			a.Faulted[0].FinalLoss, b.Faulted[0].FinalLoss)
	}
	opts.Seed = 6
	c, err := RunChaos(cfg, plan, opts)
	if err != nil {
		t.Fatal(err)
	}
	if a.Faulted[0].FinalLoss == c.Faulted[0].FinalLoss {
		t.Error("different chaos seeds produced identical faulted curves")
	}
}

// TestChaosIntensitySweep: scaling the plan down to zero recovers the
// healthy run.
func TestChaosIntensitySweep(t *testing.T) {
	cfg := chaosMatrix()[0]
	plan, _ := chaos.Lookup("straggler")
	rep, err := RunChaos(cfg, plan, ChaosOpts{Seed: 1, Intensities: []float64{0, 0.5, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Faulted) != 3 {
		t.Fatalf("got %d faulted runs, want 3", len(rep.Faulted))
	}
	zero := rep.Faulted[0]
	if !zero.Reached || zero.Slowdown < 0.99 || zero.Slowdown > 1.01 {
		t.Errorf("intensity-0 run is not the healthy run: %+v", zero)
	}
	if rep.Faulted[1].Slowdown <= zero.Slowdown || rep.Faulted[2].Slowdown <= rep.Faulted[1].Slowdown {
		t.Errorf("slowdown not monotone in intensity: %v, %v, %v",
			zero.Slowdown, rep.Faulted[1].Slowdown, rep.Faulted[2].Slowdown)
	}
}
