// Package mf implements low-rank matrix factorization trained by SGD — the
// model class the paper names as future work (Section VI) and the subject of
// its closest related work on GPU asynchrony (cuMF_SGD, HPDC'17; Kaleem et
// al., GPGPU'15).
//
// The task: given observed ratings R(u, i) of Users x Items, find rank-K
// factors U (Users x K) and V (Items x K) minimising the squared error
// sum over observed (u,i) of (R(u,i) - U_u . V_i)^2.
//
// Each rating is one training example whose gradient touches exactly 2K
// model components (user row + item row), so the entire asynchronous engine
// stack of internal/core — CPU Hogwild, simulated-GPU warp execution with
// conflict semantics, step tuning, the convergence driver — applies
// unchanged through the model.Model interface. Hot users/items make update
// conflicts data-dependent, exactly the structure cuMF_SGD schedules around.
package mf

import (
	"fmt"
	"math/rand"

	"repro/internal/data"
	"repro/internal/model"
)

// MF is the matrix-factorization task. Parameters are [U row-major, then V
// row-major] in one flat vector, so the asynchronous engines can share and
// race on it like any other model.
type MF struct {
	Users, Items, K int
	// Reg is the L2 regularisation weight on the touched factor rows
	// (0 = none, matching the paper's unregularised methodology).
	Reg float64
}

// NewMF builds a rank-k factorization task.
func NewMF(users, items, k int) *MF {
	if users <= 0 || items <= 0 || k <= 0 {
		panic(fmt.Sprintf("mf: invalid shape %dx%d rank %d", users, items, k))
	}
	return &MF{Users: users, Items: items, K: k}
}

// Name implements model.Model.
func (m *MF) Name() string { return "mf" }

// NumParams implements model.Model.
func (m *MF) NumParams() int { return (m.Users + m.Items) * m.K }

// userOff returns the offset of U_u in the flat vector.
func (m *MF) userOff(u int) int { return u * m.K }

// itemOff returns the offset of V_i in the flat vector.
func (m *MF) itemOff(i int) int { return (m.Users + i) * m.K }

// InitParams implements model.Model: small random factors so the initial
// predictions are near zero.
func (m *MF) InitParams(seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	w := make([]float64, m.NumParams())
	for j := range w {
		w[j] = rng.NormFloat64() * 0.1
	}
	return w
}

// NewScratch implements model.Model.
func (m *MF) NewScratch() model.Scratch { return nil }

// decode extracts (user, item, rating) from example row i of the ratings
// dataset built by NewRatingsDataset.
func (m *MF) decode(ds *data.Dataset, i int) (u, it int, r float64) {
	cols, vals := ds.X.Row(i)
	if len(cols) != 2 {
		panic(fmt.Sprintf("mf: example %d has %d entries, want 2 (user, item)", i, len(cols)))
	}
	return int(cols[0]), int(cols[1]) - m.Users, vals[0]
}

// predict returns U_u . V_i.
func (m *MF) predict(w []float64, u, it int) float64 {
	uo, io := m.userOff(u), m.itemOff(it)
	var s float64
	for k := 0; k < m.K; k++ {
		s += w[uo+k] * w[io+k]
	}
	return s
}

// ExampleLoss implements model.Model: squared error of one rating.
func (m *MF) ExampleLoss(w []float64, ds *data.Dataset, i int, _ model.Scratch) float64 {
	u, it, r := m.decode(ds, i)
	e := r - m.predict(w, u, it)
	loss := e * e
	if m.Reg > 0 {
		uo, io := m.userOff(u), m.itemOff(it)
		for k := 0; k < m.K; k++ {
			loss += m.Reg * (w[uo+k]*w[uo+k] + w[io+k]*w[io+k])
		}
	}
	return loss
}

// AccumGrad implements model.Model.
func (m *MF) AccumGrad(w []float64, ds *data.Dataset, i int, scale float64, g []float64, _ model.Scratch) {
	u, it, r := m.decode(ds, i)
	uo, io := m.userOff(u), m.itemOff(it)
	e := r - m.predict(w, u, it)
	for k := 0; k < m.K; k++ {
		g[uo+k] += scale * (-2*e*w[io+k] + 2*m.Reg*w[uo+k])
		g[io+k] += scale * (-2*e*w[uo+k] + 2*m.Reg*w[io+k])
	}
}

// SGDStep implements model.Model: the classic MF update
// U_u += step*2e*V_i, V_i += step*2e*U_u, through the updater so Hogwild
// and the simulated-GPU executor control how writes land. The item factors
// used in the user update are read before any write (true simultaneous
// update), matching the reference implementations.
func (m *MF) SGDStep(w []float64, ds *data.Dataset, i int, step float64, upd model.Updater, _ model.Scratch) {
	u, it, r := m.decode(ds, i)
	uo, io := m.userOff(u), m.itemOff(it)
	e := r - m.predict(w, u, it)
	for k := 0; k < m.K; k++ {
		du := step * (2*e*w[io+k] - 2*m.Reg*w[uo+k])
		dv := step * (2*e*w[uo+k] - 2*m.Reg*w[io+k])
		upd.Add(w, uo+k, du)
		upd.Add(w, io+k, dv)
	}
}

// GradSupport implements model.Model: one user row plus one item row.
func (m *MF) GradSupport(_ *data.Dataset, _ int) int { return 2 * m.K }

// BatchGrad implements model.BatchModel by per-example accumulation (MF's
// gradient support is tiny, so there is no GEMM formulation to exploit);
// the element-wise error pass is charged through the backend.
func (m *MF) BatchGrad(b model.Ops, w []float64, ds *data.Dataset, rows []int, g []float64) float64 {
	n := ds.N()
	rowAt := func(i int) int { return i }
	if rows != nil {
		n = len(rows)
		rowAt = func(i int) int { return rows[i] }
	}
	for j := range g {
		g[j] = 0
	}
	errs := make([]float64, n)
	var loss float64
	for i := 0; i < n; i++ {
		r := rowAt(i)
		m.AccumGrad(w, ds, r, 1/float64(n), g, nil)
		loss += m.ExampleLoss(w, ds, r, nil)
	}
	// Charge the per-rating error/update pass as an element-wise kernel
	// of 4K flops per rating.
	b.Map(errs, errs, nil, func(s, _ float64) float64 { return s })
	return loss / float64(n)
}

var (
	_ model.Model      = (*MF)(nil)
	_ model.BatchModel = (*MF)(nil)
)
