package mf

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/sparse"
	"repro/internal/tensor"
)

// nopOps satisfies model.Ops for tests that only need the functional result.
type nopOps struct{}

func (nopOps) Gemv(float64, *tensor.Matrix, []float64, float64, []float64)             {}
func (nopOps) GemvT(float64, *tensor.Matrix, []float64, float64, []float64)            {}
func (nopOps) Gemm(float64, *tensor.Matrix, *tensor.Matrix, float64, *tensor.Matrix)   {}
func (nopOps) GemmNT(float64, *tensor.Matrix, *tensor.Matrix, float64, *tensor.Matrix) {}
func (nopOps) GemmTN(float64, *tensor.Matrix, *tensor.Matrix, float64, *tensor.Matrix) {}
func (nopOps) SpMV(*sparse.CSR, []float64, []float64)                                  {}
func (nopOps) SpMVT(*sparse.CSR, []float64, []float64)                                 {}
func (nopOps) Axpy(float64, []float64, []float64)                                      {}
func (nopOps) Scal(float64, []float64)                                                 {}
func (nopOps) Map([]float64, []float64, []float64, func(s, a float64) float64)         {}
func (nopOps) RowsMap(*tensor.Matrix, func(i int, row []float64))                      {}

var _ model.Ops = nopOps{}

func TestMFGradientMatchesFiniteDiff(t *testing.T) {
	spec := NetflixLike(12, 9, 60)
	ds := NewRatingsDataset(spec)
	m := NewMF(12, 9, 4)
	m.Reg = 0.01
	rng := rand.New(rand.NewSource(1))
	w := m.InitParams(2)
	for j := range w {
		w[j] = rng.NormFloat64() * 0.3
	}
	const h = 1e-6
	for trial := 0; trial < 6; trial++ {
		i := rng.Intn(ds.N())
		g := make([]float64, len(w))
		m.AccumGrad(w, ds, i, 1, g, nil)
		for j := range w {
			orig := w[j]
			w[j] = orig + h
			fp := m.ExampleLoss(w, ds, i, nil)
			w[j] = orig - h
			fm := m.ExampleLoss(w, ds, i, nil)
			w[j] = orig
			want := (fp - fm) / (2 * h)
			if math.Abs(g[j]-want) > 1e-4*math.Max(1, math.Abs(want)) {
				t.Fatalf("grad[%d] = %v, finite diff %v", j, g[j], want)
			}
		}
	}
}

func TestMFSGDStepMatchesGradient(t *testing.T) {
	spec := NetflixLike(10, 8, 40)
	ds := NewRatingsDataset(spec)
	m := NewMF(10, 8, 3)
	rng := rand.New(rand.NewSource(2))
	w := m.InitParams(3)
	for j := range w {
		w[j] = rng.NormFloat64() * 0.2
	}
	i := rng.Intn(ds.N())
	step := 0.05
	g := make([]float64, len(w))
	m.AccumGrad(w, ds, i, 1, g, nil)
	want := append([]float64(nil), w...)
	for j := range want {
		want[j] -= step * g[j]
	}
	got := append([]float64(nil), w...)
	m.SGDStep(got, ds, i, step, model.RawUpdater{}, nil)
	for j := range got {
		if math.Abs(got[j]-want[j]) > 1e-12 {
			t.Fatalf("SGDStep[%d] = %v, want %v", j, got[j], want[j])
		}
	}
}

func TestMFHogwildConverges(t *testing.T) {
	spec := NetflixLike(60, 40, 1500)
	ds := NewRatingsDataset(spec)
	m := NewMF(60, 40, 8)
	e := core.NewHogwild(m, ds, 0.05, 8)
	w := m.InitParams(1)
	before := model.MeanLoss(m, w, ds)
	for ep := 0; ep < 60; ep++ {
		e.RunEpoch(w)
	}
	after := model.MeanLoss(m, w, ds)
	if !(after < before/3) {
		t.Fatalf("MF Hogwild: loss %v -> %v, expected a strong drop", before, after)
	}
}

func TestMFGPUHogwildRunsWithConflicts(t *testing.T) {
	// Hot (Zipf) items force warp-level conflicts on the item factors —
	// the structure cuMF_SGD's scheduling avoids. The simulator must
	// surface them while still making progress.
	spec := NetflixLike(50, 30, 1200)
	ds := NewRatingsDataset(spec)
	m := NewMF(50, 30, 8)
	e := core.NewGPUHogwild(m, ds, 0.05)
	e.MaxWarps = 4
	w := m.InitParams(1)
	before := model.MeanLoss(m, w, ds)
	for ep := 0; ep < 40; ep++ {
		e.RunEpoch(w)
	}
	after := model.MeanLoss(m, w, ds)
	if after >= before {
		t.Fatalf("MF GPU Hogwild made no progress: %v -> %v", before, after)
	}
	st := e.LastStats()
	if st.LostIntra+st.LostInter == 0 {
		t.Fatal("Zipf-hot items produced no update conflicts")
	}
}

func TestMFBatchGradEqualsMean(t *testing.T) {
	spec := NetflixLike(15, 10, 80)
	ds := NewRatingsDataset(spec)
	m := NewMF(15, 10, 4)
	rng := rand.New(rand.NewSource(4))
	w := m.InitParams(5)
	for j := range w {
		w[j] = rng.NormFloat64() * 0.2
	}
	g := make([]float64, len(w))
	loss := m.BatchGrad(nopOps{}, w, ds, nil, g)
	want := make([]float64, len(w))
	var wantLoss float64
	for i := 0; i < ds.N(); i++ {
		m.AccumGrad(w, ds, i, 1/float64(ds.N()), want, nil)
		wantLoss += m.ExampleLoss(w, ds, i, nil)
	}
	wantLoss /= float64(ds.N())
	if math.Abs(loss-wantLoss) > 1e-9 {
		t.Fatalf("batch loss %v vs %v", loss, wantLoss)
	}
	for j := range g {
		if math.Abs(g[j]-want[j]) > 1e-9 {
			t.Fatalf("batch grad[%d]", j)
		}
	}
}

func TestRatingsDatasetShape(t *testing.T) {
	spec := NetflixLike(20, 15, 100)
	ds := NewRatingsDataset(spec)
	if ds.X.NumCols != 35 {
		t.Fatalf("cols = %d", ds.X.NumCols)
	}
	for i := 0; i < ds.N(); i++ {
		cols, _ := ds.X.Row(i)
		if len(cols) != 2 {
			t.Fatalf("row %d has %d entries", i, len(cols))
		}
		if int(cols[0]) >= 20 || int(cols[1]) < 20 {
			t.Fatalf("row %d encoding wrong: %v", i, cols)
		}
	}
	// Deterministic.
	ds2 := NewRatingsDataset(spec)
	for k, v := range ds.X.Values {
		if ds2.X.Values[k] != v {
			t.Fatal("not deterministic")
		}
	}
}

func TestNewMFValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid shape did not panic")
		}
	}()
	NewMF(0, 5, 2)
}
