package mf

import (
	"math/rand"

	"repro/internal/data"
	"repro/internal/sparse"
)

// RatingsSpec describes a synthetic recommendation workload.
type RatingsSpec struct {
	Users, Items int
	// Ratings is the number of observed entries.
	Ratings int
	// TrueRank is the rank of the planted factors generating the data.
	TrueRank int
	// Noise is the standard deviation of Gaussian noise on each rating.
	Noise float64
	// ZipfS skews item popularity (>1); hot items concentrate update
	// conflicts like real catalogues do. 0 disables the skew.
	ZipfS float64
	Seed  int64
}

// NetflixLike returns a small netflix-shaped workload (very popular head
// items, rank-8 structure).
func NetflixLike(users, items, ratings int) RatingsSpec {
	return RatingsSpec{
		Users: users, Items: items, Ratings: ratings,
		TrueRank: 8, Noise: 0.1, ZipfS: 1.2, Seed: 7,
	}
}

// NewRatingsDataset generates observed ratings from planted rank-TrueRank
// factors. Each example is encoded as a two-entry CSR row —
// (col=user, val=rating) and (col=Users+item, val=1) — so the MF model can
// run through every engine that consumes data.Dataset. Labels carry the
// rating as well (informational; MF reads the CSR encoding).
func NewRatingsDataset(spec RatingsSpec) *data.Dataset {
	rng := rand.New(rand.NewSource(spec.Seed))
	// Planted factors.
	pu := make([]float64, spec.Users*spec.TrueRank)
	pv := make([]float64, spec.Items*spec.TrueRank)
	for j := range pu {
		pu[j] = rng.NormFloat64() / float64(spec.TrueRank)
	}
	for j := range pv {
		pv[j] = rng.NormFloat64()
	}
	var zipf *rand.Zipf
	if spec.ZipfS > 1 {
		zipf = rand.NewZipf(rng, spec.ZipfS, 4, uint64(spec.Items-1))
	}
	b := sparse.NewBuilder(spec.Ratings, spec.Users+spec.Items)
	y := make([]float64, spec.Ratings)
	seen := make(map[[2]int32]bool, spec.Ratings)
	for n := 0; n < spec.Ratings; n++ {
		var u, it int
		for {
			u = rng.Intn(spec.Users)
			if zipf != nil {
				it = int(zipf.Uint64())
			} else {
				it = rng.Intn(spec.Items)
			}
			key := [2]int32{int32(u), int32(it)}
			if !seen[key] {
				seen[key] = true
				break
			}
		}
		var r float64
		for k := 0; k < spec.TrueRank; k++ {
			r += pu[u*spec.TrueRank+k] * pv[it*spec.TrueRank+k]
		}
		r += spec.Noise * rng.NormFloat64()
		b.Add(n, u, r)
		b.Add(n, spec.Users+it, 1)
		y[n] = r
	}
	return &data.Dataset{Name: "ratings", X: b.Build(), Y: y}
}
