package serve

import (
	"encoding/json"
	"fmt"
	"os"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/model"
)

// Snapshot is one immutable published model: a private copy of the weights
// plus the identity needed to decide whether two serving runs are
// comparable. Snapshots are never mutated after Publish — hot-swap safety
// rests entirely on that immutability plus the atomic pointer in Store.
type Snapshot struct {
	// Version is the store-assigned publish sequence number (1, 2, ...).
	Version int64 `json:"version"`
	// Model is the served model's name ("lr", "svm", "mlp").
	Model string `json:"model"`
	// Dim is the feature dimensionality requests must respect.
	Dim int `json:"dim"`
	// Weights is the flat parameter vector (model.Model layout).
	Weights []float64 `json:"weights"`
	// Loss is the training loss at publish time when the publisher knows
	// it (0 when untracked).
	Loss float64 `json:"loss,omitempty"`
	// Epoch is the training epoch the snapshot was taken after (offline
	// snapshots keep the epoch they were exported at).
	Epoch int `json:"epoch,omitempty"`
	// Fingerprint identifies the training configuration that produced the
	// weights, in the same core.Fingerprint discipline the regression and
	// bench gates use: reports are only comparable between equal keys.
	Fingerprint core.Fingerprint `json:"fingerprint"`
	// PublishedUnixNano is the host wall-clock publish instant.
	PublishedUnixNano int64 `json:"published_unix_nano,omitempty"`
	// Quant is the int8 quantised twin of Weights (DESIGN §14), attached
	// at publish time when the store is in quantised mode, so both
	// representations hot-swap together under the one atomic pointer and
	// the batcher never sees a version skew between them. It is derived
	// state, excluded from the JSON snapshot format and rebuilt on load.
	Quant *model.QuantizedWeights `json:"-"`
}

// Store is the lock-free snapshot hot-swap point: writers Publish immutable
// snapshots, readers Load the current one with a single atomic pointer read.
// This is the inference-side mirror of Hogwild's shared-model semantics —
// except that where Hogwild tolerates inconsistent element-level reads
// during training, serving gets full consistency for free because the unit
// of publication is an immutable pointer, not a vector element.
type Store struct {
	cur      atomic.Pointer[Snapshot]
	ver      atomic.Int64
	swaps    atomic.Int64
	quantize atomic.Bool
}

// NewStore returns an empty store (Load returns nil until a Publish).
func NewStore() *Store { return &Store{} }

// Load returns the current snapshot, or nil before the first publish. The
// returned snapshot is immutable and safe to read concurrently with any
// number of publishes.
func (s *Store) Load() *Snapshot { return s.cur.Load() }

// Publish installs sn as the current snapshot, assigning the next version,
// and returns that version. sn (including its weight slice) must not be
// mutated afterwards; PublishWeights is the copying convenience for
// publishers that keep training on their vector.
func (s *Store) Publish(sn *Snapshot) int64 {
	sn.Version = s.ver.Add(1)
	if sn.PublishedUnixNano == 0 {
		sn.PublishedUnixNano = time.Now().UnixNano()
	}
	if s.quantize.Load() && sn.Quant == nil && len(sn.Weights) > 0 {
		sn.Quant = model.Quantize(sn.Weights)
	}
	s.cur.Store(sn)
	s.swaps.Add(1)
	return sn.Version
}

// SetQuantize makes every future Publish attach the int8 representation to
// the snapshot before installing it (NewCore enables this when the serving
// core is configured Quantized). Publishing is O(dim) either way — the
// quantisation pass adds one more linear sweep per publish, off the request
// path.
func (s *Store) SetQuantize(on bool) { s.quantize.Store(on) }

// PublishWeights publishes a fresh snapshot copying w, for publishers (the
// online Trainer) that continue updating w after the call. meta's Version
// and PublishedUnixNano are overwritten; its Weights are ignored.
func (s *Store) PublishWeights(w []float64, meta Snapshot) int64 {
	meta.Weights = append([]float64(nil), w...)
	meta.Quant = nil // derived from the fresh copy, never inherited
	meta.PublishedUnixNano = 0
	return s.Publish(&meta)
}

// Swaps returns the number of publishes since creation (the swap counter of
// /stats and CounterServeSwaps).
func (s *Store) Swaps() int64 { return s.swaps.Load() }

// SaveSnapshot writes sn as JSON to path (the cmd/sgdserve -save-snapshot
// format; weights included, so files scale with the model).
func SaveSnapshot(path string, sn *Snapshot) error {
	b, err := json.MarshalIndent(sn, "", " ")
	if err != nil {
		return fmt.Errorf("serve: marshal snapshot: %w", err)
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// LoadSnapshotFile reads a snapshot written by SaveSnapshot and validates
// the weight length against Dim-derived expectations of the caller's model
// (the caller checks Dim/NumParams; here only structural validity).
func LoadSnapshotFile(path string) (*Snapshot, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var sn Snapshot
	if err := json.Unmarshal(b, &sn); err != nil {
		return nil, fmt.Errorf("serve: parse snapshot %s: %w", path, err)
	}
	if len(sn.Weights) == 0 {
		return nil, fmt.Errorf("serve: snapshot %s has no weights", path)
	}
	return &sn, nil
}
