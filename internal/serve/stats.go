package serve

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"sync/atomic"
)

// latBuckets are the latency histogram bounds: log-spaced, 8 buckets per
// decade from 1µs to 10s (upper bounds in seconds), plus an overflow bucket.
// The resolution (~33% per step) is enough for the p50/p99 the reports and
// gates compare, while keeping Record a single atomic increment.
var latBuckets = func() []float64 {
	var b []float64
	for e := -6; e < 1; e++ {
		decade := math.Pow(10, float64(e))
		for i := 0; i < 8; i++ {
			b = append(b, decade*math.Pow(10, float64(i)/8))
		}
	}
	return append(b, 10)
}()

// hist is a fixed-bound histogram with atomic buckets; Record is wait-free
// so the request path never serialises on statistics.
type hist struct {
	bounds []float64 // upper bounds, ascending; len(counts) == len(bounds)+1
	counts []atomic.Int64
	sum    atomicFloat
	max    atomicFloat
}

func newHist(bounds []float64) *hist {
	return &hist{bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
}

// Record adds one sample.
func (h *hist) Record(v float64) {
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if v <= h.bounds[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	h.counts[lo].Add(1)
	h.sum.Add(v)
	h.max.Max(v)
}

// Count returns the total sample count.
func (h *hist) Count() int64 {
	var n int64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Mean returns the sample mean (0 when empty).
func (h *hist) Mean() float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return h.sum.Load() / float64(n)
}

// Quantile returns an upper-bound estimate of the p-quantile (p in [0,1]):
// the upper bound of the bucket holding the p-th sample (the recorded max
// for the overflow bucket). 0 when empty.
func (h *hist) Quantile(p float64) float64 {
	total := h.Count()
	if total == 0 {
		return 0
	}
	rank := int64(math.Ceil(p * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i := range h.counts {
		cum += h.counts[i].Load()
		if cum >= rank {
			if i < len(h.bounds) {
				return h.bounds[i]
			}
			return h.max.Load()
		}
	}
	return h.max.Load()
}

// atomicFloat is a float64 with atomic Add and monotonic Max via CAS on the
// bit pattern (the same discipline as model.AtomicUpdater).
type atomicFloat struct{ bits atomic.Uint64 }

func (f *atomicFloat) Load() float64 { return math.Float64frombits(f.bits.Load()) }

func (f *atomicFloat) Add(v float64) {
	for {
		old := f.bits.Load()
		if f.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

func (f *atomicFloat) Max(v float64) {
	for {
		old := f.bits.Load()
		if math.Float64frombits(old) >= v {
			return
		}
		if f.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Stats aggregates the serving-path counters and distributions. All methods
// are safe for concurrent use; the hot-path cost is a few atomic adds.
type Stats struct {
	store *Store

	requests     atomic.Int64 // admitted
	rejected     atomic.Int64 // ErrOverloaded at admission
	dropped      atomic.Int64 // chaos-injected drops
	batches      atomic.Int64 // dispatched micro-batches
	quantBatches atomic.Int64 // micro-batches scored through the int8 path

	latency   *hist // end-to-end seconds (queue wait + compute)
	batchSize *hist // requests per dispatched batch
	queueSum  atomic.Int64
}

func newStats(store *Store) *Stats {
	bounds := make([]float64, 0, 13)
	for b := 1; b <= 4096; b *= 2 {
		bounds = append(bounds, float64(b))
	}
	return &Stats{store: store, latency: newHist(latBuckets), batchSize: newHist(bounds)}
}

// Report is the JSON shape of one stats snapshot (/stats, sgdload reports).
type Report struct {
	Requests     int64   `json:"requests"`
	Rejected     int64   `json:"rejected"`
	Dropped      int64   `json:"dropped,omitempty"`
	Batches      int64   `json:"batches"`
	QuantBatches int64   `json:"quant_batches,omitempty"`
	Swaps        int64   `json:"swaps"`
	ModelVersion int64   `json:"model_version"`
	AvgBatch     float64 `json:"avg_batch"`
	MaxBatch     float64 `json:"max_batch"`
	AvgQueue     float64 `json:"avg_queue_depth"`
	LatencyP50   float64 `json:"latency_p50_s"`
	LatencyP90   float64 `json:"latency_p90_s"`
	LatencyP99   float64 `json:"latency_p99_s"`
	LatencyMax   float64 `json:"latency_max_s"`
	LatencyMean  float64 `json:"latency_mean_s"`
}

// Snapshot returns the current aggregate.
func (s *Stats) Snapshot() Report {
	r := Report{
		Requests:     s.requests.Load(),
		Rejected:     s.rejected.Load(),
		Dropped:      s.dropped.Load(),
		Batches:      s.batches.Load(),
		QuantBatches: s.quantBatches.Load(),
		AvgBatch:     s.batchSize.Mean(),
		MaxBatch:     s.batchSize.max.Load(),
		LatencyP50:   s.latency.Quantile(0.50),
		LatencyP90:   s.latency.Quantile(0.90),
		LatencyP99:   s.latency.Quantile(0.99),
		LatencyMax:   s.latency.max.Load(),
		LatencyMean:  s.latency.Mean(),
	}
	if b := r.Batches; b > 0 {
		r.AvgQueue = float64(s.queueSum.Load()) / float64(b)
	}
	if s.store != nil {
		r.Swaps = s.store.Swaps()
		if sn := s.store.Load(); sn != nil {
			r.ModelVersion = sn.Version
		}
	}
	return r
}

// WriteProm renders the aggregate in the Prometheus text exposition format
// under the sgd_serve_ prefix (served next to the training aggregator's
// sgd_ families on /metrics).
func (s *Stats) WriteProm(b *strings.Builder) {
	r := s.Snapshot()
	fmt.Fprintf(b, "# HELP sgd_serve_requests_total Admitted prediction requests.\n# TYPE sgd_serve_requests_total counter\nsgd_serve_requests_total %d\n", r.Requests)
	fmt.Fprintf(b, "# HELP sgd_serve_rejected_total Requests refused by admission control (429).\n# TYPE sgd_serve_rejected_total counter\nsgd_serve_rejected_total %d\n", r.Rejected)
	fmt.Fprintf(b, "# HELP sgd_serve_dropped_total Requests dropped by the active fault plan.\n# TYPE sgd_serve_dropped_total counter\nsgd_serve_dropped_total %d\n", r.Dropped)
	fmt.Fprintf(b, "# HELP sgd_serve_batches_total Dispatched inference micro-batches.\n# TYPE sgd_serve_batches_total counter\nsgd_serve_batches_total %d\n", r.Batches)
	fmt.Fprintf(b, "# HELP sgd_serve_quant_batches_total Micro-batches scored through the int8 quantised path.\n# TYPE sgd_serve_quant_batches_total counter\nsgd_serve_quant_batches_total %d\n", r.QuantBatches)
	fmt.Fprintf(b, "# HELP sgd_serve_snapshot_swaps_total Model snapshot hot-swaps.\n# TYPE sgd_serve_snapshot_swaps_total counter\nsgd_serve_snapshot_swaps_total %d\n", r.Swaps)
	fmt.Fprintf(b, "# HELP sgd_serve_model_version Current served snapshot version.\n# TYPE sgd_serve_model_version gauge\nsgd_serve_model_version %d\n", r.ModelVersion)
	fmt.Fprintf(b, "# HELP sgd_serve_batch_size_avg Mean requests per dispatched batch.\n# TYPE sgd_serve_batch_size_avg gauge\nsgd_serve_batch_size_avg %g\n", r.AvgBatch)
	b.WriteString("# HELP sgd_serve_latency_seconds End-to-end request latency quantiles.\n# TYPE sgd_serve_latency_seconds gauge\n")
	fmt.Fprintf(b, "sgd_serve_latency_seconds{quantile=\"0.5\"} %g\n", r.LatencyP50)
	fmt.Fprintf(b, "sgd_serve_latency_seconds{quantile=\"0.9\"} %g\n", r.LatencyP90)
	fmt.Fprintf(b, "sgd_serve_latency_seconds{quantile=\"0.99\"} %g\n", r.LatencyP99)
	fmt.Fprintf(b, "sgd_serve_latency_seconds{quantile=\"1\"} %g\n", r.LatencyMax)
	// The same distributions again as standard cumulative histograms, so
	// off-the-shelf tooling (histogram_quantile, burn-rate recording rules)
	// works without knowing the custom quantile-gauge families above.
	writePromHist(b, "sgd_serve_request_duration_seconds", "End-to-end request latency.", s.latency)
	writePromHist(b, "sgd_serve_batch_size", "Requests per dispatched micro-batch.", s.batchSize)
}

// writePromHist renders one hist in the standard Prometheus histogram
// exposition: cumulative `le` buckets plus _sum and _count. Bucket reads are
// not atomic as a set — concurrent Records can land between loads — which
// only means the rendered cumulative counts may lag each other by in-flight
// samples, the same eventual consistency every scraped histogram has.
func writePromHist(b *strings.Builder, name, help string, h *hist) {
	fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	var cum int64
	for i, ub := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(b, "%s_bucket{le=%q} %d\n", name, strconv.FormatFloat(ub, 'g', -1, 64), cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	fmt.Fprintf(b, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
	fmt.Fprintf(b, "%s_sum %g\n", name, h.sum.Load())
	fmt.Fprintf(b, "%s_count %d\n", name, cum)
}
