// Package serve is the online inference side of the reproduction: it turns
// a trained (or continuously training) model into a prediction service, the
// "serves heavy traffic" half of the ROADMAP's north star.
//
// Two ideas from the training study transfer directly:
//
//   - Micro-batching. The paper's central batching insight is that
//     mini-batch size trades per-update overhead against statistical
//     efficiency; on the serving side the same per-dispatch overhead (queue
//     hand-off, snapshot load, CSR assembly, worker-pool dispatch) is
//     amortised by batching concurrent requests. The Batcher queues
//     requests and flushes on max-batch-size or a max-latency deadline, so
//     throughput scales with load while an idle server still answers every
//     request within the deadline.
//
//   - Lock-free snapshot hot-swap. HOGWILD! (Niu et al., 2011) publishes
//     model updates to concurrent readers without locks; the serving mirror
//     is an atomic-pointer Store of immutable Snapshots. A background
//     trainer (Trainer, running any core.Engine) publishes a fresh copy of
//     the weights per epoch; every dispatched batch loads the pointer once,
//     so all requests of a batch score against one consistent version and
//     readers never observe a torn model.
//
// Stages and their instrumentation (through internal/obs): admission
// (bounded queue, CounterServeRejected on 429 backpressure), batching
// (MetricServeBatchSize, MetricServeQueueDepth), compute (pool-dispatched
// scoring through model.Scorer, PhaseGradient seconds), and swap
// (CounterServeSwaps). End-to-end latency lands both in MetricServeLatency
// and in the serving layer's own log-bucketed histogram (Stats), which is
// what the p50/p99 numbers in /stats, /metrics and cmd/sgdload reports come
// from.
//
// Fault plans from internal/chaos thread through the dispatch path
// (straggler batches, injected request drops), so degradation under load is
// a measurable experiment exactly like the training storms of cmd/sgdchaos.
// See DESIGN.md §12 and docs/ARCHITECTURE.md for the serving data flow;
// cmd/sgdserve and cmd/sgdload are the binaries on top.
package serve

import (
	"errors"
	"sync"
	"time"

	"repro/internal/chaos"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/pool"
	"repro/internal/span"
)

// Errors surfaced to callers of Core.Predict (the HTTP layer maps them to
// status codes).
var (
	// ErrOverloaded means the admission queue was full; the client should
	// back off (HTTP 429).
	ErrOverloaded = errors.New("serve: queue full, backpressure")
	// ErrNoModel means no snapshot has been published yet (HTTP 503).
	ErrNoModel = errors.New("serve: no model snapshot published")
	// ErrInjectedDrop is the chaos plan discarding a request on the serving
	// path (HTTP 503); it only occurs under an active fault plan.
	ErrInjectedDrop = errors.New("serve: request dropped by fault plan")
	// ErrBadFeatures means a feature index was negative or out of range for
	// the served model (HTTP 400).
	ErrBadFeatures = errors.New("serve: feature index out of range")
	// ErrClosed means the core was shut down while the request was queued.
	ErrClosed = errors.New("serve: server closed")
)

// Config sizes the serving core. The zero value is unusable; call
// (*Config).withDefaults via NewCore which fills every field.
type Config struct {
	// MaxBatch is the largest micro-batch one dispatch scores (1 disables
	// batching — every request pays the full dispatch overhead, the
	// baseline cmd/sgdload's A/B report compares against). Default 64.
	MaxBatch int
	// MaxDelay is the deadline flush: the oldest queued request never
	// waits longer than this for its batch to fill. Default 2ms.
	MaxDelay time.Duration
	// QueueDepth bounds the admission queue; a full queue rejects with
	// ErrOverloaded instead of queueing unbounded latency. Default
	// 8*MaxBatch.
	QueueDepth int
	// Workers caps the pool parallelism of one batch's scoring. Default:
	// the pool size.
	Workers int
	// Grain is the minimum number of requests per pool chunk, so tiny
	// batches of cheap models score inline instead of paying dispatch.
	// Default 16.
	Grain int
	// Pool is the worker pool scoring dispatches on (nil = the shared
	// process pool).
	Pool *pool.Pool
	// Rec receives per-batch observability events (one obs "epoch" per
	// dispatched micro-batch); nil = no recording.
	Rec obs.Recorder
	// Plan is the serving-path fault plan (zero Plan = healthy). Drops
	// discard admitted requests after compute; stragglers stretch a
	// worker-share of batch dispatches by the plan's factor.
	Plan chaos.Plan
	// ChaosSeed seeds the plan's deterministic fate streams.
	ChaosSeed int64
	// Tracer, when non-nil, opens a request-level span trace per admitted
	// prediction: admission, queue wait, batch assembly, scoring (with
	// per-worker shards), chaos stalls and completion all become named
	// spans rooted at the request's trace ID. Nil = no tracing, no cost
	// beyond nil checks.
	Tracer *span.Tracer
	// SLO, when non-nil, folds every request outcome (end-to-end latency,
	// server-side errors) into multi-window burn-rate objectives surfaced
	// at /slo and in /metrics. Client errors (ErrBadFeatures) are not
	// recorded: they spend no server budget.
	SLO *span.SLO
	// Quantized scores batches through the int8 quantised weights (DESIGN
	// §14) when the served model supports it (model.QuantScorer — the
	// linear models do, the MLP does not; unsupported models silently keep
	// the float64 path and Config() reports Quantized=false). The store is
	// switched to attach the int8 representation at every publish.
	Quantized bool
}

// withDefaults returns cfg with every unset knob at its default.
func (cfg Config) withDefaults() Config {
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 64
	}
	if cfg.MaxDelay <= 0 {
		cfg.MaxDelay = 2 * time.Millisecond
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 8 * cfg.MaxBatch
	}
	if cfg.Pool == nil {
		cfg.Pool = pool.Default()
	}
	if cfg.Workers <= 0 || cfg.Workers > cfg.Pool.Size() {
		cfg.Workers = cfg.Pool.Size()
	}
	if cfg.Grain <= 0 {
		cfg.Grain = 16
	}
	return cfg
}

// Core is the transport-independent serving engine: admission queue,
// micro-batcher, snapshot store and stats. Server wraps it with HTTP;
// cmd/sgdload drives it directly for the batching A/B measurement.
type Core struct {
	cfg    Config
	store  *Store
	scorer model.Scorer
	quant  model.QuantScorer // non-nil iff cfg.Quantized
	stats  *Stats
	rec    obs.Recorder
	faults *faults
	tracer *span.Tracer
	slo    *span.SLO

	queue    chan *request
	scratch  sync.Pool // of model.Scratch for the served model
	reqPool  sync.Pool // of *request
	stop     chan struct{}
	done     chan struct{}
	stopOnce sync.Once
}

// NewCore builds and starts the serving core for one model. The store may
// already hold a snapshot (offline serving) or be filled later by a Trainer
// (online serving); predictions before the first publish fail with
// ErrNoModel. The returned core's dispatcher goroutine runs until Close.
func NewCore(scorer model.Scorer, store *Store, cfg Config) *Core {
	cfg = cfg.withDefaults()
	var quant model.QuantScorer
	if cfg.Quantized {
		if qs, ok := scorer.(model.QuantScorer); ok {
			quant = qs
			store.SetQuantize(true)
			// A snapshot published before quantised mode was switched on
			// (offline serving) carries no int8 twin, and snapshots are
			// immutable — so republish a quantised copy under the next
			// version instead of mutating it in place.
			if sn := store.Load(); sn != nil && sn.Quant == nil && len(sn.Weights) > 0 {
				requant := *sn
				requant.PublishedUnixNano = 0
				store.Publish(&requant)
			}
		} else {
			cfg.Quantized = false // e.g. MLP: score is nonlinear in w
		}
	}
	c := &Core{
		quant:  quant,
		cfg:    cfg,
		store:  store,
		scorer: scorer,
		stats:  newStats(store),
		rec:    obs.Or(cfg.Rec),
		faults: newFaults(cfg.Plan, cfg.ChaosSeed, cfg.Workers),
		tracer: cfg.Tracer,
		slo:    cfg.SLO,
		queue:  make(chan *request, cfg.QueueDepth),
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	c.scratch.New = func() any { return scorer.NewScratch() }
	c.reqPool.New = func() any { return &request{done: make(chan struct{}, 1)} }
	go c.dispatch()
	return c
}

// Store returns the snapshot store the core serves from.
func (c *Core) Store() *Store { return c.store }

// Stats returns the live serving statistics.
func (c *Core) Stats() *Stats { return c.stats }

// Config returns the effective (defaulted) configuration.
func (c *Core) Config() Config { return c.cfg }

// Tracer returns the request tracer (nil when tracing is off).
func (c *Core) Tracer() *span.Tracer { return c.tracer }

// SLO returns the burn-rate engine (nil when no objectives are configured).
func (c *Core) SLO() *span.SLO { return c.slo }

// errKind names a serving error for trace records ("" for success); the
// stable short forms appear in TraceRec.Err and keep-reason decisions.
func errKind(err error) string {
	switch {
	case err == nil:
		return ""
	case errors.Is(err, ErrOverloaded):
		return "overloaded"
	case errors.Is(err, ErrNoModel):
		return "no_model"
	case errors.Is(err, ErrInjectedDrop):
		return "injected_drop"
	case errors.Is(err, ErrBadFeatures):
		return "bad_features"
	case errors.Is(err, ErrClosed):
		return "closed"
	default:
		return "internal"
	}
}

// Close stops the dispatcher; queued requests are failed with ErrClosed.
// Double Close is safe.
func (c *Core) Close() {
	c.stopOnce.Do(func() { close(c.stop) })
	<-c.done
}
