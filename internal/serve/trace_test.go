package serve

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/model"
	"repro/internal/pool"
	"repro/internal/span"
)

// leakCheck snapshots the goroutine count and returns an assertion that the
// count returned to the baseline, retrying for up to half a second so
// goroutines mid-teardown (dispatcher drain, trainer exit) get to park. The
// shared default pool is primed first: its long-lived workers are part of
// every baseline, not a leak.
func leakCheck(t *testing.T) func() {
	t.Helper()
	pool.Default()
	before := runtime.NumGoroutine()
	return func() {
		t.Helper()
		var after int
		for i := 0; i < 100; i++ {
			after = runtime.NumGoroutine()
			if after <= before {
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
		t.Errorf("goroutine leak: %d before, %d after", before, after)
	}
}

// traceCore builds a fully instrumented core: sample-everything tracer
// exporting into buf, plus an SLO engine with short windows.
func traceCore(t *testing.T, buf *bytes.Buffer, cfg Config) (*Core, *span.Tracer, *span.Writer) {
	t.Helper()
	w := span.NewWriter(buf)
	tracer := span.NewTracer(span.Config{SampleRate: 1, Seed: 11}, w)
	objs, err := span.ParseObjectives("latency<=1s@99,errors@99.9")
	if err != nil {
		t.Fatal(err)
	}
	cfg.Tracer = tracer
	cfg.SLO = span.NewSLO(span.SLOConfig{Objectives: objs, FastWindow: time.Minute})
	return NewCore(model.NewLR(2), lrStore([]float64{1, 1}), cfg), tracer, w
}

// TestPredictEmitsSpanChain: a traced request exports the full contiguous
// attribution chain and the span offsets tile the trace wall time.
func TestPredictEmitsSpanChain(t *testing.T) {
	var buf bytes.Buffer
	c, tracer, w := traceCore(t, &buf, Config{MaxBatch: 4, MaxDelay: 200 * time.Microsecond})
	res, err := c.PredictTraced([]int32{0}, []float64{1}, 0xbeef)
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if res.Trace != "000000000000beef" {
		t.Fatalf("result trace = %q", res.Trace)
	}
	if st := tracer.Stats(); st.Started != 1 || st.Kept != 1 {
		t.Fatalf("tracer stats = %+v", st)
	}
	recs, err := span.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("want 1 exported trace, got %d", len(recs))
	}
	rec := recs[0]
	names := map[string]span.SpanRec{}
	for _, s := range rec.Spans {
		names[s.Name] = s
	}
	for _, want := range []string{"admission", "queue_wait", "batch_assembly", "score", "finalize", "resume", "score/shard"} {
		if _, ok := names[want]; !ok {
			t.Fatalf("missing span %q in %v", want, rec.Spans)
		}
	}
	if names["score/shard"].Parent != "score" {
		t.Fatalf("shard parent = %q", names["score/shard"].Parent)
	}
	// The top-level chain must cover (nearly) the whole trace: each span
	// starts where the previous ended, so summed top-level durations ≈ the
	// trace duration.
	var top float64
	for _, s := range rec.Spans {
		if s.Parent == "" {
			top += s.DurUS
		}
	}
	if top < 0.95*rec.DurUS {
		t.Fatalf("top-level spans cover %.1f of %.1f µs (<95%%)", top, rec.DurUS)
	}
	// SLO saw the request and stays quiet.
	rep := c.SLO().Snapshot()
	if rep.Alerting {
		t.Fatalf("healthy run alerting: %+v", rep)
	}
	if rep.Objectives[0].FastTotal != 1 {
		t.Fatalf("SLO window total = %d, want 1", rep.Objectives[0].FastTotal)
	}
}

// TestChaosFaultAnnotatesSpans: injected drops mark the absorbing span and
// force retention; the SLO burn rate sees the failures.
func TestChaosFaultAnnotatesSpans(t *testing.T) {
	var buf bytes.Buffer
	c, _, w := traceCore(t, &buf, Config{
		MaxBatch: 1, Plan: chaos.Plan{DropFrac: 1}, ChaosSeed: 7,
	})
	for i := 0; i < 3; i++ {
		if _, err := c.PredictTraced([]int32{0}, []float64{1}, 0); err != ErrInjectedDrop {
			t.Fatalf("err = %v, want ErrInjectedDrop", err)
		}
	}
	slo := c.SLO()
	c.Close()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	recs, err := span.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("want 3 traces, got %d", len(recs))
	}
	for _, rec := range recs {
		if rec.Keep != span.KeepError || rec.Err != "injected_drop" || rec.Fault != "drop" {
			t.Fatalf("dropped trace = keep=%q err=%q fault=%q", rec.Keep, rec.Err, rec.Fault)
		}
		found := false
		for _, s := range rec.Spans {
			if s.Name == "finalize" && s.Fault == "drop" {
				found = true
			}
		}
		if !found {
			t.Fatalf("no finalize span carries the drop fault: %v", rec.Spans)
		}
	}
	if rep := slo.Snapshot(); rep.Objectives[1].FastBad != 3 {
		t.Fatalf("SLO errors = %d, want 3", rep.Objectives[1].FastBad)
	}
}

// TestHTTPTracePropagation: X-Trace-Id round-trips through the handler, /slo
// answers, and /metrics carries the span, SLO and cumulative histogram
// families.
func TestHTTPTracePropagation(t *testing.T) {
	var buf bytes.Buffer
	c, _, _ := traceCore(t, &buf, Config{MaxBatch: 4, MaxDelay: 100 * time.Microsecond})
	defer c.Close()
	h := NewServer(c).Handler()

	req := httptest.NewRequest("POST", "/predict", strings.NewReader(`{"indices":[0],"values":[1]}`))
	req.Header.Set("X-Trace-Id", "00000000000000ff")
	rw := httptest.NewRecorder()
	h.ServeHTTP(rw, req)
	if rw.Code != 200 {
		t.Fatalf("predict status %d: %s", rw.Code, rw.Body)
	}
	if got := rw.Header().Get("X-Trace-Id"); got != "00000000000000ff" {
		t.Fatalf("response X-Trace-Id = %q", got)
	}
	var pred struct {
		Trace string `json:"trace"`
	}
	if err := json.Unmarshal(rw.Body.Bytes(), &pred); err != nil || pred.Trace != "00000000000000ff" {
		t.Fatalf("body trace = %q (err %v)", pred.Trace, err)
	}

	rw = httptest.NewRecorder()
	h.ServeHTTP(rw, httptest.NewRequest("GET", "/slo", nil))
	if rw.Code != 200 {
		t.Fatalf("/slo status %d", rw.Code)
	}
	var rep span.Report
	if err := json.Unmarshal(rw.Body.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Objectives) != 2 || rep.Alerting {
		t.Fatalf("/slo report = %+v", rep)
	}

	rw = httptest.NewRecorder()
	h.ServeHTTP(rw, httptest.NewRequest("GET", "/metrics", nil))
	body := rw.Body.String()
	for _, want := range []string{
		"sgd_span_traces_total",
		`sgd_span_kept_total{reason="head"}`,
		"sgd_slo_burn_rate{objective=",
		"sgd_serve_request_duration_seconds_bucket{le=",
		"sgd_serve_request_duration_seconds_count",
		`sgd_serve_batch_size_bucket{le="+Inf"}`,
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q", want)
		}
	}
}

// TestUntracedCoreUnchanged: a core without tracer/SLO serves exactly as
// before — no trace field, /slo answers with an empty report.
func TestUntracedCoreUnchanged(t *testing.T) {
	c := NewCore(model.NewLR(2), lrStore([]float64{1, 1}), Config{MaxBatch: 1})
	defer c.Close()
	res, err := c.Predict([]int32{0}, []float64{1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace != "" {
		t.Fatalf("untraced result has trace %q", res.Trace)
	}
	rw := httptest.NewRecorder()
	NewServer(c).Handler().ServeHTTP(rw, httptest.NewRequest("GET", "/slo", nil))
	if rw.Code != 200 {
		t.Fatalf("/slo status %d", rw.Code)
	}
}
