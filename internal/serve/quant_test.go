package serve

import (
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/model"
)

// quantScoreOf computes the expected int8-path score of one sparse request
// against a weight vector, mirroring QuantizedWeights.RowDot term for term
// (two-way unrolled, val·scale·code order) so the comparison is bitwise.
func quantScoreOf(w []float64, cols []int32, vals []float64) float64 {
	qw := model.Quantize(w)
	var s0, s1 float64
	k := 0
	for ; k+2 <= len(cols); k += 2 {
		c0, c1 := cols[k], cols[k+1]
		s0 += vals[k] * qw.Scales[c0>>6] * float64(qw.Q[c0])
		s1 += vals[k+1] * qw.Scales[c1>>6] * float64(qw.Q[c1])
	}
	if k < len(cols) {
		c := cols[k]
		s0 += vals[k] * qw.Scales[c>>6] * float64(qw.Q[c])
	}
	return s0 + s1
}

// TestQuantizedPredictMatchesInt8Path: a quantised core scores exactly through
// the int8 representation (bitwise equal to the dequantised dot), and the
// delta from the float64 score stays inside the analytic per-row bound.
func TestQuantizedPredictMatchesInt8Path(t *testing.T) {
	const dim = 256
	rng := rand.New(rand.NewSource(31))
	w := make([]float64, dim)
	for i := range w {
		w[i] = rng.NormFloat64() * 0.4
	}
	store := NewStore()
	c := NewCore(model.NewLR(dim), store, Config{MaxBatch: 1, Quantized: true})
	defer c.Close()
	if !c.Config().Quantized {
		t.Fatal("LR core did not enable the quantised path")
	}
	store.Publish(&Snapshot{Model: "lr", Dim: dim, Weights: w})
	sn := store.Load()
	if sn.Quant == nil {
		t.Fatal("publish through a quantised store attached no int8 twin")
	}

	qw := sn.Quant
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(12)
		cols := make([]int32, 0, n)
		vals := make([]float64, 0, n)
		seen := map[int32]bool{}
		for len(cols) < n {
			cj := int32(rng.Intn(dim))
			if seen[cj] {
				continue
			}
			seen[cj] = true
			cols = append(cols, cj)
			vals = append(vals, rng.NormFloat64())
		}
		res, err := c.Predict(cols, vals)
		if err != nil {
			t.Fatal(err)
		}
		if want := quantScoreOf(w, cols, vals); res.Score != want {
			t.Fatalf("trial %d: quantised score %g != int8 dot %g", trial, res.Score, want)
		}
		var ref, bound float64
		for k, cj := range cols {
			ref += vals[k] * w[cj]
			bound += math.Abs(vals[k]) * qw.Scales[int(cj)>>6] / 2
		}
		if d := math.Abs(res.Score - ref); d > bound*(1+1e-9)+1e-12 {
			t.Fatalf("trial %d: quantised delta %g exceeds analytic bound %g", trial, d, bound)
		}
	}
	if qb := c.Stats().Snapshot().QuantBatches; qb == 0 {
		t.Error("quant_batches counter stayed zero after quantised predictions")
	}
}

// TestQuantizedCoreRepublishesExistingSnapshot: building a quantised core on
// a store that already holds a float-only snapshot (offline serving) installs
// a quantised copy under a fresh version instead of serving without codes.
func TestQuantizedCoreRepublishesExistingSnapshot(t *testing.T) {
	w := []float64{1, -2, 0.5, 4}
	store := lrStore(w) // version 1, no Quant: published before quantised mode
	c := NewCore(model.NewLR(4), store, Config{MaxBatch: 1, Quantized: true})
	defer c.Close()

	sn := store.Load()
	if sn.Quant == nil {
		t.Fatal("pre-existing snapshot was not requantised")
	}
	if sn.Version != 2 {
		t.Fatalf("requantised snapshot version = %d, want 2 (republish, not mutation)", sn.Version)
	}
	for i := range w {
		if sn.Weights[i] != w[i] {
			t.Fatalf("republish changed float weights at %d: %g != %g", i, sn.Weights[i], w[i])
		}
	}
	res, err := c.Predict([]int32{0, 2}, []float64{3, 2})
	if err != nil {
		t.Fatal(err)
	}
	if want := quantScoreOf(w, []int32{0, 2}, []float64{3, 2}); res.Score != want {
		t.Fatalf("score %g != expected quantised score %g", res.Score, want)
	}
}

// TestQuantizedFallbackNonQuantScorer: the MLP's score is nonlinear in w, so
// it cannot serve int8 weight codes — the core silently keeps the float path
// and reports Quantized=false rather than failing.
func TestQuantizedFallbackNonQuantScorer(t *testing.T) {
	m := model.NewMLP([]int{4, 3, 2})
	w := m.InitParams(3)
	store := NewStore()
	store.Publish(&Snapshot{Model: "mlp", Dim: 4, Weights: w})
	c := NewCore(m, store, Config{MaxBatch: 1, Quantized: true})
	defer c.Close()

	if c.Config().Quantized {
		t.Fatal("MLP core reports Quantized=true; its score is nonlinear in w")
	}
	if store.Load().Quant != nil {
		t.Fatal("store attached int8 codes for a model that cannot use them")
	}
	res, err := c.Predict([]int32{0, 2}, []float64{1, -0.5})
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(res.Score) {
		t.Fatal("float fallback produced NaN")
	}
	if qb := c.Stats().Snapshot().QuantBatches; qb != 0 {
		t.Fatalf("quant_batches = %d on the float fallback path, want 0", qb)
	}
}

// TestQuantizedPrePublishSnapshotFallsBackToFloat: a snapshot that reaches a
// quantised core without int8 codes (published straight to the store after
// SetQuantize was flipped off again, or loaded from disk) is served through
// the float path for that version — never stale codes from another version.
func TestQuantizedPrePublishSnapshotFallsBackToFloat(t *testing.T) {
	const dim = 64
	w := make([]float64, dim)
	for i := range w {
		w[i] = float64(i%7) - 3
	}
	store := NewStore()
	c := NewCore(model.NewLR(dim), store, Config{MaxBatch: 1, Quantized: true})
	defer c.Close()

	// Sneak a float-only snapshot past the store's quantise hook.
	store.SetQuantize(false)
	store.Publish(&Snapshot{Model: "lr", Dim: dim, Weights: w})
	if store.Load().Quant != nil {
		t.Fatal("test setup: snapshot unexpectedly carries codes")
	}
	res, err := c.Predict([]int32{1, 5}, []float64{2, -1})
	if err != nil {
		t.Fatal(err)
	}
	if want := 2*w[1] - w[5]; res.Score != want {
		t.Fatalf("float fallback score %g, want exact float dot %g", res.Score, want)
	}
}

// TestQuantizedHotSwapNoVersionSkew hammers a quantised core with publishes
// under concurrent predictions (run under -race this is the satellite's
// concurrent quantised hot-swap check). Both representations ride one
// snapshot pointer, so every served score must equal the quantised dot of
// the exact version the result reports — a score computed from version v's
// codes but stamped with version v' would be skew.
func TestQuantizedHotSwapNoVersionSkew(t *testing.T) {
	const (
		dim       = 64
		readers   = 8
		publishes = 150
	)
	store := NewStore()
	c := NewCore(model.NewLR(dim), store, Config{MaxBatch: 8, MaxDelay: 100 * time.Microsecond, Quantized: true})
	defer c.Close()

	cols := make([]int32, dim)
	vals := make([]float64, dim)
	for i := range cols {
		cols[i], vals[i] = int32(i), 1
	}

	// Version v publishes uniform weights w_i = v + 0.5; precompute each
	// version's expected quantised score over the ones-vector probe so the
	// readers can verify score-version consistency exactly.
	expected := make([]float64, publishes+1)
	publish := func(v int64) {
		w := make([]float64, dim)
		for i := range w {
			w[i] = float64(v) + 0.5
		}
		expected[v] = quantScoreOf(w, cols, vals)
		if got := store.Publish(&Snapshot{Model: "lr", Dim: dim, Weights: w}); got != v {
			t.Fatalf("publish got version %d, want %d", got, v)
		}
	}
	publish(1)

	var stopReaders atomic.Bool
	var checked atomic.Int64
	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			lastVer := int64(0)
			for !stopReaders.Load() {
				res, err := c.Predict(cols, vals)
				if err != nil {
					t.Errorf("predict: %v", err)
					return
				}
				if res.Version < 1 || res.Version > publishes {
					t.Errorf("impossible version %d", res.Version)
					return
				}
				if res.Score != expected[res.Version] {
					t.Errorf("version skew: score %g at version %d, want %g (codes from another version)",
						res.Score, res.Version, expected[res.Version])
					return
				}
				if res.Version < lastVer {
					t.Errorf("version regressed: %d after %d", res.Version, lastVer)
					return
				}
				lastVer = res.Version
				checked.Add(1)
			}
		}()
	}
	for v := int64(2); v <= publishes; v++ {
		publish(v)
		time.Sleep(50 * time.Microsecond)
	}
	stopReaders.Store(true)
	wg.Wait()
	if checked.Load() == 0 {
		t.Fatal("no predictions completed; the hammer did not exercise the swap path")
	}
	if qb := c.Stats().Snapshot().QuantBatches; qb == 0 {
		t.Error("no batch scored through the quantised path during the hammer")
	}
	t.Logf("checked %d quantised predictions across %d publishes, 0 skewed", checked.Load(), publishes)
}
