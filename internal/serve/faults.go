package serve

import (
	"time"

	"repro/internal/chaos"
	"repro/internal/obs"
)

// faults threads a chaos.Plan through the serving path, reusing the training
// harness's deterministic per-worker fate streams:
//
//   - each dispatched micro-batch is attributed round-robin to one of
//     Workers virtual serving workers; a batch landing on a straggler
//     worker takes StragglerFactor× its compute time (the extra service
//     time is slept, so the degradation is visible to real load);
//   - each request in a batch draws a fate from the batch's stream:
//     FateDrop discards the computed prediction (ErrInjectedDrop, the
//     serving analogue of a lost update).
//
// A nil *faults (healthy plan) is valid and makes every method a cheap
// no-op, mirroring the obs.Nop discipline. Fault firings drain into the
// chaos_* obs counters per batch, so sgdtrace and /metrics report them next
// to the serving phases.
type faults struct {
	plan    chaos.Plan
	inj     *chaos.Injector
	streams []*chaos.Stream
	seq     int
}

// newFaults builds the serving fault layer, or nil for an inactive plan.
func newFaults(plan chaos.Plan, seed int64, workers int) *faults {
	if !plan.Active() {
		return nil
	}
	if workers < 1 {
		workers = 1
	}
	f := &faults{plan: plan, inj: chaos.NewInjector(plan, seed)}
	for k := 0; k < workers; k++ {
		f.streams = append(f.streams, f.inj.Worker(k))
	}
	return f
}

// stream attributes the next batch to a virtual worker and returns its fate
// stream (nil when healthy). Dispatcher-owned; not safe for concurrent use.
func (f *faults) stream() *chaos.Stream {
	if f == nil {
		return nil
	}
	s := f.streams[f.seq%len(f.streams)]
	f.seq++
	return s
}

// stretch returns the extra service time a straggler batch owes:
// (factor-1)× its compute time, 0 for healthy workers or plans.
func (f *faults) stretch(s *chaos.Stream, compute time.Duration) time.Duration {
	if f == nil || s == nil || !s.Straggler() {
		return 0
	}
	return time.Duration(float64(compute) * (f.plan.StragglerFactor - 1))
}

// dropped draws one request's fate and reports whether the plan discards it.
func (f *faults) dropped(s *chaos.Stream) bool {
	if f == nil || s == nil {
		return false
	}
	return s.Fate() == chaos.FateDrop
}

// drain flushes the per-stream tallies and folds them into rec's chaos
// counters; called once per batch by the dispatcher.
func (f *faults) drain(rec obs.Recorder) {
	if f == nil {
		return
	}
	for _, s := range f.streams {
		s.Flush()
	}
	f.inj.Drain(rec)
}
