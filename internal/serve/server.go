package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/internal/span"
)

// Server is the HTTP/JSON transport over a Core:
//
//	POST /predict  {"indices":[3,17],"values":[0.5,1]} | {"dense":[...]}
//	               | {"instances":[{...},{...}]}
//	GET  /healthz  served model identity + effective serving config
//	GET  /stats    Stats report as JSON
//	GET  /slo      burn-rate evaluation of the configured objectives
//	GET  /metrics  Prometheus text (serving stats + any extra families)
//
// Admission control surfaces as HTTP 429 with a Retry-After header; an
// unpublished model as 503; malformed features as 400. When the core runs
// with a Tracer, a single-instance /predict honours an X-Trace-Id request
// header (16 hex digits) and every prediction echoes its trace ID in the
// X-Trace-Id response header and the "trace" body field.
type Server struct {
	core  *Core
	extra func() string // appended to /metrics (e.g. the obs aggregator)

	httpSrv *http.Server
	ln      net.Listener
}

// NewServer wraps a core with the HTTP transport.
func NewServer(core *Core) *Server { return &Server{core: core} }

// SetExtraMetrics registers an extra Prometheus-text producer appended to
// /metrics (cmd/sgdserve hooks the training-side obs aggregator here).
func (s *Server) SetExtraMetrics(f func() string) { s.extra = f }

// instanceJSON is one request row: sparse (indices+values) or dense.
type instanceJSON struct {
	Indices []int32   `json:"indices,omitempty"`
	Values  []float64 `json:"values,omitempty"`
	Dense   []float64 `json:"dense,omitempty"`
}

// predictJSON is the /predict body: one instance inline, or several under
// "instances".
type predictJSON struct {
	instanceJSON
	Instances []instanceJSON `json:"instances,omitempty"`
}

// predictionJSON is one prediction plus the queue wait in microseconds.
type predictionJSON struct {
	Result
	QueueMicros int64 `json:"queue_us"`
}

// features converts an instance to the cols/vals pair Predict takes.
func (in *instanceJSON) features() ([]int32, []float64, error) {
	if in.Dense != nil {
		if in.Indices != nil || in.Values != nil {
			return nil, nil, fmt.Errorf("give either dense or indices/values, not both")
		}
		cols := make([]int32, len(in.Dense))
		for i := range cols {
			cols[i] = int32(i)
		}
		return cols, in.Dense, nil
	}
	if len(in.Indices) != len(in.Values) {
		return nil, nil, fmt.Errorf("indices and values lengths differ (%d vs %d)", len(in.Indices), len(in.Values))
	}
	return in.Indices, in.Values, nil
}

// Handler returns the route mux (exported so tests and in-process callers
// can drive the transport without a socket).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/predict", s.handlePredict)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/slo", s.handleSLO)
	mux.HandleFunc("/metrics", s.handleMetrics)
	return mux
}

// statusOf maps serving errors to HTTP status codes.
func statusOf(err error) int {
	switch {
	case errors.Is(err, ErrOverloaded):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrBadFeatures):
		return http.StatusBadRequest
	case errors.Is(err, ErrNoModel), errors.Is(err, ErrInjectedDrop), errors.Is(err, ErrClosed):
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

func writeError(w http.ResponseWriter, err error) {
	code := statusOf(err)
	if code == http.StatusTooManyRequests {
		w.Header().Set("Retry-After", "1")
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var body predictJSON
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 8<<20))
	if err := dec.Decode(&body); err != nil {
		writeError(w, fmt.Errorf("%w: %v", ErrBadFeatures, err))
		return
	}
	if len(body.Instances) == 0 {
		cols, vals, err := body.features()
		if err != nil {
			writeError(w, fmt.Errorf("%w: %v", ErrBadFeatures, err))
			return
		}
		// A client-supplied trace ID stitches the server-side span tree to
		// the caller's own records (cmd/sgdload's closed-loop workers).
		id, _ := span.ParseID(r.Header.Get("X-Trace-Id"))
		res, err := s.core.PredictTraced(cols, vals, id)
		if res.Trace != "" {
			w.Header().Set("X-Trace-Id", res.Trace)
		}
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, predictionJSON{Result: res, QueueMicros: res.QueueWait.Microseconds()})
		return
	}
	// Multi-instance bodies score concurrently so they can share
	// micro-batches — a client-side batch is not serialised into
	// single-request dispatches.
	preds := make([]predictionJSON, len(body.Instances))
	errs := make([]error, len(body.Instances))
	var wg sync.WaitGroup
	for i := range body.Instances {
		cols, vals, err := body.Instances[i].features()
		if err != nil {
			errs[i] = fmt.Errorf("%w: instance %d: %v", ErrBadFeatures, i, err)
			continue
		}
		wg.Add(1)
		go func(i int, cols []int32, vals []float64) {
			defer wg.Done()
			res, err := s.core.Predict(cols, vals)
			preds[i] = predictionJSON{Result: res, QueueMicros: res.QueueWait.Microseconds()}
			errs[i] = err
		}(i, cols, vals)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			writeError(w, err)
			return
		}
	}
	writeJSON(w, map[string]any{"predictions": preds})
}

// Health is the /healthz payload; cmd/sgdload embeds it in reports so two
// latency reports are only compared between identical server fingerprints.
type Health struct {
	Status         string  `json:"status"` // "ok" or "no_model"
	Model          string  `json:"model,omitempty"`
	ModelVersion   int64   `json:"model_version,omitempty"`
	Epoch          int     `json:"epoch,omitempty"`
	Loss           float64 `json:"loss,omitempty"`
	Fingerprint    string  `json:"fingerprint,omitempty"`     // human-readable
	FingerprintKey string  `json:"fingerprint_key,omitempty"` // core.Fingerprint.Key
	MaxBatch       int     `json:"max_batch"`
	MaxDelayMicros int64   `json:"max_delay_us"`
	QueueDepth     int     `json:"queue_depth"`
	Workers        int     `json:"workers"`
	ChaosPlan      string  `json:"chaos_plan,omitempty"`
	// Quantized reports whether batches score through the int8 quantised
	// path (false when the served model cannot, e.g. MLP).
	Quantized bool `json:"quantized,omitempty"`
}

// health builds the current Health payload.
func (s *Server) health() Health {
	cfg := s.core.Config()
	h := Health{
		Status:         "no_model",
		MaxBatch:       cfg.MaxBatch,
		MaxDelayMicros: cfg.MaxDelay.Microseconds(),
		QueueDepth:     cfg.QueueDepth,
		Workers:        cfg.Workers,
		Quantized:      cfg.Quantized,
	}
	if cfg.Plan.Active() {
		h.ChaosPlan = cfg.Plan.String()
	}
	if sn := s.core.Store().Load(); sn != nil {
		h.Status = "ok"
		h.Model = sn.Model
		h.ModelVersion = sn.Version
		h.Epoch = sn.Epoch
		h.Loss = sn.Loss
		h.Fingerprint = sn.Fingerprint.String()
		h.FingerprintKey = sn.Fingerprint.Key()
	}
	return h
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	h := s.health()
	if h.Status != "ok" {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		json.NewEncoder(w).Encode(h)
		return
	}
	writeJSON(w, h)
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, s.core.Stats().Snapshot())
}

// handleSLO answers the burn-rate evaluation. With no objectives configured
// the endpoint still answers (an empty report), so probers need not know the
// server's configuration.
func (s *Server) handleSLO(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, s.core.SLO().Snapshot())
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	var b strings.Builder
	s.core.Stats().WriteProm(&b)
	s.core.Tracer().WriteProm(&b)
	s.core.SLO().WriteProm(&b)
	if s.extra != nil {
		b.WriteString(s.extra())
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	fmt.Fprint(w, b.String())
}

// Start listens on addr (":0" picks a free port) and serves in the
// background, returning the bound address.
func (s *Server) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.ln = ln
	s.httpSrv = &http.Server{Handler: s.Handler(), ReadHeaderTimeout: 10 * time.Second}
	go s.httpSrv.Serve(ln) //nolint:errcheck // Shutdown's ErrServerClosed
	return ln.Addr().String(), nil
}

// Shutdown gracefully stops the HTTP listener (the Core keeps running until
// its own Close, so in-flight batches complete).
func (s *Server) Shutdown(ctx context.Context) error {
	if s.httpSrv == nil {
		return nil
	}
	return s.httpSrv.Shutdown(ctx)
}
