package serve

import (
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/model"
)

// Trainer continuously trains a model with any core.Engine (typically
// Hogwild) and publishes weight snapshots to a Store — the online-learning
// mode of cmd/sgdserve. Between epochs RunEpoch has joined its workers, so
// copying the vector races with nothing; the copy is what gets published,
// and concurrent readers keep scoring against the previous immutable
// snapshot until the atomic swap. Publication cadence is per-epoch (or
// every PublishEvery epochs), which bounds snapshot staleness by one
// epoch's wall time.
type Trainer struct {
	// Engine advances W by one epoch per RunEpoch call.
	Engine core.Engine
	// Model/Data identify what is being trained (loss evaluation, snapshot
	// metadata).
	Model model.Model
	Data  *data.Dataset
	// Store receives the published snapshots.
	Store *Store
	// W is the live training vector the engine updates in place.
	W []float64
	// PublishEvery is the epoch count between publishes (<=1: every
	// epoch).
	PublishEvery int
	// EvalEvery is the epoch count between MeanLoss evaluations recorded
	// into the published snapshot (0: never evaluate; the loss field then
	// stays at its last known value). Evaluation is host work outside the
	// serving path.
	EvalEvery int
	// MaxEpochs stops training after this many epochs (0: run until the
	// stop channel closes).
	MaxEpochs int
	// Meta seeds the published snapshots' identity (model name, dim,
	// fingerprint); Version/Weights/PublishedUnixNano are managed by the
	// store.
	Meta Snapshot

	// Epochs counts completed epochs (readable after Run returns).
	Epochs int
}

// Run trains until MaxEpochs or stop closes, publishing snapshots along the
// way. It blocks; callers run it on their own goroutine for online serving.
// The first publish happens before the first epoch, so a freshly started
// online server answers immediately (with the initial model) instead of
// returning ErrNoModel until epoch one completes.
func (t *Trainer) Run(stop <-chan struct{}) {
	publishEvery := t.PublishEvery
	if publishEvery < 1 {
		publishEvery = 1
	}
	meta := t.Meta
	if meta.Model == "" {
		meta.Model = t.Model.Name()
	}
	if meta.Dim == 0 {
		meta.Dim = t.Data.D()
	}
	t.Store.PublishWeights(t.W, meta)
	for epoch := 0; t.MaxEpochs == 0 || epoch < t.MaxEpochs; epoch++ {
		select {
		case <-stop:
			return
		default:
		}
		t.Engine.RunEpoch(t.W)
		t.Epochs = epoch + 1
		if t.EvalEvery > 0 && (epoch+1)%t.EvalEvery == 0 {
			meta.Loss = model.MeanLoss(t.Model, t.W, t.Data)
		}
		if (epoch+1)%publishEvery == 0 {
			meta.Epoch = epoch + 1
			t.Store.PublishWeights(t.W, meta)
		}
	}
}
