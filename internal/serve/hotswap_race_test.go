package serve

import (
	"math"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/model"
)

// TestHotSwapNoTornReads hammers the snapshot store with publishes while
// concurrent predicts score dense examples. Every published weight vector is
// uniform — all elements equal float64(version) — so a torn read (a batch
// observing elements from two versions) would produce a score that is not an
// exact integer multiple of the feature count. Run under -race this is the
// PR's zero-torn-reads acceptance check.
func TestHotSwapNoTornReads(t *testing.T) {
	const (
		dim       = 64
		readers   = 8
		publishes = 200
	)
	store := NewStore()
	// publish installs a uniform weight vector whose value equals its
	// version, the invariant the readers verify.
	publish := func(v int64) {
		w := make([]float64, dim)
		for i := range w {
			w[i] = float64(v)
		}
		if got := store.Publish(&Snapshot{Model: "lr", Dim: dim, Weights: w}); got != v {
			t.Fatalf("publish got version %d, want %d", got, v)
		}
	}
	publish(1)

	cols := make([]int32, dim)
	vals := make([]float64, dim)
	for i := range cols {
		cols[i], vals[i] = int32(i), 1
	}

	c := NewCore(model.NewLR(dim), store, Config{MaxBatch: 8, MaxDelay: 100 * time.Microsecond})
	defer c.Close()

	var stopReaders atomic.Bool
	var torn atomic.Int64
	var checked atomic.Int64
	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			lastVer := int64(0)
			for !stopReaders.Load() {
				res, err := c.Predict(cols, vals)
				if err != nil {
					t.Errorf("predict: %v", err)
					return
				}
				// Uniform weights v over a ones-vector of length dim score
				// exactly v*dim; anything else is a torn model read.
				v := res.Score / dim
				if v != math.Trunc(v) || int64(v) != res.Version {
					torn.Add(1)
					t.Errorf("torn read: score %v at version %d (implies weights %v)",
						res.Score, res.Version, v)
					return
				}
				if res.Version < lastVer {
					t.Errorf("version regressed: %d after %d", res.Version, lastVer)
					return
				}
				lastVer = res.Version
				checked.Add(1)
			}
		}()
	}
	for v := int64(2); v <= publishes; v++ {
		publish(v)
		time.Sleep(50 * time.Microsecond)
	}
	stopReaders.Store(true)
	wg.Wait()
	if torn.Load() != 0 {
		t.Fatalf("%d torn reads (of %d checked)", torn.Load(), checked.Load())
	}
	if checked.Load() == 0 {
		t.Fatal("no predictions completed; the hammer did not exercise the swap path")
	}
	t.Logf("checked %d predictions across %d publishes, 0 torn", checked.Load(), publishes)
}

// TestOnlineTrainerPublishesWhileServing runs a real Hogwild trainer that
// publishes every epoch while concurrent clients predict — the full online
// serving path under the race detector — and checks that served versions are
// monotone and that training publishes actually landed mid-traffic.
func TestOnlineTrainerPublishesWhileServing(t *testing.T) {
	assertNoLeak := leakCheck(t)
	spec, err := data.Lookup("covtype")
	if err != nil {
		t.Fatal(err)
	}
	spec = spec.Scaled(400 / float64(spec.N))
	ds := data.Generate(spec)
	m := model.NewLR(ds.D())
	w := m.InitParams(1)
	eng := core.NewHogwild(m, ds, 0.05, 4)

	store := NewStore()
	tr := &Trainer{
		Engine: eng, Model: m, Data: ds, Store: store, W: w,
		PublishEvery: 1, EvalEvery: 8,
		Meta: Snapshot{Fingerprint: core.Fingerprint{
			Engine: eng.Name(), Model: m.Name(), Dataset: ds.Name,
			N: ds.N(), Threads: 4, Seed: 1,
		}},
	}
	c := NewCore(m, store, Config{MaxBatch: 16, MaxDelay: 200 * time.Microsecond})
	defer c.Close()

	// MaxEpochs is 0: the trainer publishes every epoch until stop closes,
	// which happens only after every reader finished its quota — so all
	// served traffic overlaps live publishes.
	stop := make(chan struct{})
	trainerDone := make(chan struct{})
	go func() { defer close(trainerDone); tr.Run(stop) }()

	// Wait for the pre-epoch publish so clients never see ErrNoModel.
	for store.Load() == nil {
		time.Sleep(100 * time.Microsecond)
	}

	cols := []int32{0, 1, 2}
	vals := []float64{1, -0.5, 2}
	var wg sync.WaitGroup
	var served atomic.Int64
	for r := 0; r < 6; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			lastVer := int64(0)
			for i := 0; i < 200; i++ {
				res, err := c.Predict(cols, vals)
				if err != nil {
					t.Errorf("predict during training: %v", err)
					return
				}
				if res.Version < lastVer {
					t.Errorf("served version regressed: %d after %d", res.Version, lastVer)
					return
				}
				lastVer = res.Version
				served.Add(1)
			}
		}()
	}
	wg.Wait()
	close(stop)
	<-trainerDone

	if tr.Epochs < 1 {
		t.Fatal("trainer completed no epochs while serving")
	}
	// Initial publish + one per completed epoch.
	if got := store.Swaps(); got != int64(tr.Epochs)+1 {
		t.Fatalf("swaps = %d, want %d (initial + per-epoch)", got, tr.Epochs+1)
	}
	if served.Load() != 6*200 {
		t.Fatalf("served %d predictions, want %d", served.Load(), 6*200)
	}
	sn := store.Load()
	if sn.Epoch != tr.Epochs {
		t.Fatalf("final snapshot epoch %d, want %d", sn.Epoch, tr.Epochs)
	}
	if tr.Epochs >= 8 && sn.Loss == 0 {
		t.Fatal("loss never evaluated despite EvalEvery epochs elapsing")
	}
	t.Logf("served %d predictions across %d publishes (%d epochs), final loss %.4f",
		served.Load(), store.Swaps(), tr.Epochs, sn.Loss)
	// Trainer stopped and core closed: every goroutine this test started
	// (trainer, dispatcher, readers) must be gone.
	c.Close()
	assertNoLeak()
}
