package serve

import (
	"sync"
	"testing"
	"time"

	"repro/internal/model"
	"repro/internal/obs"
)

// TestDeadlineFlushBoundsLatency trickles lone requests through a batcher
// with plenty of batch headroom. Each request's wall latency must land in
// [MaxDelay, MaxDelay + slack]: the deadline timer cannot fire early, and no
// request may wait (much) longer than the configured bound — the adaptive
// half of the batching contract.
func TestDeadlineFlushBoundsLatency(t *testing.T) {
	const maxDelay = 20 * time.Millisecond
	// Generous tail for CI schedulers; the assertion is about the bound's
	// order of magnitude, not scheduler jitter.
	const slack = 2 * time.Second
	c := NewCore(model.NewLR(2), lrStore([]float64{1, 1}), Config{
		MaxBatch: 64, MaxDelay: maxDelay,
	})
	defer c.Close()

	for i := 0; i < 5; i++ {
		start := time.Now()
		res, err := c.Predict([]int32{0}, []float64{1})
		elapsed := time.Since(start)
		if err != nil {
			t.Fatal(err)
		}
		if res.BatchSize != 1 {
			t.Fatalf("trickle request %d rode a batch of %d, want 1", i, res.BatchSize)
		}
		if elapsed < maxDelay-time.Millisecond {
			t.Fatalf("request %d returned after %v, before the %v deadline could fire", i, elapsed, maxDelay)
		}
		if elapsed > maxDelay+slack {
			t.Fatalf("request %d waited %v, exceeding MaxDelay %v + slack %v", i, elapsed, maxDelay, slack)
		}
	}
	rep := c.Stats().Snapshot()
	if rep.Batches != 5 || rep.Requests != 5 || rep.AvgBatch != 1 {
		t.Fatalf("stats = %+v, want 5 batches of 1", rep)
	}
}

// TestFullBatchFlushesBeforeDeadline proves the size trigger: with an hour
// deadline, MaxBatch concurrent requests must still return promptly, all in
// one micro-batch.
func TestFullBatchFlushesBeforeDeadline(t *testing.T) {
	const maxBatch = 4
	rec := obs.NewAggregator()
	run := rec.Run("serve", "test")
	c := NewCore(model.NewLR(2), lrStore([]float64{1, 1}), Config{
		MaxBatch: maxBatch, MaxDelay: time.Hour, Rec: run,
	})
	defer c.Close()

	var wg sync.WaitGroup
	results := make([]Result, maxBatch)
	errs := make([]error, maxBatch)
	for i := 0; i < maxBatch; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = c.Predict([]int32{0}, []float64{1})
		}(i)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("full batch did not flush before the deadline")
	}
	for i := 0; i < maxBatch; i++ {
		if errs[i] != nil {
			t.Fatalf("request %d: %v", i, errs[i])
		}
		if results[i].BatchSize != maxBatch {
			t.Fatalf("request %d rode a batch of %d, want %d", i, results[i].BatchSize, maxBatch)
		}
		if results[i].Version != results[0].Version {
			t.Fatal("requests of one batch scored against different snapshot versions")
		}
	}
	rep := c.Stats().Snapshot()
	if rep.Batches != 1 || rep.Requests != int64(maxBatch) || rep.MaxBatch != maxBatch {
		t.Fatalf("stats = %+v, want one batch of %d", rep, maxBatch)
	}
}

// TestUnbatchedConfigNeverGroups checks the MaxBatch=1 baseline the sgdload
// A/B report compares against: every request pays its own dispatch.
func TestUnbatchedConfigNeverGroups(t *testing.T) {
	c := NewCore(model.NewLR(2), lrStore([]float64{1, 1}), Config{MaxBatch: 1, QueueDepth: 64})
	defer c.Close()
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := c.Predict([]int32{1}, []float64{2})
			if err != nil {
				t.Error(err)
				return
			}
			if res.BatchSize != 1 {
				t.Errorf("batch size %d with batching disabled", res.BatchSize)
			}
		}()
	}
	wg.Wait()
	if rep := c.Stats().Snapshot(); rep.Batches != 32 {
		t.Fatalf("batches = %d, want 32", rep.Batches)
	}
}
