package serve

import (
	"time"

	"repro/internal/data"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/span"
	"repro/internal/sparse"
	"repro/internal/tensor"
)

// Result is one request's prediction.
type Result struct {
	// Label is the predicted class in {-1, +1} (sign of Score).
	Label float64 `json:"label"`
	// Score is the model's decision score (margin / log-odds; see
	// model.Scorer).
	Score float64 `json:"score"`
	// Prob is sigmoid(Score): the class-+1 probability for LR and MLP; for
	// SVM it is a monotone but uncalibrated confidence.
	Prob float64 `json:"prob"`
	// Version is the snapshot version the request was scored against.
	Version int64 `json:"model_version"`
	// BatchSize is how many requests rode in the same micro-batch.
	BatchSize int `json:"batch_size"`
	// Trace is the request's span trace ID (16 hex digits), set when the
	// core runs with a Tracer; it keys the exported span tree and echoes
	// back in the X-Trace-Id response header.
	Trace string `json:"trace,omitempty"`
	// QueueWait is time from admission to batch dispatch.
	QueueWait time.Duration `json:"-"`
}

// request is one queued prediction. Instances are recycled through
// Core.reqPool; the done channel (buffered 1) carries the completion signal
// across reuses.
type request struct {
	cols []int32
	vals []float64

	enqueued time.Time
	res      Result
	err      error
	done     chan struct{}

	// tr is the request's span trace (nil when tracing is off); doneAt is
	// stamped by the dispatcher just before the completion signal, so the
	// requester can close the attribution chain with a "resume" span
	// covering its own wake-up latency.
	tr     *span.Trace
	doneAt time.Time
}

// Predict scores one example (cols/vals are the sparse feature vector; for
// dense inputs pass cols 0..d-1) against the current snapshot, riding
// whatever micro-batch the dispatcher forms. It blocks until the batch
// flushes — at most MaxDelay plus the batch compute time — and is safe for
// arbitrary concurrent callers; that concurrency is exactly what fills
// batches.
func (c *Core) Predict(cols []int32, vals []float64) (Result, error) {
	return c.PredictTraced(cols, vals, 0)
}

// PredictTraced is Predict carrying a caller-supplied trace ID (0 = assign
// one), the in-process end of X-Trace-Id propagation. The request's span
// trace covers admission through wake-up; its outcome also lands in the SLO
// windows (client-side feature errors excluded — they spend no budget).
func (c *Core) PredictTraced(cols []int32, vals []float64, id span.ID) (Result, error) {
	sn := c.store.Load()
	if sn == nil {
		c.slo.Record(0, true)
		return Result{}, ErrNoModel
	}
	if len(cols) != len(vals) {
		return Result{}, ErrBadFeatures
	}
	for _, col := range cols {
		if col < 0 || int(col) >= sn.Dim {
			return Result{}, ErrBadFeatures
		}
	}
	start := time.Now()
	tr := c.tracer.Start("predict", id)
	r := c.reqPool.Get().(*request)
	r.cols, r.vals = cols, vals
	r.err = nil
	r.tr = tr
	r.doneAt = time.Time{}
	r.enqueued = time.Now()
	select {
	case c.queue <- r:
		c.stats.requests.Add(1)
		tr.Record("admission", "", tr.Epoch(), r.enqueued, -1, "")
	case <-c.stop:
		r.tr = nil
		c.reqPool.Put(r)
		c.slo.Record(time.Since(start).Seconds(), true)
		tr.Finish("closed")
		return Result{}, ErrClosed
	default:
		r.tr = nil
		c.reqPool.Put(r)
		c.stats.rejected.Add(1)
		c.rec.Add(obs.CounterServeRejected, 1)
		tr.Record("admission", "", tr.Epoch(), time.Now(), -1, "")
		c.slo.Record(time.Since(start).Seconds(), true)
		tr.Finish("overloaded")
		return Result{}, ErrOverloaded
	}
	select {
	case <-r.done:
		res, err := r.res, r.err
		c.finishRequest(tr, start, r.doneAt, err)
		r.cols, r.vals = nil, nil
		r.tr = nil
		c.reqPool.Put(r)
		return res, err
	case <-c.done:
		// Dispatcher exited; a completion signal sent before it closed may
		// still be buffered. The request object is NOT recycled on this
		// path (the dispatcher may still hold it), so the trace is finished
		// but the *request leaks to GC — shutdown-only, by design.
		select {
		case <-r.done:
			res, err := r.res, r.err
			c.finishRequest(tr, start, r.doneAt, err)
			return res, err
		default:
			c.slo.Record(time.Since(start).Seconds(), true)
			tr.Finish("closed")
			return Result{}, ErrClosed
		}
	}
}

// finishRequest closes a completed request's trace — a "resume" span from
// the dispatcher's completion stamp to now, covering scheduler wake-up — and
// folds the outcome into the SLO windows.
func (c *Core) finishRequest(tr *span.Trace, start, doneAt time.Time, err error) {
	if tr != nil && !doneAt.IsZero() {
		tr.Record("resume", "", doneAt, time.Now(), -1, "")
	}
	c.slo.Record(time.Since(start).Seconds(), err != nil)
	tr.Finish(errKind(err))
}

// batchArena holds the dispatcher-owned buffers a flush assembles the
// micro-batch into: one CSR over all request rows plus a Dataset view, so
// the scoring path reuses the training-side Model API unchanged and the
// steady state allocates nothing (the internal/pool discipline).
type batchArena struct {
	rowptr []int64
	colidx []int32
	values []float64
	labels []float64
	csr    sparse.CSR
	ds     data.Dataset
}

// assemble builds the batch CSR from the requests' feature rows.
func (a *batchArena) assemble(batch []*request, dim int) {
	a.rowptr = a.rowptr[:0]
	a.colidx = a.colidx[:0]
	a.values = a.values[:0]
	a.labels = a.labels[:0]
	a.rowptr = append(a.rowptr, 0)
	for _, r := range batch {
		a.colidx = append(a.colidx, r.cols...)
		a.values = append(a.values, r.vals...)
		a.rowptr = append(a.rowptr, int64(len(a.colidx)))
		a.labels = append(a.labels, 1)
	}
	a.csr = sparse.CSR{
		NumRows: len(batch), NumCols: dim,
		RowPtr: a.rowptr, ColIdx: a.colidx, Values: a.values,
	}
	a.ds = data.Dataset{Name: "serve", X: &a.csr, Y: a.labels}
}

// scoreTask scores request rows [lo, hi) of the assembled batch; chunks run
// concurrently on the pool, each with its own model scratch. When a carrier
// trace is set (the first traced request of the batch) every chunk also
// records a "score/shard" span tagged with the executing pool worker, so one
// exemplar per batch shows how the pool split the scoring work.
type scoreTask struct {
	c       *Core
	w       []float64
	qw      *model.QuantizedWeights // non-nil: score through the int8 path
	ds      *data.Dataset
	batch   []*request
	scores  []float64
	carrier *span.Trace
}

func (t *scoreTask) Run(lo, hi int) {
	if t.qw != nil {
		// The int8 kernel: per-row quantised dots over the batch CSR —
		// the same inner loop linalg.Int8Kernel dispatches, here chunked
		// by the batcher's RunGrain policy so tiny batches stay inline.
		for i := lo; i < hi; i++ {
			t.scores[i] = t.c.quant.QuantScore(t.qw, t.ds, i)
		}
		return
	}
	scr := t.c.scratch.Get()
	for i := lo; i < hi; i++ {
		t.scores[i] = t.c.scorer.Score(t.w, t.ds, i, scr)
	}
	t.c.scratch.Put(scr)
}

// RunShard is the pool.ShardTask hook: identical work, plus the per-worker
// shard span into the carrier trace. With no carrier (tracing off, or an
// all-unsampled batch) the chunk pays one nil check and nothing else.
func (t *scoreTask) RunShard(worker, lo, hi int) {
	if t.carrier == nil {
		t.Run(lo, hi)
		return
	}
	begin := time.Now()
	t.Run(lo, hi)
	t.carrier.Record("score/shard", "score", begin, time.Now(), worker, "")
}

// dispatch is the batcher loop: collect a micro-batch (flush on MaxBatch or
// the MaxDelay deadline, whichever first), score it through the pool,
// complete the requests. One dispatcher goroutine owns the arena and the
// fault streams; scoring parallelism comes from the pool.
func (c *Core) dispatch() {
	defer close(c.done)
	var (
		arena   batchArena
		task    scoreTask
		batch   = make([]*request, 0, c.cfg.MaxBatch)
		scores  = make([]float64, c.cfg.MaxBatch)
		timer   = time.NewTimer(time.Hour)
		lastVer int64
	)
	if !timer.Stop() {
		<-timer.C
	}
	for {
		select {
		case <-c.stop:
			c.drainClosed()
			return
		case r := <-c.queue:
			batch = append(batch[:0], r)
			if c.cfg.MaxBatch > 1 {
				timer.Reset(c.cfg.MaxDelay)
				fired := false
			fill:
				for len(batch) < c.cfg.MaxBatch {
					select {
					case r2 := <-c.queue:
						batch = append(batch, r2)
					case <-timer.C:
						fired = true
						break fill
					case <-c.stop:
						break fill
					}
				}
				if !fired && !timer.Stop() {
					<-timer.C
				}
			}
			lastVer = c.flush(batch, &arena, &task, scores, lastVer)
		}
	}
}

// flush scores one micro-batch and completes its requests. Returns the
// snapshot version served, so the dispatcher can count hot-swaps it
// observed.
func (c *Core) flush(batch []*request, arena *batchArena, task *scoreTask, scores []float64, lastVer int64) int64 {
	n := len(batch)
	depth := len(c.queue)
	sn := c.store.Load() // non-nil: admission checked, publishes are monotonic
	stream := c.faults.stream()
	flushStart := time.Now()

	arena.assemble(batch, sn.Dim)
	var carrier *span.Trace
	for _, r := range batch {
		if r.tr != nil {
			carrier = r.tr
			break
		}
	}
	var qw *model.QuantizedWeights
	if c.quant != nil {
		// Both representations ride the one snapshot pointer, so the
		// quantised weights are always the float weights' exact twin; a
		// snapshot published before quantised mode (nil Quant) falls back
		// to the float64 path rather than serving stale codes.
		qw = sn.Quant
	}
	start := time.Now()
	*task = scoreTask{c: c, w: sn.Weights, qw: qw, ds: &arena.ds, batch: batch, scores: scores[:n], carrier: carrier}
	c.cfg.Pool.RunGrain(c.cfg.Workers, n, c.cfg.Grain, task)
	compute := time.Since(start)
	computeEnd := time.Now()
	stallEnd := computeEnd
	stalled := false
	if d := c.faults.stretch(stream, compute); d > 0 {
		// The straggler's share of dispatches runs factor× slower, exactly
		// like a straggling training worker; the sleep is the modeled extra
		// service time, observable in the latency tail under load.
		time.Sleep(d)
		compute += d
		stallEnd = time.Now()
		stalled = true
	}

	now := time.Now()
	oldest := now.Sub(batch[0].enqueued) - compute
	if oldest < 0 {
		oldest = 0
	}
	for i, r := range batch {
		fault := ""
		if c.faults.dropped(stream) {
			r.err = ErrInjectedDrop
			c.stats.dropped.Add(1)
			fault = "drop"
		} else {
			score := scores[i]
			label := -1.0
			if score > 0 {
				label = 1
			}
			r.res = Result{
				Label: label, Score: score, Prob: tensor.Sigmoid(score),
				Version: sn.Version, BatchSize: n,
				QueueWait: now.Sub(r.enqueued) - compute,
			}
		}
		lat := now.Sub(r.enqueued).Seconds()
		c.stats.latency.Record(lat)
		c.rec.Observe(obs.MetricServeLatency, lat)
		if tr := r.tr; tr != nil {
			// The contiguous attribution chain: every instant between
			// enqueue and the completion stamp belongs to exactly one named
			// top-level span, so p99 wall time decomposes without residue.
			tr.Record("queue_wait", "", r.enqueued, flushStart, -1, "")
			tr.Record("batch_assembly", "", flushStart, start, -1, "")
			tr.Record("score", "", start, computeEnd, -1, "")
			if stalled {
				tr.Record("chaos_stall", "", computeEnd, stallEnd, -1, "straggler")
			}
			r.doneAt = time.Now()
			tr.Record("finalize", "", stallEnd, r.doneAt, -1, fault)
			r.res.Trace = tr.ID().String()
		}
		r.done <- struct{}{}
	}
	c.stats.batches.Add(1)
	c.stats.batchSize.Record(float64(n))
	c.stats.queueSum.Add(int64(depth))

	c.rec.Phase(obs.PhaseBarrier, oldest.Seconds())
	c.rec.Phase(obs.PhaseGradient, compute.Seconds())
	c.rec.Add(obs.CounterServeRequests, int64(n))
	c.rec.Add(obs.CounterServeBatches, 1)
	if qw != nil {
		c.stats.quantBatches.Add(1)
		c.rec.Add(obs.CounterServeQuantBatches, 1)
	}
	if sn.Version > lastVer {
		c.rec.Add(obs.CounterServeSwaps, sn.Version-lastVer)
	}
	c.rec.Observe(obs.MetricServeBatchSize, float64(n))
	c.rec.Observe(obs.MetricServeQueueDepth, float64(depth))
	c.faults.drain(c.rec)
	c.rec.EndEpoch(oldest.Seconds() + compute.Seconds())
	return sn.Version
}

// drainClosed fails every still-queued request after shutdown.
func (c *Core) drainClosed() {
	for {
		select {
		case r := <-c.queue:
			r.err = ErrClosed
			r.done <- struct{}{}
		default:
			return
		}
	}
}
