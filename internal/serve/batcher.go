package serve

import (
	"time"

	"repro/internal/data"
	"repro/internal/obs"
	"repro/internal/sparse"
	"repro/internal/tensor"
)

// Result is one request's prediction.
type Result struct {
	// Label is the predicted class in {-1, +1} (sign of Score).
	Label float64 `json:"label"`
	// Score is the model's decision score (margin / log-odds; see
	// model.Scorer).
	Score float64 `json:"score"`
	// Prob is sigmoid(Score): the class-+1 probability for LR and MLP; for
	// SVM it is a monotone but uncalibrated confidence.
	Prob float64 `json:"prob"`
	// Version is the snapshot version the request was scored against.
	Version int64 `json:"model_version"`
	// BatchSize is how many requests rode in the same micro-batch.
	BatchSize int `json:"batch_size"`
	// QueueWait is time from admission to batch dispatch.
	QueueWait time.Duration `json:"-"`
}

// request is one queued prediction. Instances are recycled through
// Core.reqPool; the done channel (buffered 1) carries the completion signal
// across reuses.
type request struct {
	cols []int32
	vals []float64

	enqueued time.Time
	res      Result
	err      error
	done     chan struct{}
}

// Predict scores one example (cols/vals are the sparse feature vector; for
// dense inputs pass cols 0..d-1) against the current snapshot, riding
// whatever micro-batch the dispatcher forms. It blocks until the batch
// flushes — at most MaxDelay plus the batch compute time — and is safe for
// arbitrary concurrent callers; that concurrency is exactly what fills
// batches.
func (c *Core) Predict(cols []int32, vals []float64) (Result, error) {
	sn := c.store.Load()
	if sn == nil {
		return Result{}, ErrNoModel
	}
	if len(cols) != len(vals) {
		return Result{}, ErrBadFeatures
	}
	for _, col := range cols {
		if col < 0 || int(col) >= sn.Dim {
			return Result{}, ErrBadFeatures
		}
	}
	r := c.reqPool.Get().(*request)
	r.cols, r.vals = cols, vals
	r.err = nil
	r.enqueued = time.Now()
	select {
	case c.queue <- r:
		c.stats.requests.Add(1)
	case <-c.stop:
		c.reqPool.Put(r)
		return Result{}, ErrClosed
	default:
		c.reqPool.Put(r)
		c.stats.rejected.Add(1)
		c.rec.Add(obs.CounterServeRejected, 1)
		return Result{}, ErrOverloaded
	}
	select {
	case <-r.done:
		res, err := r.res, r.err
		r.cols, r.vals = nil, nil
		c.reqPool.Put(r)
		return res, err
	case <-c.done:
		// Dispatcher exited; a completion signal sent before it closed may
		// still be buffered.
		select {
		case <-r.done:
			res, err := r.res, r.err
			return res, err
		default:
			return Result{}, ErrClosed
		}
	}
}

// batchArena holds the dispatcher-owned buffers a flush assembles the
// micro-batch into: one CSR over all request rows plus a Dataset view, so
// the scoring path reuses the training-side Model API unchanged and the
// steady state allocates nothing (the internal/pool discipline).
type batchArena struct {
	rowptr []int64
	colidx []int32
	values []float64
	labels []float64
	csr    sparse.CSR
	ds     data.Dataset
}

// assemble builds the batch CSR from the requests' feature rows.
func (a *batchArena) assemble(batch []*request, dim int) {
	a.rowptr = a.rowptr[:0]
	a.colidx = a.colidx[:0]
	a.values = a.values[:0]
	a.labels = a.labels[:0]
	a.rowptr = append(a.rowptr, 0)
	for _, r := range batch {
		a.colidx = append(a.colidx, r.cols...)
		a.values = append(a.values, r.vals...)
		a.rowptr = append(a.rowptr, int64(len(a.colidx)))
		a.labels = append(a.labels, 1)
	}
	a.csr = sparse.CSR{
		NumRows: len(batch), NumCols: dim,
		RowPtr: a.rowptr, ColIdx: a.colidx, Values: a.values,
	}
	a.ds = data.Dataset{Name: "serve", X: &a.csr, Y: a.labels}
}

// scoreTask scores request rows [lo, hi) of the assembled batch; chunks run
// concurrently on the pool, each with its own model scratch.
type scoreTask struct {
	c      *Core
	w      []float64
	ds     *data.Dataset
	batch  []*request
	scores []float64
}

func (t *scoreTask) Run(lo, hi int) {
	scr := t.c.scratch.Get()
	for i := lo; i < hi; i++ {
		t.scores[i] = t.c.scorer.Score(t.w, t.ds, i, scr)
	}
	t.c.scratch.Put(scr)
}

// dispatch is the batcher loop: collect a micro-batch (flush on MaxBatch or
// the MaxDelay deadline, whichever first), score it through the pool,
// complete the requests. One dispatcher goroutine owns the arena and the
// fault streams; scoring parallelism comes from the pool.
func (c *Core) dispatch() {
	defer close(c.done)
	var (
		arena   batchArena
		task    scoreTask
		batch   = make([]*request, 0, c.cfg.MaxBatch)
		scores  = make([]float64, c.cfg.MaxBatch)
		timer   = time.NewTimer(time.Hour)
		lastVer int64
	)
	if !timer.Stop() {
		<-timer.C
	}
	for {
		select {
		case <-c.stop:
			c.drainClosed()
			return
		case r := <-c.queue:
			batch = append(batch[:0], r)
			if c.cfg.MaxBatch > 1 {
				timer.Reset(c.cfg.MaxDelay)
				fired := false
			fill:
				for len(batch) < c.cfg.MaxBatch {
					select {
					case r2 := <-c.queue:
						batch = append(batch, r2)
					case <-timer.C:
						fired = true
						break fill
					case <-c.stop:
						break fill
					}
				}
				if !fired && !timer.Stop() {
					<-timer.C
				}
			}
			lastVer = c.flush(batch, &arena, &task, scores, lastVer)
		}
	}
}

// flush scores one micro-batch and completes its requests. Returns the
// snapshot version served, so the dispatcher can count hot-swaps it
// observed.
func (c *Core) flush(batch []*request, arena *batchArena, task *scoreTask, scores []float64, lastVer int64) int64 {
	n := len(batch)
	depth := len(c.queue)
	sn := c.store.Load() // non-nil: admission checked, publishes are monotonic
	stream := c.faults.stream()

	arena.assemble(batch, sn.Dim)
	start := time.Now()
	*task = scoreTask{c: c, w: sn.Weights, ds: &arena.ds, batch: batch, scores: scores[:n]}
	c.cfg.Pool.RunGrain(c.cfg.Workers, n, c.cfg.Grain, task)
	compute := time.Since(start)
	if d := c.faults.stretch(stream, compute); d > 0 {
		// The straggler's share of dispatches runs factor× slower, exactly
		// like a straggling training worker; the sleep is the modeled extra
		// service time, observable in the latency tail under load.
		time.Sleep(d)
		compute += d
	}

	now := time.Now()
	oldest := now.Sub(batch[0].enqueued) - compute
	if oldest < 0 {
		oldest = 0
	}
	for i, r := range batch {
		if c.faults.dropped(stream) {
			r.err = ErrInjectedDrop
			c.stats.dropped.Add(1)
		} else {
			score := scores[i]
			label := -1.0
			if score > 0 {
				label = 1
			}
			r.res = Result{
				Label: label, Score: score, Prob: tensor.Sigmoid(score),
				Version: sn.Version, BatchSize: n,
				QueueWait: now.Sub(r.enqueued) - compute,
			}
		}
		lat := now.Sub(r.enqueued).Seconds()
		c.stats.latency.Record(lat)
		c.rec.Observe(obs.MetricServeLatency, lat)
		r.done <- struct{}{}
	}
	c.stats.batches.Add(1)
	c.stats.batchSize.Record(float64(n))
	c.stats.queueSum.Add(int64(depth))

	c.rec.Phase(obs.PhaseBarrier, oldest.Seconds())
	c.rec.Phase(obs.PhaseGradient, compute.Seconds())
	c.rec.Add(obs.CounterServeRequests, int64(n))
	c.rec.Add(obs.CounterServeBatches, 1)
	if sn.Version > lastVer {
		c.rec.Add(obs.CounterServeSwaps, sn.Version-lastVer)
	}
	c.rec.Observe(obs.MetricServeBatchSize, float64(n))
	c.rec.Observe(obs.MetricServeQueueDepth, float64(depth))
	c.faults.drain(c.rec)
	c.rec.EndEpoch(oldest.Seconds() + compute.Seconds())
	return sn.Version
}

// drainClosed fails every still-queued request after shutdown.
func (c *Core) drainClosed() {
	for {
		select {
		case r := <-c.queue:
			r.err = ErrClosed
			r.done <- struct{}{}
		default:
			return
		}
	}
}
