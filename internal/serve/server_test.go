package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/model"
)

// testServer builds a served LR with weights [1,-2,0.5,4] behind httptest.
func testServer(t *testing.T) (*httptest.Server, *Core) {
	t.Helper()
	store := NewStore()
	store.Publish(&Snapshot{
		Model: "lr", Dim: 4, Weights: []float64{1, -2, 0.5, 4}, Epoch: 3,
		Fingerprint: core.Fingerprint{Engine: "hogwild/cpu(8)", Model: "lr", Dataset: "covtype", N: 100, Threads: 8, Seed: 1},
	})
	c := NewCore(model.NewLR(4), store, Config{MaxBatch: 8})
	srv := httptest.NewServer(NewServer(c).Handler())
	t.Cleanup(func() { srv.Close(); c.Close() })
	return srv, c
}

func postJSON(t *testing.T, url, body string) (*http.Response, map[string]any) {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewBufferString(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatalf("decode response: %v", err)
	}
	return resp, m
}

func TestHTTPPredictSparse(t *testing.T) {
	srv, _ := testServer(t)
	resp, m := postJSON(t, srv.URL+"/predict", `{"indices":[0,2],"values":[3,2]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %v", resp.StatusCode, m)
	}
	if m["score"].(float64) != 4 || m["label"].(float64) != 1 {
		t.Fatalf("prediction = %v", m)
	}
	if m["model_version"].(float64) != 1 || m["batch_size"].(float64) < 1 {
		t.Fatalf("metadata = %v", m)
	}
	if _, ok := m["queue_us"]; !ok {
		t.Fatalf("missing queue_us in %v", m)
	}
}

func TestHTTPPredictDense(t *testing.T) {
	srv, _ := testServer(t)
	resp, m := postJSON(t, srv.URL+"/predict", `{"dense":[3,0,2,0]}`)
	if resp.StatusCode != http.StatusOK || m["score"].(float64) != 4 {
		t.Fatalf("status %d, prediction %v", resp.StatusCode, m)
	}
}

func TestHTTPPredictInstances(t *testing.T) {
	srv, _ := testServer(t)
	resp, m := postJSON(t, srv.URL+"/predict",
		`{"instances":[{"indices":[0],"values":[1]},{"dense":[0,1,0,0]},{"indices":[3],"values":[1]}]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %v", resp.StatusCode, m)
	}
	preds := m["predictions"].([]any)
	if len(preds) != 3 {
		t.Fatalf("got %d predictions, want 3", len(preds))
	}
	wantScores := []float64{1, -2, 4}
	for i, p := range preds {
		if got := p.(map[string]any)["score"].(float64); got != wantScores[i] {
			t.Fatalf("instance %d: score %v, want %v", i, got, wantScores[i])
		}
	}
}

func TestHTTPPredictErrors(t *testing.T) {
	srv, _ := testServer(t)
	cases := []struct {
		body string
		code int
	}{
		{`not json`, http.StatusBadRequest},
		{`{"indices":[0],"values":[1,2]}`, http.StatusBadRequest},
		{`{"indices":[9],"values":[1]}`, http.StatusBadRequest},
		{`{"dense":[1],"indices":[0],"values":[1]}`, http.StatusBadRequest},
		{`{"instances":[{"indices":[0],"values":[1]},{"indices":[99],"values":[1]}]}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		resp, m := postJSON(t, srv.URL+"/predict", tc.body)
		if resp.StatusCode != tc.code {
			t.Fatalf("body %q: status %d (%v), want %d", tc.body, resp.StatusCode, m, tc.code)
		}
		if _, ok := m["error"]; !ok {
			t.Fatalf("body %q: no error field in %v", tc.body, m)
		}
	}
	resp, err := http.Get(srv.URL + "/predict")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /predict: status %d, want 405", resp.StatusCode)
	}
}

func TestHTTPNoModel(t *testing.T) {
	c := NewCore(model.NewLR(4), NewStore(), Config{})
	srv := httptest.NewServer(NewServer(c).Handler())
	t.Cleanup(func() { srv.Close(); c.Close() })

	resp, m := postJSON(t, srv.URL+"/predict", `{"indices":[0],"values":[1]}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/predict without model: status %d (%v), want 503", resp.StatusCode, m)
	}
	resp2, h := postJSONGet(t, srv.URL+"/healthz")
	if resp2.StatusCode != http.StatusServiceUnavailable || h["status"] != "no_model" {
		t.Fatalf("/healthz without model: status %d body %v", resp2.StatusCode, h)
	}
}

// postJSONGet GETs url and decodes the JSON body.
func postJSONGet(t *testing.T, url string) (*http.Response, map[string]any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatalf("decode %s: %v", url, err)
	}
	return resp, m
}

func TestHTTPHealthzStatsMetrics(t *testing.T) {
	srv, _ := testServer(t)
	if resp, m := postJSON(t, srv.URL+"/predict", `{"indices":[0],"values":[1]}`); resp.StatusCode != 200 {
		t.Fatalf("warmup predict failed: %v", m)
	}

	resp, h := postJSONGet(t, srv.URL+"/healthz")
	if resp.StatusCode != http.StatusOK || h["status"] != "ok" || h["model"] != "lr" {
		t.Fatalf("/healthz = %d %v", resp.StatusCode, h)
	}
	if h["fingerprint_key"] == "" || h["max_batch"].(float64) != 8 {
		t.Fatalf("/healthz missing config/fingerprint: %v", h)
	}

	resp, s := postJSONGet(t, srv.URL+"/stats")
	if resp.StatusCode != http.StatusOK || s["requests"].(float64) < 1 || s["batches"].(float64) < 1 {
		t.Fatalf("/stats = %d %v", resp.StatusCode, s)
	}

	mresp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(mresp.Body); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, family := range []string{
		"sgd_serve_requests_total", "sgd_serve_batches_total",
		"sgd_serve_snapshot_swaps_total", "sgd_serve_latency_seconds",
	} {
		if !strings.Contains(text, family) {
			t.Fatalf("/metrics missing %s:\n%s", family, text)
		}
	}
}

func TestServerStartShutdown(t *testing.T) {
	_, c := testServer(t)
	s := NewServer(c)
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	resp, h := postJSONGet(t, "http://"+addr+"/healthz")
	if resp.StatusCode != http.StatusOK || h["status"] != "ok" {
		t.Fatalf("started server /healthz = %d %v", resp.StatusCode, h)
	}
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
}
