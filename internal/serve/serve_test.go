package serve

import (
	"math"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/model"
	"repro/internal/pool"
)

// lrStore publishes an LR snapshot with the given weights.
func lrStore(w []float64) *Store {
	s := NewStore()
	s.Publish(&Snapshot{Model: "lr", Dim: len(w), Weights: w})
	return s
}

func TestPredictScoresAgainstSnapshot(t *testing.T) {
	w := []float64{1, -2, 0.5, 4}
	c := NewCore(model.NewLR(4), lrStore(w), Config{MaxBatch: 1})
	defer c.Close()

	res, err := c.Predict([]int32{0, 2}, []float64{3, 2})
	if err != nil {
		t.Fatal(err)
	}
	want := 3*w[0] + 2*w[2] // 4
	if math.Abs(res.Score-want) > 1e-12 {
		t.Fatalf("score = %v, want %v", res.Score, want)
	}
	if res.Label != 1 {
		t.Fatalf("label = %v, want +1", res.Label)
	}
	if res.Prob <= 0.5 || res.Prob >= 1 {
		t.Fatalf("prob = %v, want in (0.5, 1) for positive score", res.Prob)
	}
	if res.Version != 1 {
		t.Fatalf("version = %d, want 1", res.Version)
	}

	res, err = c.Predict([]int32{1}, []float64{1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Label != -1 || res.Score != -2 {
		t.Fatalf("negative example: label=%v score=%v", res.Label, res.Score)
	}
}

func TestPredictErrors(t *testing.T) {
	c := NewCore(model.NewLR(4), NewStore(), Config{})
	defer c.Close()
	if _, err := c.Predict([]int32{0}, []float64{1}); err != ErrNoModel {
		t.Fatalf("empty store: err = %v, want ErrNoModel", err)
	}

	c2 := NewCore(model.NewLR(4), lrStore(make([]float64, 4)), Config{})
	defer c2.Close()
	if _, err := c2.Predict([]int32{4}, []float64{1}); err != ErrBadFeatures {
		t.Fatalf("out-of-range col: err = %v, want ErrBadFeatures", err)
	}
	if _, err := c2.Predict([]int32{-1}, []float64{1}); err != ErrBadFeatures {
		t.Fatalf("negative col: err = %v, want ErrBadFeatures", err)
	}
	if _, err := c2.Predict([]int32{0, 1}, []float64{1}); err != ErrBadFeatures {
		t.Fatalf("length mismatch: err = %v, want ErrBadFeatures", err)
	}
}

// slowScorer blocks inside Score until released, so tests can hold the
// dispatcher mid-flush and observe admission behaviour deterministically.
type slowScorer struct {
	*model.LR
	entered chan struct{}
	release chan struct{}
}

func (s *slowScorer) Score(w []float64, ds *data.Dataset, i int, scr model.Scratch) float64 {
	s.entered <- struct{}{}
	<-s.release
	return s.LR.Score(w, ds, i, scr)
}

func TestAdmissionControlRejectsWhenQueueFull(t *testing.T) {
	sc := &slowScorer{
		LR:      model.NewLR(2),
		entered: make(chan struct{}, 16),
		release: make(chan struct{}),
	}
	c := NewCore(sc, lrStore([]float64{1, 1}), Config{
		MaxBatch: 1, QueueDepth: 1, Workers: 1, Pool: pool.New(1),
	})
	defer c.cfg.Pool.Close()
	var relOnce sync.Once
	release := func() { relOnce.Do(func() { close(sc.release) }) }
	defer release() // unblock the dispatcher even when the test fails early

	var wg sync.WaitGroup
	errs := make([]error, 2)
	wg.Add(1)
	go func() { defer wg.Done(); _, errs[0] = c.Predict([]int32{0}, []float64{1}) }()
	<-sc.entered // dispatcher is now stuck scoring request 0
	wg.Add(1)
	go func() { defer wg.Done(); _, errs[1] = c.Predict([]int32{0}, []float64{1}) }()
	// Wait until request 1 occupies the single queue slot.
	deadline := time.Now().Add(5 * time.Second)
	for len(c.queue) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("request never reached the queue")
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := c.Predict([]int32{0}, []float64{1}); err != ErrOverloaded {
		t.Fatalf("full queue: err = %v, want ErrOverloaded", err)
	}
	if got := c.Stats().Snapshot().Rejected; got != 1 {
		t.Fatalf("rejected = %d, want 1", got)
	}
	release()
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("admitted request %d failed: %v", i, err)
		}
	}
	c.Close()
}

func TestCloseFailsPendingAndFuturePredicts(t *testing.T) {
	assertNoLeak := leakCheck(t)
	c := NewCore(model.NewLR(2), lrStore([]float64{1, 1}), Config{})
	c.Close()
	c.Close() // double Close is safe
	if _, err := c.Predict([]int32{0}, []float64{1}); err != ErrClosed {
		t.Fatalf("after Close: err = %v, want ErrClosed", err)
	}
	assertNoLeak() // the dispatcher goroutine must be gone after Close
}

func TestChaosDropFailsRequests(t *testing.T) {
	plan := chaos.Plan{DropFrac: 1}
	c := NewCore(model.NewLR(2), lrStore([]float64{1, 1}), Config{
		MaxBatch: 1, Plan: plan, ChaosSeed: 7,
	})
	defer c.Close()
	for i := 0; i < 4; i++ {
		if _, err := c.Predict([]int32{0}, []float64{1}); err != ErrInjectedDrop {
			t.Fatalf("request %d: err = %v, want ErrInjectedDrop", i, err)
		}
	}
	if got := c.Stats().Snapshot().Dropped; got != 4 {
		t.Fatalf("dropped = %d, want 4", got)
	}
}

func TestSnapshotFileRoundtrip(t *testing.T) {
	sn := &Snapshot{
		Model:   "svm",
		Dim:     3,
		Weights: []float64{0.25, -1, 3},
		Loss:    0.125,
		Epoch:   7,
		Fingerprint: core.Fingerprint{
			Engine: "hogwild/cpu(8)", Model: "svm", Dataset: "covtype",
			N: 1000, Threads: 8, Seed: 42,
		},
	}
	NewStore().Publish(sn)
	path := filepath.Join(t.TempDir(), "snap.json")
	if err := SaveSnapshot(path, sn); err != nil {
		t.Fatal(err)
	}
	got, err := LoadSnapshotFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Model != sn.Model || got.Dim != sn.Dim || got.Epoch != sn.Epoch ||
		got.Version != sn.Version || got.Fingerprint != sn.Fingerprint {
		t.Fatalf("roundtrip mismatch: %+v vs %+v", got, sn)
	}
	for i := range sn.Weights {
		if got.Weights[i] != sn.Weights[i] {
			t.Fatalf("weight %d: %v vs %v", i, got.Weights[i], sn.Weights[i])
		}
	}
	if _, err := LoadSnapshotFile(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("loading a missing snapshot should fail")
	}
}

func TestStoreVersionsMonotonic(t *testing.T) {
	s := NewStore()
	if s.Load() != nil {
		t.Fatal("fresh store should be empty")
	}
	w := []float64{1, 2}
	v1 := s.PublishWeights(w, Snapshot{Model: "lr", Dim: 2})
	w[0] = 99 // publisher keeps training; the snapshot must hold the copy
	v2 := s.PublishWeights(w, Snapshot{Model: "lr", Dim: 2})
	if v1 != 1 || v2 != 2 || s.Swaps() != 2 {
		t.Fatalf("versions %d,%d swaps %d; want 1,2,2", v1, v2, s.Swaps())
	}
	if got := s.Load().Weights[0]; got != 99 {
		t.Fatalf("latest snapshot w[0] = %v, want 99", got)
	}
}

func TestHistQuantiles(t *testing.T) {
	h := newHist([]float64{1, 2, 4, 8})
	for i := 0; i < 50; i++ {
		h.Record(0.5) // bucket <=1
	}
	for i := 0; i < 49; i++ {
		h.Record(3) // bucket <=4
	}
	h.Record(100) // overflow
	if got := h.Quantile(0.5); got != 1 {
		t.Fatalf("p50 = %v, want 1", got)
	}
	if got := h.Quantile(0.99); got != 4 {
		t.Fatalf("p99 = %v, want 4", got)
	}
	if got := h.Quantile(1); got != 100 {
		t.Fatalf("p100 = %v, want the recorded max 100", got)
	}
	if got := h.Count(); got != 100 {
		t.Fatalf("count = %d, want 100", got)
	}
	if mean := h.Mean(); math.Abs(mean-(50*0.5+49*3+100)/100) > 1e-12 {
		t.Fatalf("mean = %v", mean)
	}
}
