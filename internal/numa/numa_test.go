package numa

import (
	"testing"

	"repro/internal/hw"
)

func TestPaperMachineSpec(t *testing.T) {
	m := PaperMachine()
	if got := m.Spec.TotalThreads(); got != 56 {
		t.Fatalf("threads = %d, want 56 (paper Fig. 5)", got)
	}
	if got := m.Spec.TotalCores(); got != 28 {
		t.Fatalf("cores = %d, want 28", got)
	}
	if m.Spec.L3.Size != 35<<20 {
		t.Fatalf("L3 = %d, want 35MB", m.Spec.L3.Size)
	}
}

func TestFitLevelRegimes(t *testing.T) {
	m := PaperMachine()
	// 4.4 MB (w8a sparse) does not fit one core's private caches but
	// fits the aggregate L2 of 28 cores and the shared L3.
	ws := int64(44) << 17 // 5.5 MB
	if got := m.FitLevel(ws, 1); got != InL3 {
		t.Fatalf("seq fit = %v, want L3", got)
	}
	if got := m.FitLevel(ws, 56); got != InL2 {
		t.Fatalf("par fit = %v, want L2", got)
	}
	// 251 MB (covtype dense) fits nowhere.
	if got := m.FitLevel(251<<20, 56); got != InDRAM {
		t.Fatalf("covtype fit = %v, want DRAM", got)
	}
	// Tiny sets fit L1.
	if got := m.FitLevel(8<<10, 1); got != InL1 {
		t.Fatalf("8KB fit = %v, want L1", got)
	}
}

func TestCacheLevelString(t *testing.T) {
	names := map[CacheLevel]string{InL1: "L1", InL2: "L2", InL3: "L3", InDRAM: "DRAM"}
	for l, want := range names {
		if l.String() != want {
			t.Fatalf("%d.String() = %s", l, l.String())
		}
	}
}

func TestStreamTimeMonotoneInThreads(t *testing.T) {
	m := PaperMachine()
	// DRAM-resident streaming kernel: more threads must never be slower.
	prev := m.StreamTime(1<<30, 1<<30, 1e9, 1)
	for _, p := range []int{2, 4, 8, 16, 28, 56} {
		cur := m.StreamTime(1<<30, 1<<30, 1e9, p)
		if cur > prev {
			t.Fatalf("StreamTime increased at %d threads: %v > %v", p, cur, prev)
		}
		prev = cur
	}
}

func TestSuperLinearSpeedupOnCacheableSet(t *testing.T) {
	// The paper's key Table II effect: datasets that fit the aggregate
	// caches of all cores but not of one core speed up by more than the
	// thread count (w8a: >400x).
	m := PaperMachine()
	ws := int64(5) << 20 // ~w8a scale working set
	bytes := int64(200) << 20
	flops := 1e8
	sp := m.ParallelSpeedup(ws, bytes, flops, 56)
	if sp <= 56 {
		t.Fatalf("cacheable-set speedup = %.1f, want super-linear (>56)", sp)
	}
}

func TestSubLinearSpeedupOnHugeSet(t *testing.T) {
	// rcv1-like: working set far beyond the aggregate caches; speedup
	// stays below the thread count.
	m := PaperMachine()
	ws := int64(2) << 30
	bytes := int64(2) << 30
	flops := 5e8
	sp := m.ParallelSpeedup(ws, bytes, flops, 56)
	if sp >= 66 {
		t.Fatalf("DRAM-bound speedup = %.1f, expected below ~56-66", sp)
	}
	if sp < 4 {
		t.Fatalf("DRAM-bound speedup = %.1f, implausibly low", sp)
	}
}

func TestSequentialSlowerThanSingleCoreShare(t *testing.T) {
	// One thread on a DRAM-resident set must be far below 1/56th of the
	// machine: it is latency-bound (limited outstanding misses).
	m := PaperMachine()
	seq := m.bandwidth(InDRAM, 1)
	par := m.bandwidth(InDRAM, 56)
	if seq*8 < par/56*8 {
		t.Fatalf("per-thread bandwidth ordering wrong: seq %v, par/56 %v", seq, par/56)
	}
	if par/seq < 10 {
		t.Fatalf("bandwidth ratio = %.1f, want >= 10 for the latency-bound regime", par/seq)
	}
}

func TestHogwildDenseParallelismHurts(t *testing.T) {
	// covtype-like: tiny dense model (54 components = 7 cache lines).
	// Every concurrent update collides; 56 threads must be slower than 1.
	m := PaperMachine()
	sp := m.HogwildSpeedup(54, 100000, 54, 100000*54*8, 56)
	if sp >= 1 {
		t.Fatalf("dense Hogwild speedup = %.2f, want < 1 (paper Table III covtype)", sp)
	}
}

func TestHogwildSparseParallelismHelps(t *testing.T) {
	// news-like: 1.35M-dimensional model, ~455 nnz per update. Conflicts
	// are rare; the paper measures ~6x.
	m := PaperMachine()
	sp := m.HogwildSpeedup(1355191, 20000, 455, 20000*455*12, 56)
	if sp < 2 {
		t.Fatalf("sparse Hogwild speedup = %.2f, want clearly > 1", sp)
	}
	if sp > 56 {
		t.Fatalf("sparse Hogwild speedup = %.2f, implausibly high", sp)
	}
}

func TestHogwildSpeedupGrowsWithDim(t *testing.T) {
	// Fixing support, higher model dimensionality means fewer collisions
	// and better scaling.
	m := PaperMachine()
	prev := 0.0
	for _, dim := range []int{64, 1024, 65536, 1 << 20} {
		sp := m.HogwildSpeedup(dim, 50000, 50, 50000*50*12, 56)
		if sp < prev {
			t.Fatalf("Hogwild speedup fell from %.2f to %.2f at dim %d", prev, sp, dim)
		}
		prev = sp
	}
}

func TestHogwildSequentialHasNoPenalty(t *testing.T) {
	m := PaperMachine()
	base := m.StreamTime(100000*54*8+54*8, 100000*54*8+int64(100000*54*8*2), 100000*54*4, 1)
	hog := m.HogwildEpoch(54, 100000, 54, 100000*54*8, 1)
	if hog != base {
		t.Fatalf("sequential Hogwild has coherence penalty: %v vs %v", hog, base)
	}
}

func TestEffectiveCoresSMT(t *testing.T) {
	m := PaperMachine()
	if got := m.effectiveCores(28); got != 28 {
		t.Fatalf("28 threads = %v cores", got)
	}
	got56 := m.effectiveCores(56)
	if got56 <= 28 || got56 >= 56 {
		t.Fatalf("56 threads = %v effective cores, want in (28, 56)", got56)
	}
	if got := m.effectiveCores(0); got != 1 {
		t.Fatalf("0 threads = %v", got)
	}
	if got := m.effectiveCores(1000); got != got56 {
		t.Fatalf("oversubscribed threads = %v, want clamp to %v", got, got56)
	}
}

func TestAggregateCacheAccounting(t *testing.T) {
	s := hw.PaperCPU()
	if got := s.AggregateCache(s.L1D, 2); got != 32<<10 {
		t.Fatalf("2 SMT threads share one core's L1: %d", got)
	}
	if got := s.AggregateCache(s.L1D, 56); got != 28*(32<<10) {
		t.Fatalf("56 threads aggregate L1 = %d", got)
	}
	if got := s.AggregateCache(s.L3, 28); got != 35<<20 {
		t.Fatalf("one socket's worth of threads L3 = %d", got)
	}
	if got := s.AggregateCache(s.L3, 56); got != 2*(35<<20) {
		t.Fatalf("both sockets L3 = %d", got)
	}
}

func TestGPUSpecDerived(t *testing.T) {
	g := hw.PaperGPU()
	if g.PeakFlops() <= 0 {
		t.Fatal("peak flops non-positive")
	}
	if g.MaxResidentWarps() != 832 {
		t.Fatalf("resident warps = %d, want 832", g.MaxResidentWarps())
	}
}
