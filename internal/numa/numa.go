// Package numa is the analytic performance model of the study's NUMA
// multi-core CPU (2x Intel Xeon E5-2660 v4, 56 hardware threads). The
// functional side of CPU SGD runs on real goroutines (internal/core); this
// package supplies paper-scale *timing*: where a working set fits in the
// cache hierarchy (the source of the paper's super-linear parallel speedups
// on w8a/real-sim/covtype), how bandwidth and compute scale with threads and
// sockets, and what cache-coherence conflicts cost a Hogwild epoch (the
// source of the paper's "parallelism only helps on sparse data" finding).
package numa

import (
	"math"

	"repro/internal/hw"
)

// Model evaluates execution costs on a CPU spec.
type Model struct {
	Spec *hw.CPUSpec
	// SMTYield is the extra throughput of the second hardware thread of a
	// core (1.0 would be a full extra core; ~0.3 is typical).
	SMTYield float64
	// SeqIPCPenalty derates the arithmetic throughput of the sequential
	// configuration: the study's sequential baseline (ViennaCL compiled
	// single-thread) does not vectorise the sparse kernels, which is part
	// of why its parallel speedups exceed the thread count.
	SeqIPCPenalty float64
	// MLPOutstanding is the number of memory requests one thread keeps in
	// flight. It caps per-thread bandwidth at MLPOutstanding*line/latency
	// — the latency-bound regime that makes a single thread far slower on
	// DRAM-resident working sets than 1/56th of the machine, i.e. the
	// super-linear-speedup mechanism of the paper's Table II.
	MLPOutstanding float64
}

// NewModel returns the cost model for a spec with default derating factors.
func NewModel(spec *hw.CPUSpec) *Model {
	return &Model{Spec: spec, SMTYield: 0.3, SeqIPCPenalty: 0.25, MLPOutstanding: 8}
}

// PaperMachine returns the model of the paper's dual-socket Xeon.
func PaperMachine() *Model { return NewModel(hw.PaperCPU()) }

// EffectiveCores converts a thread count into core-equivalents, crediting
// SMT threads at SMTYield.
func (m *Model) EffectiveCores(threads int) float64 { return m.effectiveCores(threads) }

// effectiveCores converts a thread count into core-equivalents, crediting
// SMT threads at SMTYield.
func (m *Model) effectiveCores(threads int) float64 {
	if threads < 1 {
		threads = 1
	}
	if threads > m.Spec.TotalThreads() {
		threads = m.Spec.TotalThreads()
	}
	cores := m.Spec.TotalCores()
	if threads <= cores {
		return float64(threads)
	}
	return float64(cores) + float64(threads-cores)*m.SMTYield
}

// CacheLevel identifies where a working set resides.
type CacheLevel int

// Cache levels from fastest to slowest.
const (
	InL1 CacheLevel = iota
	InL2
	InL3
	InDRAM
)

// String names the cache level.
func (l CacheLevel) String() string {
	switch l {
	case InL1:
		return "L1"
	case InL2:
		return "L2"
	case InL3:
		return "L3"
	default:
		return "DRAM"
	}
}

// FitLevel returns the fastest cache level whose aggregate capacity over the
// cores backing `threads` holds the working set. This is the mechanism
// behind the paper's super-linear speedups: w8a (4.4 MB sparse) fits in the
// aggregate L1/L2 of 28 cores but not of one.
func (m *Model) FitLevel(workingSet int64, threads int) CacheLevel {
	s := m.Spec
	switch {
	case workingSet <= s.AggregateCache(s.L1D, threads):
		return InL1
	case workingSet <= s.AggregateCache(s.L2, threads):
		return InL2
	case workingSet <= s.AggregateCache(s.L3, threads):
		return InL3
	default:
		return InDRAM
	}
}

// levelParams returns (latencyNS, aggregate sustainable bandwidth) of a
// cache level for the given thread count.
func (m *Model) levelParams(level CacheLevel, threads int) (latencyNS, aggBW float64) {
	s := m.Spec
	cores := m.effectiveCores(threads)
	socketsUsed := 1
	if threads > s.CoresPerSocket*s.ThreadsPerCore {
		socketsUsed = s.Sockets
	}
	switch level {
	case InL1:
		return s.L1D.LatencyNS, s.L1D.BandwidthBPS * cores
	case InL2:
		return s.L2.LatencyNS, s.L2.BandwidthBPS * cores
	case InL3:
		// Shared per socket; both sockets contribute when populated.
		return s.L3.LatencyNS, s.L3.BandwidthBPS * float64(socketsUsed)
	default:
		bw := s.DRAMBandwidthBPS * float64(socketsUsed)
		lat := s.DRAMLatencyNS
		if socketsUsed > 1 {
			// A fraction of accesses cross the interconnect to the
			// remote DRAM region; derate by its relative capacity
			// and latency.
			remoteFrac := 0.5
			bw = bw*(1-remoteFrac) + remoteFrac*math.Min(bw, s.InterconnectBPS*2)
			lat += remoteFrac * s.InterconnectLatency
		}
		return lat, bw
	}
}

// bandwidth returns the bandwidth (bytes/s) that `threads` threads actually
// sustain against a working set at `level`: each thread is capped by its
// memory-level parallelism (MLPOutstanding in-flight lines), and the sum is
// capped by the level's aggregate bandwidth. One DRAM-bound thread thus gets
// a small fraction of the machine bandwidth, while 56 threads saturate it —
// the asymmetry behind the super-linear speedups of Table II.
func (m *Model) bandwidth(level CacheLevel, threads int) float64 {
	lat, agg := m.levelParams(level, threads)
	line := float64(m.Spec.L1D.LineSize)
	perThread := m.MLPOutstanding * line / (lat * 1e-9)
	total := perThread * m.effectiveCores(threads)
	return math.Min(total, agg)
}

// StreamTime returns the modeled seconds for a kernel that moves `bytes`
// through the cores while retiring `flops` floating-point operations, with a
// working set of `workingSet` bytes, on `threads` threads. It is a roofline:
// the slower of the compute and memory ceilings wins.
func (m *Model) StreamTime(workingSet, bytes int64, flops float64, threads int) float64 {
	cores := m.effectiveCores(threads)
	peak := cores * m.Spec.CoreFlops()
	if threads == 1 {
		peak *= m.SeqIPCPenalty
	}
	level := m.FitLevel(workingSet, threads)
	bw := m.bandwidth(level, threads)
	compute := flops / peak
	memory := float64(bytes) / bw
	if compute > memory {
		return compute
	}
	return memory
}

// ParallelSpeedup is a convenience: the ratio of sequential to parallel
// StreamTime for the same kernel. Super-linear values arise when the working
// set fits the aggregate caches of many cores but not of one.
func (m *Model) ParallelSpeedup(workingSet, bytes int64, flops float64, threads int) float64 {
	seq := m.StreamTime(workingSet, bytes, flops, 1)
	par := m.StreamTime(workingSet, bytes, flops, threads)
	return seq / par
}

// HogwildEpoch models one epoch of asynchronous SGD on the CPU: `updates`
// model updates of `avgSupport` components each into a model of `dim`
// components, with the example stream of `dataBytes` total, on `threads`
// threads. It returns the modeled seconds including the cache-coherence
// penalty of concurrent scattered writes — the effect that makes dense
// Hogwild slow down with threads while sparse Hogwild scales (paper Table
// III).
func (m *Model) HogwildEpoch(dim int, updates int64, avgSupport float64, dataBytes int64, threads int) float64 {
	gradient, update := m.HogwildEpochParts(dim, updates, avgSupport, dataBytes, threads)
	return gradient + update
}

// HogwildEpochParts decomposes HogwildEpoch into its gradient-compute part
// (example streaming, model gather, dot-product arithmetic) and its update
// part (scattered model writes plus, beyond one thread, the cache-coherence
// penalty). The parts sum exactly to HogwildEpoch; the observability layer
// reports them as the engine's gradient/update phases.
func (m *Model) HogwildEpochParts(dim int, updates int64, avgSupport float64, dataBytes int64, threads int) (gradient, update float64) {
	s := m.Spec
	flops := float64(updates) * avgSupport * 4 // dot mul-add + update mul-add
	modelBytes := float64(updates) * avgSupport * 8 * 2
	workingSet := dataBytes + int64(dim*8)
	base := m.StreamTime(workingSet, dataBytes+int64(modelBytes), flops, threads)
	// The gradient share carries the example stream, the model-read half of
	// the scattered traffic and the dot-product half of the arithmetic;
	// StreamTime is monotone in bytes and flops, so grad <= base and the
	// write share is the remainder.
	gradient = m.StreamTime(workingSet, dataBytes+int64(modelBytes/2), flops/2, threads)
	if gradient > base {
		gradient = base
	}
	update = base - gradient
	if threads <= 1 {
		return gradient, update
	}
	// Coherence: an update dirties ceil(support/8)-ish cache lines spread
	// over the dim/8 lines of the model. While it is in flight, the other
	// threads dirty (threads-1)*support components; the probability a
	// given line collides is approximately 1 - exp(-others/lines). Each
	// collision costs a cross-core (often cross-socket) invalidation and
	// refetch.
	lines := math.Max(1, float64(dim)/8)
	linesPerUpdate := math.Max(1, avgSupport/8)
	others := float64(threads-1) * linesPerUpdate
	pConflict := 1 - math.Exp(-others/lines)
	invalidationCost := (s.L3.LatencyNS + s.InterconnectLatency) * 1e-9
	// Conflicting line transfers serialise on the coherence fabric; they
	// do not parallelise with threads, though roughly half overlap with
	// the requesting core's other work (calibration constant).
	const serialization = 0.5
	penalty := float64(updates) * linesPerUpdate * pConflict * invalidationCost * serialization
	return gradient, update + penalty
}

// HogwildSpeedup returns sequential/parallel modeled time for a Hogwild
// epoch; values below 1 mean parallelism hurts (dense, low-dimensional
// models).
func (m *Model) HogwildSpeedup(dim int, updates int64, avgSupport float64, dataBytes int64, threads int) float64 {
	seq := m.HogwildEpoch(dim, updates, avgSupport, dataBytes, 1)
	par := m.HogwildEpoch(dim, updates, avgSupport, dataBytes, threads)
	return seq / par
}
