package frameworks

import (
	"testing"

	"repro/internal/data"
	"repro/internal/model"
)

func smallDS(t *testing.T, name string, n int) (*data.Dataset, data.Spec) {
	t.Helper()
	spec, err := data.Lookup(name)
	if err != nil {
		t.Fatal(err)
	}
	spec = spec.Scaled(float64(n) / float64(spec.N))
	return data.Generate(spec), spec
}

func TestBIDMachComputesSameUpdates(t *testing.T) {
	// The comparator changes cost profiles only, never the math: one
	// epoch must produce the same model as a plain sync engine.
	ds, _ := smallDS(t, "w8a", 400)
	m := model.NewLR(ds.D())
	w1 := m.InitParams(1)
	w2 := m.InitParams(1)
	e1 := NewBIDMachLike(GPU, m, ds, 1, 1)
	e2 := NewBIDMachLike(CPU, m, ds, 1, 1)
	e1.RunEpoch(w1)
	e2.RunEpoch(w2)
	for j := range w1 {
		if w1[j] == 0 && w2[j] == 0 {
			continue
		}
		rel := (w1[j] - w2[j]) / w1[j]
		if rel > 1e-9 || rel < -1e-9 {
			t.Fatalf("BIDMach devices disagree at %d: %v vs %v", j, w1[j], w2[j])
		}
	}
}

func TestBIDMachGPUSlowerOnSparseThanOurs(t *testing.T) {
	// The defining property (Fig. 8): BIDMach's dense-optimized GPU
	// kernels pay more for sparse gathers than ViennaCL-style kernels.
	ds, spec := smallDS(t, "rcv1", 1500)
	factor := float64(spec.N) / float64(ds.N())
	m := model.NewLR(ds.D())
	init := m.InitParams(1)

	oursGPU := NewBIDMachLike(GPU, m, ds, 1, factor) // dense-optimized
	w := append([]float64(nil), init...)
	bidmachTime := oursGPU.RunEpoch(w)

	// Our ViennaCL-style GPU backend prices the same epoch cheaper.
	viennaEngine := newViennaGPU(m, ds, factor)
	w2 := append([]float64(nil), init...)
	oursTime := viennaEngine.RunEpoch(w2)

	if bidmachTime <= oursTime {
		t.Fatalf("BIDMach GPU (%v) not slower than ours (%v) on sparse data", bidmachTime, oursTime)
	}
}

func TestTensorFlowDispatchOverheadCharged(t *testing.T) {
	spec, _ := data.Lookup("w8a")
	spec = spec.Scaled(600.0 / float64(spec.N))
	ds := data.Generate(spec)
	mds, err := data.ForMLP(ds, spec)
	if err != nil {
		t.Fatal(err)
	}
	m := model.NewMLPFor(spec)
	init := m.InitParams(1)

	tf := NewTensorFlowLike(GPU, m, mds, 0.1, 1)
	w := append([]float64(nil), init...)
	tfTime := tf.RunEpoch(w)

	plain := newViennaGPU(m, mds, 1)
	w2 := append([]float64(nil), init...)
	plainTime := plain.RunEpoch(w2)

	if tfTime <= plainTime {
		t.Fatalf("TF dispatch overhead missing: tf %v <= plain %v", tfTime, plainTime)
	}
}

func TestTFGPUSpeedupBelowOurs(t *testing.T) {
	// Fig. 9's relationship: our GPU-over-CPU speedup exceeds TF's,
	// because TF pays the same dispatch overhead on both devices while
	// kernels are faster on GPU.
	spec, _ := data.Lookup("real-sim")
	spec = spec.Scaled(1000.0 / float64(spec.N))
	ds := data.Generate(spec)
	mds, err := data.ForMLP(ds, spec)
	if err != nil {
		t.Fatal(err)
	}
	factor := float64(spec.N) / float64(ds.N())
	m := model.NewMLPFor(spec)
	init := m.InitParams(1)

	run := func(e interface{ RunEpoch([]float64) float64 }) float64 {
		w := append([]float64(nil), init...)
		return e.RunEpoch(w)
	}
	tfSpeedup := run(NewTensorFlowLike(CPU, m, mds, 0.1, factor)) /
		run(NewTensorFlowLike(GPU, m, mds, 0.1, factor))
	oursSpeedup := run(newViennaCPU(m, mds, factor)) / run(newViennaGPU(m, mds, factor))
	if tfSpeedup >= oursSpeedup {
		t.Fatalf("TF speedup %.2f >= ours %.2f", tfSpeedup, oursSpeedup)
	}
}
