// Package frameworks implements the study's two reference comparators —
// simplified but behaviourally faithful stand-ins for the systems the paper
// validates against:
//
//   - TensorFlowLike (paper: TensorFlow 0.12): a dense-only synchronous
//     batch-gradient-descent engine whose every primitive pays a host-side
//     graph-dispatch overhead on top of the kernel. Because the overhead is
//     the same on both devices while GPU kernels are faster, its GPU-over-
//     CPU speedup is systematically below our direct implementation's —
//     the Fig. 9 relationship.
//
//   - BIDMachLike (paper: BIDMach 2.0.1): a synchronous mini-batch engine
//     for generalized linear models whose GPU kernels are optimized for
//     dense data: its sparse gathers bypass the L2-sector optimisation, so
//     on sparse datasets its GPU speedup trails ours — the Fig. 8
//     relationship.
//
// Both comparators reuse the same model formulations and the same simulated
// hardware as the main implementation, so differences come only from the
// framework cost profiles, mirroring the paper's "indirect comparison of
// linear algebra kernels".
package frameworks

import (
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/gpusim"
	"repro/internal/hw"
	"repro/internal/linalg"
	"repro/internal/model"
)

// Arch selects the device a comparator runs on.
type Arch int

// The two devices of the study.
const (
	CPU Arch = iota // parallel CPU (56 threads)
	GPU
)

// dispatchOverheadNS is the per-primitive host-side cost of a graph-executed
// framework (session dispatch, shape checks, device placement).
const dispatchOverheadNS = 60_000

// NewTensorFlowLike builds the TF comparator: full-batch synchronous GD for
// MLP over dense data with per-op dispatch overhead. workScale prices the
// epochs at fullN/scaledN.
func NewTensorFlowLike(arch Arch, m model.BatchModel, ds *data.Dataset, step, workScale float64) *core.SyncEngine {
	var inner linalg.Backend
	switch arch {
	case GPU:
		inner = linalg.NewK80()
	default:
		inner = linalg.NewCPU(56)
	}
	e := core.NewSync(&overheadBackend{Backend: inner, perOpSec: dispatchOverheadNS * 1e-9}, m, ds, step)
	// The MLP pipeline's kernel count scales with the dataset, so the
	// whole epoch (kernels + dispatch) is scaled.
	e.CostScale = workScale
	return e
}

// NewBIDMachLike builds the BIDMach comparator: synchronous mini-batch GD
// for LR/SVM with dense-optimized GPU kernels.
func NewBIDMachLike(arch Arch, m model.BatchModel, ds *data.Dataset, step, workScale float64) *core.SyncEngine {
	var inner linalg.Backend
	switch arch {
	case GPU:
		dev := gpusim.NewDevice(hw.PaperGPU())
		dev.SparseL2Gather = false // dense-optimized sparse path
		g := linalg.NewGPU(dev)
		g.WorkScale = workScale
		inner = g
	default:
		c := linalg.NewCPU(56)
		c.WorkScale = workScale
		inner = c
	}
	return core.NewSync(inner, m, ds, step)
}

// overheadBackend decorates a Backend, adding a fixed host-dispatch charge
// per primitive invocation.
type overheadBackend struct {
	linalg.Backend
	perOpSec float64
}

func (b *overheadBackend) dispatch() { b.Meter().Charge("dispatch", b.perOpSec) }

// Name implements linalg.Backend.
func (b *overheadBackend) Name() string { return b.Backend.Name() }
