package frameworks

import (
	"repro/internal/sparse"
	"repro/internal/tensor"
)

// Every primitive forwards to the wrapped backend and charges the dispatch
// overhead, emulating graph-executed frameworks where each node crosses the
// host/runtime boundary.

// Gemv implements model.Ops.
func (b *overheadBackend) Gemv(alpha float64, a *tensor.Matrix, x []float64, beta float64, y []float64) {
	b.dispatch()
	b.Backend.Gemv(alpha, a, x, beta, y)
}

// GemvT implements model.Ops.
func (b *overheadBackend) GemvT(alpha float64, a *tensor.Matrix, x []float64, beta float64, y []float64) {
	b.dispatch()
	b.Backend.GemvT(alpha, a, x, beta, y)
}

// Gemm implements model.Ops.
func (b *overheadBackend) Gemm(alpha float64, a, m *tensor.Matrix, beta float64, c *tensor.Matrix) {
	b.dispatch()
	b.Backend.Gemm(alpha, a, m, beta, c)
}

// GemmNT implements model.Ops.
func (b *overheadBackend) GemmNT(alpha float64, a, m *tensor.Matrix, beta float64, c *tensor.Matrix) {
	b.dispatch()
	b.Backend.GemmNT(alpha, a, m, beta, c)
}

// GemmTN implements model.Ops.
func (b *overheadBackend) GemmTN(alpha float64, a, m *tensor.Matrix, beta float64, c *tensor.Matrix) {
	b.dispatch()
	b.Backend.GemmTN(alpha, a, m, beta, c)
}

// SpMV implements model.Ops.
func (b *overheadBackend) SpMV(a *sparse.CSR, x, y []float64) {
	b.dispatch()
	b.Backend.SpMV(a, x, y)
}

// SpMVT implements model.Ops.
func (b *overheadBackend) SpMVT(a *sparse.CSR, x, y []float64) {
	b.dispatch()
	b.Backend.SpMVT(a, x, y)
}

// Axpy implements model.Ops.
func (b *overheadBackend) Axpy(alpha float64, x, y []float64) {
	b.dispatch()
	b.Backend.Axpy(alpha, x, y)
}

// Scal implements model.Ops.
func (b *overheadBackend) Scal(alpha float64, x []float64) {
	b.dispatch()
	b.Backend.Scal(alpha, x)
}

// Map implements model.Ops.
func (b *overheadBackend) Map(dst, src, aux []float64, f func(s, a float64) float64) {
	b.dispatch()
	b.Backend.Map(dst, src, aux, f)
}

// RowsMap implements model.Ops.
func (b *overheadBackend) RowsMap(m *tensor.Matrix, f func(i int, row []float64)) {
	b.dispatch()
	b.Backend.RowsMap(m, f)
}
