package frameworks

import (
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/linalg"
	"repro/internal/model"
)

// newViennaGPU builds our direct (ViennaCL-style) synchronous GPU engine for
// comparator tests.
func newViennaGPU(m model.BatchModel, ds *data.Dataset, factor float64) *core.SyncEngine {
	b := linalg.NewK80()
	b.WorkScale = factor
	return core.NewSync(b, m, ds, 1)
}

// newViennaCPU builds our direct parallel-CPU engine.
func newViennaCPU(m model.BatchModel, ds *data.Dataset, factor float64) *core.SyncEngine {
	b := linalg.NewCPU(56)
	b.WorkScale = factor
	return core.NewSync(b, m, ds, 1)
}
