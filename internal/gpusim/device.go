// Package gpusim is a functional-plus-analytic simulator of a SIMT GPU — the
// substitute for the NVIDIA Tesla K80 the paper measures on, which cannot be
// programmed from pure Go.
//
// It has two halves that mirror the paper's two performance axes:
//
//   - A functional execution engine (RunAsyncEpoch) that executes
//     asynchronous-SGD kernels with real SIMT semantics: threads grouped in
//     32-lane warps run in lockstep, every resident warp computes its lane
//     gradients from the round-entry model snapshot, and unsynchronised
//     lane writes to the same model component lose updates (or are combined
//     first when the warp-shuffle optimisation is on). Statistical
//     efficiency measured on this engine is therefore a real measurement of
//     the GPU update semantics, not an estimate.
//
//   - An analytic cost model (Cost* methods) that accounts compute cycles,
//     global-memory transactions (via the coalescing rule: one transaction
//     per distinct aligned segment touched by a warp), warp divergence
//     (a warp retires at the pace of its slowest lane) and kernel launch
//     overhead, parameterised by the hw.GPUSpec. Hardware efficiency in the
//     reproduced tables comes from this model.
package gpusim

import (
	"fmt"

	"repro/internal/hw"
)

// Device is a simulated GPU.
type Device struct {
	Spec *hw.GPUSpec
	// SparseL2Gather enables serving scattered gathers from L2 at sector
	// granularity when the gathered vector fits (ViennaCL's sparse-kernel
	// optimisation). Kernels "optimized for dense data" — the paper's
	// characterisation of BIDMach's — lack it.
	SparseL2Gather bool
}

// NewDevice returns a Device for the given hardware spec.
func NewDevice(spec *hw.GPUSpec) *Device {
	if spec.WarpSize <= 0 || spec.MPs <= 0 {
		panic(fmt.Sprintf("gpusim: invalid spec %+v", spec))
	}
	return &Device{Spec: spec, SparseL2Gather: true}
}

// K80 returns a Device configured as the paper's Tesla K80.
func K80() *Device { return NewDevice(hw.PaperGPU()) }

// Cost describes the modeled execution of one kernel (or one epoch of
// kernels) on the device.
type Cost struct {
	Seconds      float64 // modeled wall-clock kernel time
	Flops        float64 // useful floating point operations
	LockstepOps  float64 // lane-slots issued including divergence waste
	Bytes        float64 // global-memory traffic implied by the transactions
	WriteBytes   float64 // the model-write share of Bytes (update-phase attribution)
	Transactions int64   // 32-byte global memory transactions
	Launches     int64   // kernel launches (fixed overhead each)
}

// Add accumulates another cost into c.
func (c *Cost) Add(o Cost) {
	c.Seconds += o.Seconds
	c.Flops += o.Flops
	c.LockstepOps += o.LockstepOps
	c.Bytes += o.Bytes
	c.WriteBytes += o.WriteBytes
	c.Transactions += o.Transactions
	c.Launches += o.Launches
}

// finish computes Seconds for a kernel from accumulated work using a
// roofline: the kernel is bound by either compute throughput (lockstep ops)
// or memory bandwidth (transaction bytes), plus launch overhead.
func (d *Device) finish(c Cost) Cost {
	s := d.Spec
	compute := c.LockstepOps / s.PeakFlops()
	memory := c.Bytes / s.GlobalBandwidthBPS
	t := compute
	if memory > t {
		t = memory
	}
	// A kernel cannot beat one global-memory round trip.
	if c.Bytes > 0 && t < s.GlobalLatencyNS*1e-9 {
		t = s.GlobalLatencyNS * 1e-9
	}
	c.Seconds = t + float64(c.Launches)*s.KernelLaunchNS*1e-9
	return c
}

// Rescale multiplies the data-dependent work of a cost by f (flops, bytes,
// transactions) while keeping launch overheads fixed, and re-derives the
// kernel time. The experiment harness uses it to price epochs measured on a
// scaled-down dataset at the paper's full dataset size.
func (d *Device) Rescale(c Cost, f float64) Cost {
	return d.finish(Cost{
		Flops:        c.Flops * f,
		LockstepOps:  c.LockstepOps * f,
		Bytes:        c.Bytes * f,
		WriteBytes:   c.WriteBytes * f,
		Transactions: int64(float64(c.Transactions) * f),
		Launches:     c.Launches,
	})
}

// CostGemm models a tiled dense matrix product C(m x n) = A(m x k)*B(k x n).
// Dense GEMM coalesces perfectly and reuses tiles through shared memory, so
// it is compute bound for all but tiny shapes.
func (d *Device) CostGemm(m, k, n int) Cost {
	flops := 2 * float64(m) * float64(k) * float64(n)
	// Shared-memory 32x32 tiling: with enough reuse each operand element
	// is read from global memory roughly (other-dim / 32) times; we model
	// the common regime where tiling brings that down to one read of A
	// and B plus one write of C, which keeps large GEMM compute bound and
	// small GEMM launch/memory bound — the behaviour the paper observes.
	bytes := 8 * (float64(m)*float64(k) + float64(k)*float64(n) + float64(m)*float64(n))
	c := Cost{
		Flops:        flops,
		LockstepOps:  flops, // dense GEMM keeps warps converged
		Bytes:        bytes,
		Transactions: int64(bytes / float64(d.Spec.TransactionBytes)),
		Launches:     1,
	}
	return d.finish(c)
}

// CostGemv models a dense matrix-vector product y = A(m x n)*x: streaming,
// memory bound, fully coalesced.
func (d *Device) CostGemv(m, n int) Cost {
	flops := 2 * float64(m) * float64(n)
	bytes := 8 * (float64(m)*float64(n) + float64(n) + float64(m))
	c := Cost{
		Flops:        flops,
		LockstepOps:  flops,
		Bytes:        bytes,
		Transactions: int64(bytes / float64(d.Spec.TransactionBytes)),
		Launches:     1,
	}
	return d.finish(c)
}

// CostElementwise models an element-wise kernel over n elements reading r
// and writing w streams with fpe FLOPs per element.
func (d *Device) CostElementwise(n int, reads, writes, fpe int) Cost {
	flops := float64(n) * float64(fpe)
	bytes := 8 * float64(n) * float64(reads+writes)
	c := Cost{
		Flops:        flops,
		LockstepOps:  flops,
		Bytes:        bytes,
		Transactions: int64(bytes / float64(d.Spec.TransactionBytes)),
		Launches:     1,
	}
	return d.finish(c)
}

// CostReduce models a tree reduction over n elements.
func (d *Device) CostReduce(n int) Cost {
	flops := float64(n)
	bytes := 8 * float64(n)
	c := Cost{
		Flops:        flops,
		LockstepOps:  flops * 1.5, // log-tree underutilisation
		Bytes:        bytes,
		Transactions: int64(bytes / float64(d.Spec.TransactionBytes)),
		Launches:     1,
	}
	return d.finish(c)
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
