package gpusim

import "repro/internal/sparse"

// spmvWork analyses the CSR structure for the row-per-thread kernel: warps
// of 32 consecutive rows run in lockstep, so a warp retires at the pace of
// its longest row (divergence); the row data streams from contiguous CSR
// storage; the gather of the dense vector follows the coalescing rule over
// the warp's combined column set. When the gathered vector fits the device
// L2, scattered loads are served at 32-byte sector granularity out of cache
// instead of full 128-byte lines from DRAM — ViennaCL's "coalesced access to
// sparse data" advantage the paper credits (Section IV-B).
func (d *Device) spmvWork(a *sparse.CSR) (c Cost, txBytes int64) {
	ws := d.Spec.WarpSize
	txBytes = d.Spec.TransactionBytes
	if d.SparseL2Gather {
		// ViennaCL's sparse kernels route the gather through the
		// read-only texture path, which fetches 32-byte sectors; the
		// paper credits exactly this for the GPU's sparse advantage.
		// Dense-optimized kernels (BIDMach-style) pay full lines.
		txBytes = 32
	}
	cols := make([]int64, 0, 1024)
	for base := 0; base < a.NumRows; base += ws {
		hi := base + ws
		if hi > a.NumRows {
			hi = a.NumRows
		}
		maxLen := 0
		cols = cols[:0]
		var nnz int
		for r := base; r < hi; r++ {
			ci, _ := a.Row(r)
			if len(ci) > maxLen {
				maxLen = len(ci)
			}
			nnz += len(ci)
			for _, cc := range ci {
				cols = append(cols, int64(cc))
			}
		}
		c.Flops += 2 * float64(nnz)
		c.LockstepOps += 2 * float64(ws*maxLen)
		tx := Transactions(cols, 8, txBytes)
		c.Transactions += tx
		c.Bytes += float64(tx)*float64(txBytes) + float64(nnz)*12 + float64(hi-base)*8
	}
	c.Launches = 1
	return c, txBytes
}

// CostSpMV models the CSR matrix-vector kernel y = A*x. This is the access
// pattern the paper identifies as the sparse-data bottleneck on GPU.
func (d *Device) CostSpMV(a *sparse.CSR) Cost {
	c, _ := d.spmvWork(a)
	return d.finish(c)
}

// CostSpMVT models y = A^T*x: the scatter-add version of CostSpMV. The
// scattered output vector is written as well as read, doubling the gather
// traffic.
func (d *Device) CostSpMVT(a *sparse.CSR) Cost {
	c, txBytes := d.spmvWork(a)
	c.Bytes += float64(c.Transactions) * float64(txBytes)
	c.Transactions *= 2
	return d.finish(c)
}
