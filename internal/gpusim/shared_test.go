package gpusim

import "testing"

func TestSharedEpochProcessesEveryItem(t *testing.T) {
	d := K80()
	for _, n := range []int{1, 33, 257, 1000} {
		items := make([]int, n)
		for i := range items {
			items[i] = i
		}
		visited := make([]bool, n)
		w := make([]float64, 16)
		d.RunAsyncEpochShared(16, items, AsyncConfig{MaxWarps: 16},
			func(idx int) float64 { return w[idx] },
			func(item int, replica []float64, emit func(int, float64)) {
				visited[item] = true
			},
			func(idx int, v float64) { w[idx] = v })
		for i, v := range visited {
			if !v {
				t.Fatalf("n=%d: item %d not visited", n, i)
			}
		}
	}
}

func TestSharedEpochAveragesReplicas(t *testing.T) {
	// Two blocks, each lane adds 1 to component 0 of its replica; the
	// final global value must be the replica average, not the sum.
	d := K80()
	items := make([]int, 512)
	for i := range items {
		items[i] = i
	}
	w := make([]float64, 4)
	st := d.RunAsyncEpochShared(4, items, AsyncConfig{MaxWarps: 16, Combine: true},
		func(idx int) float64 { return w[idx] },
		func(item int, replica []float64, emit func(int, float64)) {
			emit(0, 1)
		},
		func(idx int, v float64) { w[idx] = v })
	if st.Updates != 512 {
		t.Fatalf("updates = %d", st.Updates)
	}
	// With Combine, every emitted update lands in some replica; the
	// average over blocks must equal total/blocks and hence be positive
	// but no larger than the total.
	if w[0] <= 0 || w[0] > 512 {
		t.Fatalf("averaged value %v out of range", w[0])
	}
}

func TestSharedEpochNoGlobalModelTraffic(t *testing.T) {
	// The shared-memory variant's model traffic is one load + one flush
	// per block: for the same workload it must move far fewer bytes than
	// the flat kernel, whose scattered RMW traffic is amplified.
	d := K80()
	items := make([]int, 2048)
	for i := range items {
		items[i] = i
	}
	lane := func(item int, emit func(int, float64)) {
		for j := 0; j < 32; j++ {
			emit((item*31+j*97)%4096, 1)
		}
	}
	flat := d.RunAsyncEpoch(items, AsyncConfig{MaxWarps: 16}, lane, func(int, float64) {})
	w := make([]float64, 4096)
	shared := d.RunAsyncEpochShared(4096, items, AsyncConfig{MaxWarps: 16},
		func(idx int) float64 { return w[idx] },
		func(item int, replica []float64, emit func(int, float64)) { lane(item, emit) },
		func(idx int, v float64) { w[idx] = v })
	if shared.Cost.Bytes >= flat.Cost.Bytes {
		t.Fatalf("shared-memory variant not cheaper: %v >= %v bytes",
			shared.Cost.Bytes, flat.Cost.Bytes)
	}
	if shared.Cost.Seconds >= flat.Cost.Seconds {
		t.Fatalf("shared-memory variant not faster: %v >= %v",
			shared.Cost.Seconds, flat.Cost.Seconds)
	}
}

func TestSharedEpochRejectsOversizedModel(t *testing.T) {
	d := K80()
	defer func() {
		if recover() == nil {
			t.Fatal("oversized model did not panic")
		}
	}()
	d.RunAsyncEpochShared(1<<20, []int{0}, AsyncConfig{},
		func(int) float64 { return 0 },
		func(int, []float64, func(int, float64)) {},
		func(int, float64) {})
}

func TestWarpPerExampleNoIntraConflictsNoDivergence(t *testing.T) {
	d := K80()
	items := make([]int, 128)
	for i := range items {
		items[i] = i
	}
	// Dense lane function that would conflict heavily under the
	// one-example-per-lane layout.
	st := d.RunAsyncEpoch(items, AsyncConfig{MaxWarps: 4, WarpPerExample: true},
		denseLane(16), func(int, float64) {})
	if st.LostIntra != 0 {
		t.Fatalf("warp-per-example produced intra-warp conflicts: %+v", st)
	}
	if st.Updates != 128*16 {
		t.Fatalf("updates = %d", st.Updates)
	}
	// Cross-warp conflicts remain (4 warps write the same 16 components).
	if st.LostInter == 0 {
		t.Fatal("no inter-warp conflicts on a shared dense model")
	}
	if st.Applied+st.LostInter != st.Updates {
		t.Fatalf("accounting leak: %+v", st)
	}
}

func TestWarpPerExampleVisitsEverything(t *testing.T) {
	d := K80()
	for _, n := range []int{1, 7, 64, 500} {
		items := make([]int, n)
		for i := range items {
			items[i] = i
		}
		visited := make([]bool, n)
		d.RunAsyncEpoch(items, AsyncConfig{MaxWarps: 6, WarpPerExample: true},
			func(item int, emit func(int, float64)) { visited[item] = true },
			func(int, float64) {})
		for i, v := range visited {
			if !v {
				t.Fatalf("n=%d: item %d unvisited", n, i)
			}
		}
	}
}

func TestWarpPerExampleFewerConflictsThanLanePerExample(t *testing.T) {
	d := K80()
	items := make([]int, 512)
	for i := range items {
		items[i] = i
	}
	lanePer := d.RunAsyncEpoch(items, AsyncConfig{MaxWarps: 8}, denseLane(8), func(int, float64) {})
	warpPer := d.RunAsyncEpoch(items, AsyncConfig{MaxWarps: 8, WarpPerExample: true}, denseLane(8), func(int, float64) {})
	lostLane := lanePer.LostIntra + lanePer.LostInter
	lostWarp := warpPer.LostIntra + warpPer.LostInter
	if lostWarp >= lostLane {
		t.Fatalf("warp-per-example lost %d >= lane-per-example %d", lostWarp, lostLane)
	}
}

func TestSharedEpochIntraWarpConflictsStillCounted(t *testing.T) {
	d := K80()
	items := make([]int, 64)
	for i := range items {
		items[i] = i
	}
	w := make([]float64, 8)
	st := d.RunAsyncEpochShared(8, items, AsyncConfig{MaxWarps: 2},
		func(idx int) float64 { return w[idx] },
		func(item int, replica []float64, emit func(int, float64)) {
			for j := 0; j < 8; j++ {
				emit(j, 1)
			}
		},
		func(idx int, v float64) { w[idx] = v })
	if st.LostIntra == 0 {
		t.Fatal("dense lanes in one warp should still conflict")
	}
}
