package gpusim

import "sort"

// Transactions returns the number of global-memory transactions a warp needs
// to service loads of the given element indices, where each element is
// elemSize bytes and a transaction fetches one txBytes-aligned segment. This
// is the CUDA coalescing rule: consecutive aligned addresses merge into one
// transaction; scattered addresses each pay their own.
//
// indices may contain duplicates (they hit the same segment) and need not be
// sorted. A nil/empty slice costs zero transactions.
func Transactions(indices []int64, elemSize, txBytes int64) int64 {
	if len(indices) == 0 {
		return 0
	}
	if elemSize <= 0 || txBytes <= 0 {
		panic("gpusim: Transactions requires positive sizes")
	}
	perSeg := txBytes / elemSize
	if perSeg == 0 {
		// Element larger than a transaction: each element needs
		// ceil(elemSize/txBytes) transactions.
		per := (elemSize + txBytes - 1) / txBytes
		segs := dedupSegments(indices, 1)
		return int64(segs) * per
	}
	return int64(dedupSegments(indices, perSeg))
}

// dedupSegments counts distinct values of idx/perSeg.
func dedupSegments(indices []int64, perSeg int64) int {
	segs := make([]int64, len(indices))
	for i, ix := range indices {
		segs[i] = ix / perSeg
	}
	sort.Slice(segs, func(a, b int) bool { return segs[a] < segs[b] })
	n := 0
	for i, s := range segs {
		if i == 0 || s != segs[i-1] {
			n++
		}
	}
	return n
}

// WarpTraffic summarises the global-memory behaviour of one warp step.
type WarpTraffic struct {
	Transactions int64
	Bytes        float64
}

// warpTraffic computes the traffic of a warp whose lanes access the given
// per-lane element index lists (e.g. CSR column indices of each lane's
// example), with each access counted `passes` times (read + write = 2).
func (d *Device) warpTraffic(lanes [][]int64, elemSize int64, passes int) WarpTraffic {
	var all []int64
	for _, l := range lanes {
		all = append(all, l...)
	}
	tx := Transactions(all, elemSize, d.Spec.TransactionBytes) * int64(passes)
	return WarpTraffic{
		Transactions: tx,
		Bytes:        float64(tx) * float64(d.Spec.TransactionBytes),
	}
}
