package gpusim

import (
	"math/rand"
	"testing"

	"repro/internal/hw"
	"repro/internal/sparse"
)

func uniformCSR(rng *rand.Rand, rows, cols, perRow int) *sparse.CSR {
	b := sparse.NewBuilder(rows, cols)
	for i := 0; i < rows; i++ {
		seen := map[int]bool{}
		for len(seen) < perRow {
			c := rng.Intn(cols)
			if !seen[c] {
				seen[c] = true
				b.Add(i, c, 1)
			}
		}
	}
	return b.Build()
}

func TestCostSpMVDivergence(t *testing.T) {
	// A matrix with one long row per warp diverges; a uniform one does
	// not.
	rng := rand.New(rand.NewSource(1))
	uniform := uniformCSR(rng, 64, 1000, 10)
	cu := K80().CostSpMV(uniform)
	if ratio := cu.LockstepOps / cu.Flops; ratio != 1 {
		t.Fatalf("uniform rows diverged: %v", ratio)
	}

	b := sparse.NewBuilder(64, 1000)
	for i := 0; i < 64; i++ {
		n := 1
		if i%32 == 0 {
			n = 100
		}
		for c := 0; c < n; c++ {
			b.Add(i, c, 1)
		}
	}
	skew := b.Build()
	cs := K80().CostSpMV(skew)
	if cs.LockstepOps/cs.Flops < 5 {
		t.Fatalf("skewed rows did not diverge: %v", cs.LockstepOps/cs.Flops)
	}
}

func TestCostSpMVTCostsMoreThanSpMV(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := uniformCSR(rng, 128, 5000, 20)
	d := K80()
	if d.CostSpMVT(m).Bytes <= d.CostSpMV(m).Bytes {
		t.Fatal("scatter-add not more expensive than gather")
	}
}

func TestSparseL2GatherFlag(t *testing.T) {
	// BIDMach-style dense-optimized kernels (no texture gather) must pay
	// more for the same sparse matrix.
	rng := rand.New(rand.NewSource(3))
	m := uniformCSR(rng, 256, 100000, 30)
	vienna := K80()
	dense := NewDevice(hw.PaperGPU())
	dense.SparseL2Gather = false
	cv := vienna.CostSpMV(m)
	cd := dense.CostSpMV(m)
	if cd.Bytes <= cv.Bytes {
		t.Fatalf("dense-optimized gather bytes %v <= texture-path %v", cd.Bytes, cv.Bytes)
	}
	if cd.Seconds < cv.Seconds {
		t.Fatalf("dense-optimized kernel faster: %v < %v", cd.Seconds, cv.Seconds)
	}
}

func TestRescaleScalesWorkNotLaunch(t *testing.T) {
	d := K80()
	c := d.CostGemv(1000, 1000)
	r := d.Rescale(c, 10)
	if r.Flops != 10*c.Flops || r.Bytes != 10*c.Bytes {
		t.Fatalf("work not scaled: %+v", r)
	}
	if r.Launches != c.Launches {
		t.Fatalf("launches scaled: %d vs %d", r.Launches, c.Launches)
	}
	if r.Seconds <= c.Seconds {
		t.Fatal("time did not grow with work")
	}
	// Scaling a launch-dominated kernel barely changes its time.
	tiny := d.CostElementwise(4, 1, 1, 1)
	rt := d.Rescale(tiny, 10)
	if rt.Seconds > 2*tiny.Seconds {
		t.Fatalf("launch-dominated kernel scaled with work: %v -> %v", tiny.Seconds, rt.Seconds)
	}
}

func TestCostSpMVScalesWithNNZ(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	small := uniformCSR(rng, 100, 2000, 5)
	big := uniformCSR(rng, 100, 2000, 50)
	d := K80()
	if d.CostSpMV(big).Seconds <= d.CostSpMV(small).Seconds {
		t.Fatal("10x nnz not more expensive")
	}
}

func TestAsyncScatteredTrafficAmplified(t *testing.T) {
	// The async kernel's scattered read-modify-write traffic is counted
	// with the replay amplification; a dense clustered update pattern
	// must therefore still be cheaper than a scattered one of the same
	// element count (beyond plain transaction counting).
	d := K80()
	items := make([]int, 256)
	for i := range items {
		items[i] = i
	}
	run := func(spread int) Cost {
		st := d.RunAsyncEpoch(items, AsyncConfig{MaxWarps: 4},
			func(item int, emit func(int, float64)) {
				for j := 0; j < 8; j++ {
					emit((item*8+j)*spread, 1)
				}
			}, func(int, float64) {})
		return st.Cost
	}
	if run(1000).Bytes <= run(1).Bytes {
		t.Fatal("scatter amplification missing")
	}
}
