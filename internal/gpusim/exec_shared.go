package gpusim

// RunAsyncEpochShared executes the asynchronous kernel with per-block model
// replication in shared memory — one of the GPU-specific optimisations the
// paper's extended version develops for its asynchronous implementation:
// when the model fits an MP's shared memory (48 KB = 6144 float64 on the
// K80), every thread block keeps a private replica, updates race only within
// the block, and replicas are averaged back to global memory at the end of
// the pass.
//
// Compared with RunAsyncEpoch this trades statistical efficiency (replicas
// drift apart during the pass, like DimmWitted's PerNode on the CPU) for
// hardware efficiency: the scattered model traffic moves to shared memory
// and only the streaming example data plus one flush per block touch global
// memory.
//
// nParams must satisfy nParams*8 <= Spec.SharedMemPerMP, or the call panics
// — the caller is expected to fall back to RunAsyncEpoch.
func (d *Device) RunAsyncEpochShared(nParams int, items []int, cfg AsyncConfig, read func(idx int) float64, lane func(item int, replica []float64, emit func(idx int, delta float64)), write func(idx int, v float64)) AsyncStats {
	if int64(nParams)*8 > d.Spec.SharedMemPerMP {
		panic("gpusim: model does not fit shared memory; use RunAsyncEpoch")
	}
	var st AsyncStats
	n := len(items)
	if n == 0 {
		st.Cost = d.finish(Cost{Launches: 1})
		return st
	}
	ws := d.Spec.WarpSize
	warpsPerBlock := 8
	maxWarps := cfg.MaxWarps
	if maxWarps <= 0 {
		maxWarps = d.Spec.MaxResidentWarps()
	}
	blocks := (maxWarps + warpsPerBlock - 1) / warpsPerBlock
	threadsPerBlock := warpsPerBlock * ws
	threads := blocks * threadsPerBlock
	if threads > n {
		threads = n
		blocks = (threads + threadsPerBlock - 1) / threadsPerBlock
	}
	chunk := (n + threads - 1) / threads
	fpe := cfg.FlopsPerElement
	if fpe <= 0 {
		fpe = 4
	}

	// Per-block shared-memory replicas seeded from global memory.
	replicas := make([][]float64, blocks)
	for b := range replicas {
		replicas[b] = make([]float64, nParams)
		for j := 0; j < nParams; j++ {
			replicas[b][j] = read(j)
		}
	}

	laneIdx := make([][]int64, ws)
	laneDelta := make([][]float64, ws)
	merged := make(map[int]float64)

	var cost Cost
	cost.Launches = 1
	// Initial replica load + final flush are the only global model
	// traffic: coalesced streams (the flush is the write half).
	cost.Bytes += float64(blocks) * float64(nParams) * 8 * 2
	cost.WriteBytes += float64(blocks) * float64(nParams) * 8

	for round := 0; round < chunk; round++ {
		anyWork := false
		for b := 0; b < blocks; b++ {
			rep := replicas[b]
			for wp := 0; wp < warpsPerBlock; wp++ {
				warpThread0 := (b*warpsPerBlock + wp) * ws
				var warpMaxLen int
				lanesActive := 0
				for l := 0; l < ws; l++ {
					laneIdx[l] = laneIdx[l][:0]
					laneDelta[l] = laneDelta[l][:0]
					t := warpThread0 + l
					if t >= threads {
						continue
					}
					pos := t*chunk + round
					if pos >= n || pos >= (t+1)*chunk {
						continue
					}
					lanesActive++
					if cfg.FaultDrop != nil && cfg.FaultDrop(items[pos]) {
						st.Dropped++
						reads := 0
						if cfg.ReadSupport != nil {
							reads = cfg.ReadSupport(items[pos])
						}
						cost.Flops += float64(reads) * float64(fpe)
						cost.Bytes += float64(reads) * 12
						if reads > warpMaxLen {
							warpMaxLen = reads
						}
						continue
					}
					li, ld := laneIdx[l], laneDelta[l]
					lane(items[pos], rep, func(idx int, delta float64) {
						li = append(li, int64(idx))
						ld = append(ld, delta)
					})
					laneIdx[l], laneDelta[l] = li, ld
					if len(li) > warpMaxLen {
						warpMaxLen = len(li)
					}
				}
				if lanesActive == 0 {
					continue
				}
				anyWork = true
				clear(merged)
				var emitted int64
				for l := 0; l < ws; l++ {
					for k, ix := range laneIdx[l] {
						emitted++
						idx := int(ix)
						if cfg.Combine {
							merged[idx] += laneDelta[l][k]
						} else {
							if _, dup := merged[idx]; dup {
								st.LostIntra++
							}
							merged[idx] = laneDelta[l][k]
						}
					}
				}
				st.Updates += emitted
				for idx, delta := range merged {
					rep[idx] += delta
					st.Applied++
				}
				// Shared-memory accesses are effectively free next
				// to global traffic; only the example stream and
				// compute are charged.
				cost.Flops += float64(emitted) * float64(fpe)
				cost.LockstepOps += float64(ws*warpMaxLen) * float64(fpe)
				cost.Bytes += float64(emitted) * 12 // CSR stream
			}
		}
		if !anyWork {
			break
		}
		st.Rounds++
	}
	// Average the replicas back to global memory.
	inv := 1 / float64(blocks)
	for j := 0; j < nParams; j++ {
		var s float64
		for b := 0; b < blocks; b++ {
			s += replicas[b][j]
		}
		write(j, s*inv)
	}
	st.Cost = d.finish(cost)
	return st
}
