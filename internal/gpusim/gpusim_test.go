package gpusim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestTransactionsCoalesced(t *testing.T) {
	// 32 consecutive float64 indices = 32*8 bytes = 8 transactions of 32B.
	idx := make([]int64, 32)
	for i := range idx {
		idx[i] = int64(i)
	}
	if got := Transactions(idx, 8, 32); got != 8 {
		t.Fatalf("coalesced = %d transactions, want 8", got)
	}
}

func TestTransactionsScattered(t *testing.T) {
	// 32 indices each in a distinct segment: one transaction each.
	idx := make([]int64, 32)
	for i := range idx {
		idx[i] = int64(i * 100)
	}
	if got := Transactions(idx, 8, 32); got != 32 {
		t.Fatalf("scattered = %d transactions, want 32", got)
	}
}

func TestTransactionsDuplicatesMerge(t *testing.T) {
	idx := []int64{5, 5, 5, 6, 7} // all within segment 1 (indices 4..7)
	if got := Transactions(idx, 8, 32); got != 1 {
		t.Fatalf("duplicates = %d transactions, want 1", got)
	}
}

func TestTransactionsEmpty(t *testing.T) {
	if got := Transactions(nil, 8, 32); got != 0 {
		t.Fatalf("empty = %d, want 0", got)
	}
}

func TestTransactionsLargeElements(t *testing.T) {
	// 64-byte elements with 32-byte transactions: 2 per element.
	if got := Transactions([]int64{0, 1}, 64, 32); got != 4 {
		t.Fatalf("large elems = %d, want 4", got)
	}
}

func TestTransactionsInvalidSizesPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero sizes did not panic")
		}
	}()
	Transactions([]int64{1}, 0, 32)
}

func TestTransactionsBounds(t *testing.T) {
	// Property: ceil(distinct/4) <= tx <= distinct for float64/32B.
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		idx := make([]int64, len(raw))
		uniq := map[int64]bool{}
		for i, v := range raw {
			idx[i] = int64(v)
			uniq[int64(v)] = true
		}
		tx := Transactions(idx, 8, 32)
		n := int64(len(uniq))
		lo := (n + 3) / 4
		return tx >= lo && tx <= n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTransactionsSortInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	idx := make([]int64, 64)
	for i := range idx {
		idx[i] = int64(rng.Intn(1000))
	}
	a := Transactions(idx, 8, 32)
	sorted := append([]int64(nil), idx...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	b := Transactions(sorted, 8, 32)
	if a != b {
		t.Fatalf("order-dependent transactions: %d vs %d", a, b)
	}
}

func TestK80Spec(t *testing.T) {
	d := K80()
	if got := d.Spec.MPs * d.Spec.CoresPerMP; got != 2496 {
		t.Fatalf("K80 cores = %d, want 2496 (paper Fig. 5)", got)
	}
	if d.Spec.WarpSize != 32 {
		t.Fatalf("warp size = %d", d.Spec.WarpSize)
	}
	if d.Spec.MaxResidentWarps() != 13*2048/32 {
		t.Fatalf("resident warps = %d", d.Spec.MaxResidentWarps())
	}
}

func TestCostGemmScaling(t *testing.T) {
	d := K80()
	small := d.CostGemm(64, 64, 64)
	big := d.CostGemm(512, 512, 512)
	if big.Seconds <= small.Seconds {
		t.Fatal("bigger GEMM not slower")
	}
	if big.Flops != 2*512*512*512 {
		t.Fatalf("GEMM flops = %v", big.Flops)
	}
	// Large GEMM should approach compute bound: modeled time within 10x
	// of flops/peak.
	ideal := big.Flops / d.Spec.PeakFlops()
	if big.Seconds > 10*ideal {
		t.Fatalf("large GEMM too slow: %v vs ideal %v", big.Seconds, ideal)
	}
}

func TestCostLaunchOverheadFloor(t *testing.T) {
	d := K80()
	c := d.CostElementwise(1, 1, 1, 1)
	if c.Seconds < d.Spec.KernelLaunchNS*1e-9 {
		t.Fatalf("tiny kernel %vs beats launch overhead", c.Seconds)
	}
}

func TestCostMonotonicInSize(t *testing.T) {
	d := K80()
	prev := 0.0
	for _, n := range []int{1 << 10, 1 << 14, 1 << 18, 1 << 22} {
		c := d.CostElementwise(n, 2, 1, 4)
		if c.Seconds < prev {
			t.Fatalf("elementwise cost not monotone at n=%d", n)
		}
		prev = c.Seconds
	}
}

func TestCostAdd(t *testing.T) {
	var c Cost
	c.Add(Cost{Seconds: 1, Flops: 2, Bytes: 3, Transactions: 4, Launches: 5, LockstepOps: 6})
	c.Add(Cost{Seconds: 1, Flops: 2, Bytes: 3, Transactions: 4, Launches: 5, LockstepOps: 6})
	if c.Seconds != 2 || c.Flops != 4 || c.Bytes != 6 || c.Transactions != 8 || c.Launches != 10 || c.LockstepOps != 12 {
		t.Fatalf("Cost.Add = %+v", c)
	}
}

// denseLane emulates a dense-model update: every lane touches all dim
// components with delta 1.
func denseLane(dim int) LaneFunc {
	return func(item int, emit func(int, float64)) {
		for j := 0; j < dim; j++ {
			emit(j, 1)
		}
	}
}

func TestAsyncEpochDenseConflicts(t *testing.T) {
	d := K80()
	items := make([]int, 256)
	for i := range items {
		items[i] = i
	}
	w := make([]float64, 8)
	st := d.RunAsyncEpoch(items, AsyncConfig{MaxWarps: 8}, denseLane(8),
		func(idx int, delta float64) { w[idx] += delta })
	// 256 items x 8 components emitted.
	if st.Updates != 256*8 {
		t.Fatalf("updates = %d, want %d", st.Updates, 256*8)
	}
	// Every warp has 32 lanes writing the same 8 components: 31/32 of
	// updates lost intra-warp; then 7 of 8 warps lose inter-warp.
	if st.LostIntra == 0 || st.LostInter == 0 {
		t.Fatalf("dense updates produced no conflicts: %+v", st)
	}
	if st.Applied+st.LostIntra+st.LostInter != st.Updates {
		t.Fatalf("conflict accounting leak: %+v", st)
	}
	// Model received exactly the applied updates.
	var total float64
	for _, v := range w {
		total += v
	}
	if int64(total) != st.Applied {
		t.Fatalf("applied %d but model absorbed %v", st.Applied, total)
	}
}

func TestAsyncEpochCombineEliminatesIntraWarpLoss(t *testing.T) {
	d := K80()
	items := make([]int, 64)
	for i := range items {
		items[i] = i
	}
	w := make([]float64, 8)
	st := d.RunAsyncEpoch(items, AsyncConfig{MaxWarps: 2, Combine: true}, denseLane(8),
		func(idx int, delta float64) { w[idx] += delta })
	if st.LostIntra != 0 {
		t.Fatalf("combine left intra-warp losses: %+v", st)
	}
	if st.LostInter == 0 {
		t.Fatal("two warps on one model should conflict inter-warp")
	}
}

func TestAsyncEpochDisjointNoConflicts(t *testing.T) {
	// Each item touches its own component: no conflicts possible.
	d := K80()
	items := make([]int, 128)
	for i := range items {
		items[i] = i
	}
	w := make([]float64, 128)
	st := d.RunAsyncEpoch(items, AsyncConfig{MaxWarps: 4},
		func(item int, emit func(int, float64)) { emit(item, 2) },
		func(idx int, delta float64) { w[idx] += delta })
	if st.LostIntra != 0 || st.LostInter != 0 {
		t.Fatalf("disjoint updates conflicted: %+v", st)
	}
	if st.Applied != 128 {
		t.Fatalf("applied = %d, want 128", st.Applied)
	}
	for i, v := range w {
		if v != 2 {
			t.Fatalf("w[%d] = %v, want 2", i, v)
		}
	}
}

func TestAsyncEpochProcessesEveryItem(t *testing.T) {
	d := K80()
	for _, n := range []int{1, 31, 32, 33, 100, 1000} {
		items := make([]int, n)
		for i := range items {
			items[i] = i
		}
		visited := make([]bool, n)
		d.RunAsyncEpoch(items, AsyncConfig{MaxWarps: 3},
			func(item int, emit func(int, float64)) { visited[item] = true },
			func(idx int, delta float64) {})
		for i, v := range visited {
			if !v {
				t.Fatalf("n=%d: item %d not visited", n, i)
			}
		}
	}
}

func TestAsyncEpochEmptyItems(t *testing.T) {
	d := K80()
	st := d.RunAsyncEpoch(nil, AsyncConfig{}, denseLane(4), func(int, float64) {})
	if st.Updates != 0 || st.Rounds != 0 {
		t.Fatalf("empty epoch did work: %+v", st)
	}
	if st.Cost.Seconds <= 0 {
		t.Fatal("empty epoch should still pay the launch overhead")
	}
}

func TestAsyncEpochScatteredCostsMoreThanDense(t *testing.T) {
	// Same number of updates, but scattered indices need more
	// transactions than clustered ones — the coalescing effect the paper
	// blames for sparse async GPU slowness.
	d := K80()
	items := make([]int, 512)
	for i := range items {
		items[i] = i
	}
	clustered := d.RunAsyncEpoch(items, AsyncConfig{MaxWarps: 8},
		func(item int, emit func(int, float64)) {
			for j := 0; j < 16; j++ {
				emit(j, 1) // all lanes share 16 hot components
			}
		}, func(int, float64) {})
	scattered := d.RunAsyncEpoch(items, AsyncConfig{MaxWarps: 8},
		func(item int, emit func(int, float64)) {
			for j := 0; j < 16; j++ {
				emit(item*977+j*131071, 1) // spread over a huge model
			}
		}, func(int, float64) {})
	if scattered.Cost.Transactions <= clustered.Cost.Transactions {
		t.Fatalf("scattered tx %d <= clustered tx %d",
			scattered.Cost.Transactions, clustered.Cost.Transactions)
	}
	if scattered.Cost.Seconds <= clustered.Cost.Seconds {
		t.Fatalf("scattered %v <= clustered %v seconds",
			scattered.Cost.Seconds, clustered.Cost.Seconds)
	}
}

func TestAsyncEpochDivergenceCost(t *testing.T) {
	// One long lane per warp forces the whole warp to wait: lockstep ops
	// exceed useful flops.
	d := K80()
	items := make([]int, 64)
	for i := range items {
		items[i] = i
	}
	st := d.RunAsyncEpoch(items, AsyncConfig{MaxWarps: 2},
		func(item int, emit func(int, float64)) {
			n := 1
			if item%32 == 0 {
				n = 64 // one heavy lane per warp
			}
			for j := 0; j < n; j++ {
				emit(j, 1)
			}
		}, func(int, float64) {})
	if st.Cost.LockstepOps <= st.Cost.Flops {
		t.Fatalf("divergence not penalised: lockstep %v <= flops %v",
			st.Cost.LockstepOps, st.Cost.Flops)
	}
}

func TestAsyncEpochStalenessGrowsWithWarps(t *testing.T) {
	// With more resident warps, more updates are computed against stale
	// snapshots, so fewer land (inter-warp last-wins) — the concurrency
	// floor the paper describes.
	d := K80()
	items := make([]int, 1024)
	for i := range items {
		items[i] = i
	}
	lost := func(maxWarps int) int64 {
		st := d.RunAsyncEpoch(items, AsyncConfig{MaxWarps: maxWarps}, denseLane(16),
			func(int, float64) {})
		return st.LostInter
	}
	if lost(16) <= lost(1) {
		t.Fatalf("inter-warp losses did not grow with warps: %d vs %d", lost(16), lost(1))
	}
}
