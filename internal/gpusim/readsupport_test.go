package gpusim

import "testing"

func TestReadSupportChargesSilentLanes(t *testing.T) {
	// An SVM-like epoch where no lane emits must still pay for reading
	// the examples and the model.
	d := K80()
	items := make([]int, 256)
	for i := range items {
		items[i] = i
	}
	silent := func(item int, emit func(int, float64)) {} // margins satisfied
	without := d.RunAsyncEpoch(items, AsyncConfig{MaxWarps: 4}, silent, func(int, float64) {})
	with := d.RunAsyncEpoch(items, AsyncConfig{
		MaxWarps:    4,
		ReadSupport: func(item int) int { return 50 },
	}, silent, func(int, float64) {})
	if with.Cost.Bytes <= without.Cost.Bytes {
		t.Fatalf("read support not charged: %v <= %v bytes", with.Cost.Bytes, without.Cost.Bytes)
	}
	if with.Cost.Seconds <= without.Cost.Seconds {
		t.Fatalf("read support not slower: %v <= %v", with.Cost.Seconds, without.Cost.Seconds)
	}
	// Same for the warp-per-example layout.
	withWarp := d.RunAsyncEpoch(items, AsyncConfig{
		MaxWarps:       4,
		WarpPerExample: true,
		ReadSupport:    func(item int) int { return 50 },
	}, silent, func(int, float64) {})
	if withWarp.Cost.Bytes <= 0 {
		t.Fatal("warp-per-example read support not charged")
	}
}

func TestReadSupportNoDoubleChargeWhenEmitting(t *testing.T) {
	// When every component is emitted, ReadSupport adds nothing.
	d := K80()
	items := make([]int, 64)
	for i := range items {
		items[i] = i
	}
	emitAll := func(item int, emit func(int, float64)) {
		for j := 0; j < 8; j++ {
			emit(j, 1)
		}
	}
	plain := d.RunAsyncEpoch(items, AsyncConfig{MaxWarps: 2}, emitAll, func(int, float64) {})
	withRS := d.RunAsyncEpoch(items, AsyncConfig{
		MaxWarps:    2,
		ReadSupport: func(item int) int { return 8 },
	}, emitAll, func(int, float64) {})
	if plain.Cost.Bytes != withRS.Cost.Bytes {
		t.Fatalf("double charge: %v vs %v bytes", plain.Cost.Bytes, withRS.Cost.Bytes)
	}
}
