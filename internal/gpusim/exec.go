package gpusim

// LaneFunc computes the update of one training example against the current
// shared model and reports it as (component, delta) pairs through emit. It
// must treat the model as read-only: the executor decides which deltas land,
// when, and which are lost to SIMT write conflicts.
type LaneFunc func(item int, emit func(idx int, delta float64))

// AsyncConfig tunes the simulated asynchronous (Hogwild) kernel.
type AsyncConfig struct {
	// Combine enables the warp-shuffle optimisation the paper mentions
	// (Section IV-B): updates to the same component from lanes of the
	// same warp are summed before the write, eliminating intra-warp lost
	// updates. Inter-warp conflicts remain.
	Combine bool
	// MaxWarps caps the resident warps (0 = the device's occupancy
	// limit). The paper notes this concurrency "is a lower bound that
	// cannot be overcome" for conflicts.
	MaxWarps int
	// FlopsPerElement is the arithmetic per touched model component of
	// one lane update (dot-product multiply-add plus update multiply-add
	// = 4 for the linear models).
	FlopsPerElement int
	// ReadSupport reports how many model components evaluating one item
	// *reads* (the gradient-support size), whether or not an update is
	// emitted. SVM lanes whose margin is satisfied emit nothing but the
	// kernel still gathers the example and the model; without this hook
	// their cost would be zero. Nil means "reads equal emissions".
	ReadSupport func(item int) int
	// FaultDrop, when non-nil, is consulted once per item before its lane
	// emits: true discards the item's update entirely (the fault-injection
	// hook of internal/chaos). The lane still streams the example and
	// computes the gradient — the cost stays — but no delta lands.
	FaultDrop func(item int) bool
	// WarpPerExample switches the kernel layout: instead of one example
	// per lane (32 concurrent examples per warp, divergent on skewed
	// rows, conflicting on dense ones), the whole warp cooperates on a
	// single example — its nnz are strided across lanes, accesses
	// coalesce, divergence disappears, and there are no intra-warp
	// update conflicts, but 32x fewer examples are in flight. This is
	// the alternative data-access path the paper's extended version
	// explores.
	WarpPerExample bool
}

// AsyncStats reports one simulated epoch of the asynchronous kernel.
type AsyncStats struct {
	Rounds    int64 // lockstep rounds executed
	Updates   int64 // component updates emitted by lanes
	LostIntra int64 // updates lost to intra-warp write conflicts
	LostInter int64 // updates lost to inter-warp write conflicts
	Applied   int64 // component updates that landed in the model
	Dropped   int64 // items discarded by the FaultDrop hook
	Cost      Cost  // modeled kernel time for the epoch
}

// pendingDelta is one surviving (component, delta) after warp-level merging.
type pendingDelta struct {
	idx   int
	delta float64
}

// RunAsyncEpoch executes one epoch of a Hogwild-style kernel over the given
// items with SIMT semantics:
//
//   - items are partitioned contiguously over min(len(items), 32*R) logical
//     threads, R being the resident-warp bound;
//   - execution proceeds in lockstep rounds: every resident warp's lanes
//     evaluate their next item against the round-entry model snapshot
//     (the executor guarantees apply is not called while lanes run);
//   - within a warp, unsynchronised writes to the same component collide:
//     the last lane wins (or, with cfg.Combine, deltas are summed first);
//   - across warps of the same round, writes to the same component also
//     collide: the last warp wins;
//   - surviving deltas are applied through apply between rounds.
//
// The returned stats carry the conflict counts and the modeled cost
// (divergence-aware compute plus coalescing-derived memory traffic).
func (d *Device) RunAsyncEpoch(items []int, cfg AsyncConfig, lane LaneFunc, apply func(idx int, delta float64)) AsyncStats {
	var st AsyncStats
	n := len(items)
	if n == 0 {
		st.Cost = d.finish(Cost{Launches: 1})
		return st
	}
	if cfg.WarpPerExample {
		return d.runWarpPerExample(items, cfg, lane, apply)
	}
	ws := d.Spec.WarpSize
	maxWarps := cfg.MaxWarps
	if maxWarps <= 0 {
		maxWarps = d.Spec.MaxResidentWarps()
	}
	threads := maxWarps * ws
	if threads > n {
		threads = n
	}
	warps := (threads + ws - 1) / ws
	chunk := (n + threads - 1) / threads
	fpe := cfg.FlopsPerElement
	if fpe <= 0 {
		fpe = 4
	}

	// Per-lane emission buffers, reused across rounds.
	laneIdx := make([][]int64, ws)
	laneDelta := make([][]float64, ws)

	// Round-level merge across warps: last writer wins per component.
	roundWinner := make(map[int]pendingDelta)
	// Warp-level merge buffer.
	warpMerged := make(map[int]float64)

	var cost Cost
	cost.Launches = 1
	for round := 0; round < chunk; round++ {
		clear(roundWinner)
		anyWork := false
		for w := 0; w < warps; w++ {
			var warpMaxLen int
			lanesActive := 0
			for l := 0; l < ws; l++ {
				laneIdx[l] = laneIdx[l][:0]
				laneDelta[l] = laneDelta[l][:0]
				t := w*ws + l
				if t >= threads {
					continue
				}
				pos := t*chunk + round
				if pos >= n || pos >= (t+1)*chunk {
					continue
				}
				lanesActive++
				if cfg.FaultDrop != nil && cfg.FaultDrop(items[pos]) {
					// The dropped update's compute and example stream
					// still cost; only the write disappears.
					st.Dropped++
					reads := 0
					if cfg.ReadSupport != nil {
						reads = cfg.ReadSupport(items[pos])
					}
					cost.Flops += float64(reads) * float64(fpe)
					cost.Bytes += float64(reads) * 20
					if reads > warpMaxLen {
						warpMaxLen = reads
					}
					continue
				}
				li, ld := laneIdx[l], laneDelta[l]
				lane(items[pos], func(idx int, delta float64) {
					li = append(li, int64(idx))
					ld = append(ld, delta)
				})
				laneIdx[l], laneDelta[l] = li, ld
				laneLen := len(li)
				if cfg.ReadSupport != nil {
					if reads := cfg.ReadSupport(items[pos]); reads > laneLen {
						// Read-only work: example stream, model
						// gather, margin arithmetic — no write.
						extra := reads - laneLen
						cost.Flops += float64(extra) * float64(fpe) / 2
						cost.Bytes += float64(extra) * 20 // 12B CSR + 8B gather
						laneLen = reads
					}
				}
				if laneLen > warpMaxLen {
					warpMaxLen = laneLen
				}
			}
			if lanesActive == 0 {
				continue
			}
			anyWork = true

			// Merge lanes within the warp.
			clear(warpMerged)
			var emitted int64
			for l := 0; l < ws; l++ {
				for k, ix := range laneIdx[l] {
					emitted++
					idx := int(ix)
					if cfg.Combine {
						warpMerged[idx] += laneDelta[l][k]
					} else {
						if _, dup := warpMerged[idx]; dup {
							st.LostIntra++
						}
						warpMerged[idx] = laneDelta[l][k] // last lane wins
					}
				}
			}
			st.Updates += emitted

			// Merge across warps of this round: last warp wins.
			for idx, delta := range warpMerged {
				if _, dup := roundWinner[idx]; dup {
					st.LostInter++
				}
				roundWinner[idx] = pendingDelta{idx, delta}
			}

			// Cost accounting for this warp-round: divergence makes
			// every lane pay for the longest lane; model reads and
			// writes follow the coalescing rule; the example data
			// itself streams from contiguous CSR storage.
			cost.Flops += float64(emitted) * float64(fpe)
			cost.LockstepOps += float64(ws*warpMaxLen) * float64(fpe)
			tr := d.warpTraffic(laneIdx[:ws], 8, 2) // model read + write
			cost.Transactions += tr.Transactions
			// Scattered read-modify-write traffic replays and
			// write-allocates: it sustains roughly a third of the
			// streaming bandwidth, so count it threefold. Reads and
			// writes touch the same addresses, so half of it is the
			// write share.
			cost.Bytes += tr.Bytes * 3
			cost.WriteBytes += tr.Bytes * 3 / 2
			cost.Bytes += float64(emitted) * 12 // CSR value + column index stream
		}
		if !anyWork {
			break
		}
		st.Rounds++
		for _, pd := range roundWinner {
			apply(pd.idx, pd.delta)
			st.Applied++
		}
	}
	st.Cost = d.finish(cost)
	return st
}

// runWarpPerExample executes the cooperative layout: each resident warp
// processes one example per round, with the example's components strided
// across its 32 lanes. See AsyncConfig.WarpPerExample.
func (d *Device) runWarpPerExample(items []int, cfg AsyncConfig, lane LaneFunc, apply func(idx int, delta float64)) AsyncStats {
	var st AsyncStats
	n := len(items)
	ws := d.Spec.WarpSize
	maxWarps := cfg.MaxWarps
	if maxWarps <= 0 {
		maxWarps = d.Spec.MaxResidentWarps()
	}
	warps := maxWarps
	if warps > n {
		warps = n
	}
	chunk := (n + warps - 1) / warps
	fpe := cfg.FlopsPerElement
	if fpe <= 0 {
		fpe = 4
	}

	idxBuf := make([]int64, 0, 1024)
	deltaBuf := make([]float64, 0, 1024)
	roundWinner := make(map[int]pendingDelta)

	var cost Cost
	cost.Launches = 1
	for round := 0; round < chunk; round++ {
		clear(roundWinner)
		anyWork := false
		for wp := 0; wp < warps; wp++ {
			pos := wp*chunk + round
			if pos >= n || pos >= (wp+1)*chunk {
				continue
			}
			anyWork = true
			if cfg.FaultDrop != nil && cfg.FaultDrop(items[pos]) {
				st.Dropped++
				if cfg.ReadSupport != nil {
					reads := cfg.ReadSupport(items[pos])
					cost.Flops += float64(reads) * float64(fpe)
					cost.Bytes += float64(reads) * 20
				}
				continue
			}
			idxBuf = idxBuf[:0]
			deltaBuf = deltaBuf[:0]
			lane(items[pos], func(idx int, delta float64) {
				idxBuf = append(idxBuf, int64(idx))
				deltaBuf = append(deltaBuf, delta)
			})
			if cfg.ReadSupport != nil {
				if reads := cfg.ReadSupport(items[pos]); reads > len(idxBuf) {
					extra := reads - len(idxBuf)
					cost.Flops += float64(extra) * float64(fpe) / 2
					cost.Bytes += float64(extra) * 20
				}
			}
			// One example per warp: no intra-warp conflicts by
			// construction. Cross-warp last-writer-wins remains.
			for k, ix := range idxBuf {
				if _, dup := roundWinner[int(ix)]; dup {
					st.LostInter++
				}
				roundWinner[int(ix)] = pendingDelta{int(ix), deltaBuf[k]}
			}
			st.Updates += int64(len(idxBuf))
			// Lanes stride the example's components: lockstep slots
			// round up to warp multiples but no lane waits on a
			// longer neighbour.
			slots := (len(idxBuf) + ws - 1) / ws * ws
			cost.Flops += float64(len(idxBuf)) * float64(fpe)
			cost.LockstepOps += float64(slots) * float64(fpe)
			tx := Transactions(idxBuf, 8, d.Spec.TransactionBytes) * 2
			cost.Transactions += tx
			cost.Bytes += float64(tx)*float64(d.Spec.TransactionBytes)*3 + float64(len(idxBuf))*12
			// Half the doubled transaction traffic is the write pass.
			cost.WriteBytes += float64(tx) / 2 * float64(d.Spec.TransactionBytes) * 3
		}
		if !anyWork {
			break
		}
		st.Rounds++
		for _, pd := range roundWinner {
			apply(pd.idx, pd.delta)
			st.Applied++
		}
	}
	st.Cost = d.finish(cost)
	return st
}
