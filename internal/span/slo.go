package span

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"sync"
	"time"
)

// The SLO engine: named objectives (p-quantile latency bounds, error-rate
// targets) evaluated with multi-window burn rates over log-bucketed latency
// histograms — the Google-SRE alerting discipline. A burn rate of 1 means
// the service is consuming its error budget exactly at the rate that
// exhausts it at the window's end; an alert fires only when BOTH the fast
// and the slow window burn above the threshold, so a brief blip (fast
// window hot, slow window cool) stays quiet while a sustained regression
// (both hot) pages quickly.
//
// Latency samples land in the same log-spaced bucket ladder the serving
// Stats histogram uses (8 buckets per decade, 1µs–10s), kept as a ring of
// per-tick slots so any trailing window is a bucket-sum away. An
// objective's latency bound therefore rounds up to the nearest bucket
// boundary (~33% granularity per step), which is exactly the resolution of
// the quantiles everything else in the repo reports.

// sloBounds is the latency bucket ladder (upper bounds in seconds),
// identical in shape to the serving stats histogram.
var sloBounds = func() []float64 {
	var b []float64
	for e := -6; e < 1; e++ {
		decade := math.Pow(10, float64(e))
		for i := 0; i < 8; i++ {
			b = append(b, decade*math.Pow(10, float64(i)/8))
		}
	}
	return append(b, 10)
}()

// Objective is one service-level objective over the request stream.
type Objective struct {
	// Name identifies the objective in reports and metric labels (the spec
	// term it was parsed from, e.g. "latency<=250ms@99").
	Name string `json:"name"`
	// Target is the success-fraction target in (0, 1), e.g. 0.999; the
	// error budget is 1 - Target.
	Target float64 `json:"target"`
	// LatencyBound, when positive, is the seconds bound a successful
	// request must also meet to count as good; 0 makes this an error-rate
	// objective (good = did not error).
	LatencyBound float64 `json:"latency_bound_s,omitempty"`
}

// ParseObjectives parses a comma-separated objective spec:
//
//	latency<=250ms@99     p-latency objective: 99% of requests under 250ms
//	errors@99.9           error-rate objective: 99.9% of requests succeed
//
// The percentage after @ is the success target.
func ParseObjectives(spec string) ([]Objective, error) {
	var out []Objective
	for _, term := range strings.Split(spec, ",") {
		term = strings.TrimSpace(term)
		if term == "" {
			continue
		}
		head, pct, ok := strings.Cut(term, "@")
		if !ok {
			return nil, fmt.Errorf("span: objective %q: missing @target", term)
		}
		target, err := strconv.ParseFloat(strings.TrimSpace(pct), 64)
		if err != nil {
			return nil, fmt.Errorf("span: objective %q: bad target: %v", term, err)
		}
		if target <= 0 || target >= 100 {
			return nil, fmt.Errorf("span: objective %q: target %v%% outside (0, 100)", term, target)
		}
		o := Objective{Name: term, Target: target / 100}
		switch {
		case head == "errors":
		case strings.HasPrefix(head, "latency<="):
			d, err := time.ParseDuration(strings.TrimPrefix(head, "latency<="))
			if err != nil {
				return nil, fmt.Errorf("span: objective %q: bad latency bound: %v", term, err)
			}
			if d <= 0 {
				return nil, fmt.Errorf("span: objective %q: nonpositive latency bound", term)
			}
			o.LatencyBound = d.Seconds()
		default:
			return nil, fmt.Errorf("span: objective %q: want latency<=DUR@PCT or errors@PCT", term)
		}
		out = append(out, o)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("span: empty objective spec")
	}
	return out, nil
}

// SLOConfig sizes the engine. Zero-valued windows default to the
// operational 1m fast / 10m slow pair; smoke tests shrink them to fit a
// seconds-long run.
type SLOConfig struct {
	Objectives []Objective
	// FastWindow and SlowWindow are the two burn-rate windows; an alert
	// requires both to burn above BurnThreshold.
	FastWindow time.Duration
	SlowWindow time.Duration
	// BurnThreshold is the burn-rate alert level (default 2: consuming the
	// budget twice as fast as sustainable).
	BurnThreshold float64
}

// sloSlot is one tick of request outcomes: total requests, errored
// requests, and the latency bucket counts of the non-errored ones.
type sloSlot struct {
	total   int64
	errs    int64
	buckets []int64
}

// SLO evaluates objectives over a ring of per-tick outcome slots. All
// methods are nil-receiver safe and guarded by one mutex — recording
// happens once per request completion (the dispatcher, plus rejection
// paths), far from any per-element hot loop.
type SLO struct {
	cfg   SLOConfig
	tick  time.Duration
	slots []sloSlot
	// boundIdx[i] is the bucket index objectives[i].LatencyBound rounds up
	// to (-1 for error-only objectives).
	boundIdx []int

	mu    sync.Mutex
	start time.Time
	cur   int64 // last advanced absolute slot number
	now   func() time.Time
}

// NewSLO builds the engine; returns nil (a valid no-op engine) for an
// empty objective list.
func NewSLO(cfg SLOConfig) *SLO {
	if len(cfg.Objectives) == 0 {
		return nil
	}
	if cfg.FastWindow <= 0 {
		cfg.FastWindow = time.Minute
	}
	if cfg.SlowWindow < cfg.FastWindow {
		cfg.SlowWindow = 10 * cfg.FastWindow
	}
	if cfg.BurnThreshold <= 0 {
		cfg.BurnThreshold = 2
	}
	// The tick quarters the fast window so its burn rate is computed from
	// at least 4 slots; the ring covers the slow window plus one live slot.
	tick := cfg.FastWindow / 4
	n := int(cfg.SlowWindow/tick) + 1
	s := &SLO{
		cfg:   cfg,
		tick:  tick,
		slots: make([]sloSlot, n),
		now:   time.Now,
	}
	for i := range s.slots {
		s.slots[i].buckets = make([]int64, len(sloBounds)+1)
	}
	for _, o := range cfg.Objectives {
		idx := -1
		if o.LatencyBound > 0 {
			idx = len(sloBounds) // overflow bucket: bound above the ladder
			for i, ub := range sloBounds {
				if ub >= o.LatencyBound {
					idx = i
					break
				}
			}
		}
		s.boundIdx = append(s.boundIdx, idx)
	}
	s.start = s.now()
	return s
}

// advance rotates the ring to the slot containing t, zeroing skipped slots.
// Callers hold mu.
func (s *SLO) advance(t time.Time) {
	slot := int64(t.Sub(s.start) / s.tick)
	if slot <= s.cur {
		return
	}
	// Clear every slot between the last write and now (bounded by the ring
	// size: beyond that everything is stale anyway).
	from := s.cur + 1
	if slot-from >= int64(len(s.slots)) {
		from = slot - int64(len(s.slots)) + 1
	}
	for i := from; i <= slot; i++ {
		sl := &s.slots[i%int64(len(s.slots))]
		sl.total, sl.errs = 0, 0
		for j := range sl.buckets {
			sl.buckets[j] = 0
		}
	}
	s.cur = slot
}

// Record folds one request outcome into the current slot: its latency in
// seconds and whether it failed (admission rejections and injected drops
// count as errors; client-side bad requests should not be recorded).
func (s *SLO) Record(latency float64, isErr bool) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.advance(s.now())
	sl := &s.slots[s.cur%int64(len(s.slots))]
	sl.total++
	if isErr {
		sl.errs++
	} else {
		lo, hi := 0, len(sloBounds)
		for lo < hi {
			mid := (lo + hi) / 2
			if latency <= sloBounds[mid] {
				hi = mid
			} else {
				lo = mid + 1
			}
		}
		sl.buckets[lo]++
	}
	s.mu.Unlock()
}

// window sums the trailing k slots for one objective: total requests and
// bad requests (errored, or over the latency bound). Callers hold mu.
func (s *SLO) window(k int, boundIdx int) (total, bad int64) {
	if k > len(s.slots) {
		k = len(s.slots)
	}
	for i := int64(0); i < int64(k); i++ {
		slot := s.cur - i
		if slot < 0 {
			break
		}
		sl := &s.slots[slot%int64(len(s.slots))]
		total += sl.total
		bad += sl.errs
		if boundIdx >= 0 {
			for j := boundIdx + 1; j < len(sl.buckets); j++ {
				bad += sl.buckets[j]
			}
		}
	}
	return total, bad
}

// ObjectiveReport is one objective's current evaluation.
type ObjectiveReport struct {
	Objective
	// FastBurn and SlowBurn are the burn rates of the two windows:
	// (bad fraction) / (error budget); 0 when the window is empty.
	FastBurn float64 `json:"fast_burn"`
	SlowBurn float64 `json:"slow_burn"`
	// FastBad/FastTotal and SlowBad/SlowTotal are the raw window tallies
	// behind the rates.
	FastBad   int64 `json:"fast_bad"`
	FastTotal int64 `json:"fast_total"`
	SlowBad   int64 `json:"slow_bad"`
	SlowTotal int64 `json:"slow_total"`
	// Alerting is the multi-window verdict: both windows burning above the
	// threshold.
	Alerting bool `json:"alerting"`
}

// Report is the /slo payload.
type Report struct {
	FastWindowS   float64           `json:"fast_window_s"`
	SlowWindowS   float64           `json:"slow_window_s"`
	BurnThreshold float64           `json:"burn_threshold"`
	Alerting      bool              `json:"alerting"`
	Objectives    []ObjectiveReport `json:"objectives"`
}

// Snapshot evaluates every objective now.
func (s *SLO) Snapshot() Report {
	if s == nil {
		return Report{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.advance(s.now())
	fastK := int(s.cfg.FastWindow / s.tick)
	slowK := int(s.cfg.SlowWindow / s.tick)
	rep := Report{
		FastWindowS:   s.cfg.FastWindow.Seconds(),
		SlowWindowS:   s.cfg.SlowWindow.Seconds(),
		BurnThreshold: s.cfg.BurnThreshold,
	}
	for i, o := range s.cfg.Objectives {
		or := ObjectiveReport{Objective: o}
		budget := 1 - o.Target
		or.FastTotal, or.FastBad = s.window(fastK, s.boundIdx[i])
		or.SlowTotal, or.SlowBad = s.window(slowK, s.boundIdx[i])
		if or.FastTotal > 0 && budget > 0 {
			or.FastBurn = float64(or.FastBad) / float64(or.FastTotal) / budget
		}
		if or.SlowTotal > 0 && budget > 0 {
			or.SlowBurn = float64(or.SlowBad) / float64(or.SlowTotal) / budget
		}
		or.Alerting = or.FastBurn > s.cfg.BurnThreshold && or.SlowBurn > s.cfg.BurnThreshold
		rep.Alerting = rep.Alerting || or.Alerting
		rep.Objectives = append(rep.Objectives, or)
	}
	return rep
}

// WriteProm renders the evaluation as Prometheus text under sgd_slo_.
func (s *SLO) WriteProm(b *strings.Builder) {
	if s == nil {
		return
	}
	rep := s.Snapshot()
	b.WriteString("# HELP sgd_slo_burn_rate Error-budget burn rate per objective and window.\n# TYPE sgd_slo_burn_rate gauge\n")
	for _, o := range rep.Objectives {
		fmt.Fprintf(b, "sgd_slo_burn_rate{objective=%q,window=\"fast\"} %g\n", o.Name, o.FastBurn)
		fmt.Fprintf(b, "sgd_slo_burn_rate{objective=%q,window=\"slow\"} %g\n", o.Name, o.SlowBurn)
	}
	b.WriteString("# HELP sgd_slo_alerting Multi-window burn alert state per objective (1 = firing).\n# TYPE sgd_slo_alerting gauge\n")
	for _, o := range rep.Objectives {
		v := 0
		if o.Alerting {
			v = 1
		}
		fmt.Fprintf(b, "sgd_slo_alerting{objective=%q} %d\n", o.Name, v)
	}
}
