package span

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// The offline analysis half: cmd/sgdspan and cmd/sgdtrace -spans read kept
// traces back and ask where the tail went. Attribution is the key number:
// for the traces at or above the p99 duration, what fraction of wall time
// is covered by named top-level spans? The serve instrumentation records a
// contiguous chain (admission → queue_wait → batch_assembly → score →
// chaos_stall → finalize → resume), so healthy attribution is ~100% and
// any unattributed remainder is reported explicitly instead of silently
// absorbed.

// NameStat aggregates every span sharing a name across the analyzed traces.
type NameStat struct {
	Name   string  `json:"name"`
	Parent string  `json:"parent,omitempty"` // most common parent
	Depth  int     `json:"depth"`            // 1 = direct child of the root
	Count  int     `json:"count"`
	P50US  float64 `json:"p50_us"`
	P99US  float64 `json:"p99_us"`
	MaxUS  float64 `json:"max_us"`
	// TotalUS is the summed duration; for top-level spans its share of the
	// summed trace wall time is the attribution column.
	TotalUS float64 `json:"total_us"`
}

// Attribution is the p99-tail coverage verdict.
type Attribution struct {
	// P99US is the p99 trace duration; TailTraces counts traces at or
	// above it.
	P99US      float64 `json:"p99_us"`
	TailTraces int     `json:"tail_traces"`
	// Attributed is the fraction of summed tail wall time covered by
	// top-level spans; UnattributedUS is the explicit remainder.
	Attributed     float64 `json:"attributed"`
	UnattributedUS float64 `json:"unattributed_us"`
}

// Analysis is the full summary of a span trace set.
type Analysis struct {
	Traces   int            `json:"traces"`
	Spans    int            `json:"spans"`
	ByKeep   map[string]int `json:"by_keep"`
	ByFault  map[string]int `json:"by_fault,omitempty"`
	Errors   int            `json:"errors"`
	MaxDepth int            `json:"max_depth"`
	P50US    float64        `json:"p50_us"`
	P99US    float64        `json:"p99_us"`
	MaxUS    float64        `json:"max_us"`
	Names    []NameStat     `json:"names"` // sorted by total time, descending
	Tail     Attribution    `json:"tail_attribution"`
}

// quantile returns the exact p-quantile of sorted (ascending) samples.
func quantile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return sorted[i]
}

// depthOf resolves a span's depth by walking parent names within its trace;
// unknown parents root the chain, and a cycle guard bounds the walk.
func depthOf(rec *TraceRec, s *SpanRec) int {
	depth := 1
	parent := s.Parent
	for hop := 0; parent != "" && hop < len(rec.Spans); hop++ {
		next := ""
		for i := range rec.Spans {
			if rec.Spans[i].Name == parent {
				next = rec.Spans[i].Parent
				break
			}
		}
		depth++
		parent = next
	}
	return depth
}

// Analyze summarises a set of kept traces.
func Analyze(traces []TraceRec) *Analysis {
	a := &Analysis{ByKeep: map[string]int{}, ByFault: map[string]int{}}
	durs := make([]float64, 0, len(traces))
	byName := map[string]*NameStat{}
	samples := map[string][]float64{}
	parents := map[string]map[string]int{}
	var order []string
	for i := range traces {
		rec := &traces[i]
		a.Traces++
		a.ByKeep[rec.Keep]++
		if rec.Fault != "" {
			a.ByFault[rec.Fault]++
		}
		if rec.Err != "" {
			a.Errors++
		}
		durs = append(durs, rec.DurUS)
		for j := range rec.Spans {
			s := &rec.Spans[j]
			a.Spans++
			ns, ok := byName[s.Name]
			if !ok {
				ns = &NameStat{Name: s.Name}
				byName[s.Name] = ns
				parents[s.Name] = map[string]int{}
				order = append(order, s.Name)
			}
			ns.Count++
			ns.TotalUS += s.DurUS
			if s.DurUS > ns.MaxUS {
				ns.MaxUS = s.DurUS
			}
			if d := depthOf(rec, s); d > ns.Depth {
				ns.Depth = d
				if d > a.MaxDepth {
					a.MaxDepth = d
				}
			}
			parents[s.Name][s.Parent]++
			samples[s.Name] = append(samples[s.Name], s.DurUS)
		}
	}
	sort.Float64s(durs)
	a.P50US = quantile(durs, 0.50)
	a.P99US = quantile(durs, 0.99)
	a.MaxUS = quantile(durs, 1)

	for _, name := range order {
		ns := byName[name]
		ss := samples[name]
		sort.Float64s(ss)
		ns.P50US = quantile(ss, 0.50)
		ns.P99US = quantile(ss, 0.99)
		best, bestN := "", -1
		for p, n := range parents[name] {
			if n > bestN || (n == bestN && p < best) {
				best, bestN = p, n
			}
		}
		ns.Parent = best
		a.Names = append(a.Names, *ns)
	}
	sort.Slice(a.Names, func(i, j int) bool {
		if a.Names[i].TotalUS != a.Names[j].TotalUS {
			return a.Names[i].TotalUS > a.Names[j].TotalUS
		}
		return a.Names[i].Name < a.Names[j].Name
	})

	// Tail attribution over the traces at or above the p99 duration.
	a.Tail.P99US = a.P99US
	var wall, attributed float64
	for i := range traces {
		rec := &traces[i]
		if rec.DurUS < a.P99US {
			continue
		}
		a.Tail.TailTraces++
		wall += rec.DurUS
		var top float64
		for j := range rec.Spans {
			if rec.Spans[j].Parent == "" {
				top += rec.Spans[j].DurUS
			}
		}
		if top > rec.DurUS {
			top = rec.DurUS // rounding: never claim more than the wall
		}
		attributed += top
	}
	if wall > 0 {
		a.Tail.Attributed = attributed / wall
		a.Tail.UnattributedUS = wall - attributed
	}
	return a
}

// fmtUS renders microseconds human-readably.
func fmtUS(us float64) string {
	switch {
	case us >= 1e6:
		return fmt.Sprintf("%.2fs", us/1e6)
	case us >= 1e3:
		return fmt.Sprintf("%.2fms", us/1e3)
	default:
		return fmt.Sprintf("%.1fµs", us)
	}
}

// WriteSummary renders the analysis: header, keep/fault breakdown, the
// per-span attribution table (top names by total time) and the tail
// attribution verdict.
func (a *Analysis) WriteSummary(w io.Writer, top int) {
	fmt.Fprintf(w, "%d traces (%d spans, max depth %d)", a.Traces, a.Spans, a.MaxDepth)
	if a.Traces > 0 {
		var keeps []string
		for _, k := range []string{KeepHead, KeepSlow, KeepFault, KeepError} {
			if n := a.ByKeep[k]; n > 0 {
				keeps = append(keeps, fmt.Sprintf("%s %d", k, n))
			}
		}
		fmt.Fprintf(w, ": kept by %s", strings.Join(keeps, ", "))
	}
	fmt.Fprintln(w)
	if a.Traces == 0 {
		return
	}
	fmt.Fprintf(w, "trace wall time: p50 %s  p99 %s  max %s\n", fmtUS(a.P50US), fmtUS(a.P99US), fmtUS(a.MaxUS))
	if len(a.ByFault) > 0 {
		var parts []string
		for f, n := range a.ByFault {
			parts = append(parts, fmt.Sprintf("%s=%d", f, n))
		}
		sort.Strings(parts)
		fmt.Fprintf(w, "chaos faults absorbed: %s (%d traces errored)\n", strings.Join(parts, " "), a.Errors)
	} else if a.Errors > 0 {
		fmt.Fprintf(w, "%d traces errored\n", a.Errors)
	}

	fmt.Fprintf(w, "\n%-18s %5s %7s %10s %10s %10s %10s\n", "span", "depth", "count", "p50", "p99", "max", "total")
	n := len(a.Names)
	if top > 0 && top < n {
		n = top
	}
	for _, ns := range a.Names[:n] {
		name := ns.Name
		if ns.Depth > 1 {
			name = strings.Repeat("  ", ns.Depth-1) + name
		}
		fmt.Fprintf(w, "%-18s %5d %7d %10s %10s %10s %10s\n",
			name, ns.Depth, ns.Count, fmtUS(ns.P50US), fmtUS(ns.P99US), fmtUS(ns.MaxUS), fmtUS(ns.TotalUS))
	}
	if n < len(a.Names) {
		fmt.Fprintf(w, "  (%d more span names)\n", len(a.Names)-n)
	}

	fmt.Fprintf(w, "\np99 tail attribution (%d traces >= %s): %.1f%% of wall time in named spans, %s unattributed\n",
		a.Tail.TailTraces, fmtUS(a.Tail.P99US), 100*a.Tail.Attributed, fmtUS(a.Tail.UnattributedUS))
}

// WriteWaterfall renders one trace as an indented critical-path waterfall:
// top-level spans in start order, children beneath their parents, each with
// a proportional bar.
func WriteWaterfall(w io.Writer, rec *TraceRec) {
	fmt.Fprintf(w, "trace %s %s %s keep=%s", rec.Trace, rec.Root, fmtUS(rec.DurUS), rec.Keep)
	if rec.Fault != "" {
		fmt.Fprintf(w, " fault=%s", rec.Fault)
	}
	if rec.Err != "" {
		fmt.Fprintf(w, " err=%s", rec.Err)
	}
	fmt.Fprintln(w)
	const cols = 32
	scale := rec.DurUS
	if scale <= 0 {
		scale = 1
	}
	// Stable child ordering: by start offset within each parent.
	idx := make([]int, len(rec.Spans))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(i, j int) bool {
		return rec.Spans[idx[i]].StartUS < rec.Spans[idx[j]].StartUS
	})
	var emit func(parent string, depth int)
	emit = func(parent string, depth int) {
		for _, i := range idx {
			s := &rec.Spans[i]
			if s.Parent != parent {
				continue
			}
			lo := int(s.StartUS / scale * cols)
			width := int(s.DurUS / scale * cols)
			if width < 1 {
				width = 1
			}
			if lo > cols-1 {
				lo = cols - 1
			}
			if lo+width > cols {
				width = cols - lo
			}
			bar := strings.Repeat(" ", lo) + strings.Repeat("█", width) + strings.Repeat(" ", cols-lo-width)
			label := strings.Repeat("  ", depth) + s.Name
			fmt.Fprintf(w, "  %-20s |%s| %9s +%s", label, bar, fmtUS(s.DurUS), fmtUS(s.StartUS))
			if s.Worker >= 0 {
				fmt.Fprintf(w, " worker=%d", s.Worker)
			}
			if s.Fault != "" {
				fmt.Fprintf(w, " fault=%s", s.Fault)
			}
			fmt.Fprintln(w)
			if s.Name != parent { // guard self-parented spans
				emit(s.Name, depth+1)
			}
		}
	}
	emit("", 0)
}
