package span

import (
	"math"
	"strings"
	"testing"
	"time"
)

// fakeClock drives an SLO engine deterministically.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time       { return c.t }
func (c *fakeClock) step(d time.Duration) { c.t = c.t.Add(d) }
func newTestSLO(cfg SLOConfig) (*SLO, *fakeClock) {
	c := &fakeClock{t: time.Unix(1000, 0)}
	s := NewSLO(cfg)
	if s != nil {
		s.now = c.now
		s.start = c.t
	}
	return s, c
}

func TestParseObjectives(t *testing.T) {
	objs, err := ParseObjectives("latency<=250ms@99, errors@99.9")
	if err != nil {
		t.Fatal(err)
	}
	if len(objs) != 2 {
		t.Fatalf("got %d objectives", len(objs))
	}
	if objs[0].Name != "latency<=250ms@99" || objs[0].Target != 0.99 || objs[0].LatencyBound != 0.25 {
		t.Fatalf("latency objective = %+v", objs[0])
	}
	if math.Abs(objs[1].Target-0.999) > 1e-12 || objs[1].LatencyBound != 0 {
		t.Fatalf("error objective = %+v", objs[1])
	}
	for _, bad := range []string{"", "latency<=250ms", "errors@0", "errors@100", "errors@x", "latency<=-1s@99", "wat@99"} {
		if _, err := ParseObjectives(bad); err == nil {
			t.Fatalf("ParseObjectives(%q) accepted", bad)
		}
	}
}

// TestBurnRateMath: 10% errors against a 1% budget burns at 10 in both
// windows once sustained — alert fires; after recovery the fast window cools
// first and the alert clears even while the slow window still burns.
func TestBurnRateMath(t *testing.T) {
	objs, _ := ParseObjectives("errors@99")
	s, c := newTestSLO(SLOConfig{
		Objectives: objs, FastWindow: time.Minute, SlowWindow: 4 * time.Minute, BurnThreshold: 2,
	})
	// 4 minutes of sustained 10% errors.
	for m := 0; m < 16; m++ { // 16 ticks of 15s
		for i := 0; i < 100; i++ {
			s.Record(0.001, i < 10)
		}
		c.step(15 * time.Second)
	}
	rep := s.Snapshot()
	o := rep.Objectives[0]
	if o.FastBurn < 9.9 || o.FastBurn > 10.1 || o.SlowBurn < 9.9 || o.SlowBurn > 10.1 {
		t.Fatalf("burns = %v %v, want ~10", o.FastBurn, o.SlowBurn)
	}
	if !o.Alerting || !rep.Alerting {
		t.Fatalf("sustained burn must alert: %+v", o)
	}
	// Recovery: 1 minute of clean traffic clears the fast window.
	for m := 0; m < 4; m++ {
		for i := 0; i < 100; i++ {
			s.Record(0.001, false)
		}
		c.step(15 * time.Second)
	}
	o = s.Snapshot().Objectives[0]
	if o.FastBurn != 0 {
		t.Fatalf("fast burn after recovery = %v, want 0", o.FastBurn)
	}
	if o.SlowBurn <= 2 {
		t.Fatalf("slow burn should still be hot, got %v", o.SlowBurn)
	}
	if o.Alerting {
		t.Fatal("alert must clear when the fast window cools")
	}
}

// TestAlertNeedsBothWindows: a brief blip heats the fast window only — the
// slow window dilutes it below threshold, so no alert. A 10% error budget
// keeps a 1-minute full-error blip at slow burn 1.0 (1/10 of the window bad
// against a 0.1 budget).
func TestAlertNeedsBothWindows(t *testing.T) {
	objs, _ := ParseObjectives("errors@90")
	s, c := newTestSLO(SLOConfig{
		Objectives: objs, FastWindow: time.Minute, SlowWindow: 10 * time.Minute, BurnThreshold: 2,
	})
	// 9 minutes clean, then a 1-minute 100%-error blip.
	for m := 0; m < 36; m++ {
		for i := 0; i < 100; i++ {
			s.Record(0.001, false)
		}
		c.step(15 * time.Second)
	}
	for m := 0; m < 4; m++ {
		for i := 0; i < 100; i++ {
			s.Record(0.001, true)
		}
		c.step(15 * time.Second)
	}
	o := s.Snapshot().Objectives[0]
	if o.FastBurn <= 2 {
		t.Fatalf("fast window should be burning, got %v", o.FastBurn)
	}
	if o.SlowBurn > 2 {
		t.Fatalf("slow window should still be diluted, got %v", o.SlowBurn)
	}
	if o.Alerting {
		t.Fatal("single-window burn must not alert")
	}
}

// TestLatencyObjective: requests over the bound count against the budget
// even when they succeed.
func TestLatencyObjective(t *testing.T) {
	objs, _ := ParseObjectives("latency<=10ms@90")
	s, c := newTestSLO(SLOConfig{
		Objectives: objs, FastWindow: time.Minute, SlowWindow: 2 * time.Minute, BurnThreshold: 2,
	})
	for m := 0; m < 8; m++ {
		for i := 0; i < 100; i++ {
			lat := 0.001
			if i < 50 {
				lat = 0.1 // 50% over the 10ms bound
			}
			s.Record(lat, false)
		}
		c.step(15 * time.Second)
	}
	o := s.Snapshot().Objectives[0]
	// 50% bad against a 10% budget: burn 5.
	if o.FastBurn < 4.9 || o.FastBurn > 5.1 {
		t.Fatalf("fast burn = %v, want ~5", o.FastBurn)
	}
	if !o.Alerting {
		t.Fatal("sustained latency violation must alert")
	}
}

// TestSlotExpiry: outcomes older than the slow window rotate out entirely.
func TestSlotExpiry(t *testing.T) {
	objs, _ := ParseObjectives("errors@99")
	s, c := newTestSLO(SLOConfig{
		Objectives: objs, FastWindow: time.Minute, SlowWindow: 2 * time.Minute, BurnThreshold: 2,
	})
	for i := 0; i < 100; i++ {
		s.Record(0.001, true)
	}
	c.step(10 * time.Minute) // far past the slow window
	o := s.Snapshot().Objectives[0]
	if o.SlowTotal != 0 || o.SlowBurn != 0 {
		t.Fatalf("stale outcomes survived rotation: %+v", o)
	}
}

func TestSLONil(t *testing.T) {
	var s *SLO
	s.Record(0.01, false)
	if rep := s.Snapshot(); rep.Alerting || len(rep.Objectives) != 0 {
		t.Fatalf("nil SLO report = %+v", rep)
	}
	var b strings.Builder
	s.WriteProm(&b)
	if b.Len() != 0 {
		t.Fatal("nil SLO wrote prom text")
	}
	if NewSLO(SLOConfig{}) != nil {
		t.Fatal("empty objective list must yield nil engine")
	}
}

func TestSLOWriteProm(t *testing.T) {
	objs, _ := ParseObjectives("errors@99")
	s, _ := newTestSLO(SLOConfig{Objectives: objs, FastWindow: time.Minute})
	s.Record(0.001, true)
	var b strings.Builder
	s.WriteProm(&b)
	out := b.String()
	for _, want := range []string{
		`sgd_slo_burn_rate{objective="errors@99",window="fast"}`,
		`sgd_slo_alerting{objective="errors@99"}`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prom output missing %q:\n%s", want, out)
		}
	}
}
