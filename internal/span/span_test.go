package span

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"time"
)

// TestSamplingDeterminism: head-sampling is a pure function of (seed, id) —
// two tracers with the same seed agree on every ID, and the kept fraction
// lands near the configured rate.
func TestSamplingDeterminism(t *testing.T) {
	a := NewTracer(Config{SampleRate: 0.1, Seed: 42}, nil)
	b := NewTracer(Config{SampleRate: 0.1, Seed: 42}, nil)
	c := NewTracer(Config{SampleRate: 0.1, Seed: 43}, nil)
	const n = 20000
	kept, diverged := 0, 0
	for id := ID(1); id <= n; id++ {
		sa := a.Sampled(id)
		if sa != b.Sampled(id) {
			t.Fatalf("same seed diverged at id %d", id)
		}
		if sa != c.Sampled(id) {
			diverged++
		}
		if sa {
			kept++
		}
	}
	frac := float64(kept) / n
	if frac < 0.08 || frac > 0.12 {
		t.Fatalf("sample fraction %.4f far from 0.1", frac)
	}
	if diverged == 0 {
		t.Fatalf("different seeds produced identical decisions over %d ids", n)
	}
	if a.Sampled(7) != a.Sampled(7) {
		t.Fatal("Sampled not stable for one id")
	}
	// Rate edges.
	if NewTracer(Config{SampleRate: 1, Seed: 1}, nil).Sampled(123) != true {
		t.Fatal("rate 1 must sample everything")
	}
	if NewTracer(Config{Seed: 1}, nil).Sampled(123) != false {
		t.Fatal("rate 0 must sample nothing")
	}
}

// TestKeepPrecedence: error > fault > slow > head, and unkept traces export
// nothing.
func TestKeepPrecedence(t *testing.T) {
	cases := []struct {
		name    string
		rate    float64
		slow    time.Duration
		fault   string
		errKind string
		want    string // "" = not kept
	}{
		{"error wins over fault", 1, 0, "straggler", "drop", KeepError},
		{"fault wins over head", 1, 0, "straggler", "", KeepFault},
		{"slow", 0, time.Nanosecond, "", "", KeepSlow},
		{"head", 1, 0, "", "", KeepHead},
		{"unkept", 0, 0, "", "", ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var buf bytes.Buffer
			w := NewWriter(&buf)
			tr := NewTracer(Config{SampleRate: tc.rate, SlowThreshold: tc.slow, Seed: 7}, w)
			x := tr.Start("predict", 0)
			x.Record("queue_wait", "", x.Epoch(), x.Epoch().Add(time.Millisecond), -1, "")
			if tc.fault != "" {
				x.Annotate(tc.fault)
			}
			if tc.slow > 0 {
				time.Sleep(time.Microsecond)
			}
			x.Finish(tc.errKind)
			if err := w.Close(); err != nil {
				t.Fatal(err)
			}
			recs, err := Read(&buf)
			if err != nil {
				t.Fatal(err)
			}
			if tc.want == "" {
				if len(recs) != 0 {
					t.Fatalf("unkept trace exported: %+v", recs)
				}
				return
			}
			if len(recs) != 1 {
				t.Fatalf("want 1 trace, got %d", len(recs))
			}
			if recs[0].Keep != tc.want {
				t.Fatalf("keep = %q, want %q", recs[0].Keep, tc.want)
			}
			if recs[0].Err != tc.errKind {
				t.Fatalf("err = %q, want %q", recs[0].Err, tc.errKind)
			}
			if recs[0].Fault != tc.fault {
				t.Fatalf("fault = %q, want %q", recs[0].Fault, tc.fault)
			}
			st := tr.Stats()
			if st.Started != 1 || st.Kept != 1 {
				t.Fatalf("stats = %+v", st)
			}
		})
	}
}

// TestRoundTrip: a recorded tree survives the Writer/Read JSONL round trip
// with offsets, workers and faults intact.
func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	tr := NewTracer(Config{SampleRate: 1, Seed: 1}, w)
	x := tr.Start("predict", 0xabc)
	e := x.Epoch()
	x.Record("queue_wait", "", e, e.Add(2*time.Millisecond), -1, "")
	x.Record("score", "", e.Add(2*time.Millisecond), e.Add(5*time.Millisecond), -1, "")
	x.Record("score/shard", "score", e.Add(2*time.Millisecond), e.Add(4*time.Millisecond), 3, "")
	x.Record("chaos_stall", "", e.Add(5*time.Millisecond), e.Add(9*time.Millisecond), -1, "straggler")
	x.Finish("")
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if !Looks(bytes.Split(buf.Bytes(), []byte("\n"))[0]) {
		t.Fatal("Looks rejected a span line")
	}
	recs, err := Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("want 1 trace, got %d", len(recs))
	}
	rec := recs[0]
	if rec.Trace != "0000000000000abc" || rec.Root != "predict" {
		t.Fatalf("header = %q %q", rec.Trace, rec.Root)
	}
	if rec.Keep != KeepFault {
		t.Fatalf("fault span must force retention, keep = %q", rec.Keep)
	}
	if len(rec.Spans) != 4 {
		t.Fatalf("want 4 spans, got %d", len(rec.Spans))
	}
	sh := rec.Spans[2]
	if sh.Name != "score/shard" || sh.Parent != "score" || sh.Worker != 3 {
		t.Fatalf("shard span = %+v", sh)
	}
	if sh.StartUS < 1900 || sh.StartUS > 2100 || sh.DurUS < 1900 || sh.DurUS > 2100 {
		t.Fatalf("shard offsets = %v %v, want ~2000", sh.StartUS, sh.DurUS)
	}
	if rec.Spans[3].Fault != "straggler" {
		t.Fatalf("stall fault lost: %+v", rec.Spans[3])
	}
	// ID round trip.
	id, ok := ParseID(rec.Trace)
	if !ok || id != 0xabc {
		t.Fatalf("ParseID(%q) = %v %v", rec.Trace, id, ok)
	}
	if _, ok := ParseID("zz"); ok {
		t.Fatal("ParseID accepted garbage")
	}
	if _, ok := ParseID(""); ok {
		t.Fatal("ParseID accepted empty")
	}
}

// TestFreelistSteadyState: unkept traces allocate nothing once the freelist
// is primed.
func TestFreelistSteadyState(t *testing.T) {
	tr := NewTracer(Config{Seed: 1}, nil) // rate 0: nothing kept
	// Prime.
	for i := 0; i < 16; i++ {
		x := tr.Start("predict", 0)
		x.Record("queue_wait", "", x.Epoch(), x.Epoch(), -1, "")
		x.Finish("")
	}
	allocs := testing.AllocsPerRun(200, func() {
		x := tr.Start("predict", 0)
		e := x.Epoch()
		x.Record("queue_wait", "", e, e, -1, "")
		x.Record("score", "", e, e, -1, "")
		x.Finish("")
	})
	if allocs > 0 {
		t.Fatalf("steady-state trace cost %v allocs/op, want 0", allocs)
	}
}

// TestMaxSpansTruncation: the per-trace cap drops further records and counts
// them.
func TestMaxSpansTruncation(t *testing.T) {
	tr := NewTracer(Config{SampleRate: 1, Seed: 1, MaxSpans: 4}, nil)
	x := tr.Start("predict", 0)
	e := x.Epoch()
	for i := 0; i < 10; i++ {
		x.Record("s", "", e, e, -1, "")
	}
	x.Finish("")
	if got := tr.Stats().Truncated; got != 6 {
		t.Fatalf("truncated = %d, want 6", got)
	}
}

// TestNilSafety: a nil tracer and nil trace are inert.
func TestNilSafety(t *testing.T) {
	var tr *Tracer
	x := tr.Start("predict", 0)
	if x != nil {
		t.Fatal("nil tracer must hand out nil traces")
	}
	x.Record("a", "", time.Now(), time.Now(), -1, "")
	x.Annotate("f")
	x.Finish("err")
	if x.ID() != 0 {
		t.Fatal("nil trace ID")
	}
	if tr.Sampled(1) || tr.Stats() != (Stats{}) {
		t.Fatal("nil tracer must be inert")
	}
	var b strings.Builder
	tr.WriteProm(&b)
	if b.Len() != 0 {
		t.Fatal("nil tracer wrote prom text")
	}
}

// TestWriteProm: the tally renders with every keep reason labelled.
func TestWriteProm(t *testing.T) {
	tr := NewTracer(Config{SampleRate: 1, Seed: 1}, nil)
	tr.Start("predict", 0).Finish("")
	var b strings.Builder
	tr.WriteProm(&b)
	out := b.String()
	for _, want := range []string{
		"sgd_span_traces_total 1",
		`sgd_span_kept_total{reason="head"} 1`,
		`sgd_span_kept_total{reason="fault"} 0`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prom output missing %q:\n%s", want, out)
		}
	}
}

// TestAnalyze: attribution math over a synthetic trace set — the fast traces
// fully covered, the single p99-tail trace only half covered, so the tail
// attribution must report the uncovered half explicitly.
func TestAnalyze(t *testing.T) {
	var traces []TraceRec
	for i := 0; i < 99; i++ {
		traces = append(traces, TraceRec{
			Trace: "t", Root: "predict", DurUS: 100, Keep: KeepHead,
			Spans: []SpanRec{
				{Name: "queue_wait", StartUS: 0, DurUS: 40, Worker: -1},
				{Name: "score", StartUS: 40, DurUS: 60, Worker: -1},
				{Name: "score/shard", Parent: "score", StartUS: 40, DurUS: 50, Worker: 0},
			},
		})
	}
	traces = append(traces, TraceRec{
		Trace: "slow", Root: "predict", DurUS: 1000, Keep: KeepSlow,
		Spans: []SpanRec{{Name: "score", StartUS: 0, DurUS: 500, Worker: -1}},
	})
	a := Analyze(traces)
	if a.Traces != 100 || a.Spans != 298 {
		t.Fatalf("counts = %d traces %d spans", a.Traces, a.Spans)
	}
	if a.MaxDepth != 2 {
		t.Fatalf("max depth = %d, want 2", a.MaxDepth)
	}
	// 99 tied durations put the p99 at the common value, so every trace is
	// in the tail: wall 99*100+1000, attributed 99*100+500.
	if a.Tail.TailTraces != 100 || a.Tail.UnattributedUS != 500 {
		t.Fatalf("tail = %+v", a.Tail)
	}
	if want := 10400.0 / 10900.0; math.Abs(a.Tail.Attributed-want) > 1e-9 {
		t.Fatalf("attributed = %v, want %v", a.Tail.Attributed, want)
	}
	// score dominates total time: 99*60 + 500 > 99*40.
	if a.Names[0].Name != "score" {
		t.Fatalf("top span = %q, want score", a.Names[0].Name)
	}
	var sb strings.Builder
	a.WriteSummary(&sb, 10)
	out := sb.String()
	for _, want := range []string{"100 traces", "score/shard", "500.0µs unattributed"} {
		if !strings.Contains(out, want) {
			t.Fatalf("summary missing %q:\n%s", want, out)
		}
	}
	var wb strings.Builder
	WriteWaterfall(&wb, &traces[0])
	wout := wb.String()
	if !strings.Contains(wout, "queue_wait") || !strings.Contains(wout, "worker=0") {
		t.Fatalf("waterfall missing spans:\n%s", wout)
	}
}

// TestConcurrentRecord: shards recording into one trace race-free (run with
// -race in CI).
func TestConcurrentRecord(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	tr := NewTracer(Config{SampleRate: 1, Seed: 1}, w)
	x := tr.Start("predict", 0)
	e := x.Epoch()
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 50; i++ {
				x.Record("score/shard", "score", e, e.Add(time.Microsecond), g, "")
			}
		}(g)
	}
	for g := 0; g < 8; g++ {
		<-done
	}
	x.Finish("")
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	recs, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || len(recs[0].Spans) != 128 { // capped at MaxSpans default
		t.Fatalf("got %d traces, %d spans", len(recs), len(recs[0].Spans))
	}
}
