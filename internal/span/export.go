package span

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
)

// Writer streams kept traces as JSON Lines, one TraceRec per line — the
// span-side sibling of obs.TraceWriter. Safe for concurrent use by the many
// requester goroutines finishing traces.
type Writer struct {
	mu  sync.Mutex
	buf *bufio.Writer
	cl  io.Closer
	err error
}

// NewWriter wraps an io.Writer as a span sink.
func NewWriter(w io.Writer) *Writer {
	sw := &Writer{buf: bufio.NewWriter(w)}
	if c, ok := w.(io.Closer); ok {
		sw.cl = c
	}
	return sw
}

// CreateWriter creates (truncating) a span JSONL file at path.
func CreateWriter(path string) (*Writer, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("span: create trace file: %w", err)
	}
	return NewWriter(f), nil
}

// write emits one trace line.
func (w *Writer) write(rec *TraceRec) {
	line, err := json.Marshal(rec)
	w.mu.Lock()
	defer w.mu.Unlock()
	if err != nil {
		w.err = err
		return
	}
	if _, err := w.buf.Write(append(line, '\n')); err != nil && w.err == nil {
		w.err = err
	}
}

// Close flushes buffered traces and closes the underlying file, reporting
// the first write error encountered.
func (w *Writer) Close() error {
	if w == nil {
		return nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.buf.Flush(); err != nil && w.err == nil {
		w.err = err
	}
	if w.cl != nil {
		if err := w.cl.Close(); err != nil && w.err == nil {
			w.err = err
		}
		w.cl = nil
	}
	return w.err
}

// Read parses a span JSONL stream. Blank lines are skipped; a malformed
// line aborts with an error naming its line number.
func Read(r io.Reader) ([]TraceRec, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var out []TraceRec
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec TraceRec
		if err := json.Unmarshal(line, &rec); err != nil {
			return nil, fmt.Errorf("span: trace line %d: %w", lineNo, err)
		}
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("span: trace read: %w", err)
	}
	return out, nil
}

// ReadFile parses a span JSONL file.
func ReadFile(path string) ([]TraceRec, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}

// Looks reports whether the first nonempty line of data parses as a span
// TraceRec rather than an obs epoch event — how cmd/sgdtrace sniffs the
// format when -spans is not given explicitly.
func Looks(line []byte) bool {
	var rec struct {
		Trace string  `json:"trace"`
		DurUS float64 `json:"dur_us"`
	}
	return json.Unmarshal(line, &rec) == nil && rec.Trace != ""
}
