// Package span is the request-level tracing and SLO layer of the serving
// path. The paper's method is to decompose time-to-convergence into phases —
// compute, update, synchronisation — and internal/obs does that per epoch;
// this package applies the same discipline per *request*: every prediction
// admitted by internal/serve grows a causal span tree (admission, queue
// wait, batch assembly, scoring, per-worker shards, chaos stalls) rooted at
// a trace ID, so a slow p99 is attributable to a named stage instead of
// disappearing into an aggregate histogram.
//
// Design constraints, mirroring the obs package:
//
//   - Allocation discipline. Trace objects are recycled through a freelist
//     and span records reuse a per-trace buffer, so the steady-state cost of
//     tracing an unkept request is a few mutex-guarded appends and zero heap
//     allocations (asserted by a test).
//   - Monotonic timing. All span boundaries are time.Time values whose
//     monotonic reading drives the arithmetic; wall-clock steps cannot tear
//     a waterfall.
//   - Head sampling + tail retention. The keep decision combines a
//     deterministic head sample (a splitmix64 hash of seed and trace ID
//     against the sample rate — replayable for a fixed seed) with tail-based
//     retention: traces that were slow, errored, or absorbed a chaos fault
//     are always exported, so the interesting requests survive a 1% rate.
//
// Kept traces stream as JSONL (one TraceRec per line) next to the obs epoch
// trace; cmd/sgdspan and cmd/sgdtrace -spans read them back. The companion
// SLO engine (slo.go) turns the same request outcomes into multi-window
// burn rates over log-bucketed latency histograms, surfaced at /slo and in
// Prometheus — the promotion/rollback signal the serving-fleet direction of
// the ROADMAP gates on.
package span

import (
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// ID identifies one trace, rendered as 16 lowercase hex digits (the form
// carried in the X-Trace-Id HTTP header).
type ID uint64

// String renders the ID as 16 hex digits.
func (id ID) String() string { return fmt.Sprintf("%016x", uint64(id)) }

// ParseID parses the hex form; ok is false for empty or malformed input.
func ParseID(s string) (ID, bool) {
	if s == "" || len(s) > 16 {
		return 0, false
	}
	v, err := strconv.ParseUint(s, 16, 64)
	if err != nil {
		return 0, false
	}
	return ID(v), true
}

// Keep reasons, exported in TraceRec.Keep: why a finished trace survived.
const (
	// KeepHead: the deterministic head sample selected the trace ID.
	KeepHead = "head"
	// KeepSlow: tail retention, the trace exceeded the slow threshold.
	KeepSlow = "slow"
	// KeepFault: tail retention, a chaos fault annotated the trace.
	KeepFault = "fault"
	// KeepError: tail retention, the request finished with an error.
	KeepError = "error"
)

// SpanRec is one exported span of a trace. Offsets are microseconds from
// the trace root's start; Parent names the enclosing span ("" = a direct
// child of the root request), so the tree is reconstructible without span
// IDs. Worker is the pool worker that executed a scoring shard (-1 for
// spans that are not worker shards; the chunk a dispatching goroutine runs
// inline also reports -1).
type SpanRec struct {
	Name    string  `json:"name"`
	Parent  string  `json:"parent,omitempty"`
	StartUS float64 `json:"start_us"`
	DurUS   float64 `json:"dur_us"`
	Worker  int     `json:"worker"`
	Fault   string  `json:"fault,omitempty"`
}

// TraceRec is the JSONL schema of one kept trace.
type TraceRec struct {
	Trace string    `json:"trace"`
	Root  string    `json:"root"`
	DurUS float64   `json:"dur_us"`
	Keep  string    `json:"keep"`
	Err   string    `json:"err,omitempty"`
	Fault string    `json:"fault,omitempty"`
	Spans []SpanRec `json:"spans"`
}

// Config sizes a Tracer. The zero value samples nothing but still retains
// errored/faulted traces (tail retention is always on).
type Config struct {
	// SampleRate is the head-sampling probability in [0, 1]: the fraction
	// of trace IDs kept regardless of outcome.
	SampleRate float64
	// SlowThreshold, when positive, always keeps traces at least this slow
	// (tail-based retention of the latency tail).
	SlowThreshold time.Duration
	// Seed drives the deterministic head-sampling hash; a fixed seed makes
	// keep decisions a pure function of the trace ID.
	Seed int64
	// MaxSpans caps the spans recorded per trace (further Records are
	// counted as truncated and dropped). Default 128.
	MaxSpans int
}

// Stats is a Tracer's lifetime tally, embedded in sgdload reports and
// logged by sgdserve at shutdown.
type Stats struct {
	Started   int64 `json:"started"`
	Kept      int64 `json:"kept"`
	KeptHead  int64 `json:"kept_head"`
	KeptSlow  int64 `json:"kept_slow"`
	KeptFault int64 `json:"kept_fault"`
	KeptError int64 `json:"kept_error"`
	Truncated int64 `json:"truncated_spans,omitempty"`
}

// Tracer hands out Traces, decides retention and streams kept traces to a
// Writer. All methods are safe for concurrent use and nil-receiver safe, so
// an uninstrumented serving core pays only nil checks.
type Tracer struct {
	cfg Config
	w   *Writer

	next      atomic.Uint64
	free      chan *Trace
	started   atomic.Int64
	keptHead  atomic.Int64
	keptSlow  atomic.Int64
	keptFault atomic.Int64
	keptError atomic.Int64
	truncated atomic.Int64
}

// NewTracer builds a tracer exporting kept traces to w (nil w: decisions
// and stats only, nothing exported).
func NewTracer(cfg Config, w *Writer) *Tracer {
	if cfg.MaxSpans <= 0 {
		cfg.MaxSpans = 128
	}
	return &Tracer{cfg: cfg, w: w, free: make(chan *Trace, 1024)}
}

// sampleHash is splitmix64 over (seed, id): the per-decision discipline of
// internal/chaos, reused so sampling is independent of request order.
func sampleHash(seed int64, id ID) uint64 {
	z := uint64(seed)*0x9e3779b97f4a7c15 + uint64(id)*0xda942042e4dd58b5 + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Sampled reports the head-sampling decision for a trace ID — deterministic
// for a fixed Config.Seed.
func (t *Tracer) Sampled(id ID) bool {
	if t == nil || t.cfg.SampleRate <= 0 {
		return false
	}
	if t.cfg.SampleRate >= 1 {
		return true
	}
	return float64(sampleHash(t.cfg.Seed, id)>>11)/(1<<53) < t.cfg.SampleRate
}

// Stats returns the lifetime tally.
func (t *Tracer) Stats() Stats {
	if t == nil {
		return Stats{}
	}
	return Stats{
		Started:   t.started.Load(),
		Kept:      t.keptHead.Load() + t.keptSlow.Load() + t.keptFault.Load() + t.keptError.Load(),
		KeptHead:  t.keptHead.Load(),
		KeptSlow:  t.keptSlow.Load(),
		KeptFault: t.keptFault.Load(),
		KeptError: t.keptError.Load(),
		Truncated: t.truncated.Load(),
	}
}

// Start opens a trace rooted at root. A zero id draws the next internal ID;
// a nonzero id propagates a caller-supplied one (the X-Trace-Id path).
// Returns nil (a valid no-op trace) when the tracer itself is nil.
func (t *Tracer) Start(root string, id ID) *Trace {
	if t == nil {
		return nil
	}
	if id == 0 {
		id = ID(t.next.Add(1))
	}
	t.started.Add(1)
	var tr *Trace
	select {
	case tr = <-t.free:
	default:
		tr = &Trace{}
	}
	tr.t = t
	tr.id = id
	tr.root = root
	tr.start = time.Now()
	tr.sampled = t.Sampled(id)
	tr.fault = ""
	tr.spans = tr.spans[:0]
	return tr
}

// Trace is one live request's span collector. A nil *Trace is valid and
// makes every method a no-op. Record and Annotate are safe for concurrent
// use (pool worker shards record concurrently); Finish must be called
// exactly once, after which the trace must not be touched (it returns to
// the freelist).
type Trace struct {
	t       *Tracer
	id      ID
	root    string
	start   time.Time
	sampled bool

	mu    sync.Mutex
	fault string
	spans []SpanRec
}

// ID returns the trace ID (0 for a nil trace).
func (tr *Trace) ID() ID {
	if tr == nil {
		return 0
	}
	return tr.id
}

// Epoch returns the trace root's start time, the zero point of all span
// offsets.
func (tr *Trace) Epoch() time.Time {
	if tr == nil {
		return time.Time{}
	}
	return tr.start
}

// Annotate marks the trace as having absorbed a chaos fault, forcing tail
// retention; the last annotation wins the trace-level field.
func (tr *Trace) Annotate(fault string) {
	if tr == nil {
		return
	}
	tr.mu.Lock()
	tr.fault = fault
	tr.mu.Unlock()
}

// Record appends one completed span: [start, end) under the named parent
// ("" = direct child of the root), executed by the given pool worker (-1
// when not a worker shard), optionally annotated with the fault it
// absorbed. Negative offsets (clock skew across goroutines' monotonic
// stamps cannot happen; misuse can) clamp to zero.
func (tr *Trace) Record(name, parent string, start, end time.Time, worker int, fault string) {
	if tr == nil {
		return
	}
	off := start.Sub(tr.start)
	if off < 0 {
		off = 0
	}
	dur := end.Sub(start)
	if dur < 0 {
		dur = 0
	}
	tr.mu.Lock()
	if len(tr.spans) >= tr.t.cfg.MaxSpans {
		tr.mu.Unlock()
		tr.t.truncated.Add(1)
		return
	}
	tr.spans = append(tr.spans, SpanRec{
		Name:    name,
		Parent:  parent,
		StartUS: float64(off) / 1e3,
		DurUS:   float64(dur) / 1e3,
		Worker:  worker,
		Fault:   fault,
	})
	if fault != "" && tr.fault == "" {
		tr.fault = fault
	}
	tr.mu.Unlock()
}

// Finish closes the trace with an error kind ("" = success), decides
// retention — head sample, slow tail, fault, or error — exports a kept
// trace, and recycles the object. The trace must not be used afterwards.
func (tr *Trace) Finish(errKind string) {
	if tr == nil {
		return
	}
	t := tr.t
	dur := time.Since(tr.start)
	keep := ""
	switch {
	case errKind != "":
		keep = KeepError
		t.keptError.Add(1)
	case tr.fault != "":
		keep = KeepFault
		t.keptFault.Add(1)
	case t.cfg.SlowThreshold > 0 && dur >= t.cfg.SlowThreshold:
		keep = KeepSlow
		t.keptSlow.Add(1)
	case tr.sampled:
		keep = KeepHead
		t.keptHead.Add(1)
	}
	if keep != "" && t.w != nil {
		t.w.write(&TraceRec{
			Trace: tr.id.String(),
			Root:  tr.root,
			DurUS: float64(dur) / 1e3,
			Keep:  keep,
			Err:   errKind,
			Fault: tr.fault,
			Spans: tr.spans,
		})
	}
	tr.t = nil
	select {
	case t.free <- tr:
	default:
	}
}

// WriteProm renders the tracer tally as Prometheus text under sgd_span_.
func (t *Tracer) WriteProm(w interface{ WriteString(string) (int, error) }) {
	if t == nil {
		return
	}
	s := t.Stats()
	w.WriteString("# HELP sgd_span_traces_total Traces started on the serve path.\n# TYPE sgd_span_traces_total counter\n")
	w.WriteString(fmt.Sprintf("sgd_span_traces_total %d\n", s.Started))
	w.WriteString("# HELP sgd_span_kept_total Traces retained, by keep reason.\n# TYPE sgd_span_kept_total counter\n")
	for _, kv := range []struct {
		reason string
		n      int64
	}{{KeepHead, s.KeptHead}, {KeepSlow, s.KeptSlow}, {KeepFault, s.KeptFault}, {KeepError, s.KeptError}} {
		w.WriteString(fmt.Sprintf("sgd_span_kept_total{reason=%q} %d\n", kv.reason, kv.n))
	}
	if s.Truncated > 0 {
		w.WriteString("# HELP sgd_span_truncated_spans_total Spans dropped by the per-trace cap.\n# TYPE sgd_span_truncated_spans_total counter\n")
		w.WriteString(fmt.Sprintf("sgd_span_truncated_spans_total %d\n", s.Truncated))
	}
}
