package chaos

import (
	"math"
	"reflect"
	"sync/atomic"
	"testing"

	"repro/internal/obs"
	"repro/internal/pool"
)

func TestPlanCatalogue(t *testing.T) {
	for _, name := range PlanNames() {
		p, err := Lookup(name)
		if err != nil {
			t.Fatalf("Lookup(%q): %v", name, err)
		}
		if p.Name != name {
			t.Errorf("plan %q has Name %q", name, p.Name)
		}
	}
	if _, err := Lookup("tsunami"); err == nil {
		t.Fatal("Lookup of unknown plan succeeded")
	}
	if p, _ := Lookup("none"); p.Active() {
		t.Error("plan none reports Active")
	}
	if p, _ := Lookup("storm"); !p.Active() {
		t.Error("plan storm reports inactive")
	}
}

func TestPlanScale(t *testing.T) {
	p := Plan{Stragglers: 1, StragglerFactor: 10, DropFrac: 0.01, DupFrac: 0.02, Staleness: 64}
	h := p.Scale(0)
	if h.Active() {
		t.Errorf("intensity 0 still active: %+v", h)
	}
	full := p.Scale(1)
	if full != p {
		t.Errorf("intensity 1 changed the plan: %+v", full)
	}
	half := p.Scale(0.5)
	if half.StragglerFactor != 5.5 || half.DropFrac != 0.005 || half.Staleness != 32 {
		t.Errorf("intensity 0.5: %+v", half)
	}
	over := p.Scale(1000)
	if over.DropFrac != 1 || over.DupFrac != 1 {
		t.Errorf("fractions not clamped: %+v", over)
	}
}

func TestSlowdownFormulas(t *testing.T) {
	p := Plan{Stragglers: 1, StragglerFactor: 10}
	// 1 of 56 workers at 10x barely stretches a dynamically balanced
	// async epoch, but stretches a barriered sync epoch by the factor.
	if got := p.AsyncSlowdown(56); got < 1.01 || got > 1.03 {
		t.Errorf("AsyncSlowdown(56) = %v, want ~1.017", got)
	}
	if got := p.SyncSlowdown(); got != 10 {
		t.Errorf("SyncSlowdown = %v, want 10", got)
	}
	if got := (Plan{}).AsyncSlowdown(56); got != 1 {
		t.Errorf("healthy AsyncSlowdown = %v", got)
	}
}

// TestInjectorStreamsDeterministic: the decision stream is a pure function
// of (seed, worker) — independent of other workers and replayable.
func TestInjectorStreamsDeterministic(t *testing.T) {
	plan := Plan{DropFrac: 0.2, DupFrac: 0.1}
	draw := func(seed int64, k, n int) []Fate {
		s := NewInjector(plan, seed).Worker(k)
		out := make([]Fate, n)
		for i := range out {
			out[i] = s.Fate()
		}
		return out
	}
	if !reflect.DeepEqual(draw(1, 3, 200), draw(1, 3, 200)) {
		t.Fatal("same (seed, worker) produced different fate streams")
	}
	if reflect.DeepEqual(draw(1, 3, 200), draw(2, 3, 200)) {
		t.Fatal("different seeds produced identical fate streams")
	}
	if reflect.DeepEqual(draw(1, 3, 200), draw(1, 4, 200)) {
		t.Fatal("different workers share one fate stream")
	}
}

func TestInjectorRates(t *testing.T) {
	plan := Plan{DropFrac: 0.05, DupFrac: 0.05}
	in := NewInjector(plan, 42)
	s := in.Worker(0)
	const n = 200000
	var drops, dups int
	for i := 0; i < n; i++ {
		switch s.Fate() {
		case FateDrop:
			drops++
		case FateDup:
			dups++
		}
	}
	for what, got := range map[string]int{"drops": drops, "dups": dups} {
		frac := float64(got) / n
		if math.Abs(frac-0.05) > 0.005 {
			t.Errorf("%s rate %.4f, want ~0.05", what, frac)
		}
	}
}

func TestControllerNilAndInert(t *testing.T) {
	var c *Controller
	if c.Enabled() {
		t.Error("nil controller enabled")
	}
	if c.Slowdown() != 1 {
		t.Error("nil controller slowdown != 1")
	}
	c.Drain(obs.Nop{}) // must not panic
	if New(Plan{}, 1).Enabled() {
		t.Error("healthy non-sequential controller enabled")
	}
	if !New(Plan{}, 1).withSequential().Enabled() {
		t.Error("sequential controller not enabled")
	}
}

func (c *Controller) withSequential() *Controller { c.Sequential = true; return c }

// TestControllerSequentialSlowdown: dynamic claiming under the virtual-time
// scheduler reproduces the analytic async stretch.
func TestControllerSequentialSlowdown(t *testing.T) {
	plan := Plan{Stragglers: 1, StragglerFactor: 10}
	c := New(plan, 7)
	c.Sequential = true
	var next atomic.Int64
	const n, workers = 4000, 8
	shares := make([]int, workers)
	c.Run(nil, workers, func(k int, w *Worker) {
		for {
			if next.Add(1) > n {
				return
			}
			shares[k]++
			w.Step()
		}
	})
	want := plan.AsyncSlowdown(workers)
	if got := c.Slowdown(); math.Abs(got-want) > 0.05*want {
		t.Errorf("sequential slowdown %.4f, want ~%.4f", got, want)
	}
	// The straggler (worker 0) claimed ~1/10 of a healthy worker's share.
	healthy := float64(n-shares[0]) / float64(workers-1)
	if r := float64(shares[0]) / healthy; r < 0.05 || r > 0.2 {
		t.Errorf("straggler share ratio %.3f, want ~0.1 (shares %v)", r, shares)
	}
}

// TestControllerSSP: with a bound, no worker's progress may exceed the
// slowest worker's by more than bound (+1 for the in-flight update).
func TestControllerSSP(t *testing.T) {
	c := New(Plan{Stragglers: 1, StragglerFactor: 50}, 3)
	c.Sequential = true
	c.SSPBound = 4
	const perWorker, workers = 200, 4
	progress := make([]int, workers)
	maxLead := 0
	c.Run(nil, workers, func(k int, w *Worker) {
		for i := 0; i < perWorker; i++ {
			lead := progress[k]
			for _, p := range progress {
				if p < lead {
					lead = p
				}
			}
			if lead = progress[k] - lead; lead > maxLead {
				maxLead = lead
			}
			progress[k]++
			w.Step()
		}
	})
	if maxLead > c.SSPBound+1 {
		t.Errorf("a worker ran %d updates ahead under SSP bound %d", maxLead, c.SSPBound)
	}
	for k, p := range progress {
		if p != perWorker {
			t.Errorf("worker %d finished %d/%d updates", k, p, perWorker)
		}
	}
}

func TestWorkerViewStaleness(t *testing.T) {
	c := New(Plan{Staleness: 4}, 1)
	c.Sequential = true
	live := []float64{0}
	var staleSeen int
	c.Run(nil, 1, func(k int, w *Worker) {
		for i := 0; i < 12; i++ {
			v := w.View(live)
			if v[0] != live[0] {
				staleSeen++
				// The lag never exceeds the bound (refresh every 4 reads,
				// one live write per read).
				if live[0]-v[0] > 4 {
					t.Errorf("staleness %v exceeds bound 4", live[0]-v[0])
				}
			}
			live[0]++
			w.Step()
		}
	})
	if staleSeen == 0 {
		t.Error("bounded-staleness view never served a stale read")
	}
	// Healthy plan: View must be the live slice itself, no copies.
	c2 := New(Plan{}, 1)
	c2.Sequential = true
	c2.Run(nil, 1, func(k int, w *Worker) {
		if &w.View(live)[0] != &live[0] {
			t.Error("healthy View returned a copy")
		}
	})
}

func TestDrainCounters(t *testing.T) {
	plan := Plan{DropFrac: 1} // every update drops
	c := New(plan, 5)
	c.Sequential = true
	c.Run(nil, 2, func(k int, w *Worker) {
		for i := 0; i < 10; i++ {
			w.Fate()
			w.Step()
		}
	})
	rec := &captureRec{}
	c.Drain(rec)
	if rec.counts[obs.CounterChaosDrops] != 20 {
		t.Errorf("drained %d drops, want 20", rec.counts[obs.CounterChaosDrops])
	}
	// Drain resets.
	rec2 := &captureRec{}
	c.Drain(rec2)
	if rec2.counts[obs.CounterChaosDrops] != 0 {
		t.Errorf("second drain saw %d drops, want 0", rec2.counts[obs.CounterChaosDrops])
	}
}

// captureRec is a minimal Recorder capturing counter adds.
type captureRec struct {
	counts map[obs.Counter]int64
}

func (r *captureRec) Phase(obs.Phase, float64)    {}
func (r *captureRec) Observe(obs.Metric, float64) {}
func (r *captureRec) EndEpoch(float64)            {}
func (r *captureRec) Add(c obs.Counter, d int64) {
	if r.counts == nil {
		r.counts = make(map[obs.Counter]int64)
	}
	r.counts[c] += d
}

// TestControllerConcurrentMode smoke-tests the real-concurrency path: all
// work completes, fates stay deterministic per worker, slowdown falls back
// to the analytic formula.
func TestControllerConcurrentMode(t *testing.T) {
	p := pool.New(4)
	defer p.Close()
	plan := Plan{Stragglers: 1, StragglerFactor: 4, DropFrac: 0.5}
	c := New(plan, 9)
	var done [8]int64
	c.Run(p, 8, func(k int, w *Worker) {
		for i := 0; i < 50; i++ {
			w.Fate()
			w.Step()
			atomic.AddInt64(&done[k], 1)
		}
	})
	for k := range done {
		if done[k] != 50 {
			t.Errorf("worker %d did %d/50 steps", k, done[k])
		}
	}
	want := plan.AsyncSlowdown(8)
	if got := c.Slowdown(); got != want {
		t.Errorf("concurrent slowdown %v, want analytic %v", got, want)
	}
}
