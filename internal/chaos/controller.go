package chaos

import (
	"runtime"
	"sync/atomic"

	"repro/internal/obs"
	"repro/internal/pool"
)

// Controller is what an engine holds to run its async workers under fault
// injection and/or deterministic scheduling. A nil *Controller is inert:
// every query on it reports "no chaos", so engines guard their chaos paths
// with a single Enabled call.
type Controller struct {
	// Plan is the fault mix to inject.
	Plan Plan
	// Seed derives every injector stream and the sequencer's interleaving;
	// same seed, same faults, same schedule.
	Seed int64
	// Sequential runs worker bodies on a pool.Sequencer: single-threaded,
	// virtual-time paced, exactly replayable. Off, bodies run with real
	// concurrency on the engine's pool and only the fault decisions stay
	// deterministic (per-worker streams), not the interleaving.
	Sequential bool
	// SSPBound, when positive, is the stale-synchronous-parallel bound of
	// the graceful-degradation Hogwild variant: a worker more than
	// SSPBound updates ahead of the slowest is blocked until its peers
	// catch up. 0 disables the bound (classic Hogwild).
	SSPBound int
	// Deadline, when positive, is the synchronous engines' straggler
	// mitigation: the per-epoch barrier fires after Deadline times the
	// healthy epoch instead of waiting out the straggler's full stretch,
	// and the update proceeds with the gradient contributions received by
	// then (the missing share is counted as CounterChaosShortfall). 0
	// means wait forever — classic BSP, the fragile baseline.
	Deadline float64
	// Workers is the modeled worker count used for slowdown/shortfall
	// arithmetic by engines that do not dispatch through Run (the
	// synchronous barrier path). Run sets it from its argument.
	Workers int

	inj          *Injector
	lastSlowdown float64
}

// Enabled reports whether the controller changes anything: a fault plan, a
// deterministic schedule, or an SSP bound.
func (c *Controller) Enabled() bool {
	return c != nil && (c.Plan.Active() || c.Sequential || c.SSPBound > 0)
}

// New builds a controller for a plan and seed.
func New(plan Plan, seed int64) *Controller {
	return &Controller{Plan: plan, Seed: seed}
}

// Injector returns the controller's (lazily built) injector.
func (c *Controller) Injector() *Injector {
	if c.inj == nil {
		c.inj = NewInjector(c.Plan, c.Seed)
	}
	return c.inj
}

// Drain flushes the epoch's fault counts to the recorder (see
// Injector.Drain) and records the last observed schedule slowdown.
func (c *Controller) Drain(rec obs.Recorder) {
	if c == nil {
		return
	}
	c.Injector().Drain(rec)
	if c.lastSlowdown > 1 {
		obs.Or(rec).Observe(obs.MetricChaosSlowdown, c.lastSlowdown)
	}
}

// Slowdown returns the virtual-time epoch stretch observed by the last Run
// (makespan over ideal balanced time, >= 1), or the plan's analytic async
// slowdown when Run has not executed. Engines multiply their modeled epoch
// seconds by it.
func (c *Controller) Slowdown() float64 {
	if c == nil {
		return 1
	}
	if c.lastSlowdown > 0 {
		return c.lastSlowdown
	}
	return c.Plan.AsyncSlowdown(c.Workers)
}

// sspState is the shared progress board of one Run: per-worker update
// counts, read by the SSP gates.
type sspState struct {
	prog []atomic.Int64
}

func (st *sspState) min() int64 {
	m := int64(-1)
	for i := range st.prog {
		if v := st.prog[i].Load(); m < 0 || v < m {
			m = v
		}
	}
	return m
}

// Worker is the per-worker chaos handle an engine body consults: fault
// fates per update, staleness-bounded parameter views, and the scheduling
// step that paces stragglers and enforces the SSP bound.
type Worker struct {
	// Stream is the worker's deterministic fault stream.
	Stream *Stream

	k     int
	turn  *pool.Turn // nil when running with real concurrency
	st    *sspState
	bound int
	clock float64

	staleBuf     []float64
	sinceRefresh int
}

// Fate decides the next update's fate (apply, drop, duplicate).
func (w *Worker) Fate() Fate { return w.Stream.Fate() }

// View returns the parameter vector the worker should read: live when the
// plan has no staleness, otherwise a private snapshot refreshed every
// Staleness updates, so gradients are computed against state up to that
// many of the worker's own updates old while writes still land live.
func (w *Worker) View(live []float64) []float64 {
	s := w.Stream.Staleness()
	if s <= 0 {
		return live
	}
	if w.staleBuf == nil || w.sinceRefresh >= s {
		if cap(w.staleBuf) < len(live) {
			w.staleBuf = make([]float64, len(live))
		}
		w.staleBuf = w.staleBuf[:len(live)]
		copy(w.staleBuf, live)
		w.sinceRefresh = 0
	} else {
		w.Stream.CountStale()
	}
	w.sinceRefresh++
	return w.staleBuf
}

// Step closes one update: it advances the worker's progress (the SSP
// board), charges the straggler-aware virtual cost, and yields. Under the
// sequencer that is the deterministic scheduling point; under real
// concurrency a straggler briefly yields the OS thread per unit of extra
// cost so its claim rate drops, and an over-bound SSP worker spins until
// the slowest catches up.
func (w *Worker) Step() {
	cost := w.Stream.Cost()
	w.clock += cost
	if w.st == nil {
		return // standalone worker: fate/staleness only, no scheduling
	}
	w.st.prog[w.k].Add(1)
	if w.turn != nil {
		w.turn.Tick(cost)
		return
	}
	for i := 1; i < int(cost); i++ {
		runtime.Gosched()
	}
	if w.bound > 0 {
		for w.st.prog[w.k].Load()-w.st.min() > int64(w.bound) {
			runtime.Gosched()
		}
	}
}

// StandaloneWorker returns worker k's chaos handle for engines that manage
// their own dispatch (the serial and simulator-driven paths): fates,
// staleness views and fault tallies work as under Run, but Step paces
// nothing and the SSP bound does not apply. The caller flushes the stream
// (Stream.Flush) before draining.
func (c *Controller) StandaloneWorker(k int) *Worker {
	return &Worker{Stream: c.Injector().Worker(k), k: k}
}

// Run executes n worker bodies under the controller's regime and records
// the observed virtual-time slowdown. In Sequential mode the bodies share
// one OS thread under the seeded virtual-time scheduler; otherwise they
// dispatch on p (nil = the shared process pool) with real concurrency.
// body(k, w) must perform worker k's whole work loop, calling w.Step once
// per model update.
func (c *Controller) Run(p *pool.Pool, n int, body func(k int, w *Worker)) {
	if n < 1 {
		n = 1
	}
	c.Workers = n
	in := c.Injector()
	st := &sspState{prog: make([]atomic.Int64, n)}
	workers := make([]*Worker, n)
	for k := 0; k < n; k++ {
		workers[k] = &Worker{Stream: in.Worker(k), k: k, st: st, bound: c.SSPBound}
	}
	if c.Sequential {
		s := pool.NewSequencer(c.Seed)
		for k := 0; k < n; k++ {
			k := k
			s.Go(func(t *pool.Turn) {
				w := workers[k]
				w.turn = t
				if c.SSPBound > 0 {
					t.Gate(func() bool {
						return st.prog[k].Load()-st.min() <= int64(c.SSPBound)
					})
				}
				body(k, w)
			})
		}
		s.Run()
	} else {
		if p == nil {
			p = pool.Default()
		}
		p.RunFunc(n, n, func(lo, hi int) {
			for k := lo; k < hi; k++ {
				body(k, workers[k])
			}
		})
	}
	var updates int64
	var makespan float64
	for k, w := range workers {
		w.Stream.Flush()
		updates += st.prog[k].Load()
		if w.clock > makespan {
			makespan = w.clock
		}
	}
	// The slowdown baseline is the healthy balanced epoch: every update at
	// unit cost spread over n workers. In sequential mode the virtual-time
	// makespan measures the faulted schedule exactly (with dynamic work
	// claiming the straggler simply executes fewer updates and the stretch
	// stays near 1); with real concurrency the host's scheduling noise
	// would pollute the measurement, so the plan's analytic stretch is
	// used instead.
	c.lastSlowdown = 1
	if c.Sequential {
		if ideal := float64(updates) / float64(n); ideal > 0 && makespan > ideal {
			c.lastSlowdown = makespan / ideal
		}
	} else {
		c.lastSlowdown = c.Plan.AsyncSlowdown(n)
	}
}
