// Package chaos is the deterministic fault-injection and schedule-control
// layer of the reproduction. The paper's central finding is that
// asynchronous (Hogwild-style) SGD wins on hardware efficiency because it
// tolerates disorder — stale reads, lost updates, uneven worker progress —
// while synchronous SGD pays for order with barriers. The regress gates
// check that *healthy* runs converge; this package asks the complementary
// question: what happens when a worker stalls 10x longer than its peers, a
// bounded fraction of updates is dropped or duplicated, or reads are
// arbitrarily stale?
//
// Two halves:
//
//   - Injection. A Plan names a fault mix; an Injector turns it into
//     deterministic per-worker decision streams (counter-hashed from the
//     seed, so decisions do not depend on scheduling order or shared RNG
//     state). Engines consult their Worker handle per update; every fault
//     fired is counted through the internal/obs chaos counters, so
//     sgdtrace/sgdgate report fault rates next to phase timings.
//
//   - Schedule control. In Sequential mode the Controller runs engine
//     workers on a pool.Sequencer: a virtual-time cooperative scheduler
//     that interleaves per-update turns single-threaded under a seeded
//     order. Hogwild's racy update order — normally a property of the OS
//     scheduler on a many-core host — becomes exactly replayable, which is
//     the substrate every chaos test (and any future async regression
//     test) stands on.
//
// The modeled-time story: a straggler does not change *what* the async
// engines compute, only when; with dynamic work claiming the epoch stretch
// is N/((N-S) + S/F) for S stragglers at factor F — near 1 for one slow
// worker out of 56. A synchronous barrier instead waits for the straggler's
// full F-times share, stretching the epoch by ~F. That asymmetry is the
// paper's sync-fragile/async-robust contrast as a measurable curve (see
// internal/regress.Degradation and cmd/sgdchaos).
package chaos

import (
	"fmt"
	"math"
	"sort"
)

// Plan is one named fault mix. The zero Plan injects nothing.
type Plan struct {
	// Name identifies the plan in reports.
	Name string `json:"name"`
	// Stragglers is how many workers run slow (the injector slows the
	// first Stragglers of the worker set, so the choice is deterministic).
	Stragglers int `json:"stragglers,omitempty"`
	// StragglerFactor is the virtual cost multiplier of a straggler's
	// updates (10 = stalls 10x longer than its peers). Values <= 1 mean
	// no slowdown.
	StragglerFactor float64 `json:"straggler_factor,omitempty"`
	// DropFrac is the fraction of gradient updates discarded after
	// computation (torn/lost updates). Clamped to [0, 1].
	DropFrac float64 `json:"drop_frac,omitempty"`
	// DupFrac is the fraction of gradient updates applied twice
	// (retransmission / CAS-retry double-fire). Clamped to [0, 1].
	DupFrac float64 `json:"dup_frac,omitempty"`
	// Staleness serves parameter reads from a per-worker snapshot
	// refreshed every Staleness updates, so gradients are computed
	// against state up to Staleness of the worker's own updates old
	// (0 = always fresh).
	Staleness int `json:"staleness,omitempty"`
	// PartitionFrac is the fraction of transport rounds a worker spends
	// partitioned from the parameter-server tier (internal/ps): while a
	// link is down, pulls fall back to the worker's cached parameters and
	// pushes are lost. Only the distributed engines consult it; the
	// in-process engines have no transport to partition. Clamped to [0, 1].
	PartitionFrac float64 `json:"partition_frac,omitempty"`
}

// Active reports whether the plan injects any fault.
func (p Plan) Active() bool {
	return (p.Stragglers > 0 && p.StragglerFactor > 1) ||
		p.DropFrac > 0 || p.DupFrac > 0 || p.Staleness > 0 || p.PartitionFrac > 0
}

// Scale returns the plan with every fault knob scaled by intensity:
// intensity 0 is the healthy plan, 1 the nominal plan, 2 twice the nominal
// fault pressure. The straggler factor scales in its excess over 1 (a
// straggler at factor 10 becomes 5.5 at intensity 0.5), fractions scale
// linearly with clamping, staleness rounds to the nearest update.
func (p Plan) Scale(intensity float64) Plan {
	if intensity < 0 {
		intensity = 0
	}
	s := p
	if p.StragglerFactor > 1 {
		s.StragglerFactor = 1 + (p.StragglerFactor-1)*intensity
	}
	if intensity == 0 {
		s.Stragglers = 0
	}
	s.DropFrac = clamp01(p.DropFrac * intensity)
	s.DupFrac = clamp01(p.DupFrac * intensity)
	s.Staleness = int(math.Round(float64(p.Staleness) * intensity))
	s.PartitionFrac = clamp01(p.PartitionFrac * intensity)
	return s
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// AsyncSlowdown returns the modeled epoch stretch the plan inflicts on an
// asynchronous engine whose workers claim work dynamically: the S straggling
// workers contribute 1/F of a healthy worker's throughput each, so the
// epoch stretches by N/((N-S) + S/F). For 1 straggler at 10x among 56
// workers that is ~1.02 — the async engines barely notice.
func (p Plan) AsyncSlowdown(workers int) float64 {
	if workers <= 0 || p.Stragglers <= 0 || p.StragglerFactor <= 1 {
		return 1
	}
	s := float64(min(p.Stragglers, workers))
	n := float64(workers)
	return n / ((n - s) + s/p.StragglerFactor)
}

// SyncSlowdown returns the modeled epoch stretch on a barriered synchronous
// engine with static work shares: the barrier waits for the slowest worker,
// whose fixed share takes StragglerFactor times longer — the epoch
// stretches by the full factor regardless of how many workers are healthy.
func (p Plan) SyncSlowdown() float64 {
	if p.Stragglers <= 0 || p.StragglerFactor <= 1 {
		return 1
	}
	return p.StragglerFactor
}

// String renders the plan compactly for logs and reports.
func (p Plan) String() string {
	if !p.Active() {
		return p.Name + "(healthy)"
	}
	s := fmt.Sprintf("%s(straggler=%dx%.3g drop=%.3g dup=%.3g stale=%d",
		p.Name, p.Stragglers, p.StragglerFactor, p.DropFrac, p.DupFrac, p.Staleness)
	if p.PartitionFrac > 0 {
		s += fmt.Sprintf(" partition=%.3g", p.PartitionFrac)
	}
	return s + ")"
}

// plans is the named catalogue. "storm" is the acceptance plan of the
// degradation report: >=10x straggler on one worker plus 1% dropped
// updates, the mix under which the paper's contrast must show.
var plans = map[string]Plan{
	"none":      {Name: "none"},
	"straggler": {Name: "straggler", Stragglers: 1, StragglerFactor: 10},
	"drops":     {Name: "drops", DropFrac: 0.01},
	"dups":      {Name: "dups", DupFrac: 0.01},
	"stale":     {Name: "stale", Staleness: 64},
	"storm":     {Name: "storm", Stragglers: 1, StragglerFactor: 10, DropFrac: 0.01},
	"partition": {Name: "partition", PartitionFrac: 0.1},
}

// Lookup resolves a named plan.
func Lookup(name string) (Plan, error) {
	p, ok := plans[name]
	if !ok {
		return Plan{}, fmt.Errorf("chaos: unknown plan %q (have %v)", name, PlanNames())
	}
	return p, nil
}

// PlanNames lists the catalogue in sorted order.
func PlanNames() []string {
	out := make([]string, 0, len(plans))
	for n := range plans {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
