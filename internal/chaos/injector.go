package chaos

import (
	"sync/atomic"

	"repro/internal/obs"
)

// Fate is the injector's verdict on one gradient update.
type Fate uint8

const (
	// FateApply lands the update normally.
	FateApply Fate = iota
	// FateDrop discards the update after computation (a lost update).
	FateDrop
	// FateDup applies the update twice.
	FateDup
)

// Injector turns a Plan into deterministic per-worker fault decisions. Each
// worker draws from its own counter-hashed stream (splitmix64 seeded from
// (seed, worker)), so decisions are independent of scheduling order, shared
// across no goroutines, and replay exactly — the per-worker seeding
// discipline the async engines follow for every random source.
//
// Fault firings accumulate in atomic counters; engines flush them to an
// obs.Recorder once per epoch with Drain, which is how sgdtrace and the
// aggregator report fault rates next to phase timings.
type Injector struct {
	plan Plan
	seed int64

	drops       atomic.Int64
	dups        atomic.Int64
	stale       atomic.Int64
	straggled   atomic.Int64
	shortfall   atomic.Int64
	partitioned atomic.Int64
}

// NewInjector builds the injector for a plan and run seed.
func NewInjector(plan Plan, seed int64) *Injector {
	return &Injector{plan: plan, seed: seed}
}

// Plan returns the injected plan.
func (in *Injector) Plan() Plan { return in.plan }

// splitmix64 advances the per-worker state and returns the next draw; the
// standard 64-bit mixer, chosen because a single multiply-xor chain per
// decision keeps the fault hooks out of the engines' hot-loop profile.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Stream is one worker's deterministic decision stream. Not safe for
// concurrent use — each worker owns exactly one.
type Stream struct {
	in        *Injector
	state     uint64
	straggler bool

	// local fault tallies, folded into the injector atomically by flush
	// so the hot loop touches no shared cache line.
	drops, dups, stale int64
	partitions         int64
	updates            int64
}

// Worker derives worker k's stream. The first Plan.Stragglers workers are
// the slow ones.
func (in *Injector) Worker(k int) *Stream {
	state := uint64(in.seed)*0x9e3779b97f4a7c15 + uint64(k+1)*0xda942042e4dd58b5
	return &Stream{
		in:        in,
		state:     state,
		straggler: k < in.plan.Stragglers && in.plan.StragglerFactor > 1,
	}
}

// uniform returns the next draw in [0, 1).
func (s *Stream) uniform() float64 {
	return float64(splitmix64(&s.state)>>11) / (1 << 53)
}

// Fate decides what happens to the worker's next gradient update.
func (s *Stream) Fate() Fate {
	p := s.in.plan
	s.updates++
	if p.DropFrac <= 0 && p.DupFrac <= 0 {
		return FateApply
	}
	u := s.uniform()
	if u < p.DropFrac {
		s.drops++
		return FateDrop
	}
	if u < p.DropFrac+p.DupFrac {
		s.dups++
		return FateDup
	}
	return FateApply
}

// Partitioned decides whether the worker's next transport round happens
// during a partition of its link to the parameter-server tier: pulls must
// fall back to cached parameters and pushes are lost in flight. The draw is
// per round, not per message, so a partition covers a whole pull-compute-push
// cycle — the window shape of a real link outage.
func (s *Stream) Partitioned() bool {
	p := s.in.plan
	if p.PartitionFrac <= 0 {
		return false
	}
	if s.uniform() < p.PartitionFrac {
		s.partitions++
		return true
	}
	return false
}

// Cost is the virtual-time cost of one of this worker's updates (the
// straggler factor, or 1).
func (s *Stream) Cost() float64 {
	if s.straggler {
		return s.in.plan.StragglerFactor
	}
	return 1
}

// Straggler reports whether this worker is one of the plan's slow workers.
func (s *Stream) Straggler() bool { return s.straggler }

// Staleness is the plan's read-staleness bound in updates.
func (s *Stream) Staleness() int { return s.in.plan.Staleness }

// CountStale records one update computed against a stale snapshot.
func (s *Stream) CountStale() { s.stale++ }

// Flush folds the stream's local tallies into the injector totals so a
// subsequent Drain reports them. Controller.Run flushes its workers itself;
// engines that drive standalone workers flush before draining.
func (s *Stream) Flush() {
	s.in.drops.Add(s.drops)
	s.in.dups.Add(s.dups)
	s.in.stale.Add(s.stale)
	s.in.partitioned.Add(s.partitions)
	if s.straggler {
		s.in.straggled.Add(s.updates)
	}
	s.drops, s.dups, s.stale, s.partitions, s.updates = 0, 0, 0, 0, 0
}

// CountShortfall records updates applied with missing worker contributions
// (the deadlined synchronous path).
func (in *Injector) CountShortfall(n int64) { in.shortfall.Add(n) }

// Drain flushes the accumulated fault counts to the recorder and resets
// them; engines call it once per epoch so the per-epoch trace events carry
// the epoch's fault rates.
func (in *Injector) Drain(rec obs.Recorder) {
	rec = obs.Or(rec)
	if d := in.drops.Swap(0); d > 0 {
		rec.Add(obs.CounterChaosDrops, d)
	}
	if d := in.dups.Swap(0); d > 0 {
		rec.Add(obs.CounterChaosDups, d)
	}
	if d := in.stale.Swap(0); d > 0 {
		rec.Add(obs.CounterChaosStaleReads, d)
	}
	if d := in.straggled.Swap(0); d > 0 {
		rec.Add(obs.CounterChaosStraggled, d)
	}
	if d := in.shortfall.Swap(0); d > 0 {
		rec.Add(obs.CounterChaosShortfall, d)
	}
	if d := in.partitioned.Swap(0); d > 0 {
		rec.Add(obs.CounterChaosPartitioned, d)
	}
}
