package core

import (
	"math"
	"testing"

	"repro/internal/chaos"
	"repro/internal/data"
	"repro/internal/linalg"
	"repro/internal/model"
	"repro/internal/obs"
)

// chaosDataset builds a small deterministic dataset for the replay tests.
func chaosDataset(t *testing.T) *data.Dataset {
	t.Helper()
	ds, _ := smallDataset(t, "w8a", 300)
	return ds
}

// runChaosEpochs runs a fresh Hogwild engine for `epochs` under a chaos
// controller and returns the final weights.
func runChaosEpochs(t *testing.T, ds *data.Dataset, chaosSeed int64, epochs int) []float64 {
	t.Helper()
	m := model.NewLR(ds.D())
	e := NewHogwild(m, ds, 0.1, 8)
	e.SetShuffleSeed(42)
	c := chaos.New(chaos.Plan{
		Name: "test", Stragglers: 1, StragglerFactor: 10,
		DropFrac: 0.05, DupFrac: 0.02, Staleness: 8,
	}, chaosSeed)
	c.Sequential = true
	if !InjectChaos(e, c) {
		t.Fatal("HogwildEngine does not accept a chaos controller")
	}
	w := make([]float64, m.NumParams())
	for i := 0; i < epochs; i++ {
		e.RunEpoch(w)
	}
	return w
}

// TestHogwildChaosReplayBitwise is the tentpole acceptance test: two runs
// with the same shuffle and chaos seeds produce bitwise-identical weights
// even though the execution is an 8-way racy Hogwild interleaving; a
// different chaos seed permutes the schedule and faults, changing the
// result.
func TestHogwildChaosReplayBitwise(t *testing.T) {
	ds := chaosDataset(t)
	a := runChaosEpochs(t, ds, 7, 3)
	b := runChaosEpochs(t, ds, 7, 3)
	for j := range a {
		if a[j] != b[j] {
			t.Fatalf("weights diverge at %d: %x vs %x (replay not bitwise)",
				j, math.Float64bits(a[j]), math.Float64bits(b[j]))
		}
	}
	other := runChaosEpochs(t, ds, 8, 3)
	same := true
	for j := range a {
		if a[j] != other[j] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different chaos seeds produced identical weights — the seed is not reaching the schedule")
	}
}

// TestHogwildChaosSlowdownAsymmetry checks the modeled-time story on the
// engines themselves: the same 10x straggler stretches a Hogwild epoch by
// ~N/((N-S)+S/F) but multiplies a Cyclades (barriered) epoch by ~F.
func TestHogwildChaosSlowdownAsymmetry(t *testing.T) {
	ds := chaosDataset(t)
	plan := chaos.Plan{Name: "straggler", Stragglers: 1, StragglerFactor: 10}

	m := model.NewLR(ds.D())
	hog := NewHogwild(m, ds, 0.1, 8)
	hog.SetShuffleSeed(1)
	w := make([]float64, m.NumParams())
	healthy := hog.RunEpoch(w)

	hog2 := NewHogwild(model.NewLR(ds.D()), ds, 0.1, 8)
	hog2.SetShuffleSeed(1)
	c := chaos.New(plan, 3)
	c.Sequential = true
	InjectChaos(hog2, c)
	w2 := make([]float64, m.NumParams())
	faulted := hog2.RunEpoch(w2)

	// The analytic stretch for 1-of-8 at 10x is ~1.13; on a 300-update
	// epoch the straggler's final coarse claim adds a discretization tail,
	// so allow up to 2x — the point is the asymmetry against the 10x the
	// barriered engines pay below.
	ratio := faulted / healthy
	if want := plan.AsyncSlowdown(8); ratio < want-0.05 || ratio > 2 {
		t.Errorf("hogwild epoch stretched %.3fx, want within [%.3f, 2.0]", ratio, want)
	}

	cyc := NewCyclades(model.NewLR(ds.D()), ds, 0.1, 8)
	wc := make([]float64, m.NumParams())
	healthyCyc := cyc.RunEpoch(wc)
	cyc2 := NewCyclades(model.NewLR(ds.D()), ds, 0.1, 8)
	InjectChaos(cyc2, chaos.New(plan, 3))
	wc2 := make([]float64, m.NumParams())
	faultedCyc := cyc2.RunEpoch(wc2)
	if r := faultedCyc / healthyCyc; r < 9 || r > 11 {
		t.Errorf("cyclades (barriered) epoch stretched %.3fx, want ~10x", r)
	}
}

// TestSyncChaosDeadline: an undeadlined sync epoch pays the straggler's full
// factor; a deadlined one is capped and counts the shortfall.
func TestSyncChaosDeadline(t *testing.T) {
	ds := chaosDataset(t)
	plan := chaos.Plan{Name: "straggler", Stragglers: 1, StragglerFactor: 10}
	build := func() (*SyncEngine, []float64) {
		m := model.NewLR(ds.D())
		e := NewSync(linalg.NewCPU(1), m, ds, 0.5)
		return e, make([]float64, m.NumParams())
	}

	base, wb := build()
	healthy := base.RunEpoch(wb)

	bsp, w1 := build()
	c1 := chaos.New(plan, 1)
	c1.Workers = 8
	InjectChaos(bsp, c1)
	undeadlined := bsp.RunEpoch(w1)
	if r := (undeadlined - bsp.EpochOverhead) / (healthy - base.EpochOverhead); r < 9.9 || r > 10.1 {
		t.Errorf("undeadlined sync epoch stretched %.3fx, want 10x", r)
	}

	dl, w2 := build()
	c2 := chaos.New(plan, 1)
	c2.Workers = 8
	c2.Deadline = 2
	InjectChaos(dl, c2)
	rec := &countRec{}
	dl.SetRecorder(rec)
	deadlined := dl.RunEpoch(w2)
	if r := (deadlined - dl.EpochOverhead) / (healthy - base.EpochOverhead); r < 1.9 || r > 2.1 {
		t.Errorf("deadlined sync epoch stretched %.3fx, want 2x", r)
	}
	if rec.counts[obs.CounterChaosShortfall] == 0 {
		t.Error("deadlined sync epoch recorded no shortfall")
	}
	// The deadlined update landed scaled by the received fraction, so the
	// two weight vectors must differ.
	same := true
	for j := range w1 {
		if w1[j] != w2[j] {
			same = false
			break
		}
	}
	if same {
		t.Error("deadline changed nothing about the applied update")
	}
}

// countRec counts counter adds.
type countRec struct {
	counts [48]int64
}

func (r *countRec) Phase(obs.Phase, float64)    {}
func (r *countRec) Observe(obs.Metric, float64) {}
func (r *countRec) EndEpoch(float64)            {}
func (r *countRec) Add(c obs.Counter, d int64)  { r.counts[c] += d }

// TestGPUChaosDrops: the drop plan reaches the simulator's FaultDrop hook
// and shows up in AsyncStats.
func TestGPUChaosDrops(t *testing.T) {
	ds := chaosDataset(t)
	m := model.NewLR(ds.D())
	e := NewGPUHogwild(m, ds, 0.1)
	c := chaos.New(chaos.Plan{Name: "drops", DropFrac: 0.3}, 5)
	InjectChaos(e, c)
	w := make([]float64, m.NumParams())
	e.RunEpoch(w)
	st := e.LastStats()
	if st.Dropped == 0 {
		t.Fatal("simulator saw no dropped items under a 30% drop plan")
	}
	frac := float64(st.Dropped) / float64(ds.N())
	if frac < 0.15 || frac > 0.45 {
		t.Errorf("dropped fraction %.3f, want ~0.3", frac)
	}
}
