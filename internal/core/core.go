// Package core implements the paper's subject matter: parallel stochastic
// gradient descent in all eight combinations of the exploratory axes —
// computing architecture (multi-core NUMA CPU or simulated GPU), model
// update strategy (synchronous or asynchronous), and data sparsity (dense or
// CSR, carried by the dataset representation).
//
// The engines:
//
//   - SyncEngine: synchronous (batch) gradient descent written against the
//     device-independent linalg.Backend API, so the identical code runs as
//     cpu-seq, cpu-par, or gpu — the paper's ViennaCL approach
//     (Algorithm 2).
//   - HogwildEngine: asynchronous incremental SGD on real goroutines over a
//     shared model with unsynchronised (or CAS) updates — the paper's CPU
//     Hogwild (Algorithm 3). Statistical efficiency comes from genuinely
//     racy execution; paper-scale timing from the internal/numa model.
//   - GPUHogwildEngine: asynchronous SGD executed by the SIMT simulator
//     with warp-lockstep conflict semantics and a coalescing/divergence
//     cost model — the paper's GPU Hogwild kernel.
//   - HogbatchEngine: the mini-batch asynchronous variant used for MLP
//     (batch size 512), sequential, parallel-CPU (concurrent batches over a
//     shared model) and serialized-GPU flavours.
//
// RunToConvergence drives any engine against the paper's methodology:
// identical initial models across configurations, loss measured per epoch
// (excluded from iteration timing), convergence at 10/5/2/1% above the
// optimal loss, ∞ when a time budget expires.
package core

import (
	"math"
	"time"

	"repro/internal/data"
	"repro/internal/model"
	"repro/internal/obs"
)

// Engine is one SGD configuration: it advances the model by one optimization
// epoch (a full pass over the training data) and reports the modeled
// device seconds that epoch took on the paper's hardware.
type Engine interface {
	// Name identifies the configuration (e.g. "sync/gpu", "async/cpu-par").
	Name() string
	// RunEpoch performs one epoch in place on w and returns modeled
	// seconds of device time.
	RunEpoch(w []float64) float64
}

// Instrumented is implemented by engines that can feed an obs.Recorder with
// per-epoch phase timings and counters.
type Instrumented interface {
	// SetRecorder attaches the recorder subsequent epochs report to.
	SetRecorder(obs.Recorder)
}

// Instrument attaches r to e if the engine supports instrumentation; other
// engines (external frameworks) are silently left dark.
func Instrument(e Engine, r obs.Recorder) {
	if i, ok := e.(Instrumented); ok {
		i.SetRecorder(r)
	}
}

// Tolerances are the convergence thresholds the paper reports: loss within
// 10%, 5%, 2% and 1% of the optimum.
var Tolerances = []float64{0.10, 0.05, 0.02, 0.01}

// LossPoint is one sample of the convergence curve.
type LossPoint struct {
	Epoch   int
	Seconds float64 // cumulative modeled device seconds
	Loss    float64
}

// RunResult reports one configuration driven to convergence.
type RunResult struct {
	Config string
	// Epochs actually executed.
	Epochs int
	// SecPerEpoch is the average modeled time per iteration (the paper's
	// hardware-efficiency metric).
	SecPerEpoch float64
	// EpochsTo maps a tolerance to the first epoch whose loss is within
	// that tolerance of the optimum; -1 if never reached (the paper's
	// statistical-efficiency metric, ∞ rows in Table III).
	EpochsTo map[float64]int
	// SecondsTo maps a tolerance to the modeled time of that epoch (the
	// paper's time-to-convergence metric); +Inf if never reached.
	SecondsTo map[float64]float64
	// Curve is the full loss trajectory (Fig. 7 panels).
	Curve []LossPoint
	// FinalLoss is the loss after the last epoch run.
	FinalLoss float64
}

// Converged reports whether the 1% threshold was reached.
func (r *RunResult) Converged() bool { return r.EpochsTo[0.01] >= 0 }

// DriverOpts parameterises RunToConvergence.
type DriverOpts struct {
	// OptLoss is the reference optimal loss (paper: lowest loss observed
	// across all configurations after very long runs).
	OptLoss float64
	// InitLoss, when set, short-circuits the initial loss evaluation.
	InitLoss float64
	// MaxEpochs bounds the run (0 = 10000).
	MaxEpochs int
	// TimeBudget bounds modeled seconds; exceeding it marks the remaining
	// tolerances unreachable, like the paper's ∞ entries (0 = no bound).
	TimeBudget float64
	// Tolerances overrides the default 10/5/2/1%.
	Tolerances []float64
	// LossEvery evaluates the loss only every k-th epoch (default 1).
	// Convergence epochs are then resolved at that granularity — useful
	// for synchronous drives needing thousands of cheap epochs.
	LossEvery int
	// PlateauEpochs stops the run early when the best loss has not
	// improved (relatively, by 1e-4) for this many epochs while
	// tolerances remain unmet — the ∞ outcome without burning the whole
	// budget (0 = disabled).
	PlateauEpochs int
	// Rec, when set, receives the run's observability stream: the driver
	// attaches it to the engine (phase timings, counters), records the
	// between-epoch loss evaluations under obs.PhaseLossEval (host
	// wall-clock, excluded from modeled time per the paper's methodology)
	// and closes every epoch with its modeled seconds.
	Rec obs.Recorder
}

// Threshold returns the loss value that counts as "within tol of the
// optimum": opt*(1+tol), with an absolute fallback for a vanishing optimum.
func Threshold(opt, tol float64) float64 {
	if opt < 1e-12 {
		return tol * tol // effectively exact
	}
	return opt * (1 + tol)
}

// GapThreshold is the convergence criterion the driver applies: the
// suboptimality gap must shrink to tol of its initial size,
//
//	loss <= opt + tol*(init - opt).
//
// At the paper's loss scales (optima of 0.1-0.5 nats from noisy labels)
// this coincides with its "within tol% of the optimal loss" to three
// decimals; unlike the multiplicative form it stays meaningful when a
// scaled-down high-dimensional dataset becomes separable and the optimum
// approaches zero.
func GapThreshold(init, opt, tol float64) float64 {
	if init <= opt {
		return Threshold(opt, tol)
	}
	return opt + tol*(init-opt)
}

// RunToConvergence drives an engine until every tolerance is met, the epoch
// limit is hit, the time budget is exhausted, or the loss diverges. The loss
// is evaluated between epochs with the scalar path and its cost is not
// charged to the engine, per the paper's methodology.
func RunToConvergence(e Engine, m model.Model, ds *data.Dataset, w []float64, opts DriverOpts) RunResult {
	maxEpochs := opts.MaxEpochs
	if maxEpochs <= 0 {
		maxEpochs = 10000
	}
	tols := opts.Tolerances
	if tols == nil {
		tols = Tolerances
	}
	res := RunResult{
		Config:    e.Name(),
		EpochsTo:  make(map[float64]int, len(tols)),
		SecondsTo: make(map[float64]float64, len(tols)),
	}
	for _, tol := range tols {
		res.EpochsTo[tol] = -1
		res.SecondsTo[tol] = math.Inf(1)
	}
	rec := obs.Or(opts.Rec)
	Instrument(e, rec)
	initLoss := opts.InitLoss
	if initLoss == 0 {
		t0 := time.Now()
		initLoss = model.MeanLoss(m, w, ds)
		rec.Phase(obs.PhaseLossEval, time.Since(t0).Seconds())
		rec.EndEpoch(0) // epoch 0: evaluation only, no modeled engine time
	}
	res.Curve = append(res.Curve, LossPoint{Epoch: 0, Seconds: 0, Loss: initLoss})
	res.FinalLoss = initLoss

	var elapsed float64
	remaining := len(tols)
	for _, tol := range tols {
		if initLoss <= GapThreshold(initLoss, opts.OptLoss, tol) {
			res.EpochsTo[tol] = 0
			res.SecondsTo[tol] = 0
			remaining--
		}
	}
	lossEvery := opts.LossEvery
	if lossEvery <= 0 {
		lossEvery = 1
	}
	bestLoss := initLoss
	bestEpoch := 0
	for epoch := 1; epoch <= maxEpochs && remaining > 0; epoch++ {
		epochSec := e.RunEpoch(w)
		elapsed += epochSec
		res.Epochs = epoch
		if epoch%lossEvery != 0 && epoch != maxEpochs {
			rec.EndEpoch(epochSec)
			continue
		}
		t0 := time.Now()
		loss := model.MeanLoss(m, w, ds)
		rec.Phase(obs.PhaseLossEval, time.Since(t0).Seconds())
		rec.EndEpoch(epochSec)
		res.FinalLoss = loss
		res.Curve = append(res.Curve, LossPoint{Epoch: epoch, Seconds: elapsed, Loss: loss})
		if math.IsNaN(loss) || math.IsInf(loss, 0) {
			break // diverged; remaining tolerances stay at ∞
		}
		for _, tol := range tols {
			if res.EpochsTo[tol] < 0 && loss <= GapThreshold(initLoss, opts.OptLoss, tol) {
				res.EpochsTo[tol] = epoch
				res.SecondsTo[tol] = elapsed
				remaining--
			}
		}
		if loss < bestLoss*(1-1e-4) {
			bestLoss, bestEpoch = loss, epoch
		}
		if opts.PlateauEpochs > 0 && epoch-bestEpoch >= opts.PlateauEpochs {
			break // stuck above the remaining thresholds: report ∞
		}
		if opts.TimeBudget > 0 && elapsed > opts.TimeBudget {
			break
		}
	}
	if res.Epochs > 0 {
		res.SecPerEpoch = elapsed / float64(res.Epochs)
	}
	return res
}
