package core

import (
	"math/rand"
	"testing"

	"repro/internal/chaos"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/pool"
)

// Satellite property test: every replica's private vector must be exactly
// the model dimension — an off-by-one in the aligned-copy sizing (the
// spmvCost class of bug) would silently truncate or over-read gradients —
// and the vectors must start cache-line-aligned (the point of AlignedVec).
func TestLocalReplicaVectorsMatchModelDim(t *testing.T) {
	ds, spec := smallDataset(t, "w8a", 200)
	models := []model.Model{
		model.NewLR(ds.D()),
		model.NewSVM(ds.D()),
		model.NewMLPFor(spec),
	}
	for _, m := range models {
		m := m
		t.Run(m.Name(), func(t *testing.T) {
			dim := m.NumParams()
			sync := NewLocalSGD(m, ds, 0.1, 5, 4)
			async := NewAsyncLocalSGD(m, ds, 0.1, 5, 4)
			w1, w2 := m.InitParams(1), m.InitParams(1)
			sync.RunEpoch(w1)
			async.RunEpoch(w2)
			if len(sync.reps) != 5 || len(async.reps) != 5 {
				t.Fatalf("replica counts %d/%d, want 5", len(sync.reps), len(async.reps))
			}
			for r := 0; r < 5; r++ {
				if got := len(sync.reps[r]); got != dim {
					t.Errorf("%s sync replica %d: len %d, want model dim %d", m.Name(), r, got, dim)
				}
				if got := len(async.reps[r]); got != dim {
					t.Errorf("%s async replica %d: len %d, want model dim %d", m.Name(), r, got, dim)
				}
			}
			if got := len(async.pub); got != dim {
				t.Errorf("%s published vector: len %d, want %d", m.Name(), got, dim)
			}
		})
	}
}

// serialMean is the reference reduction: per component, replicas summed in
// ascending order, divided by the weight sum.
func serialMean(reps [][]float64, wgt []float64) []float64 {
	dim := len(reps[0])
	out := make([]float64, dim)
	for j := 0; j < dim; j++ {
		s, ws := 0.0, 0.0
		for i, r := range reps {
			w := 1.0
			if wgt != nil {
				w = wgt[i]
			}
			if w != 0 {
				s += w * r[j]
			}
			ws += w
		}
		out[j] = s / ws
	}
	return out
}

// Satellite property test: the pool-dispatched reduction must be bitwise
// identical to the serial mean, for power-of-two and odd replica counts —
// the property holds because components are partitioned (never split) across
// chunks and each component sums its replicas in a fixed order; a pairwise
// tree over replicas would break it, floating-point addition not being
// associative.
func TestLocalReductionMatchesSerialMean(t *testing.T) {
	p := pool.New(4)
	defer p.Close()
	const dim = 4097 // odd and larger than reduceGrain: multiple chunks
	rng := rand.New(rand.NewSource(7))
	for _, k := range []int{1, 2, 3, 4, 5, 7, 8, 16} {
		reps := make([][]float64, k)
		for r := range reps {
			reps[r] = model.AlignedVec(dim)
			for j := range reps[r] {
				reps[r][j] = rng.NormFloat64()
			}
		}
		t.Run("", func(t *testing.T) {
			got := make([]float64, dim)
			task := reduceTask{dst: got, reps: reps, wsum: float64(k)}
			p.RunGrain(p.Size(), dim, reduceGrain, &task)
			want := serialMean(reps, nil)
			for j := range want {
				if got[j] != want[j] {
					t.Fatalf("K=%d: parallel mean differs at component %d: %v vs %v", k, j, got[j], want[j])
				}
			}
			// The weighted path (chaos rounds) must agree with the weighted
			// serial fold too, including a dropped and a duplicated replica.
			wgt := make([]float64, k)
			for i := range wgt {
				wgt[i] = 1
			}
			wgt[0] = 2
			if k > 1 {
				wgt[k-1] = 0
			}
			ws := 0.0
			for _, v := range wgt {
				ws += v
			}
			task = reduceTask{dst: got, reps: reps, wgt: wgt, wsum: ws}
			p.RunGrain(p.Size(), dim, reduceGrain, &task)
			want = serialMean(reps, wgt)
			for j := range want {
				if got[j] != want[j] {
					t.Fatalf("K=%d: weighted parallel mean differs at component %d: %v vs %v", k, j, got[j], want[j])
				}
			}
		})
	}
}

func TestDeterministicReplayLocalSync(t *testing.T) {
	ds, _ := smallDataset(t, "w8a", 300)
	m := model.NewLR(ds.D())
	w1, w2 := runTwice(t, func() Engine { return NewLocalSGD(m, ds, 0.5, 8, 4) }, m, 4)
	expectIdentical(t, "local-sync", w1, w2)
}

// Satellite replay test: two virtual-time runs of the async engine with the
// same seed must produce bitwise-identical loss curves — the sequencer makes
// the timer/replica interleaving a pure function of the seed. Runs under
// -race via the chaos CI job (the sequencer's handshake provides the
// happens-before edges).
func TestDeterministicReplayAsyncLocalSGDLossCurve(t *testing.T) {
	ds, _ := smallDataset(t, "w8a", 300)
	m := model.NewLR(ds.D())
	curve := func() []float64 {
		e := NewAsyncLocalSGD(m, ds, 0.5, 8, 4)
		e.SetShuffleSeed(42)
		w := m.InitParams(3)
		var losses []float64
		losses = append(losses, model.MeanLoss(m, w, ds))
		for ep := 0; ep < 5; ep++ {
			e.RunEpoch(w)
			losses = append(losses, model.MeanLoss(m, w, ds))
		}
		return losses
	}
	a, b := curve(), curve()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("async local-sgd replay differs at epoch %d: %v vs %v", i, a[i], b[i])
		}
	}
}

// Distinct seeds must draw distinct schedules/shuffles — the reason the
// regress harness gates local-async on an envelope, not a golden.
func TestAsyncLocalSGDSeedsDiffer(t *testing.T) {
	ds, _ := smallDataset(t, "w8a", 300)
	m := model.NewLR(ds.D())
	run := func(seed int64) []float64 {
		e := NewAsyncLocalSGD(m, ds, 0.5, 8, 4)
		e.SetShuffleSeed(seed)
		w := m.InitParams(3)
		for ep := 0; ep < 3; ep++ {
			e.RunEpoch(w)
		}
		return w
	}
	a, b := run(1), run(2)
	same := true
	for j := range a {
		if a[j] != b[j] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical async local-sgd trajectories")
	}
}

// The modeled epoch time must fall monotonically as H grows at fixed K:
// fewer reduction rounds on the critical path — the hardware-efficiency half
// of the frontier cmd/epochbench records.
func TestLocalSyncEpochTimeDecreasesWithH(t *testing.T) {
	ds, _ := smallDataset(t, "w8a", 400)
	m := model.NewLR(ds.D())
	prev := -1.0
	for _, h := range []int{1, 4, 16, 64} {
		e := NewLocalSGD(m, ds, 0.5, 8, h)
		w := m.InitParams(1)
		sec := e.RunEpoch(w)
		if prev > 0 && sec >= prev {
			t.Fatalf("H=%d: modeled epoch %g s >= H-previous %g s; want strictly decreasing", h, sec, prev)
		}
		prev = sec
	}
}

// Both engines must emit the local-SGD observability contract: phase sums
// matching modeled seconds, round counters, and (async) the staleness sum.
func TestLocalSGDRecordsRoundsAndStaleness(t *testing.T) {
	ds, _ := smallDataset(t, "w8a", 240)
	m := model.NewLR(ds.D())
	sync := NewLocalSGD(m, ds, 0.5, 6, 4)
	r := runInstrumented(t, sync, m.InitParams(1), 2)
	// 40 examples per replica, H=4: 10 rounds per epoch, 2 epochs.
	if got := r.Counter(obs.CounterLocalRounds); got != 20 {
		t.Errorf("local-sync rounds = %d, want 20", got)
	}
	if got := r.Counter(obs.CounterWorkerUpdates); got != int64(2*ds.N()) {
		t.Errorf("local-sync worker_updates = %d, want %d", got, 2*ds.N())
	}
	if !relClose(r.EnginePhaseSum(), r.Seconds, 1e-9) {
		t.Errorf("local-sync phase sum %v != modeled seconds %v", r.EnginePhaseSum(), r.Seconds)
	}

	async := NewAsyncLocalSGD(m, ds, 0.5, 6, 4)
	r = runInstrumented(t, async, m.InitParams(1), 2)
	if r.Counter(obs.CounterLocalRounds) == 0 {
		t.Error("local-async recorded no aggregation rounds")
	}
	if r.Counter(obs.CounterLocalStalenessSum) == 0 {
		t.Error("local-async recorded no staleness: replicas should drift between timer firings")
	}
	if !relClose(r.EnginePhaseSum(), r.Seconds, 1e-9) {
		t.Errorf("local-async phase sum %v != modeled seconds %v", r.EnginePhaseSum(), r.Seconds)
	}
}

// Chaos threading: a storm plan must surface straggled/dropped counters
// through the standard drain path on both engines, and the sync engine's
// faulted epoch must stretch (the straggler delays every round).
func TestLocalSGDChaosCountersAndStretch(t *testing.T) {
	ds, _ := smallDataset(t, "w8a", 240)
	m := model.NewLR(ds.D())

	sync := NewLocalSGD(m, ds, 0.5, 6, 4)
	w := m.InitParams(1)
	healthy := sync.RunEpoch(w)
	plan, err := chaos.Lookup("storm")
	if err != nil {
		t.Fatal(err)
	}
	rec := &countRec{}
	sync.SetRecorder(rec)
	InjectChaos(sync, chaos.New(plan, 1))
	faulted := sync.RunEpoch(w)
	if faulted <= healthy {
		t.Errorf("storm did not stretch the local-sync epoch: %g <= %g", faulted, healthy)
	}
	if rec.counts[obs.CounterChaosStraggled] == 0 {
		t.Error("local-sync under storm recorded no straggled rounds")
	}

	async := NewAsyncLocalSGD(m, ds, 0.5, 6, 4)
	rec = &countRec{}
	async.SetRecorder(rec)
	InjectChaos(async, chaos.New(plan, 1))
	async.RunEpoch(m.InitParams(1))
	if rec.counts[obs.CounterChaosStraggled] == 0 {
		t.Error("local-async under storm recorded no straggled updates")
	}
}
