package core

import (
	"math"
	"testing"

	"repro/internal/data"
	"repro/internal/gpusim"
	"repro/internal/linalg"
	"repro/internal/model"
)

// smallDataset returns a scaled-down registry dataset.
func smallDataset(t testing.TB, name string, n int) (*data.Dataset, data.Spec) {
	t.Helper()
	spec, err := data.Lookup(name)
	if err != nil {
		t.Fatal(err)
	}
	spec = spec.Scaled(float64(n) / float64(spec.N))
	ds := data.Generate(spec)
	if err := ds.Validate(); err != nil {
		t.Fatal(err)
	}
	return ds, spec
}

func TestSyncEnginesAgreeAcrossBackends(t *testing.T) {
	// The paper's ViennaCL property: the same synchronous code on any
	// device computes the same updates, so statistical efficiency is
	// identical by construction. Our backends agree bitwise.
	ds, _ := smallDataset(t, "w8a", 400)
	m := model.NewLR(ds.D())
	backends := []linalg.Backend{linalg.NewCPU(1), linalg.NewCPU(56), linalg.NewK80()}
	results := make([][]float64, len(backends))
	for bi, b := range backends {
		w := m.InitParams(1)
		e := NewSync(b, m, ds, 10)
		for ep := 0; ep < 5; ep++ {
			e.RunEpoch(w)
		}
		results[bi] = w
	}
	// gpu executes the ops sequentially like cpu-seq: bitwise identical.
	for j := range results[0] {
		if results[2][j] != results[0][j] {
			t.Fatalf("gpu diverges from cpu-seq at w[%d]: %v vs %v",
				j, results[2][j], results[0][j])
		}
	}
	// cpu-par reduces partial sums in a different association order:
	// numerically equal within float tolerance.
	for j := range results[0] {
		diff := math.Abs(results[1][j] - results[0][j])
		scale := math.Max(1e-9, math.Abs(results[0][j]))
		if diff/scale > 1e-9 {
			t.Fatalf("cpu-par diverges from cpu-seq at w[%d]: %v vs %v",
				j, results[1][j], results[0][j])
		}
	}
}

func TestSyncEngineReducesLoss(t *testing.T) {
	for _, task := range []string{"lr", "svm"} {
		ds, _ := smallDataset(t, "w8a", 500)
		var m model.BatchModel
		if task == "lr" {
			m = model.NewLR(ds.D())
		} else {
			m = model.NewSVM(ds.D())
		}
		w := m.InitParams(1)
		before := model.MeanLoss(m, w, ds)
		e := NewSync(linalg.NewCPU(56), m, ds, 10)
		for ep := 0; ep < 20; ep++ {
			e.RunEpoch(w)
		}
		after := model.MeanLoss(m, w, ds)
		if after >= before {
			t.Fatalf("%s: sync SGD did not reduce loss: %v -> %v", task, before, after)
		}
	}
}

func TestSyncEngineModeledTimePositiveAndOrdered(t *testing.T) {
	// Hardware efficiency at the paper's full dataset scale: gpu faster
	// than cpu-par faster than cpu-seq (paper Table II ordering).
	ds, spec := smallDataset(t, "rcv1", 2000)
	scale := float64(spec.N) / float64(ds.N()) * 340 // price at full rcv1 size
	m := model.NewLR(ds.D())
	seq := linalg.NewCPU(1)
	seq.WorkScale = scale
	par := linalg.NewCPU(56)
	par.WorkScale = scale
	gpu := linalg.NewK80()
	gpu.WorkScale = scale
	times := map[string]float64{}
	for _, b := range []linalg.Backend{seq, par, gpu} {
		w := m.InitParams(1)
		e := NewSync(b, m, ds, 1)
		sec := e.RunEpoch(w)
		if sec <= 0 {
			t.Fatalf("%s: non-positive modeled epoch time", b.Name())
		}
		times[b.Name()] = sec
	}
	if !(times["gpu"] < times["cpu-par(56)"] && times["cpu-par(56)"] < times["cpu-seq"]) {
		t.Fatalf("sync time ordering violated: %v", times)
	}
}

func TestSyncMiniBatchUpdatesMoreOften(t *testing.T) {
	ds, _ := smallDataset(t, "w8a", 300)
	m := model.NewLR(ds.D())
	full := NewSync(linalg.NewCPU(1), m, ds, 1)
	mini := NewSync(linalg.NewCPU(1), m, ds, 1)
	mini.Batch = 50
	wf := m.InitParams(1)
	wm := m.InitParams(1)
	full.RunEpoch(wf)
	mini.RunEpoch(wm)
	// Mini-batch makes n/B updates per epoch: after one epoch the models
	// must differ.
	same := true
	for j := range wf {
		if wf[j] != wm[j] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("mini-batch epoch identical to full-batch epoch")
	}
	lf := model.MeanLoss(m, wf, ds)
	lm := model.MeanLoss(m, wm, ds)
	if lm >= lf {
		t.Fatalf("mini-batch should converge faster per epoch: %v vs %v", lm, lf)
	}
}

func TestHogwildSequentialConverges(t *testing.T) {
	ds, _ := smallDataset(t, "w8a", 600)
	m := model.NewLR(ds.D())
	e := NewHogwild(m, ds, 0.5, 1)
	w := m.InitParams(1)
	opt := EstimateOptLoss(m, ds, 20)
	res := RunToConvergence(e, m, ds, w, DriverOpts{OptLoss: opt, MaxEpochs: 200})
	if res.EpochsTo[0.10] < 0 {
		t.Fatalf("sequential Hogwild never reached 10%%: final loss %v, opt %v", res.FinalLoss, opt)
	}
	if res.SecPerEpoch <= 0 {
		t.Fatal("no modeled time accrued")
	}
}

func TestHogwildParallelConverges(t *testing.T) {
	// Sparse data: concurrent Hogwild must still converge (the paper's
	// central premise).
	ds, _ := smallDataset(t, "real-sim", 800)
	m := model.NewSVM(ds.D())
	e := NewHogwild(m, ds, 0.5, 56)
	w := m.InitParams(1)
	opt := EstimateOptLoss(m, ds, 20)
	res := RunToConvergence(e, m, ds, w, DriverOpts{OptLoss: opt, MaxEpochs: 300})
	if res.EpochsTo[0.10] < 0 {
		t.Fatalf("parallel Hogwild never reached 10%%: final %v, opt %v", res.FinalLoss, opt)
	}
}

func TestHogwildDenseParallelModeledSlower(t *testing.T) {
	// covtype-like dense data: the modeled epoch must be slower on 56
	// threads than on 1 (coherence conflicts; paper Table III).
	ds, _ := smallDataset(t, "covtype", 1500)
	m := model.NewLR(ds.D())
	seq := NewHogwild(m, ds, 0.01, 1)
	par := NewHogwild(m, ds, 0.01, 56)
	w1 := m.InitParams(1)
	w2 := m.InitParams(1)
	t1 := seq.RunEpoch(w1)
	t2 := par.RunEpoch(w2)
	if t2 <= t1 {
		t.Fatalf("dense Hogwild modeled: par %v <= seq %v", t2, t1)
	}
}

func TestHogwildSparseParallelModeledFaster(t *testing.T) {
	ds, _ := smallDataset(t, "news", 2000)
	m := model.NewLR(ds.D())
	seq := NewHogwild(m, ds, 0.1, 1)
	par := NewHogwild(m, ds, 0.1, 56)
	w1 := m.InitParams(1)
	w2 := m.InitParams(1)
	t1 := seq.RunEpoch(w1)
	t2 := par.RunEpoch(w2)
	if t2 >= t1 {
		t.Fatalf("sparse Hogwild modeled: par %v >= seq %v", t2, t1)
	}
}

func TestGPUHogwildConverges(t *testing.T) {
	ds, _ := smallDataset(t, "w8a", 600)
	m := model.NewLR(ds.D())
	e := NewGPUHogwild(m, ds, 0.5)
	w := m.InitParams(1)
	opt := EstimateOptLoss(m, ds, 20)
	res := RunToConvergence(e, m, ds, w, DriverOpts{OptLoss: opt, MaxEpochs: 400})
	if res.EpochsTo[0.10] < 0 {
		t.Fatalf("GPU Hogwild never reached 10%%: final %v, opt %v", res.FinalLoss, opt)
	}
	if e.LastStats().Updates == 0 {
		t.Fatal("no simulated updates recorded")
	}
}

func TestGPUHogwildDenseNeedsMoreEpochsThanSeq(t *testing.T) {
	// Dense data: warp conflicts destroy updates, so the GPU needs more
	// epochs than sequential SGD for the same threshold (paper Table
	// III: covtype 135 epochs vs 4).
	ds, _ := smallDataset(t, "covtype", 1200)
	m := model.NewLR(ds.D())
	opt := EstimateOptLoss(m, ds, 25)
	step := 0.3

	seq := NewHogwild(m, ds, step, 1)
	wseq := m.InitParams(1)
	rseq := RunToConvergence(seq, m, ds, wseq, DriverOpts{OptLoss: opt, MaxEpochs: 500})

	gpu := NewGPUHogwild(m, ds, step)
	wgpu := m.InitParams(1)
	rgpu := RunToConvergence(gpu, m, ds, wgpu, DriverOpts{OptLoss: opt, MaxEpochs: 500})

	eSeq, eGPU := rseq.EpochsTo[0.05], rgpu.EpochsTo[0.05]
	if eSeq < 0 {
		t.Skipf("sequential did not reach 5%% in budget (opt=%v)", opt)
	}
	if eGPU >= 0 && eGPU < eSeq {
		t.Fatalf("GPU async statistically better than sequential on dense data: %d < %d epochs", eGPU, eSeq)
	}
}

func TestGPUHogwildCombineReducesConflicts(t *testing.T) {
	ds, _ := smallDataset(t, "covtype", 800)
	m := model.NewLR(ds.D())
	plain := NewGPUHogwild(m, ds, 0.1)
	comb := NewGPUHogwild(m, ds, 0.1)
	comb.Combine = true
	w1 := m.InitParams(1)
	w2 := m.InitParams(1)
	plain.RunEpoch(w1)
	comb.RunEpoch(w2)
	if comb.LastStats().LostIntra != 0 {
		t.Fatal("combine mode left intra-warp losses")
	}
	if plain.LastStats().LostIntra == 0 {
		t.Fatal("plain mode on dense data should lose intra-warp updates")
	}
}

func TestHogbatchModesReduceLoss(t *testing.T) {
	spec, _ := data.Lookup("w8a")
	spec = spec.Scaled(1200.0 / float64(spec.N))
	ds := data.Generate(spec)
	mlpDS, err := data.ForMLP(ds, spec)
	if err != nil {
		t.Fatal(err)
	}
	m := model.NewMLPFor(spec)
	for _, mode := range []HogbatchMode{HogbatchSeq, HogbatchParCPU, HogbatchGPU} {
		e := NewHogbatch(m, mlpDS, 0.5, mode)
		e.Batch = 128
		// Scale the in-flight depth like the harness does: this run
		// holds 1/54th of the full w8a, so ~1 batch is in flight at
		// the paper-machine concurrency, not all of them.
		e.CostScale = 64700.0 / float64(mlpDS.N())
		w := m.InitParams(1)
		before := model.MeanLoss(m, w, mlpDS)
		var sec float64
		for ep := 0; ep < 10; ep++ {
			sec += e.RunEpoch(w)
		}
		after := model.MeanLoss(m, w, mlpDS)
		if after >= before {
			t.Errorf("%s: loss %v -> %v", e.Name(), before, after)
		}
		if sec <= 0 {
			t.Errorf("%s: no modeled time", e.Name())
		}
	}
}

func TestHogbatchTimingOrder(t *testing.T) {
	// Paper: parallel CPU Hogbatch is fastest per iteration (6x+ over
	// GPU); GPU is ~2x over sequential CPU.
	spec, _ := data.Lookup("real-sim")
	spec = spec.Scaled(2000.0 / float64(spec.N))
	ds := data.Generate(spec)
	mlpDS, err := data.ForMLP(ds, spec)
	if err != nil {
		t.Fatal(err)
	}
	m := model.NewMLPFor(spec)
	times := map[HogbatchMode]float64{}
	for _, mode := range []HogbatchMode{HogbatchSeq, HogbatchParCPU, HogbatchGPU} {
		e := NewHogbatch(m, mlpDS, 0.1, mode)
		w := m.InitParams(1)
		times[mode] = e.RunEpoch(w)
	}
	if !(times[HogbatchParCPU] < times[HogbatchGPU]) {
		t.Fatalf("cpu-par %v !< gpu %v", times[HogbatchParCPU], times[HogbatchGPU])
	}
	if !(times[HogbatchGPU] < times[HogbatchSeq]) {
		t.Fatalf("gpu %v !< cpu-seq %v", times[HogbatchGPU], times[HogbatchSeq])
	}
}

func TestDriverInitialConvergence(t *testing.T) {
	// If the initial model already satisfies a tolerance, epoch 0 counts.
	ds, _ := smallDataset(t, "w8a", 200)
	m := model.NewLR(ds.D())
	w := m.InitParams(1)
	init := model.MeanLoss(m, w, ds)
	e := NewHogwild(m, ds, 0.1, 1)
	res := RunToConvergence(e, m, ds, w, DriverOpts{OptLoss: init, MaxEpochs: 3})
	for _, tol := range Tolerances {
		if res.EpochsTo[tol] != 0 {
			t.Fatalf("tol %v: epoch %d, want 0", tol, res.EpochsTo[tol])
		}
		if res.SecondsTo[tol] != 0 {
			t.Fatalf("tol %v: seconds %v, want 0", tol, res.SecondsTo[tol])
		}
	}
}

// nanEngine corrupts the model after a few epochs, to exercise the driver's
// divergence handling.
type nanEngine struct{ epochs int }

func (e *nanEngine) Name() string { return "nan" }
func (e *nanEngine) RunEpoch(w []float64) float64 {
	e.epochs++
	if e.epochs >= 3 {
		w[0] = math.NaN()
	}
	return 0.001
}

func TestDriverDivergenceStops(t *testing.T) {
	ds, _ := smallDataset(t, "covtype", 300)
	m := model.NewLR(ds.D())
	w := m.InitParams(1)
	res := RunToConvergence(&nanEngine{}, m, ds, w, DriverOpts{OptLoss: 0.01, MaxEpochs: 50})
	if res.Converged() {
		t.Fatal("diverged run reported convergence")
	}
	if res.Epochs >= 50 {
		t.Fatalf("driver did not stop on divergence: ran %d epochs", res.Epochs)
	}
	if !math.IsInf(res.SecondsTo[0.01], 1) {
		t.Fatal("unreached tolerance should be +Inf seconds")
	}
}

func TestDriverTimeBudget(t *testing.T) {
	ds, _ := smallDataset(t, "w8a", 300)
	m := model.NewLR(ds.D())
	e := NewHogwild(m, ds, 1e-6, 1) // tiny step: no progress
	w := m.InitParams(1)
	res := RunToConvergence(e, m, ds, w, DriverOpts{
		OptLoss: 1e-9, MaxEpochs: 100000, TimeBudget: e.RunEpoch(m.InitParams(1)) * 3,
	})
	if res.Epochs >= 100000 {
		t.Fatal("time budget did not stop the run")
	}
	if res.Converged() {
		t.Fatal("no-progress run reported convergence (∞ case of Table III)")
	}
}

func TestDriverCurveMonotoneTime(t *testing.T) {
	ds, _ := smallDataset(t, "w8a", 300)
	m := model.NewLR(ds.D())
	e := NewHogwild(m, ds, 0.5, 1)
	w := m.InitParams(1)
	res := RunToConvergence(e, m, ds, w, DriverOpts{OptLoss: 0, MaxEpochs: 10})
	if len(res.Curve) != res.Epochs+1 {
		t.Fatalf("curve has %d points for %d epochs", len(res.Curve), res.Epochs)
	}
	for i := 1; i < len(res.Curve); i++ {
		if res.Curve[i].Seconds < res.Curve[i-1].Seconds {
			t.Fatal("curve time not monotone")
		}
		if res.Curve[i].Epoch != i {
			t.Fatal("curve epochs not sequential")
		}
	}
}

func TestThreshold(t *testing.T) {
	if got := Threshold(2, 0.01); math.Abs(got-2.02) > 1e-12 {
		t.Fatalf("Threshold(2, 0.01) = %v", got)
	}
	if got := Threshold(0, 0.01); got >= 0.01 {
		t.Fatalf("zero-optimum threshold too loose: %v", got)
	}
}

func TestTuneStepPicksConvergentStep(t *testing.T) {
	ds, _ := smallDataset(t, "w8a", 400)
	m := model.NewLR(ds.D())
	init := m.InitParams(1)
	step := TuneStep(func(s float64) Engine {
		return NewHogwild(m, ds, s, 1)
	}, m, ds, init, 5)
	if step < 1e-4 || step > 100 {
		t.Fatalf("tuned step %v outside plausible range", step)
	}
	// The tuned step must actually make progress.
	w := append([]float64(nil), init...)
	e := NewHogwild(m, ds, step, 1)
	before := model.MeanLoss(m, w, ds)
	for ep := 0; ep < 5; ep++ {
		e.RunEpoch(w)
	}
	if after := model.MeanLoss(m, w, ds); after >= before {
		t.Fatalf("tuned step does not reduce loss: %v -> %v", before, after)
	}
}

func TestEstimateOptLossBelowInit(t *testing.T) {
	ds, _ := smallDataset(t, "w8a", 400)
	m := model.NewLR(ds.D())
	init := model.MeanLoss(m, m.InitParams(1), ds)
	opt := EstimateOptLoss(m, ds, 25)
	if opt >= init {
		t.Fatalf("estimated optimum %v not below initial loss %v", opt, init)
	}
	if opt < 0 {
		t.Fatalf("negative optimal loss %v", opt)
	}
}

func TestOccupancyForN(t *testing.T) {
	dev := gpusim.K80()
	if got := OccupancyForN(dev, 100); got != 1 {
		t.Fatalf("tiny dataset occupancy = %d, want 1", got)
	}
	full := OccupancyForN(dev, 100_000_000)
	if full != dev.Spec.MaxResidentWarps() {
		t.Fatalf("huge dataset occupancy = %d, want device limit %d", full, dev.Spec.MaxResidentWarps())
	}
	mid := OccupancyForN(dev, 581012)
	if mid <= 1 || mid > full {
		t.Fatalf("covtype-scale occupancy = %d", mid)
	}
}
