package core

import (
	"math"
	"sync"
	"testing"

	"repro/internal/linalg"
	"repro/internal/model"
	"repro/internal/obs"
)

// relClose reports |a-b| <= tol*max(|a|,|b|).
func relClose(a, b, tol float64) bool {
	scale := math.Max(math.Abs(a), math.Abs(b))
	if scale == 0 {
		return true
	}
	return math.Abs(a-b) <= tol*scale
}

// runInstrumented drives nEpochs of e under a fresh aggregator, closing each
// epoch the way the convergence driver does, and returns the run's stats.
func runInstrumented(t *testing.T, e Engine, w []float64, nEpochs int) obs.RunStats {
	t.Helper()
	agg := obs.NewAggregator()
	rec := agg.Run(e.Name(), "test")
	Instrument(e, rec)
	for i := 0; i < nEpochs; i++ {
		rec.EndEpoch(e.RunEpoch(w))
	}
	runs := agg.Runs()
	if len(runs) != 1 {
		t.Fatalf("expected 1 run, got %d", len(runs))
	}
	return runs[0]
}

func TestHogwildRecordsPhasesAndWorkerCounters(t *testing.T) {
	ds, _ := smallDataset(t, "w8a", 400)
	m := model.NewLR(ds.D())
	e := NewHogwild(m, ds, 0.5, 2)
	w := m.InitParams(1)
	const epochs = 3
	r := runInstrumented(t, e, w, epochs)

	if r.Epochs != epochs {
		t.Fatalf("epochs recorded = %d, want %d", r.Epochs, epochs)
	}
	// Acceptance: Hogwild traces include nonzero worker-update counters.
	wantUpdates := int64(epochs * ds.N())
	if got := r.Counter(obs.CounterWorkerUpdates); got != wantUpdates {
		t.Fatalf("worker_updates = %d, want %d", got, wantUpdates)
	}
	// Acceptance: phase times sum to the modeled epoch seconds (the 5%
	// budget in the issue; the decomposition is exact up to rounding).
	if !relClose(r.EnginePhaseSum(), r.Seconds, 1e-9) {
		t.Fatalf("phase sum %v != modeled seconds %v", r.EnginePhaseSum(), r.Seconds)
	}
	if r.Phase(obs.PhaseGradient) <= 0 || r.Phase(obs.PhaseUpdate) <= 0 {
		t.Fatalf("gradient/update phases should be positive: %v / %v",
			r.Phase(obs.PhaseGradient), r.Phase(obs.PhaseUpdate))
	}
	// Worker shares: one observation per worker per epoch, summing to ~1
	// per epoch.
	d := r.Observation(obs.MetricWorkerShare)
	if d.Count == 0 {
		t.Fatal("no worker_share observations")
	}
	if !relClose(d.Sum, float64(epochs), 1e-9) {
		t.Fatalf("worker shares sum to %v per run, want %v", d.Sum, float64(epochs))
	}
}

func TestHogwildCASRetryCounterMatchesUpdater(t *testing.T) {
	ds, _ := smallDataset(t, "covtype", 300)
	m := model.NewLR(ds.D())
	e := NewHogwild(m, ds, 0.5, 2)
	upd := &model.CountingAtomicUpdater{}
	e.Updater = upd
	w := m.InitParams(1)
	r := runInstrumented(t, e, w, 2)
	// The per-epoch deltas must reassemble the updater's cumulative count,
	// whatever contention the host actually exhibited.
	if got, want := r.Counter(obs.CounterCASRetries), upd.Retries(); got != want {
		t.Fatalf("cas_retries = %d, updater reports %d", got, want)
	}
}

func TestCountingAtomicUpdaterUnderContention(t *testing.T) {
	// Hammer one component from several goroutines: the CAS discipline
	// must not lose a single increment, and the retry counter stays
	// consistent with that (>= 0, exact value is host-dependent).
	w := make([]float64, 4)
	upd := &model.CountingAtomicUpdater{}
	const goroutines, per = 8, 5000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				upd.Add(w, 0, 1)
			}
		}()
	}
	wg.Wait()
	if w[0] != goroutines*per {
		t.Fatalf("CAS updater lost updates: w[0] = %v, want %v", w[0], goroutines*per)
	}
	if upd.Retries() < 0 {
		t.Fatalf("negative retry count %d", upd.Retries())
	}
}

func TestSyncRecordsBarrierAndBatches(t *testing.T) {
	ds, _ := smallDataset(t, "w8a", 400)
	m := model.NewLR(ds.D())
	e := NewSync(linalg.NewCPU(56), m, ds, 1)
	e.Batch = 100
	e.EpochOverhead = 1.9
	w := m.InitParams(1)
	const epochs = 2
	r := runInstrumented(t, e, w, epochs)

	// Acceptance: sync traces include barrier timings.
	if got, want := r.Phase(obs.PhaseBarrier), float64(epochs)*e.EpochOverhead; !relClose(got, want, 1e-9) {
		t.Fatalf("barrier phase = %v, want %v", got, want)
	}
	if !relClose(r.EnginePhaseSum(), r.Seconds, 1e-9) {
		t.Fatalf("phase sum %v != modeled seconds %v", r.EnginePhaseSum(), r.Seconds)
	}
	wantBatches := int64(epochs * ((ds.N() + 99) / 100))
	if got := r.Counter(obs.CounterBatches); got != wantBatches {
		t.Fatalf("batches = %d, want %d", got, wantBatches)
	}
}

func TestGPUHogwildRecordsConflictAndCoalescingCounters(t *testing.T) {
	ds, _ := smallDataset(t, "covtype", 400)
	m := model.NewLR(ds.D())
	e := NewGPUHogwild(m, ds, 0.1)
	e.MaxWarps = 8
	w := m.InitParams(1)
	r := runInstrumented(t, e, w, 2)

	if r.Counter(obs.CounterGPUUpdates) <= 0 {
		t.Fatal("no gpu_updates recorded")
	}
	if r.Counter(obs.CounterGPUTransactions) <= 0 {
		t.Fatal("no gpu_transactions recorded")
	}
	if r.Counter(obs.CounterGPUApplied) <= 0 {
		t.Fatal("no gpu_applied recorded")
	}
	// covtype is dense: lanes of a warp write the same components, so the
	// unsynchronised kernel must lose updates intra-warp.
	if r.Counter(obs.CounterGPULostIntra) <= 0 {
		t.Fatal("dense data should exhibit intra-warp lost updates")
	}
	if !relClose(r.EnginePhaseSum(), r.Seconds, 1e-9) {
		t.Fatalf("phase sum %v != modeled seconds %v", r.EnginePhaseSum(), r.Seconds)
	}
	if r.Phase(obs.PhaseBarrier) <= 0 {
		t.Fatal("kernel-launch barrier phase should be positive")
	}
	d := r.Observation(obs.MetricDivergentWarpFrac)
	if d.Count == 0 {
		t.Fatal("no divergent_warp_frac observations")
	}
	if d.Min < 0 || d.Max > 1 {
		t.Fatalf("divergence fraction outside [0,1]: min %v max %v", d.Min, d.Max)
	}
}

func TestHogbatchRecordsBatchLatencies(t *testing.T) {
	ds, _ := smallDataset(t, "covtype", 600)
	m := model.NewLR(ds.D())
	e := NewHogbatch(m, ds, 0.1, HogbatchSeq)
	e.Batch = 128
	w := m.InitParams(1)
	const epochs = 2
	r := runInstrumented(t, e, w, epochs)

	nb := (ds.N() + 127) / 128
	if got := r.Counter(obs.CounterBatches); got != int64(epochs*nb) {
		t.Fatalf("batches = %d, want %d", got, epochs*nb)
	}
	d := r.Observation(obs.MetricBatchSeconds)
	if d.Count != int64(epochs*nb) {
		t.Fatalf("batch_seconds observations = %d, want %d", d.Count, epochs*nb)
	}
	if d.Min <= 0 {
		t.Fatalf("batch latency must be positive, min %v", d.Min)
	}
	if !relClose(r.EnginePhaseSum(), r.Seconds, 1e-9) {
		t.Fatalf("phase sum %v != modeled seconds %v", r.EnginePhaseSum(), r.Seconds)
	}
}

func TestDriverRecordsLossEvalOutsidePhaseSum(t *testing.T) {
	ds, _ := smallDataset(t, "w8a", 300)
	m := model.NewLR(ds.D())
	e := NewHogwild(m, ds, 0.5, 1)
	w := m.InitParams(1)
	agg := obs.NewAggregator()
	res := RunToConvergence(e, m, ds, w, DriverOpts{
		OptLoss:   0,
		MaxEpochs: 4,
		Rec:       agg.Run(e.Name(), ds.Name),
	})
	runs := agg.Runs()
	if len(runs) != 1 {
		t.Fatalf("expected 1 run, got %d", len(runs))
	}
	r := runs[0]
	// Epoch 0 is the initial evaluation (no engine time), then one trace
	// epoch per engine epoch.
	if r.Epochs != res.Epochs+1 {
		t.Fatalf("trace epochs = %d, want %d", r.Epochs, res.Epochs+1)
	}
	if r.Phase(obs.PhaseLossEval) <= 0 {
		t.Fatal("driver did not record loss_eval time")
	}
	// Loss evaluation is excluded from iteration timing (the paper's
	// methodology): the engine phases alone must reassemble the modeled
	// seconds.
	if !relClose(r.EnginePhaseSum(), r.Seconds, 1e-9) {
		t.Fatalf("phase sum %v != modeled seconds %v", r.EnginePhaseSum(), r.Seconds)
	}
	wantSec := res.SecPerEpoch * float64(res.Epochs)
	if !relClose(r.Seconds, wantSec, 1e-9) {
		t.Fatalf("trace seconds %v != driver seconds %v", r.Seconds, wantSec)
	}
}
