package core

import (
	"fmt"
	"math/rand"

	"repro/internal/chaos"
	"repro/internal/data"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/pool"
)

// Local-SGD cost-model defaults, in the same abstract work units the
// parameter-server tier prices with: one local gradient step costs one unit.
const (
	// DefaultLocalReduceUnits is the modeled cost of one averaging round —
	// the allreduce latency of folding K replica vectors into a mean and
	// broadcasting it back. It is charged once per round regardless of K
	// (the reduction is itself parallel), which is what makes the rounds/H
	// trade-off a real frontier: at H=1 the epoch is reduction-dominated,
	// at large H the local compute dominates.
	DefaultLocalReduceUnits = 32.0
	// DefaultLocalSecPerUnit converts work units to modeled seconds
	// (1 unit ~ one sparse gradient step ~ 1us on the paper machine).
	DefaultLocalSecPerUnit = 1e-6
)

// LocalSGDEngine is synchronous Local SGD: K pool-backed replicas each hold a
// private cache-line-aligned copy of the model, take H local SGD steps on
// their own shard of the epoch's shuffle, and then barrier-average — the
// published model becomes the mean of the replica vectors and every replica
// restarts from it. H=1 degenerates to per-step-averaged mini-batch SGD
// (maximum statistical efficiency, maximum communication); H = shard length
// is one-shot averaging (no communication until the epoch ends). Sweeping H
// walks the hardware-vs-statistical-efficiency frontier between the paper's
// barriered synchronous engines and free-running Hogwild.
//
// Replicas touch only private state between barriers (vector, scratch, shard
// segment), so the pool-dispatched epoch is bitwise deterministic for a fixed
// shuffle seed regardless of scheduling — which is why the regress harness
// gates "local-sync" on an exact golden curve, not an envelope.
//
// Under a chaos plan, faults act at round granularity (the natural unit of
// this engine's communication): a straggling replica delays the whole round —
// the barrier cannot fire without its contribution, so the round's reduction
// cost stretches by the straggler factor — and a dropped fate loses the
// replica's entire H-step contribution for that round (it rejoins from the
// average, its local work discarded), a duplicated fate double-weights it.
type LocalSGDEngine struct {
	Model model.Model
	Data  *data.Dataset
	Step  float64
	// Replicas is K: the number of private model copies stepping in
	// parallel (clamped to the dataset size on first use).
	Replicas int
	// H is the number of local steps each replica takes between averaging
	// barriers.
	H int
	// ReduceUnits prices one averaging round; SecPerUnit converts units to
	// modeled seconds. Zero values take the package defaults.
	ReduceUnits float64
	SecPerUnit  float64
	// Rec receives per-phase timings (gradient = local steps, update =
	// reduction rounds, barrier = straggler slack), the update and round
	// counters, and each replica's share of the epoch's updates.
	Rec obs.Recorder
	// Pool overrides the dispatch pool (nil = the shared process pool).
	Pool *pool.Pool
	// Chaos, when enabled, injects round-granular faults (see type docs).
	Chaos *chaos.Controller

	rng     *rand.Rand
	perm    []int
	bounds  []int       // replica shard bounds over perm (contiguous, equal±1)
	reps    [][]float64 // private replica vectors, 64B-aligned
	scrs    []model.Scratch
	wgt     []float64 // per-round receive weights under chaos
	shares  []float64
	streams []*chaos.Stream
	stepT   localStepTask
	reduce  reduceTask
	bcast   broadcastTask
}

// NewLocalSGD builds the engine with the default cost model and a
// deterministic shuffle seed.
func NewLocalSGD(m model.Model, ds *data.Dataset, step float64, replicas, h int) *LocalSGDEngine {
	return &LocalSGDEngine{
		Model:       m,
		Data:        ds,
		Step:        step,
		Replicas:    replicas,
		H:           h,
		ReduceUnits: DefaultLocalReduceUnits,
		SecPerUnit:  DefaultLocalSecPerUnit,
		rng:         rand.New(rand.NewSource(99)),
	}
}

// Name implements Engine.
func (e *LocalSGDEngine) Name() string {
	return fmt.Sprintf("local-sync/cpu-par(%d)h%d", e.Replicas, e.H)
}

// SetShuffleSeed implements Seeded.
func (e *LocalSGDEngine) SetShuffleSeed(seed int64) {
	e.rng = rand.New(rand.NewSource(seed))
}

// SetRecorder implements Instrumented.
func (e *LocalSGDEngine) SetRecorder(r obs.Recorder) { e.Rec = r }

// SetChaos implements ChaosHost.
func (e *LocalSGDEngine) SetChaos(c *chaos.Controller) { e.Chaos = c }

func (e *LocalSGDEngine) workerPool() *pool.Pool {
	if e.Pool != nil {
		return e.Pool
	}
	return pool.Default()
}

// prepare builds the replica state once: private aligned vectors sized to
// the model dimension, per-replica scratches, and the contiguous shard
// bounds over the permutation (replica r owns perm[bounds[r]:bounds[r+1]],
// shard lengths differing by at most one).
func (e *LocalSGDEngine) prepare() {
	if e.perm != nil {
		return
	}
	n := e.Data.N()
	if e.Replicas < 1 {
		e.Replicas = 1
	}
	if e.Replicas > n {
		e.Replicas = n
	}
	if e.H < 1 {
		e.H = 1
	}
	if e.ReduceUnits <= 0 {
		e.ReduceUnits = DefaultLocalReduceUnits
	}
	if e.SecPerUnit <= 0 {
		e.SecPerUnit = DefaultLocalSecPerUnit
	}
	e.perm = make([]int, n)
	for i := range e.perm {
		e.perm[i] = i
	}
	k := e.Replicas
	dim := e.Model.NumParams()
	e.bounds = make([]int, k+1)
	e.reps = make([][]float64, k)
	e.scrs = make([]model.Scratch, k)
	e.wgt = make([]float64, k)
	e.shares = make([]float64, k)
	for r := 0; r < k; r++ {
		e.bounds[r] = r * n / k
		e.reps[r] = model.AlignedVec(dim)
		e.scrs[r] = e.Model.NewScratch()
	}
	e.bounds[k] = n
	for r := 0; r < k; r++ {
		e.shares[r] = float64(e.bounds[r+1]-e.bounds[r]) / float64(n)
	}
}

// segLen is how many local steps replica r takes in the round starting at
// shard offset off: min(H, remaining shard), never negative.
func (e *LocalSGDEngine) segLen(r, off int) int {
	rem := e.bounds[r+1] - e.bounds[r] - off
	if rem <= 0 {
		return 0
	}
	if rem > e.H {
		return e.H
	}
	return rem
}

// RunEpoch implements Engine: one pass over a fresh shuffle, in rounds of up
// to H local steps per replica followed by a barrier average.
func (e *LocalSGDEngine) RunEpoch(w []float64) float64 {
	e.prepare()
	n := len(e.perm)
	e.rng.Shuffle(n, func(i, j int) { e.perm[i], e.perm[j] = e.perm[j], e.perm[i] })
	k := e.Replicas
	p := e.workerPool()

	chaosOn := e.Chaos.Enabled() && e.Chaos.Plan.Active()
	if chaosOn {
		in := e.Chaos.Injector()
		if len(e.streams) < k {
			e.streams = make([]*chaos.Stream, k)
		}
		for r := 0; r < k; r++ {
			e.streams[r] = in.Worker(r)
		}
	}

	// Every replica starts the epoch from the published model.
	e.bcast = broadcastTask{src: w, reps: e.reps}
	p.Run(k, k, &e.bcast)

	var gradUnits, reduceUnits, extraUnits float64
	rounds := 0
	for off := 0; ; off += e.H {
		longest := 0
		for r := 0; r < k; r++ {
			if s := e.segLen(r, off); s > longest {
				longest = s
			}
		}
		if longest == 0 {
			break
		}
		// Local phase: each replica advances its private vector on its own
		// shard segment. Only private state is touched, so pool scheduling
		// cannot perturb the result.
		e.stepT = localStepTask{e: e, off: off}
		p.Run(k, k, &e.stepT)
		rounds++
		gradUnits += float64(longest)
		reduceUnits += e.ReduceUnits

		// Round fates: drawn in replica order on the caller, deterministic.
		// Idle replicas (exhausted shard) keep weight 1 — they re-submit the
		// previous average unchanged, which keeps the barrier a true mean.
		wsum := float64(k)
		for r := 0; r < k; r++ {
			e.wgt[r] = 1
		}
		if chaosOn {
			maxCost := 1.0
			for r := 0; r < k; r++ {
				if e.segLen(r, off) == 0 {
					continue
				}
				if c := e.streams[r].Cost(); c > maxCost {
					maxCost = c
				}
				switch e.streams[r].Fate() {
				case chaos.FateDrop:
					e.wgt[r] = 0
				case chaos.FateDup:
					e.wgt[r] = 2
				}
			}
			// The barrier waits for the slowest contribution: the round's
			// synchronisation cost stretches by the straggler factor.
			extraUnits += (maxCost - 1) * e.ReduceUnits
			wsum = 0
			for r := 0; r < k; r++ {
				wsum += e.wgt[r]
			}
			if wsum == 0 {
				// Every contribution dropped: no average to publish; the
				// replicas carry their local progress into the next round.
				continue
			}
		}

		// Barrier average: fold the replicas into the published vector and
		// broadcast it back. Component-parallel, replica-ordered — bitwise
		// identical to a serial mean (see reduceTask).
		e.reduce = reduceTask{dst: w, reps: e.reps, wsum: wsum}
		if chaosOn {
			e.reduce.wgt = e.wgt
		}
		p.RunGrain(p.Size(), len(w), reduceGrain, &e.reduce)
		e.bcast = broadcastTask{src: w, reps: e.reps}
		p.Run(k, k, &e.bcast)
	}

	e.record(rounds, gradUnits, reduceUnits, extraUnits)
	return (gradUnits + reduceUnits + extraUnits) * e.SecPerUnit
}

// record emits the epoch's phase decomposition and counters.
func (e *LocalSGDEngine) record(rounds int, gradUnits, reduceUnits, extraUnits float64) {
	if e.Chaos.Enabled() {
		for r := 0; r < e.Replicas && r < len(e.streams); r++ {
			if e.streams[r] != nil {
				e.streams[r].Flush()
			}
		}
		e.Chaos.Drain(e.Rec)
	}
	rec := obs.Or(e.Rec)
	if !obs.Enabled(rec) {
		return
	}
	rec.Phase(obs.PhaseGradient, gradUnits*e.SecPerUnit)
	rec.Phase(obs.PhaseUpdate, reduceUnits*e.SecPerUnit)
	if extraUnits > 0 {
		rec.Phase(obs.PhaseBarrier, extraUnits*e.SecPerUnit)
	}
	rec.Add(obs.CounterWorkerUpdates, int64(len(e.perm)))
	rec.Add(obs.CounterLocalRounds, int64(rounds))
	for _, s := range e.shares {
		rec.Observe(obs.MetricWorkerShare, s)
	}
}

// localStepTask runs replicas [lo, hi) through one round of local steps.
// Replica r reads and writes only reps[r]/scrs[r] and its own shard segment.
type localStepTask struct {
	e   *LocalSGDEngine
	off int
}

func (t *localStepTask) Run(lo, hi int) {
	e := t.e
	for r := lo; r < hi; r++ {
		seg := e.segLen(r, t.off)
		if seg == 0 {
			continue
		}
		wr := e.reps[r]
		scr := e.scrs[r]
		start := e.bounds[r] + t.off
		for _, i := range e.perm[start : start+seg] {
			e.Model.SGDStep(wr, e.Data, i, e.Step, model.RawUpdater{}, scr)
		}
	}
}

// reduceGrain sizes the component chunks of the pool-dispatched reduction.
const reduceGrain = 2048

// reduceTask averages the replica vectors into dst over component ranges:
// the pool fans the dimension out in chunks, and within each component the
// replicas are summed in ascending replica order and divided by the weight
// sum. Because every component is owned by exactly one chunk and the
// per-component summation order is fixed, the parallel reduction is bitwise
// identical to the serial mean (asserted by TestLocalReductionMatchesSerialMean)
// — a pairwise tree over replicas would not be, floating-point addition not
// being associative.
//
// wgt is nil on the healthy path (plain mean over len(reps)); under chaos it
// carries the round's receive weights (0 dropped, 2 duplicated) with wsum
// their sum.
type reduceTask struct {
	dst  []float64
	reps [][]float64
	wgt  []float64
	wsum float64
}

func (t *reduceTask) Run(lo, hi int) {
	if t.wgt == nil {
		for j := lo; j < hi; j++ {
			s := 0.0
			for _, r := range t.reps {
				s += r[j]
			}
			t.dst[j] = s / t.wsum
		}
		return
	}
	for j := lo; j < hi; j++ {
		s := 0.0
		for i, r := range t.reps {
			if w := t.wgt[i]; w != 0 {
				s += w * r[j]
			}
		}
		t.dst[j] = s / t.wsum
	}
}

// broadcastTask copies the published vector into replicas [lo, hi).
type broadcastTask struct {
	src  []float64
	reps [][]float64
}

func (t *broadcastTask) Run(lo, hi int) {
	for r := lo; r < hi; r++ {
		copy(t.reps[r], t.src)
	}
}

var _ Engine = (*LocalSGDEngine)(nil)
var _ Seeded = (*LocalSGDEngine)(nil)
var _ Instrumented = (*LocalSGDEngine)(nil)
var _ ChaosHost = (*LocalSGDEngine)(nil)
