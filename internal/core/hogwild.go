package core

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"

	"repro/internal/data"
	"repro/internal/model"
	"repro/internal/numa"
	"repro/internal/obs"
)

// FullScaleStats carries exact full-dataset statistics for the cost model
// (see HogwildEngine.Full).
type FullScaleStats struct {
	Updates    int64   // model updates per epoch (= full N for Hogwild)
	AvgSupport float64 // mean gradient support per update
	DataBytes  int64   // bytes streamed per epoch (CSR storage)
}

// HogwildEngine is asynchronous incremental SGD on the CPU (the paper's
// Algorithm 3 run with the loop iterations in parallel): Threads workers
// share one model vector and update it concurrently without locks. With
// Threads == 1 it degenerates to sequential incremental SGD — the paper's
// async "cpu-seq" configuration.
//
// Execution is genuinely concurrent (goroutines racing on the shared
// vector, DimmWitted-style), so the statistical efficiency the driver
// measures is a real property of asynchrony. The modeled epoch time comes
// from the NUMA cost model, including the cache-coherence penalty of the
// scattered concurrent writes.
type HogwildEngine struct {
	Model model.Model
	Data  *data.Dataset
	Step  float64
	// Threads is the modeled hardware-thread count (the paper uses 1 and
	// 56).
	Threads int
	// Updater selects the write discipline: model.RawUpdater (classic
	// Hogwild benign races) or model.AtomicUpdater (lock-free CAS adds).
	Updater model.Updater
	// Cost prices epochs; defaults to the paper machine.
	Cost *numa.Model
	// CostScale inflates the modeled update count and data volume to the
	// full dataset size when running on a scaled-down dataset (1 = no
	// scaling).
	CostScale float64
	// Full, when non-nil, overrides the cost-model inputs with exact
	// full-dataset statistics. A scaled sample under-represents the nnz
	// heavy tail, and multiplying its byte count by CostScale can land a
	// working set on the wrong side of a cache boundary — the registry
	// statistics avoid that.
	Full *FullScaleStats
	// Rec receives phase timings (gradient = streaming read+compute,
	// update = scattered model writes incl. coherence), the per-epoch
	// update count, each worker's share of the updates, and — when
	// Updater implements model.RetryCounter — the CAS-retry delta.
	Rec obs.Recorder

	rng         *rand.Rand
	perm        []int
	avgSupport  float64
	epochCost   float64
	gradCost    float64
	updCost     float64
	lastRetries int64
}

// NewHogwild builds the engine with the paper-machine cost model, raw
// updates, and a deterministic shuffle seed.
func NewHogwild(m model.Model, ds *data.Dataset, step float64, threads int) *HogwildEngine {
	return &HogwildEngine{
		Model:   m,
		Data:    ds,
		Step:    step,
		Threads: threads,
		Updater: model.RawUpdater{},
		Cost:    numa.PaperMachine(),
		rng:     rand.New(rand.NewSource(99)),
	}
}

// SetShuffleSeed reseeds the epoch shuffle stream (the harness varies it
// across repetitions of the same experiment).
func (e *HogwildEngine) SetShuffleSeed(seed int64) {
	e.rng = rand.New(rand.NewSource(seed))
}

// Name implements Engine.
func (e *HogwildEngine) Name() string {
	if e.Threads == 1 {
		return "async/cpu-seq"
	}
	return fmt.Sprintf("async/cpu-par(%d)", e.Threads)
}

// prepare computes the dataset-dependent cost inputs once.
func (e *HogwildEngine) prepare() {
	if e.perm != nil {
		return
	}
	n := e.Data.N()
	e.perm = make([]int, n)
	var totalSupport float64
	for i := range e.perm {
		e.perm[i] = i
		totalSupport += float64(e.Model.GradSupport(e.Data, i))
	}
	e.avgSupport = totalSupport / float64(n)
	scale := e.CostScale
	if scale <= 0 {
		scale = 1
	}
	updates := int64(float64(n) * scale)
	support := e.avgSupport
	dataBytes := int64(float64(e.Data.X.SparseBytes()) * scale)
	if e.Full != nil {
		updates = e.Full.Updates
		support = e.Full.AvgSupport
		dataBytes = e.Full.DataBytes
	}
	e.gradCost, e.updCost = e.Cost.HogwildEpochParts(
		e.Model.NumParams(), updates, support, dataBytes, e.Threads)
	e.epochCost = e.gradCost + e.updCost
}

// SetRecorder implements Instrumented.
func (e *HogwildEngine) SetRecorder(r obs.Recorder) { e.Rec = r }

// record emits one epoch's phase decomposition, worker shares, and (when the
// updater counts CAS retries) the contention delta. shares are the fraction
// of the epoch's updates each worker executed.
func (e *HogwildEngine) record(shares []float64) {
	rec := obs.Or(e.Rec)
	if !obs.Enabled(rec) {
		return
	}
	rec.Phase(obs.PhaseGradient, e.gradCost)
	rec.Phase(obs.PhaseUpdate, e.updCost)
	rec.Add(obs.CounterWorkerUpdates, int64(len(e.perm)))
	for _, s := range shares {
		rec.Observe(obs.MetricWorkerShare, s)
	}
	if rc, ok := e.Updater.(model.RetryCounter); ok {
		total := rc.Retries()
		rec.Add(obs.CounterCASRetries, total-e.lastRetries)
		e.lastRetries = total
	}
}

// RunEpoch implements Engine: one pass over a fresh shuffle of the data.
func (e *HogwildEngine) RunEpoch(w []float64) float64 {
	e.prepare()
	e.rng.Shuffle(len(e.perm), func(i, j int) { e.perm[i], e.perm[j] = e.perm[j], e.perm[i] })
	workers := e.Threads
	if max := runtime.GOMAXPROCS(0); workers > max {
		// Host cores bound the real concurrency; the modeled time is
		// still priced at e.Threads on the paper machine.
		workers = max
	}
	if e.Threads > 1 && workers < e.Threads {
		// Not enough host cores to exhibit e.Threads-way asynchrony:
		// emulate it deterministically instead of under-representing
		// the staleness.
		e.runEmulated(w, e.Threads)
		e.record(e.emulatedShares(e.Threads))
		return e.epochCost
	}
	if workers <= 1 {
		scr := e.Model.NewScratch()
		for _, i := range e.perm {
			e.Model.SGDStep(w, e.Data, i, e.Step, e.Updater, scr)
		}
		e.record([]float64{1})
		return e.epochCost
	}
	n := len(e.perm)
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	var shares []float64
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		shares = append(shares, float64(hi-lo)/float64(n))
		wg.Add(1)
		go func(part []int) {
			defer wg.Done()
			scr := e.Model.NewScratch()
			for _, i := range part {
				e.Model.SGDStep(w, e.Data, i, e.Step, e.Updater, scr)
			}
		}(e.perm[lo:hi])
	}
	wg.Wait()
	e.record(shares)
	return e.epochCost
}

// emulatedShares reproduces the chunk split of runEmulated so the recorded
// worker shares match the logical threads that actually executed.
func (e *HogwildEngine) emulatedShares(p int) []float64 {
	n := len(e.perm)
	if p > n {
		p = n
	}
	chunk := (n + p - 1) / p
	shares := make([]float64, 0, p)
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		shares = append(shares, float64(hi-lo)/float64(n))
	}
	return shares
}

// runEmulated executes one epoch with P logical threads interleaved
// round-robin on the calling goroutine. Each logical thread computes its
// update against the model state at its turn but the write lands only P-1
// turns later (a FIFO of in-flight updates), reproducing the read-compute-
// write staleness of a real P-thread Hogwild run. Gradients are computed on
// stale models and concurrent writers interleave, exactly the statistical
// regime the paper measures on 56 threads.
func (e *HogwildEngine) runEmulated(w []float64, p int) {
	n := len(e.perm)
	if p > n {
		p = n
	}
	chunk := (n + p - 1) / p
	cursors := make([]int, p) // per logical thread position within its chunk
	scr := e.Model.NewScratch()
	type inflight struct {
		idx   []int
		delta []float64
	}
	queue := make([]inflight, 0, p)
	capture := &captureUpdater{}
	apply := func(u inflight) {
		for k, ix := range u.idx {
			e.Updater.Add(w, ix, u.delta[k])
		}
	}
	active := p
	for active > 0 {
		for t := 0; t < p; t++ {
			pos := t*chunk + cursors[t]
			if cursors[t] < 0 || pos >= n || pos >= (t+1)*chunk {
				if cursors[t] >= 0 {
					cursors[t] = -1
					active--
				}
				continue
			}
			cursors[t]++
			capture.idx = capture.idx[:0]
			capture.delta = capture.delta[:0]
			e.Model.SGDStep(w, e.Data, e.perm[pos], e.Step, capture, scr)
			queue = append(queue, inflight{
				idx:   append([]int(nil), capture.idx...),
				delta: append([]float64(nil), capture.delta...),
			})
			if len(queue) >= p {
				apply(queue[0])
				queue = queue[1:]
			}
		}
	}
	for _, u := range queue {
		apply(u)
	}
}

var _ Engine = (*HogwildEngine)(nil)
