package core

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync/atomic"

	"repro/internal/chaos"
	"repro/internal/data"
	"repro/internal/model"
	"repro/internal/numa"
	"repro/internal/obs"
	"repro/internal/pool"
)

// FullScaleStats carries exact full-dataset statistics for the cost model
// (see HogwildEngine.Full).
type FullScaleStats struct {
	Updates    int64   // model updates per epoch (= full N for Hogwild)
	AvgSupport float64 // mean gradient support per update
	DataBytes  int64   // bytes streamed per epoch (CSR storage)
}

// HogwildEngine is asynchronous incremental SGD on the CPU (the paper's
// Algorithm 3 run with the loop iterations in parallel): Threads workers
// share one model vector and update it concurrently without locks. With
// Threads == 1 it degenerates to sequential incremental SGD — the paper's
// async "cpu-seq" configuration.
//
// Execution is genuinely concurrent (goroutines racing on the shared
// vector, DimmWitted-style), so the statistical efficiency the driver
// measures is a real property of asynchrony. The modeled epoch time comes
// from the NUMA cost model, including the cache-coherence penalty of the
// scattered concurrent writes.
type HogwildEngine struct {
	Model model.Model
	Data  *data.Dataset
	Step  float64
	// Threads is the modeled hardware-thread count (the paper uses 1 and
	// 56).
	Threads int
	// Updater selects the write discipline: model.RawUpdater (classic
	// Hogwild benign races) or model.AtomicUpdater (lock-free CAS adds).
	Updater model.Updater
	// StripeWindow, when > 0, turns on cache-line-striped micro-batching
	// (DESIGN §14): each worker buffers this many component updates
	// privately, then flushes them sorted by index with duplicates
	// coalesced, applying through Updater in ascending (stripe-ordered)
	// index order. Fewer issued shared-line stores means fewer CAS
	// retries under the atomic disciplines; the cost is bounded staleness
	// of at most one window. Zero (the default) preserves the classic
	// per-update path exactly. The chaos and emulated paths ignore it —
	// their update pipelines impose their own disciplines.
	StripeWindow int
	// Cost prices epochs; defaults to the paper machine.
	Cost *numa.Model
	// CostScale inflates the modeled update count and data volume to the
	// full dataset size when running on a scaled-down dataset (1 = no
	// scaling).
	CostScale float64
	// Full, when non-nil, overrides the cost-model inputs with exact
	// full-dataset statistics. A scaled sample under-represents the nnz
	// heavy tail, and multiplying its byte count by CostScale can land a
	// working set on the wrong side of a cache boundary — the registry
	// statistics avoid that.
	Full *FullScaleStats
	// Rec receives phase timings (gradient = streaming read+compute,
	// update = scattered model writes incl. coherence), the per-epoch
	// update count, each worker's share of the updates, and — when
	// Updater implements model.RetryCounter — the CAS-retry delta.
	Rec obs.Recorder
	// Pool overrides the worker pool the concurrent path dispatches on
	// (nil = the shared process pool). Tests inject private pools.
	Pool *pool.Pool
	// Chaos, when enabled, runs epochs under the fault-injection
	// controller: workers claim examples dynamically, read through
	// staleness-bounded views, land updates under injector fates, and —
	// in sequential mode — interleave on the seeded virtual-time
	// scheduler, making the racy update order exactly replayable.
	Chaos *chaos.Controller

	rng           *rand.Rand
	perm          []int
	avgSupport    float64
	epochCost     float64
	gradCost      float64
	updCost       float64
	lastRetries   int64
	stripes       []*model.StripeBuffer // per-segment stripe buffers, reused
	lastFlushes   int64
	lastCoalesced int64

	task      hogwildTask     // pre-bound concurrent-path task
	bounds    []int           // nnz-balanced segment bounds over perm, reused
	shares    []float64       // per-segment update shares, reused
	scratches []model.Scratch // per-segment model scratch, created once
	caps      []captureUpdater
	claims    []int64
	ring      []inflightUpdate
	cursors   []int
	capture   captureUpdater
	emScratch model.Scratch
	emInit    bool
}

// workerPool resolves the dispatch pool.
func (e *HogwildEngine) workerPool() *pool.Pool {
	if e.Pool != nil {
		return e.Pool
	}
	return pool.Default()
}

// NewHogwild builds the engine with the paper-machine cost model, raw
// updates, and a deterministic shuffle seed.
func NewHogwild(m model.Model, ds *data.Dataset, step float64, threads int) *HogwildEngine {
	return &HogwildEngine{
		Model:   m,
		Data:    ds,
		Step:    step,
		Threads: threads,
		Updater: model.RawUpdater{},
		Cost:    numa.PaperMachine(),
		rng:     rand.New(rand.NewSource(99)),
	}
}

// SetShuffleSeed reseeds the epoch shuffle stream (the harness varies it
// across repetitions of the same experiment).
func (e *HogwildEngine) SetShuffleSeed(seed int64) {
	e.rng = rand.New(rand.NewSource(seed))
}

// Name implements Engine.
func (e *HogwildEngine) Name() string {
	if e.Threads == 1 {
		return "async/cpu-seq"
	}
	return fmt.Sprintf("async/cpu-par(%d)", e.Threads)
}

// prepare computes the dataset-dependent cost inputs once.
func (e *HogwildEngine) prepare() {
	if e.perm != nil {
		return
	}
	n := e.Data.N()
	e.perm = make([]int, n)
	var totalSupport float64
	for i := range e.perm {
		e.perm[i] = i
		totalSupport += float64(e.Model.GradSupport(e.Data, i))
	}
	e.avgSupport = totalSupport / float64(n)
	scale := e.CostScale
	if scale <= 0 {
		scale = 1
	}
	updates := int64(float64(n) * scale)
	support := e.avgSupport
	dataBytes := int64(float64(e.Data.X.SparseBytes()) * scale)
	if e.Full != nil {
		updates = e.Full.Updates
		support = e.Full.AvgSupport
		dataBytes = e.Full.DataBytes
	}
	e.gradCost, e.updCost = e.Cost.HogwildEpochParts(
		e.Model.NumParams(), updates, support, dataBytes, e.Threads)
	e.epochCost = e.gradCost + e.updCost
}

// SetRecorder implements Instrumented.
func (e *HogwildEngine) SetRecorder(r obs.Recorder) { e.Rec = r }

// SetChaos implements ChaosHost.
func (e *HogwildEngine) SetChaos(c *chaos.Controller) { e.Chaos = c }

// record emits one epoch's phase decomposition, worker shares, and (when the
// updater counts CAS retries) the contention delta. shares are the fraction
// of the epoch's updates each worker executed.
func (e *HogwildEngine) record(shares []float64) {
	rec := obs.Or(e.Rec)
	if !obs.Enabled(rec) {
		return
	}
	rec.Phase(obs.PhaseGradient, e.gradCost)
	rec.Phase(obs.PhaseUpdate, e.updCost)
	rec.Add(obs.CounterWorkerUpdates, int64(len(e.perm)))
	for _, s := range shares {
		rec.Observe(obs.MetricWorkerShare, s)
	}
	if rc, ok := e.Updater.(model.RetryCounter); ok {
		total := rc.Retries()
		rec.Add(obs.CounterCASRetries, total-e.lastRetries)
		e.lastRetries = total
	}
	if e.StripeWindow > 0 {
		flushes, coalesced, _ := e.StripeCounters()
		rec.Add(obs.CounterStripeFlushes, flushes-e.lastFlushes)
		rec.Add(obs.CounterStripeCoalesced, coalesced-e.lastCoalesced)
		e.lastFlushes, e.lastCoalesced = flushes, coalesced
	}
}

// stripeBuf returns (building on first use) the stripe buffer of segment k.
// Buffers wrap the engine's Updater at creation, so set Updater before the
// first epoch when striping is on.
func (e *HogwildEngine) stripeBuf(k int) *model.StripeBuffer {
	for len(e.stripes) <= k {
		e.stripes = append(e.stripes, model.NewStripeBuffer(e.Updater, e.Model.NumParams(), e.StripeWindow))
	}
	return e.stripes[k]
}

// StripeCounters returns the cumulative striping statistics summed over all
// worker buffers: window flushes, updates coalesced away, and updates
// actually issued through the base updater. Zero when striping is off.
func (e *HogwildEngine) StripeCounters() (flushes, coalesced, applied int64) {
	for _, sb := range e.stripes {
		flushes += sb.Flushes()
		coalesced += sb.Coalesced()
		applied += sb.Applied()
	}
	return
}

// RunEpoch implements Engine: one pass over a fresh shuffle of the data.
func (e *HogwildEngine) RunEpoch(w []float64) float64 {
	e.prepare()
	e.rng.Shuffle(len(e.perm), func(i, j int) { e.perm[i], e.perm[j] = e.perm[j], e.perm[i] })
	if e.Chaos.Enabled() {
		return e.runChaos(w)
	}
	workers := e.Threads
	if max := runtime.GOMAXPROCS(0); workers > max {
		// Host cores bound the real concurrency; the modeled time is
		// still priced at e.Threads on the paper machine.
		workers = max
	}
	if e.Threads > 1 && workers < e.Threads {
		// Not enough host cores to exhibit e.Threads-way asynchrony:
		// emulate it deterministically instead of under-representing
		// the staleness.
		e.runEmulated(w, e.Threads)
		e.record(e.emulatedShares(e.Threads))
		return e.epochCost
	}
	if workers <= 1 {
		scr := e.Model.NewScratch()
		upd := e.Updater
		var sb *model.StripeBuffer
		if e.StripeWindow > 0 {
			sb = e.stripeBuf(0)
			upd = sb
		}
		for _, i := range e.perm {
			e.Model.SGDStep(w, e.Data, i, e.Step, upd, scr)
		}
		if sb != nil {
			sb.Flush(w)
		}
		e.record([]float64{1})
		return e.epochCost
	}
	// Split the shuffled permutation into segments of approximately equal
	// nnz, not equal example count: on heavy-tailed data even counts leave
	// most workers idle behind the one that drew the wide rows, and an idle
	// worker understates the update interleaving the paper's asynchrony
	// analysis is about. Segments run on the persistent pool.
	n := len(e.perm)
	e.bounds = e.Data.X.PartitionRowsNNZ(e.perm, workers, e.bounds[:0])
	nseg := len(e.bounds) - 1
	e.shares = e.shares[:0]
	for k := 0; k < nseg; k++ {
		e.shares = append(e.shares, float64(e.bounds[k+1]-e.bounds[k])/float64(n))
	}
	for len(e.scratches) < nseg {
		e.scratches = append(e.scratches, e.Model.NewScratch())
	}
	if e.StripeWindow > 0 {
		// Grow the buffer slice before dispatch; segments index it
		// concurrently.
		e.stripeBuf(nseg - 1)
	}
	e.task = hogwildTask{e: e, w: w}
	e.workerPool().Run(nseg, nseg, &e.task)
	e.record(e.shares)
	return e.epochCost
}

// runChaos executes one epoch under the fault controller. Unlike the healthy
// path's static nnz-balanced segments, workers claim examples dynamically
// off a shared counter over the shuffled permutation — so a straggler simply
// contributes fewer updates and the epoch stretches by only
// N/((N-S)+S/F), the asymmetry against the barriered synchronous engines
// that cmd/sgdchaos measures. Each gradient is computed against the worker's
// (possibly staleness-bounded) view and landed under the injector's fate. In
// sequential mode the whole epoch runs on the seeded virtual-time scheduler
// and replays bitwise; otherwise the workers race for real and only the
// fault decisions are deterministic.
func (e *HogwildEngine) runChaos(w []float64) float64 {
	n := len(e.perm)
	workers := e.Threads
	if !e.Chaos.Sequential {
		// Real concurrency is bounded by host cores, as on the healthy
		// path; the virtual-time scheduler has no such limit.
		if max := runtime.GOMAXPROCS(0); workers > max {
			workers = max
		}
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	for len(e.scratches) < workers {
		e.scratches = append(e.scratches, e.Model.NewScratch())
	}
	if len(e.caps) < workers {
		e.caps = make([]captureUpdater, workers)
	}
	if len(e.claims) < workers {
		e.claims = make([]int64, workers)
	}
	claims := e.claims[:workers]
	for k := range claims {
		claims[k] = 0
	}
	var next atomic.Int64
	e.Chaos.Run(e.Pool, workers, func(k int, cw *chaos.Worker) {
		scr := e.scratches[k]
		capt := &e.caps[k]
		for {
			t := int(next.Add(1)) - 1
			if t >= n {
				return
			}
			claims[k]++
			capt.idx = capt.idx[:0]
			capt.delta = capt.delta[:0]
			e.Model.SGDStep(cw.View(w), e.Data, e.perm[t], e.Step, capt, scr)
			applyFate(cw.Fate(), e.Updater, w, capt)
			cw.Step()
		}
	})
	e.shares = e.shares[:0]
	for k := 0; k < workers; k++ {
		e.shares = append(e.shares, float64(claims[k])/float64(n))
	}
	e.record(e.shares)
	slow := e.Chaos.Slowdown()
	extra := (slow - 1) * e.epochCost
	if extra > 0 {
		// The straggler's critical path shows up as synchronisation-free
		// idle time; attribute it to the barrier phase so the phase sum
		// stays consistent with the returned epoch seconds.
		obs.Or(e.Rec).Phase(obs.PhaseBarrier, extra)
	}
	e.Chaos.Drain(e.Rec)
	return e.epochCost + extra
}

// hogwildTask runs the permutation segments [lo, hi) of one concurrent
// epoch; segment k owns scratch k, so concurrent segments never share
// mutable state (the model vector races by design).
type hogwildTask struct {
	e *HogwildEngine
	w []float64
}

func (t *hogwildTask) Run(lo, hi int) {
	e := t.e
	for k := lo; k < hi; k++ {
		scr := e.scratches[k]
		upd := e.Updater
		var sb *model.StripeBuffer
		if e.StripeWindow > 0 {
			sb = e.stripes[k]
			upd = sb
		}
		for _, i := range e.perm[e.bounds[k]:e.bounds[k+1]] {
			e.Model.SGDStep(t.w, e.Data, i, e.Step, upd, scr)
		}
		if sb != nil {
			// No update outlives its segment: the residue lands before
			// the epoch's pool barrier.
			sb.Flush(t.w)
		}
	}
}

// emulatedShares reproduces the chunk split of runEmulated so the recorded
// worker shares match the logical threads that actually executed.
func (e *HogwildEngine) emulatedShares(p int) []float64 {
	n := len(e.perm)
	if p > n {
		p = n
	}
	chunk := (n + p - 1) / p
	e.shares = e.shares[:0]
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		e.shares = append(e.shares, float64(hi-lo)/float64(n))
	}
	return e.shares
}

// runEmulated executes one epoch with P logical threads interleaved
// round-robin on the calling goroutine. Each logical thread computes its
// update against the model state at its turn but the write lands only P-1
// turns later (a FIFO of in-flight updates), reproducing the read-compute-
// write staleness of a real P-thread Hogwild run. Gradients are computed on
// stale models and concurrent writers interleave, exactly the statistical
// regime the paper measures on 56 threads.
func (e *HogwildEngine) runEmulated(w []float64, p int) {
	n := len(e.perm)
	if p > n {
		p = n
	}
	chunk := (n + p - 1) / p
	if cap(e.cursors) < p {
		e.cursors = make([]int, p)
	}
	cursors := e.cursors[:p] // per logical thread position within its chunk
	for t := range cursors {
		cursors[t] = 0
	}
	if !e.emInit {
		e.emScratch = e.Model.NewScratch()
		e.emInit = true
	}
	scr := e.emScratch
	// The FIFO of in-flight updates lives in a ring of at most p slots whose
	// index/delta buffers are reused across updates and epochs — the seed
	// allocated two fresh slices per model update here, which dominated the
	// emulated epoch's allocation profile.
	if cap(e.ring) < p {
		grown := make([]inflightUpdate, p)
		copy(grown, e.ring)
		e.ring = grown
	}
	ring := e.ring[:p]
	head, count := 0, 0
	capture := &e.capture
	apply := func(u *inflightUpdate) {
		for k, ix := range u.idx {
			e.Updater.Add(w, ix, u.delta[k])
		}
	}
	active := p
	for active > 0 {
		for t := 0; t < p; t++ {
			pos := t*chunk + cursors[t]
			if cursors[t] < 0 || pos >= n || pos >= (t+1)*chunk {
				if cursors[t] >= 0 {
					cursors[t] = -1
					active--
				}
				continue
			}
			cursors[t]++
			capture.idx = capture.idx[:0]
			capture.delta = capture.delta[:0]
			e.Model.SGDStep(w, e.Data, e.perm[pos], e.Step, capture, scr)
			slot := &ring[(head+count)%p]
			slot.idx = append(slot.idx[:0], capture.idx...)
			slot.delta = append(slot.delta[:0], capture.delta...)
			count++
			if count >= p {
				apply(&ring[head])
				head = (head + 1) % p
				count--
			}
		}
	}
	for ; count > 0; count-- {
		apply(&ring[head])
		head = (head + 1) % p
	}
}

// inflightUpdate is one captured-but-unapplied model update of the
// emulated asynchronous pipeline.
type inflightUpdate struct {
	idx   []int
	delta []float64
}

var _ Engine = (*HogwildEngine)(nil)
