package core

import (
	"testing"

	"repro/internal/chaos"
	"repro/internal/model"
	"repro/internal/obs"
)

// heteroSerialReference runs the same epoch the engine executes — same
// shuffle, same split, same per-backend streams — serially, and merges with
// a plain serial weighted mean. Used by the merge property test below.
//
// It reuses the engine's own split bookkeeping (perm/cpuItems/gpuItems are
// deterministic functions of the seed and share), so the only thing under
// test is the merge rule itself.
func heteroSerialWeightedMean(reps [][]float64, wgt []float64) []float64 {
	dim := len(reps[0])
	out := make([]float64, dim)
	ws := 0.0
	for _, v := range wgt {
		ws += v
	}
	for j := 0; j < dim; j++ {
		s := 0.0
		for i, r := range reps {
			if w := wgt[i]; w != 0 {
				s += w * r[j]
			}
		}
		out[j] = s / ws
	}
	return out
}

// Tentpole property test: the sync engine's pool-dispatched weighted merge
// must be bitwise identical to a serial weighted mean of the contributor
// vectors, for arbitrary split ratios including the 0.0 and 1.0 degenerate
// endpoints (where one side contributes weight 0 and the merge must reduce
// to the other side exactly).
func TestHeteroSyncMergeMatchesSerialWeightedMean(t *testing.T) {
	ds, _ := smallDataset(t, "w8a", 300)
	m := model.NewLR(ds.D())
	for _, share := range []float64{0.0, 0.2, 0.5, 0.8, 1.0} {
		e := NewHetero(m, ds, 0.5, 5)
		e.FixedGPUShare = share
		e.SetShuffleSeed(7)
		w := m.InitParams(1)

		// Run one epoch, then replay the merge by hand from the engine's
		// post-epoch contributor state: the contributors still hold their
		// private trajectories (the merge writes only into w).
		e.RunEpoch(w)
		want := heteroSerialWeightedMean(e.merge, e.wgt)
		for j := range want {
			if w[j] != want[j] {
				t.Fatalf("share=%.1f: merged w differs from serial weighted mean at %d: %v vs %v",
					share, j, w[j], want[j])
			}
		}

		cpuB, gpuB := e.LastSplit()
		switch share {
		case 0.0:
			if gpuB != 0 {
				t.Fatalf("share=0: %d GPU batches, want 0", gpuB)
			}
		case 1.0:
			if cpuB != 0 {
				t.Fatalf("share=1: %d CPU batches, want 0", cpuB)
			}
		default:
			if cpuB == 0 || gpuB == 0 {
				t.Fatalf("share=%.1f: degenerate split %d/%d", share, cpuB, gpuB)
			}
		}
	}
}

// The split must cover the shuffle exactly: every example routed to exactly
// one backend, batch counts summing to the batch total, for every share.
func TestHeteroSplitPartitionsEpoch(t *testing.T) {
	ds, _ := smallDataset(t, "w8a", 333) // odd: last batch is short
	m := model.NewLR(ds.D())
	for _, share := range []float64{0.0, 0.3, 0.5, 0.9, 1.0} {
		e := NewHetero(m, ds, 0.5, 4)
		e.FixedGPUShare = share
		e.SetShuffleSeed(3)
		e.RunEpoch(m.InitParams(1))
		seen := make([]int, ds.N())
		for _, i := range e.cpuItems {
			seen[i]++
		}
		for _, i := range e.gpuItems {
			seen[i]++
		}
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("share=%.1f: example %d routed %d times", share, i, c)
			}
		}
		cpuB, gpuB := e.LastSplit()
		nb := (ds.N() + e.Batch - 1) / e.Batch
		if cpuB+gpuB != nb {
			t.Fatalf("share=%.1f: %d+%d batches, want %d", share, cpuB, gpuB, nb)
		}
	}
}

// Sync determinism: same seed, same trajectory — the engine is gated on an
// exact golden, so this must hold bitwise across runs (pool scheduling and
// the GPU goroutine overlap included).
func TestDeterministicReplayHeteroSync(t *testing.T) {
	ds, _ := smallDataset(t, "w8a", 300)
	m := model.NewLR(ds.D())
	w1, w2 := runTwice(t, func() Engine { return NewHetero(m, ds, 0.5, 8) }, m, 4)
	expectIdentical(t, "hetero-sync", w1, w2)
}

// Tentpole replay test: two virtual-time runs of the async engine with the
// same seed must produce bitwise-identical loss curves — the sequencer makes
// the CPU/GPU claim-and-blend interleaving a pure function of the seed. Runs
// under -race via the hetero-gate CI job.
func TestDeterministicReplayHeteroAsyncLossCurve(t *testing.T) {
	ds, _ := smallDataset(t, "w8a", 300)
	m := model.NewLR(ds.D())
	curve := func() []float64 {
		e := NewHeteroAsync(m, ds, 0.5, 8)
		e.SetShuffleSeed(42)
		w := m.InitParams(3)
		var losses []float64
		losses = append(losses, model.MeanLoss(m, w, ds))
		for ep := 0; ep < 5; ep++ {
			e.RunEpoch(w)
			losses = append(losses, model.MeanLoss(m, w, ds))
		}
		return losses
	}
	a, b := curve(), curve()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("hetero-async replay differs at epoch %d: %v vs %v", i, a[i], b[i])
		}
	}
}

// Distinct seeds must draw distinct schedules — the reason hetero-async is
// gated on an envelope, not a golden.
func TestHeteroAsyncSeedsDiffer(t *testing.T) {
	ds, _ := smallDataset(t, "w8a", 300)
	m := model.NewLR(ds.D())
	run := func(seed int64) []float64 {
		e := NewHeteroAsync(m, ds, 0.5, 8)
		e.SetShuffleSeed(seed)
		w := m.InitParams(3)
		for ep := 0; ep < 3; ep++ {
			e.RunEpoch(w)
		}
		return w
	}
	a, b := run(1), run(2)
	same := true
	for j := range a {
		if a[j] != b[j] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical hetero-async trajectories")
	}
}

// Acceptance-criterion test: under the seeded GPU-straggler plan (worker 0 is
// the GPU), the adaptive split must move at least 20% of the batches from the
// GPU to the CPU within 5 epochs, and the adaptive epoch time must beat the
// static 50/50 split under the same plan.
func TestHeteroAdaptiveShiftsUnderGPUStraggler(t *testing.T) {
	ds, _ := smallDataset(t, "w8a", 400)
	m := model.NewLR(ds.D())
	plan, err := chaos.Lookup("straggler")
	if err != nil {
		t.Fatal(err)
	}

	adaptive := NewHetero(m, ds, 0.5, 8)
	adaptive.SetShuffleSeed(1)
	InjectChaos(adaptive, chaos.New(plan, 1))
	w := m.InitParams(1)
	var firstSplitGPU, lastSec float64
	shifted := false
	for ep := 0; ep < 5; ep++ {
		lastSec = adaptive.RunEpoch(w)
		cpuB, gpuB := adaptive.LastSplit()
		frac := float64(gpuB) / float64(cpuB+gpuB)
		if ep == 0 {
			firstSplitGPU = frac
		}
		if firstSplitGPU-frac >= 0.20 {
			shifted = true
		}
	}
	if !shifted {
		t.Fatalf("adaptive split did not shift >=20%% of batches off the straggling GPU within 5 epochs (start %.2f)",
			firstSplitGPU)
	}

	static := NewHetero(m, ds, 0.5, 8)
	static.FixedGPUShare = 0.5
	static.SetShuffleSeed(1)
	InjectChaos(static, chaos.New(plan, 1))
	ws := m.InitParams(1)
	var staticSec float64
	for ep := 0; ep < 5; ep++ {
		staticSec = static.RunEpoch(ws)
	}
	if lastSec >= staticSec {
		t.Fatalf("adaptive epoch under straggler (%g s) did not beat the static 50/50 split (%g s)",
			lastSec, staticSec)
	}
}

// Healthy adaptation sanity: with no chaos the share must converge into the
// clamp interval and stay there (the estimator must not collapse a healthy
// backend to zero work).
func TestHeteroAdaptiveShareStaysBounded(t *testing.T) {
	ds, _ := smallDataset(t, "w8a", 400)
	m := model.NewLR(ds.D())
	e := NewHetero(m, ds, 0.5, 8)
	e.SetShuffleSeed(1)
	w := m.InitParams(1)
	for ep := 0; ep < 6; ep++ {
		e.RunEpoch(w)
		s := e.GPUShare()
		if s < e.MinShare || s > 1-e.MinShare {
			t.Fatalf("epoch %d: share %v escaped [%v, %v]", ep, s, e.MinShare, 1-e.MinShare)
		}
		cpuB, gpuB := e.LastSplit()
		if cpuB == 0 || gpuB == 0 {
			t.Fatalf("epoch %d: healthy adaptive run starved a backend (%d/%d)", ep, cpuB, gpuB)
		}
	}
}

// Both engines must honour the observability contract: phases sum exactly to
// the modeled epoch seconds, the batch counters partition the batch count,
// and the async engine reports merges and cross-backend staleness.
func TestHeteroRecordsPhasesAndCounters(t *testing.T) {
	ds, _ := smallDataset(t, "w8a", 320)
	m := model.NewLR(ds.D())

	sync := NewHetero(m, ds, 0.5, 6)
	r := runInstrumented(t, sync, m.InitParams(1), 2)
	if !relClose(r.EnginePhaseSum(), r.Seconds, 1e-9) {
		t.Errorf("hetero-sync phase sum %v != modeled seconds %v", r.EnginePhaseSum(), r.Seconds)
	}
	nb := int64(2 * ((ds.N() + DefaultHeteroBatch - 1) / DefaultHeteroBatch))
	if got := r.Counter(obs.CounterHeteroCPUBatches) + r.Counter(obs.CounterHeteroGPUBatches); got != nb {
		t.Errorf("hetero-sync batch counters sum to %d, want %d", got, nb)
	}
	if got := r.Counter(obs.CounterHeteroMerges); got != 2 {
		t.Errorf("hetero-sync merges = %d, want 2 (one per epoch)", got)
	}

	async := NewHeteroAsync(m, ds, 0.5, 6)
	r = runInstrumented(t, async, m.InitParams(1), 2)
	if !relClose(r.EnginePhaseSum(), r.Seconds, 1e-9) {
		t.Errorf("hetero-async phase sum %v != modeled seconds %v", r.EnginePhaseSum(), r.Seconds)
	}
	if got := r.Counter(obs.CounterHeteroMerges); got != r.Counter(obs.CounterHeteroCPUBatches)+r.Counter(obs.CounterHeteroGPUBatches) {
		t.Errorf("hetero-async merges = %d, want one per batch (%d)",
			got, r.Counter(obs.CounterHeteroCPUBatches)+r.Counter(obs.CounterHeteroGPUBatches))
	}
	if r.Counter(obs.CounterHeteroCPUStalenessSum)+r.Counter(obs.CounterHeteroGPUStalenessSum) == 0 {
		t.Error("hetero-async recorded no cross-backend staleness: the streams should interleave")
	}
}

// Chaos threading: the storm plan must surface fault counters through the
// standard drain path on both engines.
func TestHeteroChaosCounters(t *testing.T) {
	ds, _ := smallDataset(t, "w8a", 320)
	m := model.NewLR(ds.D())
	plan, err := chaos.Lookup("storm")
	if err != nil {
		t.Fatal(err)
	}

	sync := NewHetero(m, ds, 0.5, 6)
	rec := &countRec{}
	sync.SetRecorder(rec)
	InjectChaos(sync, chaos.New(plan, 1))
	sync.RunEpoch(m.InitParams(1))
	if rec.counts[obs.CounterChaosStraggled] == 0 {
		t.Error("hetero-sync under storm recorded no straggled updates (the GPU is worker 0)")
	}

	async := NewHeteroAsync(m, ds, 0.5, 6)
	rec = &countRec{}
	async.SetRecorder(rec)
	InjectChaos(async, chaos.New(plan, 1))
	async.RunEpoch(m.InitParams(1))
	if rec.counts[obs.CounterChaosStraggled] == 0 {
		t.Error("hetero-async under storm recorded no straggled updates")
	}
}

// Replica/backing-vector dimensions must match the model for all three model
// families — MLP shares the linear engines' merge path because its entire
// parameter vector is one flat []float64 (see DESIGN §17).
func TestHeteroReplicaVectorsMatchModelDim(t *testing.T) {
	ds, spec := smallDataset(t, "w8a", 200)
	models := []model.Model{
		model.NewLR(ds.D()),
		model.NewSVM(ds.D()),
		model.NewMLPFor(spec),
	}
	for _, m := range models {
		m := m
		t.Run(m.Name(), func(t *testing.T) {
			dim := m.NumParams()
			sync := NewHetero(m, ds, 0.1, 5)
			async := NewHeteroAsync(m, ds, 0.1, 5)
			w1, w2 := m.InitParams(1), m.InitParams(1)
			sync.RunEpoch(w1)
			async.RunEpoch(w2)
			for r := 0; r < 5; r++ {
				if got := len(sync.reps[r]); got != dim {
					t.Errorf("%s sync replica %d: len %d, want %d", m.Name(), r, got, dim)
				}
			}
			if got := len(sync.wGPU); got != dim {
				t.Errorf("%s sync GPU vector: len %d, want %d", m.Name(), got, dim)
			}
			for _, v := range [][]float64{async.pub, async.wCPU, async.wGPU} {
				if len(v) != dim {
					t.Errorf("%s async stream vector: len %d, want %d", m.Name(), len(v), dim)
				}
			}
		})
	}
}
