package core

import (
	"testing"

	"repro/internal/model"
)

func TestGPUHogwildSharedMemoryVariant(t *testing.T) {
	// The shared-memory replica optimisation applies to small models
	// (w8a: 300 params). It must converge and, per epoch, move fewer
	// global-memory bytes than the flat kernel.
	ds, _ := smallDataset(t, "w8a", 800)
	m := model.NewLR(ds.D())

	flat := NewGPUHogwild(m, ds, 0.5)
	shared := NewGPUHogwild(m, ds, 0.5)
	shared.SharedMemory = true

	wf := m.InitParams(1)
	wsh := m.InitParams(1)
	flat.RunEpoch(wf)
	shared.RunEpoch(wsh)
	if shared.LastStats().Cost.Bytes >= flat.LastStats().Cost.Bytes {
		t.Fatalf("shared variant moved more bytes: %v >= %v",
			shared.LastStats().Cost.Bytes, flat.LastStats().Cost.Bytes)
	}

	// Convergence: drive the shared variant to 10%.
	opt := EstimateOptLoss(m, ds, 20)
	e := NewGPUHogwild(m, ds, 0.5)
	e.SharedMemory = true
	w := m.InitParams(1)
	res := RunToConvergence(e, m, ds, w, DriverOpts{OptLoss: opt, MaxEpochs: 400})
	if res.EpochsTo[0.10] < 0 {
		t.Fatalf("shared-memory GPU Hogwild never reached 10%%: final %v opt %v",
			res.FinalLoss, opt)
	}
}

func TestGPUHogwildSharedMemoryFallsBack(t *testing.T) {
	// Models beyond 48 KB (news: 1.35M params) silently use the flat
	// kernel instead of panicking.
	ds, _ := smallDataset(t, "news", 400)
	m := model.NewLR(ds.D())
	e := NewGPUHogwild(m, ds, 0.1)
	e.SharedMemory = true
	w := m.InitParams(1)
	if sec := e.RunEpoch(w); sec <= 0 {
		t.Fatal("fallback epoch did not run")
	}
	if e.LastStats().Updates == 0 {
		t.Fatal("fallback did no work")
	}
}
