package core

import (
	"fmt"
	"runtime"
	"sync/atomic"

	"repro/internal/chaos"
	"repro/internal/data"
	"repro/internal/linalg"
	"repro/internal/model"
	"repro/internal/numa"
	"repro/internal/obs"
	"repro/internal/pool"
)

// HogbatchMode selects the execution flavour of the mini-batch asynchronous
// engine the paper uses for MLP (Section IV-B, "Asynchronous SGD for MLP").
type HogbatchMode int

const (
	// HogbatchSeq is plain sequential mini-batch SGD (the async cpu-seq
	// configuration).
	HogbatchSeq HogbatchMode = iota
	// HogbatchParCPU runs batches on concurrent workers that update the
	// shared model asynchronously (Sallinen et al.'s Hogbatch).
	HogbatchParCPU
	// HogbatchGPU offloads each batch's kernels to the simulated GPU;
	// only one kernel executes at a time, so the statistical behaviour
	// matches sequential mini-batch SGD while per-batch kernel launches
	// dominate the time — "Hogbatch with very low concurrency".
	HogbatchGPU
)

// DefaultBatch is the paper's async MLP batch size.
const DefaultBatch = 512

// HogbatchEngine is mini-batch SGD with asynchronous (or sequential) model
// updates, built on the same BatchGrad formulation as the synchronous
// engine.
type HogbatchEngine struct {
	Model model.BatchModel
	Data  *data.Dataset
	Step  float64
	Batch int
	Mode  HogbatchMode
	// Threads is the modeled CPU thread count for HogbatchParCPU.
	Threads int
	// ParEfficiency is the fraction of ideal scaling the concurrent
	// batch workers achieve (paper: 15-23x on 56 threads, i.e. ~0.55 of
	// the ~36 effective cores).
	ParEfficiency float64
	// CostScale multiplies the modeled epoch time: the per-batch kernels
	// keep their true (batch-sized) cost and the batch count is scaled to
	// the full dataset (1 = no scaling).
	CostScale float64
	// PerBatchOverhead is the per-mini-batch dispatch overhead. The
	// paper's Table III async-MLP times divided by the batch count are
	// near-constant across all five datasets: ~14 ms/batch sequential,
	// ~0.73 ms/batch on 56 threads, ~5.4 ms/batch on GPU (kernel
	// serialisation) — the quantity that actually decides that table.
	// NewHogbatch sets these defaults per mode.
	PerBatchOverhead float64
	// Updater selects the write discipline the concurrent batch workers
	// land the dense gradient with (nil = model.RawUpdater, the classic
	// Hogwild-batch benign race). Set model.AtomicUpdater (or a counting
	// variant) to measure lock-free batch application.
	Updater model.Updater
	// Rec receives phase timings (gradient = batch kernels, update = the
	// Axpy model write, barrier = per-batch dispatch overhead), the batch
	// count, and per-batch latency observations on the serialised paths.
	Rec obs.Recorder
	// Pool overrides the worker pool the concurrent path dispatches on
	// (nil = the shared process pool). Tests inject private pools.
	Pool *pool.Pool
	// Chaos, when enabled, runs batch applications under the fault
	// controller: per-batch fates (drop/duplicate), staleness-bounded
	// gradient views, and the async straggler stretch — small, because
	// batch claiming is dynamic.
	Chaos *chaos.Controller

	cost     *numa.Model
	seqBack  linalg.Backend
	gpuBack  *linalg.GPUBackend
	workerBk []*linalg.CPUBackend

	g          []float64   // serial-path gradient buffer, reused
	rows       []int       // serial-path batch row indices, reused
	workerG    [][]float64 // per-worker gradient buffers, reused
	workerRows [][]int     // per-worker batch row indices, reused
	workerSec  []float64   // per-worker meter deltas of one epoch
	pendingG   [][]float64 // emulated-pipeline in-flight gradients
	freeG      [][]float64 // gradient freelist for the emulated pipeline
}

// updater resolves the write discipline (nil = raw stores).
func (e *HogbatchEngine) updater() model.Updater {
	if e.Updater != nil {
		return e.Updater
	}
	return model.RawUpdater{}
}

// workerPool resolves the dispatch pool.
func (e *HogbatchEngine) workerPool() *pool.Pool {
	if e.Pool != nil {
		return e.Pool
	}
	return pool.Default()
}

// NewHogbatch builds the engine for the given mode with paper defaults.
func NewHogbatch(m model.BatchModel, ds *data.Dataset, step float64, mode HogbatchMode) *HogbatchEngine {
	e := &HogbatchEngine{
		Model: m, Data: ds, Step: step,
		Batch: DefaultBatch, Mode: mode,
		Threads:       56,
		ParEfficiency: 0.55,
		cost:          numa.PaperMachine(),
	}
	switch mode {
	case HogbatchSeq:
		e.PerBatchOverhead = 14e-3
	case HogbatchParCPU:
		e.PerBatchOverhead = 0.73e-3
	case HogbatchGPU:
		e.PerBatchOverhead = 5.4e-3
	}
	return e
}

// Name implements Engine.
func (e *HogbatchEngine) Name() string {
	switch e.Mode {
	case HogbatchSeq:
		return "async/cpu-seq"
	case HogbatchParCPU:
		return fmt.Sprintf("async/cpu-par(%d)", e.Threads)
	default:
		return "async/gpu"
	}
}

// batches returns the [lo, hi) ranges of one epoch.
func (e *HogbatchEngine) batches() [][2]int {
	n := e.Data.N()
	b := e.Batch
	if b <= 0 {
		b = DefaultBatch
	}
	var out [][2]int
	for lo := 0; lo < n; lo += b {
		hi := lo + b
		if hi > n {
			hi = n
		}
		out = append(out, [2]int{lo, hi})
	}
	return out
}

// SetRecorder implements Instrumented.
func (e *HogbatchEngine) SetRecorder(r obs.Recorder) { e.Rec = r }

// SetChaos implements ChaosHost.
func (e *HogbatchEngine) SetChaos(c *chaos.Controller) { e.Chaos = c }

// scaleFactor is the CostScale multiplier with its default applied.
func (e *HogbatchEngine) scaleFactor() float64 {
	if e.CostScale > 0 {
		return e.CostScale
	}
	return 1
}

// RunEpoch implements Engine.
func (e *HogbatchEngine) RunEpoch(w []float64) float64 {
	var sec, upd float64
	switch e.Mode {
	case HogbatchGPU:
		if e.gpuBack == nil {
			e.gpuBack = linalg.NewK80()
		}
		sec, upd = e.runSerial(w, e.gpuBack)
	case HogbatchParCPU:
		if e.Chaos.Enabled() {
			sec = e.runParallelChaos(w)
		} else {
			sec = e.runParallel(w)
		}
	default:
		if e.seqBack == nil {
			e.seqBack = linalg.NewCPU(1)
		}
		sec, upd = e.runSerial(w, e.seqBack)
	}
	nb := int64(len(e.batches()))
	overhead := float64(nb) * e.PerBatchOverhead
	scale := e.scaleFactor()
	// Phase attribution: batch-gradient kernels are the gradient phase,
	// the Axpy model write the update phase (zero on the concurrent-CPU
	// path, whose scattered raw stores are priced inside the parallel
	// factor), and the per-batch dispatch overhead the barrier. The three
	// sum exactly to the returned epoch seconds.
	rec := obs.Or(e.Rec)
	// A chaos straggler stretches the epoch by the (small, dynamic-
	// claiming) async factor; the idle tail lands in the barrier phase so
	// phases keep summing to the returned epoch seconds.
	extra := 0.0
	if e.Chaos.Enabled() {
		extra = (e.Chaos.Slowdown() - 1) * (sec + overhead) * scale
	}
	rec.Phase(obs.PhaseGradient, (sec-upd)*scale)
	rec.Phase(obs.PhaseUpdate, upd*scale)
	rec.Phase(obs.PhaseBarrier, overhead*scale+extra)
	rec.Add(obs.CounterBatches, nb)
	rec.Add(obs.CounterWorkerUpdates, nb)
	e.Chaos.Drain(e.Rec)
	return (sec+overhead)*scale + extra
}

// runSerial performs sequential mini-batch SGD on the given backend; the
// modeled time is the backend meter delta (each batch pays its own kernel
// launches — the serialisation the paper observes on GPU). The second return
// is the Axpy (model-update) share of that delta.
func (e *HogbatchEngine) runSerial(w []float64, b linalg.Backend) (total, upd float64) {
	rec := obs.Or(e.Rec)
	scale := e.scaleFactor()
	var cw *chaos.Worker
	if e.Chaos.Enabled() {
		// The serial path has one worker, so a straggler plan slows it by
		// the full factor (AsyncSlowdown(1) = F) — no peers to absorb it.
		e.Chaos.Workers = 1
		cw = e.Chaos.StandaloneWorker(0)
	}
	start := b.Meter().Seconds()
	if len(e.g) != e.Model.NumParams() {
		e.g = make([]float64, e.Model.NumParams())
	}
	if cap(e.rows) < e.Batch {
		e.rows = make([]int, 0, e.Batch)
	}
	g, rows := e.g, e.rows
	for _, r := range e.batches() {
		rows = rows[:0]
		for i := r[0]; i < r[1]; i++ {
			rows = append(rows, i)
		}
		b0 := b.Meter().Seconds()
		if cw == nil {
			e.Model.BatchGrad(b, w, e.Data, rows, g)
			u0 := b.Meter().Seconds()
			b.Axpy(-e.Step, g, w)
			upd += b.Meter().Seconds() - u0
		} else {
			e.Model.BatchGrad(b, cw.View(w), e.Data, rows, g)
			u0 := b.Meter().Seconds()
			switch cw.Fate() {
			case chaos.FateDrop:
			case chaos.FateDup:
				b.Axpy(-2*e.Step, g, w)
			default:
				b.Axpy(-e.Step, g, w)
			}
			upd += b.Meter().Seconds() - u0
			cw.Step()
		}
		rec.Observe(obs.MetricBatchSeconds, (b.Meter().Seconds()-b0+e.PerBatchOverhead)*scale)
	}
	if cw != nil {
		cw.Stream.Flush()
	}
	return b.Meter().Seconds() - start, upd
}

// runParallel runs batches on concurrent workers sharing w: each worker
// computes its batch gradient against whatever model state it observes and
// applies it with unsynchronised writes — real Hogbatch races. Modeled time
// divides the single-thread kernel work by the measured-efficiency parallel
// factor. When the host lacks the cores to exhibit Threads-way asynchrony,
// the staleness is emulated with a delayed-application pipeline instead
// (gradients computed against the model as of dispatch, applied
// pipeline-depth batches later) — the regime in which the paper observes
// the w8a statistical-efficiency blow-up (Table III: 10,635 epochs).
func (e *HogbatchEngine) runParallel(w []float64) float64 {
	batches := e.batches()
	workers := e.Threads
	if max := runtime.GOMAXPROCS(0); workers > max {
		workers = max
	}
	if workers > len(batches) {
		workers = len(batches)
	}
	if workers < e.Threads && workers < len(batches) {
		return e.runEmulatedParallel(w, batches)
	}
	e.ensureWorkers(workers)
	var next atomic.Int64
	// Worker p of the pool dispatch owns backend/gradient/row buffers p;
	// batches are claimed off the shared atomic counter, so a worker that
	// draws cheap batches immediately takes more — the same dynamic
	// balancing as the seed's goroutine version, minus the per-epoch
	// goroutine spawns and per-worker allocations.
	e.workerPool().RunFunc(workers, workers, func(lo, hi int) {
		for p := lo; p < hi; p++ {
			bk := e.workerBk[p]
			start := bk.Meter().Seconds()
			g := e.workerG[p]
			rows := e.workerRows[p][:0]
			upd := e.updater()
			for {
				k := int(next.Add(1)) - 1
				if k >= len(batches) {
					break
				}
				r := batches[k]
				rows = rows[:0]
				for i := r[0]; i < r[1]; i++ {
					rows = append(rows, i)
				}
				e.Model.BatchGrad(bk, w, e.Data, rows, g)
				for j, gv := range g {
					if gv != 0 {
						upd.Add(w, j, -e.Step*gv)
					}
				}
			}
			e.workerRows[p] = rows
			e.workerSec[p] = bk.Meter().Seconds() - start
		}
	})
	var work float64
	for p := 0; p < workers; p++ {
		work += e.workerSec[p]
	}
	return work / e.parSpeedup()
}

// runParallelChaos is runParallel under the fault controller: workers still
// claim batches dynamically (which is exactly why the straggler stretch
// stays small), but each batch gradient is computed against the worker's
// staleness-bounded view and landed under its injector fate. In sequential
// mode the whole epoch runs on the virtual-time scheduler with the full
// modeled thread count and replays bitwise.
func (e *HogbatchEngine) runParallelChaos(w []float64) float64 {
	batches := e.batches()
	workers := e.Threads
	if !e.Chaos.Sequential {
		if max := runtime.GOMAXPROCS(0); workers > max {
			workers = max
		}
	}
	if workers > len(batches) {
		workers = len(batches)
	}
	if workers < 1 {
		workers = 1
	}
	e.ensureWorkers(workers)
	var next atomic.Int64
	e.Chaos.Run(e.Pool, workers, func(p int, cw *chaos.Worker) {
		bk := e.workerBk[p]
		start := bk.Meter().Seconds()
		g := e.workerG[p]
		rows := e.workerRows[p][:0]
		upd := e.updater()
		for {
			k := int(next.Add(1)) - 1
			if k >= len(batches) {
				break
			}
			r := batches[k]
			rows = rows[:0]
			for i := r[0]; i < r[1]; i++ {
				rows = append(rows, i)
			}
			e.Model.BatchGrad(bk, cw.View(w), e.Data, rows, g)
			times := 1
			switch cw.Fate() {
			case chaos.FateDrop:
				times = 0
			case chaos.FateDup:
				times = 2
			}
			for t := 0; t < times; t++ {
				for j, gv := range g {
					if gv != 0 {
						upd.Add(w, j, -e.Step*gv)
					}
				}
			}
			cw.Step()
		}
		e.workerRows[p] = rows
		e.workerSec[p] = bk.Meter().Seconds() - start
	})
	var work float64
	for p := 0; p < workers; p++ {
		work += e.workerSec[p]
	}
	return work / e.parSpeedup()
}

// ensureWorkers sizes the per-worker backend and buffer sets.
func (e *HogbatchEngine) ensureWorkers(workers int) {
	for len(e.workerBk) < workers {
		e.workerBk = append(e.workerBk, linalg.NewCPU(1))
	}
	for len(e.workerG) < workers {
		e.workerG = append(e.workerG, make([]float64, e.Model.NumParams()))
	}
	for len(e.workerRows) < workers {
		e.workerRows = append(e.workerRows, make([]int, 0, e.Batch))
	}
	if len(e.workerSec) < workers {
		e.workerSec = make([]float64, workers)
	}
}

// parSpeedup is the measured-efficiency parallel factor applied to the
// single-thread kernel work of the concurrent batch workers.
func (e *HogbatchEngine) parSpeedup() float64 {
	speedup := e.ParEfficiency * e.cost.EffectiveCores(e.Threads)
	if speedup < 1 {
		return 1
	}
	return speedup
}

// runEmulatedParallel reproduces Threads-way Hogbatch staleness on a host
// with fewer cores: batch gradients are computed against the model state at
// dispatch time and applied `depth` dispatches later, where depth is the
// number of batches concurrently in flight on the paper machine.
func (e *HogbatchEngine) runEmulatedParallel(w []float64, batches [][2]int) float64 {
	if len(e.workerBk) < 1 {
		e.workerBk = []*linalg.CPUBackend{linalg.NewCPU(1)}
	}
	bk := e.workerBk[0]
	start := bk.Meter().Seconds()
	// Preserve the paper-scale staleness *ratio*: 56 workers against the
	// full batch count (e.g. 1135 on covtype) keep ~5% of an epoch in
	// flight; a scaled-down run must not keep 100% in flight.
	depth := e.Threads
	if e.CostScale > 1 {
		depth = int(float64(e.Threads)/e.CostScale + 0.5)
	}
	if depth < 1 {
		depth = 1
	}
	if depth > len(batches) {
		depth = len(batches)
	}
	// In-flight gradients cycle through a freelist: the pipeline holds at
	// most depth of them, so after warm-up no epoch allocates gradient
	// buffers (the seed allocated one full model-sized vector per batch).
	queue := e.pendingG[:0]
	head := 0
	if cap(e.rows) < e.Batch {
		e.rows = make([]int, 0, e.Batch)
	}
	rows := e.rows
	upd := e.updater()
	apply := func(g []float64) {
		for j, gv := range g {
			if gv != 0 {
				upd.Add(w, j, -e.Step*gv)
			}
		}
		e.freeG = append(e.freeG, g)
	}
	rec := obs.Or(e.Rec)
	speedup := e.parSpeedup()
	scale := e.scaleFactor()
	for _, r := range batches {
		rows = rows[:0]
		for i := r[0]; i < r[1]; i++ {
			rows = append(rows, i)
		}
		g := e.getG()
		b0 := bk.Meter().Seconds()
		e.Model.BatchGrad(bk, w, e.Data, rows, g)
		rec.Observe(obs.MetricBatchSeconds,
			((bk.Meter().Seconds()-b0)/speedup+e.PerBatchOverhead)*scale)
		queue = append(queue, g)
		if len(queue)-head >= depth {
			apply(queue[head])
			head++
		}
	}
	for ; head < len(queue); head++ {
		apply(queue[head])
	}
	e.pendingG = queue[:0]
	work := bk.Meter().Seconds() - start
	return work / speedup
}

// getG pops a gradient buffer off the freelist (BatchGrad overwrites it
// entirely, so recycled buffers need no zeroing).
func (e *HogbatchEngine) getG() []float64 {
	if n := len(e.freeG); n > 0 {
		g := e.freeG[n-1]
		e.freeG = e.freeG[:n-1]
		return g
	}
	return make([]float64, e.Model.NumParams())
}

var _ Engine = (*HogbatchEngine)(nil)
