package core

import (
	"math"

	"repro/internal/data"
	"repro/internal/model"
)

// StepGrid is the paper's step-size search grid: powers of ten
// {1e-6, ..., 1e2} (Section IV-A, Methodology).
var StepGrid = []float64{1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1, 10, 100}

// TuneStep selects the step size from StepGrid that reaches the lowest loss
// within the probe budget, following the paper's grid methodology: each
// candidate runs a fresh engine (built by mk) from the same initial model
// for probeEpochs epochs; the best final loss wins, with convergence speed
// (epochs to get there) as the tie-breaker through the loss comparison.
// Engines whose loss diverges are discarded.
func TuneStep(mk func(step float64) Engine, m model.Model, ds *data.Dataset, init []float64, probeEpochs int) float64 {
	if probeEpochs <= 0 {
		probeEpochs = 5
	}
	initLoss := model.MeanLoss(m, init, ds)
	best := StepGrid[0]
	bestLoss := math.Inf(1)
	for _, step := range StepGrid {
		w := append([]float64(nil), init...)
		e := mk(step)
		ok := true
		mid := math.Inf(1)
		for ep := 0; ep < probeEpochs; ep++ {
			e.RunEpoch(w)
			if !finite(w) {
				ok = false
				break
			}
			if ep == probeEpochs/2 {
				mid = model.MeanLoss(m, w, ds)
			}
		}
		if !ok {
			continue
		}
		loss := model.MeanLoss(m, w, ds)
		if math.IsNaN(loss) || math.IsInf(loss, 0) {
			continue
		}
		// Reject unstable candidates: a step whose loss ends above its
		// starting point, or that stopped improving between the middle
		// and the end of the probe, is oscillating rather than
		// converging — it would never reach the tables' 1% threshold.
		if loss > initLoss || loss > mid*1.0005 {
			continue
		}
		if loss < bestLoss {
			bestLoss, best = loss, step
		}
	}
	return best
}

func finite(w []float64) bool {
	for _, v := range w {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}

// EstimateOptLoss approximates the optimal loss the way the paper does
// ("running all configurations for a full day and choosing the lowest"), at
// tractable scale: long sequential incremental SGD runs at every *constant*
// grid step, keeping the lowest loss seen anywhere. Constant steps matter:
// the paper's configurations all use constant steps, so a decayed-schedule
// optimum would set a reference none of them can reach.
func EstimateOptLoss(m model.Model, ds *data.Dataset, epochs int) float64 {
	if epochs <= 0 {
		epochs = 60
	}
	best := math.Inf(1)
	for _, step := range StepGrid {
		w := m.InitParams(1)
		scr := m.NewScratch()
		diverged := false
		for ep := 0; ep < epochs && !diverged; ep++ {
			for i := 0; i < ds.N(); i++ {
				m.SGDStep(w, ds, i, step, model.RawUpdater{}, scr)
			}
			if !finite(w) {
				diverged = true
				break
			}
			// Constant-step SGD oscillates in its noise ball: track
			// the best visit, like the paper's day-long minimum.
			if loss := model.MeanLoss(m, w, ds); loss < best {
				best = loss
			}
		}
	}
	return best
}
