package core

import (
	"fmt"
	"math/rand"

	"repro/internal/chaos"
	"repro/internal/data"
	"repro/internal/gpusim"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/pool"
)

// HeteroAsyncEngine is asynchronous heterogeneous co-training: the CPU pool
// and the simulated GPU free-run as two streams over a dynamically claimed
// batch queue, and each stream merges its private weights into a shared
// published vector the moment a batch completes (apply-on-arrival), instead
// of once per epoch at a barrier. The merge is a convex blend — the arriving
// stream folds MergeBeta of itself into the published vector and adopts the
// result — so neither backend ever waits for the other; a straggling GPU
// simply claims fewer batches while the CPU works ahead, the same
// self-balancing that makes the paper's asynchronous engines storm-robust.
//
// Dynamic claiming IS the adaptive split here: there is no explicit ratio to
// steer, the faster backend naturally absorbs more of the queue, and the
// realised share is reported through MetricHeteroGPUShare. Per-backend
// staleness is counted at each blend as the number of merges the other
// stream published since this stream last synchronised
// (CounterHeteroCPUStalenessSum / CounterHeteroGPUStalenessSum).
//
// The whole epoch executes on a pool.Sequencer (the seeded virtual-time
// cooperative scheduler), so the racy-looking interleaving of claims and
// blends is a pure function of the shuffle seed: two runs with the same seed
// replay bitwise-identical loss curves, under the race detector, on any
// host. Distinct seeds draw genuinely different schedules, so the regress
// harness gates "hetero-async" on a p10–p90 envelope.
//
// Chaos uses the same worker map as HeteroEngine (GPU = worker 0, CPU =
// worker 1): a straggler factor stretches the GPU's per-batch virtual cost,
// drop/dup fates act per CPU step via applyFate, and GPU drop fates act per
// example inside the kernel.
type HeteroAsyncEngine struct {
	Model model.Model
	Data  *data.Dataset
	Step  float64
	// CPUWorkers is K, the CPU backend's modeled parallelism: the CPU
	// stream's virtual cost per batch is batch-units/K. The steps
	// themselves run on the sequencer's single timeline, so the claimed
	// interleaving stays replayable.
	CPUWorkers int
	// Dev is the simulated GPU; MaxWarps caps resident warps (0 uses
	// OccupancyForN).
	Dev      *gpusim.Device
	MaxWarps int
	// Batch is the claim granularity in examples (0 = DefaultHeteroBatch).
	Batch int
	// MergeBeta is the blend weight of the arriving stream (0 = 0.5).
	MergeBeta float64
	// MergeUnits prices one blend (0 = DefaultHeteroBlendUnits);
	// SecPerUnit converts virtual units to modeled seconds.
	MergeUnits float64
	SecPerUnit float64
	// GPUStretch multiplies the GPU's modeled per-batch time — the same
	// chaos-free skew knob the sync engine exposes for the bench sweep.
	GPUStretch float64
	// Rec receives phase timings (gradient = compute, update = blends),
	// the hetero batch/merge/staleness counters, and the realised share.
	Rec obs.Recorder
	// Pool is unused for the epoch itself (which runs on a private
	// Sequencer) and reserved for symmetry with the sync engine.
	Pool *pool.Pool
	// Chaos, when enabled, injects per-step fates and straggler costs.
	Chaos *chaos.Controller

	rng    *rand.Rand
	perm   []int
	batch  []int // the GPU's claimed-batch staging buffer
	pub    []float64
	wCPU   []float64
	wGPU   []float64
	scrCPU model.Scratch
	scrGPU model.Scratch
	capCPU captureUpdater
	capGPU captureUpdater
	stats  gpusim.AsyncStats

	lastCPUB int
	lastGPUB int
}

// NewHeteroAsync builds the engine on the K80 with scaled occupancy, the
// default cost model, and a deterministic shuffle seed.
func NewHeteroAsync(m model.Model, ds *data.Dataset, step float64, cpuWorkers int) *HeteroAsyncEngine {
	dev := gpusim.K80()
	return &HeteroAsyncEngine{
		Model:      m,
		Data:       ds,
		Step:       step,
		CPUWorkers: cpuWorkers,
		Dev:        dev,
		MaxWarps:   OccupancyForN(dev, ds.N()),
		rng:        rand.New(rand.NewSource(99)),
	}
}

// Name implements Engine.
func (e *HeteroAsyncEngine) Name() string {
	return fmt.Sprintf("hetero-async/cpu+gpu(%d)", e.CPUWorkers)
}

// SetShuffleSeed implements Seeded.
func (e *HeteroAsyncEngine) SetShuffleSeed(seed int64) {
	e.rng = rand.New(rand.NewSource(seed))
}

// SetRecorder implements Instrumented.
func (e *HeteroAsyncEngine) SetRecorder(r obs.Recorder) { e.Rec = r }

// SetChaos implements ChaosHost.
func (e *HeteroAsyncEngine) SetChaos(c *chaos.Controller) { e.Chaos = c }

// LastSplit returns the realised batch split of the most recent epoch.
func (e *HeteroAsyncEngine) LastSplit() (cpuBatches, gpuBatches int) {
	return e.lastCPUB, e.lastGPUB
}

func (e *HeteroAsyncEngine) prepare() {
	if e.perm != nil {
		return
	}
	n := e.Data.N()
	if e.CPUWorkers < 1 {
		e.CPUWorkers = 1
	}
	if e.Batch < 1 {
		e.Batch = DefaultHeteroBatch
	}
	if e.MergeBeta <= 0 || e.MergeBeta >= 1 {
		e.MergeBeta = 0.5
	}
	if e.MergeUnits <= 0 {
		e.MergeUnits = DefaultHeteroBlendUnits
	}
	if e.SecPerUnit <= 0 {
		e.SecPerUnit = DefaultLocalSecPerUnit
	}
	if e.GPUStretch <= 0 {
		e.GPUStretch = 1
	}
	if e.MaxWarps <= 0 {
		e.MaxWarps = OccupancyForN(e.Dev, n)
	}
	e.perm = make([]int, n)
	for i := range e.perm {
		e.perm[i] = i
	}
	dim := e.Model.NumParams()
	e.batch = make([]int, 0, e.Batch)
	e.pub = model.AlignedVec(dim)
	e.wCPU = model.AlignedVec(dim)
	e.wGPU = model.AlignedVec(dim)
	e.scrCPU = e.Model.NewScratch()
	e.scrGPU = e.Model.NewScratch()
}

// RunEpoch implements Engine: one pass over a fresh shuffle under the
// virtual-time schedule, blending on arrival. Returns the schedule makespan
// in modeled seconds.
func (e *HeteroAsyncEngine) RunEpoch(w []float64) float64 {
	e.prepare()
	n := len(e.perm)
	e.rng.Shuffle(n, func(i, j int) { e.perm[i], e.perm[j] = e.perm[j], e.perm[i] })
	// The scheduler's tie-break seed advances with the shuffle stream, as in
	// AsyncLocalSGDEngine: each epoch draws a fresh, replayable interleaving.
	seqSeed := e.rng.Int63()

	chaosOn := e.Chaos.Enabled() && e.Chaos.Plan.Active()
	var gpuStream, cpuStream *chaos.Stream
	if chaosOn {
		in := e.Chaos.Injector()
		gpuStream = in.Worker(0)
		cpuStream = in.Worker(1)
	}

	copy(e.pub, w)
	copy(e.wCPU, w)
	copy(e.wGPU, w)

	fpe := 4
	if e.Model.Name() == "mlp" {
		fpe = 6
	}
	cfg := gpusim.AsyncConfig{
		MaxWarps:        e.MaxWarps,
		FlopsPerElement: fpe,
		ReadSupport: func(item int) int {
			return e.Model.GradSupport(e.Data, item)
		},
	}
	if chaosOn && e.Chaos.Plan.DropFrac > 0 {
		cfg.FaultDrop = func(item int) bool {
			return gpuStream.Fate() == chaos.FateDrop
		}
	}

	// Shared state below (next, the merge tallies, pub and the stream
	// vectors) is serialised by the Sequencer's resume/park handshake: at
	// most one worker body runs at any moment.
	next := 0
	cpuBatches, gpuBatches := 0, 0
	var mergesCPU, mergesGPU int64
	var seenByCPU, seenByGPU int64 // other stream's merge count at last own blend
	var staleCPU, staleGPU int64
	gpuKernelSec := 0.0

	// blend folds the arriving stream into the published vector and adopts
	// the result; runs inside a turn, so it is part of the replayable
	// schedule. A serial loop, like the async Local-SGD aggregator's fold.
	beta := e.MergeBeta
	blend := func(ws []float64) {
		for j := range e.pub {
			e.pub[j] = (1-beta)*e.pub[j] + beta*ws[j]
		}
		copy(ws, e.pub)
	}

	s := pool.NewSequencer(seqSeed)
	// CPU stream: claim a batch, step it on the private CPU vector at the
	// pool-parallel virtual rate (batch units / K), then blend.
	s.Go(func(t *pool.Turn) {
		for next < n {
			lo := next
			hi := lo + e.Batch
			if hi > n {
				hi = n
			}
			next = hi
			units := 0.0
			for _, i := range e.perm[lo:hi] {
				cost := 1.0
				fate := chaos.FateApply
				if cpuStream != nil {
					fate = cpuStream.Fate()
					cost = cpuStream.Cost()
				}
				e.capCPU.idx = e.capCPU.idx[:0]
				e.capCPU.delta = e.capCPU.delta[:0]
				e.Model.SGDStep(e.wCPU, e.Data, i, e.Step, &e.capCPU, e.scrCPU)
				applyFate(fate, model.RawUpdater{}, e.wCPU, &e.capCPU)
				units += cost
			}
			t.Tick(units / float64(e.CPUWorkers))
			staleCPU += mergesGPU - seenByCPU
			blend(e.wCPU)
			mergesCPU++
			seenByCPU = mergesGPU
			cpuBatches++
			t.Tick(e.MergeUnits)
		}
	})
	// GPU stream: claim a batch, run it as one kernel on the private GPU
	// vector, pay the modeled kernel time (stretched by chaos/skew) in
	// virtual units, then blend.
	s.Go(func(t *pool.Turn) {
		for next < n {
			lo := next
			hi := lo + e.Batch
			if hi > n {
				hi = n
			}
			next = hi
			e.batch = append(e.batch[:0], e.perm[lo:hi]...)
			st := e.Dev.RunAsyncEpoch(e.batch, cfg, func(item int, emit func(int, float64)) {
				e.capGPU.idx = e.capGPU.idx[:0]
				e.capGPU.delta = e.capGPU.delta[:0]
				e.Model.SGDStep(e.wGPU, e.Data, item, e.Step, &e.capGPU, e.scrGPU)
				for kk, ix := range e.capGPU.idx {
					emit(ix, e.capGPU.delta[kk])
				}
			}, func(idx int, delta float64) {
				e.wGPU[idx] += delta
			})
			e.stats = st
			sec := st.Cost.Seconds * e.GPUStretch
			if gpuStream != nil {
				sec *= gpuStream.Cost()
			}
			gpuKernelSec += sec
			t.Tick(sec / e.SecPerUnit)
			staleGPU += mergesCPU - seenByGPU
			blend(e.wGPU)
			mergesGPU++
			seenByGPU = mergesCPU
			gpuBatches++
			t.Tick(e.MergeUnits)
		}
	})
	s.Run()

	copy(w, e.pub)
	e.lastCPUB = cpuBatches
	e.lastGPUB = gpuBatches

	makespan := s.Makespan()
	sec := makespan * e.SecPerUnit
	e.record(n, cpuBatches, gpuBatches, mergesCPU+mergesGPU, staleCPU, staleGPU,
		sec, chaosOn, gpuStream, cpuStream)
	return sec
}

// record emits the epoch's phases and counters: update is the blend work,
// gradient the rest of the makespan (the two sum exactly to the returned
// epoch seconds — there is no barrier in this engine).
func (e *HeteroAsyncEngine) record(n, cpuBatches, gpuBatches int, merges, staleCPU, staleGPU int64,
	epochSec float64, chaosOn bool, gpuStream, cpuStream *chaos.Stream) {
	if chaosOn {
		gpuStream.Flush()
		cpuStream.Flush()
	}
	if e.Chaos.Enabled() {
		e.Chaos.Drain(e.Rec)
	}
	rec := obs.Or(e.Rec)
	if !obs.Enabled(rec) {
		return
	}
	upd := float64(merges) * e.MergeUnits * e.SecPerUnit
	if upd > epochSec {
		upd = epochSec
	}
	rec.Phase(obs.PhaseGradient, epochSec-upd)
	rec.Phase(obs.PhaseUpdate, upd)
	rec.Add(obs.CounterWorkerUpdates, int64(n))
	rec.Add(obs.CounterHeteroCPUBatches, int64(cpuBatches))
	rec.Add(obs.CounterHeteroGPUBatches, int64(gpuBatches))
	rec.Add(obs.CounterHeteroMerges, merges)
	rec.Add(obs.CounterHeteroCPUStalenessSum, staleCPU)
	rec.Add(obs.CounterHeteroGPUStalenessSum, staleGPU)
	if nb := cpuBatches + gpuBatches; nb > 0 {
		rec.Observe(obs.MetricHeteroGPUShare, float64(gpuBatches)/float64(nb))
	}
}

var _ Engine = (*HeteroAsyncEngine)(nil)
var _ Seeded = (*HeteroAsyncEngine)(nil)
var _ Instrumented = (*HeteroAsyncEngine)(nil)
var _ ChaosHost = (*HeteroAsyncEngine)(nil)
