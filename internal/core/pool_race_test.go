package core

import (
	"runtime"
	"sync"
	"testing"

	"repro/internal/data"
	"repro/internal/linalg"
	"repro/internal/model"
	"repro/internal/pool"
	"repro/internal/sparse"
)

// diagonalDataset gives every example a single private feature, so the
// gradient supports of any two examples are disjoint: a concurrent Hogwild
// epoch over it performs no overlapping model accesses at all. That isolates
// the race detector on the machinery under test — the shared worker pool —
// instead of the model vector's by-design races.
func diagonalDataset(t testing.TB, n int) *data.Dataset {
	t.Helper()
	b := sparse.NewBuilder(n, n)
	for i := 0; i < n; i++ {
		b.Add(i, i, 1)
	}
	y := make([]float64, n)
	for i := range y {
		y[i] = 1
		if i%2 == 0 {
			y[i] = -1
		}
	}
	return &data.Dataset{Name: "diag", X: b.Build(), Y: y}
}

// TestSharedPoolHogwildAndBackendConcurrently drives one worker pool from a
// genuinely concurrent Hogwild epoch and a CPU backend's batch kernels at
// the same time. Run under -race it proves the pool's dispatch path — and
// the backend's pre-bound task plumbing — is data-race free when engines and
// backends share one pool, the deployment shape of the real system.
func TestSharedPoolHogwildAndBackendConcurrently(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	p := pool.New(4)
	defer p.Close()

	hogDS := diagonalDataset(t, 400)
	hogModel := model.NewLR(hogDS.D())
	hog := NewHogwild(hogModel, hogDS, 0.1, 4)
	hog.Pool = p

	batchDS, _ := smallDataset(t, "w8a", 400)
	batchModel := model.NewLR(batchDS.D())
	bk := linalg.NewCPU(8)
	bk.SetPool(p)

	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		w := hogModel.InitParams(1)
		for ep := 0; ep < 5; ep++ {
			hog.RunEpoch(w)
		}
	}()
	go func() {
		defer wg.Done()
		w := batchModel.InitParams(2)
		g := make([]float64, batchModel.NumParams())
		rows := make([]int, 64)
		for i := range rows {
			rows[i] = (i * 5) % batchDS.N()
		}
		for it := 0; it < 40; it++ {
			batchModel.BatchGrad(bk, w, batchDS, rows, g)
			bk.Axpy(-0.05, g, w)
		}
	}()
	wg.Wait()
}
