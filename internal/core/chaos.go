package core

import (
	"repro/internal/chaos"
	"repro/internal/model"
)

// ChaosHost is implemented by engines that can run under a fault-injection
// controller (internal/chaos). All four in-repo engine families implement
// it; external-framework engines are left dark, like Instrumented.
type ChaosHost interface {
	// SetChaos attaches the controller subsequent epochs run under; nil
	// detaches it and restores the healthy fast paths.
	SetChaos(*chaos.Controller)
}

// InjectChaos attaches c to e if the engine supports fault injection and
// reports whether it did.
func InjectChaos(e Engine, c *chaos.Controller) bool {
	if h, ok := e.(ChaosHost); ok {
		h.SetChaos(c)
		return true
	}
	return false
}

// applyFate lands one captured update under the injector's verdict: once,
// twice (duplicated), or not at all (dropped).
func applyFate(f chaos.Fate, u model.Updater, w []float64, capt *captureUpdater) {
	times := 1
	switch f {
	case chaos.FateDrop:
		times = 0
	case chaos.FateDup:
		times = 2
	}
	for t := 0; t < times; t++ {
		for k, ix := range capt.idx {
			u.Add(w, ix, capt.delta[k])
		}
	}
}
