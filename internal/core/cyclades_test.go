package core

import (
	"testing"

	"repro/internal/model"
)

func TestCycladesBatchesAreConflictFree(t *testing.T) {
	ds, _ := smallDataset(t, "real-sim", 600)
	m := model.NewLR(ds.D())
	e := NewCyclades(m, ds, 0.5, 56)
	e.schedule()
	seen := make(map[int]int, ds.D())
	visited := 0
	for bi, batch := range e.batches {
		clear(seen)
		for _, i := range batch {
			visited++
			cols, _ := ds.X.Row(i)
			for _, c := range cols {
				if prev, dup := seen[int(c)]; dup {
					t.Fatalf("batch %d: component %d written by examples %d and %d",
						bi, c, prev, i)
				}
				seen[int(c)] = i
			}
		}
	}
	if visited != ds.N() {
		t.Fatalf("scheduled %d of %d examples", visited, ds.N())
	}
}

func TestCycladesSequentialEquivalentLoss(t *testing.T) {
	// Conflict-free execution must behave like plain incremental SGD:
	// it converges (no staleness, no lost updates).
	ds, _ := smallDataset(t, "real-sim", 600)
	m := model.NewSVM(ds.D())
	e := NewCyclades(m, ds, 0.5, 56)
	w := m.InitParams(1)
	before := model.MeanLoss(m, w, ds)
	var sec float64
	for ep := 0; ep < 20; ep++ {
		sec += e.RunEpoch(w)
	}
	after := model.MeanLoss(m, w, ds)
	if after >= before/2 {
		t.Fatalf("Cyclades: loss %v -> %v", before, after)
	}
	if sec <= 0 {
		t.Fatal("no modeled time")
	}
}

func TestCycladesDenseDegeneratesToSingletons(t *testing.T) {
	// On complete data every pair of examples conflicts: the schedule
	// must collapse to one example per batch (sequential execution).
	ds, _ := smallDataset(t, "covtype", 300)
	m := model.NewLR(ds.D())
	e := NewCyclades(m, ds, 0.1, 56)
	e.schedule()
	st := e.Stats()
	if st.MaxBatchLen != 1 {
		t.Fatalf("dense data produced batch of %d conflict-free examples", st.MaxBatchLen)
	}
	if st.SingletonFrac != 1 {
		t.Fatalf("singleton fraction %v", st.SingletonFrac)
	}
}

func TestCycladesSparseFindsParallelism(t *testing.T) {
	// news-like sparsity: batches must pack many conflict-free examples.
	ds, _ := smallDataset(t, "news", 800)
	m := model.NewLR(ds.D())
	e := NewCyclades(m, ds, 0.1, 56)
	e.schedule()
	st := e.Stats()
	if st.MeanBatchLen < 4 {
		t.Fatalf("sparse data mean batch length %.1f, expected real parallelism", st.MeanBatchLen)
	}
}

func TestCycladesModeledCostOrdering(t *testing.T) {
	// On sparse data, conflict-free parallel execution must beat the
	// sequential baseline in modeled time per iteration.
	ds, _ := smallDataset(t, "news", 800)
	m := model.NewLR(ds.D())
	cyc := NewCyclades(m, ds, 0.1, 56)
	seq := NewHogwild(m, ds, 0.1, 1)
	w1 := m.InitParams(1)
	w2 := m.InitParams(1)
	tc := cyc.RunEpoch(w1)
	ts := seq.RunEpoch(w2)
	if tc >= ts {
		t.Fatalf("Cyclades (%v) not faster than sequential (%v) on sparse data", tc, ts)
	}
}

func TestCycladesSupportProbeNonLinearModel(t *testing.T) {
	// For MLP the support walk goes through the updater probe; dense
	// upper layers make all examples conflict.
	ds, _ := smallDataset(t, "w8a", 200)
	m := model.NewMLP([]int{300, 4, 2})
	e := NewCyclades(m, ds, 0.1, 8)
	e.schedule()
	if e.Stats().MaxBatchLen != 1 {
		t.Fatalf("MLP batches should be singletons, got max %d", e.Stats().MaxBatchLen)
	}
}
