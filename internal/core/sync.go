package core

import (
	"fmt"

	"repro/internal/chaos"
	"repro/internal/data"
	"repro/internal/linalg"
	"repro/internal/model"
	"repro/internal/obs"
)

// SyncEngine is synchronous SGD (the paper's Algorithm 2): the gradient is
// computed with blocking linear-algebra primitives on a backend and the
// model is updated once per batch, with full-dataset batches by default —
// synchronous SGD "becomes batch gradient descent" (Section IV-A). The
// identical code runs on every backend; only the cost accounting differs.
type SyncEngine struct {
	Backend linalg.Backend
	Model   model.BatchModel
	Data    *data.Dataset
	Step    float64
	// Batch is the examples per model update; 0 means the full dataset
	// (the paper's synchronous configuration).
	Batch int
	// CostScale multiplies the modeled epoch time. The harness uses it
	// for configurations whose per-epoch kernel *count* grows with the
	// dataset (the chunked MLP pipeline): each kernel keeps its true
	// size and the epoch total is scaled to the full dataset. For LR/SVM
	// (fixed kernel count per epoch) scaling is applied inside the
	// backend via WorkScale instead, and CostScale stays 1.
	CostScale float64
	// EpochOverhead is added once per epoch after scaling: the empirical
	// per-epoch primitive-management overhead of the paper's ViennaCL
	// deployment, calibrated from Table II (the near-constant ~1.9s
	// sequential and ~6ms parallel components across all five datasets;
	// ~4ms on GPU). It models library temporaries/dispatch, not compute.
	EpochOverhead float64
	// Rec receives phase timings (gradient = batch-gradient kernels,
	// update = Axpy, barrier = EpochOverhead) and the batch count.
	Rec obs.Recorder
	// Chaos, when enabled, stretches the epoch by the plan's synchronous
	// slowdown: the per-epoch barrier waits out the straggler's full
	// F-times share — unless Chaos.Deadline caps the wait, in which case
	// the update proceeds with the gradient fraction received by the
	// deadline (the straggler's missing contributions are counted as
	// shortfall). This is the fragile half of the paper's contrast: the
	// identical fault that barely moves the Hogwild engines multiplies
	// every synchronous epoch.
	Chaos *chaos.Controller

	grad []float64
	rows []int
}

// NewSync builds a synchronous engine with full-batch updates.
func NewSync(b linalg.Backend, m model.BatchModel, ds *data.Dataset, step float64) *SyncEngine {
	return &SyncEngine{Backend: b, Model: m, Data: ds, Step: step}
}

// Name implements Engine.
func (e *SyncEngine) Name() string { return "sync/" + e.Backend.Name() }

// SetRecorder implements Instrumented.
func (e *SyncEngine) SetRecorder(r obs.Recorder) { e.Rec = r }

// SetChaos implements ChaosHost.
func (e *SyncEngine) SetChaos(c *chaos.Controller) { e.Chaos = c }

// chaosStretch resolves the epoch stretch and update scale the fault plan
// imposes on the barriered path. Without a deadline the barrier waits out
// the straggler (stretch = SyncSlowdown, full gradient); with one, the
// epoch is capped at Deadline times the healthy epoch and the update is
// scaled by the fraction of gradient contributions received by then —
// shortfall is the examples the straggler never delivered.
func (e *SyncEngine) chaosStretch() (stretch, stepScale float64, shortfall int64) {
	stretch, stepScale = 1, 1
	if !e.Chaos.Enabled() {
		return
	}
	stretch = e.Chaos.Plan.SyncSlowdown()
	d := e.Chaos.Deadline
	if d < 1 || d >= stretch {
		return
	}
	workers := e.Chaos.Workers
	if workers <= 0 {
		workers = 56 // the paper machine's thread count
	}
	s := e.Chaos.Plan.Stragglers
	if s > workers {
		s = workers
	}
	// By the deadline each straggler has finished d/stretch of its static
	// 1/workers share; the healthy workers have finished theirs.
	frac := (float64(workers-s) + float64(s)*d/stretch) / float64(workers)
	stepScale = frac
	stretch = d
	shortfall = int64((1 - frac) * float64(e.Data.N()))
	return
}

// RunEpoch implements Engine.
func (e *SyncEngine) RunEpoch(w []float64) float64 {
	if len(w) != e.Model.NumParams() {
		panic(fmt.Sprintf("core: model has %d params, got %d", e.Model.NumParams(), len(w)))
	}
	if e.grad == nil {
		e.grad = make([]float64, e.Model.NumParams())
	}
	rec := obs.Or(e.Rec)
	stretch, stepScale, shortfall := e.chaosStretch()
	meter := e.Backend.Meter()
	start := meter.Seconds()
	var updSec float64
	var batches int64
	step := func(rows []int) {
		e.Model.BatchGrad(e.Backend, w, e.Data, rows, e.grad)
		u0 := meter.Seconds()
		e.Backend.Axpy(-e.Step*stepScale, e.grad, w)
		updSec += meter.Seconds() - u0
		batches++
	}
	n := e.Data.N()
	batch := e.Batch
	if batch <= 0 || batch >= n {
		step(nil)
	} else {
		if e.rows == nil {
			e.rows = make([]int, 0, batch)
		}
		for lo := 0; lo < n; lo += batch {
			hi := lo + batch
			if hi > n {
				hi = n
			}
			e.rows = e.rows[:0]
			for i := lo; i < hi; i++ {
				e.rows = append(e.rows, i)
			}
			step(e.rows)
		}
	}
	sec := meter.Seconds() - start
	scale := 1.0
	if e.CostScale > 0 {
		scale = e.CostScale
	}
	// Phase attribution: batch-gradient kernels are the gradient phase,
	// the Axpy model write is the update phase, and the per-epoch
	// primitive-management overhead — plus whatever the barrier spends
	// waiting for a chaos-plan straggler — is the synchronisation/dispatch
	// barrier. The three sum exactly to the returned epoch seconds.
	barrier := e.EpochOverhead + (stretch-1)*sec*scale
	rec.Phase(obs.PhaseGradient, (sec-updSec)*scale)
	rec.Phase(obs.PhaseUpdate, updSec*scale)
	rec.Phase(obs.PhaseBarrier, barrier)
	rec.Add(obs.CounterBatches, batches)
	rec.Add(obs.CounterWorkerUpdates, batches)
	if e.Chaos.Enabled() {
		if shortfall > 0 {
			e.Chaos.Injector().CountShortfall(shortfall)
		}
		e.Chaos.Drain(e.Rec)
	}
	return sec*scale*stretch + e.EpochOverhead
}

var _ Engine = (*SyncEngine)(nil)
