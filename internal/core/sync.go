package core

import (
	"fmt"

	"repro/internal/data"
	"repro/internal/linalg"
	"repro/internal/model"
)

// SyncEngine is synchronous SGD (the paper's Algorithm 2): the gradient is
// computed with blocking linear-algebra primitives on a backend and the
// model is updated once per batch, with full-dataset batches by default —
// synchronous SGD "becomes batch gradient descent" (Section IV-A). The
// identical code runs on every backend; only the cost accounting differs.
type SyncEngine struct {
	Backend linalg.Backend
	Model   model.BatchModel
	Data    *data.Dataset
	Step    float64
	// Batch is the examples per model update; 0 means the full dataset
	// (the paper's synchronous configuration).
	Batch int
	// CostScale multiplies the modeled epoch time. The harness uses it
	// for configurations whose per-epoch kernel *count* grows with the
	// dataset (the chunked MLP pipeline): each kernel keeps its true
	// size and the epoch total is scaled to the full dataset. For LR/SVM
	// (fixed kernel count per epoch) scaling is applied inside the
	// backend via WorkScale instead, and CostScale stays 1.
	CostScale float64
	// EpochOverhead is added once per epoch after scaling: the empirical
	// per-epoch primitive-management overhead of the paper's ViennaCL
	// deployment, calibrated from Table II (the near-constant ~1.9s
	// sequential and ~6ms parallel components across all five datasets;
	// ~4ms on GPU). It models library temporaries/dispatch, not compute.
	EpochOverhead float64

	grad []float64
	rows []int
}

// NewSync builds a synchronous engine with full-batch updates.
func NewSync(b linalg.Backend, m model.BatchModel, ds *data.Dataset, step float64) *SyncEngine {
	return &SyncEngine{Backend: b, Model: m, Data: ds, Step: step}
}

// Name implements Engine.
func (e *SyncEngine) Name() string { return "sync/" + e.Backend.Name() }

// RunEpoch implements Engine.
func (e *SyncEngine) RunEpoch(w []float64) float64 {
	if len(w) != e.Model.NumParams() {
		panic(fmt.Sprintf("core: model has %d params, got %d", e.Model.NumParams(), len(w)))
	}
	if e.grad == nil {
		e.grad = make([]float64, e.Model.NumParams())
	}
	start := e.Backend.Meter().Seconds()
	n := e.Data.N()
	batch := e.Batch
	if batch <= 0 || batch >= n {
		e.Model.BatchGrad(e.Backend, w, e.Data, nil, e.grad)
		e.Backend.Axpy(-e.Step, e.grad, w)
	} else {
		if e.rows == nil {
			e.rows = make([]int, 0, batch)
		}
		for lo := 0; lo < n; lo += batch {
			hi := lo + batch
			if hi > n {
				hi = n
			}
			e.rows = e.rows[:0]
			for i := lo; i < hi; i++ {
				e.rows = append(e.rows, i)
			}
			e.Model.BatchGrad(e.Backend, w, e.Data, e.rows, e.grad)
			e.Backend.Axpy(-e.Step, e.grad, w)
		}
	}
	sec := e.Backend.Meter().Seconds() - start
	if e.CostScale > 0 {
		sec *= e.CostScale
	}
	return sec + e.EpochOverhead
}

var _ Engine = (*SyncEngine)(nil)
