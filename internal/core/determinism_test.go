package core

import (
	"testing"

	"repro/internal/linalg"
	"repro/internal/model"
)

// Engines built from identical inputs with identical seeds must replay
// bitwise-identical trajectories (the emulated-staleness and simulated-GPU
// paths are deterministic by design; only true goroutine races are not).

func runTwice(t *testing.T, mk func() Engine, m model.Model, epochs int) ([]float64, []float64) {
	t.Helper()
	w1 := m.InitParams(1)
	e1 := mk()
	for ep := 0; ep < epochs; ep++ {
		e1.RunEpoch(w1)
	}
	w2 := m.InitParams(1)
	e2 := mk()
	for ep := 0; ep < epochs; ep++ {
		e2.RunEpoch(w2)
	}
	return w1, w2
}

func expectIdentical(t *testing.T, name string, w1, w2 []float64) {
	t.Helper()
	for j := range w1 {
		if w1[j] != w2[j] {
			t.Fatalf("%s: non-deterministic replay at w[%d]: %v vs %v", name, j, w1[j], w2[j])
		}
	}
}

func TestDeterministicReplaySequentialHogwild(t *testing.T) {
	ds, _ := smallDataset(t, "w8a", 400)
	m := model.NewLR(ds.D())
	w1, w2 := runTwice(t, func() Engine { return NewHogwild(m, ds, 0.5, 1) }, m, 5)
	expectIdentical(t, "hogwild-seq", w1, w2)
}

func TestDeterministicReplayEmulatedHogwild(t *testing.T) {
	ds, _ := smallDataset(t, "real-sim", 400)
	m := model.NewSVM(ds.D())
	// 56 modeled threads on this host use the emulation path, which is
	// deterministic given the seed.
	w1, w2 := runTwice(t, func() Engine { return NewHogwild(m, ds, 0.5, 56) }, m, 4)
	expectIdentical(t, "hogwild-emulated", w1, w2)
}

func TestDeterministicReplayGPUHogwild(t *testing.T) {
	ds, _ := smallDataset(t, "covtype", 300)
	m := model.NewLR(ds.D())
	w1, w2 := runTwice(t, func() Engine { return NewGPUHogwild(m, ds, 0.1) }, m, 4)
	expectIdentical(t, "gpu-hogwild", w1, w2)
}

func TestDeterministicReplaySync(t *testing.T) {
	ds, _ := smallDataset(t, "w8a", 300)
	m := model.NewLR(ds.D())
	w1, w2 := runTwice(t, func() Engine {
		return NewSync(newSeqBackendForTest(), m, ds, 1)
	}, m, 4)
	expectIdentical(t, "sync", w1, w2)
}

func TestDeterministicReplayCyclades(t *testing.T) {
	ds, _ := smallDataset(t, "news", 300)
	m := model.NewLR(ds.D())
	w1, w2 := runTwice(t, func() Engine { return NewCyclades(m, ds, 0.1, 56) }, m, 3)
	expectIdentical(t, "cyclades", w1, w2)
}

func TestShuffleSeedChangesTrajectory(t *testing.T) {
	ds, _ := smallDataset(t, "w8a", 400)
	m := model.NewLR(ds.D())
	mk := func(seed int64) []float64 {
		e := NewHogwild(m, ds, 0.5, 1)
		e.SetShuffleSeed(seed)
		w := m.InitParams(1)
		e.RunEpoch(w)
		return w
	}
	w1, w2 := mk(1), mk(2)
	same := true
	for j := range w1 {
		if w1[j] != w2[j] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different shuffle seeds produced identical trajectories")
	}
}

// newSeqBackendForTest builds a sequential CPU backend without importing
// linalg at every call site.
func newSeqBackendForTest() linalg.Backend { return linalg.NewCPU(1) }
