package core

import (
	"math/rand"

	"repro/internal/chaos"
	"repro/internal/data"
	"repro/internal/gpusim"
	"repro/internal/model"
	"repro/internal/obs"
)

// GPUHogwildEngine is the asynchronous SGD kernel on the simulated GPU:
// examples are processed by 32-lane warps in lockstep, gradients are
// computed against warp-round model snapshots, and unsynchronised lane
// writes collide (see internal/gpusim for the exact semantics). This is the
// configuration the GPU frameworks do not ship and the paper had to build
// (Section III-B).
type GPUHogwildEngine struct {
	Model model.Model
	Data  *data.Dataset
	Step  float64
	Dev   *gpusim.Device
	// Combine enables the warp-shuffle conflict-reduction optimisation.
	Combine bool
	// MaxWarps caps resident warps; 0 uses OccupancyForN to keep the
	// concurrency-to-dataset ratio of the paper's full-scale runs when
	// the dataset is scaled down.
	MaxWarps int
	// CostScale inflates the modeled kernel work (not the launch
	// overhead) to the full dataset size (1 = no scaling).
	CostScale float64
	// SharedMemory enables the extended-version optimisation: per-block
	// model replicas in shared memory with end-of-pass averaging, used
	// when the model fits 48 KB (covtype, w8a and all the paper's MLP
	// models qualify). Falls back to the flat kernel otherwise.
	SharedMemory bool
	// WarpPerExample selects the cooperative kernel layout (see
	// gpusim.AsyncConfig.WarpPerExample): no intra-warp conflicts or
	// divergence, 32x fewer concurrent examples.
	WarpPerExample bool
	// Rec receives phase timings (barrier = kernel-launch overhead,
	// update = the write share of the roofline time, gradient = the rest),
	// the simulator's conflict/coalescing counters, and the divergent-warp
	// fraction.
	Rec obs.Recorder
	// Chaos, when enabled, wires the plan's drop fraction into the
	// simulator's FaultDrop hook and stretches the epoch by the async
	// straggler slowdown over the resident warps — vanishing, because
	// thousands of warps absorb one slow one. Staleness injection is a
	// no-op here: warp-round snapshot staleness is already the kernel's
	// native read semantics.
	Chaos *chaos.Controller

	rng   *rand.Rand
	perm  []int
	stats gpusim.AsyncStats
}

// OccupancyForN returns the resident-warp bound used for a dataset of n
// examples: the device limit, scaled down proportionally for reduced
// datasets so that the staleness ratio (concurrent updates / N) matches the
// paper's full-scale experiments (~26k threads against ~10^5..10^6
// examples).
func OccupancyForN(dev *gpusim.Device, n int) int {
	limit := dev.Spec.MaxResidentWarps()
	// Paper-scale ratio: ~1 resident thread per 22 examples.
	scaled := n / (22 * dev.Spec.WarpSize)
	if scaled < 1 {
		scaled = 1
	}
	if scaled > limit {
		return limit
	}
	return scaled
}

// NewGPUHogwild builds the engine on the K80 with scaled occupancy.
func NewGPUHogwild(m model.Model, ds *data.Dataset, step float64) *GPUHogwildEngine {
	dev := gpusim.K80()
	return &GPUHogwildEngine{
		Model: m, Data: ds, Step: step, Dev: dev,
		MaxWarps: OccupancyForN(dev, ds.N()),
		rng:      rand.New(rand.NewSource(99)),
	}
}

// Name implements Engine.
func (e *GPUHogwildEngine) Name() string { return "async/gpu" }

// SetShuffleSeed reseeds the epoch shuffle stream.
func (e *GPUHogwildEngine) SetShuffleSeed(seed int64) {
	e.rng = rand.New(rand.NewSource(seed))
}

// LastStats returns the conflict statistics of the most recent epoch.
func (e *GPUHogwildEngine) LastStats() gpusim.AsyncStats { return e.stats }

// SetRecorder implements Instrumented.
func (e *GPUHogwildEngine) SetRecorder(r obs.Recorder) { e.Rec = r }

// SetChaos implements ChaosHost.
func (e *GPUHogwildEngine) SetChaos(c *chaos.Controller) { e.Chaos = c }

// record surfaces one epoch's AsyncStats through the recorder. The phase
// split attributes the kernel-launch overhead to the barrier phase and
// divides the roofline kernel time between update (the model-write share of
// the global traffic) and gradient (everything else); the three sum exactly
// to Cost.Seconds.
func (e *GPUHogwildEngine) record(st gpusim.AsyncStats) {
	rec := obs.Or(e.Rec)
	if !obs.Enabled(rec) {
		return
	}
	barrier := float64(st.Cost.Launches) * e.Dev.Spec.KernelLaunchNS * 1e-9
	kernel := st.Cost.Seconds - barrier
	if kernel < 0 {
		kernel = 0
	}
	var update float64
	if st.Cost.Bytes > 0 {
		update = kernel * st.Cost.WriteBytes / st.Cost.Bytes
	}
	rec.Phase(obs.PhaseGradient, kernel-update)
	rec.Phase(obs.PhaseUpdate, update)
	rec.Phase(obs.PhaseBarrier, barrier)
	rec.Add(obs.CounterGPUUpdates, st.Updates)
	rec.Add(obs.CounterGPULostIntra, st.LostIntra)
	rec.Add(obs.CounterGPULostInter, st.LostInter)
	rec.Add(obs.CounterGPUApplied, st.Applied)
	rec.Add(obs.CounterGPURounds, st.Rounds)
	rec.Add(obs.CounterGPUTransactions, st.Cost.Transactions)
	// Each emitted component update implies one model-read and one
	// model-write request; perfectly coalesced they would need
	// requests*8/TransactionBytes transactions, so the ratio of issued
	// transactions to this baseline is the coalescing factor.
	rec.Add(obs.CounterGPURequests, 2*st.Updates)
	if st.Cost.LockstepOps > 0 {
		rec.Observe(obs.MetricDivergentWarpFrac, 1-st.Cost.Flops/st.Cost.LockstepOps)
	}
}

// captureUpdater records SGDStep's component updates instead of applying
// them, so the simulator controls which writes land.
type captureUpdater struct {
	idx   []int
	delta []float64
}

func (c *captureUpdater) Add(_ []float64, i int, d float64) {
	c.idx = append(c.idx, i)
	c.delta = append(c.delta, d)
}

// RunEpoch implements Engine.
func (e *GPUHogwildEngine) RunEpoch(w []float64) float64 {
	if e.perm == nil {
		e.perm = make([]int, e.Data.N())
		for i := range e.perm {
			e.perm[i] = i
		}
	}
	e.rng.Shuffle(len(e.perm), func(i, j int) { e.perm[i], e.perm[j] = e.perm[j], e.perm[i] })
	scr := e.Model.NewScratch()
	capt := &captureUpdater{}
	fpe := 4
	if e.Model.Name() == "mlp" {
		fpe = 6 // forward + backward multiply-adds per touched weight
	}
	cfg := gpusim.AsyncConfig{
		Combine:         e.Combine,
		MaxWarps:        e.MaxWarps,
		FlopsPerElement: fpe,
		WarpPerExample:  e.WarpPerExample,
		ReadSupport: func(item int) int {
			return e.Model.GradSupport(e.Data, item)
		},
	}
	var cw *chaos.Worker
	if e.Chaos.Enabled() {
		cw = e.Chaos.StandaloneWorker(0)
		if e.Chaos.Plan.DropFrac > 0 {
			// Deterministic per-item drop decisions; the simulator still
			// charges the dropped lane's compute (see AsyncConfig.FaultDrop).
			// Duplication has no SIMT analogue — a duped fate applies once.
			cfg.FaultDrop = func(item int) bool {
				return cw.Fate() == chaos.FateDrop
			}
		}
	}
	if e.SharedMemory && int64(e.Model.NumParams())*8 <= e.Dev.Spec.SharedMemPerMP {
		e.stats = e.Dev.RunAsyncEpochShared(e.Model.NumParams(), e.perm, cfg,
			func(idx int) float64 { return w[idx] },
			func(item int, replica []float64, emit func(int, float64)) {
				capt.idx = capt.idx[:0]
				capt.delta = capt.delta[:0]
				e.Model.SGDStep(replica, e.Data, item, e.Step, capt, scr)
				for k, ix := range capt.idx {
					emit(ix, capt.delta[k])
				}
			},
			func(idx int, v float64) { w[idx] = v })
	} else {
		e.stats = e.Dev.RunAsyncEpoch(e.perm, cfg, func(item int, emit func(int, float64)) {
			capt.idx = capt.idx[:0]
			capt.delta = capt.delta[:0]
			e.Model.SGDStep(w, e.Data, item, e.Step, capt, scr)
			for k, ix := range capt.idx {
				emit(ix, capt.delta[k])
			}
		}, func(idx int, delta float64) {
			w[idx] += delta
		})
	}
	if e.CostScale > 0 && e.CostScale != 1 {
		e.stats.Cost = e.Dev.Rescale(e.stats.Cost, e.CostScale)
	}
	if cw != nil {
		// One straggling warp among the resident thousands barely moves
		// the kernel. The slowdown is modeled against the device's full
		// occupancy, not the dataset-scaled MaxWarps: modeled time is
		// paper-scale, where the straggler really is one warp of ~26k
		// threads. Stretch before recording so the phase split stays
		// consistent with the returned epoch seconds.
		mw := e.Dev.Spec.MaxResidentWarps()
		e.Chaos.Workers = mw
		e.stats.Cost.Seconds *= e.Chaos.Plan.AsyncSlowdown(mw)
		cw.Stream.Flush()
	}
	e.record(e.stats)
	e.Chaos.Drain(e.Rec)
	return e.stats.Cost.Seconds
}

var _ Engine = (*GPUHogwildEngine)(nil)
