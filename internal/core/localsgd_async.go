package core

import (
	"fmt"
	"math/rand"

	"repro/internal/chaos"
	"repro/internal/data"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/pool"
)

// AsyncLocalSGDEngine is asynchronous Local SGD: K replicas free-run over a
// dynamically claimed shuffle on private cache-line-aligned model copies
// while a timer worker averages them every ~H virtual time units and
// publishes the mean; each replica adopts the latest published average at
// its next step and continues from it. No replica ever blocks on the
// aggregation — the timer's reduce cost stays off the compute critical path,
// which is exactly the asymmetry against the barriered LocalSGDEngine that
// the chaos tests measure (a straggler delays only its own contribution, not
// the round).
//
// The whole epoch executes on a pool.Sequencer (a seeded virtual-time
// cooperative scheduler), so the racy-looking interleaving of replica steps
// and timer firings is a pure function of the shuffle seed: two runs with
// the same seed replay bitwise-identical loss curves, under the race
// detector, on any host. That determinism is per seed, not per engine — the
// regress harness still gates "local-async" on a quantile envelope because
// distinct seeds draw genuinely different schedules.
//
// Staleness accounting: at each timer firing the aggregator sums, over
// replicas, the local steps taken since the replica last adopted a published
// average (CounterLocalStalenessSum); the firing count is
// CounterLocalRounds. Larger H buys fewer reductions at more drift —
// the statistical half of the frontier cmd/epochbench sweeps.
type AsyncLocalSGDEngine struct {
	Model model.Model
	Data  *data.Dataset
	Step  float64
	// Replicas is K (clamped to the dataset size on first use).
	Replicas int
	// H is the aggregation interval in virtual work units: the timer fires
	// every H + ReduceUnits units, during which an unhindered replica takes
	// about that many unit-cost local steps.
	H int
	// ReduceUnits prices one timer aggregation; SecPerUnit converts the
	// virtual-time makespan to modeled seconds. Zero values take the
	// package defaults.
	ReduceUnits float64
	SecPerUnit  float64
	// Rec receives phase timings, update/round/staleness counters and
	// per-replica claim shares.
	Rec obs.Recorder
	// Pool dispatches the final (post-schedule) reduction (nil = shared
	// process pool); the epoch itself runs on a private Sequencer.
	Pool *pool.Pool
	// Chaos, when enabled, injects per-step fates and straggler costs into
	// the replica streams; a straggler simply claims fewer examples.
	Chaos *chaos.Controller

	rng        *rand.Rand
	perm       []int
	reps       [][]float64
	scrs       []model.Scratch
	caps       []captureUpdater
	pub        []float64
	stepsSince []int
	claims     []int64
	shares     []float64
	reduce     reduceTask
}

// NewAsyncLocalSGD builds the engine with the default cost model and a
// deterministic shuffle seed.
func NewAsyncLocalSGD(m model.Model, ds *data.Dataset, step float64, replicas, h int) *AsyncLocalSGDEngine {
	return &AsyncLocalSGDEngine{
		Model:       m,
		Data:        ds,
		Step:        step,
		Replicas:    replicas,
		H:           h,
		ReduceUnits: DefaultLocalReduceUnits,
		SecPerUnit:  DefaultLocalSecPerUnit,
		rng:         rand.New(rand.NewSource(99)),
	}
}

// Name implements Engine.
func (e *AsyncLocalSGDEngine) Name() string {
	return fmt.Sprintf("local-async/cpu-par(%d)h%d", e.Replicas, e.H)
}

// SetShuffleSeed implements Seeded.
func (e *AsyncLocalSGDEngine) SetShuffleSeed(seed int64) {
	e.rng = rand.New(rand.NewSource(seed))
}

// SetRecorder implements Instrumented.
func (e *AsyncLocalSGDEngine) SetRecorder(r obs.Recorder) { e.Rec = r }

// SetChaos implements ChaosHost.
func (e *AsyncLocalSGDEngine) SetChaos(c *chaos.Controller) { e.Chaos = c }

func (e *AsyncLocalSGDEngine) workerPool() *pool.Pool {
	if e.Pool != nil {
		return e.Pool
	}
	return pool.Default()
}

func (e *AsyncLocalSGDEngine) prepare() {
	if e.perm != nil {
		return
	}
	n := e.Data.N()
	if e.Replicas < 1 {
		e.Replicas = 1
	}
	if e.Replicas > n {
		e.Replicas = n
	}
	if e.H < 1 {
		e.H = 1
	}
	if e.ReduceUnits <= 0 {
		e.ReduceUnits = DefaultLocalReduceUnits
	}
	if e.SecPerUnit <= 0 {
		e.SecPerUnit = DefaultLocalSecPerUnit
	}
	e.perm = make([]int, n)
	for i := range e.perm {
		e.perm[i] = i
	}
	k := e.Replicas
	dim := e.Model.NumParams()
	e.reps = make([][]float64, k)
	e.scrs = make([]model.Scratch, k)
	e.caps = make([]captureUpdater, k)
	e.pub = model.AlignedVec(dim)
	e.stepsSince = make([]int, k)
	e.claims = make([]int64, k)
	e.shares = make([]float64, k)
	for r := 0; r < k; r++ {
		e.reps[r] = model.AlignedVec(dim)
	}
	for r := 0; r < k; r++ {
		e.scrs[r] = e.Model.NewScratch()
	}
}

// RunEpoch implements Engine: one pass over a fresh shuffle under the
// virtual-time schedule, aggregating on the timer. Returns the schedule
// makespan in modeled seconds.
func (e *AsyncLocalSGDEngine) RunEpoch(w []float64) float64 {
	e.prepare()
	n := len(e.perm)
	e.rng.Shuffle(n, func(i, j int) { e.perm[i], e.perm[j] = e.perm[j], e.perm[i] })
	// The scheduler's tie-break seed advances with the shuffle stream: each
	// epoch (and each harness seed) draws a fresh, replayable interleaving.
	seqSeed := e.rng.Int63()
	k := e.Replicas

	chaosOn := e.Chaos.Enabled() && e.Chaos.Plan.Active()
	var streams []*chaos.Stream
	if chaosOn {
		in := e.Chaos.Injector()
		streams = make([]*chaos.Stream, k)
		for r := 0; r < k; r++ {
			streams[r] = in.Worker(r)
		}
	}

	copy(e.pub, w)
	for r := 0; r < k; r++ {
		copy(e.reps[r], w)
		e.stepsSince[r] = 0
		e.claims[r] = 0
	}

	// All shared mutable state below (next, version, replicasDone, the
	// replica vectors, pub) is serialised by the Sequencer's resume/park
	// handshake: at most one worker body runs at any moment, with
	// happens-before edges between consecutive turns.
	next := 0
	version := 0
	replicasDone := 0
	rounds := 0
	var stalenessSum int64

	s := pool.NewSequencer(seqSeed)
	for r := 0; r < k; r++ {
		r := r
		s.Go(func(t *pool.Turn) {
			wr := e.reps[r]
			scr := e.scrs[r]
			capt := &e.caps[r]
			var stream *chaos.Stream
			if chaosOn {
				stream = streams[r]
			}
			basis := 0
			for {
				if basis < version {
					// Adopt the latest published average and continue from it.
					copy(wr, e.pub)
					basis = version
					e.stepsSince[r] = 0
				}
				if next >= n {
					break
				}
				i := e.perm[next]
				next++
				e.claims[r]++
				cost := 1.0
				fate := chaos.FateApply
				if stream != nil {
					fate = stream.Fate()
					cost = stream.Cost()
				}
				capt.idx = capt.idx[:0]
				capt.delta = capt.delta[:0]
				e.Model.SGDStep(wr, e.Data, i, e.Step, capt, scr)
				applyFate(fate, model.RawUpdater{}, wr, capt)
				e.stepsSince[r]++
				t.Tick(cost)
			}
			replicasDone++
		})
	}
	// The timer: fire every H + ReduceUnits virtual units, average the
	// replica vectors into the published model, bump the version. Replicas
	// never wait on it — they adopt the new average lazily at their next
	// step.
	s.Go(func(t *pool.Turn) {
		period := float64(e.H) + e.ReduceUnits
		for replicasDone < k {
			t.Tick(period)
			if replicasDone == k {
				break
			}
			for r := 0; r < k; r++ {
				stalenessSum += int64(e.stepsSince[r])
			}
			e.serialMeanInto(e.pub)
			version++
			rounds++
		}
	})
	s.Run()

	// Epoch result: the mean of the replica trajectories, folded with the
	// same component-parallel replica-ordered reduction the sync engine
	// uses (the schedule has ended; the pool is free).
	e.reduce = reduceTask{dst: w, reps: e.reps, wsum: float64(k)}
	p := e.workerPool()
	p.RunGrain(p.Size(), len(w), reduceGrain, &e.reduce)

	makespan := s.Makespan()
	sec := makespan * e.SecPerUnit
	e.record(n, rounds, stalenessSum, makespan, chaosOn, streams)
	return sec
}

// serialMeanInto folds the replica vectors into dst as a plain serial mean.
// It runs inside the aggregator's turn, where dispatching on the shared pool
// would interleave real goroutines with the sequenced schedule; at gate-scale
// dimensions the serial fold is cheap, and it is trivially the reduction the
// parallel reduceTask must match bitwise.
func (e *AsyncLocalSGDEngine) serialMeanInto(dst []float64) {
	k := float64(len(e.reps))
	for j := range dst {
		s := 0.0
		for _, r := range e.reps {
			s += r[j]
		}
		dst[j] = s / k
	}
}

// record emits the epoch's phases and counters: gradient = the balanced
// compute share, update = the timer's aggregation work, barrier = the
// remaining makespan (claim imbalance and straggler overhang).
func (e *AsyncLocalSGDEngine) record(n, rounds int, stalenessSum int64, makespan float64, chaosOn bool, streams []*chaos.Stream) {
	if chaosOn {
		for _, s := range streams {
			s.Flush()
		}
	}
	if e.Chaos.Enabled() {
		e.Chaos.Drain(e.Rec)
	}
	rec := obs.Or(e.Rec)
	if !obs.Enabled(rec) {
		return
	}
	grad := float64(n) / float64(e.Replicas) * e.SecPerUnit
	upd := float64(rounds) * e.ReduceUnits * e.SecPerUnit
	rec.Phase(obs.PhaseGradient, grad)
	rec.Phase(obs.PhaseUpdate, upd)
	if rest := makespan*e.SecPerUnit - grad - upd; rest > 0 {
		rec.Phase(obs.PhaseBarrier, rest)
	}
	rec.Add(obs.CounterWorkerUpdates, int64(n))
	rec.Add(obs.CounterLocalRounds, int64(rounds))
	rec.Add(obs.CounterLocalStalenessSum, stalenessSum)
	for r := 0; r < e.Replicas; r++ {
		e.shares[r] = float64(e.claims[r]) / float64(n)
		rec.Observe(obs.MetricWorkerShare, e.shares[r])
	}
}

var _ Engine = (*AsyncLocalSGDEngine)(nil)
var _ Seeded = (*AsyncLocalSGDEngine)(nil)
var _ Instrumented = (*AsyncLocalSGDEngine)(nil)
var _ ChaosHost = (*AsyncLocalSGDEngine)(nil)
