package core

import (
	"math"
	"testing"

	"repro/internal/model"
)

func TestQuantizedUpdaterRounds(t *testing.T) {
	w := []float64{0}
	model.QuantizedUpdater{FracBits: 8}.Add(w, 0, 0.1)
	// 0.1 * 256 = 25.6 -> 26/256.
	if got, want := w[0], 26.0/256; math.Abs(got-want) > 1e-15 {
		t.Fatalf("quantized add = %v, want %v", got, want)
	}
	// Sub-grid deltas are dropped entirely.
	w[0] = 0
	model.QuantizedUpdater{FracBits: 8}.Add(w, 0, 1e-6)
	if w[0] != 0 {
		t.Fatalf("sub-grid delta landed: %v", w[0])
	}
	// FracBits <= 0 behaves like RawUpdater.
	model.QuantizedUpdater{}.Add(w, 0, 0.1)
	if w[0] != 0.1 {
		t.Fatalf("unquantized add = %v", w[0])
	}
}

func TestQuantizedHogwildStillConverges(t *testing.T) {
	// Buckwild-style low precision must not break convergence on an easy
	// problem (it trades a slightly higher loss floor for cheaper
	// updates).
	ds, _ := smallDataset(t, "w8a", 600)
	m := model.NewLR(ds.D())
	e := NewHogwild(m, ds, 0.5, 1)
	e.Updater = model.QuantizedUpdater{FracBits: 16}
	w := m.InitParams(1)
	before := model.MeanLoss(m, w, ds)
	for ep := 0; ep < 40; ep++ {
		e.RunEpoch(w)
	}
	after := model.MeanLoss(m, w, ds)
	if after >= before-0.05 {
		t.Fatalf("quantized Hogwild made no progress: %v -> %v", before, after)
	}
}

func TestReplicatedHogwildConverges(t *testing.T) {
	ds, _ := smallDataset(t, "real-sim", 800)
	m := model.NewSVM(ds.D())
	e := NewReplicatedHogwild(m, ds, 0.5)
	w := m.InitParams(1)
	before := model.MeanLoss(m, w, ds)
	var sec float64
	for ep := 0; ep < 30; ep++ {
		sec += e.RunEpoch(w)
	}
	after := model.MeanLoss(m, w, ds)
	if after >= before {
		t.Fatalf("PerNode Hogwild made no progress: %v -> %v", before, after)
	}
	if sec <= 0 {
		t.Fatal("no modeled time")
	}
}

func TestReplicatedHogwildAvoidsCrossSocketPenalty(t *testing.T) {
	// On dense low-dimensional data the PerNode variant must iterate
	// faster than flat 56-thread Hogwild: each replica's conflicts stay
	// socket-local and each pass covers only a shard.
	ds, _ := smallDataset(t, "covtype", 1500)
	m := model.NewLR(ds.D())
	flat := NewHogwild(m, ds, 0.01, 56)
	per := NewReplicatedHogwild(m, ds, 0.01)
	w1 := m.InitParams(1)
	w2 := m.InitParams(1)
	tFlat := flat.RunEpoch(w1)
	tPer := per.RunEpoch(w2)
	if tPer >= tFlat {
		t.Fatalf("PerNode (%v) not faster than flat Hogwild (%v) on dense data", tPer, tFlat)
	}
}

func TestReplicatedHogwildName(t *testing.T) {
	ds, _ := smallDataset(t, "w8a", 200)
	e := NewReplicatedHogwild(model.NewLR(ds.D()), ds, 0.1)
	if e.Name() != "async/cpu-pernode(2x28)" {
		t.Fatalf("Name = %s", e.Name())
	}
}

func TestHogwildEmulatedMatchesThreadsSemantics(t *testing.T) {
	// The staleness emulation must process every example exactly once
	// per epoch and keep the model finite.
	ds, _ := smallDataset(t, "w8a", 500)
	m := model.NewLR(ds.D())
	e := NewHogwild(m, ds, 0.5, 56) // forced into emulation on small hosts
	w := m.InitParams(1)
	before := model.MeanLoss(m, w, ds)
	e.RunEpoch(w)
	after := model.MeanLoss(m, w, ds)
	if math.IsNaN(after) || after >= before {
		t.Fatalf("emulated epoch loss %v -> %v", before, after)
	}
}
