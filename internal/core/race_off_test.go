//go:build !race

package core

// raceDetectorEnabled reports whether this test binary was built with -race.
const raceDetectorEnabled = false
