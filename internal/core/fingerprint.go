package core

import (
	"fmt"
	"strings"
)

// Seeded is implemented by engines whose stochastic choices (the epoch
// shuffle order) derive from a reseedable stream. Reseeding two engines
// identically makes their trajectories comparable run-to-run: exactly
// reproducible on the sequential, emulated-staleness and simulated-GPU
// paths, and drawn from the same shuffle distribution when goroutines
// genuinely race.
type Seeded interface {
	// SetShuffleSeed reseeds the engine's stochastic stream.
	SetShuffleSeed(seed int64)
}

// Seed reseeds e if the engine supports it and reports whether it did.
// Engines without a stochastic stream (the synchronous full-batch engines,
// sequential Hogbatch) are deterministic already and return false.
func Seed(e Engine, seed int64) bool {
	if s, ok := e.(Seeded); ok {
		s.SetShuffleSeed(seed)
		return true
	}
	return false
}

// Fingerprint identifies one engine configuration for golden-run keying:
// the regression harness stores recorded convergence curves under
// Fingerprint.Key so that a golden can never be compared against a run with
// a different engine, model, dataset, scale, thread count or seed.
type Fingerprint struct {
	Engine  string // Engine.Name(), e.g. "sync/cpu-par(56)"
	Model   string // model.Model.Name(), e.g. "lr"
	Dataset string // dataset registry name, e.g. "w8a"
	N       int    // generated example count (the scaled size actually run)
	Threads int    // modeled thread count (0 when the axis does not apply)
	Seed    int64  // base seed of the run (init params + shuffle stream)
}

// String renders the fingerprint for humans and reports.
func (f Fingerprint) String() string {
	return fmt.Sprintf("%s %s/%s n=%d threads=%d seed=%d",
		f.Engine, f.Model, f.Dataset, f.N, f.Threads, f.Seed)
}

// Key returns a filesystem-safe identifier, stable across runs: lowercase
// with every run of non-alphanumeric characters collapsed to one dash.
func (f Fingerprint) Key() string {
	return fmt.Sprintf("%s_%s_%s-n%d_t%d_s%d",
		sanitizeKey(f.Engine), sanitizeKey(f.Model), sanitizeKey(f.Dataset),
		f.N, f.Threads, f.Seed)
}

// sanitizeKey lowercases s and collapses non-alphanumeric runs to a dash.
func sanitizeKey(s string) string {
	var b strings.Builder
	b.Grow(len(s))
	dash := false
	for _, r := range strings.ToLower(s) {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			b.WriteRune(r)
			dash = false
		default:
			if !dash && b.Len() > 0 {
				b.WriteByte('-')
				dash = true
			}
		}
	}
	return strings.TrimSuffix(b.String(), "-")
}
