//go:build race

package core

// raceDetectorEnabled reports whether this test binary was built with -race.
// Genuinely concurrent Hogwild over overlapping supports is racy by design
// (that asynchrony is the paper's subject), so tests that want real
// concurrency on shared components must skip under the detector and leave
// the -race coverage to the disjoint-support variants.
const raceDetectorEnabled = true
