package core

import (
	"math"
	"runtime"
	"sync"
	"testing"

	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/pool"
)

// forceProcs pins GOMAXPROCS so a Threads=n Hogwild engine actually takes
// the concurrent path on a small CI host (otherwise it falls back to the
// deterministic emulation, which ignores striping by design).
func forceProcs(t *testing.T, n int) {
	t.Helper()
	old := runtime.GOMAXPROCS(n)
	t.Cleanup(func() { runtime.GOMAXPROCS(old) })
}

// TestStripedSequentialMatchesUnstriped: with one thread the striped epoch
// applies exactly the same per-component sums as... not the unstriped one —
// updates inside a window land against a stale w, so the trajectories are
// intentionally different. What must hold: the striped run still converges,
// every update lands (none lost to the buffer), and the epoch is
// deterministic under a fixed seed.
func TestStripedSequentialDeterministic(t *testing.T) {
	ds, _ := smallDataset(t, "w8a", 300)
	run := func() []float64 {
		m := model.NewLR(ds.D())
		e := NewHogwild(m, ds, 0.3, 1)
		e.StripeWindow = 64
		e.SetShuffleSeed(17)
		w := m.InitParams(1)
		for ep := 0; ep < 3; ep++ {
			e.RunEpoch(w)
		}
		return w
	}
	a, b := run(), run()
	for j := range a {
		if a[j] != b[j] {
			t.Fatalf("striped sequential epoch not deterministic at w[%d]: %v vs %v", j, a[j], b[j])
		}
	}
}

func TestStripedHogwildConverges(t *testing.T) {
	forceProcs(t, 4)
	for _, threads := range []int{1, 4} {
		if threads > 1 && raceDetectorEnabled {
			// Concurrent Hogwild over overlapping supports mixes plain
			// gradient reads with concurrent component writes — racy by
			// design; the -race coverage of the striped concurrent path is
			// TestStripedConcurrentEpochRace on disjoint supports.
			continue
		}
		ds, _ := smallDataset(t, "rcv1", 400)
		m := model.NewLR(ds.D())
		e := NewHogwild(m, ds, 0.5, threads)
		e.Updater = model.AtomicUpdater{}
		e.StripeWindow = 128
		w := m.InitParams(1)
		before := model.MeanLoss(m, w, ds)
		for ep := 0; ep < 8; ep++ {
			e.RunEpoch(w)
		}
		after := model.MeanLoss(m, w, ds)
		if !(after < before*0.7) || math.IsNaN(after) {
			t.Errorf("threads=%d: striped Hogwild loss %v -> %v (no progress)", threads, before, after)
		}
		flushes, coalesced, applied := e.StripeCounters()
		if flushes == 0 || applied == 0 {
			t.Errorf("threads=%d: stripe counters silent: flushes=%d applied=%d", threads, flushes, applied)
		}
		if coalesced == 0 {
			t.Errorf("threads=%d: no coalescing on rcv1's hot columns", threads)
		}
	}
}

// TestStripedNoUpdateOutlivesEpoch: after RunEpoch returns, no updates are
// still buffered — every stripe buffer flushed its residue.
func TestStripedNoUpdateOutlivesEpoch(t *testing.T) {
	forceProcs(t, 4)
	ds := diagonalDataset(t, 200) // disjoint supports: -race-clean concurrency
	m := model.NewLR(ds.D())
	e := NewHogwild(m, ds, 0.3, 4)
	e.StripeWindow = 512 // bigger than any segment: residue flush does the work
	w := m.InitParams(1)
	e.RunEpoch(w)
	_, _, applied := e.StripeCounters()
	for _, sb := range e.stripes {
		if sb.Pending() != 0 {
			t.Fatalf("stripe buffer left %d pending updates after the epoch", sb.Pending())
		}
	}
	if applied == 0 {
		t.Fatal("no updates applied through the stripe buffers")
	}
}

// TestStripedCountersReachRecorder: the per-epoch stripe deltas land on the
// obs counters.
func TestStripedCountersReachRecorder(t *testing.T) {
	ds, _ := smallDataset(t, "w8a", 200)
	m := model.NewLR(ds.D())
	e := NewHogwild(m, ds, 0.3, 1)
	e.StripeWindow = 64
	w := m.InitParams(1)
	r := runInstrumented(t, e, w, 2)
	if r.Counter(obs.CounterStripeFlushes) == 0 {
		t.Error("stripe_flushes counter not recorded")
	}
	if r.Counter(obs.CounterStripeCoalesced) == 0 {
		t.Error("stripe_coalesced counter not recorded")
	}
	flushes, coalesced, _ := e.StripeCounters()
	if r.Counter(obs.CounterStripeFlushes) != flushes || r.Counter(obs.CounterStripeCoalesced) != coalesced {
		t.Errorf("recorded %d/%d != engine counters %d/%d",
			r.Counter(obs.CounterStripeFlushes), r.Counter(obs.CounterStripeCoalesced), flushes, coalesced)
	}
}

// TestStripedConcurrentEpochRace hammers the striped concurrent path under
// the race detector: repeated genuinely-concurrent epochs with 4 workers on
// a private pool, each segment owning its stripe buffer. The dataset has
// disjoint gradient supports (the established -race pattern here), so the
// detector's findings are about the striping machinery — buffer ownership,
// flush-before-barrier, counter reads between epochs — not the model
// vector's by-design Hogwild races. A second engine shares the pool to
// stress cross-engine dispatch interleaving.
func TestStripedConcurrentEpochRace(t *testing.T) {
	forceProcs(t, 4)
	ds := diagonalDataset(t, 400)
	p := pool.New(4)
	defer p.Close()
	newEngine := func() (*HogwildEngine, []float64) {
		m := model.NewLR(ds.D())
		e := NewHogwild(m, ds, 0.3, 4)
		e.Updater = &model.CountingAtomicUpdater{}
		e.StripeWindow = 32
		e.Pool = p
		return e, m.InitParams(1)
	}
	e1, w1 := newEngine()
	e2, w2 := newEngine()
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for ep := 0; ep < 5; ep++ {
			e1.RunEpoch(w1)
			e1.StripeCounters() // between-epoch counter read, the obs pattern
		}
	}()
	go func() {
		defer wg.Done()
		for ep := 0; ep < 5; ep++ {
			e2.RunEpoch(w2)
		}
	}()
	wg.Wait()
	for _, w := range [][]float64{w1, w2} {
		for j := range w {
			if math.IsNaN(w[j]) {
				t.Fatalf("w[%d] is NaN after striped concurrent epochs", j)
			}
		}
	}
	if _, _, applied := e1.StripeCounters(); applied == 0 {
		t.Fatal("striped concurrent epochs issued no updates")
	}
}

// TestStripedWithQuantizedUpdater: the stripe buffer composes with the
// Buckwild low-precision base — coalesced deltas land through the quantised
// grid, and the run stays finite.
func TestStripedWithQuantizedUpdater(t *testing.T) {
	ds, _ := smallDataset(t, "w8a", 200)
	m := model.NewLR(ds.D())
	e := NewHogwild(m, ds, 0.3, 1)
	e.Updater = model.NewStochasticQuantized(16, 5)
	e.StripeWindow = 64
	w := m.InitParams(1)
	before := model.MeanLoss(m, w, ds)
	for ep := 0; ep < 5; ep++ {
		e.RunEpoch(w)
	}
	after := model.MeanLoss(m, w, ds)
	if math.IsNaN(after) || after >= before {
		t.Errorf("striped+quantised loss %v -> %v", before, after)
	}
}
