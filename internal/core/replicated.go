package core

import (
	"fmt"

	"repro/internal/data"
	"repro/internal/model"
	"repro/internal/numa"
	"repro/internal/obs"
	"repro/internal/tensor"
)

// ReplicatedHogwildEngine is the DimmWitted "PerNode" variant the paper's
// CPU implementation builds on (Zhang & Ré, PVLDB 2014): each NUMA node
// keeps a private model replica updated Hogwild-style by that node's
// threads, and replicas are averaged at every epoch boundary. Replication
// trades statistical efficiency (staler cross-node information) for hardware
// efficiency (no cross-socket coherence traffic) — the ablation bench
// quantifies both sides.
type ReplicatedHogwildEngine struct {
	Model model.Model
	Data  *data.Dataset
	Step  float64
	// Replicas is the number of model copies (paper machine: 2 sockets).
	Replicas int
	// ThreadsPerReplica is the modeled thread count per node (28).
	ThreadsPerReplica int
	// Cost prices epochs; defaults to the paper machine.
	Cost *numa.Model
	// CostScale inflates modeled work to the full dataset (1 = none).
	CostScale float64
	// Rec receives phase timings: gradient = the slowest replica's Hogwild
	// pass, update = the replica-averaging reduction. The inner engines are
	// deliberately left dark to avoid double-counting their phases.
	Rec obs.Recorder

	inner []*HogwildEngine
	reps  [][]float64
}

// NewReplicatedHogwild builds the PerNode engine with the paper machine's
// topology (2 replicas x 28 threads).
func NewReplicatedHogwild(m model.Model, ds *data.Dataset, step float64) *ReplicatedHogwildEngine {
	return &ReplicatedHogwildEngine{
		Model: m, Data: ds, Step: step,
		Replicas: 2, ThreadsPerReplica: 28,
		Cost: numa.PaperMachine(),
	}
}

// Name implements Engine.
func (e *ReplicatedHogwildEngine) Name() string {
	return fmt.Sprintf("async/cpu-pernode(%dx%d)", e.Replicas, e.ThreadsPerReplica)
}

// RunEpoch implements Engine: every replica makes a Hogwild pass over its
// shard of the data, then the replicas are averaged into w (and re-seeded
// from the average).
func (e *ReplicatedHogwildEngine) RunEpoch(w []float64) float64 {
	if e.inner == nil {
		if e.Replicas < 1 {
			e.Replicas = 1
		}
		n := e.Data.N()
		shard := (n + e.Replicas - 1) / e.Replicas
		rows := make([]int, n)
		for i := range rows {
			rows[i] = i
		}
		for r := 0; r < e.Replicas; r++ {
			lo := r * shard
			if lo >= n {
				break
			}
			hi := lo + shard
			if hi > n {
				hi = n
			}
			sub := &data.Dataset{
				Name: e.Data.Name,
				X:    e.Data.X.SelectRows(rows[lo:hi]),
				Y:    e.Data.Y[lo:hi],
			}
			h := NewHogwild(e.Model, sub, e.Step, e.ThreadsPerReplica)
			h.CostScale = e.CostScale
			e.inner = append(e.inner, h)
			e.reps = append(e.reps, make([]float64, len(w)))
		}
	}
	// Replicas run concurrently on disjoint sockets: epoch time is the
	// slowest replica (they are near-identical shards), with no
	// cross-socket coherence because each replica is node-local.
	var worst float64
	for r, h := range e.inner {
		copy(e.reps[r], w)
		if sec := h.RunEpoch(e.reps[r]); sec > worst {
			worst = sec
		}
	}
	// Average the replicas into the shared model.
	for j := range w {
		w[j] = 0
	}
	inv := 1 / float64(len(e.inner))
	for _, rep := range e.reps {
		tensor.Axpy(inv, rep, w)
	}
	// Averaging itself is a cheap parallel reduction.
	avgCost := e.Cost.StreamTime(int64(len(w)*8), int64(len(w))*8*int64(len(e.inner)+1),
		float64(len(w)*len(e.inner)), e.Replicas*e.ThreadsPerReplica)
	rec := obs.Or(e.Rec)
	rec.Phase(obs.PhaseGradient, worst)
	rec.Phase(obs.PhaseUpdate, avgCost)
	rec.Add(obs.CounterWorkerUpdates, int64(e.Data.N()))
	return worst + avgCost
}

// SetRecorder implements Instrumented.
func (e *ReplicatedHogwildEngine) SetRecorder(r obs.Recorder) { e.Rec = r }

var _ Engine = (*ReplicatedHogwildEngine)(nil)
