package core

import (
	"testing"

	"repro/internal/linalg"
	"repro/internal/model"
)

func TestFingerprintKey(t *testing.T) {
	f := Fingerprint{
		Engine: "async/cpu-par(56)", Model: "lr", Dataset: "w8a",
		N: 400, Threads: 56, Seed: 3,
	}
	if got, want := f.Key(), "async-cpu-par-56_lr_w8a-n400_t56_s3"; got != want {
		t.Fatalf("Key() = %q, want %q", got, want)
	}
	// Keys must be filesystem-safe for any engine name.
	weird := Fingerprint{Engine: "Sync//GPU  (K80)!", Model: "svm", Dataset: "real-sim", N: 64}
	if got, want := weird.Key(), "sync-gpu-k80_svm_real-sim-n64_t0_s0"; got != want {
		t.Fatalf("Key() = %q, want %q", got, want)
	}
}

func TestSeedPlumbing(t *testing.T) {
	ds, _ := smallDataset(t, "w8a", 200)
	m := model.NewLR(ds.D())
	// Stochastic engines accept a seed...
	if !Seed(NewHogwild(m, ds, 0.5, 1), 42) {
		t.Fatal("HogwildEngine should be Seeded")
	}
	if !Seed(NewGPUHogwild(m, ds, 0.5), 42) {
		t.Fatal("GPUHogwildEngine should be Seeded")
	}
	// ...and the deterministic full-batch engine reports that it has none.
	if Seed(NewSync(linalg.NewCPU(1), m, ds, 0.5), 42) {
		t.Fatal("SyncEngine has no stochastic stream; Seed should report false")
	}
	// Seeding two engines identically replays identical trajectories.
	run := func() []float64 {
		e := NewHogwild(m, ds, 0.5, 1)
		Seed(e, 1234)
		w := m.InitParams(1)
		e.RunEpoch(w)
		return w
	}
	expectIdentical(t, "seeded-replay", run(), run())
}
