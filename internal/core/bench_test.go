package core

import (
	"runtime"
	"testing"

	"repro/internal/model"
	"repro/internal/pool"
)

// BenchmarkHogwildEmulatedEpoch measures the deterministic emulated
// asynchronous epoch (Threads far above the host core count forces it).
// The in-flight update ring makes its steady state allocation-free where
// the seed allocated two slices per model update.
func BenchmarkHogwildEmulatedEpoch(b *testing.B) {
	ds, _ := smallDataset(b, "w8a", 2000)
	m := model.NewLR(ds.D())
	e := NewHogwild(m, ds, 0.1, 1024)
	w := m.InitParams(1)
	e.RunEpoch(w) // warm perm, ring, scratch
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.RunEpoch(w)
	}
}

// BenchmarkHogwildConcurrentEpoch measures the real concurrent epoch on the
// pool with nnz-balanced segment chunking.
func BenchmarkHogwildConcurrentEpoch(b *testing.B) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	p := pool.New(4)
	defer p.Close()
	ds, _ := smallDataset(b, "w8a", 2000)
	m := model.NewLR(ds.D())
	e := NewHogwild(m, ds, 0.1, 4)
	e.Pool = p
	w := m.InitParams(1)
	e.RunEpoch(w)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.RunEpoch(w)
	}
}

// BenchmarkHogbatchSeqEpoch measures a sequential mini-batch epoch; with
// the backend-resident BatchScratch its steady state performs no
// per-batch allocations.
func BenchmarkHogbatchSeqEpoch(b *testing.B) {
	ds, _ := smallDataset(b, "w8a", 2000)
	m := model.NewLR(ds.D())
	e := NewHogbatch(m, ds, 0.1, HogbatchSeq)
	e.Batch = 256
	w := m.InitParams(1)
	e.RunEpoch(w)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.RunEpoch(w)
	}
}
