package core

import (
	"fmt"
	"math"
	"math/rand"
	"sync"

	"repro/internal/chaos"
	"repro/internal/data"
	"repro/internal/gpusim"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/pool"
)

// Heterogeneous co-training cost-model defaults, in the same abstract work
// units the Local-SGD family prices with: one CPU gradient step costs one
// unit; the GPU side is priced by the simulator's roofline in real seconds
// and converted through SecPerUnit for comparison.
const (
	// DefaultHeteroBatch is the dispatch granularity of the split: the
	// shuffled epoch is cut into batches of this many examples and each
	// batch is routed whole to one backend. One warp-width-sized batch is
	// small enough for the adaptive ratio to act within an epoch and large
	// enough that routing overhead is irrelevant.
	DefaultHeteroBatch = 32
	// DefaultHeteroMergeUnits prices the synchronous end-of-epoch merge —
	// folding K CPU replica vectors plus the GPU weight stream into a
	// weighted average and broadcasting it back. Priced like the Local-SGD
	// barrier reduction, which performs the same K+1-way fold.
	DefaultHeteroMergeUnits = DefaultLocalReduceUnits
	// DefaultHeteroBlendUnits prices one asynchronous apply-on-arrival
	// blend: a two-vector convex combination, much cheaper than the full
	// K+1-way fold, charged per completed batch in the async engine.
	DefaultHeteroBlendUnits = 8.0
	// DefaultHeteroMinShare bounds the adaptive ratio away from 0 and 1 so
	// a temporarily slow backend keeps receiving probe work and can win its
	// share back when it recovers.
	DefaultHeteroMinShare = 0.05
	// DefaultHeteroAlpha is the EWMA weight on the newest per-example time
	// observation. 0.5 converges within 2–3 epochs after a throughput step
	// (a straggler arriving or clearing) without oscillating on noise.
	DefaultHeteroAlpha = 0.5
	// DefaultHeteroStartShare is the deterministic initial GPU share; every
	// run starts 50/50 so golden curves are a pure function of the seed.
	DefaultHeteroStartShare = 0.5
)

// HeteroEngine is synchronous heterogeneous co-training (Ma & Rusu 2020): one
// epoch's shuffled batch stream is split between the real CPU worker pool
// (internal/pool, K private replicas stepping in parallel) and the simulated
// GPU (internal/gpusim, one kernel over the GPU's share), both running
// concurrently, and the two weight streams are merged once at the end of the
// epoch by a weighted average — each contribution weighted by the number of
// examples it absorbed, folded in fixed replica order (CPU replicas
// ascending, GPU last) so the parallel reduction is bitwise identical to a
// serial weighted mean.
//
// The split ratio adapts: after each epoch the engine folds the observed
// per-example wall time of each backend into an EWMA and sets the next
// epoch's GPU share to ewmaCPU/(ewmaCPU+ewmaGPU) — time-proportional
// allocation, the discrete analogue of the follow-up paper's throughput-
// proportional batch sizing. The start share is a deterministic constant, so
// for a fixed shuffle seed the whole trajectory (splits included) replays
// exactly; the regress harness gates "hetero-sync" on a 1e-9 golden curve.
//
// Chaos maps the GPU to injector worker 0 and CPU replica r to worker r+1,
// so the stock straggler/storm plans (which slow the first worker) model a
// straggling GPU: its kernel time stretches by the straggler factor, the
// EWMA sees it, and the split shifts toward the CPU within a bounded number
// of epochs (~2–3 at Alpha=0.5; asserted by the chaos tests). Fault
// granularity mirrors each backend's native semantics: GPU drop fates act
// per example inside the kernel (as in GPUHogwildEngine), CPU drop/dup fates
// act per replica-epoch on the merge weight (as in LocalSGDEngine's rounds).
// Staleness plans are a no-op here — within an epoch the backends never read
// each other's writes.
type HeteroEngine struct {
	Model model.Model
	Data  *data.Dataset
	Step  float64
	// CPUWorkers is K: the number of private CPU replicas stepping in
	// parallel (clamped to the dataset size on first use).
	CPUWorkers int
	// Dev is the simulated GPU; MaxWarps caps its resident warps (0 uses
	// OccupancyForN, as the pure-GPU engines do).
	Dev      *gpusim.Device
	MaxWarps int
	// Batch is the routing granularity in examples (0 = DefaultHeteroBatch).
	Batch int
	// FixedGPUShare pins the split (0 = all CPU, 1 = all GPU) and disables
	// adaptation — the static baseline the adaptive policy is gated
	// against, and the degenerate endpoints of the merge property test.
	// Negative (the constructor's default) means adaptive.
	FixedGPUShare float64
	// MinShare, Alpha tune the adaptive estimator (0 = package defaults).
	MinShare float64
	Alpha    float64
	// GPUStretch multiplies the modeled GPU epoch time — a chaos-free
	// throughput-skew knob for the epochbench split sweep (0 or 1 = none).
	GPUStretch float64
	// MergeUnits prices the end-of-epoch merge; SecPerUnit converts units
	// to modeled seconds. Zero values take the package defaults.
	MergeUnits float64
	SecPerUnit float64
	// Rec receives the phase split (gradient = the overlapped backend
	// compute, barrier = the slack the faster backend waits, update = the
	// merge), the hetero batch counters, and the realised GPU share.
	Rec obs.Recorder
	// Pool overrides the dispatch pool (nil = the shared process pool).
	Pool *pool.Pool
	// Chaos, when enabled, injects backend faults (see type docs).
	Chaos *chaos.Controller

	rng      *rand.Rand
	perm     []int
	cpuItems []int
	gpuItems []int
	cb       []int       // CPU replica bounds over cpuItems (contiguous, equal±1)
	reps     [][]float64 // private CPU replica vectors, 64B-aligned
	scrs     []model.Scratch
	wGPU     []float64 // the GPU's private weight stream
	gpuScr   model.Scratch
	capt     captureUpdater
	merge    [][]float64 // reps..., wGPU — fixed fold order
	wgt      []float64
	streams  []*chaos.Stream // 0 = GPU, 1..K = CPU replicas
	stats    gpusim.AsyncStats

	share    float64 // next epoch's target GPU share (adaptive state)
	ewmaCPU  float64 // smoothed per-example seconds, CPU backend
	ewmaGPU  float64 // smoothed per-example seconds, GPU backend
	lastCPUB int     // last epoch's realised batch split, for tests/bench
	lastGPUB int

	stepT  heteroStepTask
	reduce reduceTask
	bcast  broadcastTask
}

// NewHetero builds the adaptive engine on the K80 with scaled occupancy, the
// default cost model, and a deterministic shuffle seed.
func NewHetero(m model.Model, ds *data.Dataset, step float64, cpuWorkers int) *HeteroEngine {
	dev := gpusim.K80()
	return &HeteroEngine{
		Model:         m,
		Data:          ds,
		Step:          step,
		CPUWorkers:    cpuWorkers,
		Dev:           dev,
		MaxWarps:      OccupancyForN(dev, ds.N()),
		FixedGPUShare: -1,
		rng:           rand.New(rand.NewSource(99)),
	}
}

// Name implements Engine.
func (e *HeteroEngine) Name() string {
	return fmt.Sprintf("hetero-sync/cpu+gpu(%d)", e.CPUWorkers)
}

// SetShuffleSeed implements Seeded. It also resets the adaptive estimator so
// every seeded run starts from the same deterministic 50/50 split.
func (e *HeteroEngine) SetShuffleSeed(seed int64) {
	e.rng = rand.New(rand.NewSource(seed))
	e.share = DefaultHeteroStartShare
	e.ewmaCPU, e.ewmaGPU = 0, 0
}

// SetRecorder implements Instrumented.
func (e *HeteroEngine) SetRecorder(r obs.Recorder) { e.Rec = r }

// SetChaos implements ChaosHost.
func (e *HeteroEngine) SetChaos(c *chaos.Controller) { e.Chaos = c }

// GPUShare returns the adaptive estimator's current target GPU share.
// The clamp keeps a live share strictly positive, so zero means "not yet
// initialised" and reads as the deterministic start share.
func (e *HeteroEngine) GPUShare() float64 {
	if e.share == 0 {
		return DefaultHeteroStartShare
	}
	return e.share
}

// LastSplit returns the realised batch split of the most recent epoch.
func (e *HeteroEngine) LastSplit() (cpuBatches, gpuBatches int) {
	return e.lastCPUB, e.lastGPUB
}

// LastStats returns the GPU simulator statistics of the most recent epoch.
func (e *HeteroEngine) LastStats() gpusim.AsyncStats { return e.stats }

func (e *HeteroEngine) workerPool() *pool.Pool {
	if e.Pool != nil {
		return e.Pool
	}
	return pool.Default()
}

func (e *HeteroEngine) prepare() {
	if e.perm != nil {
		return
	}
	n := e.Data.N()
	if e.CPUWorkers < 1 {
		e.CPUWorkers = 1
	}
	if e.CPUWorkers > n {
		e.CPUWorkers = n
	}
	if e.Batch < 1 {
		e.Batch = DefaultHeteroBatch
	}
	if e.MinShare <= 0 {
		e.MinShare = DefaultHeteroMinShare
	}
	if e.Alpha <= 0 {
		e.Alpha = DefaultHeteroAlpha
	}
	if e.GPUStretch <= 0 {
		e.GPUStretch = 1
	}
	if e.MergeUnits <= 0 {
		e.MergeUnits = DefaultHeteroMergeUnits
	}
	if e.SecPerUnit <= 0 {
		e.SecPerUnit = DefaultLocalSecPerUnit
	}
	if e.MaxWarps <= 0 {
		e.MaxWarps = OccupancyForN(e.Dev, n)
	}
	if e.share == 0 {
		e.share = DefaultHeteroStartShare
	}
	e.perm = make([]int, n)
	for i := range e.perm {
		e.perm[i] = i
	}
	k := e.CPUWorkers
	dim := e.Model.NumParams()
	e.cpuItems = make([]int, 0, n)
	e.gpuItems = make([]int, 0, n)
	e.cb = make([]int, k+1)
	e.reps = make([][]float64, k)
	e.scrs = make([]model.Scratch, k)
	for r := 0; r < k; r++ {
		e.reps[r] = model.AlignedVec(dim)
		e.scrs[r] = e.Model.NewScratch()
	}
	e.wGPU = model.AlignedVec(dim)
	e.gpuScr = e.Model.NewScratch()
	e.merge = make([][]float64, k+1)
	copy(e.merge, e.reps)
	e.merge[k] = e.wGPU
	e.wgt = make([]float64, k+1)
	e.streams = make([]*chaos.Stream, k+1)
}

// targetShare is the GPU share the next split executes at.
func (e *HeteroEngine) targetShare() float64 {
	if e.FixedGPUShare >= 0 {
		return e.FixedGPUShare
	}
	return e.share
}

// gpuBatchCount rounds the share to a batch count. In adaptive mode both
// backends keep at least one batch (the estimator needs fresh observations
// from each to ever reverse a shift); a pinned share may take the degenerate
// all-CPU / all-GPU endpoints.
func (e *HeteroEngine) gpuBatchCount(share float64, nb int) int {
	g := int(math.Round(share * float64(nb)))
	if g < 0 {
		g = 0
	}
	if g > nb {
		g = nb
	}
	if e.FixedGPUShare < 0 && nb >= 2 {
		if g < 1 {
			g = 1
		}
		if g > nb-1 {
			g = nb - 1
		}
	}
	return g
}

// split routes the epoch's shuffled batches: of nb batches, gb go to the GPU,
// spread evenly through the stream (batch b is a GPU batch iff the scaled
// index (b+1)*gb/nb advances), so both backends sample the whole shuffle
// rather than a prefix. CPU items are then sharded contiguously over the K
// replicas, lengths differing by at most one.
func (e *HeteroEngine) split(n, nb, gb int) {
	e.cpuItems = e.cpuItems[:0]
	e.gpuItems = e.gpuItems[:0]
	for b := 0; b < nb; b++ {
		lo := b * e.Batch
		hi := lo + e.Batch
		if hi > n {
			hi = n
		}
		if (b+1)*gb/nb > b*gb/nb {
			e.gpuItems = append(e.gpuItems, e.perm[lo:hi]...)
		} else {
			e.cpuItems = append(e.cpuItems, e.perm[lo:hi]...)
		}
	}
	k := e.CPUWorkers
	cn := len(e.cpuItems)
	for r := 0; r <= k; r++ {
		e.cb[r] = r * cn / k
	}
}

// RunEpoch implements Engine: split a fresh shuffle by the current target
// ratio, run both backends concurrently, merge the weight streams, and fold
// the observed backend times into the adaptive estimator.
func (e *HeteroEngine) RunEpoch(w []float64) float64 {
	e.prepare()
	n := len(e.perm)
	e.rng.Shuffle(n, func(i, j int) { e.perm[i], e.perm[j] = e.perm[j], e.perm[i] })
	k := e.CPUWorkers
	p := e.workerPool()

	chaosOn := e.Chaos.Enabled() && e.Chaos.Plan.Active()
	if chaosOn {
		in := e.Chaos.Injector()
		for i := range e.streams {
			e.streams[i] = in.Worker(i)
		}
	}

	nb := (n + e.Batch - 1) / e.Batch
	gb := e.gpuBatchCount(e.targetShare(), nb)
	e.split(n, nb, gb)
	e.lastGPUB = gb
	e.lastCPUB = nb - gb
	gpuN := len(e.gpuItems)
	cpuN := len(e.cpuItems)

	// Both backends start the epoch from the published model.
	e.bcast = broadcastTask{src: w, reps: e.reps}
	p.Run(k, k, &e.bcast)
	copy(e.wGPU, w)

	// GPU pass: one kernel over the GPU's share of the shuffle, into the
	// private GPU weight stream. It runs on its own goroutine, overlapped
	// with the CPU pass below; the two touch disjoint vectors, so the
	// overlap cannot perturb either result.
	var gpuSec float64
	var wg sync.WaitGroup
	if gpuN > 0 {
		fpe := 4
		if e.Model.Name() == "mlp" {
			fpe = 6
		}
		cfg := gpusim.AsyncConfig{
			MaxWarps:        e.MaxWarps,
			FlopsPerElement: fpe,
			ReadSupport: func(item int) int {
				return e.Model.GradSupport(e.Data, item)
			},
		}
		if chaosOn && e.Chaos.Plan.DropFrac > 0 {
			gs := e.streams[0]
			cfg.FaultDrop = func(item int) bool {
				return gs.Fate() == chaos.FateDrop
			}
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			capt := &e.capt
			e.stats = e.Dev.RunAsyncEpoch(e.gpuItems, cfg, func(item int, emit func(int, float64)) {
				capt.idx = capt.idx[:0]
				capt.delta = capt.delta[:0]
				e.Model.SGDStep(e.wGPU, e.Data, item, e.Step, capt, e.gpuScr)
				for kk, ix := range capt.idx {
					emit(ix, capt.delta[kk])
				}
			}, func(idx int, delta float64) {
				e.wGPU[idx] += delta
			})
			gpuSec = e.stats.Cost.Seconds
		}()
	}

	// CPU pass: K replicas step their contiguous shard of the CPU items on
	// private vectors, dispatched on the pool (the caller helps).
	if cpuN > 0 {
		e.stepT = heteroStepTask{e: e}
		p.Run(k, k, &e.stepT)
	}
	wg.Wait()

	// Price the two sides. The GPU straggler factor stretches the whole
	// kernel time, launch included, exactly as GPUHogwildEngine models it;
	// GPUStretch is the bench harness's chaos-free skew on top.
	gpuSec *= e.GPUStretch
	if chaosOn && gpuN > 0 {
		gpuSec *= e.streams[0].Cost()
	}
	cpuUnits := 0.0
	for r := 0; r < k; r++ {
		items := float64(e.cb[r+1] - e.cb[r])
		cost := 1.0
		if chaosOn && items > 0 {
			cost = e.streams[r+1].Cost()
		}
		if u := items * cost; u > cpuUnits {
			cpuUnits = u
		}
	}
	cpuSec := cpuUnits * e.SecPerUnit

	// Merge weights: each contribution counts its examples; CPU fates act
	// here (a dropped replica-epoch loses its weight, a duplicated one
	// doubles it). GPU drops already acted per example inside the kernel.
	for r := 0; r < k; r++ {
		items := float64(e.cb[r+1] - e.cb[r])
		e.wgt[r] = items
		if chaosOn && items > 0 {
			switch e.streams[r+1].Fate() {
			case chaos.FateDrop:
				e.wgt[r] = 0
			case chaos.FateDup:
				e.wgt[r] = 2 * items
			}
		}
	}
	e.wgt[k] = float64(gpuN)
	wsum := 0.0
	for _, v := range e.wgt {
		wsum += v
	}
	mergeSec := 0.0
	merged := false
	if wsum > 0 {
		e.reduce = reduceTask{dst: w, reps: e.merge, wgt: e.wgt, wsum: wsum}
		p.RunGrain(p.Size(), len(w), reduceGrain, &e.reduce)
		mergeSec = e.MergeUnits * e.SecPerUnit
		merged = true
	}

	// Fold the observed per-example times into the estimator and set the
	// next epoch's share by time-proportional allocation.
	if e.FixedGPUShare < 0 {
		if cpuN > 0 {
			e.ewmaCPU = ewma(e.ewmaCPU, cpuSec/float64(cpuN), e.Alpha)
		}
		if gpuN > 0 {
			e.ewmaGPU = ewma(e.ewmaGPU, gpuSec/float64(gpuN), e.Alpha)
		}
		if e.ewmaCPU > 0 && e.ewmaGPU > 0 {
			s := e.ewmaCPU / (e.ewmaCPU + e.ewmaGPU)
			e.share = clampShare(s, e.MinShare)
		}
	}

	e.record(n, gpuN, cpuSec, gpuSec, mergeSec, merged, chaosOn)
	return math.Max(cpuSec, gpuSec) + mergeSec
}

// ewma folds one observation in; the first observation seeds the state.
func ewma(prev, obs, alpha float64) float64 {
	if prev == 0 {
		return obs
	}
	return alpha*obs + (1-alpha)*prev
}

// clampShare bounds a share to [min, 1-min].
func clampShare(s, min float64) float64 {
	if s < min {
		return min
	}
	if s > 1-min {
		return 1 - min
	}
	return s
}

// record emits the epoch's phase decomposition and counters: gradient is the
// overlapped compute (both backends busy), barrier is the slack the faster
// backend spends waiting for the slower, update is the merge. The three sum
// exactly to the returned epoch seconds.
func (e *HeteroEngine) record(n, gpuN int, cpuSec, gpuSec, mergeSec float64, merged, chaosOn bool) {
	if chaosOn {
		for _, s := range e.streams {
			if s != nil {
				s.Flush()
			}
		}
	}
	if e.Chaos.Enabled() {
		e.Chaos.Drain(e.Rec)
	}
	rec := obs.Or(e.Rec)
	if !obs.Enabled(rec) {
		return
	}
	overlap := math.Min(cpuSec, gpuSec)
	slack := math.Max(cpuSec, gpuSec) - overlap
	rec.Phase(obs.PhaseGradient, overlap)
	rec.Phase(obs.PhaseBarrier, slack)
	rec.Phase(obs.PhaseUpdate, mergeSec)
	rec.Add(obs.CounterWorkerUpdates, int64(n))
	rec.Add(obs.CounterHeteroCPUBatches, int64(e.lastCPUB))
	rec.Add(obs.CounterHeteroGPUBatches, int64(e.lastGPUB))
	if merged {
		rec.Add(obs.CounterHeteroMerges, 1)
	}
	rec.Observe(obs.MetricHeteroGPUShare, float64(gpuN)/float64(n))
}

// heteroStepTask runs CPU replicas [lo, hi) over their contiguous shard of
// the epoch's CPU items. Replica r reads and writes only reps[r]/scrs[r].
type heteroStepTask struct {
	e *HeteroEngine
}

func (t *heteroStepTask) Run(lo, hi int) {
	e := t.e
	for r := lo; r < hi; r++ {
		wr := e.reps[r]
		scr := e.scrs[r]
		for _, i := range e.cpuItems[e.cb[r]:e.cb[r+1]] {
			e.Model.SGDStep(wr, e.Data, i, e.Step, model.RawUpdater{}, scr)
		}
	}
}

var _ Engine = (*HeteroEngine)(nil)
var _ Seeded = (*HeteroEngine)(nil)
var _ Instrumented = (*HeteroEngine)(nil)
var _ ChaosHost = (*HeteroEngine)(nil)
