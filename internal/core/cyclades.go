package core

import (
	"fmt"
	"math/rand"

	"repro/internal/chaos"
	"repro/internal/data"
	"repro/internal/model"
	"repro/internal/numa"
	"repro/internal/obs"
)

// CycladesEngine implements conflict-free asynchronous SGD in the spirit of
// Cyclades (Pan et al., NIPS 2016), which the paper cites as the
// alternative to Hogwild's races: examples are greedily packed into batches
// whose gradient supports are pairwise disjoint, so each batch's updates can
// run on any number of threads with *no* write conflicts and therefore
// sequential-equivalent statistical efficiency. The price is scheduling work
// and shorter parallel phases (a batch ends when no conflict-free example
// remains).
//
// On sparse data the batches are long and the engine approaches Hogwild's
// hardware efficiency without its staleness; on dense data every pair of
// examples conflicts, batches degenerate to singletons and the engine
// degenerates to sequential SGD — the same data-dependence the paper's
// exploratory axes are about.
type CycladesEngine struct {
	Model model.Model
	Data  *data.Dataset
	Step  float64
	// Threads is the modeled worker count executing each batch.
	Threads int
	// Cost prices epochs; defaults to the paper machine.
	Cost *numa.Model
	// CostScale inflates modeled work to the full dataset (1 = none).
	CostScale float64
	// Rec receives phase timings (gradient = conflict-free parallel work,
	// barrier = per-batch synchronisation) and the batch/update counts.
	Rec obs.Recorder
	// Chaos, when enabled, lands each example's update under an injector
	// fate and stretches the epoch by the *synchronous* slowdown: every
	// conflict-free batch ends in a barrier, so a straggler stalls all of
	// them — Cyclades buys determinism at the price of sync-style
	// fragility, the trade-off the degradation report makes visible.
	Chaos *chaos.Controller

	rng     *rand.Rand
	batches [][]int // conflict-free example batches (computed once)
	stats   CycladesStats
}

// CycladesStats reports the scheduling outcome.
type CycladesStats struct {
	Batches      int
	MeanBatchLen float64
	MaxBatchLen  int
	// SingletonFrac is the fraction of batches with a single example
	// (fully serialised work).
	SingletonFrac float64
}

// NewCyclades builds the engine with the paper machine's thread count.
func NewCyclades(m model.Model, ds *data.Dataset, step float64, threads int) *CycladesEngine {
	return &CycladesEngine{
		Model: m, Data: ds, Step: step, Threads: threads,
		Cost: numa.PaperMachine(),
		rng:  rand.New(rand.NewSource(99)),
	}
}

// Name implements Engine.
func (e *CycladesEngine) Name() string {
	return fmt.Sprintf("async/cpu-cyclades(%d)", e.Threads)
}

// Stats returns the scheduling statistics (valid after the first epoch).
func (e *CycladesEngine) Stats() CycladesStats { return e.stats }

// schedule greedily packs a random permutation of the examples into batches
// with pairwise-disjoint model supports. For LR/SVM the support of example i
// is the column set of row i; models whose gradients always touch shared
// dense blocks (MLP upper layers) conflict on every pair, which the greedy
// packing discovers by itself through the support test.
func (e *CycladesEngine) schedule() {
	n := e.Data.N()
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	e.rng.Shuffle(n, func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })

	dim := e.Model.NumParams()
	// claimed[j] == round means component j is already written in the
	// batch being built during that round.
	claimed := make([]int32, dim)
	for j := range claimed {
		claimed[j] = -1
	}
	pending := perm
	var next []int
	round := int32(0)
	var totalLen, singles int
	for len(pending) > 0 {
		batch := make([]int, 0, len(pending))
		next = next[:0]
		for _, i := range pending {
			if e.tryClaim(i, round, claimed) {
				batch = append(batch, i)
			} else {
				next = append(next, i)
			}
		}
		e.batches = append(e.batches, batch)
		totalLen += len(batch)
		if len(batch) == 1 {
			singles++
		}
		if len(batch) > e.stats.MaxBatchLen {
			e.stats.MaxBatchLen = len(batch)
		}
		pending = append([]int(nil), next...)
		round++
	}
	e.stats.Batches = len(e.batches)
	e.stats.MeanBatchLen = float64(totalLen) / float64(len(e.batches))
	e.stats.SingletonFrac = float64(singles) / float64(len(e.batches))
}

// tryClaim marks example i's support for the given round; it fails (and
// rolls back nothing, by the single-pass marking discipline) if any
// component was already claimed this round.
func (e *CycladesEngine) tryClaim(i int, round int32, claimed []int32) bool {
	// First pass: check.
	conflict := false
	e.supportWalk(i, func(idx int) bool {
		if claimed[idx] == round {
			conflict = true
			return false
		}
		return true
	})
	if conflict {
		return false
	}
	// Second pass: claim.
	e.supportWalk(i, func(idx int) bool {
		claimed[idx] = round
		return true
	})
	return true
}

// supportWalk visits the model components example i's gradient can write.
// For the linear models that is the row support; for anything else (MLP,
// MF) it asks the model for a conservative probe via SGDStep capture with a
// zero step — cheap because gradients are not applied.
func (e *CycladesEngine) supportWalk(i int, visit func(idx int) bool) {
	if e.Model.Name() == "lr" || e.Model.Name() == "svm" {
		cols, _ := e.Data.X.Row(i)
		for _, c := range cols {
			if !visit(int(c)) {
				return
			}
		}
		return
	}
	probe := &supportProbe{visit: visit}
	scr := e.Model.NewScratch()
	w := probeParams(e.Model)
	e.Model.SGDStep(w, e.Data, i, 0, probe, scr)
}

// supportProbe records touched indices through the Updater interface.
type supportProbe struct {
	visit func(idx int) bool
	done  bool
}

// Add implements model.Updater; deltas are ignored (step 0).
func (p *supportProbe) Add(_ []float64, i int, _ float64) {
	if p.done {
		return
	}
	if !p.visit(i) {
		p.done = true
	}
}

// probeParams returns a zero parameter vector for support probing.
func probeParams(m model.Model) []float64 { return make([]float64, m.NumParams()) }

// SetRecorder implements Instrumented.
func (e *CycladesEngine) SetRecorder(r obs.Recorder) { e.Rec = r }

// SetChaos implements ChaosHost.
func (e *CycladesEngine) SetChaos(c *chaos.Controller) { e.Chaos = c }

// RunEpoch implements Engine: batches execute in order; inside a batch the
// updates are conflict-free, so parallel execution is bitwise equal to
// sequential — we run it sequentially and price it at Threads-way
// parallelism bounded by the batch length.
func (e *CycladesEngine) RunEpoch(w []float64) float64 {
	if e.batches == nil {
		e.schedule()
	}
	scr := e.Model.NewScratch()
	if e.Chaos.Enabled() {
		cw := e.Chaos.StandaloneWorker(0)
		capt := &captureUpdater{}
		for _, batch := range e.batches {
			for _, i := range batch {
				capt.idx = capt.idx[:0]
				capt.delta = capt.delta[:0]
				e.Model.SGDStep(cw.View(w), e.Data, i, e.Step, capt, scr)
				applyFate(cw.Fate(), model.RawUpdater{}, w, capt)
				cw.Step()
			}
		}
		cw.Stream.Flush()
	} else {
		for _, batch := range e.batches {
			for _, i := range batch {
				e.Model.SGDStep(w, e.Data, i, e.Step, model.RawUpdater{}, scr)
			}
		}
	}
	base, barriers := e.epochCost()
	if e.Chaos.Enabled() {
		// Per-batch barriers wait for the straggler's static share: the
		// whole epoch stretches by the synchronous factor, charged to the
		// barrier phase.
		barriers += (e.Chaos.Plan.SyncSlowdown() - 1) * (base + barriers)
	}
	rec := obs.Or(e.Rec)
	rec.Phase(obs.PhaseGradient, base)
	rec.Phase(obs.PhaseBarrier, barriers)
	rec.Add(obs.CounterBatches, int64(len(e.batches)))
	rec.Add(obs.CounterWorkerUpdates, int64(e.Data.N()))
	e.Chaos.Drain(e.Rec)
	return base + barriers
}

// epochCost prices the epoch: per batch, work parallelises over
// min(Threads, batch length) threads with no coherence penalty (that is the
// whole point), plus a per-batch barrier; the two parts are returned
// separately for phase attribution and sum to the epoch seconds.
func (e *CycladesEngine) epochCost() (base, barriers float64) {
	scale := e.CostScale
	if scale <= 0 {
		scale = 1
	}
	n := float64(e.Data.N()) * scale
	var avgSupport float64
	for i := 0; i < e.Data.N(); i++ {
		avgSupport += float64(e.Model.GradSupport(e.Data, i))
	}
	avgSupport /= float64(e.Data.N())
	flops := n * avgSupport * 4
	bytes := n*avgSupport*8*2 + float64(e.Data.X.SparseBytes())*scale
	ws := e.Data.X.SparseBytes() + int64(e.Model.NumParams()*8)

	// Effective parallelism is capped by the mean batch length.
	par := float64(e.Threads)
	if e.stats.MeanBatchLen < par {
		par = e.stats.MeanBatchLen
	}
	if par < 1 {
		par = 1
	}
	base = e.Cost.StreamTime(ws, int64(bytes), flops, int(par))
	// Barrier per batch (threads synchronise): ~2us each at paper scale.
	barriers = float64(e.stats.Batches) * scale * 2e-6
	return base, barriers
}

var _ Engine = (*CycladesEngine)(nil)
