package obs

import (
	"fmt"
	"io"
	"sync"
)

// Level is a logging severity.
type Level int8

// Levels from chattiest to quietest.
const (
	// LevelDebug is per-step progress (the harness's -v output).
	LevelDebug Level = iota
	// LevelInfo is run-level milestones.
	LevelInfo
	// LevelWarn is recoverable anomalies.
	LevelWarn
	// LevelError is failures worth surfacing even in quiet runs.
	LevelError
)

// String names the level.
func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "debug"
	case LevelInfo:
		return "info"
	case LevelWarn:
		return "warn"
	default:
		return "error"
	}
}

// Logger is a minimal leveled logger: messages below the configured level
// are dropped. A nil Logger and a nil writer both discard everything, so
// callers never need nil checks.
type Logger struct {
	mu    sync.Mutex
	w     io.Writer
	level Level
}

// NewLogger writes messages at or above level to w (nil w = discard).
func NewLogger(w io.Writer, level Level) *Logger {
	return &Logger{w: w, level: level}
}

// Enabled reports whether messages at lv would be emitted.
func (l *Logger) Enabled(lv Level) bool {
	return l != nil && l.w != nil && lv >= l.level
}

// logf emits one formatted message if lv passes the filter. Messages are
// emitted verbatim (no timestamp or level prefix): the harness writes
// "#"-prefixed progress lines interleaved with result tables, and decorating
// them would break the existing output contract.
func (l *Logger) logf(lv Level, format string, args ...any) {
	if !l.Enabled(lv) {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	fmt.Fprintf(l.w, format, args...)
}

// Debugf logs at LevelDebug.
func (l *Logger) Debugf(format string, args ...any) { l.logf(LevelDebug, format, args...) }

// Infof logs at LevelInfo.
func (l *Logger) Infof(format string, args ...any) { l.logf(LevelInfo, format, args...) }

// Warnf logs at LevelWarn.
func (l *Logger) Warnf(format string, args ...any) { l.logf(LevelWarn, format, args...) }

// Errorf logs at LevelError.
func (l *Logger) Errorf(format string, args ...any) { l.logf(LevelError, format, args...) }
