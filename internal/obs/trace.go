package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
)

// Dist summarises the samples of one distribution metric within an epoch.
type Dist struct {
	Count int64   `json:"count"`
	Sum   float64 `json:"sum"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
}

// observe folds one sample into the distribution.
func (d *Dist) observe(v float64) {
	if d.Count == 0 || v < d.Min {
		d.Min = v
	}
	if d.Count == 0 || v > d.Max {
		d.Max = v
	}
	d.Count++
	d.Sum += v
}

// merge folds another distribution into d.
func (d *Dist) merge(o Dist) {
	if o.Count == 0 {
		return
	}
	if d.Count == 0 || o.Min < d.Min {
		d.Min = o.Min
	}
	if d.Count == 0 || o.Max > d.Max {
		d.Max = o.Max
	}
	d.Count += o.Count
	d.Sum += o.Sum
}

// Mean returns the sample mean (0 for an empty distribution).
func (d Dist) Mean() float64 {
	if d.Count == 0 {
		return 0
	}
	return d.Sum / float64(d.Count)
}

// Event is the JSONL trace schema: one object per (engine, dataset, epoch).
// Seconds is the engine's reported modeled epoch time; the phase map holds
// seconds per phase (gradient+update+barrier sum to Seconds, loss_eval is
// excluded); counters and observations carry the epoch's typed counters and
// sampled distributions. Maps omit empty sections to keep traces compact.
type Event struct {
	Engine       string             `json:"engine"`
	Dataset      string             `json:"dataset"`
	Epoch        int                `json:"epoch"`
	Seconds      float64            `json:"seconds"`
	Phases       map[string]float64 `json:"phases,omitempty"`
	Counters     map[string]int64   `json:"counters,omitempty"`
	Observations map[string]Dist    `json:"observations,omitempty"`
}

// TraceWriter streams epoch events as JSON Lines. It is safe for concurrent
// use by the scoped recorders of several runs.
type TraceWriter struct {
	mu  sync.Mutex
	buf *bufio.Writer
	cl  io.Closer
	err error
}

// NewTraceWriter wraps an io.Writer as a trace sink.
func NewTraceWriter(w io.Writer) *TraceWriter {
	t := &TraceWriter{buf: bufio.NewWriter(w)}
	if c, ok := w.(io.Closer); ok {
		t.cl = c
	}
	return t
}

// CreateTrace creates (truncating) a trace file at path.
func CreateTrace(path string) (*TraceWriter, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("obs: create trace: %w", err)
	}
	return NewTraceWriter(f), nil
}

// Run returns a Recorder scoped to one (engine, dataset) drive; its epochs
// are numbered from 0 in EndEpoch order.
func (t *TraceWriter) Run(engine, dataset string) Recorder {
	if t == nil {
		return Nop{}
	}
	return &runRecorder{sink: t.write, engine: engine, dataset: dataset}
}

// write emits one event line.
func (t *TraceWriter) write(ev *Event) {
	line, err := json.Marshal(ev)
	t.mu.Lock()
	defer t.mu.Unlock()
	if err != nil {
		t.err = err
		return
	}
	if _, err := t.buf.Write(append(line, '\n')); err != nil && t.err == nil {
		t.err = err
	}
}

// Close flushes buffered events and closes the underlying file, reporting
// the first write error encountered.
func (t *TraceWriter) Close() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.buf.Flush(); err != nil && t.err == nil {
		t.err = err
	}
	if t.cl != nil {
		if err := t.cl.Close(); err != nil && t.err == nil {
			t.err = err
		}
		t.cl = nil
	}
	return t.err
}

// runRecorder accumulates one epoch of one run and hands finished events to
// a sink. All methods lock: recording is coarse (a handful of calls per
// epoch), so contention is negligible.
type runRecorder struct {
	sink    func(*Event)
	engine  string
	dataset string

	mu      sync.Mutex
	epoch   int
	dirty   bool
	phases  [numPhases]float64
	counts  [numCounters]int64
	obs     [numMetrics]Dist
	hasObs  [numMetrics]bool
	seconds float64
}

// Phase implements Recorder.
func (r *runRecorder) Phase(p Phase, seconds float64) {
	if p >= numPhases {
		return
	}
	r.mu.Lock()
	r.phases[p] += seconds
	r.dirty = true
	r.mu.Unlock()
}

// Add implements Recorder.
func (r *runRecorder) Add(c Counter, delta int64) {
	if c >= numCounters {
		return
	}
	r.mu.Lock()
	r.counts[c] += delta
	r.dirty = true
	r.mu.Unlock()
}

// Observe implements Recorder.
func (r *runRecorder) Observe(m Metric, v float64) {
	if m >= numMetrics {
		return
	}
	r.mu.Lock()
	r.obs[m].observe(v)
	r.hasObs[m] = true
	r.dirty = true
	r.mu.Unlock()
}

// EndEpoch implements Recorder: it flushes the epoch's event to the sink and
// resets the buckets for the next epoch. Epochs with no recorded data and
// zero seconds are skipped.
func (r *runRecorder) EndEpoch(modeledSeconds float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.dirty && modeledSeconds == 0 {
		return
	}
	ev := &Event{
		Engine:  r.engine,
		Dataset: r.dataset,
		Epoch:   r.epoch,
		Seconds: modeledSeconds,
	}
	for p := Phase(0); p < numPhases; p++ {
		if r.phases[p] != 0 {
			if ev.Phases == nil {
				ev.Phases = make(map[string]float64, int(numPhases))
			}
			ev.Phases[p.String()] = r.phases[p]
		}
	}
	for c := Counter(0); c < numCounters; c++ {
		if r.counts[c] != 0 {
			if ev.Counters == nil {
				ev.Counters = make(map[string]int64, int(numCounters))
			}
			ev.Counters[c.String()] = r.counts[c]
		}
	}
	for m := Metric(0); m < numMetrics; m++ {
		if r.hasObs[m] {
			if ev.Observations == nil {
				ev.Observations = make(map[string]Dist, int(numMetrics))
			}
			ev.Observations[m.String()] = r.obs[m]
		}
	}
	r.sink(ev)
	r.epoch++
	r.dirty = false
	r.phases = [numPhases]float64{}
	r.counts = [numCounters]int64{}
	r.obs = [numMetrics]Dist{}
	r.hasObs = [numMetrics]bool{}
	r.seconds = 0
}

// ReadTrace parses a JSONL trace stream. Blank lines are skipped; a
// malformed line aborts with an error naming its line number.
func ReadTrace(r io.Reader) ([]Event, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var out []Event
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var ev Event
		if err := json.Unmarshal(line, &ev); err != nil {
			return nil, fmt.Errorf("obs: trace line %d: %w", lineNo, err)
		}
		out = append(out, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("obs: trace read: %w", err)
	}
	return out, nil
}

// ReadTraceFile parses a JSONL trace file.
func ReadTraceFile(path string) ([]Event, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadTrace(f)
}
