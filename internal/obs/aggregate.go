package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// RunStats is the aggregate of one (engine, dataset) run: epoch count, total
// modeled seconds, and totals per phase, counter and observation metric.
type RunStats struct {
	Engine  string
	Dataset string
	Epochs  int
	// Seconds is the total modeled engine time (sum of EndEpoch values).
	Seconds      float64
	PhaseSeconds [numPhases]float64
	Counters     [numCounters]int64
	Observations [numMetrics]Dist
}

// Phase returns the accumulated seconds of one phase.
func (s *RunStats) Phase(p Phase) float64 {
	if p >= numPhases {
		return 0
	}
	return s.PhaseSeconds[p]
}

// Counter returns one counter's total.
func (s *RunStats) Counter(c Counter) int64 {
	if c >= numCounters {
		return 0
	}
	return s.Counters[c]
}

// Observation returns one metric's merged distribution.
func (s *RunStats) Observation(m Metric) Dist {
	if m >= numMetrics {
		return Dist{}
	}
	return s.Observations[m]
}

// EnginePhaseSum is the modeled phase time that must reconcile with Seconds:
// every phase except the excluded loss evaluation.
func (s *RunStats) EnginePhaseSum() float64 {
	var sum float64
	for p := Phase(0); p < numPhases; p++ {
		if p != PhaseLossEval {
			sum += s.PhaseSeconds[p]
		}
	}
	return sum
}

// Aggregator keeps in-memory RunStats per (engine, dataset) and renders them
// as a Prometheus-style text snapshot or per-engine summary tables. It is
// fed either live (Run returns a scoped Recorder) or from a parsed trace
// (AddEvent).
type Aggregator struct {
	mu   sync.Mutex
	runs map[string]*RunStats
	keys []string // insertion order, for stable reports
}

// NewAggregator returns an empty aggregator.
func NewAggregator() *Aggregator {
	return &Aggregator{runs: make(map[string]*RunStats)}
}

// Run returns a Recorder scoped to one (engine, dataset) drive that folds
// its epochs into the aggregate.
func (a *Aggregator) Run(engine, dataset string) Recorder {
	if a == nil {
		return Nop{}
	}
	return &runRecorder{
		sink:    func(ev *Event) { a.AddEvent(*ev) },
		engine:  engine,
		dataset: dataset,
	}
}

// stats returns (creating) the RunStats bucket for a key.
func (a *Aggregator) stats(engine, dataset string) *RunStats {
	key := engine + "\x00" + dataset
	s, ok := a.runs[key]
	if !ok {
		s = &RunStats{Engine: engine, Dataset: dataset}
		a.runs[key] = s
		a.keys = append(a.keys, key)
	}
	return s
}

// AddEvent folds one trace event into the aggregate. Unknown phase, counter
// or metric names (from newer trace producers) are ignored.
func (a *Aggregator) AddEvent(ev Event) {
	a.mu.Lock()
	defer a.mu.Unlock()
	s := a.stats(ev.Engine, ev.Dataset)
	s.Epochs++
	s.Seconds += ev.Seconds
	for name, sec := range ev.Phases {
		if p, ok := phaseFromString(name); ok {
			s.PhaseSeconds[p] += sec
		}
	}
	for name, n := range ev.Counters {
		if c, ok := counterFromString(name); ok {
			s.Counters[c] += n
		}
	}
	for name, d := range ev.Observations {
		if m, ok := metricFromString(name); ok {
			s.Observations[m].merge(d)
		}
	}
}

// Runs returns a copy of the aggregated runs in first-seen order.
func (a *Aggregator) Runs() []RunStats {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]RunStats, 0, len(a.keys))
	for _, k := range a.keys {
		out = append(out, *a.runs[k])
	}
	return out
}

// Export returns the aggregate as a plain map (engine|dataset -> stats),
// suitable for expvar publication.
func (a *Aggregator) Export() any {
	runs := a.Runs()
	out := make(map[string]map[string]any, len(runs))
	for _, r := range runs {
		e := map[string]any{
			"epochs":  r.Epochs,
			"seconds": r.Seconds,
		}
		phases := map[string]float64{}
		for p := Phase(0); p < numPhases; p++ {
			if r.PhaseSeconds[p] != 0 {
				phases[p.String()] = r.PhaseSeconds[p]
			}
		}
		if len(phases) > 0 {
			e["phases"] = phases
		}
		counters := map[string]int64{}
		for c := Counter(0); c < numCounters; c++ {
			if r.Counters[c] != 0 {
				counters[c.String()] = r.Counters[c]
			}
		}
		if len(counters) > 0 {
			e["counters"] = counters
		}
		out[r.Engine+"|"+r.Dataset] = e
	}
	return out
}

// escapeLabel escapes a Prometheus label value.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// Snapshot renders the aggregate in the Prometheus text exposition format:
//
//	sgd_epochs_total{engine="...",dataset="..."} 12
//	sgd_epoch_seconds_total{engine="...",dataset="..."} 4.5
//	sgd_phase_seconds_total{engine="...",dataset="...",phase="gradient"} 1.2
//	sgd_counter_total{engine="...",dataset="...",counter="worker_updates"} 9
//	sgd_observation_sum{engine="...",dataset="...",metric="batch_seconds"} 3
//	sgd_observation_count{engine="...",dataset="...",metric="batch_seconds"} 8
func (a *Aggregator) Snapshot() string {
	runs := a.Runs()
	// Stable output: sort by engine then dataset.
	sort.Slice(runs, func(i, j int) bool {
		if runs[i].Engine != runs[j].Engine {
			return runs[i].Engine < runs[j].Engine
		}
		return runs[i].Dataset < runs[j].Dataset
	})
	var b strings.Builder
	b.WriteString("# HELP sgd_epochs_total Epochs executed per engine run.\n")
	b.WriteString("# TYPE sgd_epochs_total counter\n")
	for _, r := range runs {
		fmt.Fprintf(&b, "sgd_epochs_total{engine=%q,dataset=%q} %d\n",
			escapeLabel(r.Engine), escapeLabel(r.Dataset), r.Epochs)
	}
	b.WriteString("# HELP sgd_epoch_seconds_total Modeled engine seconds per run.\n")
	b.WriteString("# TYPE sgd_epoch_seconds_total counter\n")
	for _, r := range runs {
		fmt.Fprintf(&b, "sgd_epoch_seconds_total{engine=%q,dataset=%q} %g\n",
			escapeLabel(r.Engine), escapeLabel(r.Dataset), r.Seconds)
	}
	b.WriteString("# HELP sgd_phase_seconds_total Seconds per engine phase (loss_eval is host wall-clock, excluded from epoch seconds).\n")
	b.WriteString("# TYPE sgd_phase_seconds_total counter\n")
	for _, r := range runs {
		for p := Phase(0); p < numPhases; p++ {
			if r.PhaseSeconds[p] == 0 {
				continue
			}
			fmt.Fprintf(&b, "sgd_phase_seconds_total{engine=%q,dataset=%q,phase=%q} %g\n",
				escapeLabel(r.Engine), escapeLabel(r.Dataset), p.String(), r.PhaseSeconds[p])
		}
	}
	b.WriteString("# HELP sgd_counter_total Typed engine counters (contention, conflicts, traffic).\n")
	b.WriteString("# TYPE sgd_counter_total counter\n")
	for _, r := range runs {
		for c := Counter(0); c < numCounters; c++ {
			if r.Counters[c] == 0 {
				continue
			}
			fmt.Fprintf(&b, "sgd_counter_total{engine=%q,dataset=%q,counter=%q} %d\n",
				escapeLabel(r.Engine), escapeLabel(r.Dataset), c.String(), r.Counters[c])
		}
	}
	b.WriteString("# HELP sgd_observation_sum Sum of sampled observation values.\n")
	b.WriteString("# TYPE sgd_observation_sum counter\n")
	for _, r := range runs {
		for m := Metric(0); m < numMetrics; m++ {
			d := r.Observations[m]
			if d.Count == 0 {
				continue
			}
			fmt.Fprintf(&b, "sgd_observation_sum{engine=%q,dataset=%q,metric=%q} %g\n",
				escapeLabel(r.Engine), escapeLabel(r.Dataset), m.String(), d.Sum)
			fmt.Fprintf(&b, "sgd_observation_count{engine=%q,dataset=%q,metric=%q} %d\n",
				escapeLabel(r.Engine), escapeLabel(r.Dataset), m.String(), d.Count)
		}
	}
	return b.String()
}

// Summary renders per-engine summary tables: phase shares of the modeled
// time, counter totals and derived rates, one block per (engine, dataset)
// run in first-seen order.
func (a *Aggregator) Summary() string {
	var b strings.Builder
	for _, r := range a.Runs() {
		WriteRunSummary(&b, &r)
	}
	return b.String()
}

// WriteRunSummary renders one run block (shared by Aggregator.Summary and
// cmd/sgdtrace).
func WriteRunSummary(b *strings.Builder, r *RunStats) {
	fmt.Fprintf(b, "%s on %s: %d epochs, %.4gs modeled\n", r.Engine, r.Dataset, r.Epochs, r.Seconds)
	sum := r.EnginePhaseSum()
	if sum > 0 {
		b.WriteString("  phases:")
		for _, p := range []Phase{PhaseGradient, PhaseUpdate, PhaseBarrier} {
			if r.PhaseSeconds[p] == 0 {
				continue
			}
			fmt.Fprintf(b, " %s %.1f%% (%.4gs)", p, 100*r.PhaseSeconds[p]/sum, r.PhaseSeconds[p])
		}
		if le := r.PhaseSeconds[PhaseLossEval]; le > 0 {
			fmt.Fprintf(b, "  [loss_eval %.4gs wall, excluded]", le)
		}
		b.WriteByte('\n')
		if r.Seconds > 0 {
			fmt.Fprintf(b, "  phase-sum check: %.1f%% of reported epoch seconds\n", 100*sum/r.Seconds)
		}
	}
	var parts []string
	for c := Counter(0); c < numCounters; c++ {
		if r.Counters[c] != 0 {
			parts = append(parts, fmt.Sprintf("%s=%d", c, r.Counters[c]))
		}
	}
	if len(parts) > 0 {
		fmt.Fprintf(b, "  counters: %s\n", strings.Join(parts, " "))
	}
	if retries, upd := r.Counters[CounterCASRetries], r.Counters[CounterWorkerUpdates]; retries > 0 && upd > 0 {
		fmt.Fprintf(b, "  CAS retry rate: %.2f%%\n", 100*float64(retries)/float64(upd))
	}
	if emitted := r.Counters[CounterGPUUpdates]; emitted > 0 {
		lost := r.Counters[CounterGPULostIntra] + r.Counters[CounterGPULostInter]
		fmt.Fprintf(b, "  gpu lost-update rate: %.2f%% (intra %.2f%%, inter %.2f%%)\n",
			100*float64(lost)/float64(emitted),
			100*float64(r.Counters[CounterGPULostIntra])/float64(emitted),
			100*float64(r.Counters[CounterGPULostInter])/float64(emitted))
	}
	if tx := r.Counters[CounterGPUTransactions]; tx > 0 {
		if req := r.Counters[CounterGPURequests]; req > 0 {
			fmt.Fprintf(b, "  gpu coalescing: %d requests -> %d transactions (%.2fx)\n",
				r.Counters[CounterGPURequests], tx, float64(req)/float64(tx))
		}
	}
	for m := Metric(0); m < numMetrics; m++ {
		d := r.Observations[m]
		if d.Count == 0 {
			continue
		}
		fmt.Fprintf(b, "  %s: mean %.4g min %.4g max %.4g (%d samples)\n",
			m, d.Mean(), d.Min, d.Max, d.Count)
	}
}
