// Package obs is the engine-level observability layer of the reproduction.
// The paper's whole contribution is decomposing time-to-convergence into
// hardware and statistical efficiency; this package exposes the *why* behind
// each configuration's numbers: per-epoch phase timings (gradient compute,
// model update, synchronisation, loss evaluation), typed counters for the
// racy behaviour that drives the Hogwild findings (worker update counts, CAS
// retries, SIMT lost updates, coalesced memory transactions), and sampled
// distributions (batch latencies, divergent-warp fractions).
//
// The design constraint is that uninstrumented runs pay ~zero cost: every
// Recorder method takes only scalar arguments, so the no-op implementation
// (Nop) compiles to empty calls with no allocation — asserted by a benchmark
// in the test suite. Engines hold a Recorder that defaults to Nop via Or.
//
// Sinks:
//
//   - TraceWriter streams one JSONL event per epoch (see Event for the
//     schema); cmd/sgdtrace re-reads and summarises such files.
//   - Aggregator keeps in-memory totals per (engine, dataset) run and
//     renders a Prometheus-style text snapshot and per-engine summary
//     tables.
//   - Tee fans one recorder stream out to several sinks.
//
// Loss evaluation is recorded under PhaseLossEval but is *excluded* from the
// modeled epoch seconds, following the paper's methodology: the phase-sum
// consistency check in cmd/sgdtrace compares gradient+update+barrier against
// the reported epoch time.
package obs

// Phase identifies one timed section of an engine epoch. Engines attribute
// their modeled epoch seconds to PhaseGradient, PhaseUpdate and PhaseBarrier
// such that the three sum to the value RunEpoch returns; PhaseLossEval is
// host wall-clock time spent by the convergence driver between epochs and is
// excluded from iteration timing.
type Phase uint8

// The phase taxonomy (see DESIGN.md §"Phase taxonomy").
const (
	// PhaseGradient is gradient computation: example streaming, model
	// gather, dot products / forward-backward passes.
	PhaseGradient Phase = iota
	// PhaseUpdate is landing updates in the model: scattered writes,
	// cache-coherence penalties, Axpy kernels, replica averaging.
	PhaseUpdate
	// PhaseBarrier is synchronisation and dispatch: per-epoch primitive
	// management of the synchronous engines, per-batch dispatch overhead,
	// kernel launches, Cyclades batch barriers.
	PhaseBarrier
	// PhaseLossEval is the between-epoch loss evaluation (excluded from
	// modeled time per the paper's methodology).
	PhaseLossEval
	numPhases
)

// String names the phase as it appears in traces and metric labels.
func (p Phase) String() string {
	switch p {
	case PhaseGradient:
		return "gradient"
	case PhaseUpdate:
		return "update"
	case PhaseBarrier:
		return "barrier"
	case PhaseLossEval:
		return "loss_eval"
	}
	return "unknown"
}

// phaseFromString inverts String; second result is false for unknown names.
func phaseFromString(s string) (Phase, bool) {
	for p := Phase(0); p < numPhases; p++ {
		if p.String() == s {
			return p, true
		}
	}
	return 0, false
}

// Counter is a typed monotonic counter an engine increments during an epoch.
type Counter uint8

// The counter taxonomy.
const (
	// CounterWorkerUpdates counts model updates performed by the engine's
	// workers (examples for Hogwild, mini-batch applications for
	// Hogbatch).
	CounterWorkerUpdates Counter = iota
	// CounterCASRetries counts failed compare-and-swap attempts of the
	// lock-free atomic updater (model.CountingAtomicUpdater) — each retry
	// is one update the raw Hogwild discipline would have lost.
	CounterCASRetries
	// CounterBatches counts mini-batches (or linear-algebra batches)
	// executed in the epoch.
	CounterBatches
	// CounterGPUUpdates counts component updates emitted by SIMT lanes.
	CounterGPUUpdates
	// CounterGPULostIntra counts updates lost to intra-warp write
	// conflicts (last lane wins).
	CounterGPULostIntra
	// CounterGPULostInter counts updates lost to inter-warp write
	// conflicts within a lockstep round (last warp wins).
	CounterGPULostInter
	// CounterGPUApplied counts component updates that landed in the model.
	CounterGPUApplied
	// CounterGPURounds counts warp-lockstep rounds executed.
	CounterGPURounds
	// CounterGPUTransactions counts 32-byte global-memory transactions
	// issued after coalescing.
	CounterGPUTransactions
	// CounterGPURequests counts lane memory requests before coalescing
	// (the coalescing ratio is requests/transactions).
	CounterGPURequests
	// CounterChaosDrops counts gradient updates discarded by the fault
	// injector (internal/chaos) — computed but never applied.
	CounterChaosDrops
	// CounterChaosDups counts gradient updates the injector applied twice.
	CounterChaosDups
	// CounterChaosStaleReads counts updates computed against a stale
	// parameter snapshot served by the injector's bounded-staleness view.
	CounterChaosStaleReads
	// CounterChaosStraggled counts updates executed by workers the fault
	// plan slowed down (the straggler's share of the epoch).
	CounterChaosStraggled
	// CounterChaosShortfall counts model updates a deadlined synchronous
	// epoch applied with missing straggler contributions (the graceful-
	// degradation path: the barrier proceeded before every worker
	// reported).
	CounterChaosShortfall
	// CounterChaosPartitioned counts transport rounds a worker spent
	// partitioned from the parameter-server tier (pull served from cache,
	// pushes lost in flight).
	CounterChaosPartitioned
	// CounterServeRequests counts prediction requests admitted by the
	// inference micro-batcher (internal/serve).
	CounterServeRequests
	// CounterServeRejected counts prediction requests refused at admission
	// because the bounded queue was full (the HTTP 429 backpressure path).
	CounterServeRejected
	// CounterServeBatches counts micro-batches the serving path dispatched
	// (requests/batches is the achieved amortisation factor).
	CounterServeBatches
	// CounterServeSwaps counts model-snapshot hot-swaps published to the
	// serving atomic-pointer store.
	CounterServeSwaps
	// CounterServeQuantBatches counts serving micro-batches scored through
	// the int8 quantised path (vs the float64 path).
	CounterServeQuantBatches
	// CounterStripeFlushes counts striped-Hogwild micro-batch flushes
	// (sort + coalesce + apply of one per-worker update window).
	CounterStripeFlushes
	// CounterStripeCoalesced counts updates the striped-Hogwild buffers
	// merged into an earlier update of the same component — shared-line
	// stores the unstriped path would have issued and this path did not.
	CounterStripeCoalesced
	// CounterPSPulls counts shard parameter pulls served by the parameter-
	// server tier (internal/ps), cache fallbacks under partition excluded.
	CounterPSPulls
	// CounterPSPushes counts gradient pushes the parameter server applied
	// (duplicates deduplicated by sequence number and lost pushes excluded).
	CounterPSPushes
	// CounterPSStalePushes counts applied pushes whose gradient was computed
	// against a shard version older than the one it landed on — the
	// asynchronous tier's staleness exposure.
	CounterPSStalePushes
	// CounterPSStalenessSum accumulates the total staleness (shard versions
	// advanced between pull and apply) over applied pushes;
	// CounterPSStalenessSum / CounterPSPushes is the mean gradient staleness.
	CounterPSStalenessSum
	// CounterLocalRounds counts averaging rounds executed by the Local-SGD
	// family (internal/core LocalSGDEngine / AsyncLocalSGDEngine): barrier
	// reductions in sync mode, timer firings in async mode.
	CounterLocalRounds
	// CounterLocalStalenessSum accumulates, over the async Local-SGD timer's
	// firings, the local steps each replica had taken since it last adopted
	// a published average — the drift the aggregation folds back in;
	// CounterLocalStalenessSum / CounterLocalRounds is the mean per-round
	// drift across the replica set.
	CounterLocalStalenessSum
	// CounterHeteroCPUBatches counts batches the heterogeneous co-training
	// engines (internal/core HeteroEngine / HeteroAsyncEngine) assigned to
	// the CPU worker pool in one epoch.
	CounterHeteroCPUBatches
	// CounterHeteroGPUBatches counts batches the heterogeneous engines
	// dispatched to the simulated GPU in one epoch.
	CounterHeteroGPUBatches
	// CounterHeteroMerges counts weight-stream merges the heterogeneous
	// engines performed: one end-of-epoch weighted average in sync mode, one
	// apply-on-arrival blend per completed batch in async mode.
	CounterHeteroMerges
	// CounterHeteroCPUStalenessSum accumulates, over the async engine's CPU
	// merges, the number of GPU merges published since the CPU stream last
	// synchronised — how far behind the shared vector the CPU's private
	// weights had drifted at each blend.
	CounterHeteroCPUStalenessSum
	// CounterHeteroGPUStalenessSum is the mirror image: CPU merges published
	// between consecutive GPU blends. The two sums divided by
	// CounterHeteroMerges give the mean cross-backend staleness.
	CounterHeteroGPUStalenessSum
	numCounters
)

// String names the counter as it appears in traces and metric labels.
func (c Counter) String() string {
	switch c {
	case CounterWorkerUpdates:
		return "worker_updates"
	case CounterCASRetries:
		return "cas_retries"
	case CounterBatches:
		return "batches"
	case CounterGPUUpdates:
		return "gpu_updates"
	case CounterGPULostIntra:
		return "gpu_lost_intra"
	case CounterGPULostInter:
		return "gpu_lost_inter"
	case CounterGPUApplied:
		return "gpu_applied"
	case CounterGPURounds:
		return "gpu_rounds"
	case CounterGPUTransactions:
		return "gpu_transactions"
	case CounterGPURequests:
		return "gpu_requests"
	case CounterChaosDrops:
		return "chaos_drops"
	case CounterChaosDups:
		return "chaos_dups"
	case CounterChaosStaleReads:
		return "chaos_stale_reads"
	case CounterChaosStraggled:
		return "chaos_straggled"
	case CounterChaosShortfall:
		return "chaos_shortfall"
	case CounterChaosPartitioned:
		return "chaos_partitioned"
	case CounterServeRequests:
		return "serve_requests"
	case CounterServeRejected:
		return "serve_rejected"
	case CounterServeBatches:
		return "serve_batches"
	case CounterServeSwaps:
		return "serve_swaps"
	case CounterServeQuantBatches:
		return "serve_quant_batches"
	case CounterStripeFlushes:
		return "stripe_flushes"
	case CounterStripeCoalesced:
		return "stripe_coalesced"
	case CounterPSPulls:
		return "ps_pulls"
	case CounterPSPushes:
		return "ps_pushes"
	case CounterPSStalePushes:
		return "ps_stale_pushes"
	case CounterPSStalenessSum:
		return "ps_staleness_sum"
	case CounterLocalRounds:
		return "local_rounds"
	case CounterLocalStalenessSum:
		return "local_staleness_sum"
	case CounterHeteroCPUBatches:
		return "hetero_cpu_batches"
	case CounterHeteroGPUBatches:
		return "hetero_gpu_batches"
	case CounterHeteroMerges:
		return "hetero_merges"
	case CounterHeteroCPUStalenessSum:
		return "hetero_cpu_staleness_sum"
	case CounterHeteroGPUStalenessSum:
		return "hetero_gpu_staleness_sum"
	}
	return "unknown"
}

func counterFromString(s string) (Counter, bool) {
	for c := Counter(0); c < numCounters; c++ {
		if c.String() == s {
			return c, true
		}
	}
	return 0, false
}

// Metric is a sampled value tracked as a distribution (count/sum/min/max).
type Metric uint8

// The observation taxonomy.
const (
	// MetricBatchSeconds is the modeled latency of one mini-batch
	// (Hogbatch).
	MetricBatchSeconds Metric = iota
	// MetricDivergentWarpFrac is the fraction of issued lane slots wasted
	// to warp divergence in one epoch: 1 - useful flops / lockstep ops.
	MetricDivergentWarpFrac
	// MetricWorkerShare is the per-worker share of an epoch's updates
	// (Hogwild work balance).
	MetricWorkerShare
	// MetricChaosSlowdown is the per-epoch modeled-time stretch a fault
	// plan inflicted (faulted epoch seconds / healthy epoch seconds).
	MetricChaosSlowdown
	// MetricServeBatchSize is the request count of one dispatched inference
	// micro-batch (internal/serve).
	MetricServeBatchSize
	// MetricServeQueueDepth is the admission-queue depth sampled at each
	// micro-batch dispatch.
	MetricServeQueueDepth
	// MetricServeLatency is one request's end-to-end serving latency in
	// host seconds (queue wait + batch compute); quantiles come from the
	// serving layer's own histogram, this distribution carries
	// count/sum/min/max into traces.
	MetricServeLatency
	// MetricHeteroGPUShare is the realised fraction of an epoch's batches
	// the heterogeneous engines ran on the GPU backend — the adaptive split
	// ratio as actually executed, one observation per epoch.
	MetricHeteroGPUShare
	numMetrics
)

// String names the metric as it appears in traces and metric labels.
func (m Metric) String() string {
	switch m {
	case MetricBatchSeconds:
		return "batch_seconds"
	case MetricDivergentWarpFrac:
		return "divergent_warp_frac"
	case MetricWorkerShare:
		return "worker_share"
	case MetricChaosSlowdown:
		return "chaos_slowdown"
	case MetricServeBatchSize:
		return "serve_batch_size"
	case MetricServeQueueDepth:
		return "serve_queue_depth"
	case MetricServeLatency:
		return "serve_latency_seconds"
	case MetricHeteroGPUShare:
		return "hetero_gpu_share"
	}
	return "unknown"
}

func metricFromString(s string) (Metric, bool) {
	for m := Metric(0); m < numMetrics; m++ {
		if m.String() == s {
			return m, true
		}
	}
	return 0, false
}

// Recorder receives one engine run's instrumentation stream. Engines call
// Phase/Add/Observe while executing an epoch; whoever drives the engine (the
// convergence driver or the harness) closes each epoch with EndEpoch, which
// carries the engine's reported modeled seconds for that epoch.
//
// All methods take scalar arguments only, so the no-op path allocates
// nothing. Implementations must be safe for concurrent use; engines
// nevertheless aggregate per-worker data locally and record once per epoch
// to keep hot loops clean.
type Recorder interface {
	// Phase attributes modeled (or, for PhaseLossEval, wall-clock) seconds
	// to a phase of the current epoch.
	Phase(p Phase, seconds float64)
	// Add increments a typed counter for the current epoch.
	Add(c Counter, delta int64)
	// Observe records one sample of a distribution metric.
	Observe(m Metric, v float64)
	// EndEpoch closes the current epoch, recording the engine's reported
	// modeled seconds for it.
	EndEpoch(modeledSeconds float64)
}

// Nop is the zero-cost default Recorder: every method is an empty body.
type Nop struct{}

// Phase implements Recorder.
func (Nop) Phase(Phase, float64) {}

// Add implements Recorder.
func (Nop) Add(Counter, int64) {}

// Observe implements Recorder.
func (Nop) Observe(Metric, float64) {}

// EndEpoch implements Recorder.
func (Nop) EndEpoch(float64) {}

// Or returns r, or Nop when r is nil, so callers can invoke methods
// unconditionally.
func Or(r Recorder) Recorder {
	if r == nil {
		return Nop{}
	}
	return r
}

// Enabled reports whether r actually records anything; engines use it to
// skip instrumentation work that is not scalar-cheap.
func Enabled(r Recorder) bool {
	if r == nil {
		return false
	}
	if _, nop := r.(Nop); nop {
		return false
	}
	return true
}

// tee fans a recorder stream out to several sinks.
type tee struct{ rs []Recorder }

// Tee returns a Recorder forwarding every call to each enabled recorder in
// rs; nil and Nop entries are dropped, and degenerate cases collapse (no
// sinks -> Nop, one sink -> that sink).
func Tee(rs ...Recorder) Recorder {
	live := make([]Recorder, 0, len(rs))
	for _, r := range rs {
		if Enabled(r) {
			live = append(live, r)
		}
	}
	switch len(live) {
	case 0:
		return Nop{}
	case 1:
		return live[0]
	}
	return &tee{rs: live}
}

// Phase implements Recorder.
func (t *tee) Phase(p Phase, seconds float64) {
	for _, r := range t.rs {
		r.Phase(p, seconds)
	}
}

// Add implements Recorder.
func (t *tee) Add(c Counter, delta int64) {
	for _, r := range t.rs {
		r.Add(c, delta)
	}
}

// Observe implements Recorder.
func (t *tee) Observe(m Metric, v float64) {
	for _, r := range t.rs {
		r.Observe(m, v)
	}
}

// EndEpoch implements Recorder.
func (t *tee) EndEpoch(sec float64) {
	for _, r := range t.rs {
		r.EndEpoch(sec)
	}
}
