package obs

import (
	"strings"
	"sync"
	"testing"
)

// TestConcurrentSnapshotWhileRecording hammers one aggregator from several
// recording goroutines while another renders Prometheus snapshots — the
// /metrics-scrape-during-traffic interleaving, meaningful under -race. Every
// rendered snapshot must also be a self-consistent document (counter lines
// present once the first epoch landed).
func TestConcurrentSnapshotWhileRecording(t *testing.T) {
	agg := NewAggregator()
	const writers = 4
	const epochs = 200

	stop := make(chan struct{})
	readerDone := make(chan struct{})
	go func() {
		defer close(readerDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			out := agg.Snapshot()
			if strings.Contains(out, "sgd_epochs_total") && !strings.Contains(out, "sgd_epoch_seconds_total") {
				t.Error("snapshot rendered epochs without seconds family")
				return
			}
		}
	}()
	var writersWG sync.WaitGroup
	for w := 0; w < writers; w++ {
		writersWG.Add(1)
		go func() {
			defer writersWG.Done()
			rec := agg.Run("hogwild", "covtype")
			for e := 0; e < epochs; e++ {
				rec.Phase(PhaseGradient, 0.001)
				rec.Phase(PhaseUpdate, 0.0005)
				rec.Add(CounterWorkerUpdates, 10)
				rec.Observe(MetricServeLatency, 0.002)
				rec.EndEpoch(0.0015)
			}
		}()
	}
	writersWG.Wait()
	close(stop)
	<-readerDone

	runs := agg.Runs()
	if len(runs) != 1 || runs[0].Epochs != writers*epochs {
		t.Fatalf("aggregated %+v, want %d epochs in one run", runs, writers*epochs)
	}
	out := agg.Snapshot()
	for _, want := range []string{
		`sgd_epochs_total{engine="hogwild",dataset="covtype"} 800`,
		`phase="gradient"`,
		`counter="worker_updates"`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("final snapshot missing %q:\n%s", want, out)
		}
	}
}
