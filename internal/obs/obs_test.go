package obs

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// driveRun pushes two epochs of representative data through r.
func driveRun(r Recorder) {
	r.Phase(PhaseGradient, 0.7)
	r.Phase(PhaseUpdate, 0.2)
	r.Phase(PhaseBarrier, 0.1)
	r.Add(CounterWorkerUpdates, 1000)
	r.Add(CounterCASRetries, 31)
	r.Observe(MetricBatchSeconds, 0.01)
	r.Observe(MetricBatchSeconds, 0.03)
	r.Phase(PhaseLossEval, 0.005)
	r.EndEpoch(1.0)

	r.Phase(PhaseGradient, 0.6)
	r.Phase(PhaseUpdate, 0.3)
	r.Phase(PhaseBarrier, 0.1)
	r.Add(CounterWorkerUpdates, 1000)
	r.EndEpoch(1.0)
}

func TestNopRecorderAllocatesNothing(t *testing.T) {
	var r Recorder = Nop{}
	allocs := testing.AllocsPerRun(100, func() {
		r.Phase(PhaseGradient, 1.0)
		r.Add(CounterWorkerUpdates, 1)
		r.Observe(MetricBatchSeconds, 0.5)
		r.EndEpoch(2.0)
	})
	if allocs != 0 {
		t.Fatalf("no-op recorder allocated %v bytes-ish per op, want 0", allocs)
	}
}

// BenchmarkNopRecorder asserts the uninstrumented path is free: 0 allocs/op.
func BenchmarkNopRecorder(b *testing.B) {
	var r Recorder = Or(nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Phase(PhaseGradient, 1.0)
		r.Add(CounterWorkerUpdates, 1)
		r.Observe(MetricBatchSeconds, 0.5)
		r.EndEpoch(2.0)
	}
}

func TestOrAndEnabled(t *testing.T) {
	if _, ok := Or(nil).(Nop); !ok {
		t.Fatal("Or(nil) is not Nop")
	}
	if Enabled(nil) || Enabled(Nop{}) {
		t.Fatal("nil/Nop reported enabled")
	}
	a := NewAggregator()
	r := a.Run("e", "d")
	if !Enabled(r) {
		t.Fatal("live recorder reported disabled")
	}
	if Or(r) != r {
		t.Fatal("Or did not pass through a live recorder")
	}
}

func TestTeeFansOutAndCollapses(t *testing.T) {
	if _, ok := Tee(nil, Nop{}).(Nop); !ok {
		t.Fatal("Tee of dead sinks is not Nop")
	}
	a := NewAggregator()
	r := a.Run("e", "d")
	if Tee(r, nil) != r {
		t.Fatal("single-sink Tee did not collapse")
	}
	b := NewAggregator()
	tr := Tee(a.Run("e", "d"), b.Run("e", "d"))
	tr.Phase(PhaseGradient, 1)
	tr.Add(CounterBatches, 2)
	tr.EndEpoch(1)
	for i, agg := range []*Aggregator{a, b} {
		runs := agg.Runs()
		if len(runs) != 1 || runs[0].Counter(CounterBatches) != 2 {
			t.Fatalf("sink %d missed the teed stream: %+v", i, runs)
		}
	}
}

func TestEnumStringsRoundTrip(t *testing.T) {
	for p := Phase(0); p < numPhases; p++ {
		got, ok := phaseFromString(p.String())
		if !ok || got != p {
			t.Fatalf("phase %d round trip failed (%q)", p, p.String())
		}
	}
	for c := Counter(0); c < numCounters; c++ {
		got, ok := counterFromString(c.String())
		if !ok || got != c {
			t.Fatalf("counter %d round trip failed (%q)", c, c.String())
		}
	}
	for m := Metric(0); m < numMetrics; m++ {
		got, ok := metricFromString(m.String())
		if !ok || got != m {
			t.Fatalf("metric %d round trip failed (%q)", m, m.String())
		}
	}
	if _, ok := phaseFromString("nope"); ok {
		t.Fatal("unknown phase accepted")
	}
}

func TestTraceRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	tw := NewTraceWriter(&buf)
	driveRun(tw.Run("async/cpu-par(56)", "covtype"))
	driveRun(tw.Run("sync/gpu", "w8a"))
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	events, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 4 {
		t.Fatalf("%d events, want 4", len(events))
	}
	ev := events[0]
	if ev.Engine != "async/cpu-par(56)" || ev.Dataset != "covtype" || ev.Epoch != 0 {
		t.Fatalf("event identity %+v", ev)
	}
	if ev.Seconds != 1.0 || ev.Phases["gradient"] != 0.7 || ev.Phases["loss_eval"] != 0.005 {
		t.Fatalf("event payload %+v", ev)
	}
	if ev.Counters["cas_retries"] != 31 {
		t.Fatalf("counters %+v", ev.Counters)
	}
	d := ev.Observations["batch_seconds"]
	if d.Count != 2 || d.Min != 0.01 || d.Max != 0.03 {
		t.Fatalf("observations %+v", d)
	}
	if events[1].Epoch != 1 {
		t.Fatalf("second epoch numbered %d", events[1].Epoch)
	}
	// Epoch 2 of each run: no cas_retries key (counters reset per epoch).
	if _, ok := events[1].Counters["cas_retries"]; ok {
		t.Fatal("epoch buckets not reset between epochs")
	}
}

func TestTraceSkipsEmptyEpochs(t *testing.T) {
	var buf bytes.Buffer
	tw := NewTraceWriter(&buf)
	r := tw.Run("e", "d")
	r.EndEpoch(0) // nothing recorded, zero seconds: dropped
	r.EndEpoch(2.5)
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	events, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 || events[0].Seconds != 2.5 {
		t.Fatalf("events %+v", events)
	}
}

func TestReadTraceRejectsGarbage(t *testing.T) {
	if _, err := ReadTrace(strings.NewReader("{\"engine\":\"e\"}\nnot json\n")); err == nil {
		t.Fatal("malformed line accepted")
	}
}

func TestAggregatorTotalsAndSnapshot(t *testing.T) {
	a := NewAggregator()
	driveRun(a.Run("async/cpu-par(56)", "rcv1"))
	runs := a.Runs()
	if len(runs) != 1 {
		t.Fatalf("%d runs", len(runs))
	}
	r := runs[0]
	if r.Epochs != 2 || r.Seconds != 2.0 {
		t.Fatalf("totals %+v", r)
	}
	if got := r.Phase(PhaseGradient); math.Abs(got-1.3) > 1e-12 {
		t.Fatalf("gradient total %v", got)
	}
	if r.Counter(CounterWorkerUpdates) != 2000 || r.Counter(CounterCASRetries) != 31 {
		t.Fatalf("counters %+v", r.Counters)
	}
	if sum := r.EnginePhaseSum(); math.Abs(sum-2.0) > 1e-12 {
		t.Fatalf("engine phase sum %v (loss_eval must be excluded)", sum)
	}
	snap := a.Snapshot()
	for _, want := range []string{
		`sgd_epochs_total{engine="async/cpu-par(56)",dataset="rcv1"} 2`,
		`sgd_phase_seconds_total{engine="async/cpu-par(56)",dataset="rcv1",phase="update"} 0.5`,
		`sgd_counter_total{engine="async/cpu-par(56)",dataset="rcv1",counter="cas_retries"} 31`,
		`sgd_observation_count{engine="async/cpu-par(56)",dataset="rcv1",metric="batch_seconds"} 2`,
		"# TYPE sgd_phase_seconds_total counter",
	} {
		if !strings.Contains(snap, want) {
			t.Fatalf("snapshot missing %q:\n%s", want, snap)
		}
	}
	sum := a.Summary()
	for _, want := range []string{"async/cpu-par(56) on rcv1", "gradient 65.0%", "CAS retry rate"} {
		if !strings.Contains(sum, want) {
			t.Fatalf("summary missing %q:\n%s", want, sum)
		}
	}
}

func TestAggregatorFromTraceEventsMatchesLive(t *testing.T) {
	var buf bytes.Buffer
	tw := NewTraceWriter(&buf)
	driveRun(tw.Run("e", "d"))
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	events, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	fromTrace := NewAggregator()
	for _, ev := range events {
		fromTrace.AddEvent(ev)
	}
	live := NewAggregator()
	driveRun(live.Run("e", "d"))
	a, b := fromTrace.Runs()[0], live.Runs()[0]
	if a != b {
		t.Fatalf("trace-replayed stats differ from live:\n%+v\n%+v", a, b)
	}
}

func TestDistMergeAndMean(t *testing.T) {
	var d Dist
	d.observe(2)
	d.observe(4)
	var e Dist
	e.observe(1)
	e.merge(d)
	if e.Count != 3 || e.Min != 1 || e.Max != 4 || e.Mean() != 7.0/3 {
		t.Fatalf("%+v mean %v", e, e.Mean())
	}
	var zero Dist
	if zero.Mean() != 0 {
		t.Fatal("empty dist mean")
	}
	e.merge(Dist{}) // merging empty is a no-op
	if e.Count != 3 {
		t.Fatalf("empty merge changed count: %+v", e)
	}
}

func TestLoggerLevels(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, LevelInfo)
	l.Debugf("hidden %d\n", 1)
	l.Infof("shown %d\n", 2)
	l.Warnf("warned\n")
	out := buf.String()
	if strings.Contains(out, "hidden") || !strings.Contains(out, "shown 2") || !strings.Contains(out, "warned") {
		t.Fatalf("output %q", out)
	}
	if l.Enabled(LevelDebug) || !l.Enabled(LevelError) {
		t.Fatal("Enabled filter wrong")
	}
	var nilLogger *Logger
	nilLogger.Infof("must not panic")
	NewLogger(nil, LevelDebug).Infof("discarded")
}
