package sparse

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/tensor"
)

// buildRandom builds a random valid CSR plus its dense mirror.
func buildRandom(rng *rand.Rand, rows, cols int, density float64) (*CSR, *tensor.Matrix) {
	b := NewBuilder(rows, cols)
	d := tensor.NewMatrix(rows, cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if rng.Float64() < density {
				v := rng.NormFloat64()
				if v == 0 {
					v = 1
				}
				b.Add(i, j, v)
				d.Set(i, j, v)
			}
		}
	}
	return b.Build(), d
}

func TestBuilderProducesValidCSR(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		m, _ := buildRandom(rng, 1+rng.Intn(20), 1+rng.Intn(20), rng.Float64())
		if err := m.Validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestBuilderSumsDuplicates(t *testing.T) {
	b := NewBuilder(2, 3)
	b.Add(0, 1, 2)
	b.Add(0, 1, 3)
	b.Add(1, 0, 1)
	m := b.Build()
	if m.NNZ() != 2 {
		t.Fatalf("NNZ = %d, want 2", m.NNZ())
	}
	cols, vals := m.Row(0)
	if len(cols) != 1 || cols[0] != 1 || vals[0] != 5 {
		t.Fatalf("row 0 = %v %v", cols, vals)
	}
}

func TestBuilderOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range Add did not panic")
		}
	}()
	NewBuilder(2, 2).Add(2, 0, 1)
}

func TestValidateCatchesCorruption(t *testing.T) {
	mk := func() *CSR {
		b := NewBuilder(2, 4)
		b.Add(0, 1, 1)
		b.Add(0, 3, 2)
		b.Add(1, 0, 3)
		return b.Build()
	}
	cases := []struct {
		name   string
		mutate func(*CSR)
	}{
		{"rowptr first", func(m *CSR) { m.RowPtr[0] = 1 }},
		{"rowptr monotone", func(m *CSR) { m.RowPtr[1] = 5 }},
		{"col out of range", func(m *CSR) { m.ColIdx[0] = 9 }},
		{"col negative", func(m *CSR) { m.ColIdx[0] = -1 }},
		{"cols unsorted", func(m *CSR) { m.ColIdx[0], m.ColIdx[1] = m.ColIdx[1], m.ColIdx[0] }},
		{"nan value", func(m *CSR) { m.Values[0] = math.NaN() }},
		{"inf value", func(m *CSR) { m.Values[2] = math.Inf(1) }},
		{"rowptr tail", func(m *CSR) { m.RowPtr[2] = 2 }},
	}
	for _, tc := range cases {
		m := mk()
		if err := m.Validate(); err != nil {
			t.Fatalf("%s: baseline invalid: %v", tc.name, err)
		}
		tc.mutate(m)
		if err := m.Validate(); err == nil {
			t.Errorf("%s: corruption not detected", tc.name)
		}
	}
}

func TestDenseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m, d := buildRandom(rng, 15, 9, 0.3)
	back := FromDense(m.ToDense(0))
	if back.NNZ() != m.NNZ() {
		t.Fatalf("round trip NNZ %d -> %d", m.NNZ(), back.NNZ())
	}
	for i := 0; i < 15; i++ {
		for j := 0; j < 9; j++ {
			if back.ToDense(0).At(i, j) != d.At(i, j) {
				t.Fatalf("round trip mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestToDenseLimitPanics(t *testing.T) {
	m, _ := buildRandom(rand.New(rand.NewSource(3)), 10, 10, 0.5)
	defer func() {
		if recover() == nil {
			t.Fatal("ToDense over limit did not panic")
		}
	}()
	m.ToDense(50)
}

func TestMulVecMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 20; trial++ {
		rows, cols := 1+rng.Intn(12), 1+rng.Intn(12)
		m, d := buildRandom(rng, rows, cols, 0.4)
		x := make([]float64, cols)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		got := make([]float64, rows)
		m.MulVec(x, got)
		want := make([]float64, rows)
		tensor.Gemv(1, d, x, 0, want)
		for i := range got {
			if math.Abs(got[i]-want[i]) > 1e-9 {
				t.Fatalf("MulVec[%d] = %v, want %v", i, got[i], want[i])
			}
		}
	}
}

func TestMulVecTMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 20; trial++ {
		rows, cols := 1+rng.Intn(12), 1+rng.Intn(12)
		m, d := buildRandom(rng, rows, cols, 0.4)
		x := make([]float64, rows)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		got := make([]float64, cols)
		m.MulVecT(x, got)
		want := make([]float64, cols)
		tensor.GemvT(1, d, x, 0, want)
		for i := range got {
			if math.Abs(got[i]-want[i]) > 1e-9 {
				t.Fatalf("MulVecT[%d] = %v, want %v", i, got[i], want[i])
			}
		}
	}
}

func TestMulVecShapePanics(t *testing.T) {
	m, _ := buildRandom(rand.New(rand.NewSource(6)), 3, 4, 0.5)
	defer func() {
		if recover() == nil {
			t.Fatal("shape mismatch did not panic")
		}
	}()
	m.MulVec(make([]float64, 3), make([]float64, 3))
}

func TestRowDotRowAxpy(t *testing.T) {
	b := NewBuilder(1, 5)
	b.Add(0, 1, 2)
	b.Add(0, 4, -1)
	m := b.Build()
	w := []float64{1, 1, 1, 1, 1}
	if got := m.RowDot(0, w); got != 1 {
		t.Fatalf("RowDot = %v, want 1", got)
	}
	m.RowAxpy(0, 2, w)
	if w[1] != 5 || w[4] != -1 || w[0] != 1 {
		t.Fatalf("RowAxpy: w = %v", w)
	}
}

func TestSpMVLinearityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m, _ := buildRandom(rng, 10, 8, 0.3)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		x1 := make([]float64, 8)
		x2 := make([]float64, 8)
		sum := make([]float64, 8)
		for i := range x1 {
			x1[i], x2[i] = r.NormFloat64(), r.NormFloat64()
			sum[i] = x1[i] + x2[i]
		}
		y1 := make([]float64, 10)
		y2 := make([]float64, 10)
		ys := make([]float64, 10)
		m.MulVec(x1, y1)
		m.MulVec(x2, y2)
		m.MulVec(sum, ys)
		for i := range ys {
			if math.Abs(ys[i]-(y1[i]+y2[i])) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSelectRows(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	m, d := buildRandom(rng, 10, 6, 0.4)
	sel := m.SelectRows([]int{7, 2, 2})
	if sel.NumRows != 3 {
		t.Fatalf("NumRows = %d", sel.NumRows)
	}
	if err := sel.Validate(); err != nil {
		t.Fatal(err)
	}
	for i, r := range []int{7, 2, 2} {
		x := make([]float64, 6)
		for j := range x {
			x[j] = 1
		}
		if got, want := sel.RowDot(i, x), tensor.Sum(d.Row(r)); math.Abs(got-want) > 1e-9 {
			t.Fatalf("row %d: %v != %v", i, got, want)
		}
	}
}

func TestSizeAccounting(t *testing.T) {
	m, _ := buildRandom(rand.New(rand.NewSource(9)), 10, 20, 0.25)
	if m.DenseBytes() != 10*20*8 {
		t.Fatalf("DenseBytes = %d", m.DenseBytes())
	}
	wantSparse := int64(m.NNZ())*12 + 11*8
	if m.SparseBytes() != wantSparse {
		t.Fatalf("SparseBytes = %d, want %d", m.SparseBytes(), wantSparse)
	}
	density := m.Density()
	if density <= 0 || density > 1 {
		t.Fatalf("Density = %v", density)
	}
}

func TestRowStats(t *testing.T) {
	b := NewBuilder(3, 10)
	b.Add(0, 0, 1)
	b.Add(1, 0, 1)
	b.Add(1, 1, 1)
	b.Add(1, 2, 1)
	// row 2 empty
	m := b.Build()
	min, max, avg := m.RowStats()
	if min != 0 || max != 3 || math.Abs(avg-4.0/3) > 1e-12 {
		t.Fatalf("RowStats = %d %d %v", min, max, avg)
	}
}

func TestEmptyMatrix(t *testing.T) {
	m := NewBuilder(0, 0).Build()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.Density() != 0 {
		t.Fatal("empty density != 0")
	}
	min, max, avg := m.RowStats()
	if min != 0 || max != 0 || avg != 0 {
		t.Fatal("empty RowStats nonzero")
	}
}
