package sparse

import (
	"math/rand"
	"testing"
)

// heavyTailCSR builds a matrix whose row widths follow a discrete power law
// — the news20-like shape where even row-count chunks leave workers idle.
func heavyTailCSR(t testing.TB, rows, cols int, seed int64) *CSR {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	b := NewBuilder(rows, cols)
	for i := 0; i < rows; i++ {
		// Mostly narrow rows; a heavy tail of very wide ones.
		width := 1 + rng.Intn(4)
		if rng.Float64() < 0.02 {
			width = cols / 4
		}
		for k, j := 0, rng.Intn(cols); k < width && j < cols; k, j = k+1, j+1+rng.Intn(3) {
			b.Add(i, j, rng.NormFloat64())
		}
	}
	m := b.Build()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	return m
}

// checkPartition asserts the partition property the kernels rely on:
// disjoint coverage of [0, rows) in order, at most parts ranges, and the
// additive skew bound nnz(part) <= ceil(nnz/parts) + maxRowNNZ.
func checkPartition(t *testing.T, m *CSR, parts int, ranges []Range) {
	t.Helper()
	if len(ranges) == 0 && m.NumRows == 0 {
		return
	}
	if len(ranges) > parts {
		t.Fatalf("%d ranges for parts=%d", len(ranges), parts)
	}
	next := 0
	for _, r := range ranges {
		if r.Lo != next || r.Hi <= r.Lo {
			t.Fatalf("range %+v breaks coverage at row %d", r, next)
		}
		next = r.Hi
	}
	if next != m.NumRows {
		t.Fatalf("partition covers [0, %d), want [0, %d)", next, m.NumRows)
	}
	nnz := int64(m.NNZ())
	eff := int64(parts) // quantiles are spaced by the effective part count
	if parts > m.NumRows {
		eff = int64(m.NumRows)
	}
	bound := (nnz+eff-1)/eff + int64(m.MaxRowNNZ())
	for _, r := range ranges {
		if got := r.NNZ(m); got > bound {
			t.Fatalf("range %+v carries %d nnz, bound %d (nnz=%d parts=%d maxRow=%d)",
				r, got, bound, nnz, parts, m.MaxRowNNZ())
		}
	}
}

func TestPartitionNNZProperty(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		m := heavyTailCSR(t, 200+int(seed)*37, 120, seed)
		for _, parts := range []int{1, 2, 3, 7, 8, 56, 1000} {
			checkPartition(t, m, parts, m.PartitionNNZ(parts))
		}
	}
}

func TestPartitionNNZDegenerate(t *testing.T) {
	empty := &CSR{NumRows: 0, NumCols: 5, RowPtr: []int64{0}}
	if got := empty.PartitionNNZ(4); len(got) != 0 {
		t.Fatalf("empty matrix partition = %v", got)
	}
	// All-zero rows: still covers with non-empty ranges.
	b := NewBuilder(6, 3)
	zeros := b.Build()
	checkPartition(t, zeros, 4, zeros.PartitionNNZ(4))

	// One row holding everything.
	b2 := NewBuilder(5, 10)
	for j := 0; j < 10; j++ {
		b2.Add(2, j, 1)
	}
	m2 := b2.Build()
	checkPartition(t, m2, 3, m2.PartitionNNZ(3))
}

func TestPartitionNNZIntoReusesBuffer(t *testing.T) {
	m := heavyTailCSR(t, 300, 100, 3)
	buf := make([]Range, 0, 64)
	first := m.PartitionNNZInto(8, buf)
	second := m.PartitionNNZInto(8, first[:0])
	if &first[0] != &second[0] {
		t.Fatal("PartitionNNZInto reallocated despite sufficient capacity")
	}
	checkPartition(t, m, 8, second)
}

func TestPartitionNNZBalancesHeavyTail(t *testing.T) {
	// The balanced split must beat even row-count chunking on critical-path
	// nnz for a heavy-tailed matrix (the load-balance claim itself).
	m := heavyTailCSR(t, 2000, 400, 11)
	parts := 8
	balanced := m.PartitionNNZ(parts)
	var maxBalanced int64
	for _, r := range balanced {
		if n := r.NNZ(m); n > maxBalanced {
			maxBalanced = n
		}
	}
	chunk := (m.NumRows + parts - 1) / parts
	var maxEven int64
	for lo := 0; lo < m.NumRows; lo += chunk {
		hi := lo + chunk
		if hi > m.NumRows {
			hi = m.NumRows
		}
		if n := (Range{lo, hi}).NNZ(m); n > maxEven {
			maxEven = n
		}
	}
	if maxBalanced >= maxEven {
		t.Fatalf("balanced critical path %d not better than even chunking %d", maxBalanced, maxEven)
	}
}

func TestPartitionRowsNNZProperty(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		m := heavyTailCSR(t, 150+int(seed)*29, 90, seed+100)
		rng := rand.New(rand.NewSource(seed))
		rows := rng.Perm(m.NumRows)
		for _, parts := range []int{1, 2, 5, 8, 56} {
			bounds := m.PartitionRowsNNZ(rows, parts, nil)
			if bounds[0] != 0 || bounds[len(bounds)-1] != len(rows) {
				t.Fatalf("bounds %v do not span [0, %d]", bounds, len(rows))
			}
			if len(bounds)-1 > parts {
				t.Fatalf("%d segments for parts=%d", len(bounds)-1, parts)
			}
			var total int64
			for _, r := range rows {
				total += int64(m.RowNNZ(r))
			}
			bound := (total+int64(parts)-1)/int64(parts) + int64(m.MaxRowNNZ())
			for k := 0; k+1 < len(bounds); k++ {
				if bounds[k+1] <= bounds[k] {
					t.Fatalf("empty segment at %d: %v", k, bounds)
				}
				var seg int64
				for _, r := range rows[bounds[k]:bounds[k+1]] {
					seg += int64(m.RowNNZ(r))
				}
				if seg > bound {
					t.Fatalf("segment %d carries %d nnz, bound %d", k, seg, bound)
				}
			}
		}
	}
}

func TestPartitionRowsNNZDegenerate(t *testing.T) {
	m := heavyTailCSR(t, 20, 15, 42)
	if got := m.PartitionRowsNNZ(nil, 4, nil); len(got) != 1 || got[0] != 0 {
		t.Fatalf("nil rows bounds = %v", got)
	}
	one := m.PartitionRowsNNZ([]int{3}, 4, nil)
	if len(one) != 2 || one[0] != 0 || one[1] != 1 {
		t.Fatalf("single-row bounds = %v", one)
	}
}
