package sparse

import "sort"

// Range is a half-open row interval [Lo, Hi) of a partition.
type Range struct {
	Lo, Hi int
}

// NNZ returns the number of stored entries the range covers in m.
func (r Range) NNZ(m *CSR) int64 { return m.RowPtr[r.Hi] - m.RowPtr[r.Lo] }

// PartitionNNZ splits the rows [0, NumRows) into at most parts contiguous
// non-empty ranges of approximately equal nnz. RowPtr is its own prefix sum,
// so the k-th split point is found by binary search for the first row whose
// cumulative nnz reaches k/parts of the total — O(parts * log rows), no
// per-row scan.
//
// Even row-count chunking leaves workers idle on heavy-tailed datasets
// (news20's widest rows carry thousands of entries while the median carries
// a handful); nnz-balancing bounds every part by
//
//	nnz(part) <= ceil(nnz/parts) + maxRowNNZ,
//
// the best a contiguous split can guarantee. The returned ranges are
// disjoint and cover [0, NumRows) exactly.
func (m *CSR) PartitionNNZ(parts int) []Range {
	return m.PartitionNNZInto(parts, nil)
}

// PartitionNNZInto is PartitionNNZ appending into buf (pass buf[:0] to
// reuse its capacity); hot callers keep a buffer to stay allocation-free.
func (m *CSR) PartitionNNZInto(parts int, buf []Range) []Range {
	out := buf
	if m.NumRows <= 0 {
		return out
	}
	if parts > m.NumRows {
		parts = m.NumRows
	}
	if parts <= 1 {
		return append(out, Range{0, m.NumRows})
	}
	nnz := m.RowPtr[m.NumRows]
	lo := 0
	for k := 1; lo < m.NumRows; k++ {
		hi := m.NumRows
		if k < parts {
			target := nnz * int64(k) / int64(parts)
			// First row index whose cumulative nnz reaches the target.
			hi = sort.Search(m.NumRows, func(i int) bool { return m.RowPtr[i+1] >= target })
			hi++ // include the crossing row
			if hi <= lo {
				hi = lo + 1 // always advance: empty-row prefixes
			}
			if hi > m.NumRows {
				hi = m.NumRows
			}
		}
		out = append(out, Range{lo, hi})
		lo = hi
	}
	return out
}

// PartitionRowsNNZ splits an arbitrary row sequence (e.g. an epoch's
// shuffled permutation) into at most parts contiguous segments of
// approximately equal total nnz with a single greedy pass, appending the
// boundary offsets into bounds (pass bounds[:0] to reuse). The result has
// the form [0, b1, ..., len(rows)]: segment k is rows[bounds[k]:bounds[k+1]].
// Every segment's nnz is bounded by ceil(total/parts) + maxRowNNZ, the same
// guarantee as PartitionNNZ.
func (m *CSR) PartitionRowsNNZ(rows []int, parts int, bounds []int) []int {
	out := append(bounds, 0)
	if len(rows) == 0 {
		return out
	}
	if parts > len(rows) {
		parts = len(rows)
	}
	if parts <= 1 {
		return append(out, len(rows))
	}
	var total int64
	for _, r := range rows {
		total += int64(m.RowNNZ(r))
	}
	var acc int64
	k := 1
	for i, r := range rows {
		acc += int64(m.RowNNZ(r))
		// Cut as soon as the running sum reaches the next uncrossed
		// quantile, then skip every quantile this row crossed (a single
		// very wide row may account for several parts' worth of work).
		if k < parts && acc >= total*int64(k)/int64(parts) && i+1 < len(rows) {
			out = append(out, i+1)
			for k < parts && acc >= total*int64(k)/int64(parts) {
				k++
			}
		}
	}
	return append(out, len(rows))
}

// MaxRowNNZ returns the widest row's stored-entry count (0 for an empty
// matrix): the additive skew bound of the nnz partitioners.
func (m *CSR) MaxRowNNZ() int {
	max := 0
	for i := 0; i < m.NumRows; i++ {
		if n := m.RowNNZ(i); n > max {
			max = n
		}
	}
	return max
}
