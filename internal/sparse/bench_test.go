package sparse

import (
	"math/rand"
	"testing"
)

// fillBuilder populates a builder with a news20-like heavy-tailed load.
func fillBuilder(rng *rand.Rand, b *Builder, rows, cols int) {
	for i := 0; i < rows; i++ {
		width := 1 + rng.Intn(6)
		if rng.Float64() < 0.02 {
			width = 200
		}
		for k, j := 0, rng.Intn(cols); k < width && j < cols; k, j = k+1, j+1+rng.Intn(5) {
			b.Add(i, j, 1)
		}
	}
}

// BenchmarkBuilderBuild measures CSR assembly at a heavy-tailed scale; the
// dedup-counting pre-pass replaces append-doubling with two exact
// allocations.
func BenchmarkBuilderBuild(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	rows, cols := 20000, 5000
	proto := NewBuilder(rows, cols)
	fillBuilder(rng, proto, rows, cols)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Rebuild from a copied entry list so each iteration sorts and
		// assembles the same load.
		bb := NewBuilder(rows, cols)
		bb.entries = append(bb.entries[:0], proto.entries...)
		m := bb.Build()
		if m.NNZ() == 0 {
			b.Fatal("empty build")
		}
	}
}

func BenchmarkPartitionNNZ(b *testing.B) {
	m := heavyTailCSR(b, 50000, 2000, 7)
	buf := make([]Range, 0, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = m.PartitionNNZInto(56, buf[:0])
	}
	_ = buf
}

func BenchmarkSelectRowsInto(b *testing.B) {
	m := heavyTailCSR(b, 20000, 2000, 9)
	rows := make([]int, 512)
	for i := range rows {
		rows[i] = (i * 37) % m.NumRows
	}
	var arena CSR
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.SelectRowsInto(rows, &arena)
	}
}
