package sparse

import (
	"testing"
)

// FuzzCSRBuilder feeds the COO builder arbitrary triplet streams and checks
// the assembled CSR against the full structural contract: Validate passes,
// shape and nnz are consistent, and duplicate-summed totals are preserved.
// Values are small integers so duplicate summation is exact and the total
// check needs no tolerance.
func FuzzCSRBuilder(f *testing.F) {
	f.Add(3, 4, []byte{0, 0, 1, 1, 2, 2})
	f.Add(1, 1, []byte{0, 0, 0, 0, 0, 0, 0, 0}) // duplicate summing
	f.Add(5, 3, []byte{})                       // empty matrix
	f.Add(2, 7, []byte{1, 6, 3, 1, 0, 2, 1, 6, 5})
	f.Fuzz(func(t *testing.T, rows, cols int, stream []byte) {
		// Clamp the shape: the builder's contract starts at a valid
		// (rows, cols) box, and huge dimensions would just test the
		// allocator. The triplet stream stays raw fuzzer input.
		rows = 1 + abs(rows)%64
		cols = 1 + abs(cols)%64
		b := NewBuilder(rows, cols)
		var total int64
		counts := make(map[[2]int]bool)
		for k := 0; k+2 < len(stream); k += 3 {
			i := int(stream[k]) % rows
			j := int(stream[k+1]) % cols
			v := int64(stream[k+2]) - 128
			b.Add(i, j, float64(v))
			total += v
			counts[[2]int{i, j}] = true
		}
		m := b.Build()
		if err := m.Validate(); err != nil {
			t.Fatalf("built CSR fails Validate: %v", err)
		}
		if m.NumRows != rows || m.NumCols != cols {
			t.Fatalf("shape changed: got %dx%d want %dx%d", m.NumRows, m.NumCols, rows, cols)
		}
		if m.NNZ() != len(counts) {
			t.Fatalf("nnz %d, want %d distinct coordinates", m.NNZ(), len(counts))
		}
		var got int64
		for _, v := range m.Values {
			got += int64(v)
		}
		if got != total {
			t.Fatalf("duplicate summing lost mass: got %d want %d", got, total)
		}
		// Per-row access must agree with the flat arrays.
		var nnz int
		for i := 0; i < rows; i++ {
			c, v := m.Row(i)
			if len(c) != len(v) || len(c) != m.RowNNZ(i) {
				t.Fatalf("row %d views disagree: %d cols, %d vals, RowNNZ %d",
					i, len(c), len(v), m.RowNNZ(i))
			}
			nnz += len(c)
		}
		if nnz != m.NNZ() {
			t.Fatalf("row walk saw %d entries, NNZ says %d", nnz, m.NNZ())
		}
	})
}

func abs(x int) int {
	if x < 0 {
		if x == -x { // math.MinInt
			return 0
		}
		return -x
	}
	return x
}
