// Package sparse implements the Compressed Sparse Row (CSR) matrix format
// and the sparse kernels the study needs: sparse dot products against a dense
// model, scatter-add model updates, SpMV/SpMV-transpose for the synchronous
// engines, and dense conversion. CSR is the representation the paper uses
// for all sparse datasets (Section I, "Problem").
package sparse

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/tensor"
)

// CSR is a compressed-sparse-row matrix. Row i occupies the half-open range
// [RowPtr[i], RowPtr[i+1]) of ColIdx/Values. Column indices within a row are
// strictly increasing.
type CSR struct {
	NumRows, NumCols int
	RowPtr           []int64   // len NumRows+1
	ColIdx           []int32   // len nnz
	Values           []float64 // len nnz
}

// NNZ returns the number of stored (structurally non-zero) entries.
func (m *CSR) NNZ() int { return len(m.Values) }

// RowNNZ returns the number of stored entries of row i.
func (m *CSR) RowNNZ(i int) int { return int(m.RowPtr[i+1] - m.RowPtr[i]) }

// Row returns the column indices and values of row i as views.
func (m *CSR) Row(i int) ([]int32, []float64) {
	lo, hi := m.RowPtr[i], m.RowPtr[i+1]
	return m.ColIdx[lo:hi], m.Values[lo:hi]
}

// Validate checks structural invariants: monotone row pointers, in-range
// sorted column indices, finite values. It returns a descriptive error for
// the first violation found.
func (m *CSR) Validate() error {
	if m.NumRows < 0 || m.NumCols < 0 {
		return fmt.Errorf("sparse: negative dimensions %dx%d", m.NumRows, m.NumCols)
	}
	if len(m.RowPtr) != m.NumRows+1 {
		return fmt.Errorf("sparse: RowPtr length %d want %d", len(m.RowPtr), m.NumRows+1)
	}
	if m.RowPtr[0] != 0 {
		return fmt.Errorf("sparse: RowPtr[0] = %d want 0", m.RowPtr[0])
	}
	nnz := int64(len(m.Values))
	if int64(len(m.ColIdx)) != nnz {
		return fmt.Errorf("sparse: ColIdx length %d != Values length %d", len(m.ColIdx), nnz)
	}
	if m.RowPtr[m.NumRows] != nnz {
		return fmt.Errorf("sparse: RowPtr[last] = %d want nnz %d", m.RowPtr[m.NumRows], nnz)
	}
	for i := 0; i < m.NumRows; i++ {
		lo, hi := m.RowPtr[i], m.RowPtr[i+1]
		if lo > hi {
			return fmt.Errorf("sparse: row %d has RowPtr %d > %d", i, lo, hi)
		}
		prev := int32(-1)
		for k := lo; k < hi; k++ {
			c := m.ColIdx[k]
			if c < 0 || int(c) >= m.NumCols {
				return fmt.Errorf("sparse: row %d col %d out of range [0,%d)", i, c, m.NumCols)
			}
			if c <= prev {
				return fmt.Errorf("sparse: row %d columns not strictly increasing at %d", i, c)
			}
			if v := m.Values[k]; math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("sparse: row %d col %d non-finite value %v", i, c, v)
			}
			prev = c
		}
	}
	return nil
}

// RowDot returns the inner product of row i with the dense vector w.
func (m *CSR) RowDot(i int, w []float64) float64 {
	cols, vals := m.Row(i)
	var s float64
	for k, c := range cols {
		s += vals[k] * w[c]
	}
	return s
}

// RowAxpy computes w[c] += a*v for every stored (c, v) of row i: the
// scatter-add model update at the heart of sparse incremental SGD.
func (m *CSR) RowAxpy(i int, a float64, w []float64) {
	cols, vals := m.Row(i)
	for k, c := range cols {
		w[c] += a * vals[k]
	}
}

// MulVec computes y = A*x (len(x) == NumCols, len(y) == NumRows).
func (m *CSR) MulVec(x, y []float64) {
	if len(x) != m.NumCols || len(y) != m.NumRows {
		panic(fmt.Sprintf("sparse: MulVec shape mismatch A=%dx%d x=%d y=%d",
			m.NumRows, m.NumCols, len(x), len(y)))
	}
	for i := 0; i < m.NumRows; i++ {
		y[i] = m.RowDot(i, x)
	}
}

// MulVecT computes y = A^T*x (len(x) == NumRows, len(y) == NumCols),
// overwriting y.
func (m *CSR) MulVecT(x, y []float64) {
	if len(x) != m.NumRows || len(y) != m.NumCols {
		panic(fmt.Sprintf("sparse: MulVecT shape mismatch A=%dx%d x=%d y=%d",
			m.NumRows, m.NumCols, len(x), len(y)))
	}
	for j := range y {
		y[j] = 0
	}
	for i := 0; i < m.NumRows; i++ {
		if x[i] != 0 {
			m.RowAxpy(i, x[i], y)
		}
	}
}

// ToDense materialises the matrix as a dense tensor.Matrix. It panics if the
// dense size would exceed maxElems (pass 0 for no limit); this mirrors the
// paper's observation that rcv1 and news cannot be densified (256 GB / 217
// GB dense sizes in Table I).
func (m *CSR) ToDense(maxElems int64) *tensor.Matrix {
	if maxElems > 0 && int64(m.NumRows)*int64(m.NumCols) > maxElems {
		panic(fmt.Sprintf("sparse: dense %dx%d exceeds limit %d elements",
			m.NumRows, m.NumCols, maxElems))
	}
	d := tensor.NewMatrix(m.NumRows, m.NumCols)
	for i := 0; i < m.NumRows; i++ {
		cols, vals := m.Row(i)
		row := d.Row(i)
		for k, c := range cols {
			row[c] = vals[k]
		}
	}
	return d
}

// FromDense converts a dense matrix to CSR, dropping exact zeros.
func FromDense(d *tensor.Matrix) *CSR {
	b := NewBuilder(d.Rows, d.Cols)
	for i := 0; i < d.Rows; i++ {
		row := d.Row(i)
		for j, v := range row {
			if v != 0 {
				b.Add(i, j, v)
			}
		}
	}
	return b.Build()
}

// DenseBytes returns the size in bytes of the dense float64 representation.
func (m *CSR) DenseBytes() int64 {
	return int64(m.NumRows) * int64(m.NumCols) * 8
}

// SparseBytes returns the size in bytes of the CSR representation
// (8-byte values, 4-byte column indices, 8-byte row pointers).
func (m *CSR) SparseBytes() int64 {
	return int64(m.NNZ())*12 + int64(len(m.RowPtr))*8
}

// Density returns nnz / (rows*cols), in [0, 1].
func (m *CSR) Density() float64 {
	if m.NumRows == 0 || m.NumCols == 0 {
		return 0
	}
	return float64(m.NNZ()) / (float64(m.NumRows) * float64(m.NumCols))
}

// SelectRows returns a new CSR containing the given rows of m, in order.
func (m *CSR) SelectRows(rows []int) *CSR {
	return m.SelectRowsInto(rows, nil)
}

// SelectRowsInto is SelectRows writing into dst, reusing its array
// capacity (nil dst allocates a fresh matrix). The mini-batch engines call
// SelectRows once per batch; reusing one arena keeps the steady-state batch
// path allocation-free. dst must not alias m.
func (m *CSR) SelectRowsInto(rows []int, dst *CSR) *CSR {
	if dst == nil {
		dst = &CSR{}
	}
	dst.NumRows, dst.NumCols = len(rows), m.NumCols
	dst.RowPtr = growInt64(dst.RowPtr, len(rows)+1)
	dst.RowPtr[0] = 0
	var nnz int64
	for i, r := range rows {
		nnz += int64(m.RowNNZ(r))
		dst.RowPtr[i+1] = nnz
	}
	dst.ColIdx = growInt32(dst.ColIdx, int(nnz))
	dst.Values = growFloat64(dst.Values, int(nnz))
	for i, r := range rows {
		cols, vals := m.Row(r)
		copy(dst.ColIdx[dst.RowPtr[i]:], cols)
		copy(dst.Values[dst.RowPtr[i]:], vals)
	}
	return dst
}

// growInt64 resizes s to n elements, reusing capacity when possible.
func growInt64(s []int64, n int) []int64 {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]int64, n)
}

func growInt32(s []int32, n int) []int32 {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]int32, n)
}

func growFloat64(s []float64, n int) []float64 {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]float64, n)
}

// Builder accumulates COO triplets and assembles a valid CSR. Duplicate
// (row, col) entries are summed; columns are sorted per row at Build time.
type Builder struct {
	rows, cols int
	entries    []entry
}

type entry struct {
	row int
	col int32
	val float64
}

// NewBuilder returns a Builder for a rows x cols matrix.
func NewBuilder(rows, cols int) *Builder {
	return &Builder{rows: rows, cols: cols}
}

// Add records the triplet (i, j, v). Zero values are kept (they become
// structural entries), matching LIBSVM semantics.
func (b *Builder) Add(i, j int, v float64) {
	if i < 0 || i >= b.rows || j < 0 || j >= b.cols {
		panic(fmt.Sprintf("sparse: Add(%d,%d) out of %dx%d", i, j, b.rows, b.cols))
	}
	b.entries = append(b.entries, entry{i, int32(j), v})
}

// Build assembles the CSR, sorting columns within rows and summing
// duplicates. A dedup-counting pre-pass sizes ColIdx/Values exactly, so a
// news20-scale load performs two large allocations instead of append-
// doubling through dozens of reallocated copies.
func (b *Builder) Build() *CSR {
	sort.Slice(b.entries, func(x, y int) bool {
		if b.entries[x].row != b.entries[y].row {
			return b.entries[x].row < b.entries[y].row
		}
		return b.entries[x].col < b.entries[y].col
	})
	uniq := 0
	for k := range b.entries {
		if k == 0 || b.entries[k].row != b.entries[k-1].row || b.entries[k].col != b.entries[k-1].col {
			uniq++
		}
	}
	m := &CSR{NumRows: b.rows, NumCols: b.cols}
	m.RowPtr = make([]int64, b.rows+1)
	m.ColIdx = make([]int32, 0, uniq)
	m.Values = make([]float64, 0, uniq)
	for k := 0; k < len(b.entries); {
		e := b.entries[k]
		v := e.val
		k++
		for k < len(b.entries) && b.entries[k].row == e.row && b.entries[k].col == e.col {
			v += b.entries[k].val
			k++
		}
		m.ColIdx = append(m.ColIdx, e.col)
		m.Values = append(m.Values, v)
		m.RowPtr[e.row+1] = int64(len(m.Values))
	}
	for i := 1; i <= b.rows; i++ {
		if m.RowPtr[i] < m.RowPtr[i-1] {
			m.RowPtr[i] = m.RowPtr[i-1]
		}
	}
	return m
}

// RowStats summarises the per-row nnz distribution: minimum, maximum and
// average number of stored entries. It reproduces the "#nnz/exp" column of
// the paper's Table I.
func (m *CSR) RowStats() (min, max int, avg float64) {
	if m.NumRows == 0 {
		return 0, 0, 0
	}
	min = math.MaxInt
	var total int64
	for i := 0; i < m.NumRows; i++ {
		n := m.RowNNZ(i)
		if n < min {
			min = n
		}
		if n > max {
			max = n
		}
		total += int64(n)
	}
	return min, max, float64(total) / float64(m.NumRows)
}
