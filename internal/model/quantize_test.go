package model

import (
	"math"
	"math/rand"
	"testing"
)

func TestQuantizeRoundtripWithinHalfStep(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, dim := range []int{1, 63, 64, 65, 300, 1000} {
		w := make([]float64, dim)
		for i := range w {
			w[i] = rng.NormFloat64() * math.Exp(rng.NormFloat64())
		}
		qw := Quantize(w)
		if qw.Dim != dim || len(qw.Q) != dim || len(qw.Scales) != (dim+QuantStripe-1)/QuantStripe {
			t.Fatalf("dim %d: bad shapes %d/%d/%d", dim, qw.Dim, len(qw.Q), len(qw.Scales))
		}
		for i := range w {
			sc := qw.Scales[i>>6]
			if err := math.Abs(qw.At(i) - w[i]); err > sc/2*(1+1e-12) {
				t.Errorf("dim %d comp %d: |%g - %g| = %g > scale/2 = %g",
					dim, i, qw.At(i), w[i], err, sc/2)
			}
		}
	}
}

func TestQuantizeZeroStripeExact(t *testing.T) {
	w := make([]float64, 128)
	for i := 64; i < 128; i++ {
		w[i] = float64(i)
	}
	qw := Quantize(w)
	if qw.Scales[0] != 1 {
		t.Errorf("all-zero stripe scale = %g, want 1", qw.Scales[0])
	}
	for i := 0; i < 64; i++ {
		if qw.At(i) != 0 {
			t.Errorf("zero weight %d dequantised to %g", i, qw.At(i))
		}
	}
}

func TestQuantizeExtremesHitFullRange(t *testing.T) {
	w := make([]float64, 64)
	w[0], w[1] = 3, -3
	qw := Quantize(w)
	if qw.Q[0] != 127 || qw.Q[1] != -127 {
		t.Errorf("maxabs components coded %d/%d, want 127/-127", qw.Q[0], qw.Q[1])
	}
}

func TestQuantRowDotMatchesDequantizedDot(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	ds := testDataset(t, 40, 200, 0.1, 7)
	w := make([]float64, 200)
	for i := range w {
		w[i] = rng.NormFloat64()
	}
	qw := Quantize(w)
	dq := make([]float64, 200)
	qw.Dequantize(dq)
	for i := 0; i < ds.N(); i++ {
		got := qw.RowDot(ds.X, i)
		want := ds.X.RowDot(i, dq)
		if math.Abs(got-want) > 1e-9*(1+math.Abs(want)) {
			t.Errorf("row %d: RowDot %g != dequantised dot %g", i, got, want)
		}
		// And the analytic bound holds against the float64 dot.
		ref := ds.X.RowDot(i, w)
		if d, b := math.Abs(got-ref), qw.RowErrorBound(ds.X, i); d > b*(1+1e-9)+1e-12 {
			t.Errorf("row %d: delta %g exceeds analytic bound %g", i, d, b)
		}
	}
}

func TestQuantScoreLinearModels(t *testing.T) {
	ds := testDataset(t, 30, 150, 0.1, 8)
	rng := rand.New(rand.NewSource(9))
	w := make([]float64, 150)
	for i := range w {
		w[i] = rng.NormFloat64() * 0.3
	}
	qw := Quantize(w)
	for _, m := range []QuantScorer{NewLR(150), NewSVM(150)} {
		scr := m.NewScratch()
		for i := 0; i < ds.N(); i++ {
			got := m.QuantScore(qw, ds, i)
			ref := m.Score(w, ds, i, scr)
			if d, b := math.Abs(got-ref), qw.RowErrorBound(ds.X, i); d > b*(1+1e-9)+1e-12 {
				t.Errorf("%s row %d: quant score delta %g exceeds bound %g", m.Name(), i, d, b)
			}
		}
	}
}

// TestQuantizedUpdaterNearestDropsUnderflow pins the round-to-nearest
// failure mode the stochastic mode exists to fix: a delta below half a
// quantisation step is dropped entirely.
func TestQuantizedUpdaterNearestDropsUnderflow(t *testing.T) {
	u := QuantizedUpdater{FracBits: 8} // grid step 1/256
	w := make([]float64, 1)
	u.Add(w, 0, 1.0/1024) // quarter of a step
	if w[0] != 0 {
		t.Errorf("sub-half-step delta not dropped: w[0] = %g", w[0])
	}
	u.Add(w, 0, 3.0/512) // 1.5 steps -> rounds to nearest even grid point
	if want := math.Round(3.0/512*256) / 256; w[0] != want {
		t.Errorf("w[0] = %g, want %g", w[0], want)
	}
}

// TestStochasticRoundingUnbiased checks the Buckwild property: over many
// draws, the mean applied update of a sub-step delta approaches the true
// delta instead of zero.
func TestStochasticRoundingUnbiased(t *testing.T) {
	u := NewStochasticQuantized(8, 42)
	const delta = 1.0 / 1024 // 0.25 quantisation steps
	const n = 200000
	w := make([]float64, 1)
	for i := 0; i < n; i++ {
		u.Add(w, 0, delta)
	}
	mean := w[0] / n
	// Each applied update is 0 or 1/256 with P(step) = 0.25; the mean has
	// stderr step*sqrt(p(1-p)/n) ~ 3.8e-6. 5 sigma.
	if math.Abs(mean-delta) > 5*(1.0/256)*math.Sqrt(0.25*0.75/n) {
		t.Errorf("stochastic mean %g too far from true delta %g", mean, delta)
	}
	// Round-to-nearest over the same stream applies exactly nothing.
	rn := QuantizedUpdater{FracBits: 8}
	w2 := make([]float64, 1)
	for i := 0; i < 1000; i++ {
		rn.Add(w2, 0, delta)
	}
	if w2[0] != 0 {
		t.Errorf("round-to-nearest applied %g, want 0", w2[0])
	}
}

func TestStochasticRounderDeterministic(t *testing.T) {
	a := NewStochasticRounder(7)
	b := NewStochasticRounder(7)
	for i := 0; i < 100; i++ {
		va, vb := a.uniform(), b.uniform()
		if va != vb {
			t.Fatalf("draw %d: %g != %g under the same seed", i, va, vb)
		}
		if va < 0 || va >= 1 {
			t.Fatalf("draw %d: %g outside [0,1)", i, va)
		}
	}
	if c := NewStochasticRounder(8).uniform(); c == NewStochasticRounder(7).uniform() {
		t.Error("different seeds produced an identical first draw")
	}
}

// TestQuantizedUpdaterGridAlignment: every applied delta is an exact
// multiple of the grid step, and exact-grid deltas pass through unchanged
// under both modes.
func TestQuantizedUpdaterGridAlignment(t *testing.T) {
	for _, u := range []QuantizedUpdater{
		{FracBits: 10},
		NewStochasticQuantized(10, 3),
	} {
		w := make([]float64, 1)
		u.Add(w, 0, 5.0/1024)
		if w[0] != 5.0/1024 {
			t.Errorf("exact grid delta perturbed: %g", w[0])
		}
		rng := rand.New(rand.NewSource(11))
		for i := 0; i < 100; i++ {
			before := w[0]
			u.Add(w, 0, rng.NormFloat64())
			applied := w[0] - before
			steps := applied * 1024
			if math.Abs(steps-math.Round(steps)) > 1e-9 {
				t.Fatalf("applied delta %g is not grid-aligned", applied)
			}
		}
	}
}

func TestQuantizedUpdaterZeroFracBitsIsRaw(t *testing.T) {
	u := QuantizedUpdater{}
	w := make([]float64, 1)
	u.Add(w, 0, 0.123456789)
	if w[0] != 0.123456789 {
		t.Errorf("FracBits<=0 should pass through exactly, got %g", w[0])
	}
}
