package model

import (
	"math"

	"repro/internal/data"
	"repro/internal/tensor"
)

// MLPChunk is the default number of examples the batch formulation feeds
// through the GEMM pipeline at a time. With the paper's architectures
// (hidden widths 10 and 5) every matrix-product result then stays below
// ViennaCL's 5000-element parallelisation threshold (at most ~10 x 300 for
// the weight gradients and chunk x 10 for the forward products), which is
// exactly the mechanism behind the paper's "only ~2x parallel-CPU speedup
// for sync MLP" finding (Section IV-B and Fig. 6). MLP.Chunk overrides it
// (the GPU pipeline batches more per kernel to amortise launches).
const MLPChunk = 256

// chunkSize returns the configured pipeline chunk.
func (m *MLP) chunkSize() int {
	if m.Chunk > 0 {
		return m.Chunk
	}
	return MLPChunk
}

// BatchGrad implements BatchModel: a chunked dense GEMM forward/backward
// pass accumulating the mean gradient over the given rows (nil = all rows).
// The transformed MLP datasets are processed in dense format, as the paper
// does.
func (m *MLP) BatchGrad(b Ops, w []float64, ds *data.Dataset, rows []int, g []float64) float64 {
	n := ds.N()
	rowAt := func(i int) int { return i }
	if rows != nil {
		n = len(rows)
		rowAt = func(i int) int { return rows[i] }
	}
	for i := range g {
		g[i] = 0
	}
	L := m.Layers()
	in0 := m.Widths[0]
	chunk := m.chunkSize()

	// Chunk buffers, cached on the backend scratch when one is available so
	// the steady-state epoch re-uses them across batches.
	a0, acts, deltas, classes := batchScratchOf(b).mlpChunkBufs(m, chunk)

	var totalLoss float64
	for start := 0; start < n; start += chunk {
		cn := chunk
		if start+cn > n {
			cn = n - start
		}
		// Materialise the dense chunk (host-side data staging; the
		// paper excludes transfer time from kernel timing).
		a0.Zero()
		for i := 0; i < cn; i++ {
			r := rowAt(start + i)
			cols, vals := ds.X.Row(r)
			row := a0.Row(i)
			for k, c := range cols {
				row[c] = vals[k]
			}
			classes[i] = classOf(ds.Y[r])
		}
		a0c := &tensor.Matrix{Rows: cn, Cols: in0, Data: a0.Data[:cn*in0]}

		// Forward: Z_{l+1} = A_l * W_l^T (+ bias), sigmoid on hidden,
		// softmax on the output layer.
		prev := a0c
		for l := 0; l < L; l++ {
			zl := chunkView(acts[l+1], cn)
			b.GemmNT(1, prev, m.Weight(w, l), 0, zl)
			bias := m.Bias(w, l)
			if l == L-1 {
				b.RowsMap(zl, func(_ int, row []float64) {
					tensor.Axpy(1, bias, row)
					tensor.Softmax(row, row)
				})
			} else {
				b.RowsMap(zl, func(_ int, row []float64) {
					for k := range row {
						row[k] = tensor.Sigmoid(row[k] + bias[k])
					}
				})
			}
			prev = zl
		}

		// Loss and output delta: delta_L = probs - onehot.
		probs := chunkView(acts[L], cn)
		for i := 0; i < cn; i++ {
			p := probs.At(i, classes[i])
			if p < 1e-300 {
				p = 1e-300
			}
			totalLoss += -math.Log(p)
		}
		dL := chunkView(deltas[L], cn)
		b.RowsMap(dL, func(i int, row []float64) {
			copy(row, probs.Row(i))
			row[classes[i]] -= 1
		})

		// Backward: delta_l = (delta_{l+1} * W_l) .* a_l(1-a_l);
		// gradW_l += delta_{l+1}^T * A_l; gradb_l += column sums.
		for l := L - 1; l >= 0; l-- {
			dNext := chunkView(deltas[l+1], cn)
			var al *tensor.Matrix
			if l == 0 {
				al = a0c
			} else {
				al = chunkView(acts[l], cn)
			}
			gw := m.Weight(g, l)
			b.GemmTN(1, dNext, al, 1, gw)
			gb := m.Bias(g, l)
			for i := 0; i < cn; i++ {
				tensor.Axpy(1, dNext.Row(i), gb)
			}
			if l > 0 {
				d := chunkView(deltas[l], cn)
				b.Gemm(1, dNext, m.Weight(w, l), 0, d)
				b.RowsMap(d, func(i int, row []float64) {
					arow := al.Row(i)
					for k := range row {
						row[k] *= arow[k] * (1 - arow[k])
					}
				})
			}
		}
	}
	b.Scal(1/float64(n), g)
	return totalLoss / float64(n)
}

// chunkView returns the first cn rows of m as a matrix view.
func chunkView(m *tensor.Matrix, cn int) *tensor.Matrix {
	return &tensor.Matrix{Rows: cn, Cols: m.Cols, Data: m.Data[:cn*m.Cols]}
}

// mlpBatchScratch caches the chunk-pipeline matrices of MLP.BatchGrad. The
// buffers depend only on (chunk, widths); a shape change rebuilds them.
type mlpBatchScratch struct {
	chunk   int
	widths  []int
	a0      *tensor.Matrix
	acts    []*tensor.Matrix
	deltas  []*tensor.Matrix
	classes []int
}

// mlpChunkBufs returns the chunk buffers for m, reusing the cached set when
// the shape matches (nil scratch allocates fresh buffers, the seed path).
// Every buffer is fully overwritten per chunk, so reuse cannot leak state
// between batches.
func (s *BatchScratch) mlpChunkBufs(m *MLP, chunk int) (*tensor.Matrix, []*tensor.Matrix, []*tensor.Matrix, []int) {
	if s == nil {
		return newMLPChunkBufs(m, chunk)
	}
	ms := &s.mlp
	if ms.a0 == nil || ms.chunk != chunk || !equalWidths(ms.widths, m.Widths) {
		ms.a0, ms.acts, ms.deltas, ms.classes = newMLPChunkBufs(m, chunk)
		ms.chunk = chunk
		ms.widths = append(ms.widths[:0], m.Widths...)
	}
	return ms.a0, ms.acts, ms.deltas, ms.classes
}

func newMLPChunkBufs(m *MLP, chunk int) (*tensor.Matrix, []*tensor.Matrix, []*tensor.Matrix, []int) {
	L := m.Layers()
	a0 := tensor.NewMatrix(chunk, m.Widths[0])
	acts := make([]*tensor.Matrix, L+1) // acts[l]: chunk x Widths[l]
	deltas := make([]*tensor.Matrix, L+1)
	for l := 1; l <= L; l++ {
		acts[l] = tensor.NewMatrix(chunk, m.Widths[l])
		deltas[l] = tensor.NewMatrix(chunk, m.Widths[l])
	}
	classes := make([]int, chunk)
	return a0, acts, deltas, classes
}

func equalWidths(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
