package model

import (
	"repro/internal/data"
)

// SVM is a linear support vector machine with the (unregularised) hinge loss
//
//	f(w; x, y) = max(0, 1 - y * w.x),  y in {-1, +1}.
//
// The subgradient is -y*x when the margin is violated and 0 otherwise, so —
// like LR — its support equals the support of x.
type SVM struct {
	Dim int
}

// NewSVM returns an SVM task over dim features.
func NewSVM(dim int) *SVM { return &SVM{Dim: dim} }

// Name implements Model.
func (m *SVM) Name() string { return "svm" }

// NumParams implements Model.
func (m *SVM) NumParams() int { return m.Dim }

// InitParams implements Model: zero initialisation (initial loss 1). The
// vector is 64-byte aligned for the striped-Hogwild cache-line layout.
func (m *SVM) InitParams(seed int64) []float64 { return AlignedVec(m.Dim) }

// NewScratch implements Model; SVM needs no scratch.
func (m *SVM) NewScratch() Scratch { return nil }

// ExampleLoss implements Model.
func (m *SVM) ExampleLoss(w []float64, ds *data.Dataset, i int, _ Scratch) float64 {
	margin := ds.Y[i] * ds.X.RowDot(i, w)
	if margin >= 1 {
		return 0
	}
	return 1 - margin
}

// AccumGrad implements Model.
func (m *SVM) AccumGrad(w []float64, ds *data.Dataset, i int, scale float64, g []float64, _ Scratch) {
	y := ds.Y[i]
	if y*ds.X.RowDot(i, w) >= 1 {
		return
	}
	ds.X.RowAxpy(i, -y*scale, g)
}

// SGDStep implements Model: w <- w + step*y*x when the margin is violated.
func (m *SVM) SGDStep(w []float64, ds *data.Dataset, i int, step float64, upd Updater, _ Scratch) {
	y := ds.Y[i]
	if y*ds.X.RowDot(i, w) >= 1 {
		return
	}
	cols, vals := ds.X.Row(i)
	coef := step * y
	for k, c := range cols {
		upd.Add(w, int(c), coef*vals[k])
	}
}

// GradSupport implements Model.
func (m *SVM) GradSupport(ds *data.Dataset, i int) int { return ds.X.RowNNZ(i) }

// Score implements Scorer: the margin w.x (the SVM decision value; no
// probability calibration is implied).
func (m *SVM) Score(w []float64, ds *data.Dataset, i int, _ Scratch) float64 {
	return ds.X.RowDot(i, w)
}

// QuantScore implements QuantScorer: the margin against the int8 weights.
func (m *SVM) QuantScore(qw *QuantizedWeights, ds *data.Dataset, i int) float64 {
	return qw.RowDot(ds.X, i)
}

// BatchGrad implements BatchModel: margins = X*w, hinge coefficients as an
// element-wise kernel, g = X^T*coef / n.
func (m *SVM) BatchGrad(b Ops, w []float64, ds *data.Dataset, rows []int, g []float64) float64 {
	scr := batchScratchOf(b)
	x := ds.X
	if rows != nil {
		x = scr.selectRows(ds.X, rows)
	}
	n := x.NumRows
	margins := scr.marginBuf(n)
	b.SpMV(x, w, margins)
	ys := scr.selectLabelsInto(ds, rows)
	coef := scr.coefBuf(n)
	b.Map(coef, margins, ys, func(margin, y float64) float64 {
		if y*margin >= 1 {
			return 0
		}
		return -y
	})
	var loss float64
	for i := 0; i < n; i++ {
		if v := 1 - ys[i]*margins[i]; v > 0 {
			loss += v
		}
	}
	b.SpMVT(x, coef, g)
	b.Scal(1/float64(n), g)
	return loss / float64(n)
}

var (
	_ Model       = (*SVM)(nil)
	_ BatchModel  = (*SVM)(nil)
	_ Scorer      = (*SVM)(nil)
	_ QuantScorer = (*SVM)(nil)
)
