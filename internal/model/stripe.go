package model

import (
	"math/bits"
	"unsafe"
)

// Cache-line striping for the Hogwild hot path (DESIGN §14). The shared
// model vector is allocated 64-byte aligned so that stripe k of
// StripeWeights float64 components occupies exactly cache line k, and each
// worker micro-batches its component updates in a private StripeBuffer that
// flushes in ascending index order. Coalescing merges repeated hits on hot
// components into one store, and the sorted flush turns the workers'
// scattered write streams into stripe-ordered sweeps — fewer issued
// shared-line stores means fewer CAS retries and less cache-line bouncing
// under the atomic disciplines, and fewer lost writes under the raw one.

// StripeWeights is the number of float64 model components per 64-byte cache
// line — the stripe width of the striped-Hogwild layout.
const StripeWeights = 8

// cacheLine is the assumed cache-line size in bytes.
const cacheLine = 64

// DefaultStripeWindow is the per-worker update micro-batch size used when a
// StripeBuffer is built with window <= 0. Large enough that the dataset's
// hot columns repeat inside one window (coalescing pays) and the flush sort
// amortises; small enough that staleness stays a tiny fraction of an epoch.
const DefaultStripeWindow = 256

// AlignedVec returns a zeroed []float64 of length n whose backing array
// starts on a 64-byte boundary, so model stripe k coincides with cache line
// k. The Go allocator only guarantees 8-byte alignment for float64 slices;
// this over-allocates by up to StripeWeights-1 elements and re-slices.
func AlignedVec(n int) []float64 {
	if n <= 0 {
		return nil
	}
	buf := make([]float64, n+StripeWeights-1)
	off := 0
	if rem := uintptr(unsafe.Pointer(&buf[0])) % cacheLine; rem != 0 {
		off = int((cacheLine - rem) / unsafe.Sizeof(float64(0)))
	}
	return buf[off : off+n : off+n]
}

// StripeBuffer is a per-worker micro-batching Updater: Add accumulates
// deltas in a private dense accumulator (O(1), coalescing duplicates as
// they arrive) and marks the component in a touch bitmap; after window
// pending updates (or an explicit Flush) the bitmap is swept in word order
// and the summed deltas applied through Base in ascending — hence
// stripe-ordered — index order. The sweep costs O(dim/64 + unique), so no
// sort (and no per-comparison interface dispatch) appears on the hot path.
//
// A StripeBuffer is owned by exactly one worker; only Base is shared. The
// private state is one float64 accumulator plus one touch bitmap of the
// model dimension — the same O(dim) per-worker memory the batch engines
// already spend on gradient buffers. Note the buffered deltas land against
// the value of w at flush time, not Add time: bounded staleness of at most
// one window, the same currency every asynchronous engine here trades in.
type StripeBuffer struct {
	// Base is the shared write discipline the coalesced updates land
	// through (RawUpdater, AtomicUpdater, ...).
	Base Updater

	acc     []float64 // dense per-component delta accumulator
	seen    []uint64  // touch bitmap over acc
	pending int       // Adds since the last flush
	window  int

	flushes   int64
	coalesced int64
	applied   int64
}

// NewStripeBuffer returns a buffer over a dim-component model, flushing
// through base every window updates (DefaultStripeWindow if window <= 0).
func NewStripeBuffer(base Updater, dim, window int) *StripeBuffer {
	if window <= 0 {
		window = DefaultStripeWindow
	}
	return &StripeBuffer{
		Base:   base,
		acc:    make([]float64, dim),
		seen:   make([]uint64, (dim+63)/64),
		window: window,
	}
}

// Window returns the flush threshold.
func (b *StripeBuffer) Window() int { return b.window }

// Add implements Updater: it accumulates the update privately, flushing
// when the window fills. The steady-state path is allocation-free.
func (b *StripeBuffer) Add(w []float64, i int, delta float64) {
	b.seen[uint(i)>>6] |= 1 << (uint(i) & 63)
	b.acc[i] += delta
	b.pending++
	if b.pending >= b.window {
		b.Flush(w)
	}
}

// Flush applies the pending coalesced updates through Base in ascending
// index order and resets the buffer. It must be called at the end of every
// work segment so no update outlives its epoch.
func (b *StripeBuffer) Flush(w []float64) {
	if b.pending == 0 {
		return
	}
	var unique int64
	for wi, word := range b.seen {
		if word == 0 {
			continue
		}
		base := wi << 6
		for word != 0 {
			i := base + bits.TrailingZeros64(word)
			word &= word - 1 // clear lowest set bit
			b.Base.Add(w, i, b.acc[i])
			b.acc[i] = 0
			unique++
		}
		b.seen[wi] = 0
	}
	b.flushes++
	b.coalesced += int64(b.pending) - unique
	b.applied += unique
	b.pending = 0
}

// Pending returns the number of buffered, unflushed updates.
func (b *StripeBuffer) Pending() int { return b.pending }

// Flushes returns the cumulative flush count.
func (b *StripeBuffer) Flushes() int64 { return b.flushes }

// Coalesced returns the cumulative count of updates merged into an earlier
// update of the same component — shared-line stores the unstriped path
// would have issued and this path did not.
func (b *StripeBuffer) Coalesced() int64 { return b.coalesced }

// Applied returns the cumulative count of updates issued through Base.
// Applied+Coalesced equals the number of Adds received (once flushed).
func (b *StripeBuffer) Applied() int64 { return b.applied }

var _ Updater = (*StripeBuffer)(nil)
