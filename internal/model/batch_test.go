package model

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/sparse"
	"repro/internal/tensor"
)

// seqOps is a minimal Ops implementation backed directly by the tensor and
// sparse kernels, used to test the batch formulations in isolation from the
// cost-accounting backends.
type seqOps struct{}

func (seqOps) Gemv(alpha float64, a *tensor.Matrix, x []float64, beta float64, y []float64) {
	tensor.Gemv(alpha, a, x, beta, y)
}
func (seqOps) GemvT(alpha float64, a *tensor.Matrix, x []float64, beta float64, y []float64) {
	tensor.GemvT(alpha, a, x, beta, y)
}
func (seqOps) Gemm(alpha float64, a, b *tensor.Matrix, beta float64, c *tensor.Matrix) {
	tensor.Gemm(alpha, a, b, beta, c)
}
func (seqOps) GemmNT(alpha float64, a, b *tensor.Matrix, beta float64, c *tensor.Matrix) {
	tensor.GemmNT(alpha, a, b, beta, c)
}
func (seqOps) GemmTN(alpha float64, a, b *tensor.Matrix, beta float64, c *tensor.Matrix) {
	tensor.GemmTN(alpha, a, b, beta, c)
}
func (seqOps) SpMV(a *sparse.CSR, x, y []float64)  { a.MulVec(x, y) }
func (seqOps) SpMVT(a *sparse.CSR, x, y []float64) { a.MulVecT(x, y) }
func (seqOps) Axpy(alpha float64, x, y []float64)  { tensor.Axpy(alpha, x, y) }
func (seqOps) Scal(alpha float64, x []float64)     { tensor.Scal(alpha, x) }
func (seqOps) Map(dst, src, aux []float64, f func(s, a float64) float64) {
	for i := range dst {
		if aux == nil {
			dst[i] = f(src[i], 0)
		} else {
			dst[i] = f(src[i], aux[i])
		}
	}
}
func (seqOps) RowsMap(m *tensor.Matrix, f func(i int, row []float64)) {
	for i := 0; i < m.Rows; i++ {
		f(i, m.Row(i))
	}
}

var _ Ops = seqOps{}

// checkBatchEqualsMeanOfExamples is the central synchronous-engine
// invariant: BatchGrad over a row set must equal the mean of the
// per-example gradients, and its loss the mean of the per-example losses.
func checkBatchEqualsMeanOfExamples(t *testing.T, m BatchModel, dsRows []int, seed int64, tol float64) {
	t.Helper()
	ds := testDataset(t, 25, 9, 0.5, seed)
	rng := rand.New(rand.NewSource(seed + 1))
	w := make([]float64, m.NumParams())
	for j := range w {
		w[j] = rng.NormFloat64() * 0.4
	}
	gotG := make([]float64, m.NumParams())
	gotLoss := m.BatchGrad(seqOps{}, w, ds, dsRows, gotG)

	rows := dsRows
	if rows == nil {
		rows = make([]int, ds.N())
		for i := range rows {
			rows[i] = i
		}
	}
	wantG := make([]float64, m.NumParams())
	scr := m.NewScratch()
	var wantLoss float64
	for _, r := range rows {
		m.AccumGrad(w, ds, r, 1.0/float64(len(rows)), wantG, scr)
		wantLoss += m.ExampleLoss(w, ds, r, scr)
	}
	wantLoss /= float64(len(rows))

	if math.Abs(gotLoss-wantLoss) > tol*math.Max(1, math.Abs(wantLoss)) {
		t.Fatalf("%s: batch loss %v, mean of examples %v", m.Name(), gotLoss, wantLoss)
	}
	for j := range gotG {
		diff := math.Abs(gotG[j] - wantG[j])
		if diff > tol*math.Max(1, math.Abs(wantG[j])) {
			t.Fatalf("%s: batch grad[%d] = %v, mean of examples %v", m.Name(), j, gotG[j], wantG[j])
		}
	}
}

func TestLRBatchGradEqualsMean(t *testing.T) {
	checkBatchEqualsMeanOfExamples(t, NewLR(9), nil, 21, 1e-9)
}

func TestSVMBatchGradEqualsMean(t *testing.T) {
	checkBatchEqualsMeanOfExamples(t, NewSVM(9), nil, 22, 1e-9)
}

func TestMLPBatchGradEqualsMean(t *testing.T) {
	checkBatchEqualsMeanOfExamples(t, NewMLP([]int{9, 6, 4, 2}), nil, 23, 1e-8)
}

func TestBatchGradRowSubset(t *testing.T) {
	rows := []int{3, 7, 11, 19}
	checkBatchEqualsMeanOfExamples(t, NewLR(9), rows, 24, 1e-9)
	checkBatchEqualsMeanOfExamples(t, NewSVM(9), rows, 25, 1e-9)
	checkBatchEqualsMeanOfExamples(t, NewMLP([]int{9, 5, 2}), rows, 26, 1e-8)
}

func TestMLPChunkSizeInvariant(t *testing.T) {
	// The chunk size is a kernel-granularity choice; the gradient must be
	// identical (up to float association) for any value.
	ds := testDataset(t, 40, 8, 0.6, 27)
	rng := rand.New(rand.NewSource(28))
	base := NewMLP([]int{8, 6, 2})
	w := make([]float64, base.NumParams())
	for j := range w {
		w[j] = rng.NormFloat64() * 0.3
	}
	ref := make([]float64, base.NumParams())
	base.BatchGrad(seqOps{}, w, ds, nil, ref)
	for _, chunk := range []int{1, 7, 16, 512} {
		m := NewMLP([]int{8, 6, 2})
		m.Chunk = chunk
		g := make([]float64, m.NumParams())
		m.BatchGrad(seqOps{}, w, ds, nil, g)
		for j := range g {
			if math.Abs(g[j]-ref[j]) > 1e-9 {
				t.Fatalf("chunk %d: grad[%d] = %v, want %v", chunk, j, g[j], ref[j])
			}
		}
	}
}
