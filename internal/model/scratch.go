package model

import (
	"repro/internal/data"
	"repro/internal/sparse"
)

// BatchScratch holds the reusable buffers of the BatchGrad hot path:
// margin/coefficient/label vectors, the SelectRows arena for mini-batch row
// subsets, and the MLP chunk-pipeline matrices. A backend that owns one and
// exposes it through BatchScratchProvider makes steady-state BatchGrad
// allocation-free; without a provider, BatchGrad falls back to fresh
// allocations (the seed behaviour).
//
// A BatchScratch belongs to whoever drives the backend: backends are
// single-caller objects (each concurrent Hogbatch worker owns its own), so
// no locking is needed. Models stay stateless — scratch travels with the
// backend, never with the Model, because one Model instance is shared by
// concurrent workers.
type BatchScratch struct {
	margins []float64
	coef    []float64
	labels  []float64
	sel     sparse.CSR
	mlp     mlpBatchScratch
}

// BatchScratchProvider is implemented by backends that carry a reusable
// BatchScratch. The CPU backend implements it; the simulated-GPU backend
// deliberately does not, because its structure-dependent kernel-cost cache
// is keyed by *sparse.CSR identity and an arena that mutates in place under
// a stable pointer would poison it.
type BatchScratchProvider interface {
	BatchScratch() *BatchScratch
}

// batchScratchOf returns the backend's scratch, or nil when the backend
// does not provide one (every helper below treats nil as "allocate fresh").
func batchScratchOf(b Ops) *BatchScratch {
	if p, ok := b.(BatchScratchProvider); ok {
		return p.BatchScratch()
	}
	return nil
}

// grow returns buf resized to n, reusing capacity when possible.
func grow(buf []float64, n int) []float64 {
	if cap(buf) >= n {
		return buf[:n]
	}
	return make([]float64, n)
}

// marginBuf returns the reusable margin vector of length n.
func (s *BatchScratch) marginBuf(n int) []float64 {
	if s == nil {
		return make([]float64, n)
	}
	s.margins = grow(s.margins, n)
	return s.margins
}

// coefBuf returns the reusable coefficient vector of length n.
func (s *BatchScratch) coefBuf(n int) []float64 {
	if s == nil {
		return make([]float64, n)
	}
	s.coef = grow(s.coef, n)
	return s.coef
}

// selectRows returns the row subset of x as a CSR backed by the scratch
// arena (or a fresh matrix without scratch).
func (s *BatchScratch) selectRows(x *sparse.CSR, rows []int) *sparse.CSR {
	if s == nil {
		return x.SelectRows(rows)
	}
	return x.SelectRowsInto(rows, &s.sel)
}

// selectLabelsInto returns the label vector for the row subset (nil rows =
// the dataset's own label slice), reusing the scratch label buffer.
func (s *BatchScratch) selectLabelsInto(ds *data.Dataset, rows []int) []float64 {
	if rows == nil {
		return ds.Y
	}
	var ys []float64
	if s == nil {
		ys = make([]float64, len(rows))
	} else {
		s.labels = grow(s.labels, len(rows))
		ys = s.labels
	}
	for i, r := range rows {
		ys[i] = ds.Y[r]
	}
	return ys
}
