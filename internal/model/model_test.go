package model

import (
	"math"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/data"
	"repro/internal/sparse"
	"repro/internal/tensor"
)

// testDataset builds a small random sparse dataset for gradient checking.
func testDataset(t testing.TB, n, d int, density float64, seed int64) *data.Dataset {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	b := sparse.NewBuilder(n, d)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		nnz := 0
		for j := 0; j < d; j++ {
			if rng.Float64() < density {
				b.Add(i, j, rng.NormFloat64())
				nnz++
			}
		}
		if nnz == 0 {
			b.Add(i, rng.Intn(d), 1)
		}
		if rng.Float64() < 0.5 {
			y[i] = 1
		} else {
			y[i] = -1
		}
	}
	ds := &data.Dataset{Name: "test", X: b.Build(), Y: y}
	if err := ds.Validate(); err != nil {
		t.Fatal(err)
	}
	return ds
}

// finiteDiffGrad approximates the gradient of ExampleLoss at w numerically.
func finiteDiffGrad(m Model, w []float64, ds *data.Dataset, i int) []float64 {
	scr := m.NewScratch()
	g := make([]float64, len(w))
	const h = 1e-6
	for j := range w {
		orig := w[j]
		w[j] = orig + h
		fp := m.ExampleLoss(w, ds, i, scr)
		w[j] = orig - h
		fm := m.ExampleLoss(w, ds, i, scr)
		w[j] = orig
		g[j] = (fp - fm) / (2 * h)
	}
	return g
}

// checkGradient compares AccumGrad against finite differences for a few
// examples, skipping examples where the loss is non-differentiable (SVM
// margin exactly 1 — measure-zero but possible).
func checkGradient(t *testing.T, m Model, ds *data.Dataset, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	scr := m.NewScratch()
	for trial := 0; trial < 5; trial++ {
		w := make([]float64, m.NumParams())
		for j := range w {
			w[j] = rng.NormFloat64() * 0.5
		}
		i := rng.Intn(ds.N())
		got := make([]float64, len(w))
		m.AccumGrad(w, ds, i, 1, got, scr)
		want := finiteDiffGrad(m, w, ds, i)
		for j := range w {
			diff := math.Abs(got[j] - want[j])
			scale := math.Max(1, math.Max(math.Abs(got[j]), math.Abs(want[j])))
			if diff/scale > 1e-4 {
				t.Fatalf("%s trial %d: grad[%d] = %v, finite diff %v",
					m.Name(), trial, j, got[j], want[j])
			}
		}
	}
}

func TestLRGradientMatchesFiniteDiff(t *testing.T) {
	ds := testDataset(t, 20, 8, 0.5, 1)
	checkGradient(t, NewLR(8), ds, 10)
}

func TestSVMGradientMatchesFiniteDiff(t *testing.T) {
	ds := testDataset(t, 20, 8, 0.5, 2)
	checkGradient(t, NewSVM(8), ds, 11)
}

func TestMLPGradientMatchesFiniteDiff(t *testing.T) {
	ds := testDataset(t, 10, 6, 0.6, 3)
	checkGradient(t, NewMLP([]int{6, 4, 3, 2}), ds, 12)
}

func TestMLPDeepGradientMatchesFiniteDiff(t *testing.T) {
	ds := testDataset(t, 6, 5, 0.8, 4)
	checkGradient(t, NewMLP([]int{5, 7, 4, 3, 2}), ds, 13)
}

func TestSGDStepEqualsExplicitGradientStep(t *testing.T) {
	// Property: SGDStep(w) == w - step*AccumGrad for every model.
	ds := testDataset(t, 15, 10, 0.4, 5)
	models := []Model{NewLR(10), NewSVM(10), NewMLP([]int{10, 5, 2})}
	rng := rand.New(rand.NewSource(14))
	for _, m := range models {
		scr := m.NewScratch()
		w := make([]float64, m.NumParams())
		for j := range w {
			w[j] = rng.NormFloat64() * 0.3
		}
		i := rng.Intn(ds.N())
		step := 0.05
		g := make([]float64, len(w))
		m.AccumGrad(w, ds, i, 1, g, scr)
		want := append([]float64(nil), w...)
		tensor.Axpy(-step, g, want)

		got := append([]float64(nil), w...)
		m.SGDStep(got, ds, i, step, RawUpdater{}, m.NewScratch())
		for j := range got {
			if math.Abs(got[j]-want[j]) > 1e-12 {
				t.Fatalf("%s: SGDStep[%d] = %v, want %v", m.Name(), j, got[j], want[j])
			}
		}
	}
}

func TestLRInitialLossIsLn2(t *testing.T) {
	ds := testDataset(t, 30, 6, 0.5, 6)
	m := NewLR(6)
	w := m.InitParams(1)
	if got := MeanLoss(m, w, ds); math.Abs(got-math.Log(2)) > 1e-12 {
		t.Fatalf("initial LR loss = %v, want ln 2", got)
	}
}

func TestSVMInitialLossIsOne(t *testing.T) {
	ds := testDataset(t, 30, 6, 0.5, 7)
	m := NewSVM(6)
	w := m.InitParams(1)
	if got := MeanLoss(m, w, ds); math.Abs(got-1) > 1e-12 {
		t.Fatalf("initial SVM loss = %v, want 1", got)
	}
}

func TestMLPParamLayout(t *testing.T) {
	m := NewMLP([]int{54, 10, 5, 2})
	want := 54*10 + 10 + 10*5 + 5 + 5*2 + 2
	if m.NumParams() != want {
		t.Fatalf("NumParams = %d, want %d", m.NumParams(), want)
	}
	w := m.InitParams(42)
	if len(w) != want {
		t.Fatalf("len(InitParams) = %d", len(w))
	}
	// Weight/Bias views must tile the vector without overlap.
	seen := make([]bool, want)
	for l := 0; l < m.Layers(); l++ {
		wm := m.Weight(w, l)
		if wm.Rows != m.Widths[l+1] || wm.Cols != m.Widths[l] {
			t.Fatalf("layer %d weight shape %dx%d", l, wm.Rows, wm.Cols)
		}
		markRange(t, seen, w, wm.Data)
		markRange(t, seen, w, m.Bias(w, l))
	}
	for i, s := range seen {
		if !s {
			t.Fatalf("param %d not covered by any view", i)
		}
	}
}

func markRange(t *testing.T, seen []bool, base, view []float64) {
	t.Helper()
	if len(view) == 0 {
		return
	}
	off := offsetOf(base, view)
	for i := 0; i < len(view); i++ {
		if seen[off+i] {
			t.Fatalf("param %d covered twice", off+i)
		}
		seen[off+i] = true
	}
}

func offsetOf(base, view []float64) int {
	for i := range base {
		if &base[i] == &view[0] {
			return i
		}
	}
	return -1
}

func TestMLPInitDeterministic(t *testing.T) {
	m := NewMLP([]int{10, 5, 2})
	a := m.InitParams(7)
	b := m.InitParams(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("InitParams not deterministic")
		}
	}
	c := m.InitParams(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical init")
	}
}

func TestGradSupport(t *testing.T) {
	ds := testDataset(t, 5, 20, 0.3, 8)
	lr := NewLR(20)
	for i := 0; i < ds.N(); i++ {
		if lr.GradSupport(ds, i) != ds.X.RowNNZ(i) {
			t.Fatal("LR support != row nnz")
		}
	}
	mlp := NewMLP([]int{20, 10, 5, 2})
	for i := 0; i < ds.N(); i++ {
		want := ds.X.RowNNZ(i)*10 + 10 + (10*5 + 5) + (5*2 + 2)
		if got := mlp.GradSupport(ds, i); got != want {
			t.Fatalf("MLP support = %d, want %d", got, want)
		}
	}
}

func TestAtomicUpdaterEquivalentSequential(t *testing.T) {
	w1 := []float64{1, 2, 3}
	w2 := []float64{1, 2, 3}
	RawUpdater{}.Add(w1, 1, 0.5)
	AtomicUpdater{}.Add(w2, 1, 0.5)
	if w1[1] != w2[1] {
		t.Fatalf("updaters disagree: %v vs %v", w1[1], w2[1])
	}
}

func TestAtomicUpdaterLosesNoUpdates(t *testing.T) {
	// Under heavy contention every atomic add must land.
	w := make([]float64, 1)
	const workers = 8
	const adds = 5000
	var wg sync.WaitGroup
	for p := 0; p < workers; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			u := AtomicUpdater{}
			for k := 0; k < adds; k++ {
				u.Add(w, 0, 1)
			}
		}()
	}
	wg.Wait()
	if w[0] != workers*adds {
		t.Fatalf("atomic adds lost: %v, want %v", w[0], workers*adds)
	}
}

func TestLRLossConvexityAlongSegment(t *testing.T) {
	// Property: LR loss is convex, so f((a+b)/2) <= (f(a)+f(b))/2.
	ds := testDataset(t, 25, 6, 0.5, 9)
	m := NewLR(6)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := make([]float64, 6)
		b := make([]float64, 6)
		mid := make([]float64, 6)
		for j := range a {
			a[j] = rng.NormFloat64()
			b[j] = rng.NormFloat64()
			mid[j] = (a[j] + b[j]) / 2
		}
		fa := MeanLoss(m, a, ds)
		fb := MeanLoss(m, b, ds)
		fm := MeanLoss(m, mid, ds)
		return fm <= (fa+fb)/2+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestSVMLossNonNegative(t *testing.T) {
	ds := testDataset(t, 25, 6, 0.5, 10)
	m := NewSVM(6)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		w := make([]float64, 6)
		for j := range w {
			w[j] = rng.NormFloat64() * 3
		}
		scr := m.NewScratch()
		for i := 0; i < ds.N(); i++ {
			if m.ExampleLoss(w, ds, i, scr) < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestMLPForwardProbabilities(t *testing.T) {
	ds := testDataset(t, 10, 8, 0.5, 11)
	m := NewMLP([]int{8, 6, 2})
	w := m.InitParams(3)
	scr := m.NewScratch().(*mlpScratch)
	for i := 0; i < ds.N(); i++ {
		p := m.forward(w, ds, i, scr)
		if len(p) != 2 {
			t.Fatalf("probs len %d", len(p))
		}
		if math.Abs(p[0]+p[1]-1) > 1e-9 || p[0] < 0 || p[1] < 0 {
			t.Fatalf("invalid probs %v", p)
		}
	}
}

func TestNewMLPValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("single-layer MLP did not panic")
		}
	}()
	NewMLP([]int{5})
}
