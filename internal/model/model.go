// Package model defines the three training tasks of the study — logistic
// regression (LR), support vector machine (SVM), and fully-connected
// multi-layer perceptron (MLP) — behind one Model interface with two data
// paths:
//
//   - a per-example path (ExampleLoss / SGDStep / AccumGrad) used by the
//     incremental/asynchronous engines (Hogwild and the simulated GPU
//     kernels), which touches only the gradient support; and
//   - a batch path (BatchModel.BatchGrad) expressed in terms of the Ops
//     linear-algebra interface, used by the synchronous engines so that the
//     same formulation runs on the parallel-CPU and simulated-GPU backends —
//     the paper's ViennaCL "identical implementation, different device"
//     property.
//
// Models are stateless; all parameters live in a flat []float64 so the
// asynchronous engines can share one vector between threads and apply
// unsynchronised or atomic component updates uniformly.
package model

import (
	"math/rand"
	"sync/atomic"
	"unsafe"

	"repro/internal/data"
	"repro/internal/pool"
	"repro/internal/sparse"
	"repro/internal/tensor"
)

// Updater abstracts how a component update lands in the shared model:
// RawUpdater stores with a benign race (classic Hogwild), AtomicUpdater uses
// a compare-and-swap loop (DimmWitted-style lock-free add).
type Updater interface {
	// Add performs w[i] += delta under the updater's memory discipline.
	Add(w []float64, i int, delta float64)
}

// RawUpdater applies plain stores: the Hogwild discipline — no
// synchronisation whatsoever; concurrent writers may overwrite each other.
type RawUpdater struct{}

// Add implements Updater with an unsynchronised read-modify-write.
func (RawUpdater) Add(w []float64, i int, delta float64) { w[i] += delta }

// AtomicUpdater applies updates with a float64 CAS loop, so no increment is
// ever lost (stale gradients remain possible — that is inherent to
// asynchrony, not to the write discipline).
type AtomicUpdater struct{}

// Add implements Updater with a compare-and-swap retry loop.
func (AtomicUpdater) Add(w []float64, i int, delta float64) {
	p := (*uint64)(unsafe.Pointer(&w[i]))
	for {
		oldBits := atomic.LoadUint64(p)
		newVal := float64frombits(oldBits) + delta
		if atomic.CompareAndSwapUint64(p, oldBits, float64bits(newVal)) {
			return
		}
	}
}

// RetryCounter is implemented by updaters that count failed CAS attempts;
// the observability layer reads it to surface contention (each retry is one
// update the raw discipline would have lost to a concurrent writer).
type RetryCounter interface {
	// Retries returns the cumulative failed-CAS count.
	Retries() int64
}

// CountingAtomicUpdater is AtomicUpdater with CAS-retry accounting. Use one
// instance per engine; the counter is cumulative across epochs and the
// engine reports per-epoch deltas.
type CountingAtomicUpdater struct {
	retries atomic.Int64
}

// Add implements Updater with a compare-and-swap retry loop, counting every
// failed attempt.
func (u *CountingAtomicUpdater) Add(w []float64, i int, delta float64) {
	p := (*uint64)(unsafe.Pointer(&w[i]))
	for {
		oldBits := atomic.LoadUint64(p)
		newVal := float64frombits(oldBits) + delta
		if atomic.CompareAndSwapUint64(p, oldBits, float64bits(newVal)) {
			return
		}
		u.retries.Add(1)
	}
}

// Retries implements RetryCounter.
func (u *CountingAtomicUpdater) Retries() int64 { return u.retries.Load() }

func float64bits(f float64) uint64     { return *(*uint64)(unsafe.Pointer(&f)) }
func float64frombits(b uint64) float64 { return *(*float64)(unsafe.Pointer(&b)) }

// Scratch holds per-worker temporary buffers (activations, deltas). Each
// concurrent worker owns one; models define their own concrete type.
type Scratch interface{}

// Model is a trainable task over a data.Dataset.
type Model interface {
	// Name identifies the task ("lr", "svm", "mlp").
	Name() string
	// NumParams is the length of the flat parameter vector.
	NumParams() int
	// InitParams returns a deterministic initial parameter vector. All
	// configurations of an experiment start from the same vector, per
	// the paper's methodology.
	InitParams(seed int64) []float64
	// NewScratch allocates the per-worker scratch buffers.
	NewScratch() Scratch
	// ExampleLoss returns f(w; x_i, y_i).
	ExampleLoss(w []float64, ds *data.Dataset, i int, scr Scratch) float64
	// AccumGrad adds scale * grad f(w; x_i, y_i) into the dense g.
	AccumGrad(w []float64, ds *data.Dataset, i int, scale float64, g []float64, scr Scratch)
	// SGDStep performs the incremental update w <- w - step*grad f(w; x_i, y_i)
	// in place, writing only the gradient support through upd. This is the
	// Hogwild hot path (Algorithm 3 of the paper).
	SGDStep(w []float64, ds *data.Dataset, i int, step float64, upd Updater, scr Scratch)
	// GradSupport returns how many model components the gradient of
	// example i touches; the conflict and coherence cost models use it.
	GradSupport(ds *data.Dataset, i int) int
}

// Ops is the linear-algebra contract the batch formulations need. The
// internal/linalg backends (parallel CPU and simulated GPU) satisfy it; cost
// accounting happens inside the backend so the batch code stays
// device-independent, mirroring the paper's ViennaCL usage.
type Ops interface {
	// Gemv computes y = alpha*A*x + beta*y for dense A.
	Gemv(alpha float64, a *tensor.Matrix, x []float64, beta float64, y []float64)
	// GemvT computes y = alpha*A^T*x + beta*y for dense A.
	GemvT(alpha float64, a *tensor.Matrix, x []float64, beta float64, y []float64)
	// Gemm computes C = alpha*A*B + beta*C.
	Gemm(alpha float64, a, b *tensor.Matrix, beta float64, c *tensor.Matrix)
	// GemmNT computes C = alpha*A*B^T + beta*C.
	GemmNT(alpha float64, a, b *tensor.Matrix, beta float64, c *tensor.Matrix)
	// GemmTN computes C = alpha*A^T*B + beta*C.
	GemmTN(alpha float64, a, b *tensor.Matrix, beta float64, c *tensor.Matrix)
	// SpMV computes y = A*x for CSR A.
	SpMV(a *sparse.CSR, x, y []float64)
	// SpMVT computes y = A^T*x for CSR A (overwrites y).
	SpMVT(a *sparse.CSR, x, y []float64)
	// Axpy computes y += alpha*x.
	Axpy(alpha float64, x, y []float64)
	// Scal computes x *= alpha.
	Scal(alpha float64, x []float64)
	// Map applies a scalar function element-wise: dst[i] = f(src[i], aux[i]).
	// aux may be nil. It models ViennaCL's element-wise kernels.
	Map(dst, src, aux []float64, f func(s, a float64) float64)
	// RowsMap applies f to every row of m in place (bias addition,
	// activations, per-row softmax). Backends may run rows concurrently,
	// so f must not share mutable state across calls.
	RowsMap(m *tensor.Matrix, f func(i int, row []float64))
}

// Scorer extends Model with inference: a real-valued decision score for one
// example, positive for class +1. For LR and SVM the score is the margin
// w.x (so sigmoid(score) is the LR class probability); for the MLP it is the
// log-odds log(p₊/p₋) of the softmax output, which gives every model the
// same sign-decides-label, sigmoid-calibrates-probability contract the
// serving layer (internal/serve) relies on. Score must be safe to call from
// concurrent goroutines sharing w, each with its own Scratch — the same
// discipline as ExampleLoss.
type Scorer interface {
	Model
	// Score returns the decision score of example i under w.
	Score(w []float64, ds *data.Dataset, i int, scr Scratch) float64
}

// BatchModel extends Model with the synchronous batch-gradient formulation.
type BatchModel interface {
	Model
	// BatchGrad computes g = mean gradient over the rows set (nil = all
	// rows) using backend ops, and returns the mean loss at w over the
	// same rows. g has NumParams elements and is overwritten.
	BatchGrad(b Ops, w []float64, ds *data.Dataset, rows []int, g []float64) float64
}

// meanLossGrain keeps MeanLoss chunks large enough that dispatching them to
// the worker pool is profitable (an example loss is a sparse dot, tens of
// nanoseconds).
const meanLossGrain = 1024

// MeanLoss computes the mean per-example loss over the whole dataset with
// the scalar path. The convergence driver uses it; its time is excluded from
// iteration timing, following the paper's methodology, so this host-side
// evaluation may use every core: per-example losses are computed in parallel
// into a buffer, then summed sequentially in index order — bitwise identical
// to the serial sweep.
func MeanLoss(m Model, w []float64, ds *data.Dataset) float64 {
	n := ds.N()
	if n == 0 {
		return 0
	}
	losses := make([]float64, n)
	p := pool.Default()
	p.RunGrain(p.Size(), n, meanLossGrain, meanLossTask{m: m, w: w, ds: ds, losses: losses})
	var s float64
	for _, l := range losses {
		s += l
	}
	return s / float64(n)
}

// meanLossTask evaluates per-example losses over [lo, hi); each invocation
// builds its own model scratch, so concurrent chunks never share state.
type meanLossTask struct {
	m      Model
	w      []float64
	ds     *data.Dataset
	losses []float64
}

func (t meanLossTask) Run(lo, hi int) {
	scr := t.m.NewScratch()
	for i := lo; i < hi; i++ {
		t.losses[i] = t.m.ExampleLoss(t.w, t.ds, i, scr)
	}
}

// initRNG builds the shared deterministic initialiser stream.
func initRNG(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
