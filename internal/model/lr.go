package model

import (
	"repro/internal/data"
	"repro/internal/tensor"
)

// LR is binary logistic regression with the log-loss
//
//	f(w; x, y) = log(1 + exp(-y * w.x)),  y in {-1, +1},
//
// without regularisation (the paper omits it to measure pure computation).
// The gradient is -y * sigmoid(-y w.x) * x, so its support equals the
// support of x — the property Hogwild exploits on sparse data.
type LR struct {
	Dim int // number of features
}

// NewLR returns an LR task over dim features.
func NewLR(dim int) *LR { return &LR{Dim: dim} }

// Name implements Model.
func (m *LR) Name() string { return "lr" }

// NumParams implements Model.
func (m *LR) NumParams() int { return m.Dim }

// InitParams implements Model: zero initialisation (the conventional LR
// start, giving the same initial loss ln 2 everywhere). The vector is
// 64-byte aligned so the striped-Hogwild layout (stripe = cache line)
// holds exactly; alignment never changes the values.
func (m *LR) InitParams(seed int64) []float64 { return AlignedVec(m.Dim) }

// NewScratch implements Model; LR needs no scratch.
func (m *LR) NewScratch() Scratch { return nil }

// ExampleLoss implements Model.
func (m *LR) ExampleLoss(w []float64, ds *data.Dataset, i int, _ Scratch) float64 {
	margin := ds.X.RowDot(i, w)
	return tensor.Log1pExp(-ds.Y[i] * margin)
}

// AccumGrad implements Model.
func (m *LR) AccumGrad(w []float64, ds *data.Dataset, i int, scale float64, g []float64, _ Scratch) {
	y := ds.Y[i]
	coef := -y * tensor.Sigmoid(-y*ds.X.RowDot(i, w)) * scale
	ds.X.RowAxpy(i, coef, g)
}

// SGDStep implements Model: w <- w + step*y*sigmoid(-y w.x)*x over the
// support of x only.
func (m *LR) SGDStep(w []float64, ds *data.Dataset, i int, step float64, upd Updater, _ Scratch) {
	y := ds.Y[i]
	coef := step * y * tensor.Sigmoid(-y*ds.X.RowDot(i, w))
	if coef == 0 {
		return
	}
	cols, vals := ds.X.Row(i)
	for k, c := range cols {
		upd.Add(w, int(c), coef*vals[k])
	}
}

// GradSupport implements Model.
func (m *LR) GradSupport(ds *data.Dataset, i int) int { return ds.X.RowNNZ(i) }

// Score implements Scorer: the margin w.x, whose sigmoid is the class-+1
// probability.
func (m *LR) Score(w []float64, ds *data.Dataset, i int, _ Scratch) float64 {
	return ds.X.RowDot(i, w)
}

// QuantScore implements QuantScorer: the margin against the int8 weights.
func (m *LR) QuantScore(qw *QuantizedWeights, ds *data.Dataset, i int) float64 {
	return qw.RowDot(ds.X, i)
}

// BatchGrad implements BatchModel with the ViennaCL-style primitive
// sequence: margins = X*w (SpMV), per-example coefficients (element-wise
// map), g = X^T*coef / n (SpMV-transpose + scal).
func (m *LR) BatchGrad(b Ops, w []float64, ds *data.Dataset, rows []int, g []float64) float64 {
	scr := batchScratchOf(b)
	x := ds.X
	if rows != nil {
		x = scr.selectRows(ds.X, rows)
	}
	n := x.NumRows
	margins := scr.marginBuf(n)
	b.SpMV(x, w, margins)
	ys := scr.selectLabelsInto(ds, rows)
	coef := scr.coefBuf(n)
	// Per-example loss coefficients as a device element-wise kernel so the
	// backend accounts its cost; the loss reduction itself is host-side and
	// excluded from iteration timing, per the paper's methodology.
	b.Map(coef, margins, ys, func(margin, y float64) float64 {
		return -y * tensor.Sigmoid(-y*margin)
	})
	var loss float64
	for i := 0; i < n; i++ {
		loss += tensor.Log1pExp(-ys[i] * margins[i])
	}
	b.SpMVT(x, coef, g)
	b.Scal(1/float64(n), g)
	return loss / float64(n)
}

var (
	_ Model       = (*LR)(nil)
	_ BatchModel  = (*LR)(nil)
	_ Scorer      = (*LR)(nil)
	_ QuantScorer = (*LR)(nil)
)
