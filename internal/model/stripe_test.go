package model

import (
	"math/rand"
	"testing"
	"unsafe"
)

func TestAlignedVec(t *testing.T) {
	for _, n := range []int{0, 1, 7, 8, 9, 64, 1000} {
		v := AlignedVec(n)
		if len(v) != n {
			t.Fatalf("AlignedVec(%d) has len %d", n, len(v))
		}
		if n == 0 {
			continue
		}
		if addr := uintptr(unsafe.Pointer(&v[0])); addr%cacheLine != 0 {
			t.Errorf("AlignedVec(%d) starts at %#x, not 64-byte aligned", n, addr)
		}
		if cap(v) != n {
			t.Errorf("AlignedVec(%d) cap %d leaks slack past the logical vector", n, cap(v))
		}
	}
}

// recordingUpdater captures the (index, delta) sequence applied through it.
type recordingUpdater struct {
	idx   []int
	delta []float64
}

func (r *recordingUpdater) Add(w []float64, i int, delta float64) {
	r.idx = append(r.idx, i)
	r.delta = append(r.delta, delta)
	w[i] += delta
}

// TestStripeBufferEquivalence: any Add sequence flushed through a
// StripeBuffer leaves w with exactly the per-component sums a direct
// updater would (single-writer case — the concurrent semantics are the
// engines' business).
func TestStripeBufferEquivalence(t *testing.T) {
	const dim = 500
	rng := rand.New(rand.NewSource(3))
	direct := make([]float64, dim)
	striped := make([]float64, dim)
	sb := NewStripeBuffer(RawUpdater{}, dim, 64)
	for k := 0; k < 10000; k++ {
		i := rng.Intn(dim)
		if rng.Float64() < 0.5 {
			i = rng.Intn(10) // hot components to force coalescing
		}
		d := rng.NormFloat64()
		direct[i] += d
		sb.Add(striped, i, d)
	}
	sb.Flush(striped)
	for i := range direct {
		if diff := direct[i] - striped[i]; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("component %d: direct %g vs striped %g", i, direct[i], striped[i])
		}
	}
	if sb.Pending() != 0 {
		t.Errorf("pending %d after flush", sb.Pending())
	}
	if got := sb.Applied() + sb.Coalesced(); got != 10000 {
		t.Errorf("applied %d + coalesced %d != 10000 adds", sb.Applied(), sb.Coalesced())
	}
	if sb.Coalesced() == 0 {
		t.Error("hot components produced no coalescing")
	}
}

// TestStripeBufferFlushOrderAscending: flushes land through Base in strictly
// ascending index order — the stripe-ordered sweep the layout is for.
func TestStripeBufferFlushOrderAscending(t *testing.T) {
	rec := &recordingUpdater{}
	w := make([]float64, 300)
	sb := NewStripeBuffer(rec, 300, 1000) // window larger than the adds: manual flush
	rng := rand.New(rand.NewSource(4))
	for k := 0; k < 200; k++ {
		sb.Add(w, rng.Intn(300), 1)
	}
	sb.Flush(w)
	for k := 1; k < len(rec.idx); k++ {
		if rec.idx[k] <= rec.idx[k-1] {
			t.Fatalf("flush order not strictly ascending at %d: %d then %d",
				k, rec.idx[k-1], rec.idx[k])
		}
	}
	if sb.Flushes() != 1 {
		t.Errorf("flushes = %d, want 1", sb.Flushes())
	}
}

// TestStripeBufferWindowTriggersFlush: the window-th Add flushes inline.
func TestStripeBufferWindowTriggersFlush(t *testing.T) {
	rec := &recordingUpdater{}
	w := make([]float64, 64)
	sb := NewStripeBuffer(rec, 64, 8)
	for k := 0; k < 7; k++ {
		sb.Add(w, k, 1)
	}
	if len(rec.idx) != 0 {
		t.Fatalf("premature flush after %d adds", len(rec.idx))
	}
	sb.Add(w, 7, 1)
	if len(rec.idx) != 8 || sb.Pending() != 0 {
		t.Fatalf("window flush: %d applied, %d pending", len(rec.idx), sb.Pending())
	}
}

func TestStripeBufferCoalescingExact(t *testing.T) {
	w := make([]float64, 64)
	sb := NewStripeBuffer(RawUpdater{}, 64, 100)
	for k := 0; k < 30; k++ {
		sb.Add(w, k%3, 0.5) // 30 adds over 3 components
	}
	sb.Flush(w)
	if sb.Applied() != 3 || sb.Coalesced() != 27 {
		t.Errorf("applied/coalesced = %d/%d, want 3/27", sb.Applied(), sb.Coalesced())
	}
	for i := 0; i < 3; i++ {
		if w[i] != 5 {
			t.Errorf("w[%d] = %g, want 5", i, w[i])
		}
	}
}

func TestStripeBufferDefaultWindow(t *testing.T) {
	sb := NewStripeBuffer(RawUpdater{}, 10, 0)
	if sb.Window() != DefaultStripeWindow {
		t.Errorf("window = %d, want DefaultStripeWindow", sb.Window())
	}
	// Empty flush is a no-op, not a counted flush.
	sb.Flush(make([]float64, 10))
	if sb.Flushes() != 0 {
		t.Errorf("empty flush counted: %d", sb.Flushes())
	}
}

func TestStripeBufferAddAllocFree(t *testing.T) {
	w := make([]float64, 256)
	sb := NewStripeBuffer(RawUpdater{}, 256, 64)
	rng := rand.New(rand.NewSource(5))
	idx := make([]int, 1024)
	for k := range idx {
		idx[k] = rng.Intn(256)
	}
	k := 0
	allocs := testing.AllocsPerRun(100, func() {
		for j := 0; j < 64; j++ { // one full window incl. the inline flush
			sb.Add(w, idx[(k+j)%len(idx)], 1e-9)
		}
		k++
	})
	if allocs != 0 {
		t.Errorf("striped add/flush cycle allocates %v per window", allocs)
	}
}
