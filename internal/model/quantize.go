package model

import "math"

// QuantizedUpdater applies updates at reduced precision — the Buckwild-style
// low-precision asynchronous SGD the paper lists as future work (Section VI;
// De Sa et al., ISCA 2017). Each delta is rounded to FracBits fractional
// bits of fixed point before the (otherwise raw) store; the model itself
// stays float64 so the engines are interchangeable.
type QuantizedUpdater struct {
	// FracBits is the number of fractional bits kept (e.g. 16 for a
	// 16.16-style representation). Values <= 0 behave like RawUpdater.
	FracBits int
}

// Add implements Updater with stochastic-free round-to-nearest
// quantisation.
func (q QuantizedUpdater) Add(w []float64, i int, delta float64) {
	if q.FracBits > 0 {
		scale := math.Ldexp(1, q.FracBits) // 2^FracBits
		delta = math.Round(delta*scale) / scale
		if delta == 0 {
			return // underflowed the representable grid: update dropped
		}
	}
	w[i] += delta
}

var _ Updater = QuantizedUpdater{}
