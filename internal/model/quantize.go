package model

import (
	"math"
	"sync/atomic"

	"repro/internal/data"
	"repro/internal/sparse"
)

// This file holds the two low-precision paths of the repo:
//
//   - QuantizedWeights: an int8 + per-stripe-scale *inference* representation
//     of a trained float64 vector, scored by the serving tier. The win is
//     memory locality — the int8 vector is 8x smaller than the float64 one,
//     so a model that spills the L2 cache in float64 stays resident in int8
//     (see DESIGN §14).
//   - QuantizedUpdater: Buckwild-style low-precision *training* updates
//     (De Sa et al.; the paper's Section VI future-work direction), with an
//     optional seeded stochastic-rounding mode that keeps the quantised
//     gradient unbiased.

// QuantStripe is the number of int8 weights sharing one quantisation scale:
// 64 int8 values occupy exactly one 64-byte cache line, so a stripe's
// weights and its scale lookup have line-granular locality, and the stripe
// index of component c is simply c>>6.
const QuantStripe = 64

// quantStripeShift is log2(QuantStripe); stripe of component c is c >> shift.
const quantStripeShift = 6

// QuantizedWeights is a symmetric int8 quantisation of a float64 weight
// vector with one scale per QuantStripe-component stripe:
//
//	w[i] ≈ float64(Q[i]) * Scales[i>>6],  Q[i] ∈ [-127, 127].
//
// Scales are stored as float64 (not float32) deliberately: the scoring
// kernel multiplies them into float64 accumulators, and a float32 scale
// would add a widening conversion per nonzero on the hot path for no
// locality benefit (the scales array is Dim/64 elements — 1/8 the size of
// the int8 vector itself).
//
// The representation is immutable after Quantize; it may be shared freely
// across goroutines.
type QuantizedWeights struct {
	// Dim is the logical vector length (len(Q)).
	Dim int
	// Q holds the int8 codes.
	Q []int8
	// Scales holds one dequantisation scale per stripe of QuantStripe
	// components; len(Scales) == ceil(Dim/QuantStripe).
	Scales []float64
}

// Quantize builds the int8 representation of w. Each stripe's scale is
// maxabs(stripe)/127 (symmetric, zero-point-free — linear-model scores are
// dot products, so a zero point would add a per-row correction term for
// nothing). Codes round half away from zero; an all-zero stripe gets scale 1
// so dequantisation stays exact.
func Quantize(w []float64) *QuantizedWeights {
	dim := len(w)
	numStripes := (dim + QuantStripe - 1) / QuantStripe
	qw := &QuantizedWeights{
		Dim:    dim,
		Q:      make([]int8, dim),
		Scales: make([]float64, numStripes),
	}
	for s := 0; s < numStripes; s++ {
		lo := s * QuantStripe
		hi := lo + QuantStripe
		if hi > dim {
			hi = dim
		}
		maxAbs := 0.0
		for i := lo; i < hi; i++ {
			if a := math.Abs(w[i]); a > maxAbs {
				maxAbs = a
			}
		}
		sc := maxAbs / 127
		if sc == 0 {
			sc = 1 // all-zero stripe: any scale works; 1 keeps At exact
		}
		qw.Scales[s] = sc
		inv := 1 / sc
		for i := lo; i < hi; i++ {
			v := w[i] * inv
			if v >= 0 {
				v += 0.5
			} else {
				v -= 0.5
			}
			qw.Q[i] = int8(int32(v))
		}
	}
	return qw
}

// At returns the dequantised weight i.
func (qw *QuantizedWeights) At(i int) float64 {
	return float64(qw.Q[i]) * qw.Scales[i>>quantStripeShift]
}

// Dequantize writes the dequantised vector into dst (len(dst) >= Dim).
func (qw *QuantizedWeights) Dequantize(dst []float64) {
	for i := 0; i < qw.Dim; i++ {
		dst[i] = qw.At(i)
	}
}

// MaxScale returns the largest stripe scale; scale/2 bounds the per-weight
// quantisation error of that stripe.
func (qw *QuantizedWeights) MaxScale() float64 {
	m := 0.0
	for _, s := range qw.Scales {
		if s > m {
			m = s
		}
	}
	return m
}

// RowDot computes row_i(x) · dequant(qw) — the quantised sparse dot that
// backs QuantScore and the int8 SpMV kernel in internal/linalg. The loop is
// two-way unrolled with independent accumulators; the bench gate compares it
// against an identically-unrolled float64 kernel (linalg.Int8Kernel) so the
// measured speedup is a memory-locality effect, not an unrolling artifact.
func (qw *QuantizedWeights) RowDot(x *sparse.CSR, i int) float64 {
	cols, vals := x.Row(i)
	q, scales := qw.Q, qw.Scales
	var s0, s1 float64
	k := 0
	for ; k+2 <= len(cols); k += 2 {
		c0, c1 := cols[k], cols[k+1]
		s0 += vals[k] * scales[c0>>quantStripeShift] * float64(q[c0])
		s1 += vals[k+1] * scales[c1>>quantStripeShift] * float64(q[c1])
	}
	if k < len(cols) {
		c := cols[k]
		s0 += vals[k] * scales[c>>quantStripeShift] * float64(q[c])
	}
	return s0 + s1
}

// RowErrorBound returns the analytic bound on |quantised − float score| for
// row i: Σ_k |x_k| · scale(col_k)/2, since each dequantised weight is within
// half a quantisation step of the original. internal/regress asserts the
// measured score delta never exceeds this machine-independent bound.
func (qw *QuantizedWeights) RowErrorBound(x *sparse.CSR, i int) float64 {
	cols, vals := x.Row(i)
	var b float64
	for k, c := range cols {
		b += math.Abs(vals[k]) * qw.Scales[c>>quantStripeShift]
	}
	return b / 2
}

// QuantScorer is implemented by models whose decision score can be computed
// directly from the quantised representation. The linear models (LR, SVM)
// qualify — their score is the margin w·x, so quantised weights drop
// straight into the dot product. The MLP does not (its score is a nonlinear
// function of w), so the serving tier falls back to the float64 path for
// models that do not implement this interface.
type QuantScorer interface {
	Scorer
	// QuantScore returns the decision score of example i under the
	// quantised weights. It must be safe for concurrent use, like Score.
	QuantScore(qw *QuantizedWeights, ds *data.Dataset, i int) float64
}

// StochasticRounder is a deterministic, seeded source of rounding decisions
// for QuantizedUpdater's stochastic mode. The stream is an atomic counter
// hashed through splitmix64, so concurrent updaters draw race-free,
// reproducible variates: a serial replay with the same seed makes identical
// decisions, while concurrent runs stay well-defined (the interleaving of
// counter draws is scheduling-dependent, exactly like Hogwild itself).
type StochasticRounder struct {
	seed uint64
	ctr  atomic.Uint64
}

// NewStochasticRounder returns a rounder with the given seed.
func NewStochasticRounder(seed int64) *StochasticRounder {
	return &StochasticRounder{seed: uint64(seed)}
}

// uniform draws the next U[0,1) variate from the counter-hashed stream.
func (r *StochasticRounder) uniform() float64 {
	x := r.seed + r.ctr.Add(1)*0x9E3779B97F4A7C15
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return float64(x>>11) / (1 << 53)
}

// QuantizedUpdater applies updates at reduced precision — the Buckwild-style
// low-precision asynchronous SGD the paper lists as future work (Section VI;
// De Sa et al., ISCA 2017). Each delta is quantised to FracBits fractional
// bits of fixed point before the (otherwise raw) store; the model itself
// stays float64 so the engines are interchangeable.
//
// With Rounder == nil the quantisation is round-to-nearest, which silently
// drops any delta smaller than half a quantisation step — late in training,
// when gradients shrink, that bias stalls convergence. With a Rounder the
// delta is stochastically rounded to one of the two adjacent grid points
// with probability proportional to proximity, making the quantised update
// unbiased: a delta of 0.25 steps lands as a full step 25% of the time and
// zero otherwise, so the *expected* update is exact (true Buckwild
// rounding).
type QuantizedUpdater struct {
	// FracBits is the number of fractional bits kept (e.g. 16 for a
	// 16.16-style representation). Values <= 0 behave like RawUpdater.
	FracBits int
	// Rounder, when non-nil, switches from round-to-nearest to stochastic
	// rounding driven by the rounder's deterministic seeded stream.
	Rounder *StochasticRounder
}

// NewStochasticQuantized returns a stochastic-rounding updater with its own
// seeded rounder.
func NewStochasticQuantized(fracBits int, seed int64) QuantizedUpdater {
	return QuantizedUpdater{FracBits: fracBits, Rounder: NewStochasticRounder(seed)}
}

// Add implements Updater with fixed-point quantisation of the delta:
// round-to-nearest by default, stochastic rounding when a Rounder is set.
func (q QuantizedUpdater) Add(w []float64, i int, delta float64) {
	if q.FracBits > 0 {
		scale := math.Ldexp(1, q.FracBits) // 2^FracBits
		v := delta * scale
		if q.Rounder != nil {
			f := math.Floor(v)
			if frac := v - f; frac > 0 && q.Rounder.uniform() < frac {
				f++
			}
			delta = f / scale
		} else {
			delta = math.Round(v) / scale
		}
		if delta == 0 {
			return // underflowed the representable grid: update dropped
		}
	}
	w[i] += delta
}

var _ Updater = QuantizedUpdater{}
