package model

import (
	"fmt"
	"math"

	"repro/internal/data"
	"repro/internal/tensor"
)

// MLP is a fully-connected multi-layer perceptron with sigmoid hidden units
// and a softmax + cross-entropy output layer, matching the paper's
// architectures (e.g. 54-10-5-2 for covtype; Table I). Labels y in {-1, +1}
// map to output classes 0 and 1.
//
// Parameters are flattened as [W_0, b_0, W_1, b_1, ...] where weight layer l
// maps activation a_l (width Widths[l]) to pre-activation z_{l+1}
// (width Widths[l+1]); W_l is stored row-major (out x in).
type MLP struct {
	Widths []int // layer widths, len >= 2, e.g. [54 10 5 2]
	// Chunk overrides the batch-pipeline chunk size (0 = MLPChunk). It
	// changes kernel granularity only, never the computed gradient.
	Chunk int

	offW, offB []int // per-layer offsets into the flat parameter vector
	total      int
}

// NewMLP builds an MLP from layer widths.
func NewMLP(widths []int) *MLP {
	if len(widths) < 2 {
		panic(fmt.Sprintf("model: MLP needs >=2 layers, got %v", widths))
	}
	m := &MLP{Widths: append([]int(nil), widths...)}
	layers := len(widths) - 1
	m.offW = make([]int, layers)
	m.offB = make([]int, layers)
	off := 0
	for l := 0; l < layers; l++ {
		in, out := widths[l], widths[l+1]
		m.offW[l] = off
		off += in * out
		m.offB[l] = off
		off += out
	}
	m.total = off
	return m
}

// NewMLPFor builds the paper's MLP for a dataset spec (Table I column
// "MLP architecture").
func NewMLPFor(spec data.Spec) *MLP { return NewMLP(spec.MLPLayers()) }

// Layers returns the number of weight layers.
func (m *MLP) Layers() int { return len(m.Widths) - 1 }

// Name implements Model.
func (m *MLP) Name() string { return "mlp" }

// NumParams implements Model.
func (m *MLP) NumParams() int { return m.total }

// Weight returns a matrix view (out x in) of weight layer l inside w.
func (m *MLP) Weight(w []float64, l int) *tensor.Matrix {
	in, out := m.Widths[l], m.Widths[l+1]
	return &tensor.Matrix{Rows: out, Cols: in, Data: w[m.offW[l] : m.offW[l]+in*out]}
}

// Bias returns the bias slice of weight layer l inside w.
func (m *MLP) Bias(w []float64, l int) []float64 {
	return w[m.offB[l] : m.offB[l]+m.Widths[l+1]]
}

// InitParams implements Model: Xavier-style deterministic initialisation.
func (m *MLP) InitParams(seed int64) []float64 {
	rng := initRNG(seed)
	w := make([]float64, m.total)
	for l := 0; l < m.Layers(); l++ {
		in, out := m.Widths[l], m.Widths[l+1]
		scale := 1.0 / float64(in+out)
		wl := w[m.offW[l] : m.offW[l]+in*out]
		for i := range wl {
			wl[i] = rng.NormFloat64() * scale * 2
		}
		// biases stay zero
	}
	return w
}

// mlpScratch holds per-worker forward/backward buffers.
type mlpScratch struct {
	act   [][]float64 // act[l], l = 1..Layers: activations (act[Layers] = softmax probs)
	delta [][]float64 // delta[l], l = 1..Layers: back-propagated errors at z_l
}

// NewScratch implements Model.
func (m *MLP) NewScratch() Scratch {
	s := &mlpScratch{
		act:   make([][]float64, len(m.Widths)),
		delta: make([][]float64, len(m.Widths)),
	}
	for l := 1; l < len(m.Widths); l++ {
		s.act[l] = make([]float64, m.Widths[l])
		s.delta[l] = make([]float64, m.Widths[l])
	}
	return s
}

// classOf maps a ±1 label to the output class index.
func classOf(y float64) int {
	if y > 0 {
		return 1
	}
	return 0
}

// forward runs the network on example i, leaving layer activations in scr
// (scr.act[Layers] holds the softmax probabilities). Returns those probs.
func (m *MLP) forward(w []float64, ds *data.Dataset, i int, scr *mlpScratch) []float64 {
	L := m.Layers()
	// Input layer: z_1 = W_0 * x + b_0 over the sparse support of x.
	{
		in := m.Widths[0]
		out := m.Widths[1]
		w0 := w[m.offW[0]:]
		z := scr.act[1]
		copy(z, m.Bias(w, 0))
		cols, vals := ds.X.Row(i)
		for k, c := range cols {
			v := vals[k]
			for u := 0; u < out; u++ {
				z[u] += w0[u*in+int(c)] * v
			}
		}
		if L > 1 {
			tensor.SigmoidTo(z, z)
		}
	}
	for l := 1; l < L; l++ {
		in, out := m.Widths[l], m.Widths[l+1]
		wl := w[m.offW[l]:]
		a := scr.act[l]
		z := scr.act[l+1]
		copy(z, m.Bias(w, l))
		for u := 0; u < out; u++ {
			row := wl[u*in : (u+1)*in]
			var s float64
			for k, av := range a {
				s += row[k] * av
			}
			z[u] += s
		}
		if l != L-1 {
			tensor.SigmoidTo(z, z)
		}
	}
	probs := scr.act[L]
	tensor.Softmax(probs, probs)
	return probs
}

// ExampleLoss implements Model: cross-entropy -log p[class].
func (m *MLP) ExampleLoss(w []float64, ds *data.Dataset, i int, scr Scratch) float64 {
	s := scr.(*mlpScratch)
	probs := m.forward(w, ds, i, s)
	p := probs[classOf(ds.Y[i])]
	if p < 1e-300 {
		p = 1e-300
	}
	return -math.Log(p)
}

// backward computes all layer deltas for example i, assuming forward has
// just populated scr.act.
func (m *MLP) backward(w []float64, ds *data.Dataset, i int, scr *mlpScratch) {
	L := m.Layers()
	probs := scr.act[L]
	dOut := scr.delta[L]
	copy(dOut, probs)
	dOut[classOf(ds.Y[i])] -= 1
	for l := L - 1; l >= 1; l-- {
		in, out := m.Widths[l], m.Widths[l+1]
		wl := w[m.offW[l]:]
		dNext := scr.delta[l+1]
		d := scr.delta[l]
		a := scr.act[l]
		for k := 0; k < in; k++ {
			var s float64
			for u := 0; u < out; u++ {
				s += wl[u*in+k] * dNext[u]
			}
			d[k] = s * a[k] * (1 - a[k]) // sigmoid'
		}
	}
}

// AccumGrad implements Model.
func (m *MLP) AccumGrad(w []float64, ds *data.Dataset, i int, scale float64, g []float64, scr Scratch) {
	s := scr.(*mlpScratch)
	m.forward(w, ds, i, s)
	m.backward(w, ds, i, s)
	m.applyGrads(ds, i, s, func(idx int, v float64) { g[idx] += scale * v })
}

// SGDStep implements Model.
func (m *MLP) SGDStep(w []float64, ds *data.Dataset, i int, step float64, upd Updater, scr Scratch) {
	s := scr.(*mlpScratch)
	m.forward(w, ds, i, s)
	m.backward(w, ds, i, s)
	m.applyGrads(ds, i, s, func(idx int, v float64) { upd.Add(w, idx, -step*v) })
}

// applyGrads walks the gradient support of example i (given populated
// scratch) calling emit(paramIndex, gradValue) for every component.
func (m *MLP) applyGrads(ds *data.Dataset, i int, scr *mlpScratch, emit func(idx int, v float64)) {
	L := m.Layers()
	// Input weight layer: gradW_0[u, c] = delta_1[u] * x[c], sparse in c.
	{
		in := m.Widths[0]
		d := scr.delta[1]
		cols, vals := ds.X.Row(i)
		for u, du := range d {
			if du == 0 {
				continue
			}
			base := m.offW[0] + u*in
			for k, c := range cols {
				emit(base+int(c), du*vals[k])
			}
			emit(m.offB[0]+u, du)
		}
	}
	for l := 1; l < L; l++ {
		in := m.Widths[l]
		d := scr.delta[l+1]
		a := scr.act[l]
		for u, du := range d {
			base := m.offW[l] + u*in
			for k, av := range a {
				emit(base+k, du*av)
			}
			emit(m.offB[l]+u, du)
		}
	}
}

// Score implements Scorer: the log-odds log(p₊/p₋) of the softmax output,
// so sign(score) is the predicted label and sigmoid(score) recovers the
// class-+1 probability (softmax over two classes is exactly a sigmoid of the
// logit difference). Probabilities are floored to keep the ratio finite on
// saturated outputs.
func (m *MLP) Score(w []float64, ds *data.Dataset, i int, scr Scratch) float64 {
	s := scr.(*mlpScratch)
	probs := m.forward(w, ds, i, s)
	p0, p1 := probs[0], probs[1]
	if p0 < 1e-300 {
		p0 = 1e-300
	}
	if p1 < 1e-300 {
		p1 = 1e-300
	}
	return math.Log(p1 / p0)
}

// GradSupport implements Model: the input layer touches nnz(x) * h1
// components, all other layers are dense.
func (m *MLP) GradSupport(ds *data.Dataset, i int) int {
	h1 := m.Widths[1]
	n := ds.X.RowNNZ(i)*h1 + h1 // W_0 support + b_0
	for l := 1; l < m.Layers(); l++ {
		n += m.Widths[l]*m.Widths[l+1] + m.Widths[l+1]
	}
	return n
}

var (
	_ Model      = (*MLP)(nil)
	_ BatchModel = (*MLP)(nil)
	_ Scorer     = (*MLP)(nil)
)
