package metrics

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/core"
)

func TestSummarizeBasics(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4})
	if s.N != 4 || s.Mean != 2.5 {
		t.Fatalf("summary %+v", s)
	}
	if math.Abs(s.Std-1.2909944487) > 1e-9 {
		t.Fatalf("std %v", s.Std)
	}
	if s.Min != 1 || s.Max != 4 {
		t.Fatalf("min/max %v/%v", s.Min, s.Max)
	}
}

func TestSummarizeHandlesInf(t *testing.T) {
	s := Summarize([]float64{1, math.Inf(1), 3})
	if s.N != 2 || s.InfCount != 1 {
		t.Fatalf("%+v", s)
	}
	if s.Mean != 2 {
		t.Fatalf("mean %v", s.Mean)
	}
	all := Summarize([]float64{math.Inf(1), math.Inf(1)})
	if all.N != 0 || all.InfCount != 2 || !math.IsInf(all.Mean, 1) {
		t.Fatalf("%+v", all)
	}
}

func TestSummarizeIgnoresNaN(t *testing.T) {
	s := Summarize([]float64{2, math.NaN(), 4})
	if s.N != 2 || s.Mean != 3 {
		t.Fatalf("%+v", s)
	}
}

func TestRepeat(t *testing.T) {
	calls := 0
	s := Repeat(5, func(rep int) float64 {
		calls++
		return float64(rep)
	})
	if calls != 5 || s.Mean != 2 {
		t.Fatalf("calls %d summary %+v", calls, s)
	}
	if got := Repeat(0, func(int) float64 { return 7 }); got.N != 1 {
		t.Fatalf("n<1 floor: %+v", got)
	}
}

func TestMeanEpochs(t *testing.T) {
	s := MeanEpochs([]int{10, -1, 20})
	if s.N != 2 || s.Mean != 15 || s.InfCount != 1 {
		t.Fatalf("%+v", s)
	}
}

func TestDownsampleKeepsEndpoints(t *testing.T) {
	curve := make([]core.LossPoint, 100)
	for i := range curve {
		curve[i] = core.LossPoint{Epoch: i, Seconds: float64(i), Loss: float64(100 - i)}
	}
	out := Downsample(curve, 10)
	if len(out) > 10 {
		t.Fatalf("len %d", len(out))
	}
	if out[0].Epoch != 0 || out[len(out)-1].Epoch != 99 {
		t.Fatalf("endpoints %d..%d", out[0].Epoch, out[len(out)-1].Epoch)
	}
	// Short curves pass through untouched.
	if got := Downsample(curve[:5], 10); len(got) != 5 {
		t.Fatal("short curve modified")
	}
}

func TestDownsampleMonotoneProperty(t *testing.T) {
	f := func(nRaw uint8, kRaw uint8) bool {
		n := int(nRaw)%200 + 2
		k := int(kRaw)%50 + 2
		curve := make([]core.LossPoint, n)
		for i := range curve {
			curve[i] = core.LossPoint{Epoch: i, Seconds: float64(i)}
		}
		out := Downsample(curve, k)
		if len(out) > k {
			return false
		}
		for i := 1; i < len(out); i++ {
			if out[i].Epoch <= out[i-1].Epoch {
				return false
			}
		}
		return out[0].Epoch == 0 && out[len(out)-1].Epoch == n-1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestAUCTime(t *testing.T) {
	curve := []core.LossPoint{
		{Seconds: 0, Loss: 2},
		{Seconds: 1, Loss: 1},
		{Seconds: 3, Loss: 1},
	}
	// trapezoids: (2+1)/2*1 + (1+1)/2*2 = 1.5 + 2 = 3.5
	if got := AUCTime(curve); math.Abs(got-3.5) > 1e-12 {
		t.Fatalf("AUC = %v", got)
	}
	if AUCTime(nil) != 0 {
		t.Fatal("empty AUC")
	}
}
