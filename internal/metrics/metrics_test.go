package metrics

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/core"
)

func TestSummarizeBasics(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4})
	if s.N != 4 || s.Mean != 2.5 {
		t.Fatalf("summary %+v", s)
	}
	if math.Abs(s.Std-1.2909944487) > 1e-9 {
		t.Fatalf("std %v", s.Std)
	}
	if s.Min != 1 || s.Max != 4 {
		t.Fatalf("min/max %v/%v", s.Min, s.Max)
	}
}

func TestSummarizeHandlesInf(t *testing.T) {
	s := Summarize([]float64{1, math.Inf(1), 3})
	if s.N != 2 || s.InfCount != 1 {
		t.Fatalf("%+v", s)
	}
	if s.Mean != 2 {
		t.Fatalf("mean %v", s.Mean)
	}
	all := Summarize([]float64{math.Inf(1), math.Inf(1)})
	if all.N != 0 || all.InfCount != 2 || !math.IsInf(all.Mean, 1) {
		t.Fatalf("%+v", all)
	}
	// All-∞ input: the extrema must agree with the Mean instead of
	// reporting the empty-set NaN sentinels.
	if !math.IsInf(all.Min, 1) || !math.IsInf(all.Max, 1) {
		t.Fatalf("all-inf min/max = %v/%v, want +Inf", all.Min, all.Max)
	}
	// Genuinely empty input still reports NaN extrema.
	empty := Summarize(nil)
	if !math.IsNaN(empty.Min) || !math.IsNaN(empty.Max) || empty.Mean != 0 {
		t.Fatalf("empty summary %+v", empty)
	}
}

func TestSummarizeIgnoresNaN(t *testing.T) {
	s := Summarize([]float64{2, math.NaN(), 4})
	if s.N != 2 || s.Mean != 3 {
		t.Fatalf("%+v", s)
	}
}

func TestRepeat(t *testing.T) {
	calls := 0
	s := Repeat(5, func(rep int) float64 {
		calls++
		return float64(rep)
	})
	if calls != 5 || s.Mean != 2 {
		t.Fatalf("calls %d summary %+v", calls, s)
	}
	if got := Repeat(0, func(int) float64 { return 7 }); got.N != 1 {
		t.Fatalf("n<1 floor: %+v", got)
	}
}

func TestMeanEpochs(t *testing.T) {
	s := MeanEpochs([]int{10, -1, 20})
	if s.N != 2 || s.Mean != 15 || s.InfCount != 1 {
		t.Fatalf("%+v", s)
	}
}

func TestDownsampleKeepsEndpoints(t *testing.T) {
	curve := make([]core.LossPoint, 100)
	for i := range curve {
		curve[i] = core.LossPoint{Epoch: i, Seconds: float64(i), Loss: float64(100 - i)}
	}
	out := Downsample(curve, 10)
	if len(out) > 10 {
		t.Fatalf("len %d", len(out))
	}
	if out[0].Epoch != 0 || out[len(out)-1].Epoch != 99 {
		t.Fatalf("endpoints %d..%d", out[0].Epoch, out[len(out)-1].Epoch)
	}
	// Short curves pass through untouched.
	if got := Downsample(curve[:5], 10); len(got) != 5 {
		t.Fatal("short curve modified")
	}
}

func TestDownsampleEdgeCases(t *testing.T) {
	curve := make([]core.LossPoint, 10)
	for i := range curve {
		curve[i] = core.LossPoint{Epoch: i, Seconds: float64(i), Loss: float64(10 - i)}
	}
	// k == 1 keeps the last point (the converged loss) instead of dividing
	// by k-1.
	one := Downsample(curve, 1)
	if len(one) != 1 || one[0].Epoch != 9 {
		t.Fatalf("k=1: %+v", one)
	}
	// k >= len passes the curve through untouched.
	if got := Downsample(curve, len(curve)); len(got) != len(curve) {
		t.Fatalf("k=len returned %d points", len(got))
	}
	if got := Downsample(curve, 1000); len(got) != len(curve) {
		t.Fatalf("k>len returned %d points", len(got))
	}
	// k <= 0 means no downsampling.
	if got := Downsample(curve, 0); len(got) != len(curve) {
		t.Fatalf("k=0 returned %d points", len(got))
	}
	// Empty curves survive every k.
	for _, k := range []int{0, 1, 2} {
		if got := Downsample(nil, k); len(got) != 0 {
			t.Fatalf("nil curve, k=%d: %d points", k, len(got))
		}
	}
}

func TestDownsampleMonotoneProperty(t *testing.T) {
	f := func(nRaw uint8, kRaw uint8) bool {
		n := int(nRaw)%200 + 2
		k := int(kRaw)%50 + 2
		curve := make([]core.LossPoint, n)
		for i := range curve {
			curve[i] = core.LossPoint{Epoch: i, Seconds: float64(i)}
		}
		out := Downsample(curve, k)
		if len(out) > k {
			return false
		}
		for i := 1; i < len(out); i++ {
			if out[i].Epoch <= out[i-1].Epoch {
				return false
			}
		}
		return out[0].Epoch == 0 && out[len(out)-1].Epoch == n-1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestAUCTime(t *testing.T) {
	curve := []core.LossPoint{
		{Seconds: 0, Loss: 2},
		{Seconds: 1, Loss: 1},
		{Seconds: 3, Loss: 1},
	}
	// trapezoids: (2+1)/2*1 + (1+1)/2*2 = 1.5 + 2 = 3.5
	if got := AUCTime(curve); math.Abs(got-3.5) > 1e-12 {
		t.Fatalf("AUC = %v", got)
	}
	if AUCTime(nil) != 0 {
		t.Fatal("empty AUC")
	}
}

func TestAUCTimeNonMonotonicSeconds(t *testing.T) {
	// A backwards time step (merged or malformed curves) contributes
	// nothing instead of subtracting area.
	curve := []core.LossPoint{
		{Seconds: 0, Loss: 2},
		{Seconds: 1, Loss: 1}, // +1.5
		{Seconds: 0.5, Loss: 4},
		{Seconds: 1.5, Loss: 2}, // +3
	}
	if got := AUCTime(curve); math.Abs(got-4.5) > 1e-12 {
		t.Fatalf("AUC = %v, want 4.5", got)
	}
	// Zero-width steps (duplicate timestamps) also contribute nothing.
	flat := []core.LossPoint{{Seconds: 1, Loss: 5}, {Seconds: 1, Loss: 7}}
	if got := AUCTime(flat); got != 0 {
		t.Fatalf("duplicate-timestamp AUC = %v", got)
	}
}
