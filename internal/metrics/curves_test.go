package metrics

import (
	"math"
	"testing"
)

func TestQuantile(t *testing.T) {
	xs := []float64{4, 1, 3, 2}
	if got := Quantile(xs, 0); got != 1 {
		t.Fatalf("q0 = %v, want 1", got)
	}
	if got := Quantile(xs, 1); got != 4 {
		t.Fatalf("q1 = %v, want 4", got)
	}
	if got := Quantile(xs, 0.5); got != 2.5 {
		t.Fatalf("median = %v, want 2.5", got)
	}
	// Input must not be reordered.
	if xs[0] != 4 || xs[3] != 2 {
		t.Fatalf("Quantile mutated its input: %v", xs)
	}
	// NaNs are ignored; all-NaN and empty inputs yield NaN.
	if got := Quantile([]float64{math.NaN(), 2, math.NaN(), 4}, 0.5); got != 3 {
		t.Fatalf("NaN-tolerant median = %v, want 3", got)
	}
	if got := Quantile(nil, 0.5); !math.IsNaN(got) {
		t.Fatalf("empty quantile = %v, want NaN", got)
	}
	if got := Quantile([]float64{math.NaN()}, 0.5); !math.IsNaN(got) {
		t.Fatalf("all-NaN quantile = %v, want NaN", got)
	}
}

func TestEnvelopeRaggedAndNaN(t *testing.T) {
	curves := [][]float64{
		{1, 2, 3, 4},
		{1, 2, 5},          // shorter curve: index 3 has fewer samples
		{1, math.NaN(), 4}, // NaN sample ignored at index 1
		{1, 2, math.NaN(), math.NaN()},
	}
	lo, mid, hi := Envelope(curves, 0, 1)
	if len(lo) != 4 || len(mid) != 4 || len(hi) != 4 {
		t.Fatalf("envelope length = %d/%d/%d, want 4", len(lo), len(mid), len(hi))
	}
	if lo[0] != 1 || hi[0] != 1 {
		t.Fatalf("index 0: [%v, %v], want [1, 1]", lo[0], hi[0])
	}
	if lo[1] != 2 || hi[1] != 2 {
		t.Fatalf("index 1 (NaN ignored): [%v, %v], want [2, 2]", lo[1], hi[1])
	}
	if lo[2] != 3 || hi[2] != 5 || mid[2] != 4 {
		t.Fatalf("index 2: [%v, %v, %v], want [3, 4, 5]", lo[2], mid[2], hi[2])
	}
	if lo[3] != 4 || hi[3] != 4 {
		t.Fatalf("index 3 (single sample): [%v, %v], want [4, 4]", lo[3], hi[3])
	}
	// An index where every sample is NaN yields NaN bounds.
	lo, mid, hi = Envelope([][]float64{{math.NaN()}, {math.NaN()}}, 0.1, 0.9)
	if !math.IsNaN(lo[0]) || !math.IsNaN(mid[0]) || !math.IsNaN(hi[0]) {
		t.Fatalf("all-NaN column: [%v, %v, %v], want NaNs", lo[0], mid[0], hi[0])
	}
}

func TestCompareCurves(t *testing.T) {
	want := []float64{1, 0.5, 0.25}
	if d := CompareCurves([]float64{1, 0.5, 0.25}, want, 0, 0); !d.OK {
		t.Fatalf("identical curves: %+v", d)
	}
	// Tolerance edge: error below absTol+relTol*|w| passes, above fails.
	got := []float64{1, 0.5 + 0.5*0.5e-9, 0.25}
	if d := CompareCurves(got, want, 1e-9, 0); !d.OK {
		t.Fatalf("error below tolerance should pass: %+v", d)
	}
	got[1] = 0.5 + 0.5*3e-9
	d := CompareCurves(got, want, 1e-9, 0)
	if d.OK || d.Index != 1 {
		t.Fatalf("error above tolerance: %+v", d)
	}
	if d.MaxRelErr < 2e-9 || d.MaxRelErr > 4e-9 {
		t.Fatalf("MaxRelErr = %v, want ~3e-9", d.MaxRelErr)
	}
	// Length mismatch fails even when the common prefix matches.
	if d := CompareCurves([]float64{1, 0.5}, want, 1e-9, 0); d.OK || d.Index != 2 {
		t.Fatalf("length mismatch: %+v", d)
	}
	// NaN on one side is a violation; on both sides a match (a recorded
	// divergence must replay as a divergence).
	if d := CompareCurves([]float64{1, math.NaN()}, []float64{1, 0.5}, 1e-9, 0); d.OK || d.Index != 1 {
		t.Fatalf("NaN vs finite: %+v", d)
	}
	if d := CompareCurves([]float64{1, math.NaN()}, []float64{1, math.NaN()}, 0, 0); !d.OK {
		t.Fatalf("NaN vs NaN should match: %+v", d)
	}
	if d := CompareCurves([]float64{math.Inf(1)}, []float64{math.Inf(1)}, 0, 0); !d.OK {
		t.Fatalf("+Inf vs +Inf should match: %+v", d)
	}
	if d := CompareCurves([]float64{math.Inf(1)}, []float64{math.Inf(-1)}, 0, 0); d.OK {
		t.Fatalf("+Inf vs -Inf should fail: %+v", d)
	}
	// Empty curves agree.
	if d := CompareCurves(nil, nil, 0, 0); !d.OK || d.MaxRelErr != 0 {
		t.Fatalf("empty curves: %+v", d)
	}
}

func TestWithinEnvelope(t *testing.T) {
	lo := []float64{1, 1, 1}
	hi := []float64{2, 2, 2}
	mid := []float64{1.5, 1.5, 1.5}
	if d := WithinEnvelope([]float64{1.5, 1.0, 2.0}, lo, hi, mid, 0, 0); !d.OK {
		t.Fatalf("inside band: %+v", d)
	}
	d := WithinEnvelope([]float64{1.5, 0.4, 1.5}, lo, hi, mid, 0, 0)
	if d.OK || d.Index != 1 || d.WorstExcess <= 0 {
		t.Fatalf("below band: %+v", d)
	}
	// Band slack expands by a fraction of the band width (width 1 here):
	// 0.4 is 0.6 below lo, so slack 0.5 still fails but 0.7 passes.
	if d := WithinEnvelope([]float64{1.5, 0.4, 1.5}, lo, hi, mid, 0.5, 0); d.OK {
		t.Fatalf("slack 0.5 should still fail: %+v", d)
	}
	if d := WithinEnvelope([]float64{1.5, 0.4, 1.5}, lo, hi, mid, 0.7, 0); !d.OK {
		t.Fatalf("slack 0.7 should pass: %+v", d)
	}
	// Relative slack expands by a fraction of |mid|.
	if d := WithinEnvelope([]float64{2.2, 1.5, 1.5}, lo, hi, mid, 0, 0.2); !d.OK {
		t.Fatalf("rel slack 0.2 should pass 2.2: %+v", d)
	}
	// NaN band indices are skipped; NaN curve values inside a recorded
	// band are violations.
	nanLo := []float64{math.NaN(), 1}
	nanHi := []float64{math.NaN(), 2}
	if d := WithinEnvelope([]float64{99, 1.5}, nanLo, nanHi, nil, 0, 0); !d.OK {
		t.Fatalf("NaN band index should be skipped: %+v", d)
	}
	if d := WithinEnvelope([]float64{1.5, math.NaN()}, lo, hi, nil, 0, 0); d.OK || d.Index != 1 {
		t.Fatalf("NaN curve value: %+v", d)
	}
	// A curve longer than the band fails at the first uncovered index; a
	// shorter curve is checked over its own length.
	if d := WithinEnvelope([]float64{1.5, 1.5, 1.5, 1.5}, lo, hi, mid, 0, 0); d.OK || d.Index != 3 {
		t.Fatalf("longer curve: %+v", d)
	}
	if d := WithinEnvelope([]float64{1.5}, lo, hi, mid, 0, 0); !d.OK {
		t.Fatalf("shorter curve: %+v", d)
	}
}

// The gate comparisons run in CI on every PR; they must not allocate.
func TestComparisonAllocs(t *testing.T) {
	got := make([]float64, 256)
	want := make([]float64, 256)
	lo := make([]float64, 256)
	hi := make([]float64, 256)
	for i := range got {
		got[i] = 1 + float64(i)
		want[i] = got[i]
		lo[i], hi[i] = got[i]-1, got[i]+1
	}
	if a := testing.AllocsPerRun(20, func() { CompareCurves(got, want, 1e-9, 0) }); a != 0 {
		t.Fatalf("CompareCurves allocates %v/op, want 0", a)
	}
	if a := testing.AllocsPerRun(20, func() { WithinEnvelope(got, lo, hi, want, 0.5, 0.02) }); a != 0 {
		t.Fatalf("WithinEnvelope allocates %v/op, want 0", a)
	}
}
