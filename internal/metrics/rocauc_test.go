package metrics

import (
	"math"
	"math/rand"
	"testing"
)

func TestROCAUCPerfectAndInverted(t *testing.T) {
	scores := []float64{-2, -1, 1, 2}
	labels := []float64{-1, -1, 1, 1}
	if auc := ROCAUC(scores, labels); auc != 1 {
		t.Errorf("perfect ranking AUC = %v, want 1", auc)
	}
	inv := []float64{2, 1, -1, -2}
	if auc := ROCAUC(inv, labels); auc != 0 {
		t.Errorf("inverted ranking AUC = %v, want 0", auc)
	}
}

func TestROCAUCRandomScoresNearHalf(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 4000
	scores := make([]float64, n)
	labels := make([]float64, n)
	for i := range scores {
		scores[i] = rng.NormFloat64()
		labels[i] = float64(2*rng.Intn(2) - 1)
	}
	if auc := ROCAUC(scores, labels); math.Abs(auc-0.5) > 0.03 {
		t.Errorf("independent scores AUC = %v, want ~0.5", auc)
	}
}

// TestROCAUCTiesAveraged: all-equal scores rank every pair as a coin flip,
// so tie-averaging must give exactly 0.5 — the failure mode a naive
// strict-comparison implementation gets wrong.
func TestROCAUCTiesAveraged(t *testing.T) {
	scores := []float64{1, 1, 1, 1}
	labels := []float64{1, -1, 1, -1}
	if auc := ROCAUC(scores, labels); auc != 0.5 {
		t.Errorf("all-tied AUC = %v, want exactly 0.5", auc)
	}
	// A tie block straddling the classes: positives {2, 1}, negatives {1, 0}.
	// Pairs: (2>1)=1, (2>0)=1, (1=1)=0.5, (1>0)=1 => AUC 3.5/4.
	scores = []float64{2, 1, 1, 0}
	labels = []float64{1, -1, 1, -1}
	if auc := ROCAUC(scores, labels); auc != 3.5/4 {
		t.Errorf("straddling tie AUC = %v, want %v", auc, 3.5/4)
	}
}

func TestROCAUCSingleClassNaN(t *testing.T) {
	if auc := ROCAUC([]float64{1, 2, 3}, []float64{1, 1, 1}); !math.IsNaN(auc) {
		t.Errorf("all-positive AUC = %v, want NaN", auc)
	}
	if auc := ROCAUC([]float64{1, 2, 3}, []float64{-1, -1, -1}); !math.IsNaN(auc) {
		t.Errorf("all-negative AUC = %v, want NaN", auc)
	}
	if auc := ROCAUC(nil, nil); !math.IsNaN(auc) {
		t.Errorf("empty AUC = %v, want NaN", auc)
	}
	if auc := ROCAUC([]float64{1}, []float64{1, -1}); !math.IsNaN(auc) {
		t.Errorf("length-mismatch AUC = %v, want NaN", auc)
	}
}

// TestROCAUCMonotoneInvariance: AUC is a rank statistic, so any strictly
// increasing transform of the scores leaves it unchanged — the property that
// makes the quantisation gate's AUC delta a pure ranking-damage measure.
func TestROCAUCMonotoneInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	n := 500
	scores := make([]float64, n)
	labels := make([]float64, n)
	for i := range scores {
		scores[i] = rng.NormFloat64() * 2
		if scores[i]+rng.NormFloat64() > 0 {
			labels[i] = 1
		} else {
			labels[i] = -1
		}
	}
	base := ROCAUC(scores, labels)
	if math.IsNaN(base) || base <= 0.5 {
		t.Fatalf("test setup: base AUC %v not informative", base)
	}
	transforms := map[string]func(float64) float64{
		"affine":  func(x float64) float64 { return 3*x - 7 },
		"sigmoid": func(x float64) float64 { return 1 / (1 + math.Exp(-x)) },
		"cube":    func(x float64) float64 { return x * x * x },
	}
	tr := make([]float64, n)
	for name, f := range transforms {
		for i, s := range scores {
			tr[i] = f(s)
		}
		if auc := ROCAUC(tr, labels); auc != base {
			t.Errorf("%s transform changed AUC: %v != %v", name, auc, base)
		}
	}
}
