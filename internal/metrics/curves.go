package metrics

import (
	"math"
	"sort"
)

// Curve-comparison and quantile-envelope utilities for the regression
// gates. Deterministic engines are gated point-by-point with CompareCurves;
// asynchronous engines are inherently nondeterministic (HOGWILD!-style
// races), so their goldens are quantile envelopes over repeated seeded runs
// and the gate checks a fresh median curve against the recorded band.

// Quantile returns the q-quantile (0 <= q <= 1) of xs with linear
// interpolation between order statistics, ignoring NaNs. It returns NaN for
// an empty (or all-NaN) input and does not modify xs.
func Quantile(xs []float64, q float64) float64 {
	clean := make([]float64, 0, len(xs))
	for _, x := range xs {
		if !math.IsNaN(x) {
			clean = append(clean, x)
		}
	}
	return quantileSorted(clean, q, true)
}

// quantileSorted computes the interpolated quantile of xs, sorting first
// when needed. xs must be NaN-free.
func quantileSorted(xs []float64, q float64, needSort bool) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	if needSort {
		sort.Float64s(xs)
	}
	if q <= 0 {
		return xs[0]
	}
	if q >= 1 {
		return xs[len(xs)-1]
	}
	pos := q * float64(len(xs)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return xs[lo]
	}
	frac := pos - float64(lo)
	return xs[lo]*(1-frac) + xs[hi]*frac
}

// Envelope computes per-index quantile curves over a family of curves: for
// each index i present in at least one curve, lo[i], mid[i], hi[i] are the
// qlo/0.5/qhi quantiles of the values the curves have at i. Curves may have
// different lengths (an async run can diverge and stop early); indices past
// a curve's end simply have fewer samples. NaN samples are ignored; an
// index where every curve is NaN or absent yields NaN in all three outputs.
func Envelope(curves [][]float64, qlo, qhi float64) (lo, mid, hi []float64) {
	maxLen := 0
	for _, c := range curves {
		if len(c) > maxLen {
			maxLen = len(c)
		}
	}
	lo = make([]float64, maxLen)
	mid = make([]float64, maxLen)
	hi = make([]float64, maxLen)
	col := make([]float64, 0, len(curves))
	for i := 0; i < maxLen; i++ {
		col = col[:0]
		for _, c := range curves {
			if i < len(c) && !math.IsNaN(c[i]) {
				col = append(col, c[i])
			}
		}
		sort.Float64s(col)
		lo[i] = quantileSorted(col, qlo, false)
		mid[i] = quantileSorted(col, 0.5, false)
		hi[i] = quantileSorted(col, qhi, false)
	}
	return lo, mid, hi
}

// CurveDiff reports the outcome of a point-by-point curve comparison.
type CurveDiff struct {
	// OK is true when every point of got matches want within tolerance and
	// the lengths agree.
	OK bool
	// Index is the first violating point (-1 when OK).
	Index int
	// MaxRelErr is the largest relative error observed over the compared
	// prefix (0 for empty curves).
	MaxRelErr float64
	// LenGot, LenWant record the curve lengths (a mismatch is a failure).
	LenGot, LenWant int
}

// CompareCurves checks got against want point by point: each pair must
// satisfy |g-w| <= absTol + relTol*|w|, lengths must match, and a NaN or
// Inf on either side at index i is a violation at i unless both sides are
// the same non-finite value. It allocates nothing.
func CompareCurves(got, want []float64, relTol, absTol float64) CurveDiff {
	d := CurveDiff{OK: true, Index: -1, LenGot: len(got), LenWant: len(want)}
	n := len(got)
	if len(want) < n {
		n = len(want)
	}
	for i := 0; i < n; i++ {
		g, w := got[i], want[i]
		if !isFinite(g) || !isFinite(w) {
			// Same non-finite value (both NaN, or equal infinities) is a
			// match: a golden recorded from a diverging run must replay.
			if (math.IsNaN(g) && math.IsNaN(w)) || g == w {
				continue
			}
			if d.OK {
				d.OK = false
				d.Index = i
			}
			d.MaxRelErr = math.Inf(1)
			continue
		}
		err := math.Abs(g - w)
		if rel := err / math.Max(math.Abs(w), 1e-300); rel > d.MaxRelErr {
			d.MaxRelErr = rel
		}
		if err > absTol+relTol*math.Abs(w) && d.OK {
			d.OK = false
			d.Index = i
		}
	}
	if len(got) != len(want) {
		d.OK = false
		if d.Index < 0 {
			d.Index = n
		}
	}
	return d
}

// EnvelopeDiff reports the outcome of a band-membership check.
type EnvelopeDiff struct {
	// OK is true when every point of curve lies inside the slack-expanded
	// band.
	OK bool
	// Index is the first point outside the band (-1 when OK).
	Index int
	// WorstExcess is the largest distance outside the expanded band,
	// relative to max(|mid|, 1e-12) at that index.
	WorstExcess float64
}

// WithinEnvelope checks that curve[i] lies inside [lo[i], hi[i]] expanded
// by a slack margin at every index: the band is widened on each side by
// bandSlack*(hi-lo) + relSlack*|mid| (mid may be nil, disabling the
// relative term). Indices where the band is NaN (no recorded samples) are
// skipped; a NaN in curve at an index with a recorded band is a violation.
// A curve longer than the band fails at the first uncovered index; a
// shorter curve is checked over its own length. It allocates nothing.
func WithinEnvelope(curve, lo, hi, mid []float64, bandSlack, relSlack float64) EnvelopeDiff {
	d := EnvelopeDiff{OK: true, Index: -1}
	for i, x := range curve {
		if i >= len(lo) || i >= len(hi) {
			if d.OK {
				d.OK = false
				d.Index = i
			}
			break
		}
		l, h := lo[i], hi[i]
		if math.IsNaN(l) || math.IsNaN(h) {
			continue
		}
		var m float64
		if mid != nil && i < len(mid) && !math.IsNaN(mid[i]) {
			m = mid[i]
		}
		margin := bandSlack*(h-l) + relSlack*math.Abs(m)
		el, eh := l-margin, h+margin
		if math.IsNaN(x) || x < el || x > eh {
			var excess float64
			if math.IsNaN(x) {
				excess = math.Inf(1)
			} else if x < el {
				excess = (el - x) / math.Max(math.Abs(m), 1e-12)
			} else {
				excess = (x - eh) / math.Max(math.Abs(m), 1e-12)
			}
			if excess > d.WorstExcess {
				d.WorstExcess = excess
			}
			if d.OK {
				d.OK = false
				d.Index = i
			}
		}
	}
	return d
}

func isFinite(x float64) bool { return !math.IsNaN(x) && !math.IsInf(x, 0) }
