// Package metrics provides the measurement statistics of the study's
// methodology: repeated runs summarised by mean and standard deviation
// (the paper performs every experiment at least 10 times and reports the
// average), convergence-curve downsampling for plotting, and simple
// aggregation helpers shared by the harness.
package metrics

import (
	"math"
	"sort"

	"repro/internal/core"
)

// Summary describes repeated scalar measurements.
type Summary struct {
	N        int
	Mean     float64
	Std      float64
	Min, Max float64
	InfCount int // measurements that were +Inf (non-convergence runs)
}

// Summarize computes the summary of xs, excluding non-finite values from the
// moments but counting +Inf occurrences (the ∞ rows of Table III).
func Summarize(xs []float64) Summary {
	s := Summary{Min: math.Inf(1), Max: math.Inf(-1)}
	var sum, sum2 float64
	for _, x := range xs {
		if math.IsInf(x, 1) {
			s.InfCount++
			continue
		}
		if math.IsNaN(x) {
			continue
		}
		s.N++
		sum += x
		sum2 += x * x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	if s.N > 0 {
		s.Mean = sum / float64(s.N)
		if s.N > 1 {
			v := (sum2 - sum*sum/float64(s.N)) / float64(s.N-1)
			if v > 0 {
				s.Std = math.Sqrt(v)
			}
		}
	} else {
		s.Min, s.Max = math.NaN(), math.NaN()
		if s.InfCount > 0 {
			// Every measurement was ∞ (no run converged): report the
			// extrema as +Inf too, consistent with the Mean, instead of
			// the empty-set NaN sentinels.
			s.Mean = math.Inf(1)
			s.Min, s.Max = math.Inf(1), math.Inf(1)
		}
	}
	return s
}

// Repeat runs fn n times and summarises its results.
func Repeat(n int, fn func(rep int) float64) Summary {
	if n < 1 {
		n = 1
	}
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = fn(i)
	}
	return Summarize(xs)
}

// MeanEpochs summarises integer epoch counts where -1 encodes
// non-convergence; the mean is over converged runs, InfCount counts the
// rest.
func MeanEpochs(epochs []int) Summary {
	xs := make([]float64, len(epochs))
	for i, e := range epochs {
		if e < 0 {
			xs[i] = math.Inf(1)
		} else {
			xs[i] = float64(e)
		}
	}
	return Summarize(xs)
}

// Downsample reduces a loss curve to at most k points, always keeping the
// first and last (for Fig. 7-style plotting without megabyte CSVs).
func Downsample(curve []core.LossPoint, k int) []core.LossPoint {
	if k <= 0 || len(curve) <= k {
		return curve
	}
	if k == 1 {
		// A single point cannot keep both endpoints; keep the last (the
		// converged loss), and avoid the k-1 division below.
		return []core.LossPoint{curve[len(curve)-1]}
	}
	out := make([]core.LossPoint, 0, k)
	step := float64(len(curve)-1) / float64(k-1)
	prev := -1
	for i := 0; i < k; i++ {
		idx := int(math.Round(float64(i) * step))
		if idx == prev {
			continue
		}
		prev = idx
		out = append(out, curve[idx])
	}
	return out
}

// AUCTime integrates loss over modeled time (trapezoid), a scalar that
// compares whole convergence trajectories: lower means the engine spends
// less time at high loss.
func AUCTime(curve []core.LossPoint) float64 {
	var auc float64
	for i := 1; i < len(curve); i++ {
		dt := curve[i].Seconds - curve[i-1].Seconds
		if dt <= 0 {
			// Non-monotonic timestamps (merged or malformed curves)
			// must not subtract area.
			continue
		}
		auc += dt * (curve[i].Loss + curve[i-1].Loss) / 2
	}
	return auc
}

// ROCAUC computes the area under the ROC curve of real-valued scores
// against ±1 labels via the rank statistic (Mann-Whitney U): the
// probability that a random positive outscores a random negative, with
// tied scores counted half. It is the classifier-quality number the
// quantisation accuracy gate compares between the float64 and int8 scoring
// paths — AUC is invariant to any monotone transform of the scores, so a
// quantisation error only moves it by reordering examples across the
// decision surface. Returns NaN when either class is absent.
func ROCAUC(scores, labels []float64) float64 {
	n := len(scores)
	if n == 0 || len(labels) != n {
		return math.NaN()
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return scores[order[a]] < scores[order[b]] })
	// Sum average ranks (1-based, ties averaged) over the positives.
	var rankSumPos, nPos, nNeg float64
	for lo := 0; lo < n; {
		hi := lo + 1
		for hi < n && scores[order[hi]] == scores[order[lo]] {
			hi++
		}
		avgRank := float64(lo+hi+1) / 2 // mean of ranks lo+1 .. hi
		for k := lo; k < hi; k++ {
			if labels[order[k]] > 0 {
				rankSumPos += avgRank
				nPos++
			} else {
				nNeg++
			}
		}
		lo = hi
	}
	if nPos == 0 || nNeg == 0 {
		return math.NaN()
	}
	return (rankSumPos - nPos*(nPos+1)/2) / (nPos * nNeg)
}
