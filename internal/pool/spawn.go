package pool

import "sync"

// Spawn is the per-call goroutine-spawning reference implementation the
// persistent pool replaced (the seed's linalg.parallelFor, minus its
// GOMAXPROCS clamp so benchmarks can force a worker count). Each call pays
// `workers` goroutine creations, a closure allocation per chunk, and a
// WaitGroup park/wake. It is kept as the baseline for the pool-vs-spawn
// benchmarks and as an independent oracle in tests; production code should
// use Pool.Run.
func Spawn(workers, n int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		fn(0, n)
		return
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}
