package pool

import (
	"fmt"
	"math/rand"
)

// Sequencer is a virtual-time cooperative scheduler: a fixed set of worker
// bodies runs on real goroutines, but a channel handshake guarantees that at
// most one of them executes at any moment, and the order in which they are
// resumed is a pure function of the seed. Each worker carries a virtual
// clock; at every scheduling point the runnable worker with the smallest
// clock runs next (ties broken by the seeded RNG), so a worker whose steps
// cost 10 virtual units is resumed ten times less often than its unit-cost
// peers — exactly a straggler's interleaving, replayed deterministically.
//
// This is the substrate of the chaos tests (internal/chaos): Hogwild's racy
// update order, which on a many-core host depends on the OS scheduler,
// becomes a seeded permutation that two runs reproduce bit for bit. The
// happens-before edges of the resume/park handshake also make the single
// running worker data-race-free under the race detector even though the
// worker bodies touch a shared model vector without locks.
//
// A Sequencer is single-use: register workers with Go, drive them with Run,
// then discard it. It must not be shared across concurrent Runs.
type Sequencer struct {
	rng     *rand.Rand
	workers []*seqWorker
	started bool
}

// seqWorker is one registered cooperative worker.
type seqWorker struct {
	clock  float64
	resume chan struct{} // scheduler -> worker: your turn
	parked chan struct{} // worker -> scheduler: yielded or exited
	done   bool
	ready  func() bool // nil = always runnable (see Turn.Gate)
}

// NewSequencer returns a scheduler whose interleaving decisions replay
// exactly for a given seed.
func NewSequencer(seed int64) *Sequencer {
	return &Sequencer{rng: rand.New(rand.NewSource(seed))}
}

// Turn is the scheduling handle passed to a worker body. All methods must be
// called from that body's goroutine.
type Turn struct {
	w *seqWorker
}

// Tick charges cost virtual seconds to the worker's clock and yields to the
// scheduler. The worker resumes when its clock is again the minimum among
// runnable workers. Cost values below zero are treated as zero.
func (t *Turn) Tick(cost float64) {
	if cost > 0 {
		t.w.clock += cost
	}
	t.w.parked <- struct{}{}
	<-t.w.resume
}

// Clock returns the worker's accumulated virtual time.
func (t *Turn) Clock() float64 { return t.w.clock }

// Gate installs a readiness predicate: the scheduler will not resume this
// worker while ready() reports false (evaluated between turns, on the
// scheduler goroutine — the predicate must only read state that parked
// workers cannot mutate). If every live worker is gated the scheduler
// resumes the gated worker with the smallest clock anyway, so a cyclic gate
// cannot deadlock the run; bounds expressed relative to the least-advanced
// worker (the SSP discipline) therefore always make progress.
func (t *Turn) Gate(ready func() bool) { t.w.ready = ready }

// Go registers one worker body. Bodies do not start executing until Run.
func (s *Sequencer) Go(fn func(t *Turn)) {
	if s.started {
		panic("pool: Sequencer.Go after Run")
	}
	w := &seqWorker{
		resume: make(chan struct{}),
		parked: make(chan struct{}),
	}
	s.workers = append(s.workers, w)
	go func() {
		<-w.resume
		fn(&Turn{w: w})
		w.done = true
		w.parked <- struct{}{}
	}()
}

// Run drives the registered workers to completion, one turn at a time, and
// returns when every body has exited. It must be called exactly once.
func (s *Sequencer) Run() {
	if s.started {
		panic("pool: Sequencer.Run called twice")
	}
	s.started = true
	live := len(s.workers)
	for live > 0 {
		w := s.pick()
		w.resume <- struct{}{}
		<-w.parked
		if w.done {
			live--
		}
	}
}

// pick selects the next worker: the runnable (non-gated) live worker with
// the minimum virtual clock, ties broken uniformly by the seeded RNG. When
// every live worker is gated the minimum-clock gated worker is chosen, which
// keeps relative-progress gates deadlock-free.
func (s *Sequencer) pick() *seqWorker {
	var best *seqWorker
	nbest := 0
	gatedPass := false
	for {
		for _, w := range s.workers {
			if w.done {
				continue
			}
			if !gatedPass && w.ready != nil && !w.ready() {
				continue
			}
			switch {
			case best == nil || w.clock < best.clock:
				best, nbest = w, 1
			case w.clock == best.clock:
				nbest++
				if s.rng.Intn(nbest) == 0 {
					best = w
				}
			}
		}
		if best != nil {
			return best
		}
		if gatedPass {
			panic(fmt.Sprintf("pool: Sequencer.pick with no live workers (%d registered)", len(s.workers)))
		}
		gatedPass = true
	}
}

// Makespan returns the maximum virtual clock over all workers: the virtual
// wall-clock of the schedule, valid after Run. With per-update unit costs
// and a straggler at factor F it reproduces the modeled epoch stretch the
// chaos layer reports.
func (s *Sequencer) Makespan() float64 {
	var m float64
	for _, w := range s.workers {
		if w.clock > m {
			m = w.clock
		}
	}
	return m
}

// TotalWork returns the sum of all worker clocks (the ideal single-worker
// virtual time), valid after Run.
func (s *Sequencer) TotalWork() float64 {
	var t float64
	for _, w := range s.workers {
		t += w.clock
	}
	return t
}
