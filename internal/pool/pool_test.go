package pool

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

func TestRunCoversRangeExactlyOnce(t *testing.T) {
	p := New(4)
	defer p.Close()
	for _, tc := range []struct{ workers, n int }{
		{1, 1}, {2, 1}, {4, 3}, {4, 1000}, {8, 1000}, {3, 7}, {100, 10},
	} {
		seen := make([]int32, tc.n)
		p.RunFunc(tc.workers, tc.n, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&seen[i], 1)
			}
		})
		for i, v := range seen {
			if v != 1 {
				t.Fatalf("workers=%d n=%d: index %d visited %d times", tc.workers, tc.n, i, v)
			}
		}
	}
}

func TestRunDegenerateCases(t *testing.T) {
	p := New(2)
	defer p.Close()
	p.RunFunc(4, 0, func(lo, hi int) { t.Error("called for n=0") })
	p.RunFunc(0, 3, func(lo, hi int) {})
	p.RunFunc(-1, 3, func(lo, hi int) {})
}

func TestConcurrentRunsFromManyGoroutines(t *testing.T) {
	p := New(4)
	defer p.Close()
	const goroutines = 8
	const n = 500
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var total atomic.Int64
			for rep := 0; rep < 50; rep++ {
				total.Store(0)
				p.RunFunc(4, n, func(lo, hi int) {
					var s int64
					for i := lo; i < hi; i++ {
						s += int64(i)
					}
					total.Add(s)
				})
				if got := total.Load(); got != n*(n-1)/2 {
					t.Errorf("sum = %d, want %d", got, n*(n-1)/2)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestNestedRunDoesNotDeadlock issues Runs from inside running tasks on a
// deliberately tiny pool: the non-blocking dispatch plus help-while-waiting
// must keep every level progressing.
func TestNestedRunDoesNotDeadlock(t *testing.T) {
	p := New(2)
	defer p.Close()
	var count atomic.Int64
	p.RunFunc(2, 4, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			p.RunFunc(2, 8, func(lo2, hi2 int) {
				count.Add(int64(hi2 - lo2))
			})
		}
	})
	if got := count.Load(); got != 4*8 {
		t.Fatalf("nested runs covered %d indices, want %d", got, 4*8)
	}
}

func TestTaskChunksAreDisjoint(t *testing.T) {
	p := New(4)
	defer p.Close()
	// Unsynchronised writes must be safe because ranges are disjoint; the
	// race detector verifies the claim.
	out := make([]int, 1000)
	p.RunFunc(4, len(out), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = i * i
		}
	})
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}

func TestDefaultPoolSharedAndSized(t *testing.T) {
	p1, p2 := Default(), Default()
	if p1 != p2 {
		t.Fatal("Default() returned distinct pools")
	}
	if p1.Size() < 1 {
		t.Fatalf("Default pool size %d", p1.Size())
	}
	sum := 0
	p1.RunFunc(2, 10, func(lo, hi int) {
		if lo == 0 {
			sum = hi - lo // workers clamp may run everything inline
		}
	})
	_ = sum
}

func TestSpawnMatchesRun(t *testing.T) {
	p := New(4)
	defer p.Close()
	a := make([]int32, 777)
	b := make([]int32, 777)
	Spawn(4, len(a), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			atomic.AddInt32(&a[i], 1)
		}
	})
	p.RunFunc(4, len(b), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			atomic.AddInt32(&b[i], 1)
		}
	})
	for i := range a {
		if a[i] != 1 || b[i] != 1 {
			t.Fatalf("index %d: spawn %d pool %d", i, a[i], b[i])
		}
	}
}

// TestRunZeroAllocSteadyState asserts the tentpole property: dispatching a
// parallel region through a warm pool allocates nothing.
func TestRunZeroAllocSteadyState(t *testing.T) {
	p := New(2)
	defer p.Close()
	data := make([]float64, 4096)
	task := &scaleTask{data: data, alpha: 1.0000001}
	// Warm the doneGroup freelist.
	for i := 0; i < 8; i++ {
		p.Run(2, len(data), task)
	}
	avg := testing.AllocsPerRun(100, func() {
		p.Run(2, len(data), task)
	})
	if avg != 0 {
		t.Fatalf("Pool.Run allocates %v per call in steady state, want 0", avg)
	}
}

type scaleTask struct {
	data  []float64
	alpha float64
}

func (t *scaleTask) Run(lo, hi int) {
	for i := lo; i < hi; i++ {
		t.data[i] *= t.alpha
	}
}

func TestRunUsesAtMostPoolSizeWorkers(t *testing.T) {
	// With more requested workers than pool size, chunking must coarsen to
	// the pool size rather than queueing excess chunks.
	prev := runtime.GOMAXPROCS(0)
	_ = prev
	p := New(2)
	defer p.Close()
	var chunks atomic.Int64
	p.RunFunc(16, 1000, func(lo, hi int) { chunks.Add(1) })
	if got := chunks.Load(); got > 2 {
		t.Fatalf("dispatched %d chunks with pool size 2", got)
	}
}

// shardRecorder records which worker executed each index.
type shardRecorder struct {
	workers []int32 // per index: worker+2, so 0 = unvisited, 1 = caller (-1)
	runs    atomic.Int32
}

func (s *shardRecorder) Run(lo, hi int) { s.runs.Add(1) }
func (s *shardRecorder) RunShard(worker, lo, hi int) {
	for i := lo; i < hi; i++ {
		atomic.StoreInt32(&s.workers[i], int32(worker)+2)
	}
}

func TestShardTaskReceivesWorkerIdentity(t *testing.T) {
	p := New(4)
	defer p.Close()
	const n = 4000
	rec := &shardRecorder{workers: make([]int32, n)}
	p.Run(4, n, rec)
	if rec.runs.Load() != 0 {
		t.Fatal("ShardTask must route through RunShard, not Run")
	}
	for i, w := range rec.workers {
		if w == 0 {
			t.Fatalf("index %d unvisited", i)
		}
		if worker := int(w) - 2; worker < -1 || worker >= p.Size() {
			t.Fatalf("index %d: worker %d out of range [-1, %d)", i, worker, p.Size())
		}
	}
	// The caller always runs chunk 0 itself.
	if got := int(rec.workers[0]) - 2; got != -1 {
		t.Fatalf("chunk 0 worker = %d, want -1 (caller)", got)
	}
}

func TestShardTaskSequentialAndInlineReportCaller(t *testing.T) {
	for _, mk := range []func() *Pool{
		func() *Pool { return NewSequential(4, 1) },
		func() *Pool { return New(4) },
	} {
		p := mk()
		rec := &shardRecorder{workers: make([]int32, 100)}
		if p.Sequential() {
			p.Run(4, 100, rec)
		} else {
			p.Run(1, 100, rec) // workers<=1: inline path
			defer p.Close()
		}
		for i, w := range rec.workers {
			if p.Sequential() || i < 100 {
				if w != 0 && int(w)-2 != -1 {
					t.Fatalf("inline/sequential chunk reported worker %d", int(w)-2)
				}
			}
			if w == 0 {
				t.Fatalf("index %d unvisited", i)
			}
		}
	}
}
