// Package pool provides a persistent worker pool for the study's
// data-parallel loops.
//
// The epoch path issues thousands of small kernels per sweep (Map, Axpy,
// Scal on mini-batch-sized vectors, chunked SpMV rows). Spawning goroutines
// per call — the seed's linalg.parallelFor — pays goroutine creation, a
// closure allocation per chunk, and WaitGroup park/wake on every operation;
// HOGWILD! (Niu et al., 2011) and Ma et al. (2018) both observe that
// lock-free parallel SGD only pays off when the surrounding loop is
// allocation- and synchronisation-free. The pool keeps a fixed set of
// long-lived workers parked on a channel; dispatching a parallel region is
// then a handful of channel sends with zero steady-state allocations.
//
// The pool only changes how host work is scheduled. Modeled device times
// come from the cost models (internal/numa, internal/gpusim) and are
// computed from operation shapes, never from host wall-clock, so using the
// pool cannot affect any reproduced number.
package pool

import (
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
)

// Task is a data-parallel loop body: Run processes the half-open index
// range [lo, hi). A Task passed to Pool.Run is invoked concurrently on
// disjoint ranges, so it may write per-index state without synchronisation
// but must not share mutable per-range state across ranges.
//
// Hot call sites keep a long-lived Task value with argument fields they
// refill before each Run; that is what makes the steady state of the kernel
// path allocation-free (a closure would be re-allocated per call).
type Task interface {
	Run(lo, hi int)
}

// ShardTask is a Task that also wants to know which pool worker executed
// each chunk — the hook request-level span tracing uses to emit per-worker
// shard spans. Worker is the executing worker's index in [0, Size), or -1
// when the chunk ran on the calling goroutine (the caller's own first chunk,
// help-stolen chunks, the inline fallback when the queue is full, and every
// chunk of a sequential pool). RunShard is called instead of Run; the
// contract on ranges is identical.
type ShardTask interface {
	Task
	RunShard(worker, lo, hi int)
}

// runChunk executes one chunk, routing through RunShard when the task wants
// worker identity. The interface assertion is allocation-free, so Tasks that
// ignore workers pay a type check and nothing else.
func runChunk(t Task, worker, lo, hi int) {
	if st, ok := t.(ShardTask); ok {
		st.RunShard(worker, lo, hi)
		return
	}
	t.Run(lo, hi)
}

// call is one dispatched chunk of a Run invocation.
type call struct {
	t      Task
	lo, hi int
	d      *doneGroup
}

// execOn runs the chunk as the given worker (-1 = a calling goroutine).
func (c call) execOn(worker int) {
	runChunk(c.t, worker, c.lo, c.hi)
	if c.d.remaining.Add(-1) == 0 {
		c.d.ch <- struct{}{}
	}
}

// doneGroup tracks the outstanding dispatched chunks of one Run invocation.
// Instances are recycled through Pool.dones, so a Run in steady state
// allocates nothing.
type doneGroup struct {
	remaining atomic.Int64
	ch        chan struct{} // buffered 1: exactly one completion signal
}

// Pool is a fixed set of long-lived worker goroutines executing Tasks. It
// is safe for concurrent use: the CPU backend and the asynchronous engines
// share one pool, and Run may be called from inside a running Task (nested
// parallelism cannot deadlock; see Run).
type Pool struct {
	size  int
	tasks chan call
	dones chan *doneGroup
	// seqRng, when non-nil, switches the pool into the deterministic
	// sequential mode: Run executes every chunk inline on the caller, in a
	// seeded permutation order, with no worker goroutines. See
	// NewSequential.
	seqRng *rand.Rand
}

// New starts a pool with the given number of persistent workers. Sizes
// below 1 are raised to 1; a size-1 pool still accepts Run but executes
// everything inline on the caller.
func New(size int) *Pool {
	if size < 1 {
		size = 1
	}
	p := &Pool{
		size:  size,
		tasks: make(chan call, 4*size),
		dones: make(chan *doneGroup, 16),
	}
	for i := 0; i < size; i++ {
		go p.worker(i)
	}
	return p
}

// NewSequential returns a pool that reports the given size but executes
// every Run single-threaded on the calling goroutine, visiting the chunks in
// a seeded permutation order. Two pools built with the same seed replay the
// same chunk order on every call sequence; the chunk *split* is identical to
// the concurrent pool's, so a Task sees the same (lo, hi) ranges either way.
//
// This is the schedule-control substrate of the chaos harness: engines that
// dispatch racy work through a pool become exactly replayable when handed a
// sequential pool, without any change to the engine code. A sequential pool
// is not safe for concurrent Run calls (there is nothing concurrent about
// it); tests and the chaos runner drive it from one goroutine.
func NewSequential(size int, seed int64) *Pool {
	if size < 1 {
		size = 1
	}
	return &Pool{size: size, seqRng: rand.New(rand.NewSource(seed))}
}

// Sequential reports whether the pool is in deterministic sequential mode.
func (p *Pool) Sequential() bool { return p.seqRng != nil }

var (
	defaultOnce sync.Once
	defaultPool *Pool
)

// Default returns the shared process-wide pool, created at first use and
// sized to GOMAXPROCS. The CPU backend and the engines use it unless a test
// injects its own pool.
func Default() *Pool {
	defaultOnce.Do(func() { defaultPool = New(runtime.GOMAXPROCS(0)) })
	return defaultPool
}

// Size returns the number of persistent workers.
func (p *Pool) Size() int { return p.size }

// Close stops the workers once the queue drains. Only tests that create
// private pools need it; the Default pool lives for the process.
func (p *Pool) Close() {
	if p.tasks != nil {
		close(p.tasks)
	}
}

func (p *Pool) worker(id int) {
	for c := range p.tasks {
		c.execOn(id)
	}
}

// Run splits [0, n) into up to workers contiguous chunks and executes
// t.Run over all of them, returning when every chunk is done. The effective
// parallelism is capped at the pool size (extra requested workers add no
// real concurrency on the host; modeled thread counts are priced separately
// against the paper machine). The calling goroutine executes the first
// chunk itself and, while waiting, helps drain other queued chunks — so
// concurrent and nested Run calls always make progress and cannot deadlock.
// Steady-state Run performs zero heap allocations.
func (p *Pool) Run(workers, n int, t Task) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers > p.size {
		workers = p.size
	}
	if workers <= 1 {
		runChunk(t, -1, 0, n)
		return
	}
	chunk := (n + workers - 1) / workers
	nchunks := (n + chunk - 1) / chunk
	if nchunks <= 1 {
		runChunk(t, -1, 0, n)
		return
	}
	if p.seqRng != nil {
		// Sequential mode: the same chunk split, executed inline in a
		// seeded permutation order. No goroutines, no channels — the
		// whole Run is a deterministic function of the seed stream.
		for _, k := range p.seqRng.Perm(nchunks) {
			lo := k * chunk
			hi := lo + chunk
			if hi > n {
				hi = n
			}
			runChunk(t, -1, lo, hi)
		}
		return
	}
	d := p.getDone()
	d.remaining.Store(int64(nchunks - 1))
	for lo := chunk; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		c := call{t: t, lo: lo, hi: hi, d: d}
		select {
		case p.tasks <- c:
		default:
			// Queue full: run the chunk inline instead of blocking, so a
			// Run issued from inside a worker can never wedge the pool.
			c.execOn(-1)
		}
	}
	runChunk(t, -1, 0, chunk)
	for {
		select {
		case c := <-p.tasks:
			// Help drain the queue while waiting for our own chunks: the
			// stolen chunk may belong to another (possibly nested) Run,
			// which keeps every concurrent invocation progressing.
			c.execOn(-1)
		case <-d.ch:
			p.putDone(d)
			return
		}
	}
}

// RunGrain is Run with a minimum per-worker grain: the worker count is
// reduced so every chunk covers at least grain indices. Dispatching a chunk
// costs on the order of a microsecond (channel handoff plus a scheduler
// wake); an element-wise kernel at ~1ns/element therefore cannot profit
// from a chunk much smaller than a few thousand elements, and a mini-batch-
// sized vector runs inline. This — not raw dispatch speed — is what removes
// the per-op parallelism tax from an epoch of small kernels.
func (p *Pool) RunGrain(workers, n, grain int, t Task) {
	if grain > 1 {
		if byGrain := n / grain; workers > byGrain {
			workers = byGrain
		}
	}
	p.Run(workers, n, t)
}

// funcTask adapts a closure to Task. Func values are pointer-shaped, so the
// interface conversion itself does not allocate (the closure might).
type funcTask func(lo, hi int)

func (f funcTask) Run(lo, hi int) { f(lo, hi) }

// RunFunc is Run for closure call sites that are not allocation-critical
// (large dense kernels, host-side evaluation passes). Hot kernels should
// keep a pre-bound Task instead: the closure passed here is typically one
// heap allocation per call.
func (p *Pool) RunFunc(workers, n int, fn func(lo, hi int)) {
	p.Run(workers, n, funcTask(fn))
}

func (p *Pool) getDone() *doneGroup {
	select {
	case d := <-p.dones:
		return d
	default:
		return &doneGroup{ch: make(chan struct{}, 1)}
	}
}

func (p *Pool) putDone(d *doneGroup) {
	select {
	case p.dones <- d:
	default:
	}
}
