package pool

import (
	"runtime"
	"testing"
)

// The epoch path of the study is dominated by many small kernels (Map,
// Axpy, Scal over mini-batch-sized vectors). These benchmarks compare the
// per-operation dispatch cost of the persistent pool against the seed's
// spawn-per-call scheme on exactly that shape: an "epoch" of kernelOps
// element-wise operations over a vector of kernelLen floats, fanned out to
// benchWorkers workers.

const (
	kernelLen    = 512
	kernelOps    = 256
	benchWorkers = 4
)

// withProcs raises GOMAXPROCS for the benchmark so both schemes actually
// schedule benchWorkers goroutines (dispatch overhead is what is measured;
// it is paid regardless of physical core count).
func withProcs(b *testing.B, procs int, fn func()) {
	b.Helper()
	prev := runtime.GOMAXPROCS(procs)
	defer runtime.GOMAXPROCS(prev)
	fn()
}

type axpyTask struct {
	alpha float64
	x, y  []float64
}

func (t *axpyTask) Run(lo, hi int) {
	for i := lo; i < hi; i++ {
		t.y[i] += t.alpha * t.x[i]
	}
}

// BenchmarkSmallKernelEpochPool is the pool side of the tentpole
// comparison: one iteration is an epoch of kernelOps small Axpy kernels
// dispatched the way the CPU backend dispatches element-wise kernels — a
// warm persistent pool with a minimum per-worker grain, so mini-batch-sized
// vectors never pay a dispatch at all.
func BenchmarkSmallKernelEpochPool(b *testing.B) {
	withProcs(b, benchWorkers, func() {
		p := New(benchWorkers)
		defer p.Close()
		x := make([]float64, kernelLen)
		y := make([]float64, kernelLen)
		task := &axpyTask{alpha: 0.5, x: x, y: y}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for op := 0; op < kernelOps; op++ {
				p.RunGrain(benchWorkers, kernelLen, 4096, task)
			}
		}
	})
}

// BenchmarkSmallKernelEpochSpawn is the spawn-per-call baseline (the seed's
// parallelFor behaviour) on the identical kernel sequence.
func BenchmarkSmallKernelEpochSpawn(b *testing.B) {
	withProcs(b, benchWorkers, func() {
		x := make([]float64, kernelLen)
		y := make([]float64, kernelLen)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for op := 0; op < kernelOps; op++ {
				Spawn(benchWorkers, kernelLen, func(lo, hi int) {
					for j := lo; j < hi; j++ {
						y[j] += 0.5 * x[j]
					}
				})
			}
		}
	})
}

// BenchmarkDispatchOnlyPool isolates pure dispatch latency (empty body).
func BenchmarkDispatchOnlyPool(b *testing.B) {
	withProcs(b, benchWorkers, func() {
		p := New(benchWorkers)
		defer p.Close()
		task := &axpyTask{alpha: 0, x: make([]float64, benchWorkers), y: make([]float64, benchWorkers)}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p.Run(benchWorkers, benchWorkers, task)
		}
	})
}

// BenchmarkDispatchOnlySpawn isolates spawn+join latency (empty body).
func BenchmarkDispatchOnlySpawn(b *testing.B) {
	withProcs(b, benchWorkers, func() {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			Spawn(benchWorkers, benchWorkers, func(lo, hi int) {})
		}
	})
}
