package pool

import (
	"reflect"
	"sync/atomic"
	"testing"
	"time"
)

// seqTrace runs n unit-cost workers for steps turns each and returns the
// resume order as worker ids.
func seqTrace(seed int64, n, steps int) []int {
	s := NewSequencer(seed)
	var order []int
	for k := 0; k < n; k++ {
		k := k
		s.Go(func(t *Turn) {
			for i := 0; i < steps; i++ {
				order = append(order, k)
				t.Tick(1)
			}
		})
	}
	s.Run()
	return order
}

func TestSequencerReplaysExactly(t *testing.T) {
	a := seqTrace(7, 5, 20)
	b := seqTrace(7, 5, 20)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed produced different interleavings:\n%v\n%v", a, b)
	}
	c := seqTrace(8, 5, 20)
	if reflect.DeepEqual(a, c) {
		t.Fatalf("different seeds produced identical interleavings: %v", a)
	}
	counts := make(map[int]int)
	for _, k := range a {
		counts[k]++
	}
	for k := 0; k < 5; k++ {
		if counts[k] != 20 {
			t.Fatalf("worker %d resumed %d times, want 20", k, counts[k])
		}
	}
}

// TestSequencerIsSingleThreaded guards the scheduler against silently
// falling back to real concurrency: worker bodies sleep inside their turn,
// so any overlap between two turns would be caught by the entry counter
// (and, in CI, by the race detector on the unsynchronised maxSeen).
func TestSequencerIsSingleThreaded(t *testing.T) {
	s := NewSequencer(3)
	var running atomic.Int32
	maxSeen := int32(0)
	for k := 0; k < 8; k++ {
		s.Go(func(tn *Turn) {
			for i := 0; i < 10; i++ {
				if c := running.Add(1); c > maxSeen {
					maxSeen = c
				}
				time.Sleep(200 * time.Microsecond)
				running.Add(-1)
				tn.Tick(1)
			}
		})
	}
	s.Run()
	if maxSeen != 1 {
		t.Fatalf("observed %d workers running concurrently, want 1", maxSeen)
	}
}

// TestSequencerStragglerPacing checks the virtual-time discipline: a worker
// whose turns cost 10 units should complete roughly a tenth of its steps by
// the time unit-cost peers finish theirs, and the makespan should stretch to
// the straggler's total cost.
func TestSequencerStragglerPacing(t *testing.T) {
	s := NewSequencer(1)
	const steps = 100
	progressAtPeerExit := -1
	slowDone := 0
	fastDone := 0
	s.Go(func(tn *Turn) { // straggler: 10x cost per step
		for i := 0; i < steps; i++ {
			slowDone++
			tn.Tick(10)
		}
	})
	s.Go(func(tn *Turn) {
		for i := 0; i < steps; i++ {
			fastDone++
			tn.Tick(1)
		}
		progressAtPeerExit = slowDone
	})
	s.Run()
	if slowDone != steps || fastDone != steps {
		t.Fatalf("workers did not finish: slow=%d fast=%d", slowDone, fastDone)
	}
	// When the fast worker exits at virtual time ~100 the straggler has
	// ticked ~10 times (1 per 10 virtual units).
	if progressAtPeerExit < 5 || progressAtPeerExit > 20 {
		t.Fatalf("straggler had %d/%d steps done at peer exit, want ~10", progressAtPeerExit, steps)
	}
	if m := s.Makespan(); m != 10*steps {
		t.Fatalf("makespan = %v, want %v", m, 10*steps)
	}
	if w := s.TotalWork(); w != 11*steps {
		t.Fatalf("total work = %v, want %v", w, 11*steps)
	}
}

// TestSequencerGate exercises the SSP-style readiness predicate: a worker
// gated on the other's progress must never run more than bound steps ahead,
// and an all-gated schedule must still terminate via the deadlock-break.
func TestSequencerGate(t *testing.T) {
	s := NewSequencer(5)
	const steps, bound = 50, 3
	prog := [2]int{}
	maxLead := 0
	for k := 0; k < 2; k++ {
		k := k
		s.Go(func(tn *Turn) {
			tn.Gate(func() bool { return prog[k]-prog[1-k] <= bound })
			for i := 0; i < steps; i++ {
				if lead := prog[k] - prog[1-k]; lead > maxLead {
					maxLead = lead
				}
				prog[k]++
				tn.Tick(1)
			}
		})
	}
	s.Run()
	if prog[0] != steps || prog[1] != steps {
		t.Fatalf("gated workers did not finish: %v", prog)
	}
	if maxLead > bound+1 {
		t.Fatalf("worker ran %d steps ahead, bound %d", maxLead, bound)
	}
}

func TestSequentialPoolReplaysChunkOrder(t *testing.T) {
	order := func(seed int64) []int {
		p := NewSequential(4, seed)
		defer p.Close()
		var got []int
		p.RunFunc(4, 400, func(lo, hi int) { got = append(got, lo) })
		return got
	}
	a, b, c := order(11), order(11), order(12)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed, different chunk orders: %v vs %v", a, b)
	}
	if reflect.DeepEqual(a, c) {
		t.Fatalf("different seeds, identical chunk orders: %v", a)
	}
	if len(a) != 4 {
		t.Fatalf("got %d chunks, want 4", len(a))
	}
}

// TestSequentialPoolCoversRange checks the sequential mode visits exactly
// the same index set as the concurrent pool.
func TestSequentialPoolCoversRange(t *testing.T) {
	p := NewSequential(3, 9)
	defer p.Close()
	seen := make([]int, 1000)
	p.RunFunc(3, len(seen), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			seen[i]++
		}
	})
	for i, c := range seen {
		if c != 1 {
			t.Fatalf("index %d visited %d times", i, c)
		}
	}
}
