// sparsetext trains a linear SVM on a news20-like corpus (1.35M features,
// 0.03% density) with Hogwild and sweeps the thread count, reproducing the
// paper's core asynchronous finding: on sparse data parallelism scales,
// while the same sweep on dense covtype makes things worse.
//
//	go run ./examples/sparsetext
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	for _, name := range []string{"news", "covtype"} {
		spec, err := parsgd.LookupDataset(name)
		if err != nil {
			log.Fatal(err)
		}
		ds := parsgd.GenerateDataset(spec.Scaled(2000.0 / float64(spec.N)))
		factor := float64(spec.N) / float64(ds.N())
		m := parsgd.NewSVM(ds.D())
		init := m.InitParams(1)
		step := parsgd.TuneStep(func(s float64) parsgd.Engine {
			return parsgd.NewHogwildEngine(m, ds, s, 1)
		}, m, ds, init, 5)
		opt := parsgd.EstimateOptLoss(m, ds, 30)

		fmt.Printf("%s (density %.2f%%), SVM, step %g\n",
			name, parsgd.DatasetStatsOf(ds).DensityPct, step)
		fmt.Printf("%8s %14s %10s %14s\n", "threads", "time/iter", "epochs", "time-to-1%")
		var base float64
		for _, threads := range []int{1, 4, 14, 28, 56} {
			e := parsgd.NewHogwildEngine(m, ds, step, threads)
			e.CostScale = factor
			w := append([]float64(nil), init...)
			res := parsgd.RunToConvergence(e, m, ds, w, parsgd.DriverOpts{
				OptLoss: opt, MaxEpochs: 300,
			})
			ttc := res.SecondsTo[0.01]
			if threads == 1 {
				base = res.SecPerEpoch
			}
			fmt.Printf("%8d %12.2fms %10d %12.2fms   (iter speedup %.2fx)\n",
				threads, res.SecPerEpoch*1e3, res.EpochsTo[0.01], ttc*1e3,
				base/res.SecPerEpoch)
		}
		fmt.Println()
	}
	fmt.Println("Paper Table III: parallel Hogwild wins on sparse news (~6x) and")
	fmt.Println("loses to one thread on dense covtype — cache-coherence conflicts.")
}
