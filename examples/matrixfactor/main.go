// matrixfactor trains a low-rank matrix factorization (the paper's named
// future-work model; cf. cuMF_SGD in its related work) with asynchronous SGD
// on both architectures: CPU Hogwild threads and the simulated GPU's
// warp-lockstep kernel, whose conflict statistics on Zipf-hot items are
// printed alongside.
//
//	go run ./examples/matrixfactor
package main

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/mf"
	"repro/internal/model"
)

func main() {
	spec := mf.NetflixLike(400, 200, 12000)
	ds := mf.NewRatingsDataset(spec)
	task := mf.NewMF(spec.Users, spec.Items, 8)
	init := task.InitParams(1)
	fmt.Printf("ratings: %d observed of %dx%d, planted rank %d, learned rank %d\n\n",
		ds.N(), spec.Users, spec.Items, spec.TrueRank, task.K)

	step := core.TuneStep(func(s float64) core.Engine {
		return core.NewHogwild(task, ds, s, 1)
	}, task, ds, init, 5)
	fmt.Printf("tuned step: %g\n\n", step)

	fmt.Printf("%-18s %10s %12s %12s\n", "engine", "epochs", "final RMSE", "iter (model)")
	run := func(name string, e core.Engine) {
		w := append([]float64(nil), init...)
		var sec float64
		const epochs = 40
		for ep := 0; ep < epochs; ep++ {
			sec += e.RunEpoch(w)
		}
		rmse := rmseOf(task, w, ds)
		fmt.Printf("%-18s %10d %12.4f %10.3fms\n", name, epochs, rmse, sec/epochs*1e3)
		if g, ok := e.(*core.GPUHogwildEngine); ok {
			st := g.LastStats()
			fmt.Printf("%-18s conflicts: %.1f%% intra-warp, %.1f%% inter-warp (Zipf-hot items)\n",
				"", pct(st.LostIntra, st.Updates), pct(st.LostInter, st.Updates))
		}
	}
	run("cpu hogwild x8", core.NewHogwild(task, ds, step, 8))
	run("cpu sequential", core.NewHogwild(task, ds, step, 1))
	run("gpu warp-async", core.NewGPUHogwild(task, ds, step))
}

// rmseOf converts the model's mean squared error into an RMSE.
func rmseOf(task *mf.MF, w []float64, ds *data.Dataset) float64 {
	return math.Sqrt(model.MeanLoss(task, w, ds))
}

func pct(a, b int64) float64 {
	if b == 0 {
		return 0
	}
	return 100 * float64(a) / float64(b)
}
