// archcompare races the paper's two headline configurations — synchronous
// SGD on the (simulated) GPU versus asynchronous Hogwild on the multi-core
// CPU — from the same initial model on one dataset, and prints the loss-
// versus-time trajectories (a single panel of the paper's Fig. 7).
//
//	go run ./examples/archcompare -dataset real-sim -task svm
package main

import (
	"flag"
	"fmt"
	"log"

	"repro"
)

func main() {
	var (
		name = flag.String("dataset", "real-sim", "dataset name")
		task = flag.String("task", "svm", "lr or svm")
		maxN = flag.Int("maxn", 2500, "generated examples")
	)
	flag.Parse()

	spec, err := parsgd.LookupDataset(*name)
	if err != nil {
		log.Fatal(err)
	}
	ds := parsgd.GenerateDataset(spec.Scaled(float64(*maxN) / float64(spec.N)))
	factor := float64(spec.N) / float64(ds.N())

	var m parsgd.BatchModel
	switch *task {
	case "lr":
		m = parsgd.NewLR(ds.D())
	case "svm":
		m = parsgd.NewSVM(ds.D())
	default:
		log.Fatalf("unknown task %q", *task)
	}
	init := m.InitParams(1)
	opt := parsgd.EstimateOptLoss(m, ds, 30)

	// Synchronous SGD on the simulated K80, priced at full dataset scale.
	gpu := parsgd.NewGPUBackend()
	gpu.WorkScale = factor
	syncStep := parsgd.TuneStep(func(s float64) parsgd.Engine {
		return parsgd.NewSyncEngine(gpu, m, ds, s)
	}, m, ds, init, 8)
	syncEng := parsgd.NewSyncEngine(gpu, m, ds, syncStep)

	// Asynchronous Hogwild on 56 modeled CPU threads.
	asyncStep := parsgd.TuneStep(func(s float64) parsgd.Engine {
		return parsgd.NewHogwildEngine(m, ds, s, 1)
	}, m, ds, init, 5)
	asyncEng := parsgd.NewHogwildEngine(m, ds, asyncStep, 56)
	asyncEng.CostScale = factor

	opts := parsgd.DriverOpts{OptLoss: opt, MaxEpochs: 400}
	ws := append([]float64(nil), init...)
	sres := parsgd.RunToConvergence(syncEng, m, ds, ws, opts)
	wa := append([]float64(nil), init...)
	ares := parsgd.RunToConvergence(asyncEng, m, ds, wa, opts)

	fmt.Printf("%s on %s — loss vs modeled time (optimum %.4f)\n", *task, *name, opt)
	fmt.Printf("%-22s | %-22s\n", "sync/gpu", "async/cpu-par")
	n := len(sres.Curve)
	if len(ares.Curve) > n {
		n = len(ares.Curve)
	}
	for i := 0; i < n; i += 1 + n/12 { // ~12 printed samples
		line := func(c []parsgd.LossPoint) string {
			if i >= len(c) {
				return fmt.Sprintf("%22s", "")
			}
			return fmt.Sprintf("%9.3fms  %8.4f", c[i].Seconds*1e3, c[i].Loss)
		}
		fmt.Printf("%s | %s\n", line(sres.Curve), line(ares.Curve))
	}
	st, at := sres.SecondsTo[0.01], ares.SecondsTo[0.01]
	fmt.Printf("\nto 1%%: sync/gpu %.2fms, async/cpu %.2fms -> winner: ", st*1e3, at*1e3)
	switch {
	case st < at:
		fmt.Println("sync/gpu")
	case at < st:
		fmt.Println("async/cpu")
	default:
		fmt.Println("tie")
	}
	fmt.Println("\n(The paper's Fig. 7 finding: the winner flips with task and dataset.)")
}
