// mlptrain trains the paper's fully-connected MLP (e.g. 300-10-5-2 for a
// w8a-like dataset) three ways — synchronous batch GD on the simulated GPU,
// sequential mini-batch SGD, and parallel-CPU Hogbatch — and reports the
// three performance axes for each.
//
//	go run ./examples/mlptrain -dataset w8a
package main

import (
	"flag"
	"fmt"
	"log"

	"repro"
)

func main() {
	var (
		name = flag.String("dataset", "w8a", "dataset name")
		maxN = flag.Int("maxn", 2500, "generated examples")
	)
	flag.Parse()

	spec, err := parsgd.LookupDataset(*name)
	if err != nil {
		log.Fatal(err)
	}
	base := parsgd.GenerateDataset(spec.Scaled(float64(*maxN) / float64(spec.N)))
	ds, err := parsgd.GroupFeatures(base, spec.MLPInputs)
	if err != nil {
		log.Fatal(err)
	}
	factor := float64(spec.N) / float64(ds.N())
	fmt.Printf("MLP %s on %s (grouped to %d inputs, density %.1f%%)\n\n",
		spec.ArchString(), *name, ds.D(), parsgd.DatasetStatsOf(ds).DensityPct)

	m := parsgd.NewMLP(spec.MLPLayers())
	init := m.InitParams(1)
	opt := parsgd.EstimateOptLoss(m, ds, 30)

	mk := map[string]func(step float64) parsgd.Engine{
		"sync/gpu": func(s float64) parsgd.Engine {
			e := parsgd.NewSyncEngine(parsgd.NewGPUBackend(), m, ds, s)
			e.CostScale = factor
			return e
		},
		"async/cpu-seq (mini-batch)": func(s float64) parsgd.Engine {
			e := parsgd.NewHogbatchEngine(m, ds, s, parsgd.HogbatchSeq)
			e.CostScale = factor
			return e
		},
		"async/cpu-par (Hogbatch)": func(s float64) parsgd.Engine {
			e := parsgd.NewHogbatchEngine(m, ds, s, parsgd.HogbatchParCPU)
			e.CostScale = factor
			return e
		},
	}
	fmt.Printf("%-28s %10s %12s %8s %14s\n", "configuration", "step", "time/iter", "epochs", "time-to-1%")
	for _, cfg := range []string{"sync/gpu", "async/cpu-seq (mini-batch)", "async/cpu-par (Hogbatch)"} {
		build := mk[cfg]
		step := parsgd.TuneStep(func(s float64) parsgd.Engine { return build(s) }, m, ds, init, 5)
		w := append([]float64(nil), init...)
		res := parsgd.RunToConvergence(build(step), m, ds, w, parsgd.DriverOpts{
			OptLoss: opt, MaxEpochs: 250,
		})
		fmt.Printf("%-28s %10g %10.2fms %8d %12.2fms\n",
			cfg, step, res.SecPerEpoch*1e3, res.EpochsTo[0.01], res.SecondsTo[0.01]*1e3)
	}
	fmt.Println("\nPaper Tables II/III: parallel-CPU Hogbatch iterates fastest; the")
	fmt.Println("sync-GPU vs async-CPU winner in time-to-convergence is dataset-dependent.")
}
