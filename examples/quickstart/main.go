// Quickstart: train logistic regression with Hogwild (asynchronous parallel
// SGD) on a synthetic w8a-like dataset and watch it converge.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// 1. Get a dataset. The registry carries the five datasets of the
	// paper's Table I; Scaled() shrinks the example count for a demo.
	spec, err := parsgd.LookupDataset("w8a")
	if err != nil {
		log.Fatal(err)
	}
	ds := parsgd.GenerateDataset(spec.Scaled(2000.0 / float64(spec.N)))
	fmt.Println("dataset:", parsgd.DatasetStatsOf(ds))

	// 2. Pick a task and an engine: Hogwild with 8 threads sharing one
	// model vector without locks.
	m := parsgd.NewLR(ds.D())
	init := m.InitParams(1)
	step := parsgd.TuneStep(func(s float64) parsgd.Engine {
		return parsgd.NewHogwildEngine(m, ds, s, 8)
	}, m, ds, init, 5)
	fmt.Printf("tuned step: %g\n", step)

	// 3. Drive it to within 1%% of the optimal loss, the paper's headline
	// convergence criterion.
	opt := parsgd.EstimateOptLoss(m, ds, 30)
	engine := parsgd.NewHogwildEngine(m, ds, step, 8)
	w := append([]float64(nil), init...)
	res := parsgd.RunToConvergence(engine, m, ds, w, parsgd.DriverOpts{
		OptLoss:   opt,
		MaxEpochs: 200,
	})

	fmt.Printf("initial loss %.4f -> final %.4f (optimum %.4f)\n",
		res.Curve[0].Loss, res.FinalLoss, opt)
	for _, tol := range []float64{0.10, 0.05, 0.02, 0.01} {
		fmt.Printf("  within %3.0f%%: epoch %3d  (modeled %.2fms on the paper's Xeon)\n",
			tol*100, res.EpochsTo[tol], res.SecondsTo[tol]*1e3)
	}
}
